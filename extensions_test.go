package fpm

// Tests for the public API of the library extensions: closed/maximal
// mining, association rules, the alternative vertical representations and
// the cache-conscious FP-tree.

import (
	"testing"
)

func TestMineClosedAndMaximalPublic(t *testing.T) {
	db := testDB()
	minsup := 20
	all, err := Mine(db, LCM, 0, minsup)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := MineClosed(db, minsup)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := MineMaximal(db, minsup)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(mx) <= len(cl) && len(cl) <= len(all)) {
		t.Fatalf("hierarchy violated: %d maximal, %d closed, %d frequent", len(mx), len(cl), len(all))
	}
	// The direct miners must agree with the filters over the complete
	// collection.
	toSet := func(sets []Itemset) ResultSet {
		rs := ResultSet{}
		for _, s := range sets {
			rs.Collect(s.Items, s.Support)
		}
		return rs
	}
	if !toSet(cl).Equal(toSet(FilterClosed(all))) {
		t.Fatal("MineClosed disagrees with FilterClosed")
	}
	if !toSet(mx).Equal(toSet(FilterMaximal(all))) {
		t.Fatal("MineMaximal disagrees with FilterMaximal")
	}
}

func TestGenerateRulesPublic(t *testing.T) {
	db := testDB()
	sets, err := Mine(db, FPGrowth, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	rules := GenerateRules(sets, db.Len(), RuleParams{MinConfidence: 0.5})
	if len(rules) == 0 {
		t.Fatal("no rules from a correlated Quest workload")
	}
	for _, r := range rules {
		if r.Confidence < 0.5 || r.Confidence > 1.0+1e-9 {
			t.Fatalf("confidence out of range: %+v", r)
		}
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Fatalf("degenerate rule: %+v", r)
		}
	}
}

func TestAlternativeVerticalMinersPublic(t *testing.T) {
	db := testDB()
	minsup := 20
	want := ResultSet{}
	if m, _ := NewMiner(Eclat, 0); m != nil {
		if err := m.Mine(db, minsup, want); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []Miner{NewTidsetEclat(), NewDiffsetEclat()} {
		rs := ResultSet{}
		if err := m.Mine(db, minsup, rs); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s disagrees with the bit-matrix Eclat:\n%s", m.Name(), rs.Diff(want, 5))
		}
	}
}

func TestHMineAndParallelPublic(t *testing.T) {
	db := testDB()
	minsup := 20
	want := ResultSet{}
	m, _ := NewMiner(LCM, 0)
	if err := m.Mine(db, minsup, want); err != nil {
		t.Fatal(err)
	}
	hm := NewHMine()
	rs := ResultSet{}
	if err := hm.Mine(db, minsup, rs); err != nil {
		t.Fatal(err)
	}
	if !rs.Equal(want) {
		t.Fatalf("hmine disagrees: %s", rs.Diff(want, 5))
	}
	par, err := NewParallel(3, FPGrowth, Applicable(FPGrowth))
	if err != nil {
		t.Fatal(err)
	}
	rs = ResultSet{}
	if err := par.Mine(db, minsup, rs); err != nil {
		t.Fatal(err)
	}
	if !rs.Equal(want) {
		t.Fatalf("parallel fpgrowth disagrees: %s", rs.Diff(want, 5))
	}
	if _, err := NewParallel(2, Algorithm("nope"), 0); err == nil {
		t.Fatal("unknown algorithm accepted by NewParallel")
	}
}

func TestCacheConsciousFPGrowthPublic(t *testing.T) {
	db := testDB()
	minsup := 20
	want := ResultSet{}
	m, _ := NewMiner(FPGrowth, 0)
	if err := m.Mine(db, minsup, want); err != nil {
		t.Fatal(err)
	}
	cc := NewCacheConsciousFPGrowth(Applicable(FPGrowth))
	rs := ResultSet{}
	if err := cc.Mine(db, minsup, rs); err != nil {
		t.Fatal(err)
	}
	if !rs.Equal(want) {
		t.Fatalf("cache-conscious FP-Growth disagrees:\n%s", rs.Diff(want, 5))
	}
}
