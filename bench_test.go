package fpm

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation (experiment index in DESIGN.md §4). Two kinds of measurement:
//
//   - *Native benches time the real Go kernels (testing.B wall clock);
//     they capture the patterns with genuine Go-level effects — P1 data
//     reordering, P3/P4 layout, P6.1 loop structure, P8 word-parallel
//     popcount.
//   - *Sim benches replay instrumented kernels through the memory-
//     hierarchy simulator and report simulated cycles and CPI as bench
//     metrics; they capture the architecture-only patterns (P5/P7/P7.1
//     prefetch, M1-vs-M2 platform contrasts) and regenerate the shapes of
//     Figure 2 and Figure 8.
//
// Run everything with: go test -bench=. -benchmem .

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"fpm/internal/bitvec"
	"fpm/internal/cancel"
	"fpm/internal/exp"
	"fpm/internal/memsim"
	"fpm/internal/mine"
	"fpm/internal/simkern"
)

// Shared workloads, built once. Sizes are laptop-friendly; the cmd/fpmexp
// harness exposes -scale for larger runs.
var (
	benchOnce  sync.Once
	benchQuest *DB // DS1/DS2-like basket data
	benchDocs  *DB // DS3-like clustered corpus
	benchAP    *DB // DS4-like sparse random corpus
)

const (
	benchQuestSupport = 40
	benchDocsSupport  = 300
	benchAPSupport    = 10
)

func benchSetup() {
	benchOnce.Do(func() {
		benchQuest = GenerateQuest(QuestConfig{
			Transactions: 4000, AvgLen: 20, AvgPatternLen: 6,
			Items: 400, Patterns: 80, Seed: 11,
		})
		benchDocs = GenerateCorpus(CorpusConfig{
			Docs: 3000, Vocab: 3000, AvgLen: 30, ZipfS: 1.25,
			Topics: 12, TopicShare: 0.6, TopicPool: 60, Seed: 12,
		})
		benchAP = GenerateCorpus(CorpusConfig{
			Docs: 8000, Vocab: 10000, AvgLen: 10, ZipfS: 1.1,
			Shuffle: true, Seed: 13,
		})
	})
}

func mineBench(b *testing.B, db *DB, algo Algorithm, ps PatternSet, minsup int) {
	b.Helper()
	m, err := NewMiner(algo, ps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cc CountCollector
		if err := m.Mine(db, minsup, &cc); err != nil {
			b.Fatal(err)
		}
		if cc.N == 0 {
			b.Fatal("degenerate workload")
		}
	}
}

// ---------------------------------------------------------------------
// Table 3 — kernel characterisation: the three depth-first kernels plus
// the Apriori baseline on the same basket workload (also backs the §4
// claim that depth-first search dominates breadth-first).
// ---------------------------------------------------------------------

func BenchmarkTable3LCM(b *testing.B) {
	benchSetup()
	mineBench(b, benchQuest, LCM, 0, benchQuestSupport)
}
func BenchmarkTable3Eclat(b *testing.B) {
	benchSetup()
	mineBench(b, benchQuest, Eclat, 0, benchQuestSupport)
}
func BenchmarkTable3FPGrowth(b *testing.B) {
	benchSetup()
	mineBench(b, benchQuest, FPGrowth, 0, benchQuestSupport)
}
func BenchmarkTable3Apriori(b *testing.B) {
	benchSetup()
	// Breadth-first candidate generation is orders of magnitude slower;
	// keep the level-wise scans affordable with a higher threshold.
	mineBench(b, benchQuest, Apriori, 0, benchQuestSupport*4)
}

// ---------------------------------------------------------------------
// Figure 8 (native) — per-lever wall-clock for each kernel on the basket
// workload. The lever grouping matches the paper's bars (Lex / Reorg /
// Pref / Tile / SIMD / all).
// ---------------------------------------------------------------------

func benchLevers(b *testing.B, db *DB, algo Algorithm, minsup int) {
	b.Helper()
	benchSetup()
	b.Run("baseline", func(b *testing.B) { mineBench(b, db, algo, 0, minsup) })
	for _, l := range exp.Levers(algo) {
		l := l
		b.Run(l.Name, func(b *testing.B) { mineBench(b, db, algo, l.Patterns, minsup) })
	}
	b.Run("all", func(b *testing.B) { mineBench(b, db, algo, Applicable(algo), minsup) })
}

func BenchmarkFigure8LCMNative(b *testing.B) {
	benchSetup()
	benchLevers(b, benchQuest, LCM, benchQuestSupport)
}
func BenchmarkFigure8EclatNative(b *testing.B) {
	benchSetup()
	benchLevers(b, benchDocs, Eclat, benchDocsSupport)
}
func BenchmarkFigure8FPGrowthNative(b *testing.B) {
	benchSetup()
	benchLevers(b, benchQuest, FPGrowth, benchQuestSupport)
}

// ---------------------------------------------------------------------
// Figure 2 (simulated) — per-function CPI on the modelled M1. Reported as
// bench metrics: cycles/op is the simulated cycle count, CPI the
// cycles-per-instruction of the hot function.
// ---------------------------------------------------------------------

func BenchmarkFigure2CPI(b *testing.B) {
	benchSetup()
	cfg := memsim.M1()
	run := func(name string, f func() simkern.Phase) {
		b.Run(name, func(b *testing.B) {
			var p simkern.Phase
			for i := 0; i < b.N; i++ {
				p = f()
			}
			b.ReportMetric(p.CPI(), "CPI")
			b.ReportMetric(p.Cycles, "simcycles")
		})
	}
	run("LCM/CalcFreq", func() simkern.Phase {
		return simkern.LCM(benchQuest, benchQuestSupport, 0, cfg,
			simkern.LCMOptions{MaxColumns: 48}).Phase("CalcFreq")
	})
	run("LCM/RmDupTrans", func() simkern.Phase {
		return simkern.LCM(benchQuest, benchQuestSupport, 0, cfg,
			simkern.LCMOptions{MaxColumns: 48}).Phase("RmDupTrans")
	})
	run("Eclat/AndCount", func() simkern.Phase {
		return simkern.Eclat(benchQuest, benchQuestSupport, 0, cfg,
			simkern.EclatOptions{MaxVectors: 32, MaxNodes: 10_000}).Phase("AndCount")
	})
	run("FPGrowth/Traverse", func() simkern.Phase {
		return simkern.FPGrowth(benchQuest, benchQuestSupport, 0, cfg,
			simkern.FPGrowthOptions{}).Phase("Traverse")
	})
}

// ---------------------------------------------------------------------
// Figure 8 (simulated) — per-kernel, per-machine speedup of the combined
// pattern set over baseline, as simulated cycles. One sub-bench per panel;
// the speedup is reported as a metric so the bench output reads like the
// figure.
// ---------------------------------------------------------------------

func benchFig8Sim(b *testing.B, algo mine.Algorithm, cfg memsim.Config, db *DB, minsup int) {
	b.Helper()
	var all mine.PatternSet
	for _, l := range exp.Levers(algo) {
		all |= l.Patterns
	}
	run := func(ps mine.PatternSet) float64 {
		switch algo {
		case mine.LCM:
			return simkern.LCM(db, minsup, ps, cfg, simkern.LCMOptions{MaxColumns: 48}).TotalCycles()
		case mine.Eclat:
			return simkern.Eclat(db, minsup, ps, cfg, simkern.EclatOptions{MaxVectors: 32, MaxNodes: 10_000}).TotalCycles()
		default:
			return simkern.FPGrowth(db, minsup, ps, cfg, simkern.FPGrowthOptions{}).TotalCycles()
		}
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		base := run(0)
		tuned := run(all)
		speedup = base / tuned
	}
	b.ReportMetric(speedup, "speedup(all)")
}

func BenchmarkFigure8Sim(b *testing.B) {
	benchSetup()
	for _, k := range []struct {
		algo   mine.Algorithm
		db     func() *DB
		minsup int
	}{
		{mine.LCM, func() *DB { return benchQuest }, benchQuestSupport},
		{mine.Eclat, func() *DB { return benchQuest }, benchQuestSupport},
		{mine.FPGrowth, func() *DB { return benchQuest }, benchQuestSupport},
	} {
		k := k
		for _, cfg := range []memsim.Config{memsim.M1(), memsim.M2()} {
			cfg := cfg
			b.Run(string(k.algo)+"/"+cfg.Name, func(b *testing.B) {
				benchFig8Sim(b, k.algo, cfg, k.db(), k.minsup)
			})
		}
	}
}

// ---------------------------------------------------------------------
// Table 6 — dataset generation cost (and a guard that the generators stay
// fast enough for the experiment harness).
// ---------------------------------------------------------------------

func BenchmarkTable6Generation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sets := Table6Datasets(0.002, int64(i))
		if len(sets) != 4 {
			b.Fatal("bad preset count")
		}
	}
}

// ---------------------------------------------------------------------
// P1 — lexicographic ordering preprocessing cost (the overhead side of
// the Lex bars; its n·log n growth is the paper's DS4 lesson).
// ---------------------------------------------------------------------

func BenchmarkLexOrder(b *testing.B) {
	benchSetup()
	for _, w := range []struct {
		name string
		db   *DB
	}{{"quest4k", benchQuest}, {"ap8k", benchAP}} {
		w := w
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lexed, _ := LexOrder(w.db)
				if lexed.Len() != w.db.Len() {
					b.Fatal("lost transactions")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// P8 — the SIMDization micro-contrast: table-lookup popcount vs word-
// parallel computation on the Eclat AND+count inner loop (backs the
// Figure 8(c,d) SIMD bars with native numbers).
// ---------------------------------------------------------------------

func BenchmarkP8AndCount(b *testing.B) {
	benchSetup()
	// Build two realistic occurrence vectors from the corpus workload.
	n := benchDocs.Len()
	freq := benchDocs.Frequencies()
	var i1, i2 Item
	best1, best2 := -1, -1
	for it, f := range freq {
		switch {
		case f > best1:
			best2, i2 = best1, i1
			best1, i1 = f, Item(it)
		case f > best2:
			best2, i2 = f, Item(it)
		}
	}
	_ = best2
	va, vb := bitvec.New(n), bitvec.New(n)
	for ti, t := range benchDocs.Tx {
		for _, it := range t {
			if it == i1 {
				va.Set(ti)
			}
			if it == i2 {
				vb.Set(ti)
			}
		}
	}

	b.Run("table", func(b *testing.B) {
		dst := bitvec.New(n)
		s := 0
		for i := 0; i < b.N; i++ {
			s += bitvec.AndCountTable(dst, va, vb)
		}
		sinkInt(b, s)
	})
	b.Run("simd", func(b *testing.B) {
		dst := bitvec.New(n)
		s := 0
		for i := 0; i < b.N; i++ {
			s += bitvec.AndCount(dst, va, vb)
		}
		sinkInt(b, s)
	})
}

func sinkInt(b *testing.B, v int) {
	if v < 0 {
		b.Fatal("impossible")
	}
}

// ---------------------------------------------------------------------
// P2 — the representation choice as data: every database representation
// (horizontal array, dense bit matrix, sparse tidsets, diffsets,
// hyper-structure, FP-tree) mining the same dense and sparse workloads.
// ---------------------------------------------------------------------

func BenchmarkP2Representations(b *testing.B) {
	benchSetup()
	reps := []struct {
		name  string
		miner func() Miner
	}{
		{"lcm-array", func() Miner { m, _ := NewMiner(LCM, 0); return m }},
		{"eclat-bitmatrix", func() Miner { m, _ := NewMiner(Eclat, 0); return m }},
		{"eclat-tidset", func() Miner { return NewTidsetEclat() }},
		{"declat-diffset", func() Miner { return NewDiffsetEclat() }},
		{"hmine-hyperstruct", func() Miner { return NewHMine() }},
		{"fpgrowth-tree", func() Miner { m, _ := NewMiner(FPGrowth, 0); return m }},
	}
	workloads := []struct {
		name   string
		db     *DB
		minsup int
	}{
		{"dense", benchDocs, benchDocsSupport},
		{"sparse", benchAP, benchAPSupport * 4},
	}
	for _, w := range workloads {
		for _, r := range reps {
			b.Run(w.name+"/"+r.name, func(b *testing.B) {
				m := r.miner()
				for i := 0; i < b.N; i++ {
					var cc CountCollector
					if err := m.Mine(w.db, w.minsup, &cc); err != nil {
						b.Fatal(err)
					}
					if cc.N == 0 {
						b.Fatal("degenerate workload")
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Closed/maximal mining vs complete enumeration — the compression LCM's
// namesake capability buys.
// ---------------------------------------------------------------------

func BenchmarkClosedVsAll(b *testing.B) {
	benchSetup()
	b.Run("all", func(b *testing.B) { mineBench(b, benchDocs, LCM, 0, benchDocsSupport) })
	b.Run("closed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sets, err := MineClosed(benchDocs, benchDocsSupport)
			if err != nil {
				b.Fatal(err)
			}
			if len(sets) == 0 {
				b.Fatal("degenerate workload")
			}
		}
	})
	b.Run("maximal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sets, err := MineMaximal(benchDocs, benchDocsSupport)
			if err != nil {
				b.Fatal(err)
			}
			if len(sets) == 0 {
				b.Fatal("degenerate workload")
			}
		}
	})
}

// ---------------------------------------------------------------------
// Work-stealing task-parallel mining: overhead and scaling.
// ---------------------------------------------------------------------

func BenchmarkParallelMine(b *testing.B) {
	benchSetup()
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			m, err := NewParallel(workers, LCM, 0)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				var cc CountCollector
				if err := m.Mine(benchDocs, benchDocsSupport, &cc); err != nil {
					b.Fatal(err)
				}
				if cc.N == 0 {
					b.Fatal("degenerate workload")
				}
			}
		})
	}
}

// benchSkew is a skewed Table-6-style workload (WebDocs-like Zipf corpus):
// a handful of hot items own most of the search tree, so a static
// first-level decomposition serialises on the hottest item's subtree while
// work stealing keeps splitting it. Built lazily — it is heavier than the
// benchSetup workloads.
var benchSkew *DB

const benchSkewSupport = 250

func benchSkewSetup() {
	if benchSkew == nil {
		benchSkew = GenerateCorpus(CorpusConfig{
			Docs: 6000, Vocab: 2000, AvgLen: 24, ZipfS: 1.3,
			Topics: 8, TopicShare: 0.7, TopicPool: 50, Seed: 21,
		})
	}
}

// BenchmarkParallelScaling contrasts the work-stealing scheduler against
// the static first-level decomposition (the seed's strategy, retained as
// the FirstLevelOnly ablation) on the skewed workload, for the two
// Splitter kernels. CI runs this at -benchtime 1x as a regression canary.
func BenchmarkParallelScaling(b *testing.B) {
	benchSkewSetup()
	kernels := []struct {
		algo Algorithm
		sup  int
	}{{LCM, benchSkewSupport}, {Eclat, benchSkewSupport}}
	for _, k := range kernels {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, mode := range []string{"worksteal", "firstlevel"} {
				k, workers, mode := k, workers, mode
				name := fmt.Sprintf("%s/%s/workers-%d", k.algo, mode, workers)
				b.Run(name, func(b *testing.B) {
					opts := []ParallelOption{}
					if mode == "firstlevel" {
						opts = append(opts, ParallelFirstLevelOnly())
					}
					m, err := NewParallel(workers, k.algo, 0, opts...)
					if err != nil {
						b.Fatal(err)
					}
					for i := 0; i < b.N; i++ {
						var cc CountCollector
						if err := m.Mine(benchSkew, k.sup, &cc); err != nil {
							b.Fatal(err)
						}
						if cc.N == 0 {
							b.Fatal("degenerate workload")
						}
					}
				})
			}
		}
	}
}

// BenchmarkParallelCollect isolates the collection path: the batched
// shard merge (CountCollector implements BatchCollector) versus the
// generic per-itemset replay, on identical mining work.
func BenchmarkParallelCollect(b *testing.B) {
	benchSkewSetup()
	m, err := NewParallel(4, LCM, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var cc CountCollector
			if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var cc plainCountCollector
			if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// plainCountCollector deliberately does NOT implement BatchCollector.
type plainCountCollector struct{ n int }

func (c *plainCountCollector) Collect(items []Item, support int) { c.n++ }

// ---------------------------------------------------------------------
// Out-of-core mining: wall time and peak heap of the SON two-pass
// partitioned miner against the load-then-mine in-memory path on a
// skewed Table-6-style corpus an order of magnitude larger than the
// memory budget. The claim under test (EXPERIMENTS.md, "Out-of-core
// mining"): partitioned peak heap growth stays under 2x the budget while
// the in-memory path must hold the whole database and blows through it.
// ---------------------------------------------------------------------

// peakHeapDuring runs f and returns its peak heap growth in bytes: the
// maximum sampled runtime.MemStats.HeapAlloc minus the post-GC baseline.
// Sampling every 200us with 2x headroom in the assertion makes the
// between-samples blind spot irrelevant at these run lengths. The
// section runs under GOGC=10 so HeapAlloc tracks the live working set
// instead of collector slack — with the default GOGC=100 the heap is
// allowed to grow to 2x whatever is live, and the measurement would
// report GC policy, not the miner's footprint. Both contestants run
// under the same setting, so the comparison stays fair.
func peakHeapDuring(f func()) int64 {
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	peak := int64(0)
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var m runtime.MemStats
		for {
			runtime.ReadMemStats(&m)
			if g := int64(m.HeapAlloc) - int64(base); g > peak {
				peak = g
			}
			select {
			case <-done:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	f()
	close(done)
	<-sampled
	return peak
}

func BenchmarkPartitionedVsInMemory(b *testing.B) {
	// 20x the BenchmarkParallelScaling corpus: ~8.6 MiB resident, mined
	// out-of-core under a 4 MiB budget. Shuffle matters: with topic-
	// clustered disk order each chunk is topic-pure and locally ultra-
	// dense, and SON's locally-frequent candidate generation explodes —
	// the partition-skew failure mode documented in DESIGN.md.
	db := GenerateCorpus(CorpusConfig{
		Docs: 60_000, Vocab: 2000, AvgLen: 24, ZipfS: 1.3,
		Topics: 8, TopicShare: 0.7, TopicPool: 50, Shuffle: true, Seed: 21,
	})
	path := filepath.Join(b.TempDir(), "skew.dat")
	if err := WriteFIMIFile(path, db); err != nil {
		b.Fatal(err)
	}
	db = nil
	runtime.GC()
	const minsup = 4500
	const budget = int64(4 << 20)

	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var n int
			peak := peakHeapDuring(func() {
				loaded, err := ReadFIMIFile(path)
				if err != nil {
					b.Fatal(err)
				}
				sets, err := Mine(loaded, LCM, 0, minsup)
				if err != nil {
					b.Fatal(err)
				}
				n = len(sets)
			})
			if n == 0 {
				b.Fatal("degenerate workload")
			}
			b.ReportMetric(float64(peak)/(1<<20), "peakheapMiB")
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var n int
			peak := peakHeapDuring(func() {
				sets, _, err := MinePartitioned(path, LCM, 0, minsup, budget, 1)
				if err != nil {
					b.Fatal(err)
				}
				n = len(sets)
			})
			if n == 0 {
				b.Fatal("degenerate workload")
			}
			if peak >= 2*budget {
				b.Fatalf("partitioned peak heap growth %d B breaches 2x the %d B budget", peak, budget)
			}
			b.ReportMetric(float64(peak)/(1<<20), "peakheapMiB")
		}
	})
}

// BenchmarkMetricsOverhead measures the cost of the observability layer on
// the skewed-corpus LCM workload (the BenchmarkParallelScaling input):
// "off" is the production configuration — counter sites compiled in but
// given a nil recorder, so every hot-path increment is a single nil check —
// and must stay within the 2% noise band of the pre-instrumentation
// kernel; "on" additionally pays per-run counter accumulation and the
// end-of-run atomic flush. The parallel pair adds the scheduler's event
// counters and per-worker timing. Measured deltas are recorded in
// EXPERIMENTS.md ("Observability overhead"). CI runs this at -benchtime 1x
// as a compile canary.
func BenchmarkMetricsOverhead(b *testing.B) {
	benchSkewSetup()
	seq := func(rec *MetricsRecorder) func(b *testing.B) {
		return func(b *testing.B) {
			m, err := NewMinerWithMetrics(LCM, 0, rec)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				var cc CountCollector
				if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
					b.Fatal(err)
				}
				if cc.N == 0 {
					b.Fatal("degenerate workload")
				}
			}
		}
	}
	b.Run("lcm/off", seq(nil))
	b.Run("lcm/on", seq(NewMetricsRecorder()))

	par := func(rec *MetricsRecorder) func(b *testing.B) {
		return func(b *testing.B) {
			opts := []ParallelOption{}
			if rec != nil {
				opts = append(opts, ParallelMetrics(rec))
			}
			m, err := NewParallel(4, LCM, 0, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				var cc CountCollector
				if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("parallel4/off", par(nil))
	b.Run("parallel4/on", par(NewMetricsRecorder()))
}

// BenchmarkTraceOverhead measures the span-recording layer on the same
// workload, mirroring BenchmarkMetricsOverhead: "off" is the production
// configuration — trace sites compiled in, nil recorder, so every span
// site is one nil check on a cached *Track — and must stay within 3% of
// the untraced run; "on" pays ring-buffer appends at first-level recursion
// boundaries (sequential) or per scheduler task/idle interval (parallel).
// Flush/serialisation is excluded: it happens once, after mining. Measured
// deltas are recorded in EXPERIMENTS.md ("Tracing overhead"). CI runs this
// at -benchtime 1x as a compile canary.
func BenchmarkTraceOverhead(b *testing.B) {
	benchSkewSetup()
	seq := func(tr *TraceRecorder) func(b *testing.B) {
		return func(b *testing.B) {
			m, err := newInstrumentedMiner(LCM, 0, nil, tr, nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				var cc CountCollector
				if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
					b.Fatal(err)
				}
				if cc.N == 0 {
					b.Fatal("degenerate workload")
				}
			}
		}
	}
	b.Run("lcm/off", seq(nil))
	b.Run("lcm/on", seq(NewTraceRecorder(io.Discard)))

	par := func(tr *TraceRecorder) func(b *testing.B) {
		return func(b *testing.B) {
			opts := []ParallelOption{}
			if tr != nil {
				opts = append(opts, ParallelTrace(tr))
			}
			m, err := NewParallel(4, LCM, 0, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				var cc CountCollector
				if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("parallel4/off", par(nil))
	b.Run("parallel4/on", par(NewTraceRecorder(io.Discard)))
}

// BenchmarkCancelOverhead measures the robustness layer's disabled-path
// tax: the nil cancel-flag checks at every recursion node, the disabled
// failpoint sites, and (the /ctx variants) a live never-cancelled context
// armed on the run. The /off variants mine exactly the workload, through
// exactly the harness, of PR 4's BenchmarkTraceOverhead lcm/off and
// parallel4/off, so comparing against a PR 4 HEAD checkout isolates what
// this PR added to the hot path; budget 3% (EXPERIMENTS.md "Cancellation
// & failpoint overhead").
// CI runs this at -benchtime 1x as a compile canary.
func BenchmarkCancelOverhead(b *testing.B) {
	benchSkewSetup()
	seq := func(ctx context.Context) func(b *testing.B) {
		return func(b *testing.B) {
			// Same CountCollector harness as BenchmarkTraceOverhead/lcm/off —
			// materializing itemsets would drown the per-node check in
			// allocation noise and break the cross-PR comparison.
			cf, stop := cancel.FromContext(ctx)
			defer stop()
			m, err := newInstrumentedMiner(LCM, 0, nil, nil, cf)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				var cc CountCollector
				if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
					b.Fatal(err)
				}
				if cc.N == 0 {
					b.Fatal("degenerate workload")
				}
			}
		}
	}
	par := func(ctx context.Context) func(b *testing.B) {
		return func(b *testing.B) {
			opts := []ParallelOption{}
			if ctx != nil {
				opts = append(opts, WithContext(ctx))
			}
			m, err := NewParallel(4, LCM, 0, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				var cc CountCollector
				if err := m.Mine(benchSkew, benchSkewSupport, &cc); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	ctx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	b.Run("lcm/off", seq(nil))
	b.Run("lcm/ctx", seq(ctx))
	b.Run("parallel4/off", par(nil))
	b.Run("parallel4/ctx", par(ctx))
}
