package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int, density float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("Set(%d) did not stick", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("Clear(%d) did not stick", i)
		}
	}
}

func TestLenWords(t *testing.T) {
	cases := []struct{ n, words int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		v := New(c.n)
		if v.Len() != c.n || v.Words() != c.words {
			t.Errorf("New(%d): Len=%d Words=%d, want %d/%d", c.n, v.Len(), v.Words(), c.n, c.words)
		}
	}
}

func TestFromIndicesAndIndices(t *testing.T) {
	idx := []int{3, 64, 100, 199}
	v := FromIndices(200, idx)
	if got := v.Indices(); !reflect.DeepEqual(got, idx) {
		t.Fatalf("Indices = %v, want %v", got, idx)
	}
	if v.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", v.Count(), len(idx))
	}
}

func TestCountVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := randVec(rng, 1+rng.Intn(500), rng.Float64())
		want := len(v.Indices())
		if got := v.Count(); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
		if got := v.CountTable(); got != want {
			t.Fatalf("CountTable = %d, want %d", got, want)
		}
		if got := v.CountSWAR(); got != want {
			t.Fatalf("CountSWAR = %d, want %d", got, want)
		}
	}
}

func TestAndMatchesSetIntersection(t *testing.T) {
	a := FromIndices(100, []int{1, 5, 70, 99})
	b := FromIndices(100, []int{5, 6, 70})
	dst := New(100)
	And(dst, a, b)
	if got, want := dst.Indices(), []int{5, 70}; !reflect.DeepEqual(got, want) {
		t.Fatalf("And = %v, want %v", got, want)
	}
}

func TestAndAliasing(t *testing.T) {
	a := FromIndices(70, []int{1, 65})
	b := FromIndices(70, []int{1, 2})
	And(a, a, b) // dst aliases a
	if got, want := a.Indices(), []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("aliased And = %v, want %v", got, want)
	}
}

func TestAndCountFusedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		a := randVec(rng, n, 0.3)
		b := randVec(rng, n, 0.3)
		ref := New(n)
		And(ref, a, b)
		want := ref.Count()

		d1 := New(n)
		if got := AndCount(d1, a, b); got != want || !Equal(d1, ref) {
			t.Fatalf("AndCount = %d (vec ok=%v), want %d", got, Equal(d1, ref), want)
		}
		d2 := New(n)
		if got := AndCountTable(d2, a, b); got != want || !Equal(d2, ref) {
			t.Fatalf("AndCountTable = %d, want %d", got, want)
		}
	}
}

func TestRangeExact(t *testing.T) {
	cases := []struct {
		bits []int
		n    int
		want OneRange
	}{
		{nil, 256, OneRange{}},
		{[]int{0}, 256, OneRange{0, 1}},
		{[]int{255}, 256, OneRange{3, 4}},
		{[]int{64, 130}, 256, OneRange{1, 3}},
		{[]int{63, 64}, 256, OneRange{0, 2}},
	}
	for _, c := range cases {
		v := FromIndices(c.n, c.bits)
		if got := v.Range(); got != c.want {
			t.Errorf("Range(%v) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestOneRangeIntersect(t *testing.T) {
	cases := []struct{ a, b, want OneRange }{
		{OneRange{0, 4}, OneRange{2, 6}, OneRange{2, 4}},
		{OneRange{0, 2}, OneRange{3, 6}, OneRange{0, 0}},
		{OneRange{1, 5}, OneRange{1, 5}, OneRange{1, 5}},
		{OneRange{}, OneRange{0, 9}, OneRange{0, 0}},
	}
	for _, c := range cases {
		if got := c.a.Intersect(c.b); got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersect(c.a); got != c.want {
			t.Errorf("intersect not commutative: %v vs %v", got, c.want)
		}
	}
	if !(OneRange{}).Empty() || (OneRange{0, 1}).Empty() {
		t.Fatal("Empty() wrong")
	}
}

// Property: conservative range intersection is sound — AndCountRange over
// the intersected operand ranges counts exactly the true intersection.
func TestAndCountRangeSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(512)
		a := randVec(rng, n, 0.1)
		b := randVec(rng, n, 0.1)
		r := a.Range().Intersect(b.Range())
		dst := New(n)
		got := AndCountRange(dst, a, b, r)
		ref := New(n)
		want := AndCount(ref, a, b)
		if got != want {
			return false
		}
		// Every word inside r must match the full AND; outside r the full
		// AND must be zero (soundness of the conservative range).
		for i := 0; i < dst.Words(); i++ {
			if i >= r.Lo && i < r.Hi {
				if dst.Word(i) != ref.Word(i) {
					return false
				}
			} else if ref.Word(i) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: exact range tightening returns the same count and a range that
// is contained in the conservative one and still covers all set bits.
func TestAndCountRangeExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(512)
		a := randVec(rng, n, 0.05)
		b := randVec(rng, n, 0.05)
		r := a.Range().Intersect(b.Range())
		dst := New(n)
		c, er := AndCountRangeExact(dst, a, b, r)
		ref := New(n)
		want := AndCount(ref, a, b)
		if c != want {
			return false
		}
		if want == 0 {
			return er.Empty()
		}
		exact := ref.Range()
		return er == exact && er.Lo >= r.Lo && er.Hi <= r.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count is invariant under Clone, and Equal is reflexive on
// clones.
func TestCloneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randVec(rng, 1+rng.Intn(300), 0.5)
		c := v.Clone()
		if !Equal(v, c) || c.Count() != v.Count() {
			return false
		}
		// Mutating the clone must not affect the original.
		c.Set(0)
		c.Clear(0)
		idx := v.Indices()
		if len(idx) > 0 {
			c.Clear(idx[0])
			return v.Get(idx[0])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if Equal(New(10), New(11)) {
		t.Fatal("vectors of different length compare equal")
	}
}
