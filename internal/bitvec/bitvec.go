// Package bitvec implements the dense bit-vector representation used by the
// Eclat kernel (paper §4.2): one bit per transaction, one vector per item or
// itemset. The AND of two vectors is the occurrence vector of the union of
// the two itemsets, and counting ones computes support.
//
// The package provides the exact performance contrasts the paper studies:
//
//   - CountTable: the original Eclat's byte-table-lookup popcount — an
//     indirect load per byte that cannot be SIMDized (and pollutes the
//     cache with a lookup table);
//   - Count / AndCount: computational popcount (branch-free 64-bit SWAR,
//     via math/bits), the Go analogue of the paper's P8 SIMDization since
//     it turns 8 table loads into word-parallel arithmetic;
//   - OneRange and the *Range variants: the 0-escaping optimization
//     enabled by P1 lexicographic ordering — skip leading/trailing
//     all-zero words using a conservatively maintained 1-range.
package bitvec

import "math/bits"

const wordBits = 64

// Vector is a fixed-length bit vector. Bit i corresponds to transaction i.
type Vector struct {
	words []uint64
	n     int // logical length in bits
}

// New returns a zeroed vector of n bits.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices builds a vector of n bits with the given bit positions set.
func FromIndices(n int, idx []int) *Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// Len returns the logical length in bits.
func (v *Vector) Len() int { return v.n }

// Words returns the number of 64-bit words backing the vector.
func (v *Vector) Words() int { return len(v.words) }

// Word returns the i-th backing word. It is exported for the instrumented
// simulator kernels, which need to replay per-word access streams.
func (v *Vector) Word(i int) uint64 { return v.words[i] }

// Set sets bit i.
func (v *Vector) Set(i int) { v.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear clears bit i.
func (v *Vector) Clear(i int) { v.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Get reports bit i.
func (v *Vector) Get(i int) bool {
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Clone returns a copy of v.
func (v *Vector) Clone() *Vector {
	return &Vector{words: append([]uint64(nil), v.words...), n: v.n}
}

// And stores a AND b into dst. All three must have the same length; dst may
// alias a or b.
func And(dst, a, b *Vector) {
	for i := range dst.words {
		dst.words[i] = a.words[i] & b.words[i]
	}
}

// Count returns the number of set bits using computational popcount
// (math/bits compiles to POPCNT or a branch-free SWAR sequence). This is
// the "SIMDizable" counting method of P8.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// popTable is the 8-bit popcount lookup table used by the pre-SIMD Eclat
// implementation. Indirect loads through it defeat vectorization, which is
// exactly why the paper replaces it (§4.2).
var popTable = func() [256]uint8 {
	var t [256]uint8
	for i := range t {
		t[i] = uint8(bits.OnesCount8(uint8(i)))
	}
	return t
}()

// CountTable counts set bits via per-byte table lookups, reproducing the
// baseline (unSIMDizable) frequency counting of the original Eclat code.
func (v *Vector) CountTable() int {
	c := 0
	for _, w := range v.words {
		c += int(popTable[w&0xff]) +
			int(popTable[(w>>8)&0xff]) +
			int(popTable[(w>>16)&0xff]) +
			int(popTable[(w>>24)&0xff]) +
			int(popTable[(w>>32)&0xff]) +
			int(popTable[(w>>40)&0xff]) +
			int(popTable[(w>>48)&0xff]) +
			int(popTable[(w>>56)&0xff])
	}
	return c
}

// CountSWAR counts set bits with an explicit branch-free SWAR reduction
// (the classic 64-bit parallel popcount). Functionally identical to Count;
// kept separate so benchmarks can compare against math/bits even on
// platforms where the compiler emits POPCNT.
func (v *Vector) CountSWAR() int {
	c := uint64(0)
	for _, w := range v.words {
		w -= (w >> 1) & 0x5555555555555555
		w = (w & 0x3333333333333333) + ((w >> 2) & 0x3333333333333333)
		w = (w + (w >> 4)) & 0x0f0f0f0f0f0f0f0f
		c += (w * 0x0101010101010101) >> 56
	}
	return int(c)
}

// AndCount stores a AND b into dst and returns the resulting popcount in a
// single fused pass (one load pair, one store, one count per word). Fusing
// halves memory traffic versus And followed by Count, which matters because
// 98% of Eclat's time is in exactly this loop (paper §4.2).
func AndCount(dst, a, b *Vector) int {
	c := 0
	dw, aw, bw := dst.words, a.words, b.words
	for i := range dw {
		w := aw[i] & bw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCountTable is the fused loop with table-lookup counting: the tuned
// loop structure but the baseline counting method. Used to isolate the P8
// benefit in ablation benchmarks.
func AndCountTable(dst, a, b *Vector) int {
	c := 0
	dw, aw, bw := dst.words, a.words, b.words
	for i := range dw {
		w := aw[i] & bw[i]
		dw[i] = w
		c += int(popTable[w&0xff]) +
			int(popTable[(w>>8)&0xff]) +
			int(popTable[(w>>16)&0xff]) +
			int(popTable[(w>>24)&0xff]) +
			int(popTable[(w>>32)&0xff]) +
			int(popTable[(w>>40)&0xff]) +
			int(popTable[(w>>48)&0xff]) +
			int(popTable[(w>>56)&0xff])
	}
	return c
}

// OneRange is the half-open word-index interval [Lo, Hi) containing every
// set bit of a vector. The paper's 0-escaping (§4.2) skips AND/count work
// outside the intersection of the operands' 1-ranges. Ranges maintained by
// intersecting operand ranges are conservative but sound: they may include
// zero words but never exclude a one word.
type OneRange struct {
	Lo, Hi int
}

// Empty reports whether the range contains no words.
func (r OneRange) Empty() bool { return r.Lo >= r.Hi }

// Intersect returns the intersection of two ranges — the conservative
// 1-range of the AND of the corresponding vectors.
func (r OneRange) Intersect(o OneRange) OneRange {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		lo, hi = 0, 0
	}
	return OneRange{lo, hi}
}

// Range computes the exact 1-range of v by scanning for the first and last
// nonzero words. Used to initialize item vectors (the paper computes "the
// first and last 1 in each item bit-vector").
func (v *Vector) Range() OneRange {
	lo := 0
	for lo < len(v.words) && v.words[lo] == 0 {
		lo++
	}
	if lo == len(v.words) {
		return OneRange{}
	}
	hi := len(v.words)
	for v.words[hi-1] == 0 {
		hi--
	}
	return OneRange{lo, hi}
}

// AndCountRange fuses AND and popcount restricted to the word range r,
// zeroing dst words outside previous content is NOT required because Eclat
// always pairs a destination vector with its own range: words outside the
// range are never read by later range-restricted operations.
func AndCountRange(dst, a, b *Vector, r OneRange) int {
	c := 0
	dw, aw, bw := dst.words, a.words, b.words
	for i := r.Lo; i < r.Hi; i++ {
		w := aw[i] & bw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCountRangeTable is AndCountRange with the baseline table-lookup
// counting method, so 0-escaping (P1-enabled) and SIMDization (P8) can be
// measured independently.
func AndCountRangeTable(dst, a, b *Vector, r OneRange) int {
	c := 0
	dw, aw, bw := dst.words, a.words, b.words
	for i := r.Lo; i < r.Hi; i++ {
		w := aw[i] & bw[i]
		dw[i] = w
		c += int(popTable[w&0xff]) +
			int(popTable[(w>>8)&0xff]) +
			int(popTable[(w>>16)&0xff]) +
			int(popTable[(w>>24)&0xff]) +
			int(popTable[(w>>32)&0xff]) +
			int(popTable[(w>>40)&0xff]) +
			int(popTable[(w>>48)&0xff]) +
			int(popTable[(w>>56)&0xff])
	}
	return c
}

// AndCountRangeExact is AndCountRange but additionally tightens the
// resulting range to the exact first/last nonzero word of dst within r.
// This is the "optimal ranges" alternative the paper notes its conservative
// ranges are not; exposed for the E9 ablation.
func AndCountRangeExact(dst, a, b *Vector, r OneRange) (int, OneRange) {
	c := 0
	lo, hi := -1, -1
	dw, aw, bw := dst.words, a.words, b.words
	for i := r.Lo; i < r.Hi; i++ {
		w := aw[i] & bw[i]
		dw[i] = w
		if w != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i + 1
			c += bits.OnesCount64(w)
		}
	}
	if lo < 0 {
		return 0, OneRange{}
	}
	return c, OneRange{lo, hi}
}

// Indices returns the positions of all set bits in increasing order.
func (v *Vector) Indices() []int {
	var out []int
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Equal reports whether two vectors have identical length and bits.
func Equal(a, b *Vector) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}
