package bitvec

import (
	"math/rand"
	"testing"
)

// benchVecs builds two realistic half-dense operand vectors.
func benchVecs(n int) (*Vector, *Vector) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) != 0 {
			a.Set(i)
		}
		if rng.Intn(3) != 0 {
			b.Set(i)
		}
	}
	return a, b
}

const benchBits = 1 << 16

func BenchmarkCountTable(b *testing.B) {
	v, _ := benchVecs(benchBits)
	s := 0
	for i := 0; i < b.N; i++ {
		s += v.CountTable()
	}
	if s < 0 {
		b.Fatal()
	}
}

func BenchmarkCountBits(b *testing.B) {
	v, _ := benchVecs(benchBits)
	s := 0
	for i := 0; i < b.N; i++ {
		s += v.Count()
	}
	if s < 0 {
		b.Fatal()
	}
}

func BenchmarkCountSWAR(b *testing.B) {
	v, _ := benchVecs(benchBits)
	s := 0
	for i := 0; i < b.N; i++ {
		s += v.CountSWAR()
	}
	if s < 0 {
		b.Fatal()
	}
}

func BenchmarkAndThenCount(b *testing.B) {
	x, y := benchVecs(benchBits)
	dst := New(benchBits)
	s := 0
	for i := 0; i < b.N; i++ {
		And(dst, x, y)
		s += dst.Count()
	}
	if s < 0 {
		b.Fatal()
	}
}

func BenchmarkAndCountFused(b *testing.B) {
	x, y := benchVecs(benchBits)
	dst := New(benchBits)
	s := 0
	for i := 0; i < b.N; i++ {
		s += AndCount(dst, x, y)
	}
	if s < 0 {
		b.Fatal()
	}
}

func BenchmarkAndCountRangeZeroEscape(b *testing.B) {
	// Operands whose 1s are clustered in the middle third — the layout
	// P1 lexicographic ordering produces — so 0-escaping skips two thirds
	// of the words.
	x, y := New(benchBits), New(benchBits)
	rng := rand.New(rand.NewSource(2))
	for i := benchBits / 3; i < 2*benchBits/3; i++ {
		if rng.Intn(2) == 0 {
			x.Set(i)
		}
		if rng.Intn(2) == 0 {
			y.Set(i)
		}
	}
	r := x.Range().Intersect(y.Range())
	dst := New(benchBits)
	s := 0
	for i := 0; i < b.N; i++ {
		s += AndCountRange(dst, x, y, r)
	}
	if s < 0 {
		b.Fatal()
	}
}
