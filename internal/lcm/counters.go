package lcm

import "fpm/internal/dataset"

// counters abstracts the CalcFreq frequency-counter storage so the P4
// compaction contrast is real at the machine level: the baseline pads each
// counter to its own cache line, mimicking counters embedded in per-column
// OccArray structures scattered across the heap; the compact variant packs
// them into one contiguous int32 slice.
type counters interface {
	add(item dataset.Item, w int32)
	get(item dataset.Item) int32
	reset(touched []dataset.Item)
}

// lineSize is the assumed cache line size in bytes for the scattered
// layout's padding.
const lineSize = 64

type paddedCounter struct {
	v int32
	_ [lineSize - 4]byte
}

// scatteredCounters is the baseline layout: one counter per cache line.
type scatteredCounters struct {
	c []paddedCounter
}

func newScatteredCounters(n int) *scatteredCounters {
	return &scatteredCounters{c: make([]paddedCounter, n)}
}

func (s *scatteredCounters) add(item dataset.Item, w int32) { s.c[item].v += w }
func (s *scatteredCounters) get(item dataset.Item) int32    { return s.c[item].v }
func (s *scatteredCounters) reset(touched []dataset.Item) {
	for _, it := range touched {
		s.c[it].v = 0
	}
}

// compactCounters is the P4 layout: counters in consecutive memory, so a
// cache line holds 16 of them.
type compactCounters struct {
	c []int32
}

func newCompactCounters(n int) *compactCounters { return &compactCounters{c: make([]int32, n)} }

func (s *compactCounters) add(item dataset.Item, w int32) { s.c[item] += w }
func (s *compactCounters) get(item dataset.Item) int32    { return s.c[item] }
func (s *compactCounters) reset(touched []dataset.Item) {
	for _, it := range touched {
		s.c[it] = 0
	}
}
