package lcm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/mine"
)

// allVariants enumerates meaningful pattern combinations for LCM (Table 4).
func allVariants() []*Miner {
	sets := []mine.PatternSet{
		0,
		mine.PatternSet(mine.Lex),
		mine.PatternSet(mine.Aggregate),
		mine.PatternSet(mine.Compact),
		mine.PatternSet(mine.Tile),
		mine.PatternSet(mine.Prefetch),
		mine.PatternSet(mine.Aggregate | mine.Compact),
		mine.PatternSet(mine.Lex | mine.Tile),
		mine.Applicable(mine.LCM),
	}
	var out []*Miner
	for _, s := range sets {
		out = append(out, New(Options{Patterns: s}))
	}
	// Tiny tiles stress the tile-boundary logic.
	out = append(out, New(Options{Patterns: mine.PatternSet(mine.Tile), TileRows: 1}))
	out = append(out, New(Options{Patterns: mine.PatternSet(mine.Prefetch), PrefetchDist: 2}))
	return out
}

func TestHandWorked(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1, 2}, {0, 2}})
	want := mine.ResultSet{"0": 3, "1": 2, "2": 2, "0,1": 2, "0,2": 2}
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, 2, rs); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s = %v, want %v\n%s", m.Name(), rs, want, rs.Diff(want, 10))
		}
	}
}

func TestPaperTable1Database(t *testing.T) {
	db := dataset.New([]dataset.Transaction{
		{0, 2, 5}, {1, 2, 5}, {0, 2, 5}, {3, 4}, {0, 1, 2, 3, 4, 5},
	})
	db.Normalize()
	want := mine.ResultSet{"2": 4, "5": 4, "0": 3, "2,5": 4, "0,2": 3, "0,5": 3, "0,2,5": 3}
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, 3, rs); err != nil {
			t.Fatal(err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s:\n%s", m.Name(), rs.Diff(want, 10))
		}
	}
}

func TestEdgeCases(t *testing.T) {
	m := New(Options{})
	if err := m.Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
		t.Fatalf("empty DB: %v", err)
	}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), -1, mine.ResultSet{}); err == nil {
		t.Fatal("negative minSupport accepted")
	}
	rs := mine.ResultSet{}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}, {1}}), 3, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("mined %v at impossible support", rs)
	}
	// All-duplicate database exercises RmDupTrans weight merging.
	dup := dataset.New([]dataset.Transaction{{0, 1}, {0, 1}, {0, 1}})
	rs = mine.ResultSet{}
	if err := m.Mine(dup, 3, rs); err != nil {
		t.Fatal(err)
	}
	want := mine.ResultSet{"0": 3, "1": 3, "0,1": 3}
	if !rs.Equal(want) {
		t.Fatalf("duplicates: %v, want %v", rs, want)
	}
}

func TestRmDupTransMergesWeights(t *testing.T) {
	for _, agg := range []bool{false, true} {
		opts := Options{}
		if agg {
			opts.Patterns = mine.PatternSet(mine.Aggregate)
		}
		m := New(opts)
		d := &cdb{
			items: 3,
			tx:    [][]dataset.Item{{0, 1}, {2}, {0, 1}, {2}, {0}},
			w:     []int32{1, 2, 3, 4, 5},
		}
		got := m.rmDupTrans(d)
		if len(got.tx) != 3 {
			t.Fatalf("agg=%v: %d unique transactions, want 3", agg, len(got.tx))
		}
		// Weight lookup by content.
		wBy := map[string]int32{}
		for i, tr := range got.tx {
			wBy[mine.Key(tr)] = got.w[i]
		}
		if wBy["0,1"] != 4 || wBy["2"] != 6 || wBy["0"] != 5 {
			t.Fatalf("agg=%v: merged weights %v", agg, wBy)
		}
	}
}

func TestRmDupTransTrivial(t *testing.T) {
	m := New(Options{})
	d := &cdb{items: 1, tx: [][]dataset.Item{{0}}, w: []int32{1}}
	if got := m.rmDupTrans(d); got != d {
		t.Fatal("single-transaction database should be returned unchanged")
	}
}

func TestCountersBehaveIdentically(t *testing.T) {
	for _, c := range []counters{newScatteredCounters(10), newCompactCounters(10)} {
		c.add(3, 2)
		c.add(3, 1)
		c.add(7, 5)
		if c.get(3) != 3 || c.get(7) != 5 || c.get(0) != 0 {
			t.Fatalf("%T: wrong counts", c)
		}
		c.reset([]dataset.Item{3, 7})
		if c.get(3) != 0 || c.get(7) != 0 {
			t.Fatalf("%T: reset failed", c)
		}
	}
}

// Property: every variant agrees with the brute-force oracle.
func TestMatchesBruteForceProperty(t *testing.T) {
	variants := allVariants()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		for _, m := range variants {
			rs := mine.ResultSet{}
			if err := m.Mine(db, minsup, rs); err != nil {
				return false
			}
			if !rs.Equal(want) {
				t.Logf("%s (seed %d, minsup %d):\n%s", m.Name(), seed, minsup, rs.Diff(want, 5))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantsAgreeOnGenerated(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 600, AvgLen: 12, AvgPatternLen: 4, Items: 60, Patterns: 25, Seed: 99})
	minsup := 30
	var want mine.ResultSet
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, minsup, rs); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rs
			if len(want) == 0 {
				t.Fatal("degenerate workload: no frequent itemsets")
			}
			continue
		}
		if !rs.Equal(want) {
			t.Fatalf("%s disagrees:\n%s", m.Name(), rs.Diff(want, 10))
		}
	}
}

func TestMineDoesNotMutateInput(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 2}, {0, 1}})
	db.Normalize()
	before := db.Clone()
	m := New(Options{Patterns: mine.Applicable(mine.LCM)})
	if err := m.Mine(db, 1, mine.ResultSet{}); err != nil {
		t.Fatal(err)
	}
	for i := range db.Tx {
		for j := range db.Tx[i] {
			if db.Tx[i][j] != before.Tx[i][j] {
				t.Fatal("Mine mutated input database")
			}
		}
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}

// eagerSpawner accepts every offered subtree and runs it synchronously,
// recursively re-entering itself — the worst case for state isolation
// between a spawning recursion and its stolen tasks.
type eagerSpawner struct {
	c      mine.Collector
	offers int
}

func (s *eagerSpawner) WouldSteal(weight int) bool { return true }
func (s *eagerSpawner) Cancelled() bool            { return false }
func (s *eagerSpawner) Offer(weight int, task mine.TaskFunc) bool {
	s.offers++
	if err := task(s.c, s); err != nil {
		panic(err)
	}
	return true
}

// TestMineSplitMatchesMine asserts that handing every subtree to a
// spawner yields exactly the sequential result set, for every pattern
// variant (including the tiled root path).
func TestMineSplitMatchesMine(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 500, AvgLen: 12, AvgPatternLen: 4, Items: 50, Patterns: 20, Seed: 7})
	for _, m := range allVariants() {
		want := mine.ResultSet{}
		if err := m.Mine(db, 20, want); err != nil {
			t.Fatal(err)
		}
		got := mine.ResultSet{}
		sp := &eagerSpawner{c: got}
		if err := m.MineSplit(db, 20, got, sp); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if sp.offers == 0 {
			t.Fatalf("%s: no subtree was ever offered", m.Name())
		}
		if !got.Equal(want) {
			t.Fatalf("%s: split disagrees:\n%s", m.Name(), got.Diff(want, 8))
		}
	}
}
