package lcm

import (
	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// rmDupTrans merges identical transactions, accumulating their weights —
// the paper's RmDupTrans (25.5% of LCM's baseline runtime). Transactions
// are bucket-sorted by a content hash; each bucket is searched linearly for
// an existing identical transaction.
//
// The P3 aggregation contrast is in the bucket storage: the baseline links
// individually allocated nodes ("a linked list is used to link all the
// transactions that fall into the same bucket"), while the aggregated
// variant stores bucket members in contiguous chunks (supernodes), since
// the structure is "mostly read only" — it is only appended to, never
// spliced.
func (m *Miner) rmDupTrans(d *cdb) *cdb {
	if len(d.tx) < 2 {
		return d
	}
	nb := 1
	for nb < len(d.tx) {
		nb <<= 1
	}
	mask := uint32(nb - 1)

	out := &cdb{items: d.items, tx: make([][]dataset.Item, 0, len(d.tx)), w: make([]int32, 0, len(d.tx))}

	if m.opts.Patterns.Has(mine.Aggregate) {
		// Aggregated buckets: one []int32 of output indices per bucket,
		// grown in place — members of a bucket live in consecutive memory.
		buckets := make([][]int32, nb)
		for ti, t := range d.tx {
			b := hashTx(t) & mask
			found := false
			for _, oi := range buckets[b] {
				if eqTx(out.tx[oi], t) {
					out.w[oi] += d.w[ti]
					found = true
					break
				}
			}
			if !found {
				buckets[b] = append(buckets[b], int32(len(out.tx)))
				out.tx = append(out.tx, t)
				out.w = append(out.w, d.w[ti])
			}
		}
		return out
	}

	// Baseline buckets: per-transaction linked nodes; the search is a
	// pointer chase across scattered allocations.
	type dupNode struct {
		oi   int32
		next *dupNode
	}
	buckets := make([]*dupNode, nb)
	for ti, t := range d.tx {
		b := hashTx(t) & mask
		found := false
		for n := buckets[b]; n != nil; n = n.next {
			if eqTx(out.tx[n.oi], t) {
				out.w[n.oi] += d.w[ti]
				found = true
				break
			}
		}
		if !found {
			buckets[b] = &dupNode{oi: int32(len(out.tx)), next: buckets[b]}
			out.tx = append(out.tx, t)
			out.w = append(out.w, d.w[ti])
		}
	}
	return out
}

// hashTx is an FNV-1a hash over the transaction's items.
func hashTx(t []dataset.Item) uint32 {
	h := uint32(2166136261)
	for _, it := range t {
		h ^= uint32(it)
		h *= 16777619
	}
	return h
}

// eqTx reports whether two sorted transactions are identical.
func eqTx(a, b []dataset.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
