// Package lcm implements the LCM-style kernel of paper §4.1: a depth-first
// frequent itemset miner over a horizontal, array-based sparse database,
// augmented with an item-major occurrence array (OccArray) whose columns
// point at the transactions containing each item.
//
// The two hot functions the paper profiles are reproduced:
//
//   - CalcFreq (54% of runtime): for an extension item e, traverse the occ
//     column of e, follow the pointers to transaction rows, and accumulate
//     the conditional frequencies of the items in those rows;
//   - RmDupTrans (25% of runtime): merge identical conditional
//     transactions via bucket (radix-style) sorting, accumulating weights.
//
// Applicable patterns (Table 4): P1 Lex (initial database layout), P3
// Aggregation (the RmDupTrans bucket lists), P4 Compaction (the frequency
// counters), P6.1 Tiling (slicing the OccArray by transaction-offset
// range), P7.1 Wave-front prefetch (natively emulated as read-ahead
// touches; modelled cycle-accurately in internal/simkern).
package lcm

import (
	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/lexorder"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/trace"
)

// Options selects the tuning patterns applied by the miner.
type Options struct {
	Patterns mine.PatternSet
	// TileRows overrides the number of transaction rows per tile when
	// Patterns has Tile. Zero sizes tiles so one tile's transaction data
	// fits a 16 KiB L1 slice, following the paper ("we choose the tile
	// size to fit in the L1 cache").
	TileRows int
	// PrefetchDist is the read-ahead distance of the wave-front prefetch
	// emulation. Zero means 8.
	PrefetchDist int
	// Metrics, when non-nil, receives run-time counters: nodes expanded,
	// support countings (one per support value computed in a conditional
	// database), itemsets emitted and candidate prunes. Nil disables
	// recording at the cost of one nil-check per counter site.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives coarse recursion spans on sequential
	// runs: one span per first-level subtree (the same track is reused
	// across Mine calls, so the miner must not run concurrent Mines).
	// Under the task-parallel scheduler the workers' own task spans cover
	// the timeline and kernel spans are suppressed. Nil disables tracing.
	Trace *trace.Recorder
	// Cancel, when non-nil, is polled at every recursion node: once it
	// trips, the recursion unwinds without mining further and Mine returns
	// Cancel.Err(). Nil disables the check at the cost of one nil test per
	// node — the same discipline as Metrics/Trace.
	Cancel *cancel.Flag
}

// Miner is an LCM-style frequent itemset miner.
type Miner struct {
	opts Options
	tk   *trace.Track // lazily created sequential-run trace track
}

// track returns the miner's sequential-run trace track, creating it on
// first use; nil when tracing is disabled.
func (m *Miner) track() *trace.Track {
	if m.opts.Trace == nil {
		return nil
	}
	if m.tk == nil {
		m.tk = m.opts.Trace.NewTrack(m.Name())
	}
	return m.tk
}

// New returns an LCM miner with the given options.
func New(opts Options) *Miner { return &Miner{opts: opts} }

// Name implements mine.Miner.
func (m *Miner) Name() string { return "lcm(" + m.opts.Patterns.String() + ")" }

// cdb is a (conditional) database: weighted transactions whose items are
// strictly below the alphabet bound `items`, stored in increasing order.
// Children keep the parent's item identities; only the bound shrinks.
type cdb struct {
	tx    [][]dataset.Item
	w     []int32
	items int
}

// Mine implements mine.Miner.
func (m *Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	return m.MineSplit(db, minSupport, c, nil)
}

// MineSplit implements mine.Splitter: identical to Mine, except that when
// sp is non-nil every recursion node's conditional database may be offered
// to the scheduler as a stealable task, weighted by its item-occurrence
// count. A stolen subtree is mined by a fresh state (own counters, own
// prefix copy) on the executing worker; its conditional database shares no
// mutable memory with the parent (projection materialises new rows).
func (m *Miner) MineSplit(db *dataset.DB, minSupport int, c mine.Collector, sp mine.Spawner) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}

	work := db
	var ord *lexorder.Ordering
	if m.opts.Patterns.Has(mine.Lex) {
		work, ord = lexorder.Apply(db)
	}

	root := &cdb{items: work.NumItems}
	root.tx = make([][]dataset.Item, len(work.Tx))
	root.w = make([]int32, len(work.Tx))
	for i, t := range work.Tx {
		root.tx[i] = t
		root.w[i] = 1
	}
	// RmDupTrans on the initial database exercises the paper's
	// second-hottest function and shrinks the working set up front.
	root = m.rmDupTrans(root)

	st := &state{m: m, minsup: int32(minSupport), collect: c, ord: ord, sp: sp,
		cf: m.opts.Cancel, met: m.opts.Metrics.NewLocal()}
	if sp == nil {
		// Sequential run: first-level subtrees become trace spans. Under
		// the scheduler the worker tracks own the timeline instead.
		st.tk = m.track()
	}
	st.cnt = m.newCounters(work.NumItems)
	st.mineNode(root, true)
	m.opts.Metrics.Flush(st.met)
	// A cancelled run unwound early; report why (context.Canceled or
	// DeadlineExceeded) instead of pretending the enumeration completed.
	return m.opts.Cancel.Err()
}

// newCounters picks the CalcFreq counter layout for the P4 contrast.
func (m *Miner) newCounters(n int) counters {
	if m.opts.Patterns.Has(mine.Compact) {
		return newCompactCounters(n)
	}
	return newScatteredCounters(n)
}

// state carries the per-Mine mutable context through the recursion. Each
// stolen subtree task gets its own state; states never share mutable
// memory (m, ord and sp are read-only / concurrency-safe).
type state struct {
	m       *Miner
	minsup  int32
	collect mine.Collector
	ord     *lexorder.Ordering
	sp      mine.Spawner
	cf      *cancel.Flag
	met     *metrics.Local
	tk      *trace.Track // sequential-run trace track; nil on workers
	cnt     counters
	prefix  []dataset.Item
	emitBuf []dataset.Item
	touched []dataset.Item
}

// descend recurses into child sequentially, unless the scheduler accepts
// it as a stealable task (weighted by the child's item-occurrence count).
// The spawned closure rebuilds a full state on the executing worker; the
// prefix is copied because the parent keeps mutating its own.
func (st *state) descend(child *cdb) {
	if st.sp != nil {
		if w := mine.SubtreeWeight(child.tx); st.sp.WouldSteal(w) {
			prefix := append([]dataset.Item(nil), st.prefix...)
			m, minsup, ord := st.m, st.minsup, st.ord
			if st.sp.Offer(w, func(c mine.Collector, sp mine.Spawner) error {
				ns := &state{m: m, minsup: minsup, collect: c, ord: ord, sp: sp, prefix: prefix,
					cf: m.opts.Cancel, met: m.opts.Metrics.NewLocal()}
				ns.cnt = m.newCounters(child.items)
				ns.mineNode(child, false)
				m.opts.Metrics.Flush(ns.met)
				return nil
			}) {
				return
			}
		}
	}
	st.mineNode(child, false)
}

func (st *state) emit(support int32) {
	st.met.Emit()
	if st.ord != nil {
		st.collect.Collect(st.ord.Restore(st.prefix), int(support))
		return
	}
	// The recursion appends extensions in decreasing item order; report
	// itemsets in canonical increasing order.
	st.emitBuf = st.emitBuf[:0]
	for i := len(st.prefix) - 1; i >= 0; i-- {
		st.emitBuf = append(st.emitBuf, st.prefix[i])
	}
	st.collect.Collect(st.emitBuf, int(support))
}

// aborted reports whether the recursion should unwind: the run's cancel
// flag tripped (ctx cancellation/deadline) or, under the scheduler, the
// pool aborted. Both checks are one nil test plus one atomic load.
func (st *state) aborted() bool {
	return st.cf.Cancelled() || (st.sp != nil && st.sp.Cancelled())
}

// mineNode enumerates all frequent extensions of the current prefix within
// the conditional database d. root enables the top-level tiling path: the
// paper tiles the initial database, which is "the largest and is accessed
// most frequently".
func (st *state) mineNode(d *cdb, root bool) {
	if st.aborted() {
		return
	}
	occ, support := buildOcc(d)
	// One node expanded; its support countings are the support values just
	// computed over the conditional alphabet.
	st.met.Node()
	st.met.Support(d.items)
	if root && st.m.opts.Patterns.Has(mine.Tile) {
		// The tiled root interleaves per-tile counter accumulation across
		// items, so per-subtree spans do not apply; one span covers it.
		var ts int64
		if st.tk != nil {
			ts = st.tk.Begin()
		}
		st.mineRootTiled(d, occ, support)
		if st.tk != nil {
			st.tk.End(ts, "root(tiled)", trace.CatKernel, int64(d.items))
		}
		return
	}
	// Descending item order: each child database only contains items
	// smaller than the extension, so every itemset is enumerated once.
	for e := dataset.Item(d.items) - 1; e >= 0; e-- {
		if support[e] < st.minsup {
			if support[e] > 0 {
				st.met.Prune()
			}
			continue
		}
		// Coarse trace boundary: each first-level subtree is one span
		// (st.tk is nil below the root and whenever tracing is disabled).
		var ts int64
		if root && st.tk != nil {
			ts = st.tk.Begin()
		}
		st.prefix = append(st.prefix, e)
		st.emit(support[e])
		st.calcFreq(d, occ[e], e)
		child := st.project(d, occ[e], e, st.cnt.get)
		st.cnt.reset(st.touched)
		if child != nil {
			st.descend(child)
		}
		st.prefix = st.prefix[:len(st.prefix)-1]
		if root && st.tk != nil {
			st.tk.End(ts, "subtree", trace.CatKernel, int64(e))
		}
	}
}

// buildOcc computes the OccArray of d — for each item the row indices of
// the transactions containing it, in increasing row order — plus each
// item's weighted support.
func buildOcc(d *cdb) ([][]int32, []int32) {
	occ := make([][]int32, d.items)
	support := make([]int32, d.items)
	for ti, t := range d.tx {
		w := d.w[ti]
		for _, it := range t {
			occ[it] = append(occ[it], int32(ti))
			support[it] += w
		}
	}
	return occ, support
}

// calcFreq is the CalcFreq hot loop: traverse the occ column of e, follow
// the row pointers, and accumulate the conditional frequencies of the items
// preceding e into st.cnt, recording which counters were touched.
func (st *state) calcFreq(d *cdb, col []int32, e dataset.Item) {
	st.touched = st.touched[:0]
	dist := st.m.opts.PrefetchDist
	if dist == 0 {
		dist = 8
	}
	prefetch := st.m.opts.Patterns.Has(mine.Prefetch)
	for i, ti := range col {
		if prefetch && i+dist < len(col) {
			// Wave-front emulation: touch the header of a row several
			// iterations ahead so the memory system streams it in.
			if ahead := d.tx[col[i+dist]]; len(ahead) > 0 {
				_ = ahead[0]
			}
		}
		w := d.w[ti]
		for _, it := range d.tx[ti] {
			if it >= e {
				break
			}
			if st.cnt.get(it) == 0 {
				st.touched = append(st.touched, it)
			}
			st.cnt.add(it, w)
		}
	}
}

// project materialises the conditional database of e: the rows of occ
// column e restricted to items below e that are frequent in the child
// (per the freq accessor), followed by RmDupTrans. Returns nil when the
// child is empty.
func (st *state) project(d *cdb, col []int32, e dataset.Item, freq func(dataset.Item) int32) *cdb {
	child := &cdb{items: int(e)}
	for _, ti := range col {
		var ct []dataset.Item
		for _, it := range d.tx[ti] {
			if it >= e {
				break
			}
			if freq(it) >= st.minsup {
				ct = append(ct, it)
			}
		}
		if len(ct) == 0 {
			continue
		}
		child.tx = append(child.tx, ct)
		child.w = append(child.w, d.w[ti])
	}
	if len(child.tx) == 0 {
		return nil
	}
	return st.m.rmDupTrans(child)
}

// mineRootTiled is the P6.1 path. The OccArray is sliced into horizontal
// tiles by transaction-offset range; the outer loop walks tiles and the
// inner loop performs the CalcFreq accumulation of every frequent column
// restricted to the tile, so one tile's transaction rows are reused across
// all columns while they are cache-resident. The per-column counters this
// requires are exactly the paper's "frequency counters … structured with
// the OccArray".
func (st *state) mineRootTiled(d *cdb, occ [][]int32, support []int32) {
	var freqItems []dataset.Item
	for e := dataset.Item(0); int(e) < d.items; e++ {
		if support[e] >= st.minsup {
			freqItems = append(freqItems, e)
		} else if support[e] > 0 {
			st.met.Prune()
		}
	}
	if len(freqItems) == 0 {
		return
	}

	// Per-column conditional frequency counters.
	cnt := make([][]int32, d.items)
	for _, e := range freqItems {
		cnt[e] = make([]int32, e)
	}

	rows := st.m.opts.TileRows
	if rows == 0 {
		// Size the tile so its transaction data (~avgLen items × 4 bytes)
		// fits a 16 KiB L1 slice.
		total := 0
		for _, t := range d.tx {
			total += len(t)
		}
		avg := total/len(d.tx) + 1
		rows = 16384 / (avg * 4)
		if rows < 64 {
			rows = 64
		}
	}

	cursor := make([]int, d.items) // per-column progress through occ
	for lo := 0; lo < len(d.tx); lo += rows {
		if st.aborted() {
			return
		}
		hi := lo + rows
		if hi > len(d.tx) {
			hi = len(d.tx)
		}
		for _, e := range freqItems {
			col := occ[e]
			cur := cursor[e]
			ce := cnt[e]
			for cur < len(col) && int(col[cur]) < hi {
				ti := col[cur]
				w := d.w[ti]
				for _, it := range d.tx[ti] {
					if it >= e {
						break
					}
					ce[it] += w
				}
				cur++
			}
			cursor[e] = cur
		}
	}

	// Consume the counters: same descending-order recursion as the
	// untiled path, but the CalcFreq work is already done.
	for i := len(freqItems) - 1; i >= 0; i-- {
		if st.aborted() {
			return
		}
		e := freqItems[i]
		st.prefix = append(st.prefix, e)
		st.emit(support[e])
		ce := cnt[e]
		child := st.project(d, occ[e], e, func(it dataset.Item) int32 { return ce[it] })
		if child != nil {
			st.descend(child)
		}
		st.prefix = st.prefix[:len(st.prefix)-1]
	}
}
