// Package loadgen drives `fpm serve` under synthetic traffic: a T1–T5
// workload taxonomy, an open/closed-loop arrival controller, and an
// HDR-style latency recorder producing p50/p95/p99/max summaries. The
// driver (cmd/fpmload) emits the results as BENCH_serve.json and gates
// them against declared latency SLO budgets, so the service's performance
// trajectory is a tracked artifact — the paper's thesis applied to the
// serving layer: an architecture-level pattern only counts when it is
// measured on the real hot path.
package loadgen

import (
	"math/bits"
	"time"
)

// Histogram bucket geometry: values (nanoseconds) are binned into
// power-of-two ranges ("exponents") split into 2^subBits linear
// sub-buckets, the classic HDR layout. With subBits = 6 every bucket's
// width is at most 1/32 of its lower bound, so any recorded value is
// reproduced with ≤ ~3.1% relative error — plenty for p99 gating — while
// Record stays O(1), allocation-free and mergeable by addition.
const (
	subBits  = 6
	subCount = 1 << subBits // sub-buckets per exponent
	expCount = 64 - subBits // exponents needed to cover uint64 range
)

// Hist is a fixed-size log-linear latency histogram. The zero value is
// ready to use. Not safe for concurrent use: the harness records into one
// Hist per worker and merges after the run (Merge), which is itself the
// property the tests pin (merged shards ≡ pooled stream).
type Hist struct {
	counts [expCount * subCount]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket. Values below
// subCount land in the exact linear region (exponent 0); above it, the
// top subBits+1 significant bits select (exponent, sub-bucket).
func bucketIndex(u uint64) int {
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - subBits // ≥ 1
	sub := u >> uint(exp)          // in [subCount/2, subCount)
	return exp*subCount + int(sub)
}

// bucketUpper is the largest value mapping to bucket i; quantiles report
// this bound so they never understate a recorded latency.
func bucketUpper(i int) int64 {
	exp := i / subCount
	sub := uint64(i % subCount)
	if exp == 0 {
		return int64(sub)
	}
	return int64((sub+1)<<uint(exp) - 1)
}

// Record adds one latency observation. Negative durations clamp to zero.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n }

// Sum returns the exact sum of recorded observations.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum) }

// Min returns the exact smallest recorded value (0 when empty).
func (h *Hist) Min() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the exact largest recorded value (0 when empty).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.n))
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) of the
// recorded stream, within the bucket relative error of the true sorted-
// sample quantile sorted[ceil(q*n)-1]. The bound is clamped to the exact
// observed extrema, so Quantile(0) == Min and Quantile(1) == Max.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	f := q * float64(h.n)
	rank := uint64(f)
	if float64(rank) < f {
		rank++ // ceil(q*n)
	}
	if rank == 0 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max) // unreachable: counts sum to n
}

// Merge adds other's observations into h. Merging per-worker histograms
// yields bit-identical counts to recording the pooled stream into one
// histogram — the property that makes per-worker recording safe.
func (h *Hist) Merge(other *Hist) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Summary is the JSON-facing digest of one histogram, in nanoseconds —
// the unit the rest of the repo's machine-readable artifacts use.
type Summary struct {
	Count  uint64  `json:"count"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
	MeanNS int64   `json:"mean_ns"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summarize digests the histogram.
func (h *Hist) Summarize() Summary {
	s := Summary{
		Count:  h.n,
		P50NS:  int64(h.Quantile(0.50)),
		P95NS:  int64(h.Quantile(0.95)),
		P99NS:  int64(h.Quantile(0.99)),
		MaxNS:  int64(h.Max()),
		MeanNS: int64(h.Mean()),
	}
	s.P50MS = float64(s.P50NS) / 1e6
	s.P99MS = float64(s.P99NS) / 1e6
	return s
}
