// Package loadgen drives `fpm serve` under synthetic traffic: a T1–T5
// workload taxonomy, an open/closed-loop arrival controller, and an
// HDR-style latency recorder producing p50/p95/p99/max summaries. The
// driver (cmd/fpmload) emits the results as BENCH_serve.json and gates
// them against declared latency SLO budgets, so the service's performance
// trajectory is a tracked artifact — the paper's thesis applied to the
// serving layer: an architecture-level pattern only counts when it is
// measured on the real hot path.
package loadgen

import "fpm/internal/hdr"

// Hist is the shared log-linear recorder (internal/hdr), re-exported so
// the harness's public types keep their names. The server records its
// per-job latencies into the same geometry, which is what makes the
// harness's cross-check of server-reported quantiles against its own
// (-scrape-final) valid within one shared 1/32 error bound. Values are
// nanoseconds here; hdr.Hist itself is unit-agnostic int64.
type Hist = hdr.Hist

// Summary is the JSON-facing digest of one histogram, in nanoseconds.
type Summary = hdr.Summary
