package loadgen

import "fmt"

// SLO is one workload's service-level budget. Zero-valued latency fields
// mean "no budget"; rates are fractions of total ops. The CI load-smoke
// job runs short loads against these budgets, so tightening one (or
// regressing the service) fails the gate.
type SLO struct {
	// AdmitP99MS bounds the p99 POST /jobs round trip — queue-admission
	// latency, the part of the path the service controls even when mining
	// itself is slow.
	AdmitP99MS float64 `json:"admit_p99_ms,omitempty"`
	// E2EP99MS bounds the p99 submit→terminal latency.
	E2EP99MS float64 `json:"e2e_p99_ms,omitempty"`
	// MaxFailRate bounds unexpected job failures (state "failed" that is
	// not a per-job deadline) as a fraction of ops.
	MaxFailRate float64 `json:"max_fail_rate"`
	// MaxRejectRate bounds 429 backpressure rejections as a fraction of
	// ops; negative disables the bound.
	MaxRejectRate float64 `json:"max_reject_rate"`
	// RequireZeroDropped demands that every admitted job reached a
	// terminal state observed by the harness (no lost results).
	RequireZeroDropped bool `json:"require_zero_dropped,omitempty"`
	// RequireZeroDivergence demands that every completed hot-key
	// repetition reported the same itemset count (T3).
	RequireZeroDivergence bool `json:"require_zero_divergence,omitempty"`
	// MinOps fails the run if the harness completed fewer operations —
	// a guard against a gate that "passes" by measuring nothing.
	MinOps int `json:"min_ops,omitempty"`
	// MinCancelled fails a cancellation workload that never actually
	// cancelled anything (T4).
	MinCancelled int `json:"min_cancelled,omitempty"`
}

// Violation is one budget breach.
type Violation struct {
	Workload string  `json:"workload"`
	Budget   string  `json:"budget"`
	Limit    float64 `json:"limit"`
	Actual   float64 `json:"actual"`
	Detail   string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %.4g > limit %.4g (%s)", v.Workload, v.Budget, v.Actual, v.Limit, v.Detail)
}

// Check evaluates the budget against a workload result.
func (s SLO) Check(r WorkloadResult) []Violation {
	var out []Violation
	add := func(budget string, limit, actual float64, detail string) {
		out = append(out, Violation{Workload: r.Workload, Budget: budget, Limit: limit, Actual: actual, Detail: detail})
	}
	if s.AdmitP99MS > 0 && r.Admit.Count > 0 {
		if got := float64(r.Admit.P99NS) / 1e6; got > s.AdmitP99MS {
			add("admit_p99_ms", s.AdmitP99MS, got, "p99 queue-admission latency over budget")
		}
	}
	if s.E2EP99MS > 0 && r.E2E.Count > 0 {
		if got := float64(r.E2E.P99NS) / 1e6; got > s.E2EP99MS {
			add("e2e_p99_ms", s.E2EP99MS, got, "p99 end-to-end latency over budget")
		}
	}
	if r.Ops > 0 {
		if rate := float64(r.Failed) / float64(r.Ops); rate > s.MaxFailRate {
			add("max_fail_rate", s.MaxFailRate, rate, fmt.Sprintf("%d of %d jobs failed unexpectedly", r.Failed, r.Ops))
		}
		if s.MaxRejectRate >= 0 {
			if rate := float64(r.Rejected) / float64(r.Ops); rate > s.MaxRejectRate {
				add("max_reject_rate", s.MaxRejectRate, rate, fmt.Sprintf("%d of %d submissions rejected (429)", r.Rejected, r.Ops))
			}
		}
	}
	if s.RequireZeroDropped && r.Errors > 0 {
		add("zero_dropped", 0, float64(r.Errors), "admitted jobs whose result was lost")
	}
	if s.RequireZeroDivergence && r.HotDivergence > 0 {
		add("zero_divergence", 0, float64(r.HotDivergence), "hot-key repetitions disagreed on the itemset count")
	}
	if s.MinOps > 0 && r.Ops < s.MinOps {
		add("min_ops", float64(s.MinOps), float64(r.Ops), "harness completed too few operations to gate on")
	}
	if s.MinCancelled > 0 && r.Cancelled+r.Deadline < s.MinCancelled {
		add("min_cancelled", float64(s.MinCancelled), float64(r.Cancelled+r.Deadline), "cancellation storm never cancelled a job")
	}
	return out
}
