package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"fpm"
	"fpm/internal/telemetry"
)

// World is the on-disk corpus set a load run mines against: three Quest
// datasets spanning the job-size spectrum. Built once per run (BuildWorld)
// so every workload and every PR measures the same inputs.
type World struct {
	Dir string
	// Small mines in ~a millisecond: the queue/admission overhead
	// dominates, which is exactly what T1 measures.
	Small string
	// Medium mines in tens of milliseconds: the T2/T3/T5 mixed workhorse.
	Medium string
	// Slow mines long enough (hundreds of ms at SlowSup) for T4's
	// cancellations to land mid-run rather than in the queue.
	Slow string

	SmallSup, MediumSup, SlowSup int
}

// BuildWorld generates the corpus set under dir (created if needed).
// Generation is seeded: the same seed reproduces the same bytes. A file
// that already holds exactly the bytes we would write is left untouched
// (mtime preserved), so a server's input identities — and therefore its
// durable result-cache snapshot — survive a rebuild of the same world:
// the kill-restart smoke depends on the restored cache still matching.
func BuildWorld(dir string, seed int64) (World, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return World{}, err
	}
	w := World{
		Dir:      dir,
		Small:    filepath.Join(dir, "small.dat"),
		Medium:   filepath.Join(dir, "medium.dat"),
		Slow:     filepath.Join(dir, "slow.dat"),
		SmallSup: 5, MediumSup: 12, SlowSup: 6,
	}
	gens := []struct {
		path string
		cfg  fpm.QuestConfig
	}{
		{w.Small, fpm.QuestConfig{Transactions: 600, AvgLen: 6, AvgPatternLen: 3, Items: 200, Patterns: 400, Seed: seed}},
		{w.Medium, fpm.QuestConfig{Transactions: 4000, AvgLen: 10, AvgPatternLen: 4, Items: 400, Patterns: 800, Seed: seed + 1}},
		{w.Slow, fpm.QuestConfig{Transactions: 12000, AvgLen: 14, AvgPatternLen: 6, Items: 500, Patterns: 1000, Seed: seed + 2}},
	}
	for _, g := range gens {
		var buf bytes.Buffer
		if err := fpm.WriteFIMI(&buf, fpm.GenerateQuest(g.cfg)); err != nil {
			return World{}, fmt.Errorf("loadgen: generating %s: %w", g.path, err)
		}
		if old, err := os.ReadFile(g.path); err == nil && bytes.Equal(old, buf.Bytes()) {
			continue // identical content: keep the existing file (and its identity)
		}
		if err := os.WriteFile(g.path, buf.Bytes(), 0o644); err != nil {
			return World{}, fmt.Errorf("loadgen: generating %s: %w", g.path, err)
		}
	}
	return w, nil
}

// Outcome classifies one operation.
const (
	OutcomeDone        = "done"        // job finished successfully
	OutcomeFailed      = "failed"      // job failed unexpectedly
	OutcomeDeadline    = "deadline"    // job overran its per-job timeout_ms (expected in T4)
	OutcomeCancelled   = "cancelled"   // job cancelled (expected in T4)
	OutcomeRejected    = "rejected"    // POST /jobs returned 429 (backpressure)
	OutcomeError       = "error"       // transport/protocol error: a dropped result
	OutcomeInterrupted = "interrupted" // run context cancelled mid-wait (drain)
)

// Sample is one operation's measurement.
type Sample struct {
	Outcome string
	// AdmitNS is the POST /jobs round-trip (queue-admission latency).
	AdmitNS int64
	// E2ENS is submission (or scheduled arrival, open loop) → terminal state.
	E2ENS int64
	// QueueNS/MineNS split the server-side lifetime from the job record's
	// submitted/started/finished timestamps.
	QueueNS, MineNS int64
	// Itemsets and Hot feed the T3 result-consistency check.
	Itemsets int
	Hot      bool
	// FromCache marks a job the server answered from its result cache
	// (job record's served_from_cache); such jobs report mine time ≈ 0,
	// and the latency split must attribute that honestly.
	FromCache bool
}

// Op issues one operation against the server and reports its sample.
// The error return is reserved for harness bugs; service-level failures
// are outcomes.
type Op func(ctx context.Context, c *Client, rng *rand.Rand) Sample

// Spec is one workload in the taxonomy.
type Spec struct {
	Name  string // "T1".."T6"
	Title string
	Desc  string
	// Loop selects the arrival process: "open" (fixed QPS arrivals,
	// latency measured from scheduled arrival — coordinated-omission
	// safe) or "closed" (workers issue the next op when the previous
	// completes, optionally capped at QPS).
	Loop string
	// NewOp builds the workload's operation against a world.
	NewOp func(w World) Op
	// SLO is the workload's default latency/error budget.
	SLO SLO
}

// classify maps a terminal job record to an outcome.
func classify(job telemetry.Job) string {
	switch job.State {
	case "done":
		return OutcomeDone
	case "cancelled":
		return OutcomeCancelled
	case "failed":
		if strings.Contains(job.Error, "deadline") {
			return OutcomeDeadline
		}
		return OutcomeFailed
	}
	return OutcomeError
}

// finishSample fills the server-side split from a terminal job record.
func finishSample(s *Sample, job telemetry.Job) {
	s.Outcome = classify(job)
	s.Itemsets = job.Itemsets
	s.FromCache = job.ServedFromCache
	if !job.Started.IsZero() {
		s.QueueNS = job.Started.Sub(job.Submitted).Nanoseconds()
		if !job.Finished.IsZero() {
			s.MineNS = job.Finished.Sub(job.Started).Nanoseconds()
		}
	} else if !job.Finished.IsZero() { // cancelled straight out of the queue
		s.QueueNS = job.Finished.Sub(job.Submitted).Nanoseconds()
	}
}

// submitAndWait is the common op body: POST, classify the admission, then
// poll to a terminal state. after, when non-nil, runs between admission
// and the wait (T4 uses it to fire the DELETE).
func submitAndWait(ctx context.Context, c *Client, req telemetry.JobRequest, hot bool, after func(id int)) Sample {
	start := time.Now()
	job, code, err := c.Submit(ctx, req)
	s := Sample{AdmitNS: time.Since(start).Nanoseconds(), Hot: hot}
	if err != nil {
		if ctx.Err() != nil {
			s.Outcome = OutcomeInterrupted
		} else {
			s.Outcome = OutcomeError
		}
		return s
	}
	if code != 202 {
		s.Outcome = OutcomeRejected
		return s
	}
	if after != nil {
		after(job.ID)
	}
	final, err := c.WaitTerminal(ctx, job.ID)
	s.E2ENS = time.Since(start).Nanoseconds()
	if err != nil {
		if ctx.Err() != nil {
			s.Outcome = OutcomeInterrupted
		} else {
			s.Outcome = OutcomeError // admitted but lost: a dropped result
		}
		return s
	}
	finishSample(&s, final)
	return s
}

// Taxonomy is the T1–T6 workload set, in the NikolasRummel bench style:
// each row isolates one service behaviour so a regression pins to a cause.
var Taxonomy = []Spec{
	{
		Name:  "T1",
		Title: "uniform-small",
		Desc:  "Open-loop stream of identical small jobs: queue-admission and scheduling overhead, undiluted by mining time.",
		Loop:  "open",
		NewOp: func(w World) Op {
			return func(ctx context.Context, c *Client, rng *rand.Rand) Sample {
				return submitAndWait(ctx, c, telemetry.JobRequest{
					Path: w.Small, Algo: "lcm", MinSupport: w.SmallSup, Workers: 1,
				}, false, nil)
			}
		},
		SLO: SLO{AdmitP99MS: 250, E2EP99MS: 5000, MaxFailRate: 0, MaxRejectRate: 0.5, RequireZeroDropped: true, MinOps: 1},
	},
	{
		Name:  "T2",
		Title: "mixed-sizes",
		Desc:  "Closed-loop mix of small/medium/slow jobs across kernels: head-of-line blocking of short jobs behind long ones.",
		Loop:  "closed",
		NewOp: func(w World) Op {
			kernels := []string{"lcm", "eclat", "fpgrowth"}
			return func(ctx context.Context, c *Client, rng *rand.Rand) Sample {
				req := telemetry.JobRequest{Algo: kernels[rng.Intn(len(kernels))], Workers: 1}
				switch p := rng.Float64(); {
				case p < 0.60:
					req.Path, req.MinSupport = w.Small, w.SmallSup
				case p < 0.90:
					req.Path, req.MinSupport = w.Medium, w.MediumSup
				default:
					req.Path, req.MinSupport = w.Slow, w.SlowSup*3
				}
				return submitAndWait(ctx, c, req, false, nil)
			}
		},
		SLO: SLO{AdmitP99MS: 250, E2EP99MS: 20000, MaxFailRate: 0, MaxRejectRate: 0.5, RequireZeroDropped: true, MinOps: 1},
	},
	{
		Name:  "T3",
		Title: "hot-key",
		Desc:  "90% repetitions of one medium request, 10% cold variants: the dataset/result-reuse opportunity, plus a result-consistency check (every hot run must report the same itemset count).",
		Loop:  "closed",
		NewOp: func(w World) Op {
			return func(ctx context.Context, c *Client, rng *rand.Rand) Sample {
				if rng.Float64() < 0.90 {
					return submitAndWait(ctx, c, telemetry.JobRequest{
						Path: w.Medium, Algo: "lcm", MinSupport: w.MediumSup, Workers: 1,
					}, true, nil)
				}
				return submitAndWait(ctx, c, telemetry.JobRequest{
					Path: w.Medium, Algo: "eclat", MinSupport: w.MediumSup + rng.Intn(20), Workers: 1,
				}, false, nil)
			}
		},
		SLO: SLO{AdmitP99MS: 250, E2EP99MS: 20000, MaxFailRate: 0, MaxRejectRate: 0.5, RequireZeroDropped: true, RequireZeroDivergence: true, MinOps: 1},
	},
	{
		Name:  "T4",
		Title: "cancel-storm",
		Desc:  "Slow jobs cancelled mid-flight: 50% DELETE after a random beat, 25% tiny timeout_ms, 25% run to completion. Exercises cooperative unwind under churn; cancelled/deadline outcomes are expected, dropped results are not.",
		Loop:  "closed",
		NewOp: func(w World) Op {
			return func(ctx context.Context, c *Client, rng *rand.Rand) Sample {
				req := telemetry.JobRequest{Path: w.Slow, Algo: "lcm", MinSupport: w.SlowSup, Workers: 1}
				switch p := rng.Float64(); {
				case p < 0.50:
					delay := time.Duration(rng.Intn(15)+1) * time.Millisecond
					return submitAndWait(ctx, c, req, false, func(id int) {
						time.Sleep(delay)
						_, _ = c.Cancel(ctx, id)
					})
				case p < 0.75:
					req.TimeoutMS = int64(rng.Intn(15) + 5)
					return submitAndWait(ctx, c, req, false, nil)
				default:
					req.MinSupport = w.SlowSup * 4 // completable quickly
					return submitAndWait(ctx, c, req, false, nil)
				}
			}
		},
		SLO: SLO{AdmitP99MS: 250, E2EP99MS: 30000, MaxFailRate: 0, MaxRejectRate: 0.5, RequireZeroDropped: true, MinOps: 1, MinCancelled: 1},
	},
	{
		Name:  "T5",
		Title: "sustained",
		Desc:  "Closed-loop sustained concurrency on the small/medium mix: steady-state saturation throughput and tail latency.",
		Loop:  "closed",
		NewOp: func(w World) Op {
			return func(ctx context.Context, c *Client, rng *rand.Rand) Sample {
				req := telemetry.JobRequest{Algo: "lcm", Workers: 1}
				if rng.Float64() < 0.75 {
					req.Path, req.MinSupport = w.Small, w.SmallSup
				} else {
					req.Path, req.MinSupport = w.Medium, w.MediumSup
				}
				return submitAndWait(ctx, c, req, false, nil)
			}
		},
		SLO: SLO{AdmitP99MS: 250, E2EP99MS: 20000, MaxFailRate: 0, MaxRejectRate: 0.5, RequireZeroDropped: true, MinOps: 1},
	},
	{
		Name:  "T6",
		Title: "cache-miss",
		Desc:  "Closed-loop stream of freshly generated small datasets: every submission is a new input identity, so the dataset cache misses (full FIMI parse) and the result cache cannot answer — the cache-miss floor under the same checkout whose hot-key ceiling T3 measures. Any hot-path regression the caches would otherwise mask shows up here.",
		Loop:  "closed",
		NewOp: func(w World) Op {
			// A shared counter keeps per-op filenames unique across workers;
			// the per-op seed makes each dataset's content (and so its input
			// identity: size + content-prefix hash) distinct.
			var n atomic.Int64
			kernels := []string{"lcm", "eclat", "fpgrowth"}
			return func(ctx context.Context, c *Client, rng *rand.Rand) Sample {
				path := filepath.Join(w.Dir, fmt.Sprintf("cold-%06d.dat", n.Add(1)))
				db := fpm.GenerateQuest(fpm.QuestConfig{
					Transactions: 500 + rng.Intn(700), AvgLen: 6, AvgPatternLen: 3,
					Items: 200, Patterns: 400, Seed: rng.Int63(),
				})
				if err := fpm.WriteFIMIFile(path, db); err != nil {
					return Sample{Outcome: OutcomeError}
				}
				defer os.Remove(path) // bound disk: the identity is dead after the job
				return submitAndWait(ctx, c, telemetry.JobRequest{
					Path:       path,
					Algo:       kernels[rng.Intn(len(kernels))],
					MinSupport: w.SmallSup + rng.Intn(4),
					Workers:    1,
				}, false, nil)
			}
		},
		SLO: SLO{AdmitP99MS: 250, E2EP99MS: 20000, MaxFailRate: 0, MaxRejectRate: 0.5, RequireZeroDropped: true, MinOps: 1},
	},
}

// SpecByName returns the taxonomy entry named name ("T1".."T6").
func SpecByName(name string) (Spec, bool) {
	for _, s := range Taxonomy {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
