package loadgen

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// RunConfig shapes one workload run.
type RunConfig struct {
	// Duration bounds new-arrival generation; in-flight operations finish
	// (or are interrupted by ctx) after it elapses.
	Duration time.Duration
	// Workers is the client concurrency (default 4).
	Workers int
	// QPS caps the arrival rate. Open-loop workloads require it (default
	// 20); for closed-loop workloads 0 means "as fast as completions
	// allow".
	QPS float64
	// Seed derives each worker's deterministic request stream.
	Seed int64
	// SLO, when non-nil, replaces the workload's default budget.
	SLO *SLO
	// ServerE2E, when non-nil, receives every sample's server-side
	// end-to-end latency (QueueNS + MineNS, i.e. the job's Finished −
	// Submitted — the exact value the server records into its own
	// fpm_job_e2e_seconds histogram). The caller owns the accumulator and
	// can merge runs, then cross-check its quantiles against a final
	// /metrics scrape.
	ServerE2E *Hist
}

// collector accumulates one worker's samples; workers never share state,
// and the per-worker histograms are merged after the run — the same
// discipline the mining layer uses for its shard arenas, and the property
// the histogram tests pin.
type collector struct {
	admit, e2e, queue, mine Hist
	// srv mirrors the server's own e2e recording: queue + mine from the
	// job's timestamps, excluding the client's polling overhead.
	srv         Hist
	counts      map[string]int
	hotCounts   map[int]int
	cacheServed int
}

func newCollector() *collector {
	return &collector{counts: make(map[string]int), hotCounts: make(map[int]int)}
}

func (col *collector) record(s Sample) {
	col.counts[s.Outcome]++
	switch s.Outcome {
	case OutcomeInterrupted:
		return // cut off mid-wait: its latency would be a drain artifact
	case OutcomeRejected, OutcomeError:
		col.admit.Record(s.AdmitNS)
		return
	}
	col.admit.Record(s.AdmitNS)
	col.e2e.Record(s.E2ENS)
	col.queue.Record(s.QueueNS)
	col.mine.Record(s.MineNS)
	col.srv.Record(s.QueueNS + s.MineNS)
	if s.Hot && s.Outcome == OutcomeDone {
		col.hotCounts[s.Itemsets]++
	}
	if s.FromCache && s.Outcome == OutcomeDone {
		col.cacheServed++
	}
}

func (col *collector) merge(other *collector) {
	col.admit.Merge(&other.admit)
	col.e2e.Merge(&other.e2e)
	col.queue.Merge(&other.queue)
	col.mine.Merge(&other.mine)
	col.srv.Merge(&other.srv)
	for k, v := range other.counts {
		col.counts[k] += v
	}
	for k, v := range other.hotCounts {
		col.hotCounts[k] += v
	}
	col.cacheServed += other.cacheServed
}

// RunWorkload drives one workload against the server behind c and
// assembles its result, including the final backpressure gauges and the
// SLO verdict. A cancelled ctx (SIGTERM drain) stops arrivals and
// interrupts in-flight waits; the partial result is still returned.
func RunWorkload(ctx context.Context, c *Client, w World, spec Spec, cfg RunConfig) (WorkloadResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	qps := cfg.QPS
	if spec.Loop == "open" && qps <= 0 {
		qps = 20
	}

	op := spec.NewOp(w)
	cols := make([]*collector, cfg.Workers)
	for i := range cols {
		cols[i] = newCollector()
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	var overflow int
	if spec.Loop == "open" {
		runOpenLoop(ctx, c, op, cols, cfg, qps, deadline, &wg, &overflow)
	} else {
		runClosedLoop(ctx, c, op, cols, cfg, qps, deadline, &wg)
	}
	wg.Wait()
	cols[0].counts[OutcomeRejected] += overflow
	elapsed := time.Since(start)

	// Merge the per-worker shards and assemble the result.
	col := cols[0]
	for _, other := range cols[1:] {
		col.merge(other)
	}
	res := WorkloadResult{
		Workload:   spec.Name,
		Title:      spec.Title,
		Loop:       spec.Loop,
		Workers:    cfg.Workers,
		QPS:        qps,
		DurationNS: elapsed.Nanoseconds(),

		Done:        col.counts[OutcomeDone],
		Failed:      col.counts[OutcomeFailed],
		Deadline:    col.counts[OutcomeDeadline],
		Cancelled:   col.counts[OutcomeCancelled],
		Rejected:    col.counts[OutcomeRejected],
		Errors:      col.counts[OutcomeError],
		Interrupted: col.counts[OutcomeInterrupted],

		Admit:     col.admit.Summarize(),
		E2E:       col.e2e.Summarize(),
		QueueWait: col.queue.Summarize(),
		MineTime:  col.mine.Summarize(),
		ServerE2E: col.srv.Summarize(),
	}
	if cfg.ServerE2E != nil {
		cfg.ServerE2E.Merge(&col.srv)
	}
	for _, n := range col.counts {
		res.Ops += n
	}
	res.Ops -= res.Interrupted
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Done) / sec
	}
	res.CacheServed = col.cacheServed
	for _, n := range col.hotCounts {
		res.HotRuns += n
	}
	if len(col.hotCounts) > 1 {
		res.HotDivergence = len(col.hotCounts) - 1
	}

	// Let the server drain, then snapshot the backpressure gauges so the
	// artifact records the post-workload steady state. Skipped when the
	// run was interrupted (the server may be gone).
	if ctx.Err() == nil {
		idleCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		if err := c.WaitIdle(idleCtx); err == nil {
			if m, err := c.Metrics(idleCtx); err == nil {
				res.Gauges = make(map[string]float64)
				for k, v := range m {
					if strings.HasPrefix(k, "fpm_jobs_") || strings.HasPrefix(k, "fpm_cache_") {
						res.Gauges[k] = v
					}
				}
			}
		}
	}

	slo := spec.SLO
	if cfg.SLO != nil {
		slo = *cfg.SLO
	}
	res.SLO = slo
	res.Violations = slo.Check(res)
	res.Pass = len(res.Violations) == 0
	return res, nil
}

// runClosedLoop starts cfg.Workers goroutines that each issue the next
// operation as soon as the previous one completes, optionally pacing the
// fleet through a shared QPS token ticker.
func runClosedLoop(ctx context.Context, c *Client, op Op, cols []*collector, cfg RunConfig, qps float64, deadline time.Time, wg *sync.WaitGroup) {
	var gate *time.Ticker
	if qps > 0 {
		gate = time.NewTicker(time.Duration(float64(time.Second) / qps))
	}
	for i := range cols {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			col := cols[id]
			for time.Now().Before(deadline) && ctx.Err() == nil {
				if gate != nil {
					select {
					case <-gate.C:
					case <-ctx.Done():
						return
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				col.record(op(ctx, c, rng))
			}
		}(i)
	}
	if gate != nil {
		go func() { // stop the ticker once everyone is done
			wg.Wait()
			gate.Stop()
		}()
	}
}

// runOpenLoop generates arrivals at a fixed rate regardless of
// completions — the ssbench shape. Each arrival carries its scheduled
// time; latency is measured from it, so client-side backlog waits count
// against the service (no coordinated omission). The backlog is bounded:
// arrivals that find every worker and backlog slot busy are dropped and
// counted into *overflow (folded into the rejected outcome after the run
// — backpressure is backpressure wherever it bites).
func runOpenLoop(ctx context.Context, c *Client, op Op, cols []*collector, cfg RunConfig, qps float64, deadline time.Time, wg *sync.WaitGroup, overflow *int) {
	arrivals := make(chan time.Time, cfg.Workers*4)
	for i := range cols {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			col := cols[id]
			for scheduled := range arrivals {
				backlog := time.Since(scheduled)
				s := op(ctx, c, rng)
				if s.E2ENS > 0 {
					s.E2ENS += backlog.Nanoseconds()
				}
				col.record(s)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(arrivals)
		tick := time.NewTicker(time.Duration(float64(time.Second) / qps))
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-tick.C:
				if !now.Before(deadline) {
					return
				}
				select {
				case arrivals <- now:
				default:
					*overflow++ // fleet cannot absorb the configured rate
				}
			}
		}
	}()
}
