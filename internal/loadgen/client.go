package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fpm/internal/telemetry"
)

// Client speaks the `fpm serve` job API over real HTTP. It reuses the
// telemetry package's request/record types so the wire schema is
// single-sourced.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:9090".
	Base string
	// HC is the underlying HTTP client; nil means a dedicated client with
	// a generous per-request timeout (the job API itself is async — only
	// submit/poll/cancel round trips ride on it).
	HC *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: base, HC: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// Submit POSTs a job and returns the accepted record and the HTTP status
// code. A 429 (queue full) or 503 (shutting down) is not an error at this
// layer: the harness counts rejections as an outcome, so err != nil only
// for transport failures or unexpected statuses.
func (c *Client) Submit(ctx context.Context, req telemetry.JobRequest) (telemetry.Job, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return telemetry.Job{}, 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return telemetry.Job{}, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return telemetry.Job{}, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var job telemetry.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			return telemetry.Job{}, resp.StatusCode, err
		}
		return job, resp.StatusCode, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return telemetry.Job{}, resp.StatusCode, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return telemetry.Job{}, resp.StatusCode, fmt.Errorf("POST /jobs: unexpected %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
}

// getJSON GETs path and decodes the JSON payload into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Job GETs one job record.
func (c *Client) Job(ctx context.Context, id int) (telemetry.Job, error) {
	var job telemetry.Job
	err := c.getJSON(ctx, fmt.Sprintf("/jobs/%d", id), &job)
	return job, err
}

// Cancel DELETEs a job (cooperative: the record may still read "running";
// poll Job for the terminal state).
func (c *Client) Cancel(ctx context.Context, id int) (telemetry.Job, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, fmt.Sprintf("%s/jobs/%d", c.Base, id), nil)
	if err != nil {
		return telemetry.Job{}, err
	}
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return telemetry.Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return telemetry.Job{}, fmt.Errorf("DELETE /jobs/%d: %d: %s", id, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var job telemetry.Job
	return job, json.NewDecoder(resp.Body).Decode(&job)
}

// terminal reports whether a job state is final.
func terminal(state string) bool {
	switch state {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// WaitTerminal polls a job until it reaches a terminal state. The poll
// interval backs off geometrically from pollMin to pollMax so short jobs
// resolve in one or two round trips without hammering long ones.
func (c *Client) WaitTerminal(ctx context.Context, id int) (telemetry.Job, error) {
	const (
		pollMin = 500 * time.Microsecond
		pollMax = 50 * time.Millisecond
	)
	interval := pollMin
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return job, err
		}
		if terminal(job.State) {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-time.After(interval):
		}
		if interval *= 2; interval > pollMax {
			interval = pollMax
		}
	}
}

// Progress GETs the /progress payload.
func (c *Client) Progress(ctx context.Context) (telemetry.Progress, error) {
	var p telemetry.Progress
	err := c.getJSON(ctx, "/progress", &p)
	return p, err
}

// Metrics scrapes /metrics and returns the unlabelled samples by name
// (labelled families like fpm_worker_tasks_total are skipped — the
// harness watches scalar gauges: fpm_jobs_queued, fpm_jobs_running, ...).
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	body, err := c.MetricsText(ctx)
	if err != nil {
		return nil, err
	}
	return ParsePrometheus(body), nil
}

// MetricsText scrapes /metrics and returns the raw text exposition, for
// callers that need the labelled families (histogram buckets) too.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics: %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// ParsePrometheus extracts the unlabelled `name value` samples from a
// Prometheus text exposition.
func ParsePrometheus(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// WaitIdle polls the job gauges until the server has no queued or running
// job, so consecutive workloads do not bleed into each other's latency.
func (c *Client) WaitIdle(ctx context.Context) error {
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		if m["fpm_jobs_queued"] == 0 && m["fpm_jobs_running"] == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}
