package loadgen

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"fpm/internal/serve"
)

// startServer self-hosts the production serve wiring for harness tests.
func startServer(t *testing.T, queueCap int) *Client {
	t.Helper()
	srv, store := serve.New(serve.Config{QueueCap: queueCap})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		store.Shutdown()
		ts.Close()
	})
	return NewClient(ts.URL)
}

func buildTestWorld(t *testing.T) World {
	t.Helper()
	w, err := BuildWorld(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRunWorkloadT1EndToEnd drives the open-loop T1 workload against the
// real miner for a short window and sanity-checks the whole result: ops
// landed, nothing dropped, the latency split is populated and ordered
// (queue+mine ≤ e2e at the median), and the post-drain gauges are clean.
func TestRunWorkloadT1EndToEnd(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T1")

	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 900 * time.Millisecond, Workers: 2, QPS: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Done == 0 {
		t.Fatalf("no operations completed: %+v", res)
	}
	if res.Errors != 0 || res.Failed != 0 {
		t.Fatalf("T1 against a healthy server dropped results: %+v", res)
	}
	if res.E2E.Count != uint64(res.Done) {
		t.Fatalf("e2e histogram holds %d samples, want %d done", res.E2E.Count, res.Done)
	}
	if res.Admit.P99NS <= 0 || res.E2E.P50NS <= 0 || res.MineTime.P50NS <= 0 {
		t.Fatalf("latency split not populated: admit=%+v e2e=%+v mine=%+v", res.Admit, res.E2E, res.MineTime)
	}
	if res.QueueWait.P50NS+res.MineTime.P50NS > res.E2E.P99NS {
		t.Fatalf("median server-side split exceeds e2e tail: queue=%d mine=%d e2e p99=%d",
			res.QueueWait.P50NS, res.MineTime.P50NS, res.E2E.P99NS)
	}
	if res.Gauges["fpm_jobs_queued"] != 0 || res.Gauges["fpm_jobs_running"] != 0 {
		t.Fatalf("post-drain gauges: %+v", res.Gauges)
	}
	if res.Gauges["fpm_jobs_done_total"] < float64(res.Done) {
		t.Fatalf("server counted %v done, harness saw %d", res.Gauges["fpm_jobs_done_total"], res.Done)
	}
	if !res.Pass {
		t.Fatalf("default SLO must pass on a clean tree: %+v", res.Violations)
	}
}

// TestRunWorkloadT4CancelStorm: the storm must actually cancel jobs, and
// every outcome must still be accounted for.
func TestRunWorkloadT4CancelStorm(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T4")

	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 900 * time.Millisecond, Workers: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled+res.Deadline == 0 {
		t.Fatalf("cancel storm cancelled nothing: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("storm dropped results: %+v", res)
	}
	if got := res.Done + res.Failed + res.Deadline + res.Cancelled + res.Rejected; got != res.Ops {
		t.Fatalf("outcomes sum to %d, ops = %d", got, res.Ops)
	}
}

// TestRunWorkloadT3CachedSplit pins the cached-job latency accounting end
// to end: a hot-key run against the cached serve wiring must report jobs
// served from the result cache, and those jobs' server-side split must
// collapse the mine leg to ~zero (the regression this guards: cached jobs
// once reported phantom mine time because the timestamps were stamped as
// if a kernel had run).
func TestRunWorkloadT3CachedSplit(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T3")

	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 1200 * time.Millisecond, Workers: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 || res.Errors != 0 || res.Failed != 0 {
		t.Fatalf("unhealthy T3 run: %+v", res)
	}
	if res.CacheServed == 0 {
		t.Fatalf("hot-key run never served from cache: %+v", res)
	}
	if res.CacheServed*2 < res.Done {
		t.Fatalf("cache served only %d of %d done hot-key ops", res.CacheServed, res.Done)
	}
	// With the majority of ops cache-served, the median mine time must be
	// the collapsed ≈0 of a cache hit, far below a real medium mine.
	if res.MineTime.P50NS > (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("median mine time %v with %d/%d ops cache-served: cached jobs are reporting phantom mine time",
			time.Duration(res.MineTime.P50NS), res.CacheServed, res.Done)
	}
	if res.HotDivergence != 0 {
		t.Fatalf("cached hot runs diverged: %d distinct itemset counts", res.HotDivergence+1)
	}
	if res.Gauges["fpm_jobs_cache_served_total"] < float64(res.CacheServed) {
		t.Fatalf("server counted %v cache-served, harness saw %d",
			res.Gauges["fpm_jobs_cache_served_total"], res.CacheServed)
	}
}

// TestRunWorkloadT6AllCold: every T6 submission is a freshly generated
// input identity, so nothing may be served from cache, and the per-op
// dataset files must be cleaned up after their jobs finish.
func TestRunWorkloadT6AllCold(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T6")

	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 1200 * time.Millisecond, Workers: 4, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 || res.Errors != 0 || res.Failed != 0 {
		t.Fatalf("unhealthy T6 run: %+v", res)
	}
	if res.CacheServed != 0 {
		t.Fatalf("cold sweep was served from cache %d times", res.CacheServed)
	}
	if res.Gauges["fpm_cache_dataset_hits_total"] != 0 {
		t.Fatalf("distinct identities hit the dataset cache: %+v", res.Gauges)
	}
	left, err := filepath.Glob(filepath.Join(world.Dir, "cold-*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d per-op datasets left behind: %v", len(left), left[:min(len(left), 3)])
	}
}

// TestSLOGateFailsWhenTightened demonstrates the regression gate's teeth:
// the same healthy run that passes default budgets must fail when the
// admission budget is artificially tightened below the floor.
func TestSLOGateFailsWhenTightened(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T1")

	tight := spec.SLO
	tight.AdmitP99MS = 0.000001 // one nanosecond: unmeetable
	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 500 * time.Millisecond, Workers: 2, QPS: 40, Seed: 3, SLO: &tight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || len(res.Violations) == 0 {
		t.Fatalf("tightened budget must fail the gate: %+v", res)
	}
	found := false
	for _, v := range res.Violations {
		if v.Budget == "admit_p99_ms" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an admit_p99_ms violation, got %+v", res.Violations)
	}
}

// TestRunWorkloadInterrupted: cancelling the run context mid-flight (the
// SIGTERM drain path) stops arrivals promptly and still returns an
// accounted partial result.
func TestRunWorkloadInterrupted(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T5")

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunWorkload(ctx, c, world, spec, RunConfig{Duration: 30 * time.Second, Workers: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("interrupted run took %v to unwind", elapsed)
	}
	if res.Ops+res.Interrupted == 0 {
		t.Fatal("interrupted run recorded nothing")
	}
}

// TestParsePrometheus: scalar samples parse, labelled and comment lines
// are skipped.
func TestParsePrometheus(t *testing.T) {
	m := ParsePrometheus(`# HELP fpm_jobs_queued Jobs waiting.
# TYPE fpm_jobs_queued gauge
fpm_jobs_queued 3
fpm_worker_tasks_total{worker="0"} 7
fpm_run_seconds 1.25

garbage line without value`)
	if m["fpm_jobs_queued"] != 3 || m["fpm_run_seconds"] != 1.25 {
		t.Fatalf("ParsePrometheus = %+v", m)
	}
	if _, ok := m[`fpm_worker_tasks_total{worker="0"}`]; ok {
		t.Fatal("labelled samples must be skipped")
	}
}
