package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"fpm/internal/serve"
)

// startServer self-hosts the production serve wiring for harness tests.
func startServer(t *testing.T, queueCap int) *Client {
	t.Helper()
	srv, store := serve.New(serve.Config{QueueCap: queueCap})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		store.Shutdown()
		ts.Close()
	})
	return NewClient(ts.URL)
}

func buildTestWorld(t *testing.T) World {
	t.Helper()
	w, err := BuildWorld(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRunWorkloadT1EndToEnd drives the open-loop T1 workload against the
// real miner for a short window and sanity-checks the whole result: ops
// landed, nothing dropped, the latency split is populated and ordered
// (queue+mine ≤ e2e at the median), and the post-drain gauges are clean.
func TestRunWorkloadT1EndToEnd(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T1")

	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 900 * time.Millisecond, Workers: 2, QPS: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Done == 0 {
		t.Fatalf("no operations completed: %+v", res)
	}
	if res.Errors != 0 || res.Failed != 0 {
		t.Fatalf("T1 against a healthy server dropped results: %+v", res)
	}
	if res.E2E.Count != uint64(res.Done) {
		t.Fatalf("e2e histogram holds %d samples, want %d done", res.E2E.Count, res.Done)
	}
	if res.Admit.P99NS <= 0 || res.E2E.P50NS <= 0 || res.MineTime.P50NS <= 0 {
		t.Fatalf("latency split not populated: admit=%+v e2e=%+v mine=%+v", res.Admit, res.E2E, res.MineTime)
	}
	if res.QueueWait.P50NS+res.MineTime.P50NS > res.E2E.P99NS {
		t.Fatalf("median server-side split exceeds e2e tail: queue=%d mine=%d e2e p99=%d",
			res.QueueWait.P50NS, res.MineTime.P50NS, res.E2E.P99NS)
	}
	if res.Gauges["fpm_jobs_queued"] != 0 || res.Gauges["fpm_jobs_running"] != 0 {
		t.Fatalf("post-drain gauges: %+v", res.Gauges)
	}
	if res.Gauges["fpm_jobs_done_total"] < float64(res.Done) {
		t.Fatalf("server counted %v done, harness saw %d", res.Gauges["fpm_jobs_done_total"], res.Done)
	}
	if !res.Pass {
		t.Fatalf("default SLO must pass on a clean tree: %+v", res.Violations)
	}
}

// TestRunWorkloadT4CancelStorm: the storm must actually cancel jobs, and
// every outcome must still be accounted for.
func TestRunWorkloadT4CancelStorm(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T4")

	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 900 * time.Millisecond, Workers: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled+res.Deadline == 0 {
		t.Fatalf("cancel storm cancelled nothing: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("storm dropped results: %+v", res)
	}
	if got := res.Done + res.Failed + res.Deadline + res.Cancelled + res.Rejected; got != res.Ops {
		t.Fatalf("outcomes sum to %d, ops = %d", got, res.Ops)
	}
}

// TestSLOGateFailsWhenTightened demonstrates the regression gate's teeth:
// the same healthy run that passes default budgets must fail when the
// admission budget is artificially tightened below the floor.
func TestSLOGateFailsWhenTightened(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T1")

	tight := spec.SLO
	tight.AdmitP99MS = 0.000001 // one nanosecond: unmeetable
	res, err := RunWorkload(context.Background(), c, world, spec, RunConfig{
		Duration: 500 * time.Millisecond, Workers: 2, QPS: 40, Seed: 3, SLO: &tight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || len(res.Violations) == 0 {
		t.Fatalf("tightened budget must fail the gate: %+v", res)
	}
	found := false
	for _, v := range res.Violations {
		if v.Budget == "admit_p99_ms" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an admit_p99_ms violation, got %+v", res.Violations)
	}
}

// TestRunWorkloadInterrupted: cancelling the run context mid-flight (the
// SIGTERM drain path) stops arrivals promptly and still returns an
// accounted partial result.
func TestRunWorkloadInterrupted(t *testing.T) {
	c := startServer(t, 64)
	world := buildTestWorld(t)
	spec, _ := SpecByName("T5")

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunWorkload(ctx, c, world, spec, RunConfig{Duration: 30 * time.Second, Workers: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("interrupted run took %v to unwind", elapsed)
	}
	if res.Ops+res.Interrupted == 0 {
		t.Fatal("interrupted run recorded nothing")
	}
}

// TestParsePrometheus: scalar samples parse, labelled and comment lines
// are skipped.
func TestParsePrometheus(t *testing.T) {
	m := ParsePrometheus(`# HELP fpm_jobs_queued Jobs waiting.
# TYPE fpm_jobs_queued gauge
fpm_jobs_queued 3
fpm_worker_tasks_total{worker="0"} 7
fpm_run_seconds 1.25

garbage line without value`)
	if m["fpm_jobs_queued"] != 3 || m["fpm_run_seconds"] != 1.25 {
		t.Fatalf("ParsePrometheus = %+v", m)
	}
	if _, ok := m[`fpm_worker_tasks_total{worker="0"}`]; ok {
		t.Fatal("labelled samples must be skipped")
	}
}
