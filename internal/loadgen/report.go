package loadgen

import (
	"encoding/json"
	"os"
	"runtime"
)

// WorkloadResult is one workload's measured outcome — the unit of the
// BENCH_serve.json trajectory.
type WorkloadResult struct {
	Workload string `json:"workload"`
	Title    string `json:"title"`
	Loop     string `json:"loop"`
	Workers  int    `json:"workers"`
	// QPS is the configured arrival/cap rate; 0 means uncapped closed loop.
	QPS        float64 `json:"qps,omitempty"`
	DurationNS int64   `json:"duration_ns"`

	// Ops counts completed operations (all outcomes).
	Ops       int `json:"ops"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Deadline  int `json:"deadline"`
	Cancelled int `json:"cancelled"`
	Rejected  int `json:"rejected"`
	Errors    int `json:"errors"`
	// Interrupted counts ops cut off by a drain (SIGTERM) mid-wait; they
	// are excluded from latency summaries and SLO rates.
	Interrupted int `json:"interrupted,omitempty"`

	// Throughput is successful jobs per second of workload wall time.
	Throughput float64 `json:"throughput_done_per_sec"`

	// Latency splits: Admit is the POST round trip, E2E submit→terminal,
	// QueueWait/MineTime the server-side split from job timestamps.
	// ServerE2E is queue+mine — the job's server-side submitted→terminal
	// span, the same quantity the server's own fpm_job_e2e_seconds
	// histogram records (E2E additionally includes client polling).
	Admit     Summary `json:"admit"`
	E2E       Summary `json:"e2e"`
	QueueWait Summary `json:"queue_wait"`
	MineTime  Summary `json:"mine_time"`
	ServerE2E Summary `json:"server_e2e"`

	// CacheServed counts completed jobs the server answered from its
	// result cache (served_from_cache in the job record) — T3's hot keys
	// should drive this up, T6's cold sweep should keep it near zero.
	CacheServed int `json:"cache_served,omitempty"`

	// HotRuns/HotDivergence: T3 result-consistency check. HotDivergence
	// is the number of distinct itemset counts beyond the first seen
	// across completed hot repetitions (0 = all agreed).
	HotRuns       int `json:"hot_runs,omitempty"`
	HotDivergence int `json:"hot_divergence,omitempty"`

	// Gauges is the final /metrics scrape of the fpm_jobs_* family after
	// the workload drained.
	Gauges map[string]float64 `json:"gauges,omitempty"`

	SLO        SLO         `json:"slo"`
	Violations []Violation `json:"violations,omitempty"`
	Pass       bool        `json:"pass"`
}

// ScrapeFinal is the post-run /metrics scrape embedded in the report by
// fpmload -scrape-final: the server's own latency-histogram view of the
// run, plus the cross-check verdict against the loadgen-side recording.
type ScrapeFinal struct {
	// E2EP50MS/E2EP99MS are the server's full-resolution e2e quantile
	// gauges (fpm_job_e2e_seconds_p50_seconds / _p99_seconds), in ms.
	E2EP50MS float64 `json:"e2e_p50_ms"`
	E2EP99MS float64 `json:"e2e_p99_ms"`
	// E2ECount is the server's fpm_job_e2e_seconds_count — every job the
	// store has recorded a terminal for since it started.
	E2ECount int64 `json:"e2e_count"`
	// LoadgenP99MS is the p99 of the loadgen-side server_e2e recording
	// merged across all workloads, in ms.
	LoadgenP99MS float64 `json:"loadgen_p99_ms"`
	// LoadgenCount is how many samples the loadgen side recorded.
	LoadgenCount int64 `json:"loadgen_count"`
	// Checked is true when the counts matched and the p99 cross-check ran;
	// RelErr is then |server − loadgen| / loadgen.
	Checked bool    `json:"checked"`
	RelErr  float64 `json:"rel_err,omitempty"`
	// Pass is false when the histogram family was missing or the
	// cross-check exceeded the histogram's 1/32 relative-error bound.
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// Report is the BENCH_serve.json artifact schema, shaped like
// BENCH_partition.json: tool + toolchain identity, then results.
type Report struct {
	Tool      string           `json:"tool"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	Server    string           `json:"server"` // "self-hosted" or the target addr
	Seed      int64            `json:"seed"`
	Workloads []WorkloadResult `json:"workloads"`
	// ScrapeFinal holds the post-run server-side histogram scrape and
	// cross-check when fpmload ran with -scrape-final.
	ScrapeFinal *ScrapeFinal `json:"scrape_final,omitempty"`
	Pass        bool         `json:"pass"`
}

// NewReport stamps the toolchain identity.
func NewReport(server string, seed int64) *Report {
	return &Report{
		Tool:      "cmd/fpmload",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Server:    server,
		Seed:      seed,
		Pass:      true,
	}
}

// Add appends a workload result and folds its pass/fail into the report.
func (r *Report) Add(wr WorkloadResult) {
	r.Workloads = append(r.Workloads, wr)
	if !wr.Pass {
		r.Pass = false
	}
}

// Violations collects every budget breach across workloads.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, w := range r.Workloads {
		out = append(out, w.Violations...)
	}
	return out
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
