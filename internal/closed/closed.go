// Package closed implements closed and maximal frequent itemset mining.
// LCM — the paper's first case-study kernel — is the "Linear time Closed
// itemset Miner" (Uno et al., FIMI'04 [32]); this package supplies the
// closed-enumeration side of that algorithm via prefix-preserving closure
// (PPC) extension, plus maximal mining (the problem of MAFIA [7], also
// cited by the paper) and reference filters used as oracles in tests.
//
// Definitions: a frequent itemset C is closed when no proper superset has
// the same support, and maximal when no proper superset is frequent. Every
// maximal itemset is closed; the closed sets compress the full frequent
// collection losslessly (supports of all frequent sets are recoverable).
package closed

import (
	"sort"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// Miner enumerates closed frequent itemsets via PPC extension: each closed
// set has a unique parent, so the search space is a tree and no duplicate
// detection or storage is needed — the property that makes LCM "linear
// time" in the number of closed sets.
type Miner struct{}

// New returns a closed-itemset miner.
func New() *Miner { return &Miner{} }

// Name implements mine.Miner.
func (*Miner) Name() string { return "lcm-closed" }

// Mine implements mine.Miner: it reports every nonempty closed frequent
// itemset exactly once.
func (*Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}
	occ := buildOcc(db)

	all := make([]int32, db.Len())
	for i := range all {
		all[i] = int32(i)
	}

	// Reusable conditional frequency counters (occurrence delivery): one
	// pass over the node's transactions yields both the extension
	// candidates (cnt >= minSupport) and the closure test inputs
	// (cnt == |tids|), instead of probing every alphabet item.
	cnt := make([]int32, db.NumItems)
	var rec func(tids []int32, clo []dataset.Item, core dataset.Item)
	rec = func(tids []int32, clo []dataset.Item, core dataset.Item) {
		if len(clo) > 0 && len(tids) >= minSupport {
			c.Collect(clo, len(tids))
		}
		inClo := make(map[dataset.Item]bool, len(clo))
		for _, it := range clo {
			inClo[it] = true
		}
		var touched []dataset.Item
		for _, ti := range tids {
			for _, it := range db.Tx[ti] {
				if cnt[it] == 0 {
					touched = append(touched, it)
				}
				cnt[it]++
			}
		}
		var cands []dataset.Item
		for _, it := range touched {
			if it > core && !inClo[it] && int(cnt[it]) >= minSupport {
				cands = append(cands, it)
			}
		}
		for _, it := range touched {
			cnt[it] = 0
		}
		sortItemsAsc(cands)
		for _, e := range cands {
			sub := intersect(tids, occ[e])
			q := closure(db, sub)
			// PPC check: the closure must not introduce items below e
			// that are outside the current closed set — otherwise this
			// closed set is reached from a different (canonical) parent.
			ok := true
			for _, it := range q {
				if it < e && !inClo[it] {
					ok = false
					break
				}
			}
			if ok {
				rec(sub, q, e)
			}
		}
	}

	rec(all, closure(db, all), -1)
	return nil
}

// sortItemsAsc sorts a small item slice in increasing order.
func sortItemsAsc(s []dataset.Item) {
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
}

// closure returns the sorted set of items contained in every transaction
// of tids.
func closure(db *dataset.DB, tids []int32) []dataset.Item {
	if len(tids) == 0 {
		return nil
	}
	// Start from the first transaction and intersect down; early exit on
	// empty.
	cur := append([]dataset.Item(nil), db.Tx[tids[0]]...)
	for _, ti := range tids[1:] {
		if len(cur) == 0 {
			break
		}
		cur = intersectItems(cur, db.Tx[ti])
	}
	return cur
}

func intersectItems(a, b []dataset.Item) []dataset.Item {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func buildOcc(db *dataset.DB) [][]int32 {
	occ := make([][]int32, db.NumItems)
	for ti, t := range db.Tx {
		for _, it := range t {
			occ[it] = append(occ[it], int32(ti))
		}
	}
	return occ
}

func intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// MaximalMiner enumerates maximal frequent itemsets by mining closed sets
// and keeping those with no frequent single-item extension.
type MaximalMiner struct{}

// NewMaximal returns a maximal-itemset miner.
func NewMaximal() *MaximalMiner { return &MaximalMiner{} }

// Name implements mine.Miner.
func (*MaximalMiner) Name() string { return "lcm-maximal" }

// Mine implements mine.Miner.
func (*MaximalMiner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}
	occ := buildOcc(db)
	var sc mine.SliceCollector
	if err := (New()).Mine(db, minSupport, &sc); err != nil {
		return err
	}
	cnt := make([]int32, db.NumItems)
	for _, s := range sc.Sets {
		// Recover the closed set's tidset, then test item extensions.
		// Maximality only needs checking against single items (if C∪{e}
		// is infrequent for all e, every proper superset is infrequent by
		// anti-monotonicity), and only items actually co-occurring with C
		// can have frequent extensions — one counting pass finds them.
		tids := occ[s.Items[0]]
		for _, it := range s.Items[1:] {
			tids = intersect(tids, occ[it])
		}
		inSet := make(map[dataset.Item]bool, len(s.Items))
		for _, it := range s.Items {
			inSet[it] = true
		}
		var touched []dataset.Item
		for _, ti := range tids {
			for _, it := range db.Tx[ti] {
				if cnt[it] == 0 {
					touched = append(touched, it)
				}
				cnt[it]++
			}
		}
		maximal := true
		for _, it := range touched {
			if !inSet[it] && int(cnt[it]) >= minSupport {
				maximal = false
				break
			}
		}
		for _, it := range touched {
			cnt[it] = 0
		}
		if maximal {
			c.Collect(s.Items, s.Support)
		}
	}
	return nil
}

// FilterClosed returns the closed subset of a complete frequent itemset
// collection — the reference implementation used to validate Miner.
func FilterClosed(sets []mine.Itemset) []mine.Itemset {
	return filter(sets, func(sub, super mine.Itemset) bool {
		return sub.Support == super.Support
	})
}

// FilterMaximal returns the maximal subset of a complete frequent itemset
// collection.
func FilterMaximal(sets []mine.Itemset) []mine.Itemset {
	return filter(sets, func(sub, super mine.Itemset) bool { return true })
}

// filter drops every itemset that has a proper superset in the collection
// for which kill(sub, super) holds.
func filter(sets []mine.Itemset, kill func(sub, super mine.Itemset) bool) []mine.Itemset {
	// Canonicalize: the subset tests need increasing item order, which
	// not every miner guarantees.
	sorted := make([]mine.Itemset, len(sets))
	for i, s := range sets {
		items := append([]dataset.Item(nil), s.Items...)
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		sorted[i] = mine.Itemset{Items: items, Support: s.Support}
	}
	// Sort by decreasing size so supersets precede their subsets.
	sort.Slice(sorted, func(a, b int) bool { return len(sorted[a].Items) > len(sorted[b].Items) })
	var out []mine.Itemset
	for i, cand := range sorted {
		alive := true
		for j := 0; j < i; j++ {
			if len(sorted[j].Items) <= len(cand.Items) {
				break
			}
			if kill(cand, sorted[j]) && isSubset(cand.Items, sorted[j].Items) {
				alive = false
				break
			}
		}
		if alive {
			out = append(out, cand)
		}
	}
	return out
}

// isSubset reports whether sorted itemset a ⊆ sorted itemset b.
func isSubset(a, b []dataset.Item) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}
