package closed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/mine"
)

// paperDB is the paper's Table 1 database (a..f = 0..5).
func paperDB() *dataset.DB {
	db := dataset.New([]dataset.Transaction{
		{0, 2, 5}, {1, 2, 5}, {0, 2, 5}, {3, 4}, {0, 1, 2, 3, 4, 5},
	})
	db.Normalize()
	return db
}

// TestPaperTable1Closed: at minsup 3 the frequent sets are c,f,a,cf,ca,fa,
// cfa; the closed ones are {c,f}(4) and {a,c,f}(3); the maximal one is
// {a,c,f}.
func TestPaperTable1Closed(t *testing.T) {
	rs := mine.ResultSet{}
	if err := New().Mine(paperDB(), 3, rs); err != nil {
		t.Fatal(err)
	}
	want := mine.ResultSet{"2,5": 4, "0,2,5": 3}
	if !rs.Equal(want) {
		t.Fatalf("closed = %v, want %v", rs, want)
	}

	ms := mine.ResultSet{}
	if err := NewMaximal().Mine(paperDB(), 3, ms); err != nil {
		t.Fatal(err)
	}
	if !ms.Equal(mine.ResultSet{"0,2,5": 3}) {
		t.Fatalf("maximal = %v", ms)
	}
}

func TestEdgeCases(t *testing.T) {
	for _, m := range []mine.Miner{New(), NewMaximal()} {
		if err := m.Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
			t.Fatalf("%s empty: %v", m.Name(), err)
		}
		if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
			t.Fatalf("%s accepted support 0", m.Name())
		}
		rs := mine.ResultSet{}
		if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), 5, rs); err != nil {
			t.Fatal(err)
		}
		if len(rs) != 0 {
			t.Fatalf("%s mined %v above any support", m.Name(), rs)
		}
	}
}

func TestClosureSharedPrefix(t *testing.T) {
	// Every transaction contains {1,2}: the root closure is {1,2} with
	// support 3 and it must be reported as closed.
	db := dataset.New([]dataset.Transaction{{1, 2}, {1, 2, 3}, {0, 1, 2}})
	rs := mine.ResultSet{}
	if err := New().Mine(db, 3, rs); err != nil {
		t.Fatal(err)
	}
	if !rs.Equal(mine.ResultSet{"1,2": 3}) {
		t.Fatalf("closed = %v, want {1,2}:3", rs)
	}
}

func TestFilterClosedAndMaximalReference(t *testing.T) {
	sets := []mine.Itemset{
		{Items: []dataset.Item{0}, Support: 3},
		{Items: []dataset.Item{1}, Support: 2},
		{Items: []dataset.Item{0, 1}, Support: 2},
	}
	closed := FilterClosed(sets)
	// {1} has superset {0,1} with equal support → dropped; {0} survives.
	got := mine.ResultSet{}
	for _, s := range closed {
		got.Collect(s.Items, s.Support)
	}
	if !got.Equal(mine.ResultSet{"0": 3, "0,1": 2}) {
		t.Fatalf("FilterClosed = %v", got)
	}
	maximal := FilterMaximal(sets)
	got = mine.ResultSet{}
	for _, s := range maximal {
		got.Collect(s.Items, s.Support)
	}
	if !got.Equal(mine.ResultSet{"0,1": 2}) {
		t.Fatalf("FilterMaximal = %v", got)
	}
}

// Property: the PPC miner equals FilterClosed over the brute-force
// enumeration, and the maximal miner equals FilterMaximal, on random
// databases.
func TestClosedMatchesFilterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 18, 7, 5)
		minsup := 1 + rng.Intn(4)

		var all mine.SliceCollector
		if err := (mine.BruteForce{}).Mine(db, minsup, &all); err != nil {
			return false
		}
		wantClosed := toSet(FilterClosed(all.Sets))
		wantMax := toSet(FilterMaximal(all.Sets))

		gotClosed := mine.ResultSet{}
		if err := New().Mine(db, minsup, gotClosed); err != nil {
			return false
		}
		if !gotClosed.Equal(wantClosed) {
			t.Logf("closed mismatch (seed %d minsup %d):\n%s", seed, minsup, gotClosed.Diff(wantClosed, 6))
			return false
		}
		gotMax := mine.ResultSet{}
		if err := NewMaximal().Mine(db, minsup, gotMax); err != nil {
			return false
		}
		if !gotMax.Equal(wantMax) {
			t.Logf("maximal mismatch (seed %d minsup %d):\n%s", seed, minsup, gotMax.Diff(wantMax, 6))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: closed ⊆ frequent, maximal ⊆ closed, and closed compresses
// (|closed| <= |frequent|) on generated data.
func TestHierarchyOnGenerated(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 400, AvgLen: 10, AvgPatternLen: 4, Items: 50, Patterns: 20, Seed: 23})
	minsup := 20
	var all mine.SliceCollector
	if err := (mine.BruteForce{}).Mine(db, minsup, &all); err != nil {
		t.Fatal(err)
	}
	allSet := toSet(all.Sets)

	closedSet := mine.ResultSet{}
	if err := New().Mine(db, minsup, closedSet); err != nil {
		t.Fatal(err)
	}
	maxSet := mine.ResultSet{}
	if err := NewMaximal().Mine(db, minsup, maxSet); err != nil {
		t.Fatal(err)
	}
	if len(closedSet) == 0 || len(maxSet) == 0 {
		t.Fatal("degenerate workload")
	}
	if len(closedSet) > len(allSet) {
		t.Fatalf("closed (%d) exceeds frequent (%d)", len(closedSet), len(allSet))
	}
	if len(maxSet) > len(closedSet) {
		t.Fatalf("maximal (%d) exceeds closed (%d)", len(maxSet), len(closedSet))
	}
	for k, v := range closedSet {
		if allSet[k] != v {
			t.Fatalf("closed set %s not in frequent collection with support %d", k, v)
		}
	}
	for k, v := range maxSet {
		if closedSet[k] != v {
			t.Fatalf("maximal set %s not closed", k)
		}
	}
	t.Logf("frequent %d, closed %d, maximal %d", len(allSet), len(closedSet), len(maxSet))
}

func toSet(sets []mine.Itemset) mine.ResultSet {
	rs := mine.ResultSet{}
	for _, s := range sets {
		rs.Collect(s.Items, s.Support)
	}
	return rs
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
