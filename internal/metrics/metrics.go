// Package metrics is the mining observability layer: cheap, optionally
// enabled run-time counters for the real (non-simulated) kernels, unified
// with the memory-hierarchy simulator's cache/CPI statistics under one
// Snapshot schema. The paper chooses its ALSO patterns by reading hardware
// counters (Figure 2 profiles each kernel's CPI and cache/TLB misses before
// tuning); this package is the reproduction's equivalent instrument for
// native runs, so scheduler and kernel changes can be judged by counted
// work — nodes expanded, supports counted, tasks stolen, worker
// utilization — instead of wall-clock guesswork.
//
// The design splits recording in two tiers so the enabled path stays cheap
// and the disabled path is free:
//
//   - Local is a per-goroutine block of plain (non-atomic) counters. Every
//     increment is a nil-check plus an add, and a nil *Local (metrics
//     disabled) makes each increment a single predictable branch — the
//     kernels' hot recursion paths pay nothing else. Each kernel state, and
//     each stolen task, owns one Local.
//   - Recorder is the shared per-run sink. Locals are flushed into it with
//     a handful of atomic adds at coarse boundaries (end of a Mine call,
//     end of a stolen task), and infrequent scheduler events (task spawns,
//     steals, steal failures) hit it directly. All Recorder methods are
//     nil-safe: a nil *Recorder is the disabled sink.
//
// Snapshot freezes a Recorder into the wire schema shared by simulated and
// real runs: `fpm -stats json` emits it, EXPERIMENTS.md trajectories can
// consume it, and internal/simkern adapts its Report onto the same type.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Local is a per-goroutine counter block. It is not safe for concurrent
// use: each mining state (and each stolen subtree task) owns exactly one
// and flushes it into the shared Recorder when it finishes. All methods are
// nil-safe; a nil *Local is the disabled no-op sink the hot paths
// nil-check.
type Local struct {
	Nodes    uint64 // search-tree nodes expanded
	Supports uint64 // support countings performed
	Emitted  uint64 // frequent itemsets emitted
	Prunes   uint64 // candidate extensions pruned (support < minsup)
}

// Node records one expanded search-tree node.
func (l *Local) Node() {
	if l != nil {
		l.Nodes++
	}
}

// Support records n support countings.
func (l *Local) Support(n int) {
	if l != nil {
		l.Supports += uint64(n)
	}
}

// Emit records one emitted frequent itemset.
func (l *Local) Emit() {
	if l != nil {
		l.Emitted++
	}
}

// Prune records one pruned candidate extension.
func (l *Local) Prune() {
	if l != nil {
		l.Prunes++
	}
}

// WorkerStat is one parallel worker's share of a run.
type WorkerStat struct {
	ID        int     `json:"id"`
	Tasks     uint64  `json:"tasks"`
	BusyNanos int64   `json:"busy_ns"`
	Util      float64 `json:"utilization"` // BusyNanos / run wall time
}

// Recorder accumulates one run's counters. It is safe for concurrent use:
// kernel goroutines flush Locals into it and the scheduler records task
// events directly. All methods are nil-safe, so a nil *Recorder threads
// through kernels and scheduler as the zero-cost disabled sink.
type Recorder struct {
	// kernel/workers/start are guarded by mu: Start may race with
	// Snapshot/Running when a telemetry server scrapes the recorder from
	// HTTP goroutines while the run begins.
	kernel  string
	workers int
	start   time.Time
	wall    atomic.Int64

	nodes    atomic.Uint64
	supports atomic.Uint64
	emitted  atomic.Uint64
	prunes   atomic.Uint64

	tasksSpawned  atomic.Uint64
	tasksOffered  atomic.Uint64
	tasksStolen   atomic.Uint64
	stealFailures atomic.Uint64
	workerPanics  atomic.Uint64
	mergeNanos    atomic.Int64

	chunksMined   atomic.Uint64
	chunksSkipped atomic.Uint64
	ckptsWritten  atomic.Uint64
	ckptsFailed   atomic.Uint64
	candGenerated atomic.Uint64
	candSurviving atomic.Uint64
	bytesPass1    atomic.Int64
	bytesPass2    atomic.Int64
	pass1Nanos    atomic.Int64
	pass2Nanos    atomic.Int64
	memBudget     atomic.Int64
	inputBytes    atomic.Int64

	mu          sync.Mutex
	workerStats []WorkerStat
}

// NewRecorder returns an enabled Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether r records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// NewLocal returns a fresh Local for one mining goroutine, or nil when the
// recorder is disabled (so kernel hot paths skip on a nil-check).
func (r *Recorder) NewLocal() *Local {
	if r == nil {
		return nil
	}
	return &Local{}
}

// Flush adds a Local's counts into the recorder. Safe to call with either
// receiver or argument nil.
func (r *Recorder) Flush(l *Local) {
	if r == nil || l == nil {
		return
	}
	if l.Nodes != 0 {
		r.nodes.Add(l.Nodes)
	}
	if l.Supports != 0 {
		r.supports.Add(l.Supports)
	}
	if l.Emitted != 0 {
		r.emitted.Add(l.Emitted)
	}
	if l.Prunes != 0 {
		r.prunes.Add(l.Prunes)
	}
	*l = Local{}
}

// AddEmitted records n itemset emissions that happen outside any kernel's
// Local — e.g. the scheduler's first-level decomposition emits each
// frequent 1-itemset itself before handing the subtree to a kernel.
func (r *Recorder) AddEmitted(n uint64) {
	if r != nil && n != 0 {
		r.emitted.Add(n)
	}
}

// Start stamps the run's identity and start time. kernel is the miner's
// Name(); workers is 0 for sequential runs.
func (r *Recorder) Start(kernel string, workers int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.kernel = kernel
	r.workers = workers
	r.start = time.Now()
	r.mu.Unlock()
	r.wall.Store(0)
}

// Stop freezes the wall time.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	start := r.start
	r.mu.Unlock()
	r.wall.Store(int64(time.Since(start)))
}

// TaskSpawned records one task accepted by the scheduler (seeded or
// offered-and-taken).
func (r *Recorder) TaskSpawned() {
	if r != nil {
		r.tasksSpawned.Add(1)
	}
}

// TaskOffered records one subtree offered to the scheduler (accepted or
// not). Kernels gate offers on Spawner.WouldSteal, so this sits off the hot
// path.
func (r *Recorder) TaskOffered() {
	if r != nil {
		r.tasksOffered.Add(1)
	}
}

// TaskStolen records one task taken from another worker's deque.
func (r *Recorder) TaskStolen() {
	if r != nil {
		r.tasksStolen.Add(1)
	}
}

// StealFailure records one full victim scan that found no task.
func (r *Recorder) StealFailure() {
	if r != nil {
		r.stealFailures.Add(1)
	}
}

// WorkerPanic records one task panic recovered by a pool worker.
func (r *Recorder) WorkerPanic() {
	if r != nil {
		r.workerPanics.Add(1)
	}
}

// AddMergeTime accumulates shard-merge wall time.
func (r *Recorder) AddMergeTime(d time.Duration) {
	if r != nil {
		r.mergeNanos.Add(int64(d))
	}
}

// ChunkMined records one partition chunk mined during the out-of-core
// candidate pass. Like all partition counters this is a coarse per-chunk
// event, so it hits the shared recorder directly.
func (r *Recorder) ChunkMined() {
	if r != nil {
		r.chunksMined.Add(1)
	}
}

// ChunkSkipped records one pass-1 chunk skipped because a resumed
// checkpoint had already mined it.
func (r *Recorder) ChunkSkipped() {
	if r != nil {
		r.chunksSkipped.Add(1)
	}
}

// CheckpointWritten records one checkpoint sidecar persisted atomically.
func (r *Recorder) CheckpointWritten() {
	if r != nil {
		r.ckptsWritten.Add(1)
	}
}

// CheckpointFailed records one checkpoint write that failed; the mine
// continues (checkpoints are best-effort) with the previous sidecar intact.
func (r *Recorder) CheckpointFailed() {
	if r != nil {
		r.ckptsFailed.Add(1)
	}
}

// AddCandidates records n distinct locally-frequent itemsets entering the
// candidate union during pass 1.
func (r *Recorder) AddCandidates(n uint64) {
	if r != nil && n != 0 {
		r.candGenerated.Add(n)
	}
}

// AddSurvivors records n candidates whose exact global support cleared
// minSupport in pass 2.
func (r *Recorder) AddSurvivors(n uint64) {
	if r != nil && n != 0 {
		r.candSurviving.Add(n)
	}
}

// AddStreamedBytes records n bytes read from secondary storage during the
// given out-of-core pass (1 = candidate generation, including its
// parse-free sizing scan; 2 = exact recount).
func (r *Recorder) AddStreamedBytes(pass int, n int64) {
	if r == nil || n == 0 {
		return
	}
	if pass <= 1 {
		r.bytesPass1.Add(n)
	} else {
		r.bytesPass2.Add(n)
	}
}

// AddPassTime accumulates wall time spent in the given out-of-core pass.
func (r *Recorder) AddPassTime(pass int, d time.Duration) {
	if r == nil {
		return
	}
	if pass <= 1 {
		r.pass1Nanos.Add(int64(d))
	} else {
		r.pass2Nanos.Add(int64(d))
	}
}

// SetMemBudget records the configured out-of-core memory budget.
func (r *Recorder) SetMemBudget(n int64) {
	if r != nil {
		r.memBudget.Store(n)
	}
}

// SetInputBytes records the on-disk size of the mined file; the telemetry
// progress endpoint derives completion fractions from it.
func (r *Recorder) SetInputBytes(n int64) {
	if r != nil {
		r.inputBytes.Store(n)
	}
}

// Running reports whether the run is live: Start has been called and Stop
// has not yet frozen the wall time. A nil recorder is never running.
func (r *Recorder) Running() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	started := !r.start.IsZero()
	r.mu.Unlock()
	return started && r.wall.Load() == 0
}

// AddWorker records one worker's totals at pool shutdown. When the same
// recorder observes several pool runs — the out-of-core miner runs one
// pool per chunk — stats for the same worker ID accumulate into one
// entry, so the snapshot stays one row per worker slot.
func (r *Recorder) AddWorker(s WorkerStat) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.workerStats {
		if r.workerStats[i].ID == s.ID {
			r.workerStats[i].Tasks += s.Tasks
			r.workerStats[i].BusyNanos += s.BusyNanos
			return
		}
	}
	r.workerStats = append(r.workerStats, s)
}

// Snapshot freezes the recorder's current totals. The recorder may keep
// accumulating afterwards; utilization is computed against the wall time
// frozen by Stop (or time-so-far when Stop has not run).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{SchemaVersion: SnapshotSchemaVersion}
	}
	r.mu.Lock()
	kernel, workers, start := r.kernel, r.workers, r.start
	r.mu.Unlock()
	wall := r.wall.Load()
	if wall == 0 && !start.IsZero() {
		wall = int64(time.Since(start))
	}
	s := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Kernel:        kernel,
		Workers:       workers,
		WallNanos:     wall,
		Nodes:         r.nodes.Load(),
		Supports:      r.supports.Load(),
		Emitted:       r.emitted.Load(),
		Prunes:        r.prunes.Load(),
	}
	if workers > 1 || r.tasksSpawned.Load() > 0 {
		ps := &ParallelStats{
			TasksSpawned:  r.tasksSpawned.Load(),
			TasksOffered:  r.tasksOffered.Load(),
			TasksStolen:   r.tasksStolen.Load(),
			StealFailures: r.stealFailures.Load(),
			WorkerPanics:  r.workerPanics.Load(),
			MergeNanos:    r.mergeNanos.Load(),
		}
		r.mu.Lock()
		ps.Workers = append([]WorkerStat(nil), r.workerStats...)
		r.mu.Unlock()
		for i := range ps.Workers {
			if wall > 0 {
				ps.Workers[i].Util = float64(ps.Workers[i].BusyNanos) / float64(wall)
			}
		}
		s.Parallel = ps
	}
	if r.chunksMined.Load() > 0 || r.bytesPass1.Load() > 0 {
		s.Partition = &PartitionStats{
			Chunks:              r.chunksMined.Load(),
			ChunksSkipped:       r.chunksSkipped.Load(),
			CheckpointsWritten:  r.ckptsWritten.Load(),
			CheckpointsFailed:   r.ckptsFailed.Load(),
			CandidatesGenerated: r.candGenerated.Load(),
			CandidatesSurviving: r.candSurviving.Load(),
			BytesPass1:          r.bytesPass1.Load(),
			BytesPass2:          r.bytesPass2.Load(),
			Pass1Nanos:          r.pass1Nanos.Load(),
			Pass2Nanos:          r.pass2Nanos.Load(),
			MemBudget:           r.memBudget.Load(),
			InputBytes:          r.inputBytes.Load(),
		}
	}
	return s
}
