package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderAndLocalAreNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	l := r.NewLocal()
	if l != nil {
		t.Fatal("nil recorder returned a non-nil Local")
	}
	// None of these may panic.
	l.Node()
	l.Support(3)
	l.Emit()
	l.Prune()
	r.Flush(l)
	r.Start("x", 2)
	r.Stop()
	r.TaskSpawned()
	r.TaskOffered()
	r.TaskStolen()
	r.StealFailure()
	r.AddMergeTime(time.Second)
	r.AddWorker(WorkerStat{})
	if snap := r.Snapshot(); !reflect.DeepEqual(snap, Snapshot{SchemaVersion: SnapshotSchemaVersion}) {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
}

func TestFlushAccumulates(t *testing.T) {
	r := NewRecorder()
	r.Start("lcm(baseline)", 0)
	l := r.NewLocal()
	for i := 0; i < 5; i++ {
		l.Node()
	}
	l.Support(7)
	l.Emit()
	l.Emit()
	l.Prune()
	r.Flush(l)
	if l.Nodes != 0 || l.Supports != 0 || l.Emitted != 0 || l.Prunes != 0 {
		t.Fatalf("flush did not reset local: %+v", l)
	}
	l.Node()
	l.Support(3)
	r.Flush(l)
	r.Stop()

	s := r.Snapshot()
	if s.Kernel != "lcm(baseline)" {
		t.Fatalf("kernel = %q", s.Kernel)
	}
	if s.Nodes != 6 || s.Supports != 10 || s.Emitted != 2 || s.Prunes != 1 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.Parallel != nil {
		t.Fatal("sequential run grew a parallel section")
	}
	if s.WallNanos <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestConcurrentFlushIsSafe(t *testing.T) {
	r := NewRecorder()
	r.Start("p", 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l := r.NewLocal()
				l.Node()
				l.Emit()
				r.Flush(l)
				r.TaskSpawned()
				r.TaskStolen()
			}
		}()
	}
	wg.Wait()
	r.Stop()
	s := r.Snapshot()
	if s.Nodes != 800 || s.Emitted != 800 {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.Parallel == nil || s.Parallel.TasksSpawned != 800 || s.Parallel.TasksStolen != 800 {
		t.Fatalf("scheduler counters wrong: %+v", s.Parallel)
	}
}

func TestSnapshotParallelSectionAndUtilization(t *testing.T) {
	r := NewRecorder()
	r.Start("parallel(lcm(baseline))", 2)
	r.TaskSpawned()
	r.TaskOffered()
	r.StealFailure()
	r.AddMergeTime(5 * time.Millisecond)
	time.Sleep(2 * time.Millisecond)
	r.Stop()
	wall := r.Snapshot().WallNanos
	r.AddWorker(WorkerStat{ID: 0, Tasks: 3, BusyNanos: wall / 2})
	r.AddWorker(WorkerStat{ID: 1, Tasks: 1, BusyNanos: wall / 4})

	s := r.Snapshot()
	ps := s.Parallel
	if ps == nil {
		t.Fatal("no parallel section")
	}
	if ps.TasksSpawned != 1 || ps.TasksOffered != 1 || ps.StealFailures != 1 {
		t.Fatalf("scheduler counters: %+v", ps)
	}
	if ps.MergeNanos != int64(5*time.Millisecond) {
		t.Fatalf("merge time: %d", ps.MergeNanos)
	}
	if len(ps.Workers) != 2 {
		t.Fatalf("worker stats: %+v", ps.Workers)
	}
	for _, w := range ps.Workers {
		want := float64(w.BusyNanos) / float64(s.WallNanos)
		if w.Util < want*0.9 || w.Util > want*1.1 {
			t.Fatalf("worker %d utilization %f, want ~%f", w.ID, w.Util, want)
		}
	}
}

// TestSnapshotPartitionSection drives the recorder's out-of-core counters
// and checks the snapshot exposes them — and that in-memory runs (no
// partition events) omit the section entirely.
func TestSnapshotPartitionSection(t *testing.T) {
	r := NewRecorder()
	r.Start("partitioned(lcm(baseline))", 0)
	if r.Snapshot().Partition != nil {
		t.Fatal("partition section present before any partition event")
	}
	r.ChunkMined()
	r.ChunkMined()
	r.AddCandidates(12)
	r.AddCandidates(8)
	r.AddSurvivors(15)
	r.AddStreamedBytes(1, 100)
	r.AddStreamedBytes(1, 50)
	r.AddStreamedBytes(2, 60)
	r.AddPassTime(1, 3*time.Millisecond)
	r.AddPassTime(2, 2*time.Millisecond)
	r.SetMemBudget(1 << 16)
	r.Stop()

	pt := r.Snapshot().Partition
	if pt == nil {
		t.Fatal("no partition section")
	}
	want := PartitionStats{
		Chunks: 2, CandidatesGenerated: 20, CandidatesSurviving: 15,
		BytesPass1: 150, BytesPass2: 60,
		Pass1Nanos: int64(3 * time.Millisecond), Pass2Nanos: int64(2 * time.Millisecond),
		MemBudget: 1 << 16,
	}
	if *pt != want {
		t.Fatalf("partition stats = %+v, want %+v", *pt, want)
	}

	// The nil recorder swallows every partition call, like all others.
	var nilRec *Recorder
	nilRec.ChunkMined()
	nilRec.AddCandidates(1)
	nilRec.AddSurvivors(1)
	nilRec.AddStreamedBytes(1, 1)
	nilRec.AddPassTime(2, time.Second)
	nilRec.SetMemBudget(1)
	if s := nilRec.Snapshot(); s.Partition != nil {
		t.Fatal("nil recorder produced a partition section")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	in := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Kernel:        "eclat(Lex+SIMD)",
		Workers:       4,
		WallNanos:     123456,
		Nodes:         10, Supports: 20, Emitted: 5, Prunes: 3,
		Parallel: &ParallelStats{
			TasksSpawned: 7, TasksOffered: 9, TasksStolen: 4, StealFailures: 2,
			MergeNanos: 42,
			Workers:    []WorkerStat{{ID: 0, Tasks: 4, BusyNanos: 100, Util: 0.5}},
		},
		Partition: &PartitionStats{
			Chunks: 3, CandidatesGenerated: 40, CandidatesSurviving: 25,
			BytesPass1: 2048, BytesPass2: 1024, Pass1Nanos: 99, Pass2Nanos: 77,
			MemBudget: 1 << 20,
		},
		Sim: &SimStats{
			Machine: "M1 (Pentium D 830)", Cycles: 1e6, Instructions: 5e5, CPI: 2,
			L1Miss: 100, L2Miss: 10, TLBMiss: 1,
			Phases: []SimPhase{{Name: "CalcFreq", Cycles: 5e5, Instructions: 1e5, CPI: 5, L1Miss: 50}},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Snapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed snapshot:\nin  %+v\nout %+v", in, out)
	}
}

// Snapshots captured before schema versioning existed carry no
// schema_version field; decoding must backfill version 1 so old captures
// stay distinguishable from hand-built zero values.
func TestVersionlessSnapshotDecodesAsV1(t *testing.T) {
	old := []byte(`{"kernel":"lcm(baseline)","workers":2,"wall_ns":5000,
		"nodes_expanded":12,"support_countings":30,"itemsets_emitted":4,"candidate_prunes":2,
		"partition":{"chunks_mined":3,"bytes_streamed_pass1":300,"bytes_streamed_pass2":150}}`)
	var s Snapshot
	if err := json.Unmarshal(old, &s); err != nil {
		t.Fatal(err)
	}
	if s.SchemaVersion != 1 {
		t.Fatalf("versionless snapshot decoded as schema %d, want 1", s.SchemaVersion)
	}
	if s.Kernel != "lcm(baseline)" || s.Nodes != 12 || s.Partition == nil || s.Partition.Chunks != 3 {
		t.Fatalf("versionless snapshot lost fields: %+v", s)
	}
	// An explicit version must survive untouched.
	var v2 Snapshot
	if err := json.Unmarshal([]byte(`{"schema_version":2,"kernel":"x"}`), &v2); err != nil {
		t.Fatal(err)
	}
	if v2.SchemaVersion != 2 {
		t.Fatalf("explicit schema_version rewritten to %d", v2.SchemaVersion)
	}
}

func TestWriteTableMentionsEveryCounter(t *testing.T) {
	s := Snapshot{
		Kernel: "lcm(baseline)", Workers: 2, WallNanos: int64(time.Millisecond),
		Nodes: 1, Supports: 2, Emitted: 3, Prunes: 4,
		Parallel:  &ParallelStats{Workers: []WorkerStat{{ID: 1}, {ID: 0}}},
		Partition: &PartitionStats{Chunks: 2, MemBudget: 64},
		Sim:       &SimStats{Machine: "M1", Phases: []SimPhase{{Name: "CalcFreq"}}},
	}
	var buf bytes.Buffer
	if err := s.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"kernel", "workers", "wall time", "nodes expanded", "support countings",
		"itemsets emitted", "candidate prunes", "tasks spawned", "tasks stolen",
		"steal failures", "shard merge", "worker 0", "worker 1", "machine", "CPI",
		"phase CalcFreq", "chunks mined", "candidates gen", "candidates kept",
		"bytes pass 1", "bytes pass 2", "pass 1 time", "pass 2 time", "mem budget",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
