package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SnapshotSchemaVersion is the version stamped into every freshly recorded
// Snapshot's JSON (schema_version). History:
//
//	1 — the PR 2/PR 3 schema, emitted without a version field; decoding a
//	    versionless snapshot yields version 1.
//	2 — adds schema_version itself and partition.input_bytes.
//
// Bump it whenever a field is renamed, removed or changes meaning; adding
// optional fields keeps the version only when old decoders stay correct.
const SnapshotSchemaVersion = 2

// Snapshot is the unified observability schema: one frozen view of a
// mining run's counters, shared between native runs (Recorder.Snapshot),
// parallel runs (Parallel section) and simulated runs (Sim section, adapted
// from internal/simkern reports). The JSON encoding is the machine-readable
// form `fpm -stats json` emits; it round-trips through encoding/json.
type Snapshot struct {
	// SchemaVersion identifies the wire schema of this snapshot; see
	// SnapshotSchemaVersion. Snapshots recorded before the field existed
	// decode as version 1 (see UnmarshalJSON).
	SchemaVersion int `json:"schema_version"`
	// Kernel is the miner's Name() for native runs, or the instrumented
	// kernel's name for simulated runs.
	Kernel string `json:"kernel"`
	// Workers is the parallel pool size; 0 for sequential runs.
	Workers int `json:"workers,omitempty"`
	// WallNanos is the run's wall-clock duration (0 for simulated runs,
	// which account in cycles instead — see Sim).
	WallNanos int64 `json:"wall_ns,omitempty"`

	// Nodes counts expanded search-tree nodes (conditional databases /
	// equivalence-class members / header tables entered).
	Nodes uint64 `json:"nodes_expanded"`
	// Supports counts support countings performed (candidate extensions
	// whose support was computed).
	Supports uint64 `json:"support_countings"`
	// Emitted counts frequent itemsets reported to the collector.
	Emitted uint64 `json:"itemsets_emitted"`
	// Prunes counts candidate extensions rejected for support < minsup.
	Prunes uint64 `json:"candidate_prunes"`

	// Parallel holds scheduler counters; nil for sequential runs.
	Parallel *ParallelStats `json:"parallel,omitempty"`
	// Partition holds out-of-core two-pass counters; nil for in-memory
	// runs.
	Partition *PartitionStats `json:"partition,omitempty"`
	// Sim holds simulated cache/CPI statistics; nil for native runs.
	Sim *SimStats `json:"sim,omitempty"`
}

// UnmarshalJSON decodes a snapshot, defaulting the schema version to 1 for
// snapshots recorded before the field existed (PR 2/PR 3 emitters wrote no
// schema_version), so old captures keep round-tripping.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	type alias Snapshot // drops the method set: plain decode, no recursion
	a := (*alias)(s)
	if err := json.Unmarshal(b, a); err != nil {
		return err
	}
	if s.SchemaVersion == 0 {
		s.SchemaVersion = 1
	}
	return nil
}

// PartitionStats are the out-of-core miner's two-pass counters (see
// internal/partition): pass 1 streams the file in bounded chunks and mines
// each for locally-frequent candidate itemsets; pass 2 re-streams it to
// count the candidates' exact global supports.
type PartitionStats struct {
	// Chunks is the number of bounded-memory chunks mined in pass 1.
	Chunks uint64 `json:"chunks_mined"`
	// ChunksSkipped counts pass-1 chunks a resumed checkpoint had already
	// mined, so this run restored their candidates instead of re-mining.
	ChunksSkipped uint64 `json:"chunks_skipped,omitempty"`
	// CheckpointsWritten / CheckpointsFailed count checkpoint sidecar
	// persists; failures are non-fatal (the previous sidecar stays valid).
	CheckpointsWritten uint64 `json:"checkpoints_written,omitempty"`
	CheckpointsFailed  uint64 `json:"checkpoints_failed,omitempty"`
	// CandidatesGenerated counts distinct locally-frequent itemsets
	// entering the candidate union across all chunks.
	CandidatesGenerated uint64 `json:"candidates_generated"`
	// CandidatesSurviving counts candidates whose exact global support
	// cleared minSupport — the final result size.
	CandidatesSurviving uint64 `json:"candidates_surviving"`
	// BytesPass1 / BytesPass2 are the bytes streamed from secondary
	// storage in each pass (pass 1 includes the parse-free sizing scan).
	BytesPass1 int64 `json:"bytes_streamed_pass1"`
	BytesPass2 int64 `json:"bytes_streamed_pass2"`
	// Pass1Nanos / Pass2Nanos are each pass's wall time.
	Pass1Nanos int64 `json:"pass1_ns,omitempty"`
	Pass2Nanos int64 `json:"pass2_ns,omitempty"`
	// MemBudget is the configured resident-memory budget in bytes.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// InputBytes is the on-disk size of the mined file (schema v2); the
	// live-telemetry progress endpoint derives completion fractions from
	// it (the file is streamed three times: sizing scan, pass 1, pass 2).
	InputBytes int64 `json:"input_bytes,omitempty"`
}

// ParallelStats are the work-stealing scheduler's counters.
type ParallelStats struct {
	TasksSpawned  uint64 `json:"tasks_spawned"`
	TasksOffered  uint64 `json:"tasks_offered"`
	TasksStolen   uint64 `json:"tasks_stolen"`
	StealFailures uint64 `json:"steal_failures"`
	// WorkerPanics counts kernel panics recovered inside pool workers and
	// converted into the run's error; normally zero.
	WorkerPanics uint64 `json:"worker_panics,omitempty"`
	// MergeNanos is the post-mining shard-merge wall time.
	MergeNanos int64 `json:"shard_merge_ns"`
	// Workers are per-worker totals, ordered by worker ID.
	Workers []WorkerStat `json:"worker_stats,omitempty"`
}

// SimStats adapts internal/memsim machine counters — the reproduction's
// stand-in for the paper's hardware PMU — onto the shared schema.
type SimStats struct {
	Machine      string     `json:"machine"`
	Cycles       float64    `json:"cycles"`
	Instructions uint64     `json:"instructions"`
	CPI          float64    `json:"cpi"`
	L1Miss       uint64     `json:"l1_miss"`
	L2Miss       uint64     `json:"l2_miss"`
	TLBMiss      uint64     `json:"tlb_miss"`
	Phases       []SimPhase `json:"phases,omitempty"`
}

// SimPhase is one kernel function's accounting (the paper's Figure 2
// granularity).
type SimPhase struct {
	Name         string  `json:"name"`
	Cycles       float64 `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	CPI          float64 `json:"cpi"`
	L1Miss       uint64  `json:"l1_miss"`
	L2Miss       uint64  `json:"l2_miss"`
	TLBMiss      uint64  `json:"tlb_miss"`
}

// WriteTable renders the snapshot as an aligned human-readable table.
func (s Snapshot) WriteTable(w io.Writer) error {
	p := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("kernel            %s\n", s.Kernel); err != nil {
		return err
	}
	if s.Workers > 0 {
		if err := p("workers           %d\n", s.Workers); err != nil {
			return err
		}
	}
	if s.WallNanos > 0 {
		if err := p("wall time         %s\n", time.Duration(s.WallNanos)); err != nil {
			return err
		}
	}
	if err := p("nodes expanded    %d\nsupport countings %d\nitemsets emitted  %d\ncandidate prunes  %d\n",
		s.Nodes, s.Supports, s.Emitted, s.Prunes); err != nil {
		return err
	}
	if ps := s.Parallel; ps != nil {
		if err := p("tasks spawned     %d\ntasks offered     %d\ntasks stolen      %d\nsteal failures    %d\nshard merge       %s\n",
			ps.TasksSpawned, ps.TasksOffered, ps.TasksStolen, ps.StealFailures, time.Duration(ps.MergeNanos)); err != nil {
			return err
		}
		ws := append([]WorkerStat(nil), ps.Workers...)
		sort.Slice(ws, func(a, b int) bool { return ws[a].ID < ws[b].ID })
		for _, st := range ws {
			if err := p("worker %-3d        tasks %-6d busy %-12s util %.2f\n",
				st.ID, st.Tasks, time.Duration(st.BusyNanos), st.Util); err != nil {
				return err
			}
		}
	}
	if pt := s.Partition; pt != nil {
		if err := p("chunks mined      %d\ncandidates gen    %d\ncandidates kept   %d\nbytes pass 1      %d\nbytes pass 2      %d\npass 1 time       %s\npass 2 time       %s\n",
			pt.Chunks, pt.CandidatesGenerated, pt.CandidatesSurviving, pt.BytesPass1, pt.BytesPass2,
			time.Duration(pt.Pass1Nanos), time.Duration(pt.Pass2Nanos)); err != nil {
			return err
		}
		if pt.MemBudget > 0 {
			if err := p("mem budget        %d\n", pt.MemBudget); err != nil {
				return err
			}
		}
		if pt.ChunksSkipped > 0 || pt.CheckpointsWritten > 0 || pt.CheckpointsFailed > 0 {
			if err := p("chunks skipped    %d\ncheckpoints ok    %d\ncheckpoints fail  %d\n",
				pt.ChunksSkipped, pt.CheckpointsWritten, pt.CheckpointsFailed); err != nil {
				return err
			}
		}
	}
	if sim := s.Sim; sim != nil {
		if err := p("machine           %s\ncycles            %.0f\ninstructions      %d\nCPI               %.2f\nL1 misses         %d\nL2 misses         %d\nTLB misses        %d\n",
			sim.Machine, sim.Cycles, sim.Instructions, sim.CPI, sim.L1Miss, sim.L2Miss, sim.TLBMiss); err != nil {
			return err
		}
		for _, ph := range sim.Phases {
			if err := p("phase %-12s cycles %-12.0f CPI %-6.2f L1 %-8d L2 %-8d TLB %d\n",
				ph.Name, ph.Cycles, ph.CPI, ph.L1Miss, ph.L2Miss, ph.TLBMiss); err != nil {
				return err
			}
		}
	}
	return nil
}
