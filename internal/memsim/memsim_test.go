package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

// tiny returns a small machine whose closed-form behaviour is easy to
// compute by hand: 4-set 2-way L1 of 64B lines (512B), 4KB L2, 4-entry
// TLB, latencies 10 (L2) and 100 (mem).
func tiny() Config {
	return Config{
		Name:            "tiny",
		L1:              CacheConfig{SizeBytes: 512, LineBytes: 64, Assoc: 2},
		L2:              CacheConfig{SizeBytes: 4096, LineBytes: 64, Assoc: 4, Latency: 10},
		TLB:             TLBConfig{Entries: 4, PageBytes: 4096, MissPenalty: 20},
		MemLatency:      100,
		IssueWidth:      1,
		SIMDLanes:       2,
		SIMDOpsPerCycle: 1,
		MaxInflight:     4,
	}
}

func TestColdSequentialMisses(t *testing.T) {
	m := New(tiny())
	// 8 distinct lines in one page: 8 L1 misses, 8 L2 misses, 1 TLB miss.
	for i := 0; i < 8; i++ {
		m.Load(uint64(i * 64))
	}
	s := m.Stats()
	if s.L1Miss != 8 || s.L2Miss != 8 || s.TLBMiss != 1 {
		t.Fatalf("misses = L1:%d L2:%d TLB:%d, want 8/8/1", s.L1Miss, s.L2Miss, s.TLBMiss)
	}
	// Cycles: 8 instr slots + 8*100 mem + 20 TLB.
	want := 8.0 + 800 + 20
	if math.Abs(m.Cycles()-want) > 1e-9 {
		t.Fatalf("cycles = %v, want %v", m.Cycles(), want)
	}
}

func TestL1HitsAreFree(t *testing.T) {
	m := New(tiny())
	m.Load(0)
	c0 := m.Cycles()
	m.Load(8) // same line
	if got := m.Cycles() - c0; got != 1 {
		t.Fatalf("L1 hit cost %v cycles, want 1 (instruction slot only)", got)
	}
	if m.Stats().L1Miss != 1 {
		t.Fatalf("L1Miss = %d", m.Stats().L1Miss)
	}
}

func TestL2HitLatency(t *testing.T) {
	m := New(tiny())
	// Touch 9 lines mapping to the same L1 set (stride 256B = 4 lines →
	// set 0 each time with 4 sets? stride of setCount*line = 4*64=256).
	// Simpler: fill L1 (8 lines) then 8 more; then re-touch the first
	// line: it was evicted from L1 but lives in L2.
	for i := 0; i < 16; i++ {
		m.Load(uint64(i * 64))
	}
	before := m.Cycles()
	l2Before := m.Stats().L2Miss
	m.Load(0)
	if got := m.Cycles() - before; got != 11 { // 1 slot + 10 L2 latency
		t.Fatalf("L2 hit cost %v, want 11", got)
	}
	if m.Stats().L2Miss != l2Before {
		t.Fatal("unexpected L2 miss")
	}
}

func TestLRUWithinSet(t *testing.T) {
	m := New(tiny())
	// L1: 4 sets × 2 ways. Lines 0, 4, 8 (stride 4 lines = 256B) all map
	// to set 0. Access 0,4 (fill), then 0 (hit, promotes 0), then 8
	// (evicts LRU=4), then 0 must still hit.
	m.Load(0 * 256)
	m.Load(1 * 256)
	m.Load(0 * 256)
	m.Load(2 * 256)
	miss := m.Stats().L1Miss
	m.Load(0)
	if m.Stats().L1Miss != miss {
		t.Fatal("LRU promotion failed: line 0 was evicted")
	}
	m.Load(256) // line 4 was LRU → evicted → miss
	if m.Stats().L1Miss != miss+1 {
		t.Fatal("expected eviction of LRU line")
	}
}

func TestTLBCapacity(t *testing.T) {
	m := New(tiny())
	// 4 TLB entries; touching 5 pages round-robin thrashes.
	for rep := 0; rep < 2; rep++ {
		for p := 0; p < 5; p++ {
			m.Load(uint64(p * 4096))
		}
	}
	if got := m.Stats().TLBMiss; got != 10 {
		t.Fatalf("TLB misses = %d, want 10 (full thrash)", got)
	}
	// 4 pages fit: second round all hits.
	m2 := New(tiny())
	for rep := 0; rep < 2; rep++ {
		for p := 0; p < 4; p++ {
			m2.Load(uint64(p * 4096))
		}
	}
	if got := m2.Stats().TLBMiss; got != 4 {
		t.Fatalf("TLB misses = %d, want 4", got)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	cfg := tiny()
	// Pointer-chase 64 distinct lines with enough compute between loads
	// to cover latency when prefetched far ahead.
	run := func(prefetch bool) float64 {
		m := New(cfg)
		for i := 0; i < 64; i++ {
			if prefetch && i+2 < 64 {
				m.Prefetch(uint64((i + 2) * 4096)) // next-next line (distinct pages to stress worst case)
			}
			m.Load(uint64(i * 4096))
			m.Compute(120) // enough work to cover 100-cycle latency
		}
		return m.Cycles()
	}
	base := run(false)
	pref := run(true)
	if pref >= base {
		t.Fatalf("prefetch did not help: %v vs %v", pref, base)
	}
	// With compute 120 > latency 100+TLB 20, prefetched loads should cost
	// ~1 cycle: saving ≈ 62 * 100 memory stalls.
	if base-pref < 5000 {
		t.Fatalf("prefetch saved only %v cycles", base-pref)
	}
}

func TestPrefetchQueueBound(t *testing.T) {
	m := New(tiny())
	for i := 0; i < 10; i++ {
		m.Prefetch(uint64(i * 64))
	}
	s := m.Stats()
	if s.Prefetches != 10 {
		t.Fatalf("prefetches = %d", s.Prefetches)
	}
	if s.PrefetchDropped != 6 { // MaxInflight = 4
		t.Fatalf("dropped = %d, want 6", s.PrefetchDropped)
	}
}

func TestPrefetchOfResidentLineIsCheap(t *testing.T) {
	m := New(tiny())
	m.Load(0)
	c := m.Cycles()
	m.Prefetch(0)
	if m.Cycles()-c != 1 {
		t.Fatalf("prefetch of resident line cost %v", m.Cycles()-c)
	}
	if len(m.inflight) != 0 {
		t.Fatal("resident prefetch queued")
	}
}

func TestPartialPrefetchOverlap(t *testing.T) {
	// Demand access arriving before the prefetch completes should pay
	// only the remaining latency.
	m := New(tiny())
	m.Load(4096) // prime TLB for second page? different page; keep simple
	m.Prefetch(0)
	m.Compute(50) // half the 100-cycle latency
	before := m.Cycles()
	m.Load(0)
	got := m.Cycles() - before
	// Cost = 1 slot + TLB(20) ... TLB charged first, then wait for
	// remaining (100 - 50 - 21) ≈ 29. Total ≈ 50 - overlap; just assert
	// it's well below the full 121 and above the free 21.
	if got >= 121 || got <= 21 {
		t.Fatalf("partial overlap cost %v, want in (21,121)", got)
	}
	if m.Stats().PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d", m.Stats().PrefetchHits)
	}
}

func TestSIMDThroughput(t *testing.T) {
	m1 := New(M1())
	m1.SIMDCompute(100)
	m2 := New(M2())
	m2.SIMDCompute(100)
	if m1.Cycles() != 100 {
		t.Fatalf("M1 SIMD: %v cycles", m1.Cycles())
	}
	if m2.Cycles() != 125 { // reduced throughput on K8 (0.8 ops/cycle)
		t.Fatalf("M2 SIMD: %v cycles", m2.Cycles())
	}
}

func TestCPI(t *testing.T) {
	m := New(tiny())
	m.Compute(100)
	if got := m.CPI(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("pure compute CPI = %v, want 1", got)
	}
	if New(tiny()).CPI() != 0 {
		t.Fatal("CPI of idle machine should be 0")
	}
}

func TestLoadRange(t *testing.T) {
	m := New(tiny())
	m.LoadRange(0, 256) // 4 lines
	if m.Stats().Loads != 4 {
		t.Fatalf("LoadRange issued %d loads, want 4", m.Stats().Loads)
	}
	m.LoadRange(60, 8) // straddles a line boundary → 2 lines
	if m.Stats().Loads != 6 {
		t.Fatalf("straddling LoadRange issued %d total, want 6", m.Stats().Loads)
	}
}

func TestM1M2Contrasts(t *testing.T) {
	m1, m2 := M1(), M2()
	if m1.L1.SizeBytes >= m2.L1.SizeBytes {
		t.Fatal("M1 L1 should be smaller than M2's (16KB vs 64KB)")
	}
	if m1.L2.SizeBytes <= m2.L2.SizeBytes {
		t.Fatal("M1 L2 should be larger than M2's (1MB vs 512KB)")
	}
	if m1.MemLatency <= m2.MemLatency {
		t.Fatal("M1 (FSB) memory latency should exceed M2 (IMC)")
	}
	if m1.SIMDOpsPerCycle <= m2.SIMDOpsPerCycle {
		t.Fatal("M1 SIMD throughput should exceed M2's")
	}
}

func TestArenaAlignment(t *testing.T) {
	a := NewArena()
	p1 := a.Alloc(10, 64)
	if p1%64 != 0 {
		t.Fatalf("misaligned: %d", p1)
	}
	p2 := a.Alloc(1, 64)
	if p2 <= p1 || p2%64 != 0 {
		t.Fatalf("second alloc %d after %d", p2, p1)
	}
	s := a.AllocScattered(100)
	if s%4096 != 0 {
		t.Fatalf("scattered alloc not page aligned: %d", s)
	}
	if a.Used() <= s {
		t.Fatal("Used did not advance")
	}
}

// Property: a cache never reports more residents than its capacity, and a
// lookup immediately after insert always hits.
func TestCacheInvariantProperty(t *testing.T) {
	f := func(lines []uint64) bool {
		c := newCache(512, 64, 2)
		for _, l := range lines {
			l %= 64
			c.insert(l)
			if !c.lookup(l) {
				return false
			}
		}
		for _, set := range c.sets {
			if len(set) > c.assoc {
				return false
			}
			// No duplicate tags within a set.
			for i := range set {
				for j := i + 1; j < len(set); j++ {
					if set[i] == set[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical traces produce identical cycle counts (the simulator
// is deterministic).
func TestDeterministicProperty(t *testing.T) {
	f := func(addrs []uint64) bool {
		run := func() float64 {
			m := New(tiny())
			for i, a := range addrs {
				a %= 1 << 20
				switch i % 4 {
				case 0:
					m.Load(a)
				case 1:
					m.Store(a)
				case 2:
					m.Prefetch(a)
				case 3:
					m.Compute(int(a % 7))
				}
			}
			return m.Cycles()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
