package memsim

import "testing"

// The simulator's own throughput matters: every instrumented kernel event
// passes through access(). These benches track events/second so model
// changes that slow the harness get noticed.

func BenchmarkSequentialLoads(b *testing.B) {
	m := New(M1())
	for i := 0; i < b.N; i++ {
		m.Load(uint64(i%(1<<20)) * 64)
	}
}

func BenchmarkRandomLoads(b *testing.B) {
	m := New(M1())
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		m.Load(state % (1 << 26))
	}
}

func BenchmarkPrefetchedChase(b *testing.B) {
	m := New(M1())
	state := uint64(1)
	for i := 0; i < b.N; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		addr := state % (1 << 26)
		m.Prefetch(addr)
		m.Compute(100)
		m.Load(addr)
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := newCache(16<<10, 64, 8)
	for l := uint64(0); l < 256; l++ {
		c.insert(l)
	}
	for i := 0; i < b.N; i++ {
		if !c.lookup(uint64(i) % 32) {
			b.Fatal("expected hit")
		}
	}
}
