package memsim

// cache is a set-associative LRU cache over line (or page) numbers. Each
// set keeps its tags in MRU-first order in a small slice; associativities
// are small enough that linear search and slice rotation beat fancier
// structures.
type cache struct {
	sets    [][]uint64
	setMask uint64
	assoc   int
}

// newCache builds a cache of the given total size, line size and
// associativity. The set count is rounded down to a power of two (and up
// to at least one).
func newCache(sizeBytes, lineBytes, assoc int) *cache {
	nLines := sizeBytes / lineBytes
	if nLines < 1 {
		nLines = 1
	}
	if assoc < 1 {
		assoc = 1
	}
	if assoc > nLines {
		assoc = nLines
	}
	nSets := nLines / assoc
	// Round down to a power of two for mask indexing.
	p := 1
	for p*2 <= nSets {
		p *= 2
	}
	nSets = p
	c := &cache{
		sets:    make([][]uint64, nSets),
		setMask: uint64(nSets - 1),
		assoc:   assoc,
	}
	return c
}

// lookup reports whether line is resident, promoting it to MRU if so.
func (c *cache) lookup(line uint64) bool {
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Promote to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	return false
}

// contains reports residency without changing LRU state.
func (c *cache) contains(line uint64) bool {
	for _, tag := range c.sets[line&c.setMask] {
		if tag == line {
			return true
		}
	}
	return false
}

// insert installs line as MRU, evicting the LRU tag if the set is full.
func (c *cache) insert(line uint64) {
	idx := line & c.setMask
	set := c.sets[idx]
	// Already resident: just promote.
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return
		}
	}
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[idx] = set
}
