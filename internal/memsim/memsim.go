// Package memsim is a trace-driven memory-hierarchy simulator. It stands in
// for the hardware performance counters of the paper's two evaluation
// machines (Table 5): instrumented kernels in internal/simkern replay their
// memory access streams through a Machine, which models a two-level
// set-associative cache hierarchy, a data TLB, main-memory latency, a
// software-prefetch queue with latency overlap, and a SIMD execution model.
// The outputs — cycles, CPI, and per-level miss counts — are the quantities
// Figure 2 and Figure 8 of the paper are built from.
//
// The model is deliberately simple (in-order retirement at a fixed issue
// width, fully-blocking demand misses, non-blocking prefetches) but it
// captures precisely the phenomena the ALSO patterns manipulate: spatial
// locality (line granularity), temporal locality (finite capacity, LRU),
// TLB reach (page granularity), memory-level parallelism (the prefetch
// queue), and data-level parallelism (vector ops per cycle).
package memsim

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	// Latency is the extra cycle cost of a hit at this level. L1 hits are
	// treated as pipelined (no extra cost beyond the instruction slot).
	Latency int
}

// TLBConfig describes the data TLB.
type TLBConfig struct {
	Entries     int
	PageBytes   int
	MissPenalty int // cycles per page-table walk
}

// Config is a machine description.
type Config struct {
	Name string
	L1   CacheConfig
	L2   CacheConfig
	TLB  TLBConfig
	// MemLatency is the cycle cost of an L2 miss served from DRAM.
	MemLatency int
	// IssueWidth is the number of scalar ops retired per cycle.
	IssueWidth int
	// SIMDLanes is the number of 64-bit lanes per vector operation
	// (2 = 128-bit SSE).
	SIMDLanes int
	// SIMDOpsPerCycle is the vector-op issue rate. The Pentium D executes
	// 128-bit SSE2 at full width; the K8 splits each 128-bit op into two
	// 64-bit halves, reducing effective throughput — the
	// microarchitectural fact behind the paper's weaker SIMD speedups on
	// M2 (Fig 8c,d).
	SIMDOpsPerCycle float64
	// MaxInflight bounds the number of outstanding software prefetches.
	MaxInflight int
	// DemandOverlap is the fraction of a demand L2-miss's DRAM latency
	// hidden by out-of-order execution (0 = fully blocking). Software
	// prefetches still need the full latency to complete, so a prefetch
	// issued too late can cost more than the demand miss it replaces —
	// the paper's "mispredicted prefetches ... may impair the
	// performance".
	DemandOverlap float64
	// StreamFactor divides the miss latency of StreamLoad/StreamStore
	// accesses: long sequential streams engage the hardware next-line
	// prefetcher and become bandwidth- rather than latency-bound. 0
	// disables the discount (factor 1).
	StreamFactor float64
}

// M1 models the paper's machine M1: Intel Pentium D 830 (NetBurst,
// 3 GHz): 16 KB 8-way L1D, 1 MB 8-way L2, small DTLB, long FSB memory
// latency, full-width 128-bit SSE2.
func M1() Config {
	return Config{
		Name:            "M1 (Pentium D 830)",
		L1:              CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 8, Latency: 0},
		L2:              CacheConfig{SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8, Latency: 27},
		TLB:             TLBConfig{Entries: 64, PageBytes: 4096, MissPenalty: 30},
		MemLatency:      300,
		IssueWidth:      3,
		SIMDLanes:       2,
		SIMDOpsPerCycle: 1.0,
		MaxInflight:     8,
		DemandOverlap:   0.4,
		StreamFactor:    4,
	}
}

// M2 models the paper's machine M2: AMD Athlon 64 X2 4200+ (K8, 2.2 GHz):
// 64 KB 2-way L1D, 512 KB 16-way L2, on-die memory controller (short
// memory latency), SSE units that split 128-bit ops in half.
func M2() Config {
	return Config{
		Name:            "M2 (Athlon 64 X2 4200+)",
		L1:              CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, Latency: 0},
		L2:              CacheConfig{SizeBytes: 512 << 10, LineBytes: 64, Assoc: 16, Latency: 12},
		TLB:             TLBConfig{Entries: 40, PageBytes: 4096, MissPenalty: 25},
		MemLatency:      140,
		IssueWidth:      3,
		SIMDLanes:       2,
		SIMDOpsPerCycle: 0.8,
		MaxInflight:     8,
		DemandOverlap:   0.4,
		StreamFactor:    4,
	}
}

// Stats are the event counters a run accumulates.
type Stats struct {
	Loads      uint64
	Stores     uint64
	ComputeOps uint64
	SIMDOps    uint64
	Prefetches uint64

	L1Miss  uint64
	L2Miss  uint64
	TLBMiss uint64
	// PrefetchHits counts demand accesses that found their line in flight
	// or already resident thanks to a software prefetch.
	PrefetchHits uint64
	// PrefetchDropped counts prefetches discarded because the queue was
	// full.
	PrefetchDropped uint64
}

// Instructions is the retired-op count used as the CPI denominator.
func (s Stats) Instructions() uint64 {
	return s.Loads + s.Stores + s.ComputeOps + s.SIMDOps + s.Prefetches
}

// Machine simulates one run. It is not safe for concurrent use.
type Machine struct {
	cfg   Config
	cycle float64
	l1    *cache
	l2    *cache
	tlb   *cache
	// inflight maps line address → cycle at which the prefetched line
	// arrives.
	inflight map[uint64]float64
	stats    Stats
}

// New returns a Machine for the configuration.
func New(cfg Config) *Machine {
	return &Machine{
		cfg:      cfg,
		l1:       newCache(cfg.L1.SizeBytes, cfg.L1.LineBytes, cfg.L1.Assoc),
		l2:       newCache(cfg.L2.SizeBytes, cfg.L2.LineBytes, cfg.L2.Assoc),
		tlb:      newCache(cfg.TLB.Entries*cfg.TLB.PageBytes, cfg.TLB.PageBytes, cfg.TLB.Entries),
		inflight: make(map[uint64]float64),
	}
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cycles returns the simulated cycle count so far.
func (m *Machine) Cycles() float64 { return m.cycle }

// Stats returns the accumulated event counters.
func (m *Machine) Stats() Stats { return m.stats }

// CPI returns cycles per retired instruction.
func (m *Machine) CPI() float64 {
	n := m.stats.Instructions()
	if n == 0 {
		return 0
	}
	return m.cycle / float64(n)
}

// Load simulates a data read of up to one line at addr.
func (m *Machine) Load(addr uint64) {
	m.stats.Loads++
	m.access(addr)
}

// Store simulates a data write (write-allocate, write-back).
func (m *Machine) Store(addr uint64) {
	m.stats.Stores++
	m.access(addr)
}

// LoadRange simulates a sequential read of size bytes starting at addr,
// touching each line once.
func (m *Machine) LoadRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	line := uint64(m.cfg.L1.LineBytes)
	end := addr + uint64(size)
	for a := addr &^ (line - 1); a < end; a += line {
		m.Load(a)
	}
}

// StreamLoadRange reads size sequential bytes with the hardware next-line
// prefetcher engaged: per-line miss latency is divided by StreamFactor.
func (m *Machine) StreamLoadRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	line := uint64(m.cfg.L1.LineBytes)
	end := addr + uint64(size)
	for a := addr &^ (line - 1); a < end; a += line {
		m.stats.Loads++
		m.accessScaled(a, m.streamScale())
	}
}

// StreamStoreRange writes size sequential bytes under the same streaming
// discount.
func (m *Machine) StreamStoreRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	line := uint64(m.cfg.L1.LineBytes)
	end := addr + uint64(size)
	for a := addr &^ (line - 1); a < end; a += line {
		m.stats.Stores++
		m.accessScaled(a, m.streamScale())
	}
}

func (m *Machine) streamScale() float64 {
	if m.cfg.StreamFactor <= 1 {
		return 1
	}
	return 1 / m.cfg.StreamFactor
}

// access charges one instruction slot and resolves the memory reference.
func (m *Machine) access(addr uint64) {
	m.accessScaled(addr, 1)
}

// accessScaled resolves a reference whose miss latencies are scaled by
// latScale (streaming accesses get latScale < 1).
func (m *Machine) accessScaled(addr uint64, latScale float64) {
	m.cycle += 1 / float64(m.cfg.IssueWidth)

	// TLB.
	page := addr / uint64(m.cfg.TLB.PageBytes)
	if !m.tlb.lookup(page) {
		m.stats.TLBMiss++
		m.cycle += float64(m.cfg.TLB.MissPenalty)
		m.tlb.insert(page)
	}

	line := addr / uint64(m.cfg.L1.LineBytes)
	if m.l1.lookup(line) {
		return
	}
	m.stats.L1Miss++

	// A software prefetch already in flight (or arrived) covers the miss.
	if ready, ok := m.inflight[line]; ok {
		delete(m.inflight, line)
		m.stats.PrefetchHits++
		if ready > m.cycle {
			m.cycle = ready // wait for the remaining latency only
		}
		m.l1.insert(line)
		m.l2.insert(line)
		return
	}

	if m.l2.lookup(line) {
		m.cycle += float64(m.cfg.L2.Latency) * latScale
		m.l1.insert(line)
		return
	}
	m.stats.L2Miss++
	m.cycle += float64(m.cfg.MemLatency) * (1 - m.cfg.DemandOverlap) * latScale
	m.l1.insert(line)
	m.l2.insert(line)
}

// Prefetch issues a non-blocking software prefetch for the line containing
// addr. It costs one instruction slot; the line arrives after the L2 or
// memory latency without stalling the pipeline.
func (m *Machine) Prefetch(addr uint64) {
	m.stats.Prefetches++
	m.cycle += 1 / float64(m.cfg.IssueWidth)

	line := addr / uint64(m.cfg.L1.LineBytes)
	if m.l1.contains(line) {
		return
	}
	if _, ok := m.inflight[line]; ok {
		return
	}
	if len(m.inflight) >= m.cfg.MaxInflight {
		m.stats.PrefetchDropped++
		return
	}
	lat := float64(m.cfg.MemLatency)
	if m.l2.contains(line) {
		lat = float64(m.cfg.L2.Latency)
	}
	m.inflight[line] = m.cycle + lat
}

// Compute charges n scalar ALU operations.
func (m *Machine) Compute(n int) {
	m.stats.ComputeOps += uint64(n)
	m.cycle += float64(n) / float64(m.cfg.IssueWidth)
}

// SIMDCompute charges n vector operations at the machine's vector issue
// rate.
func (m *Machine) SIMDCompute(n int) {
	m.stats.SIMDOps += uint64(n)
	m.cycle += float64(n) / m.cfg.SIMDOpsPerCycle
}

// String summarises the machine state.
func (m *Machine) String() string {
	s := m.stats
	return fmt.Sprintf("%s: %.0f cycles, %d instr, CPI %.2f, L1 miss %d, L2 miss %d, TLB miss %d",
		m.cfg.Name, m.cycle, s.Instructions(), m.CPI(), s.L1Miss, s.L2Miss, s.TLBMiss)
}
