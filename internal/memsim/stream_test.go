package memsim

import "testing"

func TestStreamDiscountOnMisses(t *testing.T) {
	cfg := tiny()
	cfg.StreamFactor = 4
	// Demand-load a cold 16-line region vs stream-loading it: the stream
	// pays 1/4 of the memory latency per line.
	demand := New(cfg)
	demand.LoadRange(0, 16*64)
	stream := New(cfg)
	stream.StreamLoadRange(0, 16*64)
	if stream.Stats().Loads != demand.Stats().Loads {
		t.Fatalf("load counts differ: %d vs %d", stream.Stats().Loads, demand.Stats().Loads)
	}
	if stream.Cycles() >= demand.Cycles() {
		t.Fatalf("stream (%v) not cheaper than demand (%v)", stream.Cycles(), demand.Cycles())
	}
	// 16 misses × 100 cycles vs 16 × 25: difference ≈ 1200.
	if diff := demand.Cycles() - stream.Cycles(); diff < 1000 {
		t.Fatalf("stream discount too small: %v", diff)
	}
}

func TestStreamStoreCountsAsStores(t *testing.T) {
	m := New(tiny())
	m.StreamStoreRange(0, 4*64)
	s := m.Stats()
	if s.Stores != 4 || s.Loads != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStreamHitCostsOnlyInstructionSlot(t *testing.T) {
	m := New(tiny())
	m.Load(0) // install line
	before := m.Cycles()
	m.StreamLoadRange(0, 8) // one resident line
	if got := m.Cycles() - before; got != 1 {
		t.Fatalf("stream hit cost %v, want 1", got)
	}
}

func TestStreamFactorDisabled(t *testing.T) {
	cfg := tiny()
	cfg.StreamFactor = 0 // disabled → factor 1
	a := New(cfg)
	a.StreamLoadRange(0, 8*64)
	b := New(cfg)
	b.LoadRange(0, 8*64)
	if a.Cycles() != b.Cycles() {
		t.Fatalf("disabled stream factor should equal demand cost: %v vs %v", a.Cycles(), b.Cycles())
	}
}

func TestStreamZeroSizeNoop(t *testing.T) {
	m := New(tiny())
	m.StreamLoadRange(0, 0)
	m.StreamStoreRange(0, -5)
	if m.Cycles() != 0 || m.Stats().Instructions() != 0 {
		t.Fatal("zero-size stream did work")
	}
}
