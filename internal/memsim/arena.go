package memsim

// Arena is a bump allocator over the simulated address space. Instrumented
// kernels lay out their data structures through an Arena so that layout
// patterns (lexicographic ordering, aggregation, compaction) change the
// actual simulated addresses — the property the locality patterns act on.
type Arena struct {
	next uint64
}

// NewArena returns an arena whose first allocation lands at a page
// boundary above address zero.
func NewArena() *Arena { return &Arena{next: 1 << 16} }

// Alloc reserves size bytes with the given alignment (a power of two) and
// returns the base address.
func (a *Arena) Alloc(size int, align int) uint64 {
	if align < 1 {
		align = 1
	}
	mask := uint64(align - 1)
	a.next = (a.next + mask) &^ mask
	base := a.next
	a.next += uint64(size)
	return base
}

// AllocScattered reserves size bytes but places them at a page-aligned
// address far from the previous allocation, emulating independent heap
// allocations interleaved with other data ("scattered over memory"). The
// gap defeats spatial locality between consecutively allocated objects
// without inflating TLB pressure artificially beyond one page per object.
func (a *Arena) AllocScattered(size int) uint64 {
	const page = 4096
	a.next = (a.next + page - 1) &^ uint64(page-1)
	base := a.next
	a.next += uint64(size)
	a.next = (a.next + page - 1) &^ uint64(page-1)
	return base
}

// Used returns the number of simulated bytes consumed so far.
func (a *Arena) Used() uint64 { return a.next }
