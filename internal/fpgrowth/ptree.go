package fpgrowth

import "fpm/internal/dataset"

// pointerTree is the baseline FP-tree layout: one heap allocation per node,
// pointer-linked in all four directions (parent, first child, next sibling,
// and the per-item node-link chain). This reproduces the memory behaviour
// the paper starts from: nodes scattered across the heap, upward traversal
// as a pure pointer chase.
type pointerTree struct {
	prefetch bool
	root     *pnode
	// head[i] is the head of item i's node-link chain; sup[i] the summed
	// count of that chain.
	head    map[dataset.Item]*pnode
	sup     map[dataset.Item]int32
	present []dataset.Item
	pathBuf []dataset.Item
}

type pnode struct {
	item    dataset.Item
	count   int32
	parent  *pnode
	child   *pnode // first child
	sibling *pnode // next sibling
	next    *pnode // node-link to the next node with the same item
}

func (t *pointerTree) build(base []weightedTx, numItems int) {
	t.root = &pnode{item: -1}
	t.head = make(map[dataset.Item]*pnode)
	t.sup = make(map[dataset.Item]int32)
	for _, row := range base {
		cur := t.root
		for _, it := range row.items {
			// Find the child carrying it, or create it.
			var ch *pnode
			for c := cur.child; c != nil; c = c.sibling {
				if c.item == it {
					ch = c
					break
				}
			}
			if ch == nil {
				ch = &pnode{item: it, parent: cur, sibling: cur.child}
				cur.child = ch
				ch.next = t.head[it]
				t.head[it] = ch
			}
			ch.count += row.w
			cur = ch
		}
	}
	for it := range t.head {
		t.present = append(t.present, it)
	}
	// Expansion order: decreasing item id = increasing global frequency
	// (least frequent first), matching the classic header-table walk.
	sortItemsDesc(t.present)
	for it, h := range t.head {
		var s int32
		for n := h; n != nil; n = n.next {
			s += n.count
		}
		t.sup[it] = s
	}
}

func (t *pointerTree) items() []dataset.Item { return t.present }

func (t *pointerTree) support(item dataset.Item) int32 { return t.sup[item] }

func (t *pointerTree) condBase(item dataset.Item, emit func(path []dataset.Item, w int32)) {
	for n := t.head[item]; n != nil; n = n.next {
		if t.prefetch && n.next != nil {
			// P5/P7 emulation: touch the next node-link (and its parent)
			// before processing the current node, overlapping its fetch
			// with the upward walk below.
			_ = n.next.count
			if n.next.parent != nil {
				_ = n.next.parent.count
			}
		}
		t.pathBuf = t.pathBuf[:0]
		for p := n.parent; p != nil && p.item >= 0; p = p.parent {
			t.pathBuf = append(t.pathBuf, p.item)
		}
		emit(t.pathBuf, n.count)
	}
}

// sortItemsDesc sorts items in decreasing id order (insertion sort; the
// slices are small and usually nearly sorted).
func sortItemsDesc(s []dataset.Item) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] < v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
