package fpgrowth

import "fpm/internal/dataset"

// compactTree is the P2 data-structure-adapted layout: nodes live in one
// contiguous arena and link by 32-bit indices, shrinking the node from the
// pointer layout's 48 bytes (plus per-node allocator overhead) to 24 bytes
// and removing all per-node allocations. This is the Go analogue of the
// paper's differential item-ID encoding — the mechanism differs (indices
// instead of byte deltas, since Go favours dense arenas over unaligned byte
// packing) but the optimization objective is the same: "this reduces the
// node size and memory requirements dramatically".
//
// With aggregate set, build additionally computes P3 supernodes: for every
// node, the items of its next aggSpan-1 ancestors stored inline in a
// contiguous side array plus a skip index to the ancestor beyond them, so
// the conditional-pattern-base walk reads one contiguous record per
// superlevel instead of dereferencing one node per level. Shared ancestors
// are replicated into each descendant's segment, which "partially offsets
// the compression achieved by using a prefix tree representation" exactly
// as the paper notes.
type compactTree struct {
	aggregate bool
	aggSpan   int
	prefetch  bool
	dfsOrder  bool

	nodes []cnode
	// head[i]/sup[i] index item i's node-link chain head and support; the
	// header table is a dense array (items are dense ranks).
	head []int32
	sup  []int32

	// Aggregation side arrays, indexed by node: seg holds each node's
	// inline ancestor items back-to-back; skip is the arena index of the
	// ancestor after the inline segment (or nilIdx).
	segOff  []int32
	segLen  []int8
	segs    []dataset.Item
	skip    []int32
	present []dataset.Item
	pathBuf []dataset.Item
}

const nilIdx = int32(-1)

type cnode struct {
	item    dataset.Item
	count   int32
	parent  int32
	child   int32
	sibling int32
	next    int32
}

func (t *compactTree) build(base []weightedTx, numItems int) {
	t.nodes = t.nodes[:0]
	t.nodes = append(t.nodes, cnode{item: -1, parent: nilIdx, child: nilIdx, sibling: nilIdx, next: nilIdx})
	t.head = make([]int32, numItems)
	t.sup = make([]int32, numItems)
	for i := range t.head {
		t.head[i] = nilIdx
	}

	for _, row := range base {
		cur := int32(0)
		for _, it := range row.items {
			ch := nilIdx
			for c := t.nodes[cur].child; c != nilIdx; c = t.nodes[c].sibling {
				if t.nodes[c].item == it {
					ch = c
					break
				}
			}
			if ch == nilIdx {
				ch = int32(len(t.nodes))
				t.nodes = append(t.nodes, cnode{
					item: it, parent: cur, child: nilIdx,
					sibling: t.nodes[cur].child, next: t.head[it],
				})
				t.nodes[cur].child = ch
				t.head[it] = ch
			}
			t.nodes[ch].count += row.w
			cur = ch
		}
	}

	for it := dataset.Item(0); int(it) < numItems; it++ {
		if t.head[it] == nilIdx {
			continue
		}
		t.present = append(t.present, it)
		var s int32
		for n := t.head[it]; n != nilIdx; n = t.nodes[n].next {
			s += t.nodes[n].count
		}
		t.sup[it] = s
	}
	// Decreasing id = least frequent first.
	for i, j := 0, len(t.present)-1; i < j; i, j = i+1, j-1 {
		t.present[i], t.present[j] = t.present[j], t.present[i]
	}

	if t.dfsOrder {
		t.reorderDFS()
	}
	if t.aggregate {
		t.buildSegments()
	}
}

// buildSegments materialises the P3 supernode segments: for each node, up
// to aggSpan-1 ancestor items copied inline, plus the skip index.
func (t *compactTree) buildSegments() {
	n := len(t.nodes)
	t.segOff = make([]int32, n)
	t.segLen = make([]int8, n)
	t.skip = make([]int32, n)
	t.segs = t.segs[:0]
	for i := 1; i < n; i++ {
		t.segOff[i] = int32(len(t.segs))
		p := t.nodes[i].parent
		ln := 0
		for ln < t.aggSpan-1 && p != 0 && p != nilIdx {
			t.segs = append(t.segs, t.nodes[p].item)
			p = t.nodes[p].parent
			ln++
		}
		t.segLen[i] = int8(ln)
		if p == 0 || p == nilIdx {
			t.skip[i] = nilIdx
		} else {
			t.skip[i] = p
		}
	}
}

// reorderDFS rewrites the arena in depth-first order — the cache-conscious
// prefix-tree reorganisation of Ghoting et al. (VLDB'05), which the paper
// lists as prior work ("the depth-first ordering is a reorganization of
// the tree structure, only to optimize the traversal"). After the rewrite,
// a node and its first child are adjacent, so downward walks and the upper
// (hot) levels of upward walks share cache lines.
func (t *compactTree) reorderDFS() {
	n := len(t.nodes)
	order := make([]int32, 0, n) // new position -> old index
	remap := make([]int32, n)    // old index -> new position
	stack := make([]int32, 0, 64)
	stack = append(stack, 0)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		remap[cur] = int32(len(order))
		order = append(order, cur)
		// Push children in reverse sibling order so the first child is
		// visited (and therefore placed) immediately after its parent.
		var kids []int32
		for c := t.nodes[cur].child; c != nilIdx; c = t.nodes[c].sibling {
			kids = append(kids, c)
		}
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	fix := func(idx int32) int32 {
		if idx == nilIdx {
			return nilIdx
		}
		return remap[idx]
	}
	next := make([]cnode, n)
	for newPos, old := range order {
		nd := t.nodes[old]
		nd.parent = fix(nd.parent)
		nd.child = fix(nd.child)
		nd.sibling = fix(nd.sibling)
		nd.next = fix(nd.next)
		next[newPos] = nd
	}
	t.nodes = next
	for it := range t.head {
		t.head[it] = fix(t.head[it])
	}
}

func (t *compactTree) items() []dataset.Item { return t.present }

func (t *compactTree) support(item dataset.Item) int32 { return t.sup[item] }

func (t *compactTree) condBase(item dataset.Item, emit func(path []dataset.Item, w int32)) {
	for n := t.head[item]; n != nilIdx; n = t.nodes[n].next {
		if t.prefetch {
			if nx := t.nodes[n].next; nx != nilIdx {
				// P5/P7 emulation: touch the next node-link early.
				_ = t.nodes[nx].count
			}
		}
		t.pathBuf = t.pathBuf[:0]
		if t.aggregate {
			// Supernode walk: consume inline segments, then skip.
			cur := n
			for cur != nilIdx && cur != 0 {
				off, ln := t.segOff[cur], int(t.segLen[cur])
				t.pathBuf = append(t.pathBuf, t.segs[off:off+int32(ln)]...)
				cur = t.skip[cur]
				if cur != nilIdx && cur != 0 {
					t.pathBuf = append(t.pathBuf, t.nodes[cur].item)
				}
			}
		} else {
			for p := t.nodes[n].parent; p != nilIdx && p != 0; p = t.nodes[p].parent {
				t.pathBuf = append(t.pathBuf, t.nodes[p].item)
			}
		}
		emit(t.pathBuf, t.nodes[n].count)
	}
}
