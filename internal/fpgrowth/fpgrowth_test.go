package fpgrowth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/mine"
)

// allVariants enumerates pattern combinations valid for FP-Growth
// (Table 4). Aggregate requires the arena layout, so it is exercised
// together with Adapt (as in the paper, which reports them jointly as the
// "Reorg" bar).
func allVariants() []*Miner {
	sets := []mine.PatternSet{
		0,
		mine.PatternSet(mine.Lex),
		mine.PatternSet(mine.Adapt),
		mine.PatternSet(mine.Adapt | mine.Aggregate),
		mine.PatternSet(mine.Compact),
		mine.PatternSet(mine.Prefetch),
		mine.PatternSet(mine.PrefetchPtr),
		mine.Applicable(mine.FPGrowth),
	}
	var out []*Miner
	for _, s := range sets {
		out = append(out, New(Options{Patterns: s}))
	}
	// Stress the supernode span boundaries.
	out = append(out, New(Options{Patterns: mine.PatternSet(mine.Adapt | mine.Aggregate), AggSpan: 2}))
	out = append(out, New(Options{Patterns: mine.PatternSet(mine.Adapt | mine.Aggregate), AggSpan: 8}))
	// The Ghoting-style cache-conscious DFS relayout, alone and combined
	// with aggregation (the relayout must commute with segment building).
	out = append(out, New(Options{Patterns: mine.PatternSet(mine.Adapt), CacheConscious: true}))
	out = append(out, New(Options{Patterns: mine.PatternSet(mine.Adapt | mine.Aggregate), CacheConscious: true}))
	return out
}

// TestDFSReorderPlacesFirstChildAdjacent checks the cache-conscious
// relayout invariant directly: after reorderDFS every node's first child
// sits at the next arena slot.
func TestDFSReorderPlacesFirstChildAdjacent(t *testing.T) {
	base := []weightedTx{
		{items: []dataset.Item{0, 1, 2}, w: 1},
		{items: []dataset.Item{0, 3}, w: 1},
		{items: []dataset.Item{1, 2}, w: 1},
	}
	ct := &compactTree{dfsOrder: true}
	ct.build(cloneBase(base), 4)
	for i := range ct.nodes {
		if c := ct.nodes[i].child; c != nilIdx {
			// The first-visited child is the head of the child list after
			// reordering; it must be i+1.
			if c != int32(i)+1 {
				t.Fatalf("node %d first child at %d", i, c)
			}
		}
	}
}

func TestHandWorked(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1, 2}, {0, 2}})
	want := mine.ResultSet{"0": 3, "1": 2, "2": 2, "0,1": 2, "0,2": 2}
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, 2, rs); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s = %v, want %v\n%s", m.Name(), rs, want, rs.Diff(want, 10))
		}
	}
}

func TestPaperTable1Database(t *testing.T) {
	db := dataset.New([]dataset.Transaction{
		{0, 2, 5}, {1, 2, 5}, {0, 2, 5}, {3, 4}, {0, 1, 2, 3, 4, 5},
	})
	db.Normalize()
	want := mine.ResultSet{"2": 4, "5": 4, "0": 3, "2,5": 4, "0,2": 3, "0,5": 3, "0,2,5": 3}
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, 3, rs); err != nil {
			t.Fatal(err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s:\n%s", m.Name(), rs.Diff(want, 10))
		}
	}
}

func TestEdgeCases(t *testing.T) {
	m := New(Options{})
	if err := m.Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
		t.Fatalf("empty DB: %v", err)
	}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
		t.Fatal("minSupport 0 accepted")
	}
	rs := mine.ResultSet{}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}, {1}}), 3, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("mined %v at impossible support", rs)
	}
	// Single long transaction: a pure chain tree (deep supernode walk).
	chain := dataset.New([]dataset.Transaction{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}})
	agg := New(Options{Patterns: mine.PatternSet(mine.Adapt | mine.Aggregate), AggSpan: 3})
	rs = mine.ResultSet{}
	if err := agg.Mine(chain, 1, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1023 { // 2^10 - 1 subsets
		t.Fatalf("chain mined %d itemsets, want 1023", len(rs))
	}
}

// Property: every variant agrees with the brute-force oracle.
func TestMatchesBruteForceProperty(t *testing.T) {
	variants := allVariants()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		for _, m := range variants {
			rs := mine.ResultSet{}
			if err := m.Mine(db, minsup, rs); err != nil {
				return false
			}
			if !rs.Equal(want) {
				t.Logf("%s (seed %d, minsup %d):\n%s", m.Name(), seed, minsup, rs.Diff(want, 5))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantsAgreeOnGenerated(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 600, AvgLen: 12, AvgPatternLen: 4, Items: 60, Patterns: 25, Seed: 99})
	minsup := 30
	var want mine.ResultSet
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, minsup, rs); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rs
			if len(want) == 0 {
				t.Fatal("degenerate workload: no frequent itemsets")
			}
			continue
		}
		if !rs.Equal(want) {
			t.Fatalf("%s disagrees:\n%s", m.Name(), rs.Diff(want, 10))
		}
	}
}

// TestTreeLayoutsProduceSameStructure builds both layouts from the same
// base and checks node counts and per-item supports agree.
func TestTreeLayoutsProduceSameStructure(t *testing.T) {
	base := []weightedTx{
		{items: []dataset.Item{0, 1, 2}, w: 2},
		{items: []dataset.Item{0, 1}, w: 1},
		{items: []dataset.Item{0, 3}, w: 4},
		{items: []dataset.Item{2}, w: 1},
	}
	pt := &pointerTree{}
	pt.build(cloneBase(base), 4)
	ct := &compactTree{}
	ct.build(cloneBase(base), 4)
	for it := dataset.Item(0); it < 4; it++ {
		if pt.support(it) != ct.support(it) {
			t.Fatalf("support(%d): pointer %d vs compact %d", it, pt.support(it), ct.support(it))
		}
	}
	// Conditional bases must be identical as multisets of (path, weight).
	for it := dataset.Item(0); it < 4; it++ {
		pb := map[string]int32{}
		cb := map[string]int32{}
		pt.condBase(it, func(p []dataset.Item, w int32) { pb[mine.Key(p)] += w })
		ct.condBase(it, func(p []dataset.Item, w int32) { cb[mine.Key(p)] += w })
		if len(pb) != len(cb) {
			t.Fatalf("item %d: cond base sizes differ: %v vs %v", it, pb, cb)
		}
		for k, v := range pb {
			if cb[k] != v {
				t.Fatalf("item %d: cond base %q: %d vs %d", it, k, v, cb[k])
			}
		}
	}
}

// TestAggregatedWalkMatchesPlain checks the supernode walk reconstructs
// exactly the same paths as the plain parent chase for random trees.
func TestAggregatedWalkMatchesPlain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRows := 1 + rng.Intn(15)
		base := make([]weightedTx, 0, nRows)
		for i := 0; i < nRows; i++ {
			l := 1 + rng.Intn(10)
			row := make([]dataset.Item, 0, l)
			for it := dataset.Item(0); int(it) < 12 && len(row) < l; it++ {
				if rng.Intn(2) == 0 {
					row = append(row, it)
				}
			}
			if len(row) == 0 {
				row = append(row, 0)
			}
			base = append(base, weightedTx{items: row, w: int32(1 + rng.Intn(3))})
		}
		span := 2 + rng.Intn(5)
		plain := &compactTree{}
		plain.build(cloneBase(base), 12)
		agg := &compactTree{aggregate: true, aggSpan: span}
		agg.build(cloneBase(base), 12)
		for it := dataset.Item(0); it < 12; it++ {
			var pp, ap []string
			plain.condBase(it, func(p []dataset.Item, w int32) { pp = append(pp, pathKey(p, w)) })
			agg.condBase(it, func(p []dataset.Item, w int32) { ap = append(ap, pathKey(p, w)) })
			if len(pp) != len(ap) {
				return false
			}
			for i := range pp {
				if pp[i] != ap[i] {
					t.Logf("seed %d span %d item %d: %q vs %q", seed, span, it, pp[i], ap[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func pathKey(p []dataset.Item, w int32) string {
	b := make([]byte, 0, len(p)*2+4)
	for _, it := range p {
		b = append(b, byte('a'+it))
	}
	b = append(b, '#', byte('0'+w%10))
	return string(b)
}

func cloneBase(base []weightedTx) []weightedTx {
	out := make([]weightedTx, len(base))
	for i, r := range base {
		out[i] = weightedTx{items: append([]dataset.Item(nil), r.items...), w: r.w}
	}
	return out
}

func TestMineDoesNotMutateInput(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 2}, {0, 1}})
	db.Normalize()
	before := db.Clone()
	m := New(Options{Patterns: mine.Applicable(mine.FPGrowth)})
	if err := m.Mine(db, 1, mine.ResultSet{}); err != nil {
		t.Fatal(err)
	}
	for i := range db.Tx {
		for j := range db.Tx[i] {
			if db.Tx[i][j] != before.Tx[i][j] {
				t.Fatal("Mine mutated input database")
			}
		}
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
