// Package fpgrowth implements the FP-Growth kernel of paper §4.3: pattern
// growth over an FP-tree (a prefix tree augmented with per-item node-link
// chains and a header table). The dominant access pattern — and the
// memory-bound hot loop the paper targets — is following the node-links of
// an item and then walking each node's parent chain to the root to gather
// the conditional pattern base.
//
// Applicable patterns (Table 4):
//
//	P1 Lex          — insert lexicographically sorted transactions, so
//	                  consecutive insertions share cached paths and
//	                  parent/child pairs are allocated adjacently;
//	P2 Adapt        — compact index-linked arena nodes instead of
//	                  pointer-linked heap nodes (the Go analogue of the
//	                  paper's differential item-ID byte encoding: the goal,
//	                  a much smaller node, is preserved — see DESIGN.md);
//	P3 Aggregate    — inline path segments: each node carries the items of
//	                  its next AggSpan-1 ancestors plus a skip pointer, so
//	                  an upward walk reads one contiguous record per
//	                  superlevel instead of chasing one pointer per level;
//	P4 Compact      — conditional pattern bases gathered into reused
//	                  contiguous buffers instead of per-path allocations;
//	P5 PrefetchPtr /
//	P7 Prefetch     — node-link read-ahead touches natively (precise
//	                  modelling lives in internal/simkern).
package fpgrowth

import (
	"sort"

	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/lexorder"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/trace"
)

// Options selects the tuning patterns applied by the miner.
type Options struct {
	Patterns mine.PatternSet
	// AggSpan is the number of tree levels folded into one supernode when
	// Patterns has Aggregate. Zero means 4 (the paper compresses "four
	// consecutive tree levels into one superlevel").
	AggSpan int
	// CacheConscious enables the depth-first arena reorganisation of
	// Ghoting et al. (VLDB'05) on the Adapt layout — one of the prior
	// tree optimisations the paper lists as complementary (the "( )"
	// cells of Table 4). It requires the Adapt pattern.
	CacheConscious bool
	// Metrics, when non-nil, receives run-time counters: nodes expanded
	// (conditional FP-trees built), support countings (header-table
	// supports read), itemsets emitted and candidate prunes. Nil disables
	// recording at the cost of one nil-check per counter site.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives coarse kernel spans: one span per
	// first-level subtree. Only set this on miners running sequentially —
	// under the scheduler the worker task spans own the timeline. The track
	// is cached on the Miner and reused across Mine calls, so a tracing
	// Miner must not run concurrent Mines.
	Trace *trace.Recorder
	// Cancel, when non-nil, is polled at every pattern-base expansion: once
	// it trips, the recursion unwinds and Mine returns Cancel.Err(). Nil
	// disables the check at the cost of one nil test per node.
	Cancel *cancel.Flag
}

// Miner is an FP-Growth frequent itemset miner.
type Miner struct {
	opts Options
	tk   *trace.Track
}

// track lazily creates the miner's kernel-span track.
func (m *Miner) track() *trace.Track {
	if m.opts.Trace == nil {
		return nil
	}
	if m.tk == nil {
		m.tk = m.opts.Trace.NewTrack(m.Name())
	}
	return m.tk
}

// New returns an FP-Growth miner with the given options.
func New(opts Options) *Miner { return &Miner{opts: opts} }

// Name implements mine.Miner.
func (m *Miner) Name() string { return "fpgrowth(" + m.opts.Patterns.String() + ")" }

// weightedTx is one row of a (conditional) pattern base: items sorted by
// the current tree's frequency order at insertion time.
type weightedTx struct {
	items []dataset.Item
	w     int32
}

// tree is the layout-independent FP-tree contract. Build/condBase inner
// loops are concrete per layout; only the per-item dispatch is virtual.
type tree interface {
	// build constructs the tree from the base. Item ids are dense in
	// [0, numItems); rows must already be filtered to frequent items and
	// sorted by decreasing frequency (increasing rank).
	build(base []weightedTx, numItems int)
	// items returns the distinct items present, in the order they should
	// be expanded (least frequent first).
	items() []dataset.Item
	// support returns the summed count of the item's node-links.
	support(item dataset.Item) int32
	// condBase invokes emit for every node-link of item: the node's count
	// and its root-ward path (item ids, nearest ancestor first). The path
	// slice is only valid during the call.
	condBase(item dataset.Item, emit func(path []dataset.Item, w int32))
}

// Mine implements mine.Miner.
func (m *Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}

	// FP-trees inherently order items by decreasing frequency within
	// every transaction. P1 additionally sorts the *transactions*
	// lexicographically so consecutive insertions share tree paths.
	var work *dataset.DB
	var ord *lexorder.Ordering
	if m.opts.Patterns.Has(mine.Lex) {
		work, ord = lexorder.Apply(db)
	} else {
		work, ord = lexorder.ApplyRelabelOnly(db)
	}

	// Build the root pattern base: drop globally infrequent items (they
	// cannot appear in any frequent itemset).
	freq := work.Frequencies()
	base := make([]weightedTx, 0, len(work.Tx))
	for _, t := range work.Tx {
		keep := make([]dataset.Item, 0, len(t))
		for _, it := range t {
			if freq[it] >= minSupport {
				keep = append(keep, it)
			}
		}
		if len(keep) > 0 {
			base = append(base, weightedTx{items: keep, w: 1})
		}
	}
	if len(base) == 0 {
		return nil
	}

	st := &state{m: m, minsup: int32(minSupport), collect: c, ord: ord,
		condFreq: make([]int32, work.NumItems), met: m.opts.Metrics.NewLocal(),
		tk: m.track(), cf: m.opts.Cancel}
	st.mineBase(base, work.NumItems)
	m.opts.Metrics.Flush(st.met)
	return m.opts.Cancel.Err()
}

type state struct {
	m       *Miner
	minsup  int32
	collect mine.Collector
	ord     *lexorder.Ordering
	prefix  []dataset.Item
	// flat is the P4-compacted conditional-base buffer, reused across the
	// whole recursion.
	flat []dataset.Item
	// condFreq/condTouched implement a resettable conditional frequency
	// counter over the global alphabet.
	condFreq    []int32
	condTouched []dataset.Item
	met         *metrics.Local
	tk          *trace.Track
	cf          *cancel.Flag
}

func (st *state) emit(support int32) {
	st.met.Emit()
	st.collect.Collect(st.ord.Restore(st.prefix), int(support))
}

// newTree picks the node layout per P2.
func (st *state) newTree() tree {
	if st.m.opts.Patterns.Has(mine.Adapt) {
		span := st.m.opts.AggSpan
		if span == 0 {
			span = 4
		}
		return &compactTree{aggregate: st.m.opts.Patterns.Has(mine.Aggregate), aggSpan: span,
			dfsOrder: st.m.opts.CacheConscious,
			prefetch: st.m.opts.Patterns.Has(mine.Prefetch) || st.m.opts.Patterns.Has(mine.PrefetchPtr)}
	}
	return &pointerTree{prefetch: st.m.opts.Patterns.Has(mine.Prefetch) || st.m.opts.Patterns.Has(mine.PrefetchPtr)}
}

// mineBase builds the FP-tree for a pattern base and grows patterns from
// it, recursing on conditional bases.
func (st *state) mineBase(base []weightedTx, numItems int) {
	if st.cf.Cancelled() {
		return
	}
	t := st.newTree()
	t.build(base, numItems)
	st.met.Node()

	compact := st.m.opts.Patterns.Has(mine.Compact)
	root := len(st.prefix) == 0

	for _, e := range t.items() {
		if st.cf.Cancelled() {
			return
		}
		sup := t.support(e)
		st.met.Support(1)
		if sup < st.minsup {
			st.met.Prune()
			continue
		}
		var ts int64
		if root && st.tk != nil {
			ts = st.tk.Begin()
		}
		st.prefix = append(st.prefix, e)
		st.emit(sup)

		// Gather the conditional pattern base of e. Count conditional
		// item frequencies in the same pass.
		st.condTouched = st.condTouched[:0]
		var cond []weightedTx
		flatStart := len(st.flat)
		t.condBase(e, func(path []dataset.Item, w int32) {
			if len(path) == 0 {
				return
			}
			for _, it := range path {
				if st.condFreq[it] == 0 {
					st.condTouched = append(st.condTouched, it)
				}
				st.condFreq[it] += w
			}
			var row []dataset.Item
			if compact {
				// P4: copy the path into the shared flat buffer; rows are
				// re-sliced out of it below once it stops growing.
				start := len(st.flat)
				st.flat = append(st.flat, path...)
				row = st.flat[start:len(st.flat):len(st.flat)]
			} else {
				row = append([]dataset.Item(nil), path...)
			}
			cond = append(cond, weightedTx{items: row, w: w})
		})

		// Filter to conditionally frequent items; drop empty rows.
		anyFreq := false
		for _, it := range st.condTouched {
			if st.condFreq[it] >= st.minsup {
				anyFreq = true
				break
			}
		}
		if anyFreq {
			sub := cond[:0]
			for _, row := range cond {
				keep := row.items[:0]
				for _, it := range row.items {
					if st.condFreq[it] >= st.minsup {
						keep = append(keep, it)
					}
				}
				if len(keep) > 0 {
					// Paths arrive nearest-ancestor-first, i.e. in
					// decreasing item-id (increasing frequency-rank)
					// order; rows must hold increasing ids. Reverse.
					for i, j := 0, len(keep)-1; i < j; i, j = i+1, j-1 {
						keep[i], keep[j] = keep[j], keep[i]
					}
					sub = append(sub, weightedTx{items: keep, w: row.w})
				}
			}
			// Reset the shared counters before recursing; sub rows are
			// already filtered.
			for _, it := range st.condTouched {
				st.condFreq[it] = 0
			}
			if len(sub) > 0 {
				st.mineBase(sub, numItems)
			}
		} else {
			for _, it := range st.condTouched {
				st.condFreq[it] = 0
			}
		}
		st.flat = st.flat[:flatStart]
		st.prefix = st.prefix[:len(st.prefix)-1]
		if root && st.tk != nil {
			st.tk.End(ts, "subtree", trace.CatKernel, int64(e))
		}
	}
}

// sortRows orders pattern-base rows lexicographically; used by tree builds
// when the Lex pattern asks for insertion-order locality on conditional
// trees as well. (The initial database ordering is handled in Mine.)
func sortRows(base []weightedTx) {
	sort.SliceStable(base, func(a, b int) bool {
		return lexorder.Less(base[a].items, base[b].items)
	})
}
