package servecache

import (
	"container/list"
	"slices"
	"sync"

	"fpm/internal/mine"
)

// ResultKey identifies one mining answer space: the input dataset (by
// identity hash), the kernel, and the tuning-pattern set. The support
// threshold is deliberately NOT part of the key — it is the subsumption
// axis: one cached listing mined at threshold s answers every query at
// threshold >= s by filtering, because mining is complete (the listing
// holds every itemset with support >= s, so the subset with support >= s'
// is exactly the s' answer). Patterns and kernel are in the key out of
// caution only; the differential oracle asserts they never change the
// answer, but a cache must not be the thing that hides it if one ever
// did.
type ResultKey struct {
	ID       Identity
	Algo     string
	Patterns string
}

// ResultCache caches canonical frequent-itemset listings keyed by
// ResultKey, one entry per key holding the listing mined at the lowest
// support threshold seen (lower thresholds subsume higher ones). Entries
// are evicted LRU-first under a byte cap.
type ResultCache struct {
	mu       sync.Mutex
	maxBytes int64
	entries  map[ResultKey]*resultEntry
	lru      *list.List // all entries; back = coldest
	resident int64
	stats    ResultStats
	// mutGen counts every entry mutation (insert, replace, removal) and
	// removeGen only removals (evict, shed, replace). The persister uses
	// mutGen to decide whether the on-disk snapshot is stale and removeGen
	// to guarantee write-after-shed ordering: a snapshot encoded before a
	// removal is never renamed into place after it (an entry shed under
	// memory pressure must not be resurrected from disk by a concurrent
	// writer).
	mutGen    uint64
	removeGen uint64
}

// ResultStats is a point-in-time census of the result cache.
type ResultStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// HitsExact answered a query at exactly the cached threshold;
	// HitsSubsumed answered a higher-threshold query by filtering.
	HitsExact    uint64 `json:"hits_exact"`
	HitsSubsumed uint64 `json:"hits_subsumed"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
}

type resultEntry struct {
	key    ResultKey
	minsup int
	sets   []mine.Itemset // canonical order, supports descending-compatible
	bytes  int64
	elem   *list.Element
	// path and fullHash are the entry's durable origin: the input file it
	// was mined from and that file's full-content FNV-64a at mine time.
	// Only entries with a non-empty path are persisted (InsertDurable sets
	// them; plain Insert leaves them zero), and Restore re-validates the
	// full hash against the live file before re-admitting an entry — the
	// full-content check the in-memory Identity deliberately skips.
	path     string
	fullHash uint64
}

// NewResultCache builds a cache bounded to maxBytes of resident listings
// (<= 0 means unbounded).
func NewResultCache(maxBytes int64) *ResultCache {
	return &ResultCache{
		maxBytes: maxBytes,
		entries:  make(map[ResultKey]*resultEntry),
		lru:      list.New(),
	}
}

// Canonicalize deep-copies sets into canonical form: items ascending
// within each itemset, itemsets ordered by size then element-wise — the
// same order the CLI's output sort and the deterministic parallel merge
// use. The copy means cache entries never alias a collector's arena.
func Canonicalize(sets []mine.Itemset) []mine.Itemset {
	out := make([]mine.Itemset, len(sets))
	for i, s := range sets {
		items := slices.Clone(s.Items)
		slices.Sort(items)
		out[i] = mine.Itemset{Items: items, Support: s.Support}
	}
	slices.SortFunc(out, func(a, b mine.Itemset) int {
		if mine.LessItems(a.Items, b.Items) {
			return -1
		}
		if mine.LessItems(b.Items, a.Items) {
			return 1
		}
		return 0
	})
	return out
}

// setsBytes estimates a listing's resident footprint.
func setsBytes(sets []mine.Itemset) int64 {
	var n int64
	for _, s := range sets {
		n += int64(len(s.Items))*4 + 32
	}
	return n + 24
}

// Filter returns the subsequence of a canonical listing with support >=
// minSupport — the subsumption step. The returned slice is fresh but
// shares the item slices (read-only by contract).
func Filter(sets []mine.Itemset, minSupport int) []mine.Itemset {
	out := make([]mine.Itemset, 0, len(sets))
	for _, s := range sets {
		if s.Support >= minSupport {
			out = append(out, s)
		}
	}
	return out
}

// Serve answers a query for (key, minSupport) from the cache: an entry
// mined at a threshold <= minSupport yields the exact answer by
// filtering. The returned listing is in canonical order and must be
// treated as read-only.
func (c *ResultCache) Serve(key ResultKey, minSupport int) ([]mine.Itemset, bool) {
	sets, _, ok := c.ServeTraced(key, minSupport)
	return sets, ok
}

// ServeTraced is Serve plus the outcome the flight recorder wants:
// "hit" (the cached listing's threshold matched exactly) or "subsume"
// (a lower-threshold listing answered by filtering). Outcome is empty on
// a miss.
func (c *ResultCache) ServeTraced(key ResultKey, minSupport int) ([]mine.Itemset, string, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || e.minsup > minSupport {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, "", false
	}
	c.lru.MoveToFront(e.elem)
	if e.minsup == minSupport {
		c.stats.HitsExact++
	} else {
		c.stats.HitsSubsumed++
	}
	sets := e.sets
	c.mu.Unlock()
	if e.minsup == minSupport {
		return sets, "hit", true
	}
	return Filter(sets, minSupport), "subsume", true
}

// Insert offers a freshly mined listing to the cache. A listing mined at
// a lower threshold replaces the cached one (it subsumes it); a listing
// at the same or a higher threshold is dropped in favour of the cached
// entry, which already answers it. Listings larger than the cap are not
// cached. sets may be in any order; the cache canonicalizes its own copy.
func (c *ResultCache) Insert(key ResultKey, minSupport int, sets []mine.Itemset) {
	c.insert(key, minSupport, sets, "", 0)
}

// InsertDurable is Insert plus the entry's durable origin: the input file
// path and that file's full-content FNV-64a, computed by the caller at
// mine time (off the hot path — cache hits never pay for it). Entries
// inserted this way are included in Snapshot and survive restarts;
// entries inserted with plain Insert stay memory-only.
func (c *ResultCache) InsertDurable(key ResultKey, minSupport int, sets []mine.Itemset, path string, fullHash uint64) {
	c.insert(key, minSupport, sets, path, fullHash)
}

func (c *ResultCache) insert(key ResultKey, minSupport int, sets []mine.Itemset, path string, fullHash uint64) {
	canon := Canonicalize(sets)
	cost := setsBytes(canon)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.minsup <= minSupport {
			return // cached entry already subsumes this listing
		}
		c.removeLocked(e)
	}
	if c.maxBytes > 0 {
		if cost > c.maxBytes {
			return
		}
		for c.resident+cost > c.maxBytes {
			back := c.lru.Back()
			if back == nil {
				break
			}
			c.removeLocked(back.Value.(*resultEntry))
			c.stats.Evictions++
		}
		if c.resident+cost > c.maxBytes {
			return
		}
	}
	e := &resultEntry{key: key, minsup: minSupport, sets: canon, bytes: cost,
		path: path, fullHash: fullHash}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.resident += cost
	c.mutGen++
}

// removeLocked unlinks an entry; callers hold c.mu.
func (c *ResultCache) removeLocked(e *resultEntry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.resident -= e.bytes
	c.mutGen++
	c.removeGen++
}

// Shed evicts entries, coldest first, until at least need bytes were
// freed or the cache is empty; returns the bytes freed.
func (c *ResultCache) Shed(need int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for freed < need {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*resultEntry)
		c.removeLocked(e)
		c.stats.Evictions++
		freed += e.bytes
	}
	return freed
}

// Resident returns the bytes of listings currently held.
func (c *ResultCache) Resident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// Stats returns a consistent snapshot of the cache counters.
func (c *ResultCache) Stats() ResultStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.resident
	return s
}
