package servecache_test

// The subsumption property test — the correctness net under the result
// cache's central claim: because mining is complete, a listing mined at
// support threshold s1 and filtered to s2 >= s1 is byte-identical (as a
// canonical listing) to mining directly at s2. Randomized corpora spanning
// the density/skew space, randomized (s1 < s2) pairs, all four kernels.
// If any kernel's emission, the canonicalization, or the filter ever
// disagrees, a cached answer would silently diverge from a fresh mine —
// the one failure mode a result cache must never have.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"fpm"
	"fpm/internal/servecache"
)

// renderCanon renders a listing in canonical order as the FIMI-style text
// the CLI emits; comparing rendered strings makes "byte-identical" literal.
func renderCanon(sets []fpm.Itemset) string {
	canon := servecache.Canonicalize(sets)
	var b strings.Builder
	for _, s := range canon {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", it)
		}
		fmt.Fprintf(&b, " (%d)\n", s.Support)
	}
	return b.String()
}

func TestSubsumptionPropertyAllKernels(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	rng := rand.New(rand.NewSource(20260808))
	algos := []fpm.Algorithm{fpm.LCM, fpm.Eclat, fpm.FPGrowth, fpm.Apriori}
	for i := 0; i < n; i++ {
		var db *fpm.DB
		var kind string
		if i%2 == 0 {
			db = fpm.GenerateQuest(fpm.QuestConfig{
				Transactions:  120 + rng.Intn(180),
				AvgLen:        5 + rng.Intn(6),
				AvgPatternLen: 2 + rng.Intn(3),
				Items:         30 + rng.Intn(50),
				Patterns:      10 + rng.Intn(20),
				Seed:          rng.Int63(),
			})
			kind = "quest"
		} else {
			db = fpm.GenerateCorpus(fpm.CorpusConfig{
				Docs:       120 + rng.Intn(180),
				Vocab:      40 + rng.Intn(60),
				AvgLen:     4 + 5*rng.Float64(),
				ZipfS:      1.1 + 0.7*rng.Float64(),
				Topics:     rng.Intn(5),
				TopicShare: 0.3 + 0.4*rng.Float64(),
				TopicPool:  15 + rng.Intn(20),
				Shuffle:    rng.Intn(2) == 0,
				Seed:       rng.Int63(),
			})
			kind = "corpus"
		}
		// s1 < s2: the cached threshold and a strictly higher query.
		s1 := 2 + int(0.03*float64(db.Len())) + rng.Intn(3)
		s2 := s1 + 1 + rng.Intn(1+db.Len()/20)
		tc := struct {
			name   string
			db     *fpm.DB
			s1, s2 int
		}{fmt.Sprintf("%02d-%s-n%d-s%d-s%d", i, kind, db.Len(), s1, s2), db, s1, s2}
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(t.TempDir(), "db.dat")
			if err := fpm.WriteFIMIFile(path, tc.db); err != nil {
				t.Fatal(err)
			}
			id, err := servecache.FileIdentity(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range algos {
				cache := servecache.NewResultCache(0)
				key := servecache.ResultKey{ID: id, Algo: string(algo)}

				low, err := fpm.Mine(tc.db, algo, fpm.Applicable(algo), tc.s1)
				if err != nil {
					t.Fatalf("%s mine(s1=%d): %v", algo, tc.s1, err)
				}
				cache.Insert(key, tc.s1, low)

				// The higher-threshold query must be served by subsumption...
				got, ok := cache.Serve(key, tc.s2)
				if !ok {
					t.Fatalf("%s: cache missed a subsumed query (cached s1=%d, query s2=%d)", algo, tc.s1, tc.s2)
				}
				// ...and byte-identically match a direct mine at s2.
				direct, err := fpm.Mine(tc.db, algo, fpm.Applicable(algo), tc.s2)
				if err != nil {
					t.Fatalf("%s mine(s2=%d): %v", algo, tc.s2, err)
				}
				want := renderCanon(direct)
				if have := renderCanon(got); have != want {
					t.Errorf("%s: subsumed listing differs from direct mine at s2=%d (%d vs %d sets)",
						algo, tc.s2, len(got), len(direct))
				}
				// The exact-threshold round trip must be lossless too.
				exact, ok := cache.Serve(key, tc.s1)
				if !ok {
					t.Fatalf("%s: cache missed the exact threshold it was filled at", algo)
				}
				if have := renderCanon(exact); have != renderCanon(low) {
					t.Errorf("%s: exact-threshold serve is not the inserted listing", algo)
				}
				if s := cache.Stats(); s.HitsSubsumed != 1 || s.HitsExact != 1 {
					t.Fatalf("%s: stats = %+v, want 1 subsumed + 1 exact hit", algo, s)
				}
			}
		})
	}
}
