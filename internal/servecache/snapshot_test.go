package servecache

// Tests for the result-cache snapshot codec and restore path: round trips,
// warmth-order preservation, the full-content-hash staleness gate (including
// the same-size/same-prefix/same-mtime collision window the in-memory
// Identity cannot see), mtime-drift re-keying, and hostile-input decoding.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// sets1 / sets2 are small canonical-ready listings.
func sets1() []mine.Itemset {
	return []mine.Itemset{
		{Items: []dataset.Item{1}, Support: 9},
		{Items: []dataset.Item{1, 2}, Support: 5},
	}
}

func sets2() []mine.Itemset {
	return []mine.Itemset{
		{Items: []dataset.Item{3}, Support: 7},
		{Items: []dataset.Item{3, 4, 5}, Support: 4},
	}
}

// durableInsert inserts a listing with its real origin identity and
// full-content hash, returning the key it is cached under.
func durableInsert(t *testing.T, c *ResultCache, path, algo string, minsup int, sets []mine.Itemset) ResultKey {
	t.Helper()
	id, err := FileIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := FullFileHash(path)
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey{ID: id, Algo: algo, Patterns: "0"}
	c.InsertDurable(key, minsup, sets, path, fh)
	return key
}

func TestSnapshotRoundTripAndRestore(t *testing.T) {
	dir := t.TempDir()
	pa := writeFIMI(t, dir, "a.dat", 20)
	pb := writeFIMI(t, dir, "b.dat", 30)

	c := NewResultCache(0)
	ka := durableInsert(t, c, pa, "lcm", 4, sets1())
	kb := durableInsert(t, c, pb, "eclat", 3, sets2())
	// A memory-only listing must not be persisted.
	c.Insert(ResultKey{ID: Identity{Size: 1, Hash: 2}, Algo: "lcm"}, 2, sets1())

	data, _, _ := c.EncodeSnapshot()
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 2 {
		t.Fatalf("snapshot has %d entries, want 2 (memory-only entry must be skipped)", len(snap.Entries))
	}
	for _, e := range snap.Entries {
		if e.Path != pa && e.Path != pb {
			t.Fatalf("snapshot entry has unexpected path %q", e.Path)
		}
		if e.MinSupport != 4 && e.MinSupport != 3 {
			t.Fatalf("snapshot entry minsup = %d", e.MinSupport)
		}
	}

	// Restore into a fresh cache: both listings answer again.
	c2 := NewResultCache(0)
	st, err := c2.RestoreSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 2 || st.DroppedStale != 0 || st.DroppedUnreadable != 0 {
		t.Fatalf("restore stats = %+v", st)
	}
	got, ok := c2.Serve(ka, 4)
	if !ok || len(got) != 2 {
		t.Fatalf("restored cache misses key A: %v %v", got, ok)
	}
	if _, ok := c2.Serve(kb, 3); !ok {
		t.Fatal("restored cache misses key B")
	}
	// Subsumption must survive the round trip too.
	if got, ok := c2.Serve(ka, 6); !ok || len(got) != 1 {
		t.Fatalf("restored listing lost subsumption: %v %v", got, ok)
	}
}

// The snapshot encodes coldest-first, so a restore reproduces the LRU
// warmth order: after restoring, the first eviction removes the entry
// that was coldest before the snapshot.
func TestSnapshotPreservesWarmthOrder(t *testing.T) {
	dir := t.TempDir()
	pa := writeFIMI(t, dir, "a.dat", 20)
	pb := writeFIMI(t, dir, "b.dat", 30)

	c := NewResultCache(0)
	ka := durableInsert(t, c, pa, "lcm", 4, sets1())
	kb := durableInsert(t, c, pb, "lcm", 4, sets2())
	// Touch A: B becomes the coldest.
	if _, ok := c.Serve(ka, 4); !ok {
		t.Fatal("setup serve failed")
	}

	data, _, _ := c.EncodeSnapshot()
	c2 := NewResultCache(0)
	if _, err := c2.RestoreSnapshot(data); err != nil {
		t.Fatal(err)
	}
	c2.Shed(1) // evicts exactly the coldest entry
	if _, ok := c2.Serve(kb, 4); ok {
		t.Fatal("B survived the shed; restore lost the warmth order")
	}
	if _, ok := c2.Serve(ka, 4); !ok {
		t.Fatal("A (the warm entry) was shed first")
	}
}

// The satellite headline: an edit inside the Identity collision window —
// same size, same 64 KiB prefix, same mtime — must not resurrect the old
// listing from a snapshot, because restore validates the full-content
// hash recorded at mine time.
func TestSnapshotRestoreDropsIdentityCollision(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.dat")
	buf := make([]byte, (64<<10)+4096) // extends past identityPrefixBytes
	for i := range buf {
		buf[i] = byte('0' + i%10)
		if i%8 == 7 {
			buf[i] = '\n'
		}
	}
	pin := time.Unix(1700000000, 0)
	write := func() {
		t.Helper()
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, pin, pin); err != nil {
			t.Fatal(err)
		}
	}
	write()

	c := NewResultCache(0)
	key := durableInsert(t, c, path, "lcm", 4, sets1())
	data, _, _ := c.EncodeSnapshot()

	// Tail edit: size, prefix hash and mtime all unchanged — the in-memory
	// Identity cannot tell the files apart.
	buf[len(buf)-2] = '9'
	write()
	id, err := FileIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	if id != key.ID {
		t.Fatalf("test did not exercise the collision window: %s vs %s", id, key.ID)
	}

	c2 := NewResultCache(0)
	st, err := c2.RestoreSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 0 || st.DroppedStale != 1 {
		t.Fatalf("restore stats = %+v, want the colliding entry dropped stale", st)
	}
	if _, ok := c2.Serve(key, 4); ok {
		t.Fatal("stale listing resurrected through the identity collision window")
	}
}

// A file rewritten with identical bytes but a different mtime has a new
// in-memory identity; restore re-keys the entry to the live identity
// instead of dropping it (the content — which is what the listing
// describes — is unchanged).
func TestSnapshotRestoreRekeysMtimeDrift(t *testing.T) {
	dir := t.TempDir()
	path := writeFIMI(t, dir, "a.dat", 25)

	c := NewResultCache(0)
	oldKey := durableInsert(t, c, path, "lcm", 4, sets1())
	data, _, _ := c.EncodeSnapshot()

	// Same bytes, new mtime.
	newPin := time.Unix(1700000000, 0).Add(time.Hour)
	if err := os.Chtimes(path, newPin, newPin); err != nil {
		t.Fatal(err)
	}
	newID, err := FileIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	if newID == oldKey.ID {
		t.Fatal("mtime change did not change the identity; test is vacuous")
	}

	c2 := NewResultCache(0)
	st, err := c2.RestoreSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 || st.DroppedStale != 0 {
		t.Fatalf("restore stats = %+v, want the drifted entry re-keyed", st)
	}
	newKey := oldKey
	newKey.ID = newID
	if _, ok := c2.Serve(newKey, 4); !ok {
		t.Fatal("restored entry not reachable under the live identity")
	}
}

func TestSnapshotRestoreDropsUnreadable(t *testing.T) {
	dir := t.TempDir()
	path := writeFIMI(t, dir, "a.dat", 25)

	c := NewResultCache(0)
	key := durableInsert(t, c, path, "lcm", 4, sets1())
	data, _, _ := c.EncodeSnapshot()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	c2 := NewResultCache(0)
	st, err := c2.RestoreSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 0 || st.DroppedUnreadable != 1 {
		t.Fatalf("restore stats = %+v, want the entry dropped unreadable", st)
	}
	if _, ok := c2.Serve(key, 4); ok {
		t.Fatal("listing for a deleted file restored")
	}
}

// DecodeSnapshot must reject every malformation with ErrSnapshotCorrupt —
// the structured cases here; FuzzCacheSnapshotDecode covers arbitrary bytes.
func TestDecodeSnapshotHostile(t *testing.T) {
	dir := t.TempDir()
	path := writeFIMI(t, dir, "a.dat", 20)
	c := NewResultCache(0)
	durableInsert(t, c, path, "lcm", 4, sets1())
	valid, _, _ := c.EncodeSnapshot()

	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"empty":       nil,
		"magic only":  []byte(snapMagic),
		"header only": valid[:len(snapMagic)+1],
		"bad magic":   mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mut(func(b []byte) []byte { b[len(snapMagic)] = 99; return b }),
		"crc flip":    mut(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }),
		"truncated":   valid[:len(valid)-3],
		"trailing":    append(append([]byte(nil), valid...), 0),
	}
	for name, data := range cases {
		if _, err := DecodeSnapshot(data); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: err = %v, want ErrSnapshotCorrupt", name, err)
		}
	}
	// Payload-level malformations need the CRC recomputed, which Encode
	// does; build snapshots that violate structural invariants directly.
	bad := []struct {
		name string
		snap Snapshot
	}{
		{"no origin path", Snapshot{Entries: []SnapshotEntry{{Algo: "lcm", MinSupport: 2}}}},
		{"zero minsup", Snapshot{Entries: []SnapshotEntry{{Path: "p", MinSupport: 0}}}},
		{"support below threshold", Snapshot{Entries: []SnapshotEntry{{
			Path: "p", MinSupport: 5,
			Sets: []mine.Itemset{{Items: []dataset.Item{1}, Support: 3}}}}}},
		{"items not ascending", Snapshot{Entries: []SnapshotEntry{{
			Path: "p", MinSupport: 2,
			Sets: []mine.Itemset{{Items: []dataset.Item{2, 1}, Support: 3}}}}}},
		{"sets out of canonical order", Snapshot{Entries: []SnapshotEntry{{
			Path: "p", MinSupport: 2,
			Sets: []mine.Itemset{
				{Items: []dataset.Item{1, 2}, Support: 3},
				{Items: []dataset.Item{1}, Support: 4}}}}}},
	}
	for _, tc := range bad {
		if _, err := DecodeSnapshot(tc.snap.Encode()); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: err = %v, want ErrSnapshotCorrupt", tc.name, err)
		}
	}

	if _, err := DecodeSnapshot(valid); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}
