package servecache

import (
	"container/list"
	"sync"

	"fpm/internal/dataset"
	"fpm/internal/failpoint"
	"fpm/internal/fimi"
)

// DatasetCache shares parsed FIMI databases across jobs. Entries are
// ref-counted: Acquire pins an entry for the duration of a mining run and
// Release unpins it; eviction only ever considers entries with zero
// references, so a job can never observe its database disappearing
// mid-mine. Concurrent Acquires of the same identity coalesce onto one
// parse (the losers wait for the winner's result) — a thundering herd of
// hot-key jobs costs one parse, not N.
//
// The cached *dataset.DB is shared read-only between concurrent jobs;
// the kernels never mutate their input database (the work-stealing pool
// already shares one DB across workers), which is what makes this safe.
type DatasetCache struct {
	mu       sync.Mutex
	maxBytes int64
	entries  map[Identity]*Dataset
	lru      *list.List // cold (refs==0) entries only; back = coldest
	resident int64
	stats    DatasetStats
}

// DatasetStats is a point-in-time census of the dataset cache.
type DatasetStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Skipped counts datasets that were mined uncached because the cache
	// could not make room (everything resident was ref-held, or the
	// dataset alone exceeds the cap).
	Skipped uint64 `json:"skipped"`
}

// Dataset is one cached parsed database. The handle stays valid while the
// caller holds a reference (between Acquire and Release).
type Dataset struct {
	ID    Identity
	DB    *dataset.DB
	Bytes int64

	refs    int
	ready   chan struct{} // closed once the parse finished (DB or err set)
	err     error
	evicted bool
	elem    *list.Element // non-nil while parked on the cold LRU list
}

// Evicted reports whether the entry was evicted from the cache. It must
// never be observable as true while a reference is held — the storm tests
// pin that invariant.
func (d *Dataset) Evicted() bool { return d.evicted }

// NewDatasetCache builds a cache bounded to maxBytes of resident parsed
// databases (<= 0 means unbounded — callers normally pass a slice of the
// serve memory budget).
func NewDatasetCache(maxBytes int64) *DatasetCache {
	return &DatasetCache{
		maxBytes: maxBytes,
		entries:  make(map[Identity]*Dataset),
		lru:      list.New(),
	}
}

// Acquire returns the parsed database for the file at path, pinning it in
// the cache until the matching Release. On a miss the caller's goroutine
// runs the parse while concurrent acquirers of the same identity wait for
// it. If the parsed database cannot be made resident under the cap (all
// of the cache is ref-held by other jobs, or the database alone exceeds
// it), the database is still returned but stays uncached — the handle is
// then a detached one and Release is a no-op for it.
func (c *DatasetCache) Acquire(path string) (*Dataset, error) {
	e, _, err := c.AcquireTraced(path)
	return e, err
}

// AcquireTraced is Acquire plus the outcome the flight recorder wants:
// "hit" (the parse was already resident), "coalesced" (another job's
// in-flight parse was joined), or "miss" (this call ran the parse).
func (c *DatasetCache) AcquireTraced(path string) (*Dataset, string, error) {
	id, err := FileIdentity(path)
	if err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	if e, ok := c.entries[id]; ok {
		e.refs++
		if e.elem != nil { // was cold: pull it off the eviction list
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		c.stats.Hits++
		// ready closes under c.mu, so this probe cleanly splits resident
		// entries from parses still in flight.
		outcome := "hit"
		select {
		case <-e.ready:
		default:
			outcome = "coalesced"
		}
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The parse failed after we joined it; the winner already
			// removed the entry from the map.
			return nil, outcome, e.err
		}
		return e, outcome, nil
	}
	e := &Dataset{ID: id, refs: 1, ready: make(chan struct{})}
	c.entries[id] = e
	c.stats.Misses++
	c.mu.Unlock()

	// The failpoint models a transient parse-time I/O fault (e.g. a
	// flaky network filesystem); it routes through the same error path a
	// real read failure takes, so the entry is removed and the next
	// Acquire — a retry attempt included — re-runs the parse.
	db, err := (*dataset.DB)(nil), failpoint.Hit(failpoint.ServecacheDatasetParse)
	if err == nil {
		db, err = fimi.ReadFile(path)
	}

	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, id) // next Acquire retries the parse
		close(e.ready)
		c.mu.Unlock()
		return nil, "miss", err
	}
	e.DB = db
	e.Bytes = fimi.DBBytes(db)
	if c.makeRoom(e.Bytes) {
		c.resident += e.Bytes
	} else {
		// No room: serve the parse result but keep it out of the cache.
		delete(c.entries, id)
		e.evicted = false // detached, never was resident
		e.elem = nil
		c.stats.Skipped++
		close(e.ready)
		c.mu.Unlock()
		return e, "miss", nil
	}
	close(e.ready)
	c.mu.Unlock()
	return e, "miss", nil
}

// Release unpins a handle returned by Acquire. When the last reference
// drops, the entry becomes eligible for eviction (it stays resident until
// space is needed — that residency is the whole point of the cache).
func (c *DatasetCache) Release(e *Dataset) {
	if e == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[e.ID] != e { // detached or already evicted-and-replaced
		return
	}
	e.refs--
	if e.refs == 0 {
		e.elem = c.lru.PushFront(e) // most recently used cold entry
		if c.maxBytes > 0 && c.resident > c.maxBytes {
			c.evictLocked(c.resident - c.maxBytes)
		}
	}
}

// Shed evicts cold entries, oldest first, until at least need bytes were
// freed or no cold entry remains; it returns the bytes actually freed.
// The admission controller calls this when a queued job does not fit
// under the global budget — cached-but-unpinned datasets are the memory
// the service can give back without killing work.
func (c *DatasetCache) Shed(need int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictLocked(need)
}

// evictLocked frees >= need bytes of cold entries (LRU first); callers
// hold c.mu. Returns the bytes freed.
func (c *DatasetCache) evictLocked(need int64) int64 {
	var freed int64
	for freed < need {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*Dataset)
		c.lru.Remove(back)
		e.elem = nil
		e.evicted = true
		delete(c.entries, e.ID)
		c.resident -= e.Bytes
		freed += e.Bytes
		c.stats.Evictions++
	}
	return freed
}

// makeRoom evicts cold entries until adding n bytes would fit under the
// cap; reports whether it succeeded. Callers hold c.mu.
func (c *DatasetCache) makeRoom(n int64) bool {
	if c.maxBytes <= 0 {
		return true
	}
	if n > c.maxBytes {
		return false
	}
	if over := c.resident + n - c.maxBytes; over > 0 {
		c.evictLocked(over)
	}
	return c.resident+n <= c.maxBytes
}

// Resident returns the bytes of parsed databases currently held.
func (c *DatasetCache) Resident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// Stats returns a consistent snapshot of the cache counters.
func (c *DatasetCache) Stats() DatasetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.resident
	return s
}
