package servecache

// Caches bundles the two serving-layer caches; either may be nil
// (disabled). It is the unit the serve wiring hands to the admission
// controller: Resident is the cached state weighed against the global
// memory budget, and Shed is the lever admission pulls when a queued job
// does not fit — cold cached bytes are given back before work is made to
// wait.
type Caches struct {
	Datasets *DatasetCache
	Results  *ResultCache
}

// Stats is the combined census, rendered on /metrics as the fpm_cache_*
// family.
type Stats struct {
	Dataset DatasetStats `json:"dataset"`
	Result  ResultStats  `json:"result"`
}

// Resident returns the total cached bytes across both caches.
func (c *Caches) Resident() int64 {
	if c == nil {
		return 0
	}
	var n int64
	if c.Datasets != nil {
		n += c.Datasets.Resident()
	}
	if c.Results != nil {
		n += c.Results.Resident()
	}
	return n
}

// Shed frees up to need bytes of cold cached state. Datasets are shed
// before result listings: a cached dataset only saves a parse, while a
// cached listing saves a whole mine, so listings are the last thing
// given back.
func (c *Caches) Shed(need int64) int64 {
	if c == nil {
		return 0
	}
	var freed int64
	if c.Datasets != nil {
		freed += c.Datasets.Shed(need)
	}
	if freed < need && c.Results != nil {
		freed += c.Results.Shed(need - freed)
	}
	return freed
}

// Stats returns the combined snapshot.
func (c *Caches) Stats() Stats {
	var s Stats
	if c == nil {
		return s
	}
	if c.Datasets != nil {
		s.Dataset = c.Datasets.Stats()
	}
	if c.Results != nil {
		s.Result = c.Results.Stats()
	}
	return s
}
