package servecache

// Result-cache persistence: the cache's durable entries serialise into a
// small sidecar file so a restarted server starts with a warm result
// cache — a hot key stays hot across a kill -9. The wire format follows
// the FPCK checkpoint discipline from internal/partition: magic, version
// byte, CRC32 of the payload, then a varint-packed payload; the decoder
// treats the bytes as hostile (it validates every count against the
// remaining payload before allocating, never panics, and wraps every
// malformation in ErrSnapshotCorrupt so callers degrade to a cold cache).
//
// A snapshot entry carries the listing's origin — the input file path and
// that file's full-content FNV-64a at mine time — instead of the
// in-memory Identity. RestoreSnapshot recomputes the identity from the
// live file (so an mtime-only drift, e.g. the file rewritten with
// identical bytes, re-keys the entry rather than dropping it) and
// validates the stored full hash against the file's current content:
// a same-size/same-prefix/same-mtime edit — the documented collision
// window of the prefix-hash Identity — can therefore never resurrect a
// stale listing from disk.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

const (
	snapMagic   = "FPRS"
	snapVersion = 1
)

// ErrSnapshotCorrupt reports a sidecar that is not a well-formed result
// cache snapshot: wrong magic, unknown version, CRC mismatch, or a
// payload failing structural validation. Corrupt input never panics
// (FuzzCacheSnapshotDecode asserts this); callers treat it as "no
// snapshot" and start cold.
var ErrSnapshotCorrupt = errors.New("servecache: snapshot corrupt")

// SnapshotEntry is one persisted listing: the request coordinates that
// key it, the origin file with its full-content hash, and the canonical
// listing itself.
type SnapshotEntry struct {
	Path       string
	Algo       string
	Patterns   string
	MinSupport int
	FullHash   uint64
	Sets       []mine.Itemset
}

// Snapshot is the decoded form of a result-cache sidecar file.
type Snapshot struct {
	Entries []SnapshotEntry
}

// Encode serialises the snapshot: magic, version byte, CRC32(payload),
// payload (entry count, then per entry the varint-packed fields and the
// listing).
func (s *Snapshot) Encode() []byte {
	var pay bytes.Buffer
	var vb [binary.MaxVarintLen64]byte
	wu := func(v uint64) { pay.Write(vb[:binary.PutUvarint(vb[:], v)]) }
	ws := func(str string) { wu(uint64(len(str))); pay.WriteString(str) }

	wu(uint64(len(s.Entries)))
	for _, e := range s.Entries {
		ws(e.Path)
		ws(e.Algo)
		ws(e.Patterns)
		wu(uint64(e.MinSupport))
		wu(e.FullHash)
		wu(uint64(len(e.Sets)))
		for _, set := range e.Sets {
			wu(uint64(set.Support))
			wu(uint64(len(set.Items)))
			for _, it := range set.Items {
				wu(uint64(it))
			}
		}
	}

	out := make([]byte, 0, len(snapMagic)+1+4+pay.Len())
	out = append(out, snapMagic...)
	out = append(out, snapVersion)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(pay.Bytes()))
	out = append(out, crcb[:]...)
	return append(out, pay.Bytes()...)
}

// DecodeSnapshot parses and validates a serialised snapshot. Any
// malformation yields an error wrapping ErrSnapshotCorrupt; it never
// panics and never allocates more than the input size warrants (every
// count claimed by the payload is bounded by the remaining bytes before
// allocation).
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	corrupt := func(what string) (*Snapshot, error) {
		return nil, fmt.Errorf("%w: %s", ErrSnapshotCorrupt, what)
	}
	if len(data) < len(snapMagic)+1+4 {
		return corrupt("file shorter than header")
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return corrupt("bad magic")
	}
	if v := data[len(snapMagic)]; v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshotCorrupt, v)
	}
	crc := binary.LittleEndian.Uint32(data[len(snapMagic)+1:])
	pay := data[len(snapMagic)+1+4:]
	if crc32.ChecksumIEEE(pay) != crc {
		return corrupt("payload CRC mismatch")
	}

	r := bytes.NewReader(pay)
	var rerr error
	ru := func() uint64 {
		if rerr != nil {
			return 0
		}
		v, err := binary.ReadUvarint(r)
		if err != nil {
			rerr = err
		}
		return v
	}
	rs := func() string {
		n := ru()
		if rerr != nil || n > uint64(r.Len()) {
			if rerr == nil {
				rerr = errors.New("string length beyond payload")
			}
			return ""
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			rerr = err
			return ""
		}
		return string(b)
	}

	snap := &Snapshot{}
	nEntries := ru()
	if rerr != nil {
		return corrupt("truncated entry count")
	}
	// Each entry costs at least 6 payload bytes (three string lengths,
	// minsup, hash, set count), so an entry count beyond the remaining
	// bytes is a lie — reject before allocating.
	if nEntries > uint64(r.Len()) {
		return corrupt("implausible entry count")
	}
	snap.Entries = make([]SnapshotEntry, 0, nEntries)
	for i := uint64(0); i < nEntries; i++ {
		var e SnapshotEntry
		e.Path = rs()
		e.Algo = rs()
		e.Patterns = rs()
		minsup := ru()
		e.FullHash = ru()
		nSets := ru()
		if rerr != nil {
			return corrupt("truncated entry header")
		}
		if e.Path == "" {
			return corrupt("entry without origin path")
		}
		if minsup < 1 || minsup > uint64(int(^uint(0)>>1)) {
			return corrupt("min support out of range")
		}
		e.MinSupport = int(minsup)
		// Each itemset costs at least 2 payload bytes (support + length).
		if nSets > uint64(r.Len()) {
			return corrupt("implausible itemset count")
		}
		e.Sets = make([]mine.Itemset, 0, nSets)
		prevItems := []dataset.Item(nil)
		for k := uint64(0); k < nSets; k++ {
			sup := ru()
			nItems := ru()
			if rerr != nil {
				return corrupt("truncated itemset header")
			}
			if sup < uint64(e.MinSupport) || sup > uint64(int(^uint(0)>>1)) {
				// A listing mined at minsup cannot contain a set below it;
				// accepting one would let a corrupt snapshot answer queries
				// with itemsets the subsumption filter should exclude.
				return corrupt("support below entry threshold")
			}
			if nItems > uint64(r.Len()) {
				return corrupt("implausible item count")
			}
			items := make([]dataset.Item, nItems)
			prev := int64(-1)
			for j := uint64(0); j < nItems; j++ {
				it := ru()
				if rerr != nil {
					return corrupt("truncated items")
				}
				if it > uint64(^uint32(0)>>1) || int64(it) <= prev {
					// Canonical listings have items strictly ascending;
					// anything else is not a snapshot we wrote.
					return corrupt("items not strictly increasing")
				}
				prev = int64(it)
				items[j] = dataset.Item(it)
			}
			set := mine.Itemset{Items: items, Support: int(sup)}
			// Canonical order between itemsets too: size then element-wise.
			if k > 0 && !mine.LessItems(prevItems, items) {
				return corrupt("itemsets not in canonical order")
			}
			prevItems = items
			e.Sets = append(e.Sets, set)
		}
		snap.Entries = append(snap.Entries, e)
	}
	if r.Len() != 0 {
		return corrupt("trailing bytes")
	}
	return snap, nil
}

// EncodeSnapshot serialises the cache's durable entries (those inserted
// with InsertDurable) under the cache lock, returning the encoded bytes
// together with the mutation and removal generations at encode time. The
// persister uses mutGen to tell whether the on-disk file is stale and
// removeGen to order writes after sheds (see Persister).
func (c *ResultCache) EncodeSnapshot() (data []byte, mutGen, removeGen uint64) {
	c.mu.Lock()
	snap := &Snapshot{}
	// Coldest first, so RestoreSnapshot's insert order (each insert lands
	// at the LRU front) reproduces the warmth order the cache had.
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		re := e.Value.(*resultEntry)
		if re.path == "" {
			continue // memory-only entry
		}
		snap.Entries = append(snap.Entries, SnapshotEntry{
			Path:       re.path,
			Algo:       re.key.Algo,
			Patterns:   re.key.Patterns,
			MinSupport: re.minsup,
			FullHash:   re.fullHash,
			Sets:       re.sets,
		})
	}
	mutGen, removeGen = c.mutGen, c.removeGen
	c.mu.Unlock()
	return snap.Encode(), mutGen, removeGen
}

// RestoreStats reports what a RestoreSnapshot admitted and dropped.
type RestoreStats struct {
	// Restored entries were re-admitted to the cache.
	Restored int
	// DroppedStale entries named a file whose full-content hash no longer
	// matches the one recorded at mine time — the listing might not
	// describe the file's current content, so it must not be served.
	DroppedStale int
	// DroppedUnreadable entries named a file that could not be read
	// (deleted, moved, permission change).
	DroppedUnreadable int
}

// RestoreSnapshot pre-warms the cache from an encoded snapshot. Each
// entry is validated against the live input file: the identity is
// recomputed from the file as it is now (tolerating pure mtime drift)
// and the entry is dropped unless the file's full-content FNV-64a still
// equals the hash recorded at mine time. A decode failure wraps
// ErrSnapshotCorrupt and restores nothing — the caller starts cold.
func (c *ResultCache) RestoreSnapshot(data []byte) (RestoreStats, error) {
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return RestoreStats{}, err
	}
	var st RestoreStats
	for _, e := range snap.Entries {
		id, err := FileIdentity(e.Path)
		if err != nil {
			st.DroppedUnreadable++
			continue
		}
		fh, err := FullFileHash(e.Path)
		if err != nil {
			st.DroppedUnreadable++
			continue
		}
		if fh != e.FullHash {
			st.DroppedStale++
			continue
		}
		key := ResultKey{ID: id, Algo: e.Algo, Patterns: e.Patterns}
		c.InsertDurable(key, e.MinSupport, e.Sets, e.Path, e.FullHash)
		st.Restored++
	}
	return st, nil
}

// ReadSnapshotFile loads and decodes the sidecar at path. A missing file
// is reported as os.ErrNotExist (a normal first boot, not corruption).
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}
