package servecache

// Concurrency storm for the caches, run under -race in CI. The dataset
// storm hammers a deliberately tiny cache with mixed hot/cold acquires
// plus concurrent Shed calls, pinning the cache's core safety claim: a
// handle is never observed evicted while its reference is held, and the
// DB behind it stays readable for the full hold. The result storm mixes
// concurrent Insert/Serve/Shed on overlapping keys.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/fimi"
	"fpm/internal/mine"
)

func TestDatasetCacheStormNoEvictWhileHeld(t *testing.T) {
	dir := t.TempDir()
	// Two hot files plus a spread of cold ones, and a cap that holds only
	// ~3 parsed DBs — eviction churns constantly under the storm.
	paths := make([]string, 10)
	for i := range paths {
		paths[i] = writeFIMI(t, dir, fmt.Sprintf("f%02d.dat", i), 20+3*i)
	}
	db0, err := fimi.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	c := NewDatasetCache(3 * fimi.DBBytes(db0))

	const workers = 12
	iters := 300
	if testing.Short() {
		iters = 60
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				var path string
				if rng.Intn(3) > 0 { // hot keys two thirds of the time
					path = paths[rng.Intn(2)]
				} else {
					path = paths[2+rng.Intn(len(paths)-2)]
				}
				e, err := c.Acquire(path)
				if err != nil {
					t.Errorf("acquire %s: %v", path, err)
					return
				}
				// The invariant: while this reference is held, the entry is
				// never evicted and its DB stays fully readable.
				if e.Evicted() {
					t.Error("entry observed evicted while ref-held")
				}
				if e.DB == nil || e.DB.Len() == 0 {
					t.Error("held entry lost its DB")
				}
				var items int
				for _, tx := range e.DB.Tx {
					items += len(tx)
				}
				if items == 0 {
					t.Error("held DB unreadable")
				}
				if e.Evicted() {
					t.Error("entry evicted mid-read while ref-held")
				}
				if rng.Intn(8) == 0 {
					c.Shed(1 << 20) // concurrent eviction pressure
				}
				c.Release(e)
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	s := c.Stats()
	if s.Misses == 0 || s.Hits == 0 {
		t.Fatalf("storm exercised nothing: %+v", s)
	}
	if s.Evictions == 0 && s.Skipped == 0 {
		t.Fatalf("storm never hit the cap: %+v", s)
	}
	// Quiescent: every ref released, so everything is sheddable and the
	// accounting must return to zero.
	c.Shed(1 << 62)
	if got := c.Resident(); got != 0 {
		t.Fatalf("resident %d after full shed at quiescence (accounting leak)", got)
	}
}

func TestResultCacheStorm(t *testing.T) {
	one := func(n int) []mine.Itemset {
		out := make([]mine.Itemset, n)
		for i := range out {
			out[i] = mine.Itemset{Items: []dataset.Item{dataset.Item(i + 1)}, Support: 10 - i%5}
		}
		return out
	}
	c := NewResultCache(8 * setsBytes(Canonicalize(one(20))))
	keys := make([]ResultKey, 6)
	for i := range keys {
		keys[i] = ResultKey{ID: Identity{Size: int64(i + 1), Hash: uint64(i)}, Algo: "lcm"}
	}

	const workers = 10
	iters := 400
	if testing.Short() {
		iters = 80
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				key := keys[rng.Intn(len(keys))]
				switch rng.Intn(4) {
				case 0:
					c.Insert(key, 2+rng.Intn(6), one(5+rng.Intn(20)))
				case 1:
					c.Shed(64)
				default:
					if sets, ok := c.Serve(key, 2+rng.Intn(8)); ok {
						// Served listings are immutable snapshots: they must
						// stay canonical even while writers churn the cache.
						for k := 1; k < len(sets); k++ {
							if !mine.LessItems(sets[k-1].Items, sets[k].Items) {
								t.Error("served listing not canonical")
								return
							}
						}
					}
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	c.Shed(1 << 62)
	if got := c.Resident(); got != 0 {
		t.Fatalf("resident %d after full shed at quiescence (accounting leak)", got)
	}
}
