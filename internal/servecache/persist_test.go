package servecache

// Persister tests: debounced periodic writes, the final write on Close,
// injected write failures leaving the previous snapshot intact, and the
// write-after-shed ordering guarantee (deterministically via the raced
// rename, and under -race with concurrent mutators).

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fpm/internal/failpoint"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPersisterWritesAndDebounces(t *testing.T) {
	dir := t.TempDir()
	path := writeFIMI(t, dir, "a.dat", 20)
	snapPath := filepath.Join(dir, "results.snap")

	c := NewResultCache(0)
	p := NewPersister(c, snapPath, 5*time.Millisecond)
	key := durableInsert(t, c, path, "lcm", 4, sets1())
	waitFor(t, "first snapshot write", func() bool { return p.Stats().Writes >= 1 })

	// No mutation: further ticks must not rewrite the file.
	w1 := p.Stats().Writes
	time.Sleep(40 * time.Millisecond)
	if w2 := p.Stats().Writes; w2 != w1 {
		t.Fatalf("persister rewrote an unchanged cache: %d -> %d writes", w1, w2)
	}

	// A mutation makes the snapshot stale again.
	pb := writeFIMI(t, dir, "b.dat", 30)
	durableInsert(t, c, pb, "eclat", 3, sets2())
	waitFor(t, "post-mutation write", func() bool { return p.Stats().Writes > w1 })

	p.Close()
	snap, err := ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 2 {
		t.Fatalf("final snapshot has %d entries, want 2", len(snap.Entries))
	}
	c2 := NewResultCache(0)
	if _, err := c2.RestoreSnapshot(snap.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Serve(key, 4); !ok {
		t.Fatal("snapshot round trip through the persister lost the entry")
	}
}

func TestPersisterCloseFlushesFinalWrite(t *testing.T) {
	dir := t.TempDir()
	path := writeFIMI(t, dir, "a.dat", 20)
	snapPath := filepath.Join(dir, "results.snap")

	c := NewResultCache(0)
	p := NewPersister(c, snapPath, time.Hour) // no tick will ever fire
	durableInsert(t, c, path, "lcm", 4, sets1())
	p.Close()
	snap, err := ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 1 {
		t.Fatalf("Close did not flush: %d entries", len(snap.Entries))
	}
}

// An injected write failure (the full-disk model) must leave the previous
// snapshot byte-for-byte intact and be counted; recovery on the next
// attempt converges to the current state.
func TestPersisterWriteFailureLeavesPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	pa := writeFIMI(t, dir, "a.dat", 20)
	snapPath := filepath.Join(dir, "results.snap")

	c := NewResultCache(0)
	p := NewPersister(c, snapPath, time.Hour)
	defer p.Close()
	durableInsert(t, c, pa, "lcm", 4, sets1())
	if err := p.WriteNow(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	reg := failpoint.New()
	reg.Fail(failpoint.ServecachePersistWrite, errors.New("disk full"))
	failpoint.Enable(reg)
	defer failpoint.Disable()

	pb := writeFIMI(t, dir, "b.dat", 30)
	durableInsert(t, c, pb, "eclat", 3, sets2())
	if err := p.WriteNow(); err == nil {
		t.Fatal("WriteNow succeeded through an armed write failpoint")
	}
	if got := p.Stats().Errors; got != 1 {
		t.Fatalf("Errors = %d, want 1", got)
	}
	after, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed write corrupted the previous snapshot")
	}

	failpoint.Disable()
	if err := p.WriteNow(); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 2 {
		t.Fatalf("recovered snapshot has %d entries, want 2", len(snap.Entries))
	}
}

// The deterministic half of the write-after-shed ordering guarantee: a
// snapshot encoded before a removal must not be renamed into place after
// it — writeAtomic detects the removal-generation change and discards the
// stale temp file.
func TestSnapshotRenameRefusesToRaceRemoval(t *testing.T) {
	dir := t.TempDir()
	pa := writeFIMI(t, dir, "a.dat", 20)
	snapPath := filepath.Join(dir, "results.snap")

	c := NewResultCache(0)
	p := NewPersister(c, snapPath, time.Hour)
	defer p.Close()
	key := durableInsert(t, c, pa, "lcm", 4, sets1())

	data, _, removeGen := c.EncodeSnapshot()
	c.Shed(1 << 40) // the removal lands between encode and rename
	if err := p.writeAtomic(data, removeGen); err != errSnapshotRaced {
		t.Fatalf("writeAtomic = %v, want errSnapshotRaced", err)
	}
	if _, err := os.Stat(snapPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("a raced snapshot landed on disk")
	}
	if _, err := os.Stat(snapPath + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("raced attempt leaked its temp file")
	}

	// WriteNow re-encodes and converges on the post-shed state.
	if err := p.WriteNow(); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 0 {
		t.Fatalf("post-shed snapshot resurrects %d entries (key %v was shed)", len(snap.Entries), key)
	}
}

// The concurrent half, for the race detector: writers snapshotting while
// mutators insert and shed. After quiescence the final snapshot must hold
// exactly the entries still resident — nothing shed may survive on disk.
func TestSnapshotShedOrderingUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "results.snap")
	var paths []string
	for i := 0; i < 6; i++ {
		paths = append(paths, writeFIMI(t, dir, string(rune('a'+i))+".dat", 20+i))
	}

	c := NewResultCache(0)
	p := NewPersister(c, snapPath, time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // mutator: churn inserts and sheds
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			durableInsert(t, c, paths[i%len(paths)], "lcm", 4, sets1())
			if i%3 == 0 {
				c.Shed(1)
			}
		}
	}()
	go func() { // writer: force extra snapshots between ticks
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = p.WriteNow()
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	p.Close() // final write reflects the quiesced cache

	snap, err := ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	// Every persisted entry must still be resident and serveable: a shed
	// entry surviving on disk would resurrect on the next restart.
	for _, e := range snap.Entries {
		id, err := FileIdentity(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Serve(ResultKey{ID: id, Algo: e.Algo, Patterns: e.Patterns}, e.MinSupport); !ok {
			t.Fatalf("snapshot holds %q which the live cache no longer serves", e.Path)
		}
	}
	if got, want := len(snap.Entries), c.Stats().Entries; got != want {
		t.Fatalf("final snapshot has %d entries, live cache has %d", got, want)
	}
}
