package servecache

// FuzzCacheSnapshotDecode hardens the restore path against arbitrary
// sidecar bytes: whatever a crashed disk, a partial write or an adversary
// left in the state dir, DecodeSnapshot must either return a snapshot
// whose re-encode round-trips, or a clean error wrapping
// ErrSnapshotCorrupt — never panic, never hang, never hand the cache a
// listing that violates its canonical-order invariants.

import (
	"bytes"
	"errors"
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

func FuzzCacheSnapshotDecode(f *testing.F) {
	valid := (&Snapshot{Entries: []SnapshotEntry{
		{Path: "/tmp/a.dat", Algo: "lcm", Patterns: "3", MinSupport: 2, FullHash: 0xdeadbeef,
			Sets: []mine.Itemset{
				{Items: []dataset.Item{1}, Support: 9},
				{Items: []dataset.Item{1, 2}, Support: 2},
			}},
		{Path: "/tmp/b.dat", Algo: "eclat", MinSupport: 1,
			Sets: []mine.Itemset{{Items: []dataset.Item{7, 9, 11}, Support: 1}}},
	}}).Encode()
	empty := (&Snapshot{}).Encode()

	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:len(valid)-4])     // truncated payload
	f.Add(valid[:len(snapMagic)+1]) // header only
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip) // bit flip mid-payload
	wrongVer := append([]byte(nil), valid...)
	wrongVer[len(snapMagic)] = 2
	f.Add(wrongVer)
	f.Add([]byte(snapMagic))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrSnapshotCorrupt", err)
			}
			return
		}
		// Accepted input: the snapshot must survive a re-encode/decode round
		// trip byte-identically — the validation admitted a canonical
		// encoding, not merely a parseable one.
		re := snap.Encode()
		snap2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("accepted snapshot fails to re-decode: %v", err)
		}
		if !bytes.Equal(re, snap2.Encode()) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
