// Package servecache holds the shared state that makes `fpm serve`
// multi-tenant: a ref-counted dataset cache so concurrent and repeated
// jobs against the same input file share one parsed database instead of
// re-running the FIMI parse per job, and a result cache whose entries
// answer not just exact repeats but any query at a higher support
// threshold (support-threshold subsumption: a minsup=100 listing filtered
// to support >= 150 is exactly the minsup=150 listing, because mining is
// complete). Both caches account their resident bytes so the serving
// layer's admission control can weigh cached state against running jobs
// under one global memory budget, and both evict cold entries LRU-first
// when that budget (or their own cap) bites.
//
// The result cache can additionally be persisted across restarts: a
// Persister snapshots the cache into an atomic, CRC-checked sidecar file
// (the same FPCK discipline the partition checkpoints use) and Restore
// pre-warms a fresh cache from it, validating each entry against the
// live input file's full content hash so a stale listing can never be
// resurrected from disk.
//
// The package deliberately sits below the serving layer: it imports only
// the dataset/fimi/mine core plus the failpoint registry, so the
// telemetry job store, the serve wiring and the tests can all compose it
// without import cycles.
package servecache

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// identityPrefixBytes is how much of the input participates in the
// identity hash — the same 64 KiB prefix discipline the checkpoint
// sidecars use (internal/partition), so one identity notion covers both
// features: exact byte size plus an FNV-64a hash of the file's head. A
// full-file hash would cost a whole extra streaming pass per job.
const identityPrefixBytes = 64 << 10

// Identity fingerprints one input file: its exact byte size, an FNV-64a
// hash of its first identityPrefixBytes, and its modification time. Two
// files with the same Identity are treated as the same dataset by both
// caches. The mtime closes the in-place-edit hole the prefix hash alone
// leaves open: rewriting bytes past the prefix with the size unchanged
// bumps the mtime and so invalidates cached state. What remains is the
// deliberate collision window of any prefix scheme — two files that
// differ only past the prefix AND carry identical size and mtime (e.g.
// restored by Chtimes) are indistinguishable; a full-content hash would
// close it at the cost of a whole extra streaming pass per job.
// Identity is a comparable value type, usable directly as a map key.
type Identity struct {
	Size int64
	Hash uint64
	// ModTime is the file's modification time in UnixNano.
	ModTime int64
}

// String renders the identity for logs and debugging.
func (id Identity) String() string {
	return fmt.Sprintf("%d:%016x:%d", id.Size, id.Hash, id.ModTime)
}

// FileIdentity computes the identity of the file at path. It reads at
// most identityPrefixBytes, so it is cheap relative to a parse.
func FileIdentity(path string) (Identity, error) {
	f, err := os.Open(path)
	if err != nil {
		return Identity{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return Identity{}, err
	}
	h := fnv.New64a()
	if _, err := io.Copy(h, io.LimitReader(f, identityPrefixBytes)); err != nil {
		return Identity{}, err
	}
	return Identity{Size: fi.Size(), Hash: h.Sum64(), ModTime: fi.ModTime().UnixNano()}, nil
}

// FullFileHash streams the whole file at path through FNV-64a. It costs a
// full read, so it is never on the serving hot path: the persistence
// layer computes it once per mined listing (after the mine, off the
// cache-hit path) and Restore recomputes it once per snapshot entry at
// startup. It is what closes the Identity collision window on the
// persistence path — two files that differ only past the 64 KiB prefix
// with identical size and mtime have different full hashes.
func FullFileHash(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
