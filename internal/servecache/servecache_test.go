package servecache

// Unit tests for the serving caches: identity hashing, the ref-counted
// dataset cache (hit/miss/coalesce/evict/detach/parse-error paths), and
// the subsuming result cache (exact and filtered hits, replacement,
// eviction). The cross-kernel subsumption property test and the
// concurrency storms live in their own files.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fpm/internal/dataset"
	"fpm/internal/fimi"
	"fpm/internal/mine"
)

// writeFIMI writes n transactions of the form "1 2 ... k" to a temp file
// and returns its path. Varying n varies both size and content. The mtime
// is pinned to a fixed instant so that two files with identical bytes get
// identical identities (Identity folds the mtime in; without pinning, the
// aliasing assertions below would race the filesystem clock).
func writeFIMI(t *testing.T, dir, name string, n int) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "1 2 %d\n", 3+i%5)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	pin := time.Unix(1700000000, 0)
	if err := os.Chtimes(path, pin, pin); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileIdentity(t *testing.T) {
	dir := t.TempDir()
	a := writeFIMI(t, dir, "a.dat", 10)
	b := writeFIMI(t, dir, "b.dat", 10) // same bytes, different path
	c := writeFIMI(t, dir, "c.dat", 11)

	ida, err := FileIdentity(a)
	if err != nil {
		t.Fatal(err)
	}
	idb, err := FileIdentity(b)
	if err != nil {
		t.Fatal(err)
	}
	idc, err := FileIdentity(c)
	if err != nil {
		t.Fatal(err)
	}
	if ida != idb {
		t.Fatalf("identical content, different identity: %s vs %s", ida, idb)
	}
	if ida == idc {
		t.Fatalf("different content, same identity: %s", ida)
	}
	if ida.Size == 0 || ida.Hash == 0 {
		t.Fatalf("degenerate identity %s", ida)
	}
	if _, err := FileIdentity(filepath.Join(dir, "missing.dat")); err == nil {
		t.Fatal("FileIdentity of a missing file must error")
	}
}

// An in-place edit past the hashed prefix with the size unchanged must
// still change the identity (via the mtime), or the caches would serve
// stale parses and listings for the new content.
func TestFileIdentityInPlaceEditPastPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.dat")
	buf := make([]byte, (64<<10)+4096) // extends well past identityPrefixBytes
	for i := range buf {
		buf[i] = byte('0' + i%10)
		if i%8 == 7 {
			buf[i] = '\n'
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1700000000, 0)
	if err := os.Chtimes(path, t0, t0); err != nil {
		t.Fatal(err)
	}
	before, err := FileIdentity(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip bytes in the tail only: same size, same prefix hash.
	buf[len(buf)-2] = '9'
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t1 := t0.Add(time.Second)
	if err := os.Chtimes(path, t1, t1); err != nil {
		t.Fatal(err)
	}
	after, err := FileIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size != after.Size || before.Hash != after.Hash {
		t.Fatalf("test did not exercise the prefix blind spot: %s vs %s", before, after)
	}
	if before == after {
		t.Fatalf("in-place edit past the prefix kept identity %s", before)
	}
}

func TestDatasetCacheHitMissRelease(t *testing.T) {
	dir := t.TempDir()
	path := writeFIMI(t, dir, "a.dat", 50)
	alias := writeFIMI(t, dir, "alias.dat", 50) // same bytes under another name
	c := NewDatasetCache(0)

	e1, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if e1.DB == nil || e1.DB.Len() != 50 || e1.Bytes <= 0 {
		t.Fatalf("acquired entry = %+v", e1)
	}
	e2, err := c.Acquire(alias) // same identity: must share the parse
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1 {
		t.Fatal("same-content file did not share the cached entry")
	}
	c.Release(e1)
	c.Release(e2)
	if got := c.Resident(); got != e1.Bytes {
		t.Fatalf("resident after release = %d, want %d (entry stays cached)", got, e1.Bytes)
	}
	e3, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(e3)
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits / 1 entry", s)
	}
}

// Concurrent cold acquires of one identity must coalesce onto a single
// parse: exactly one miss, everyone gets the same handle.
func TestDatasetCacheCoalescesParses(t *testing.T) {
	path := writeFIMI(t, t.TempDir(), "a.dat", 200)
	c := NewDatasetCache(0)
	const n = 16
	handles := make([]*Dataset, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			e, err := c.Acquire(path)
			if err != nil {
				t.Error(err)
				return
			}
			handles[i] = e
		}(i)
	}
	wg.Wait()
	for _, e := range handles[1:] {
		if e != handles[0] {
			t.Fatal("concurrent acquires returned distinct entries")
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want exactly 1 parse for %d acquires", s, n)
	}
	for _, e := range handles {
		c.Release(e)
	}
}

func TestDatasetCacheEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	small1 := writeFIMI(t, dir, "s1.dat", 20)
	small2 := writeFIMI(t, dir, "s2.dat", 21)
	db1, _ := fimi.ReadFile(small1)
	unit := fimi.DBBytes(db1)
	c := NewDatasetCache(2*unit + unit/2) // room for ~two entries

	e1, err := c.Acquire(small1)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(e1)
	e2, err := c.Acquire(small2)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(e2)
	// Touch s1 so s2 becomes the LRU cold entry, then force an eviction.
	if e, err := c.Acquire(small1); err != nil {
		t.Fatal(err)
	} else {
		c.Release(e)
	}
	// A third, similar-sized dataset: fitting it needs one eviction, and
	// that eviction must pick the LRU cold entry (s2), not s1.
	third := writeFIMI(t, dir, "third.dat", 22)
	e3, err := c.Acquire(third)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(e3)
	if !e2.Evicted() {
		t.Fatal("LRU entry (s2) was not the one evicted")
	}
	if e1.Evicted() {
		t.Fatal("recently-used entry (s1) was evicted ahead of the LRU one")
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", s)
	}
}

// A dataset that cannot fit (cap smaller than the parse) is still served,
// detached from the cache; releasing the detached handle is a no-op.
func TestDatasetCacheDetachedWhenOverCap(t *testing.T) {
	path := writeFIMI(t, t.TempDir(), "a.dat", 100)
	c := NewDatasetCache(1) // nothing fits
	e, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.DB == nil || e.DB.Len() != 100 {
		t.Fatalf("detached acquire lost the parse: %+v", e)
	}
	if got := c.Resident(); got != 0 {
		t.Fatalf("resident = %d, want 0 (entry must stay out of the cache)", got)
	}
	c.Release(e)
	s := c.Stats()
	if s.Skipped != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 skip / 0 entries", s)
	}
}

// A failed parse must not poison the cache: the error is returned, and a
// later acquire of the same identity retries (and can succeed after the
// file is fixed in place — same size, same prefix-hashed head).
func TestDatasetCacheParseErrorRetries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.dat")
	if err := os.WriteFile(path, []byte("1 2 x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewDatasetCache(0)
	if _, err := c.Acquire(path); err == nil {
		t.Fatal("acquire of malformed FIMI must error")
	}
	if err := os.WriteFile(path, []byte("1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := c.Acquire(path)
	if err != nil {
		t.Fatalf("retry after fixing the file: %v", err)
	}
	c.Release(e)
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses (no cached failure)", s)
	}
}

func TestDatasetCacheShed(t *testing.T) {
	dir := t.TempDir()
	c := NewDatasetCache(0)
	pinned, err := c.Acquire(writeFIMI(t, dir, "pinned.dat", 30))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.Acquire(writeFIMI(t, dir, "cold.dat", 31))
	if err != nil {
		t.Fatal(err)
	}
	c.Release(cold)
	freed := c.Shed(1 << 40) // shed everything sheddable
	if freed != cold.Bytes {
		t.Fatalf("shed %d bytes, want exactly the cold entry's %d", freed, cold.Bytes)
	}
	if pinned.Evicted() {
		t.Fatal("shed evicted a ref-held entry")
	}
	if !cold.Evicted() {
		t.Fatal("shed left the cold entry resident")
	}
	if got := c.Resident(); got != pinned.Bytes {
		t.Fatalf("resident = %d, want the pinned entry's %d", got, pinned.Bytes)
	}
	c.Release(pinned)
}

func sets(pairs ...any) []mine.Itemset {
	out := make([]mine.Itemset, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, mine.Itemset{Items: pairs[i].([]dataset.Item), Support: pairs[i+1].(int)})
	}
	return out
}

func listing(ss []mine.Itemset) string {
	var b strings.Builder
	for _, s := range ss {
		fmt.Fprintf(&b, "%v:%d\n", s.Items, s.Support)
	}
	return b.String()
}

func TestResultCacheExactAndSubsumedHits(t *testing.T) {
	c := NewResultCache(0)
	key := ResultKey{ID: Identity{Size: 9, Hash: 7}, Algo: "lcm", Patterns: "3"}
	// Deliberately unordered, with unsorted items: the cache canonicalizes.
	c.Insert(key, 2, sets(
		[]dataset.Item{3, 1}, 4,
		[]dataset.Item{1}, 6,
		[]dataset.Item{2}, 3,
		[]dataset.Item{1, 2}, 2,
	))

	got, ok := c.Serve(key, 2)
	if !ok {
		t.Fatal("exact-threshold serve missed")
	}
	want := listing(sets([]dataset.Item{1}, 6, []dataset.Item{2}, 3, []dataset.Item{1, 2}, 2, []dataset.Item{1, 3}, 4))
	if listing(got) != want {
		t.Fatalf("exact serve listing:\n%scached want:\n%s", listing(got), want)
	}

	got, ok = c.Serve(key, 4) // subsumed: filter support >= 4
	if !ok {
		t.Fatal("subsumed serve missed")
	}
	if want := listing(sets([]dataset.Item{1}, 6, []dataset.Item{1, 3}, 4)); listing(got) != want {
		t.Fatalf("subsumed serve listing:\n%swant:\n%s", listing(got), want)
	}

	if _, ok := c.Serve(key, 1); ok {
		t.Fatal("a minsup below the cached threshold must miss (cache cannot invent itemsets)")
	}
	if _, ok := c.Serve(ResultKey{ID: key.ID, Algo: "eclat", Patterns: key.Patterns}, 2); ok {
		t.Fatal("a different kernel must miss")
	}
	s := c.Stats()
	if s.HitsExact != 1 || s.HitsSubsumed != 1 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestResultCacheLowerThresholdReplaces(t *testing.T) {
	c := NewResultCache(0)
	key := ResultKey{ID: Identity{Size: 1, Hash: 1}, Algo: "lcm"}
	c.Insert(key, 5, sets([]dataset.Item{1}, 9))
	c.Insert(key, 7, sets([]dataset.Item{1}, 9)) // higher threshold: dropped
	if _, ok := c.Serve(key, 5); !ok {
		t.Fatal("higher-threshold insert replaced a subsuming entry")
	}
	c.Insert(key, 3, sets([]dataset.Item{1}, 9, []dataset.Item{2}, 4)) // lower: replaces
	got, ok := c.Serve(key, 3)
	if !ok || len(got) != 2 {
		t.Fatalf("lower-threshold insert did not replace: ok=%v sets=%d", ok, len(got))
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("stats = %+v, want a single entry per key", s)
	}
}

func TestResultCacheEvictionAndShed(t *testing.T) {
	one := sets([]dataset.Item{1, 2, 3}, 5)
	cost := setsBytes(Canonicalize(one))
	c := NewResultCache(2 * cost)
	k := func(i uint64) ResultKey { return ResultKey{ID: Identity{Size: 1, Hash: i}, Algo: "lcm"} }
	c.Insert(k(1), 2, one)
	c.Insert(k(2), 2, one)
	c.Serve(k(1), 2)       // touch k1: k2 becomes LRU
	c.Insert(k(3), 2, one) // must evict k2
	if _, ok := c.Serve(k(2), 2); ok {
		t.Fatal("LRU entry survived an over-cap insert")
	}
	if _, ok := c.Serve(k(1), 2); !ok {
		t.Fatal("recently-served entry was evicted instead of the LRU one")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if freed := c.Shed(1); freed <= 0 {
		t.Fatal("shed freed nothing with cold entries resident")
	}
	// An oversized listing must be refused, not thrash the whole cache.
	big := make([]mine.Itemset, 200)
	for i := range big {
		big[i] = mine.Itemset{Items: []dataset.Item{dataset.Item(i)}, Support: 2}
	}
	c.Insert(k(9), 2, big)
	if _, ok := c.Serve(k(9), 2); ok {
		t.Fatal("listing larger than the cap was cached")
	}
}

// Cache entries must not alias the caller's slices: mutating the inserted
// listing afterwards must not corrupt what the cache serves.
func TestResultCacheCopiesOnInsert(t *testing.T) {
	c := NewResultCache(0)
	key := ResultKey{ID: Identity{Size: 2, Hash: 2}, Algo: "lcm"}
	in := sets([]dataset.Item{5, 1}, 3)
	c.Insert(key, 3, in)
	in[0].Items[0] = 99
	in[0].Support = -1
	got, ok := c.Serve(key, 3)
	if !ok || len(got) != 1 || got[0].Items[0] != 1 || got[0].Items[1] != 5 || got[0].Support != 3 {
		t.Fatalf("cached listing aliased caller memory: %+v", got)
	}
}
