package servecache

import (
	"fmt"
	"os"
	"sync"
	"time"

	"fpm/internal/failpoint"
)

// DefaultPersistInterval paces the background snapshot writer when the
// caller does not choose one. Coarse on purpose: the snapshot is a warm
// restart optimisation, not a transaction log (the job journal carries
// the correctness story), so a couple of seconds of staleness only costs
// a re-mine after a crash.
const DefaultPersistInterval = 2 * time.Second

// PersistStats is the persister's census, rendered on /metrics as the
// fpm_cache_persist_* family.
type PersistStats struct {
	// Writes counts snapshots renamed into place; Errors counts failed
	// write attempts (the previous snapshot stays intact either way).
	Writes uint64 `json:"writes"`
	Errors uint64 `json:"errors"`
	// Restored / DroppedStale / DroppedUnreadable describe the startup
	// restore (see RestoreStats); Corrupt is 1 when the snapshot file
	// existed but failed validation and the cache started cold.
	Restored          int `json:"restored"`
	DroppedStale      int `json:"dropped_stale"`
	DroppedUnreadable int `json:"dropped_unreadable"`
	Corrupt           int `json:"corrupt"`
	// LastBytes is the size of the last snapshot written.
	LastBytes int64 `json:"last_bytes"`
}

// Persister periodically snapshots a ResultCache's durable entries into
// an atomic sidecar file (temp + fsync + rename, the FPCK discipline).
// Writes are debounced — a tick writes only when the cache mutated since
// the last successful write — and ordered after removals: the rename is
// taken under the cache lock only if no entry was removed since the
// snapshot was encoded, so a shed-under-memory-pressure can never be
// resurrected by a concurrently written stale snapshot. Close performs a
// final write, making graceful shutdown durable without waiting a tick.
type Persister struct {
	cache    *ResultCache
	path     string
	interval time.Duration

	mu      sync.Mutex
	stats   PersistStats
	lastGen uint64 // cache mutGen captured by the last successful write
	wrote   bool   // at least one successful write (lastGen is meaningful)

	stop chan struct{}
	done chan struct{}
}

// NewPersister starts the background writer for cache, persisting to
// path every interval (0 means DefaultPersistInterval). Callers must
// Close it to stop the goroutine and flush the final snapshot.
func NewPersister(cache *ResultCache, path string, interval time.Duration) *Persister {
	if interval <= 0 {
		interval = DefaultPersistInterval
	}
	p := &Persister{
		cache:    cache,
		path:     path,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p
}

// NoteRestore folds the startup restore outcome into the stats, so the
// whole durability story is visible in one metrics family.
func (p *Persister) NoteRestore(st RestoreStats, corrupt bool) {
	p.mu.Lock()
	p.stats.Restored = st.Restored
	p.stats.DroppedStale = st.DroppedStale
	p.stats.DroppedUnreadable = st.DroppedUnreadable
	if corrupt {
		p.stats.Corrupt = 1
	}
	p.mu.Unlock()
}

// Stats returns a consistent snapshot of the persister counters.
func (p *Persister) Stats() PersistStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the background writer, performing one final write if the
// cache mutated since the last one. Idempotent-unsafe: call once.
func (p *Persister) Close() {
	close(p.stop)
	<-p.done
}

func (p *Persister) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			p.writeIfStale()
			return
		case <-tick.C:
			p.writeIfStale()
		}
	}
}

// writeIfStale writes a snapshot unless the on-disk one already reflects
// the cache's current mutation generation.
func (p *Persister) writeIfStale() {
	p.cache.mu.Lock()
	gen := p.cache.mutGen
	p.cache.mu.Unlock()
	p.mu.Lock()
	fresh := p.wrote && gen == p.lastGen
	p.mu.Unlock()
	if fresh {
		return
	}
	p.WriteNow()
}

// snapAttempts bounds the encode/write/rename retries one WriteNow makes
// when removals keep racing the encode. Giving up leaves the snapshot
// stale for this round; the next tick retries, so persistence converges
// once a write window is free of sheds.
const snapAttempts = 5

// WriteNow synchronously snapshots the cache to the sidecar path: encode
// under the cache lock (capturing the removal generation), write + fsync
// a temp file, then rename into place — but only if no removal happened
// since the encode. The rename is taken under the cache lock, so a Shed
// serialises either entirely before the encode (the shed entry is not in
// the snapshot) or entirely after the rename check (the stale temp file
// is discarded and the attempt retried). An injected
// servecache.persist.write failure, a full disk, or a lost race all
// leave the previous snapshot intact.
func (p *Persister) WriteNow() error {
	var lastErr error
	for attempt := 0; attempt < snapAttempts; attempt++ {
		data, mutGen, removeGen := p.cache.EncodeSnapshot()
		if err := p.writeAtomic(data, removeGen); err != nil {
			if err == errSnapshotRaced {
				lastErr = err
				continue
			}
			p.mu.Lock()
			p.stats.Errors++
			p.mu.Unlock()
			return err
		}
		p.mu.Lock()
		p.stats.Writes++
		p.stats.LastBytes = int64(len(data))
		p.lastGen = mutGen
		p.wrote = true
		p.mu.Unlock()
		return nil
	}
	return lastErr
}

// errSnapshotRaced signals a removal between encode and rename; the
// caller re-encodes and retries.
var errSnapshotRaced = fmt.Errorf("servecache: snapshot raced a removal")

func (p *Persister) writeAtomic(data []byte, removeGen uint64) error {
	if err := failpoint.Hit(failpoint.ServecachePersistWrite); err != nil {
		return err
	}
	tmp := p.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("servecache: snapshot: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("servecache: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("servecache: snapshot: %w", err)
	}
	// The commit point. Under the cache lock: a removal (evict, shed,
	// replace) after the encode makes this snapshot stale in the dangerous
	// direction — it still contains the removed entry — so it must not
	// land. Removals bump removeGen under the same lock, which makes the
	// check and the rename one atomic step against them.
	p.cache.mu.Lock()
	if p.cache.removeGen != removeGen {
		p.cache.mu.Unlock()
		os.Remove(tmp)
		return errSnapshotRaced
	}
	err = os.Rename(tmp, p.path)
	p.cache.mu.Unlock()
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("servecache: snapshot: %w", err)
	}
	return nil
}
