// Package failpoint is a zero-dependency, build-tag-free fault-injection
// registry for the robustness tests: named sites in the I/O, scheduler,
// checkpoint and telemetry layers call Hit (or wrap a reader) and, when a
// test has armed the site, receive an injected error, a panic, or a
// truncated read. In production nothing is ever armed and every site costs
// one atomic pointer load plus a nil check — the same one-check discipline
// internal/metrics and internal/trace follow, with no build tags to fork
// the binary.
//
// The registry is process-global (sites live in packages that take no
// options, e.g. the fimi readers), so tests that arm it must not run in
// parallel with each other; Disable restores the zero-cost path.
package failpoint

import (
	"io"
	"sync"
	"sync/atomic"
)

// Well-known site names. Constants so call sites and tests cannot drift.
const (
	// FimiRead wraps the byte stream under every fimi reader: an armed
	// error surfaces as a read failure, an armed short-read truncates the
	// stream mid-transaction.
	FimiRead = "fimi.read"
	// PartitionCheckpointWrite fires inside the checkpoint writer, before
	// the temp file is renamed into place — an armed error simulates a
	// full disk / failed flush without leaving a torn sidecar.
	PartitionCheckpointWrite = "partition.checkpoint.write"
	// PartitionChunkMine fires at the top of each pass-1 chunk mine; arm a
	// panic to exercise the chunk panic-recovery path, or an error to
	// abort the run between checkpoints (a crash the resume path must
	// survive).
	PartitionChunkMine = "partition.chunk.mine"
	// PartitionRecountChunk fires at the top of each pass-2 recount chunk;
	// arm an error to crash the run between pass-2 checkpoints and
	// exercise the phase-2 resume path.
	PartitionRecountChunk = "partition.recount.chunk"
	// ParallelWorkerTask fires at the top of every scheduler task
	// execution; arm a panic to exercise worker panic recovery.
	ParallelWorkerTask = "parallel.worker.task"
	// TraceFlush fires inside trace.Recorder.Flush; an armed error
	// simulates a failing telemetry/trace sink after a completed mine.
	TraceFlush = "trace.flush"
	// ServecacheDatasetParse fires in the dataset cache just before a
	// cache-miss parse runs; an armed error surfaces as a parse failure —
	// a transient I/O fault the serve layer's retry policy must absorb.
	ServecacheDatasetParse = "servecache.dataset.parse"
	// TelemetryJobMine fires at the top of every mine attempt in the job
	// store (including retries); arm FailAfter to fail the first N
	// attempts and let a retry succeed.
	TelemetryJobMine = "telemetry.job.mine"
	// ServecachePersistWrite fires in the result-cache snapshot writer
	// before any byte is written — an injected failure simulates a full
	// disk and must leave the previous snapshot intact.
	ServecachePersistWrite = "servecache.persist.write"
)

// arm is one armed site: after skip more hits, trigger (err, panic or
// short-read) up to count times (count < 0 means every hit).
type arm struct {
	skip     int
	count    int
	err      error
	panicMsg string
	shortAt  int64 // >0: reader truncates after this many bytes
}

// Registry holds armed failpoints. Arm it with the Fail/Panic/ShortRead
// builders and install it with Enable; the zero value is valid and empty.
type Registry struct {
	mu   sync.Mutex
	arms map[string]*arm
	hits map[string]int
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

func (r *Registry) armSite(site string, a *arm) {
	r.mu.Lock()
	if r.arms == nil {
		r.arms = make(map[string]*arm)
	}
	r.arms[site] = a
	r.mu.Unlock()
}

// Fail arms site to return err on every subsequent hit.
func (r *Registry) Fail(site string, err error) { r.armSite(site, &arm{count: -1, err: err}) }

// FailAfter arms site to return err once, on the (skip+1)th hit after
// arming; earlier and later hits pass through. This is how the chaos tests
// crash a run "mid-flight": let N chunks succeed, fail the next.
func (r *Registry) FailAfter(site string, skip int, err error) {
	r.armSite(site, &arm{skip: skip, count: 1, err: err})
}

// Panic arms site to panic(msg) once, after skip clean hits.
func (r *Registry) Panic(site string, skip int, msg string) {
	r.armSite(site, &arm{skip: skip, count: 1, panicMsg: msg})
}

// ShortRead arms site so the next wrapped reader truncates cleanly (io.EOF)
// after n bytes — a short read mid-stream, as a kill -9 between appends or
// a truncated download would produce.
func (r *Registry) ShortRead(site string, n int64) {
	r.armSite(site, &arm{count: -1, shortAt: n})
}

// Hits reports how many times site has been evaluated since arming
// (trigger or pass-through), for test assertions.
func (r *Registry) Hits(site string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[site]
}

// hit evaluates one site visit: returns the armed error, panics, or passes.
func (r *Registry) hit(site string) error {
	r.mu.Lock()
	if r.hits == nil {
		r.hits = make(map[string]int)
	}
	r.hits[site]++
	a := r.arms[site]
	if a == nil || a.shortAt > 0 {
		r.mu.Unlock()
		return nil
	}
	if a.skip > 0 {
		a.skip--
		r.mu.Unlock()
		return nil
	}
	if a.count == 0 {
		r.mu.Unlock()
		return nil
	}
	if a.count > 0 {
		a.count--
	}
	err, msg := a.err, a.panicMsg
	r.mu.Unlock()
	if msg != "" {
		panic("failpoint " + site + ": " + msg)
	}
	return err
}

// active is the installed registry; nil (the default) disables every site.
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide registry. Tests must pair it with
// Disable (typically via t.Cleanup) and must not run in parallel.
func Enable(r *Registry) { active.Store(r) }

// Disable restores the zero-cost disabled state.
func Disable() { active.Store(nil) }

// Hit evaluates the named site against the installed registry: nil when
// disabled or unarmed (the production path — one atomic load, one branch),
// the armed error when a fault is due, or a panic for panic-armed sites.
func Hit(site string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.hit(site)
}

// WrapReader routes a byte stream through the named site: when the site is
// armed with an error the first Read returns it; when armed with a short
// read the stream ends (io.EOF) after the armed byte count. Disabled or
// unarmed, it returns r unchanged — zero wrapping cost on the production
// path (the check happens once per wrap, not per Read).
func WrapReader(site string, r io.Reader) io.Reader {
	reg := active.Load()
	if reg == nil {
		return r
	}
	reg.mu.Lock()
	if reg.hits == nil {
		reg.hits = make(map[string]int)
	}
	reg.hits[site]++
	a := reg.arms[site]
	reg.mu.Unlock()
	if a == nil {
		return r
	}
	return &faultReader{site: site, r: r, a: a, reg: reg}
}

// faultReader injects the armed fault into a wrapped stream.
type faultReader struct {
	site string
	r    io.Reader
	a    *arm
	reg  *Registry
	n    int64
}

func (f *faultReader) Read(p []byte) (int, error) {
	f.reg.mu.Lock()
	shortAt, err, count := f.a.shortAt, f.a.err, f.a.count
	f.reg.mu.Unlock()
	if err != nil && count != 0 {
		f.reg.mu.Lock()
		if f.a.count > 0 {
			f.a.count--
		}
		f.reg.mu.Unlock()
		return 0, err
	}
	if shortAt > 0 {
		if f.n >= shortAt {
			return 0, io.EOF
		}
		if max := shortAt - f.n; int64(len(p)) > max {
			p = p[:max]
		}
	}
	n, rerr := f.r.Read(p)
	f.n += int64(n)
	return n, rerr
}
