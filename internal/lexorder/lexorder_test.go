package lexorder

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
)

// paperDB is the database of the paper's Table 1 with items mapped
// a=0 b=1 c=2 d=3 e=4 f=5.
func paperDB() *dataset.DB {
	db := dataset.New([]dataset.Transaction{
		{0, 2, 5},          // {a,c,f}
		{1, 2, 5},          // {b,c,f}
		{0, 2, 5},          // {a,c,f}
		{3, 4},             // {d,e}
		{0, 1, 2, 3, 4, 5}, // {a,b,c,d,e,f}
	})
	db.Normalize()
	return db
}

// TestPaperTable1 reproduces the paper's Table 1 transformation exactly:
// the frequency alphabet is c,f,a,b,d,e and the reordered database is
// {c,f,a}, {c,f,a}, {c,f,a,b,d,e}, {c,f,b}, {d,e}.
func TestPaperTable1(t *testing.T) {
	lex, o := Apply(paperDB())

	// Frequencies: a=3 b=2 c=4 d=2 e=2 f=4. Decreasing order with ties by
	// item id: c,f,a,b,d,e → origs [2 5 0 1 3 4].
	wantOrig := []dataset.Item{2, 5, 0, 1, 3, 4}
	if !reflect.DeepEqual(o.Orig, wantOrig) {
		t.Fatalf("alphabet = %v, want %v (c,f,a,b,d,e)", o.Orig, wantOrig)
	}

	// In rank space: c=0 f=1 a=2 b=3 d=4 e=5.
	want := []dataset.Transaction{
		{0, 1, 2},          // {c,f,a}
		{0, 1, 2},          // {c,f,a}
		{0, 1, 2, 3, 4, 5}, // {c,f,a,b,d,e}
		{0, 1, 3},          // {c,f,b}
		{4, 5},             // {d,e}
	}
	if !reflect.DeepEqual(lex.Tx, want) {
		t.Fatalf("lex layout = %v, want %v", lex.Tx, want)
	}
}

func TestAnalyzeRankInverse(t *testing.T) {
	o := Analyze(paperDB())
	for item, rank := range o.Rank {
		if o.Orig[rank] != dataset.Item(item) {
			t.Fatalf("Rank/Orig not inverse at item %d", item)
		}
	}
}

func TestRestore(t *testing.T) {
	_, o := Apply(paperDB())
	// Rank set {0,1} is {c,f} = original items {2,5}.
	got := o.Restore([]dataset.Item{0, 1})
	if !reflect.DeepEqual(got, []dataset.Item{2, 5}) {
		t.Fatalf("Restore = %v, want [2 5]", got)
	}
}

func TestLess(t *testing.T) {
	cases := []struct {
		a, b dataset.Transaction
		want bool
	}{
		{dataset.Transaction{}, dataset.Transaction{0}, true},
		{dataset.Transaction{0}, dataset.Transaction{}, false},
		{dataset.Transaction{0, 1}, dataset.Transaction{0, 2}, true},
		{dataset.Transaction{0, 1}, dataset.Transaction{0, 1}, false},
		{dataset.Transaction{0, 1}, dataset.Transaction{0, 1, 2}, true},
		{dataset.Transaction{1}, dataset.Transaction{0, 5}, false},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDiscontinuities(t *testing.T) {
	// Item 0 appears in tx 0 and 2 (gap → 1 discontinuity); item 1 in
	// tx 0,1,2 (contiguous → 0).
	db := dataset.New([]dataset.Transaction{{0, 1}, {1}, {0, 1}})
	if got := Discontinuities(db); got != 1 {
		t.Fatalf("Discontinuities = %d, want 1", got)
	}
	if got := Discontinuities(dataset.New(nil)); got != 0 {
		t.Fatalf("Discontinuities(empty) = %d, want 0", got)
	}
}

// Property: lexicographic ordering never increases the discontinuity count
// versus a randomly shuffled layout of the same database, and the most
// frequent item's transactions are contiguous (0 discontinuities for
// rank 0). This is the paper's §3.2 locality claim.
func TestLexImprovesLocalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 40, 10, 6)
		lex, _ := Apply(db)
		shuf, _ := ApplyRelabelOnly(db)
		rng.Shuffle(len(shuf.Tx), func(i, j int) { shuf.Tx[i], shuf.Tx[j] = shuf.Tx[j], shuf.Tx[i] })
		if Discontinuities(lex) > Discontinuities(shuf) {
			return false
		}
		// Rank-0 transactions are a contiguous prefix run.
		seen0, gap := false, false
		for _, tr := range lex.Tx {
			has0 := len(tr) > 0 && tr[0] == 0
			if has0 && gap {
				return false
			}
			if seen0 && !has0 {
				gap = true
			}
			seen0 = seen0 || has0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Apply is a support-preserving bijection — the multiset of
// transactions (as item sets, translated back) is unchanged, and item
// frequencies are permuted consistently.
func TestApplyPreservesDatabaseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 25, 8, 5)
		lex, o := Apply(db)
		if lex.Len() != db.Len() {
			return false
		}
		// Translate every lex transaction back and compare sorted multisets.
		back := make([]string, lex.Len())
		orig := make([]string, db.Len())
		for i, tr := range lex.Tx {
			back[i] = key(o.Restore(tr))
		}
		for i, tr := range db.Tx {
			s := append(dataset.Transaction(nil), tr...)
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
			orig[i] = key(s)
		}
		sort.Strings(back)
		sort.Strings(orig)
		return reflect.DeepEqual(back, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ranks are ordered by decreasing frequency.
func TestRankMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 30, 12, 6)
		o := Analyze(db)
		for r := 1; r < len(o.Orig); r++ {
			if o.Freq[o.Orig[r-1]] < o.Freq[o.Orig[r]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSortTransactionsSortedOutput(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{2}, {0, 1}, {0}, {}})
	SortTransactions(db)
	for i := 1; i < len(db.Tx); i++ {
		if Less(db.Tx[i], db.Tx[i-1]) {
			t.Fatalf("not sorted at %d: %v", i, db.Tx)
		}
	}
}

func key(t dataset.Transaction) string {
	b := make([]byte, 0, len(t)*2)
	for _, it := range t {
		b = append(b, byte(it), ',')
	}
	return string(b)
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		t := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			t = append(t, dataset.Item(rng.Intn(m)))
		}
		tx[i] = t
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
