package lexorder

import (
	"math/rand"
	"strconv"
	"testing"

	"fpm/internal/dataset"
)

func benchDB(n, m, avgLen int) *dataset.DB {
	rng := rand.New(rand.NewSource(3))
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := 1 + rng.Intn(2*avgLen)
		t := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			t = append(t, dataset.Item(rng.Intn(m)))
		}
		tx[i] = t
	}
	db := dataset.New(tx)
	db.Normalize()
	return db
}

// The P1 preprocessing cost that Figure 8's Lex bars pay; its growth with
// n is the paper's DS4 lesson.
func BenchmarkApply(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		db := benchDB(n, 500, 12)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lexed, _ := Apply(db)
				if lexed.Len() != db.Len() {
					b.Fatal("lost transactions")
				}
			}
		})
	}
}

func BenchmarkDiscontinuities(b *testing.B) {
	db := benchDB(4000, 500, 12)
	for i := 0; i < b.N; i++ {
		if Discontinuities(db) < 0 {
			b.Fatal("impossible")
		}
	}
}

func itoa(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return strconv.Itoa(n/1000) + "k"
	}
	return strconv.Itoa(n)
}
