// Package lexorder implements tuning pattern P1, lexicographic ordering
// (paper §3.2): relabel items in decreasing frequency order, sort the items
// of each transaction by that order, and sort the transactions
// lexicographically over the frequency-ordered alphabet.
//
// The transformation moves transactions that share frequent prefixes to
// consecutive memory locations, improving spatial locality for the
// projected-database construction walk common to all depth-first miners; it
// clusters the 1s of the most frequent items at the start of Eclat's bit
// vectors (enabling 0-escaping); and it makes consecutive FP-tree
// insertions share cached paths.
package lexorder

import (
	"slices"
	"sort"

	"fpm/internal/dataset"
)

// Ordering describes the item relabeling produced by Analyze. Rank 0 is the
// most frequent item.
type Ordering struct {
	// Rank maps original item → frequency rank (0 = most frequent). Ties
	// are broken by original item id so the ordering is deterministic.
	Rank []dataset.Item
	// Orig maps frequency rank → original item (the inverse of Rank).
	Orig []dataset.Item
	// Freq holds the support of each original item.
	Freq []int
}

// Analyze computes the decreasing-frequency ordering of the database's
// alphabet.
func Analyze(db *dataset.DB) *Ordering {
	o := &Ordering{Freq: db.Frequencies()}
	o.Orig = make([]dataset.Item, db.NumItems)
	for i := range o.Orig {
		o.Orig[i] = dataset.Item(i)
	}
	sort.SliceStable(o.Orig, func(a, b int) bool {
		fa, fb := o.Freq[o.Orig[a]], o.Freq[o.Orig[b]]
		if fa != fb {
			return fa > fb
		}
		return o.Orig[a] < o.Orig[b]
	})
	o.Rank = make([]dataset.Item, db.NumItems)
	for r, item := range o.Orig {
		o.Rank[item] = dataset.Item(r)
	}
	return o
}

// Apply returns a new database in the lexicographic layout:
//
//  1. every item is relabeled by its frequency rank,
//  2. items inside each transaction are sorted by increasing rank
//     (i.e. decreasing original frequency, as in paper Table 1), and
//  3. transactions are sorted lexicographically over the rank alphabet.
//
// The returned ordering lets callers translate mined itemsets back to the
// original alphabet. The input database is not modified.
func Apply(db *dataset.DB) (*dataset.DB, *Ordering) {
	o := Analyze(db)
	out := &dataset.DB{Tx: make([]dataset.Transaction, len(db.Tx)), NumItems: db.NumItems}
	for i, t := range db.Tx {
		nt := make(dataset.Transaction, len(t))
		for j, it := range t {
			nt[j] = o.Rank[it]
		}
		slices.Sort(nt)
		out.Tx[i] = nt
	}
	SortTransactions(out)
	return out, o
}

// ApplyInPlace re-expresses db in the lexicographic layout without
// allocating new transaction storage: items are relabeled by frequency
// rank inside the existing backing arrays, each transaction re-sorted,
// and the transaction slice permuted lexicographically. This is the
// variant the out-of-core pass 1 uses per chunk, where the chunk is a
// reused arena that must not be retained — only the returned ordering
// (three O(alphabet) arrays) is allocated.
func ApplyInPlace(db *dataset.DB) *Ordering {
	o := Analyze(db)
	for _, t := range db.Tx {
		for j, it := range t {
			t[j] = o.Rank[it]
		}
		slices.Sort(t)
	}
	SortTransactions(db)
	return o
}

// ApplyRelabelOnly relabels items by rank and sorts within transactions but
// keeps the original transaction order. Used to isolate the contribution of
// the transaction permutation from the item relabeling in ablations.
func ApplyRelabelOnly(db *dataset.DB) (*dataset.DB, *Ordering) {
	o := Analyze(db)
	out := &dataset.DB{Tx: make([]dataset.Transaction, len(db.Tx)), NumItems: db.NumItems}
	for i, t := range db.Tx {
		nt := make(dataset.Transaction, len(t))
		for j, it := range t {
			nt[j] = o.Rank[it]
		}
		slices.Sort(nt)
		out.Tx[i] = nt
	}
	return out, o
}

// SortTransactions sorts db.Tx lexicographically in place. Transactions are
// compared element-wise; a proper prefix sorts before its extensions.
func SortTransactions(db *dataset.DB) {
	sort.SliceStable(db.Tx, func(a, b int) bool {
		return Less(db.Tx[a], db.Tx[b])
	})
}

// Less reports whether transaction a precedes b lexicographically.
func Less(a, b dataset.Transaction) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Restore maps a mined itemset expressed in rank space back to the original
// item alphabet, returning a new sorted slice.
func (o *Ordering) Restore(set []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, len(set))
	for i, r := range set {
		out[i] = o.Orig[r]
	}
	slices.Sort(out)
	return out
}

// Discontinuities counts, summed over all items, the number of maximal runs
// of consecutive transactions containing that item, minus one per occurring
// item. It is the locality metric the paper argues P1 minimizes ("the
// lexicographic layout … will tend to reduce the total number of
// discontinuities, and especially reduce discontinuities for frequent
// items"). Lower is better; 0 means every item's transactions are
// contiguous.
func Discontinuities(db *dataset.DB) int {
	last := make([]int, db.NumItems) // last transaction index containing item
	for i := range last {
		last[i] = -2 // "never seen": cannot equal ti-1 for any ti >= 0
	}
	total := 0
	for ti, t := range db.Tx {
		for _, it := range t {
			// A new run starts when the item was seen before but not in
			// the immediately preceding transaction. The first run of each
			// item is free, so the total is Σ(runs(item) - 1).
			if last[it] >= 0 && last[it] != ti-1 {
				total++
			}
			last[it] = ti
		}
	}
	return total
}
