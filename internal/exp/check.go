package exp

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"fpm/internal/eclat"
	"fpm/internal/fpgrowth"
	"fpm/internal/lcm"
	"fpm/internal/mine"
)

// BaselineRow is one cell of the baseline running-time comparison (the
// bottom annotation of the paper's Figure 8: absolute baseline times per
// kernel per dataset, supporting the "no single best algorithm" claim).
type BaselineRow struct {
	Dataset string
	Times   map[mine.Algorithm]time.Duration
	Winner  mine.Algorithm
}

// baselineSupportFactor raises the Table 6 thresholds for the native
// comparison: counting *all* frequent itemsets at the paper's relative
// supports is combinatorial (tens of millions of sets on the dense Quest
// data), and the baseline comparison only needs the kernels ranked on a
// common workload.
const baselineSupportFactor = 4

// BaselineTimes measures the untuned native kernels' wall-clock time on
// every Table 6 dataset (supports scaled by baselineSupportFactor).
func BaselineTimes(o Options) []BaselineRow {
	o = o.withDefaults()
	miners := map[mine.Algorithm]mine.Miner{
		mine.LCM:      lcm.New(lcm.Options{}),
		mine.Eclat:    eclat.New(eclat.Options{}),
		mine.FPGrowth: fpgrowth.New(fpgrowth.Options{}),
	}
	var out []BaselineRow
	for _, ds := range o.Datasets() {
		row := BaselineRow{Dataset: ds.Name, Times: map[mine.Algorithm]time.Duration{}}
		best := time.Duration(1<<63 - 1)
		for _, algo := range []mine.Algorithm{mine.LCM, mine.Eclat, mine.FPGrowth} {
			m := miners[algo]
			var cc mine.CountCollector
			start := time.Now()
			if err := m.Mine(ds.DB, ds.Support*baselineSupportFactor, &cc); err != nil {
				panic(err) // kernels cannot fail on generated input
			}
			el := time.Since(start)
			row.Times[algo] = el
			if el < best {
				best = el
				row.Winner = algo
			}
		}
		out = append(out, row)
	}
	return out
}

// PrintBaselineTimes renders the native baseline comparison.
func PrintBaselineTimes(w io.Writer, o Options) {
	fmt.Fprintln(w, "Baseline running times (native Go kernels, untuned)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tLCM\tEclat\tFP-Growth\tfastest")
	for _, r := range BaselineTimes(o) {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Dataset,
			r.Times[mine.LCM].Round(time.Millisecond),
			r.Times[mine.Eclat].Round(time.Millisecond),
			r.Times[mine.FPGrowth].Round(time.Millisecond),
			r.Winner)
	}
	tw.Flush()
}

// ShapeCheck records one paper-claim verification: the claim, the paper's
// reported band, what this reproduction measured, and whether the shape
// holds.
type ShapeCheck struct {
	ID       string
	Claim    string
	Expected string
	Measured string
	Pass     bool
}

// ShapeChecks runs the full Figure 2 + Figure 8 reproduction and evaluates
// the paper's headline quantitative claims against the measurements. This
// is the machine-checkable core of EXPERIMENTS.md.
func ShapeChecks(o Options) []ShapeCheck {
	o = o.withDefaults()
	var out []ShapeCheck
	add := func(id, claim, expected, measured string, pass bool) {
		out = append(out, ShapeCheck{ID: id, Claim: claim, Expected: expected, Measured: measured, Pass: pass})
	}

	// ---- Figure 2 ----------------------------------------------------
	f2 := Figure2(o)
	cpi := map[string]float64{}
	for _, r := range f2 {
		cpi[r.Function] = r.CPI
	}
	add("S1", "Figure 2 shape: Eclat computation-bound, LCM/FP-Growth memory-bound",
		"CPI(Eclat) < CPI(LCM CalcFreq) < CPI(FP Traverse); CPI(Eclat) near pipeline bound",
		fmt.Sprintf("Eclat %.2f, LCM CalcFreq %.2f, FP Traverse %.2f",
			cpi["Eclat: AndCount"], cpi["LCM: CalcFreq"], cpi["FP-Growth: Traverse"]),
		cpi["Eclat: AndCount"] < cpi["LCM: CalcFreq"] &&
			cpi["LCM: CalcFreq"] < cpi["FP-Growth: Traverse"] &&
			cpi["Eclat: AndCount"] <= 1.5)

	// ---- Figure 8 ----------------------------------------------------
	panels := Figure8(o)
	get := func(algo mine.Algorithm, machine string) *Fig8Panel {
		for i := range panels {
			if panels[i].Kernel == algo && panels[i].Machine == machine {
				return &panels[i]
			}
		}
		return nil
	}
	m1, m2 := Machines()[0].Name, Machines()[1].Name

	minMax := func(p *Fig8Panel, lever string) (lo, hi float64) {
		lo, hi = 1e9, 0
		for _, c := range p.Cells {
			v := c.Speedup[lever]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return
	}

	// S2: SIMD platform contrast.
	_, simdM1 := minMax(get(mine.Eclat, m1), "SIMD")
	_, simdM2 := minMax(get(mine.Eclat, m2), "SIMD")
	add("S2", "SIMDization: 1.25–1.45x on M1, <1.2x on M2 (Fig 8c,d)",
		"max SIMD speedup on M1 in [1.1,1.6]; M2 below M1 and < 1.2",
		fmt.Sprintf("M1 max %.2f, M2 max %.2f", simdM1, simdM2),
		simdM1 >= 1.1 && simdM1 <= 1.6 && simdM2 < simdM1 && simdM2 < 1.2)

	// S3: lexicographic ordering up to ~1.5.
	lexMax := 0.0
	for _, algo := range []mine.Algorithm{mine.LCM, mine.Eclat, mine.FPGrowth} {
		_, hi := minMax(get(algo, m1), "Lex")
		if hi > lexMax {
			lexMax = hi
		}
	}
	add("S3", "Lexicographic ordering provides up to ~1.5x (§4.4)",
		"max Lex speedup across kernels on M1 in [1.2, 2.0]",
		fmt.Sprintf("max %.2f", lexMax),
		lexMax >= 1.2 && lexMax <= 2.0)

	// S4: software prefetch up to ~1.3.
	prefMax := 0.0
	for _, algo := range []mine.Algorithm{mine.LCM, mine.FPGrowth} {
		_, hi := minMax(get(algo, m1), "Pref")
		if hi > prefMax {
			prefMax = hi
		}
	}
	add("S4", "Software prefetch gives a moderate speedup, up to ~1.3x (§6)",
		"max Pref speedup on M1 in [1.05, 1.45]",
		fmt.Sprintf("max %.2f", prefMax),
		prefMax >= 1.05 && prefMax <= 1.45)

	// S5: FP-Growth data structuring ~1.6.
	_, reorgFP := minMax(get(mine.FPGrowth, m1), "Reorg")
	add("S5", "FP-Growth data structure adaptation + aggregation gives ~1.6x (§4.4)",
		"max FP-Growth Reorg speedup on M1 in [1.35, 2.0]",
		fmt.Sprintf("max %.2f", reorgFP),
		reorgFP >= 1.35 && reorgFP <= 2.0)

	// S6: lex unprofitable for FP-Growth on DS4.
	var fpLexDS4 float64
	for _, c := range get(mine.FPGrowth, m2).Cells {
		if c.Dataset == "DS4" {
			fpLexDS4 = c.Speedup["Lex"]
		}
	}
	add("S6", "Lex not performing well for FP-Growth on DS4 (too many transactions, §4.4)",
		"FP-Growth DS4 Lex speedup <= 1.05 on M2",
		fmt.Sprintf("%.2f", fpLexDS4),
		fpLexDS4 <= 1.05)

	// S7: pattern interaction — all != best in at least one cell.
	interaction := false
	for i := range panels {
		for _, c := range panels[i].Cells {
			if c.Speedup["best"] > c.Speedup["all"]+0.01 {
				interaction = true
			}
		}
	}
	add("S7", "Optimizations are not independent: sometimes best != all (§4.4)",
		"at least one cell where the best combination beats applying everything",
		fmt.Sprintf("observed: %v", interaction), interaction)

	// S8: overall best-combination speedups are material everywhere.
	bestLo, bestHi := 1e9, 0.0
	for i := range panels {
		lo, hi := minMax(&panels[i], "best")
		if lo < bestLo {
			bestLo = lo
		}
		if hi > bestHi {
			bestHi = hi
		}
	}
	add("S8", "Overall best-combination speedup 1.05–2.1x (paper abstract)",
		"min best >= 1.05 across every kernel x machine x dataset cell",
		fmt.Sprintf("best range [%.2f, %.2f]", bestLo, bestHi),
		bestLo >= 1.05)

	// S9: tiling helps LCM without hurting.
	tileLo, tileHi := minMax(get(mine.LCM, m1), "Tile")
	tileLo2, tileHi2 := minMax(get(mine.LCM, m2), "Tile")
	if tileLo2 < tileLo {
		tileLo = tileLo2
	}
	if tileHi2 > tileHi {
		tileHi = tileHi2
	}
	add("S9", "Tiling speeds LCM up, up to ~1.75x, input dependent (§4.4)",
		"LCM Tile speedups within [0.95, 1.9], max >= 1.15",
		fmt.Sprintf("range [%.2f, %.2f]", tileLo, tileHi),
		tileLo >= 0.95 && tileHi <= 1.9 && tileHi >= 1.15)

	return out
}

// PrintShapeChecks renders the claim verification table.
func PrintShapeChecks(w io.Writer, o Options) {
	RenderShapeChecks(w, ShapeChecks(o))
}

// RenderShapeChecks formats an already-computed check list.
func RenderShapeChecks(w io.Writer, checks []ShapeCheck) {
	fmt.Fprintln(w, "Paper-claim shape checks (see EXPERIMENTS.md)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tStatus\tClaim\tExpected\tMeasured")
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", c.ID, status, c.Claim, c.Expected, c.Measured)
	}
	tw.Flush()
}
