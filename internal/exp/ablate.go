package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fpm/internal/memsim"
	"fpm/internal/mine"
	"fpm/internal/simkern"
)

// AblationRow is one configuration of one design-choice sweep (DESIGN.md
// §6 / experiment E9).
type AblationRow struct {
	Sweep   string
	Config  string
	Cycles  float64
	Speedup float64 // versus the sweep's first row
}

// Ablations runs the design-choice sweeps called out in DESIGN.md §6 on a
// DS1-like workload and machine M1:
//
//	E9.2 — supernode span for FP-Growth aggregation (paper: "each
//	       supernode the size of a cache line seems to be optimal");
//	E9.3 — tile height for LCM tiling (paper: "we choose the tile size to
//	       fit in the L1 cache");
//	E9.5 — wave-front prefetch look-ahead depth (paper Figure 5 uses 3).
func Ablations(o Options) []AblationRow {
	o = o.withDefaults()
	ds := o.Datasets()[0]
	cfg := memsim.M1()
	var rows []AblationRow

	sweep := func(name string, configs []string, run func(i int) float64) {
		var base float64
		for i, c := range configs {
			cy := run(i)
			if i == 0 {
				base = cy
			}
			rows = append(rows, AblationRow{Sweep: name, Config: c, Cycles: cy, Speedup: base / cy})
		}
	}

	// E9.2: supernode span.
	spans := []int{2, 4, 8, 16}
	sweep("FP-Growth supernode span (P3)", []string{"span 2", "span 4", "span 8", "span 16"}, func(i int) float64 {
		return simkern.FPGrowth(ds.DB, ds.Support,
			mine.PatternSet(mine.Adapt|mine.Aggregate), cfg,
			simkern.FPGrowthOptions{AggSpan: spans[i]}).TotalCycles()
	})

	// E9.3: tile height, from a quarter of L1 up to L2-sized tiles.
	avg := 1
	{
		total := 0
		for _, t := range ds.DB.Tx {
			total += len(t)
		}
		if len(ds.DB.Tx) > 0 {
			avg = total/len(ds.DB.Tx) + 1
		}
	}
	tileBytes := []int{cfg.L1.SizeBytes / 4, cfg.L1.SizeBytes / 2, cfg.L1.SizeBytes, cfg.L2.SizeBytes / 4}
	names := []string{"L1/4", "L1/2", "L1", "L2/4"}
	sweep("LCM tile size (P6.1)", names, func(i int) float64 {
		rowsPerTile := tileBytes[i] / (4 * avg)
		if rowsPerTile < 4 {
			rowsPerTile = 4
		}
		return simkern.LCM(ds.DB, ds.Support, mine.PatternSet(mine.Tile), cfg,
			simkern.LCMOptions{MaxColumns: o.MaxColumns, TileRows: rowsPerTile}).TotalCycles()
	})

	// E9.5: wave-front look-ahead depth.
	dists := []int{1, 2, 4, 8, 16, 32}
	dn := make([]string, len(dists))
	for i, d := range dists {
		dn[i] = fmt.Sprintf("dist %d", d)
	}
	sweep("LCM wave-front look-ahead (P7.1)", dn, func(i int) float64 {
		return simkern.LCM(ds.DB, ds.Support, mine.PatternSet(mine.Prefetch), cfg,
			simkern.LCMOptions{MaxColumns: o.MaxColumns, PrefetchDist: dists[i]}).TotalCycles()
	})

	return rows
}

// PrintAblations renders the E9 sweeps.
func PrintAblations(w io.Writer, o Options) {
	fmt.Fprintln(w, "E9 ablations (DS1-like workload, machine M1; speedup vs first row of each sweep)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Sweep\tConfig\tCycles\tSpeedup")
	last := ""
	for _, r := range Ablations(o) {
		name := r.Sweep
		if name == last {
			name = ""
		} else {
			last = r.Sweep
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.2f\n", name, r.Config, r.Cycles, r.Speedup)
	}
	tw.Flush()
}
