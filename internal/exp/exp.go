// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (the per-experiment index lives in
// DESIGN.md §4). Text output is formatted to mirror the paper's artifacts;
// cmd/fpmexp is the CLI front end and the repository-root benchmarks drive
// the same entry points under testing.B.
package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fpm/internal/gen"
	"fpm/internal/memsim"
	"fpm/internal/mine"
	"fpm/internal/simkern"
)

// Options configure an experiment run.
type Options struct {
	// Scale multiplies the paper's dataset sizes (Table 6). 1.0 is the
	// paper's scale; the default used by tests and benches is much
	// smaller.
	Scale float64
	// Seed feeds the dataset generators.
	Seed int64
	// MaxColumns / MaxVectors bound the instrumented kernel traces (see
	// simkern options).
	MaxColumns int
	MaxVectors int
}

// withDefaults fills in the standard small-scale settings.
func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.004
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.MaxColumns == 0 {
		o.MaxColumns = 200
	}
	if o.MaxVectors == 0 {
		o.MaxVectors = 64
	}
	return o
}

// Datasets generates the Table 6 datasets at the configured scale.
func (o Options) Datasets() []gen.NamedDataset {
	o = o.withDefaults()
	return gen.Table6(o.Scale, o.Seed)
}

// Machines returns the two Table 5 platforms.
func Machines() []memsim.Config {
	return []memsim.Config{memsim.M1(), memsim.M2()}
}

// Table2 prints the pattern-property summary (paper Table 2: which
// performance dimension each ALSO pattern improves).
func Table2(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Pattern	Spatial locality	Temporal locality	Memory latency	Computation")
	rows := []struct {
		name string
		p    mine.Pattern
	}{
		{"Lexicographic ordering", mine.Lex},
		{"Data structure adaptation", mine.Adapt},
		{"Aggregation", mine.Aggregate},
		{"Compaction", mine.Compact},
		{"Software prefetch", mine.Prefetch},
		{"Tiling", mine.Tile},
		{"SIMDization", mine.SIMD},
	}
	mark := func(pr, q mine.Property) string {
		if pr.Has(q) {
			return "yes"
		}
		return "-"
	}
	for _, r := range rows {
		pr := mine.Improves(r.p)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.name,
			mark(pr, mine.SpatialLocality), mark(pr, mine.TemporalLocality),
			mark(pr, mine.MemoryLatency), mark(pr, mine.Computation))
	}
	tw.Flush()
}

// Table3 prints the kernel characterisation (paper Table 3).
func Table3(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Kernel	Database type	Data structure	Bound")
	fmt.Fprintln(tw, "LCM	horizontal	array	memory")
	fmt.Fprintln(tw, "Eclat	vertical	bit vector (array)	computation")
	fmt.Fprintln(tw, "FP-Growth	horizontal	tree	memory")
	tw.Flush()
}

// Table4 prints the pattern-applicability matrix (paper Table 4, the
// applied-pattern cells).
func Table4(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Pattern\tLCM\tEclat\tFP-Growth")
	rows := []struct {
		name string
		p    mine.Pattern
	}{
		{"Lexicographic ordering (P1)", mine.Lex},
		{"Data structure adaptation (P2)", mine.Adapt},
		{"Aggregation (P3)", mine.Aggregate},
		{"Compaction (P4)", mine.Compact},
		{"Pointer prefetching (P5)", mine.PrefetchPtr},
		{"Tiling (P6)", mine.Tile},
		{"Software prefetch (P7)", mine.Prefetch},
		{"SIMDization (P8)", mine.SIMD},
	}
	mark := func(a mine.Algorithm, p mine.Pattern) string {
		if mine.Applicable(a).Has(p) {
			return "yes"
		}
		return "-"
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.name,
			mark(mine.LCM, r.p), mark(mine.Eclat, r.p), mark(mine.FPGrowth, r.p))
	}
	tw.Flush()
}

// Table5 prints the simulated platform configurations (paper Table 5).
func Table5(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Parameter\tM1\tM2")
	m1, m2 := memsim.M1(), memsim.M2()
	row := func(name string, f func(memsim.Config) string) {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", name, f(m1), f(m2))
	}
	row("Model", func(c memsim.Config) string { return c.Name })
	row("L1 D-cache", func(c memsim.Config) string {
		return fmt.Sprintf("%dKB %d-way %dB lines", c.L1.SizeBytes>>10, c.L1.Assoc, c.L1.LineBytes)
	})
	row("L2 cache", func(c memsim.Config) string {
		return fmt.Sprintf("%dKB %d-way, %d cyc", c.L2.SizeBytes>>10, c.L2.Assoc, c.L2.Latency)
	})
	row("DTLB", func(c memsim.Config) string {
		return fmt.Sprintf("%d entries, %d cyc walk", c.TLB.Entries, c.TLB.MissPenalty)
	})
	row("Memory latency", func(c memsim.Config) string { return fmt.Sprintf("%d cyc", c.MemLatency) })
	row("Issue width", func(c memsim.Config) string { return fmt.Sprintf("%d", c.IssueWidth) })
	row("SIMD", func(c memsim.Config) string {
		return fmt.Sprintf("%d x 64-bit lanes, %.1f ops/cyc", c.SIMDLanes, c.SIMDOpsPerCycle)
	})
	tw.Flush()
}

// Table6 prints the generated datasets with their paper counterparts.
func Table6(w io.Writer, o Options) {
	o = o.withDefaults()
	fmt.Fprintf(w, "scale factor %.4g (paper sizes x scale), seed %d\n", o.Scale, o.Seed)
	for _, d := range o.Datasets() {
		fmt.Fprintln(w, d.Describe())
	}
}

// Figure2Row is one bar of the Figure 2 reproduction: the CPI of a hot
// kernel function on M1.
type Figure2Row struct {
	Function string
	CPI      float64
	L1Miss   uint64
	L2Miss   uint64
}

// Figure2 reproduces the per-function CPI profile of the paper's Figure 2
// on the simulated M1 using a DS1-like workload. The paper's claim to
// reproduce: LCM and FP-Growth hot functions are memory bound (CPI far
// above the 0.33 optimum), Eclat is computation bound (CPI near 1).
func Figure2(o Options) []Figure2Row {
	o = o.withDefaults()
	ds := o.Datasets()[0] // DS1
	cfg := memsim.M1()

	lcm := simkern.LCM(ds.DB, ds.Support, 0, cfg, simkern.LCMOptions{MaxColumns: o.MaxColumns})
	ec := simkern.Eclat(ds.DB, ds.Support, 0, cfg, simkern.EclatOptions{MaxVectors: o.MaxVectors})
	fp := simkern.FPGrowth(ds.DB, ds.Support, 0, cfg, simkern.FPGrowthOptions{})

	rows := []Figure2Row{}
	add := func(name string, p simkern.Phase) {
		rows = append(rows, Figure2Row{Function: name, CPI: p.CPI(), L1Miss: p.L1Miss, L2Miss: p.L2Miss})
	}
	add("LCM: CalcFreq", lcm.Phase("CalcFreq"))
	add("LCM: RmDupTrans", lcm.Phase("RmDupTrans"))
	add("Eclat: AndCount", ec.Phase("AndCount"))
	add("FP-Growth: Build", fp.Phase("Build"))
	add("FP-Growth: Traverse", fp.Phase("Traverse"))
	return rows
}

// PrintFigure2 renders Figure2 as text.
func PrintFigure2(w io.Writer, o Options) {
	fmt.Fprintln(w, "Figure 2: CPI of the most time consuming functions (simulated M1, optimum 0.33)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Function\tCPI\tL1 misses\tL2 misses")
	for _, r := range Figure2(o) {
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%d\n", r.Function, r.CPI, r.L1Miss, r.L2Miss)
	}
	tw.Flush()
}
