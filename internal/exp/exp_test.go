package exp

import (
	"bytes"
	"strings"
	"testing"

	"fpm/internal/memsim"
	"fpm/internal/mine"
)

// tinyOpts keeps the experiment workloads small enough for unit tests.
func tinyOpts() Options {
	return Options{Scale: 0.0015, Seed: 7, MaxColumns: 24, MaxVectors: 24}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	if out := buf.String(); !strings.Contains(out, "Tiling") || !strings.Contains(out, "Temporal locality") {
		t.Errorf("Table2 malformed:\n%s", out)
	}
	buf.Reset()
	Table3(&buf)
	if out := buf.String(); !strings.Contains(out, "bit vector") || !strings.Contains(out, "computation") {
		t.Errorf("Table3 malformed:\n%s", out)
	}
	buf.Reset()
	Table4(&buf)
	out := buf.String()
	for _, want := range []string{"Lexicographic", "SIMDization", "LCM", "Eclat", "FP-Growth"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q", want)
		}
	}
	buf.Reset()
	Table5(&buf)
	out = buf.String()
	for _, want := range []string{"Pentium D", "Athlon", "16KB", "64KB", "1024KB", "512KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	Table6(&buf, tinyOpts())
	out = buf.String()
	for _, want := range []string{"DS1", "DS2", "DS3", "DS4", "support"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 missing %q", want)
		}
	}
}

func TestFigure2ShapeAndRender(t *testing.T) {
	rows := Figure2(tinyOpts())
	if len(rows) != 5 {
		t.Fatalf("Figure2 rows = %d, want 5", len(rows))
	}
	byName := map[string]Figure2Row{}
	for _, r := range rows {
		if r.CPI <= 0 {
			t.Errorf("%s: CPI %.2f <= 0", r.Function, r.CPI)
		}
		byName[r.Function] = r
	}
	// The paper's Figure 2 shape: memory-bound kernels above Eclat.
	if !(byName["LCM: CalcFreq"].CPI > byName["Eclat: AndCount"].CPI) {
		t.Error("LCM CalcFreq should have higher CPI than Eclat")
	}
	if !(byName["FP-Growth: Traverse"].CPI > byName["Eclat: AndCount"].CPI) {
		t.Error("FP-Growth Traverse should have higher CPI than Eclat")
	}
	var buf bytes.Buffer
	PrintFigure2(&buf, tinyOpts())
	if !strings.Contains(buf.String(), "CalcFreq") {
		t.Error("PrintFigure2 missing CalcFreq row")
	}
}

func TestLeversMatchApplicability(t *testing.T) {
	for _, algo := range []mine.Algorithm{mine.LCM, mine.Eclat, mine.FPGrowth} {
		var union mine.PatternSet
		for _, l := range Levers(algo) {
			union |= l.Patterns
		}
		if union != mine.Applicable(algo) {
			t.Errorf("%s: levers %v != applicable %v", algo, union, mine.Applicable(algo))
		}
	}
	if Levers(mine.Apriori) != nil {
		t.Error("Apriori should have no levers")
	}
}

func TestFigure8PanelShape(t *testing.T) {
	p := Figure8Panel(mine.Eclat, memsim.M1(), tinyOpts())
	if len(p.Cells) != 4 {
		t.Fatalf("panel cells = %d, want 4 datasets", len(p.Cells))
	}
	for _, c := range p.Cells {
		if c.BaselineCycle <= 0 {
			t.Errorf("%s: zero baseline", c.Dataset)
		}
		for _, l := range append(p.Levers, "all", "best") {
			if c.Speedup[l] <= 0 {
				t.Errorf("%s: lever %s speedup %.2f", c.Dataset, l, c.Speedup[l])
			}
		}
		// "best" dominates every single lever and "all" by construction.
		for _, l := range append(p.Levers, "all") {
			if c.Speedup["best"] < c.Speedup[l]-1e-9 {
				t.Errorf("%s: best %.3f < %s %.3f", c.Dataset, c.Speedup["best"], l, c.Speedup[l])
			}
		}
		if c.BestCombo == "" {
			t.Errorf("%s: empty best combo", c.Dataset)
		}
	}
	var buf bytes.Buffer
	PrintPanel(&buf, p)
	if !strings.Contains(buf.String(), "eclat") || !strings.Contains(buf.String(), "best combo") {
		t.Error("PrintPanel output malformed")
	}
}

func TestFigure8SIMDPlatformContrast(t *testing.T) {
	o := tinyOpts()
	m1 := Figure8Panel(mine.Eclat, memsim.M1(), o)
	m2 := Figure8Panel(mine.Eclat, memsim.M2(), o)
	for i := range m1.Cells {
		s1 := m1.Cells[i].Speedup["SIMD"]
		s2 := m2.Cells[i].Speedup["SIMD"]
		if s1 <= 1 {
			t.Errorf("%s: SIMD on M1 should win (%.2f)", m1.Cells[i].Dataset, s1)
		}
		if s2 >= s1 {
			t.Errorf("%s: SIMD on M2 (%.2f) should trail M1 (%.2f)", m1.Cells[i].Dataset, s2, s1)
		}
	}
}

func TestAblationsRender(t *testing.T) {
	rows := Ablations(tinyOpts())
	if len(rows) == 0 {
		t.Fatal("no ablation rows")
	}
	sweeps := map[string]int{}
	for _, r := range rows {
		if r.Cycles <= 0 || r.Speedup <= 0 {
			t.Errorf("bad row %+v", r)
		}
		sweeps[r.Sweep]++
	}
	if len(sweeps) != 3 {
		t.Fatalf("expected 3 sweeps, got %v", sweeps)
	}
	var buf bytes.Buffer
	PrintAblations(&buf, tinyOpts())
	if !strings.Contains(buf.String(), "supernode") {
		t.Error("PrintAblations missing supernode sweep")
	}
}

func TestDatasetsStable(t *testing.T) {
	o := tinyOpts()
	a := o.Datasets()
	b := o.Datasets()
	for i := range a {
		if a[i].DB.Len() != b[i].DB.Len() || a[i].Support != b[i].Support {
			t.Fatalf("dataset %s not deterministic", a[i].Name)
		}
	}
}

func TestBaselineTimesStructure(t *testing.T) {
	rows := BaselineTimes(tinyOpts())
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Times) != 3 {
			t.Errorf("%s: %d kernels timed", r.Dataset, len(r.Times))
		}
		if r.Winner == "" {
			t.Errorf("%s: no winner", r.Dataset)
		}
		for algo, d := range r.Times {
			if d <= 0 {
				t.Errorf("%s/%s: nonpositive duration", r.Dataset, algo)
			}
			if d < r.Times[r.Winner] {
				t.Errorf("%s: winner %s is not fastest", r.Dataset, r.Winner)
			}
		}
	}
	var buf bytes.Buffer
	PrintBaselineTimes(&buf, tinyOpts())
	if !strings.Contains(buf.String(), "fastest") {
		t.Error("PrintBaselineTimes malformed")
	}
}

// TestShapeChecksStructure exercises the full claim-verification sweep at
// a tiny scale. Pass/fail of individual bands is only asserted at the
// default scale (see EXPERIMENTS.md); here the structure and the scale-
// independent claims are checked.
func TestShapeChecksStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 + Figure 8 sweep")
	}
	checks := ShapeChecks(tinyOpts())
	if len(checks) != 9 {
		t.Fatalf("got %d checks, want 9", len(checks))
	}
	byID := map[string]ShapeCheck{}
	for _, c := range checks {
		if c.ID == "" || c.Claim == "" || c.Expected == "" || c.Measured == "" {
			t.Errorf("incomplete check: %+v", c)
		}
		byID[c.ID] = c
	}
	// Scale-independent shapes must hold even on tiny workloads.
	for _, id := range []string{"S1", "S2"} {
		if !byID[id].Pass {
			t.Errorf("%s failed at tiny scale: %s", id, byID[id].Measured)
		}
	}
	var buf bytes.Buffer
	RenderShapeChecks(&buf, checks)
	if !strings.Contains(buf.String(), "S9") {
		t.Error("RenderShapeChecks malformed")
	}
}
