package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fpm/internal/dataset"
	"fpm/internal/memsim"
	"fpm/internal/mine"
	"fpm/internal/simkern"
)

// Lever is one bar group of Figure 8: a named pattern combination applied
// as a unit. The paper reports composite levers — "Reorg" covers the data
// structure patterns, "Pref" the prefetch patterns.
type Lever struct {
	Name     string
	Patterns mine.PatternSet
}

// Levers returns the Figure 8 bar set for each kernel, mirroring the
// paper's grouping (Lex / Reorg / Pref / Tile / SIMD).
func Levers(algo mine.Algorithm) []Lever {
	switch algo {
	case mine.LCM:
		return []Lever{
			{"Lex", mine.PatternSet(mine.Lex)},
			{"Reorg", mine.PatternSet(mine.Aggregate | mine.Compact)},
			{"Pref", mine.PatternSet(mine.Prefetch)},
			{"Tile", mine.PatternSet(mine.Tile)},
		}
	case mine.Eclat:
		return []Lever{
			{"Lex", mine.PatternSet(mine.Lex)},
			{"SIMD", mine.PatternSet(mine.SIMD)},
		}
	case mine.FPGrowth:
		return []Lever{
			{"Lex", mine.PatternSet(mine.Lex)},
			{"Reorg", mine.PatternSet(mine.Adapt | mine.Aggregate | mine.Compact)},
			{"Pref", mine.PatternSet(mine.PrefetchPtr | mine.Prefetch)},
		}
	default:
		return nil
	}
}

// Fig8Cell is one dataset's bar cluster in one Figure 8 panel.
type Fig8Cell struct {
	Dataset       string
	BaselineCycle float64
	// Speedup per lever name, plus "all" and "best".
	Speedup   map[string]float64
	BestCombo string
}

// Fig8Panel is one panel of Figure 8: one kernel on one machine across all
// datasets.
type Fig8Panel struct {
	Kernel  mine.Algorithm
	Machine string
	Levers  []string
	Cells   []Fig8Cell
}

// runSim dispatches one instrumented kernel run and returns total cycles.
func runSim(algo mine.Algorithm, db *dataset.DB, minsup int, ps mine.PatternSet, cfg memsim.Config, o Options) float64 {
	switch algo {
	case mine.LCM:
		return simkern.LCM(db, minsup, ps, cfg, simkern.LCMOptions{MaxColumns: o.MaxColumns}).TotalCycles()
	case mine.Eclat:
		return simkern.Eclat(db, minsup, ps, cfg, simkern.EclatOptions{MaxVectors: o.MaxVectors}).TotalCycles()
	case mine.FPGrowth:
		return simkern.FPGrowth(db, minsup, ps, cfg, simkern.FPGrowthOptions{}).TotalCycles()
	default:
		panic("exp: no instrumented kernel for " + string(algo))
	}
}

// Figure8Panel computes one panel: per dataset, the speedup of each lever
// alone, of all levers combined, and of the best lever combination found
// by sweeping the lever power set (the paper's "best" bar).
func Figure8Panel(algo mine.Algorithm, cfg memsim.Config, o Options) Fig8Panel {
	o = o.withDefaults()
	levers := Levers(algo)
	panel := Fig8Panel{Kernel: algo, Machine: cfg.Name}
	for _, l := range levers {
		panel.Levers = append(panel.Levers, l.Name)
	}
	for _, ds := range o.Datasets() {
		cell := Fig8Cell{Dataset: ds.Name, Speedup: map[string]float64{}}
		base := runSim(algo, ds.DB, ds.Support, 0, cfg, o)
		cell.BaselineCycle = base

		var all mine.PatternSet
		for _, l := range levers {
			cy := runSim(algo, ds.DB, ds.Support, l.Patterns, cfg, o)
			cell.Speedup[l.Name] = base / cy
			all |= l.Patterns
		}
		allCy := runSim(algo, ds.DB, ds.Support, all, cfg, o)
		cell.Speedup["all"] = base / allCy

		// Power-set sweep for "best". The lever sets are small (<=16
		// combos), matching the paper's selective application.
		bestCy := base
		bestName := "baseline"
		for massk := 1; massk < 1<<len(levers); massk++ {
			var ps mine.PatternSet
			name := ""
			for i, l := range levers {
				if massk&(1<<i) != 0 {
					ps |= l.Patterns
					if name != "" {
						name += "+"
					}
					name += l.Name
				}
			}
			var cy float64
			if ps == all {
				cy = allCy
			} else {
				cy = runSim(algo, ds.DB, ds.Support, ps, cfg, o)
			}
			if cy < bestCy {
				bestCy = cy
				bestName = name
			}
		}
		cell.Speedup["best"] = base / bestCy
		cell.BestCombo = bestName
		panel.Cells = append(panel.Cells, cell)
	}
	return panel
}

// Figure8 computes all six panels: three kernels × two machines.
func Figure8(o Options) []Fig8Panel {
	var out []Fig8Panel
	for _, algo := range []mine.Algorithm{mine.LCM, mine.Eclat, mine.FPGrowth} {
		for _, cfg := range Machines() {
			out = append(out, Figure8Panel(algo, cfg, o))
		}
	}
	return out
}

// PrintPanel renders one Figure 8 panel as a text table.
func PrintPanel(w io.Writer, p Fig8Panel) {
	fmt.Fprintf(w, "Figure 8 panel: %s on %s (speedup over baseline cycles)\n", p.Kernel, p.Machine)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Dataset")
	for _, l := range p.Levers {
		fmt.Fprintf(tw, "\t%s", l)
	}
	fmt.Fprintln(tw, "\tall\tbest\tbest combo")
	for _, c := range p.Cells {
		fmt.Fprint(tw, c.Dataset)
		for _, l := range p.Levers {
			fmt.Fprintf(tw, "\t%.2f", c.Speedup[l])
		}
		fmt.Fprintf(tw, "\t%.2f\t%.2f\t%s\n", c.Speedup["all"], c.Speedup["best"], c.BestCombo)
	}
	tw.Flush()
}

// PrintFigure8 renders every panel.
func PrintFigure8(w io.Writer, o Options) {
	for _, p := range Figure8(o) {
		PrintPanel(w, p)
		fmt.Fprintln(w)
	}
}
