// Package cancel bridges context.Context cancellation onto the one-check
// discipline the mining hot paths already follow for metrics and trace: a
// Flag is a single atomic bool the kernels poll at recursion boundaries
// (one predictable load per node, nil-safe so the disabled path costs one
// branch), and FromContext arms it from a context's Done channel without
// making any kernel, scheduler or partition loop select on a channel.
//
// The split matters because ctx.Done() is a channel receive — too heavy to
// poll inside a recursion that expands millions of nodes — while an atomic
// load is effectively free next to the work one node performs. One watcher
// goroutine per run converts the channel edge into the flag exactly once.
package cancel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Flag is a one-way cancellation latch. All methods are nil-safe: a nil
// *Flag is the disabled flag every call site nil-checks, so plumbing it
// through kernels and drivers costs nothing when no context is attached.
type Flag struct {
	fired atomic.Bool
	mu    sync.Mutex
	err   error
}

// New returns an armed-able flag not bound to any context; Set trips it.
// Drivers that already have a context should use FromContext instead.
func New() *Flag { return &Flag{} }

// Cancelled reports whether the flag has been tripped. This is the hot-path
// check: one nil test plus one atomic load.
func (f *Flag) Cancelled() bool { return f != nil && f.fired.Load() }

// Err returns the cancellation cause once the flag is tripped, else nil.
// For context-armed flags this is ctx.Err() — context.Canceled or
// context.DeadlineExceeded.
func (f *Flag) Err() error {
	if f == nil || !f.fired.Load() {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Set trips the flag with the given cause; the first cause wins and later
// calls are no-ops. Safe for concurrent use and a nil receiver.
func (f *Flag) Set(err error) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.fired.Store(true)
}

// FromContext returns a flag that trips when ctx is cancelled or times
// out, plus a stop function the caller must invoke when the run ends (it
// joins the watcher goroutine, so runs never leak goroutines; stop is
// idempotent). A nil context, or one that can never be cancelled
// (ctx.Done() == nil, e.g. context.Background()), yields a nil flag and a
// no-op stop — the zero-cost disabled path.
func FromContext(ctx context.Context) (*Flag, func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	f := &Flag{}
	// An already-cancelled context trips the flag synchronously: the watcher
	// goroutine may not be scheduled before a short run completes, and a run
	// submitted after its deadline must deterministically not start.
	if err := ctx.Err(); err != nil {
		f.Set(err)
		return f, func() {}
	}
	stopC := make(chan struct{})
	doneC := make(chan struct{})
	go func() {
		defer close(doneC)
		select {
		case <-ctx.Done():
			f.Set(ctx.Err())
		case <-stopC:
		}
	}()
	var once sync.Once
	return f, func() {
		once.Do(func() { close(stopC) })
		<-doneC
	}
}
