package mine

// Property is one of the performance dimensions a tuning pattern improves
// (the columns of the paper's Table 2).
type Property uint8

const (
	// SpatialLocality: more useful bytes per fetched cache line.
	SpatialLocality Property = 1 << iota
	// TemporalLocality: more reuse of resident lines.
	TemporalLocality
	// MemoryLatency: latency hidden by overlap.
	MemoryLatency
	// Computation: fewer or wider arithmetic operations.
	Computation
)

// Improves returns the properties the paper's Table 2 credits to a pattern.
func Improves(p Pattern) Property {
	switch p {
	case Lex:
		return SpatialLocality
	case Adapt:
		return SpatialLocality
	case Aggregate:
		return SpatialLocality | MemoryLatency
	case Compact:
		return SpatialLocality
	case PrefetchPtr, Prefetch:
		return MemoryLatency
	case Tile:
		return TemporalLocality
	case SIMD:
		return Computation
	default:
		return 0
	}
}

// Has reports whether the property set contains q.
func (s Property) Has(q Property) bool { return s&q != 0 }
