package mine

import "fpm/internal/dataset"

// TaskFunc is one stealable unit of mining work: a self-contained subtree
// closure that mines into the collector it is handed. The scheduler runs a
// task exactly once, on an arbitrary worker; c is that worker's private
// collector and sp is that worker's spawner, so the task may in turn offer
// its own subtrees. A task must not share mutable state with the recursion
// that spawned it.
type TaskFunc func(c Collector, sp Spawner) error

// Spawner is the scheduler-side hook a task-parallel driver hands to a
// Splitter kernel. Implementations must make Offer cheap when it declines:
// the kernel calls it once per candidate subtree on its hot recursion path.
type Spawner interface {
	// WouldSteal reports whether a subtree of the given estimated weight
	// would currently be accepted (the pool is starved and weight clears
	// the cutoff). It is the zero-allocation pre-check kernels gate task
	// construction on; a true result is advisory — the following Offer
	// may still decline.
	WouldSteal(weight int) bool
	// Offer proposes a subtree, whose remaining work is estimated at
	// weight (item occurrences in the subtree's projected database), as a
	// stealable task. If Offer returns true the scheduler has taken
	// ownership and will run task exactly once; the kernel must skip the
	// subtree locally. If it returns false the kernel recurses
	// sequentially. After cancellation Offer returns true without running
	// the task, so kernels unwind quickly without a separate check per
	// node.
	Offer(weight int, task TaskFunc) bool
	// Cancelled reports whether mining has been aborted (another task
	// returned an error). Kernels should poll it at recursion entry and
	// return promptly when it is set; results emitted after cancellation
	// are discarded by the scheduler.
	Cancelled() bool
}

// Splitter is implemented by kernels whose depth-first recursion can hand
// subtrees to a task-parallel scheduler. MineSplit behaves exactly like
// Mine — same result set, same per-call validation — except that at each
// recursion node the kernel may offer the node's subtree to sp instead of
// recursing; sp == nil must degrade to plain sequential mining. Collectors
// passed to MineSplit (and to spawned tasks) are single-goroutine from the
// kernel's perspective: the scheduler gives every worker its own.
type Splitter interface {
	Miner
	MineSplit(db *dataset.DB, minSupport int, c Collector, sp Spawner) error
}

// SubtreeWeight sums the lengths of a projected database's transactions —
// the work estimate spawn cutoffs compare against. Shared here so LCM-style
// horizontal kernels and the first-level driver agree on the unit (item
// occurrences, the same unit dataset.DB.ProjectedWeight reports).
func SubtreeWeight(tx [][]dataset.Item) int {
	w := 0
	for _, t := range tx {
		w += len(t)
	}
	return w
}
