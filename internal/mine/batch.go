package mine

import "fpm/internal/dataset"

// ShardCollector is a worker-local result buffer for task-parallel mining:
// itemsets are appended into a flat item arena (one slice append per
// itemset, no per-itemset allocation) and replayed or handed over wholesale
// when the shards are merged on a single goroutine. The zero value is ready
// to use. It is not safe for concurrent use — each worker owns one.
type ShardCollector struct {
	arena []dataset.Item // all items, back to back
	ends  []int          // ends[i] = end offset of itemset i in arena
	sups  []int          // sups[i] = support of itemset i
}

// Collect implements Collector.
func (s *ShardCollector) Collect(items []dataset.Item, support int) {
	s.arena = append(s.arena, items...)
	s.ends = append(s.ends, len(s.arena))
	s.sups = append(s.sups, support)
}

// Len returns the number of buffered itemsets.
func (s *ShardCollector) Len() int { return len(s.ends) }

// Set returns a view of the i-th buffered itemset and its support. The
// slice aliases the arena; callers must copy it if they retain it.
func (s *ShardCollector) Set(i int) ([]dataset.Item, int) {
	lo := 0
	if i > 0 {
		lo = s.ends[i-1]
	}
	return s.arena[lo:s.ends[i]], s.sups[i]
}

// TotalSupport sums the supports of the buffered itemsets.
func (s *ShardCollector) TotalSupport() int {
	t := 0
	for _, v := range s.sups {
		t += v
	}
	return t
}

// Emit replays the buffered itemsets into c in collection order. Item
// slices passed to c alias the arena, per the Collector contract.
func (s *ShardCollector) Emit(c Collector) {
	lo := 0
	for i, hi := range s.ends {
		c.Collect(s.arena[lo:hi], s.sups[i])
		lo = hi
	}
}

// Reset empties the shard, retaining capacity.
func (s *ShardCollector) Reset() {
	s.arena = s.arena[:0]
	s.ends = s.ends[:0]
	s.sups = s.sups[:0]
}

// BatchCollector is an optional Collector extension. A collector that
// implements it receives whole worker shards at merge time instead of one
// Collect call per itemset, skipping the per-itemset replay entirely.
// CollectBatch is invoked from a single goroutine, after all mining workers
// have finished — the single-goroutine guarantee of the Collector contract
// is unchanged; only the call granularity differs. The shard (and its
// arena) is owned by the caller and must not be retained.
type BatchCollector interface {
	Collector
	CollectBatch(shard *ShardCollector)
}

// CollectBatch implements BatchCollector: counting needs no replay at all.
func (c *CountCollector) CollectBatch(shard *ShardCollector) {
	c.N += shard.Len()
	c.TotalSupport += shard.TotalSupport()
}

// CollectBatch implements BatchCollector: the itemset count is known up
// front, so the Sets slice grows once per shard instead of amortised.
func (c *SliceCollector) CollectBatch(shard *ShardCollector) {
	if cap(c.Sets)-len(c.Sets) < shard.Len() {
		grown := make([]Itemset, len(c.Sets), len(c.Sets)+shard.Len())
		copy(grown, c.Sets)
		c.Sets = grown
	}
	shard.Emit(c)
}

// LessItems is the canonical itemset order (by size, then element-wise)
// used by deterministic merges and the CLI's output sort.
func LessItems(a, b []dataset.Item) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
