// Package mine defines the shared mining API: the pattern-flag vocabulary
// of the paper's Table 2/Table 4, result collectors, a brute-force
// reference miner, and canonical result sets used to cross-check every
// kernel variant against every other.
package mine

import (
	"fmt"
	"sort"
	"strings"

	"fpm/internal/dataset"
)

// Pattern is a bit flag identifying one ALSO tuning pattern (paper §3).
type Pattern uint16

const (
	// Lex is P1, lexicographic ordering of the initial database.
	Lex Pattern = 1 << iota
	// Adapt is P2, data structure adaptation (e.g. differential item-ID
	// encoding in FP-tree nodes).
	Adapt
	// Aggregate is P3, aggregation of linked nodes into cache-line-sized
	// supernodes.
	Aggregate
	// Compact is P4, compaction of scattered hot data (e.g. LCM frequency
	// counters) into contiguous memory.
	Compact
	// PrefetchPtr is P5, precomputed prefetch pointers.
	PrefetchPtr
	// Tile is P6/P6.1, tiling (sparse-representation tiling for LCM).
	Tile
	// Prefetch is P7/P7.1, software (wave-front) prefetching.
	Prefetch
	// SIMD is P8, SIMDization (word-parallel AND + computational popcount
	// in this reproduction).
	SIMD
)

// PatternSet is a combination of patterns applied together.
type PatternSet uint16

// Has reports whether the set contains p.
func (s PatternSet) Has(p Pattern) bool { return uint16(s)&uint16(p) != 0 }

// With returns the set extended with p.
func (s PatternSet) With(p Pattern) PatternSet { return s | PatternSet(p) }

// Without returns the set with p removed.
func (s PatternSet) Without(p Pattern) PatternSet { return s &^ PatternSet(p) }

var patternNames = []struct {
	p    Pattern
	name string
}{
	{Lex, "Lex"},
	{Adapt, "Adapt"},
	{Aggregate, "Aggregate"},
	{Compact, "Compact"},
	{PrefetchPtr, "PrefetchPtr"},
	{Tile, "Tile"},
	{Prefetch, "Prefetch"},
	{SIMD, "SIMD"},
}

// String renders the set as "Lex+Tile" etc.; the empty set is "baseline".
func (s PatternSet) String() string {
	if s == 0 {
		return "baseline"
	}
	var parts []string
	for _, pn := range patternNames {
		if s.Has(pn.p) {
			parts = append(parts, pn.name)
		}
	}
	return strings.Join(parts, "+")
}

// Patterns lists the individual patterns in the set.
func (s PatternSet) Patterns() []Pattern {
	var out []Pattern
	for _, pn := range patternNames {
		if s.Has(pn.p) {
			out = append(out, pn.p)
		}
	}
	return out
}

// Algorithm identifies one of the mining kernels under study.
type Algorithm string

// The three kernels the paper tunes (Table 3) plus the Apriori baseline it
// cites as the classic breadth-first alternative.
const (
	LCM      Algorithm = "lcm"
	Eclat    Algorithm = "eclat"
	FPGrowth Algorithm = "fpgrowth"
	Apriori  Algorithm = "apriori"
)

// Applicable returns the set of patterns the paper applies to each kernel
// (the "√" cells of Table 4).
func Applicable(a Algorithm) PatternSet {
	switch a {
	case LCM:
		return PatternSet(Lex | Aggregate | Compact | Tile | Prefetch)
	case Eclat:
		return PatternSet(Lex | SIMD)
	case FPGrowth:
		return PatternSet(Lex | Adapt | Aggregate | Compact | PrefetchPtr | Prefetch)
	default:
		return 0
	}
}

// Collector receives mined frequent itemsets. Implementations must copy
// the items slice if they retain it; miners reuse the buffer.
type Collector interface {
	Collect(items []dataset.Item, support int)
}

// CountCollector counts itemsets and sums supports without storing them.
type CountCollector struct {
	N            int // number of frequent itemsets
	TotalSupport int // sum of supports (a cheap checksum)
}

// Collect implements Collector.
func (c *CountCollector) Collect(items []dataset.Item, support int) {
	c.N++
	c.TotalSupport += support
}

// Itemset is a mined frequent itemset with its support.
type Itemset struct {
	Items   []dataset.Item
	Support int
}

// SliceCollector stores every mined itemset.
type SliceCollector struct {
	Sets []Itemset
}

// Collect implements Collector.
func (c *SliceCollector) Collect(items []dataset.Item, support int) {
	c.Sets = append(c.Sets, Itemset{Items: append([]dataset.Item(nil), items...), Support: support})
}

// Key canonicalises an itemset (sorted, comma-joined) for set comparison.
func Key(items []dataset.Item) string {
	s := append([]dataset.Item(nil), items...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	var b strings.Builder
	for i, it := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", it)
	}
	return b.String()
}

// ResultSet is a canonical map from itemset key to support, used to compare
// miner outputs irrespective of enumeration order.
type ResultSet map[string]int

// Collect implements Collector.
func (r ResultSet) Collect(items []dataset.Item, support int) {
	r[Key(items)] = support
}

// Equal reports whether two result sets contain exactly the same itemsets
// with the same supports.
func (r ResultSet) Equal(o ResultSet) bool {
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Diff returns a human-readable summary of up to max differences between
// two result sets, for test failure messages.
func (r ResultSet) Diff(o ResultSet, max int) string {
	var b strings.Builder
	n := 0
	for k, v := range r {
		if ov, ok := o[k]; !ok {
			fmt.Fprintf(&b, "only in left: {%s}=%d\n", k, v)
			n++
		} else if ov != v {
			fmt.Fprintf(&b, "support mismatch {%s}: %d vs %d\n", k, v, ov)
			n++
		}
		if n >= max {
			return b.String()
		}
	}
	for k, v := range o {
		if _, ok := r[k]; !ok {
			fmt.Fprintf(&b, "only in right: {%s}=%d\n", k, v)
			n++
		}
		if n >= max {
			break
		}
	}
	return b.String()
}

// Miner is the common interface implemented by every kernel. Mine
// enumerates all itemsets with support >= minSupport (minSupport >= 1) and
// reports them to c. The empty itemset is never reported. Implementations
// must not retain or mutate db.
type Miner interface {
	Mine(db *dataset.DB, minSupport int, c Collector) error
	Name() string
}

// ErrBadSupport is returned by miners when minSupport < 1.
type ErrBadSupport int

func (e ErrBadSupport) Error() string {
	return fmt.Sprintf("mine: minSupport must be >= 1, got %d", int(e))
}
