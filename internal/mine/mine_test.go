package mine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
)

func TestPatternSetOps(t *testing.T) {
	var s PatternSet
	s = s.With(Lex).With(Tile)
	if !s.Has(Lex) || !s.Has(Tile) || s.Has(SIMD) {
		t.Fatalf("With/Has wrong: %v", s)
	}
	s = s.Without(Lex)
	if s.Has(Lex) || !s.Has(Tile) {
		t.Fatalf("Without wrong: %v", s)
	}
}

func TestPatternSetString(t *testing.T) {
	if got := PatternSet(0).String(); got != "baseline" {
		t.Fatalf("empty set = %q", got)
	}
	s := PatternSet(Lex | SIMD)
	if got := s.String(); got != "Lex+SIMD" {
		t.Fatalf("String = %q, want Lex+SIMD", got)
	}
	if n := len(s.Patterns()); n != 2 {
		t.Fatalf("Patterns len = %d", n)
	}
}

// TestApplicableMatchesTable4 pins the applicability matrix to the paper's
// Table 4 (the "√" cells).
func TestApplicableMatchesTable4(t *testing.T) {
	cases := []struct {
		algo Algorithm
		want PatternSet
	}{
		{LCM, PatternSet(Lex | Aggregate | Compact | Tile | Prefetch)},
		{Eclat, PatternSet(Lex | SIMD)},
		{FPGrowth, PatternSet(Lex | Adapt | Aggregate | Compact | PrefetchPtr | Prefetch)},
		{Apriori, 0},
	}
	for _, c := range cases {
		if got := Applicable(c.algo); got != c.want {
			t.Errorf("Applicable(%s) = %v, want %v", c.algo, got, c.want)
		}
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Key([]dataset.Item{3, 1, 2})
	b := Key([]dataset.Item{2, 3, 1})
	if a != b || a != "1,2,3" {
		t.Fatalf("Key not canonical: %q vs %q", a, b)
	}
	if Key(nil) != "" {
		t.Fatalf("Key(nil) = %q", Key(nil))
	}
}

func TestCollectors(t *testing.T) {
	var cc CountCollector
	var sc SliceCollector
	rs := ResultSet{}
	buf := []dataset.Item{1, 2}
	for _, c := range []Collector{&cc, &sc, rs} {
		c.Collect(buf, 5)
	}
	// Mutating the buffer must not corrupt stored results.
	buf[0] = 9
	if cc.N != 1 || cc.TotalSupport != 5 {
		t.Fatalf("CountCollector: %+v", cc)
	}
	if len(sc.Sets) != 1 || sc.Sets[0].Items[0] != 1 || sc.Sets[0].Support != 5 {
		t.Fatalf("SliceCollector: %+v", sc.Sets)
	}
	if rs["1,2"] != 5 {
		t.Fatalf("ResultSet: %v", rs)
	}
}

func TestResultSetEqualAndDiff(t *testing.T) {
	a := ResultSet{"1": 2, "1,2": 1}
	b := ResultSet{"1": 2, "1,2": 1}
	if !a.Equal(b) {
		t.Fatal("equal sets compare unequal")
	}
	b["1,2"] = 9
	if a.Equal(b) {
		t.Fatal("unequal supports compare equal")
	}
	if d := a.Diff(b, 10); !strings.Contains(d, "support mismatch") {
		t.Fatalf("Diff = %q", d)
	}
	c := ResultSet{"1": 2}
	if a.Equal(c) || c.Equal(a) {
		t.Fatal("different sizes compare equal")
	}
	if d := a.Diff(c, 10); !strings.Contains(d, "only in left") {
		t.Fatalf("Diff = %q", d)
	}
}

// TestBruteForceHandWorked checks against a fully hand-computed lattice.
// DB: {0,1}, {0,1,2}, {0,2}, minsup 2.
// Supports: {0}=3 {1}=2 {2}=2 {0,1}=2 {0,2}=2 {1,2}=1 {0,1,2}=1.
func TestBruteForceHandWorked(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1, 2}, {0, 2}})
	rs := ResultSet{}
	if err := (BruteForce{}).Mine(db, 2, rs); err != nil {
		t.Fatal(err)
	}
	want := ResultSet{"0": 3, "1": 2, "2": 2, "0,1": 2, "0,2": 2}
	if !rs.Equal(want) {
		t.Fatalf("BruteForce = %v, want %v\n%s", rs, want, rs.Diff(want, 10))
	}
}

func TestBruteForceMinSupportOne(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0}, {1}})
	rs := ResultSet{}
	if err := (BruteForce{}).Mine(db, 1, rs); err != nil {
		t.Fatal(err)
	}
	want := ResultSet{"0": 1, "1": 1}
	if !rs.Equal(want) {
		t.Fatalf("got %v", rs)
	}
}

func TestBruteForceBadSupport(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0}})
	if err := (BruteForce{}).Mine(db, 0, ResultSet{}); err == nil {
		t.Fatal("minSupport 0 accepted")
	}
}

func TestBruteForceEmptyDB(t *testing.T) {
	rs := ResultSet{}
	if err := (BruteForce{}).Mine(dataset.New(nil), 1, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("empty DB mined %v", rs)
	}
}

// Property: every reported itemset's support equals its definitional
// support (number of subsumung transactions), and every subset of a
// frequent itemset is also reported (downward closure).
func TestBruteForceDefinitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 15, 7, 5)
		minsup := 1 + rng.Intn(4)
		var sc SliceCollector
		if err := (BruteForce{}).Mine(db, minsup, &sc); err != nil {
			return false
		}
		rs := ResultSet{}
		for _, s := range sc.Sets {
			rs[Key(s.Items)] = s.Support
		}
		for _, s := range sc.Sets {
			// Definitional support check.
			n := 0
			for _, tr := range db.Tx {
				if dataset.ContainsAll(tr, s.Items) {
					n++
				}
			}
			if n != s.Support || n < minsup {
				return false
			}
			// Downward closure: remove each item, subset must be present
			// with support >= this support.
			if len(s.Items) > 1 {
				for drop := range s.Items {
					sub := make([]dataset.Item, 0, len(s.Items)-1)
					sub = append(sub, s.Items[:drop]...)
					sub = append(sub, s.Items[drop+1:]...)
					if rs[Key(sub)] < s.Support {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSorted(t *testing.T) {
	got := intersectSorted([]int32{1, 3, 5, 7}, []int32{2, 3, 6, 7, 9})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("intersectSorted = %v", got)
	}
	if len(intersectSorted(nil, []int32{1})) != 0 {
		t.Fatal("intersect with nil should be empty")
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}

// TestImprovesMatchesTable2 pins the pattern-property matrix to the
// paper's Table 2.
func TestImprovesMatchesTable2(t *testing.T) {
	cases := []struct {
		p    Pattern
		want Property
	}{
		{Lex, SpatialLocality},
		{Adapt, SpatialLocality},
		{Aggregate, SpatialLocality | MemoryLatency},
		{Compact, SpatialLocality},
		{PrefetchPtr, MemoryLatency},
		{Prefetch, MemoryLatency},
		{Tile, TemporalLocality},
		{SIMD, Computation},
	}
	for _, c := range cases {
		if got := Improves(c.p); got != c.want {
			t.Errorf("Improves(%v) = %b, want %b", c.p, got, c.want)
		}
	}
	if Improves(Pattern(0)) != 0 {
		t.Error("unknown pattern should improve nothing")
	}
	if !SpatialLocality.Has(SpatialLocality) || SpatialLocality.Has(Computation) {
		t.Error("Property.Has wrong")
	}
}
