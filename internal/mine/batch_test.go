package mine

import (
	"testing"

	"fpm/internal/dataset"
)

func fillShard(s *ShardCollector) []Itemset {
	sets := []Itemset{
		{Items: []dataset.Item{3}, Support: 7},
		{Items: []dataset.Item{1, 2}, Support: 5},
		{Items: []dataset.Item{0, 2, 4}, Support: 2},
	}
	for _, set := range sets {
		s.Collect(set.Items, set.Support)
	}
	return sets
}

func TestShardCollectorRoundTrip(t *testing.T) {
	var s ShardCollector
	want := fillShard(&s)
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	if s.TotalSupport() != 14 {
		t.Fatalf("TotalSupport = %d, want 14", s.TotalSupport())
	}
	for i, w := range want {
		items, sup := s.Set(i)
		if sup != w.Support || Key(items) != Key(w.Items) {
			t.Fatalf("Set(%d) = %v/%d, want %v/%d", i, items, sup, w.Items, w.Support)
		}
	}
	var replay SliceCollector
	s.Emit(&replay)
	if len(replay.Sets) != len(want) {
		t.Fatalf("Emit replayed %d sets", len(replay.Sets))
	}
	for i, w := range want {
		if Key(replay.Sets[i].Items) != Key(w.Items) || replay.Sets[i].Support != w.Support {
			t.Fatalf("replayed set %d = %v, want %v", i, replay.Sets[i], w)
		}
	}
	s.Reset()
	if s.Len() != 0 || s.TotalSupport() != 0 {
		t.Fatal("Reset did not empty the shard")
	}
}

// TestBatchCollectorEquivalence asserts CollectBatch and per-itemset
// Collect agree for the built-in collectors.
func TestBatchCollectorEquivalence(t *testing.T) {
	var s ShardCollector
	want := fillShard(&s)

	var cc CountCollector
	cc.CollectBatch(&s)
	if cc.N != len(want) || cc.TotalSupport != 14 {
		t.Fatalf("CountCollector batch: N=%d total=%d", cc.N, cc.TotalSupport)
	}

	var sc SliceCollector
	sc.CollectBatch(&s)
	sc.CollectBatch(&s) // second shard appends
	if len(sc.Sets) != 2*len(want) {
		t.Fatalf("SliceCollector batch: %d sets", len(sc.Sets))
	}
	for i := range want {
		if Key(sc.Sets[i].Items) != Key(want[i].Items) {
			t.Fatalf("batch set %d = %v, want %v", i, sc.Sets[i], want[i])
		}
	}
}

// TestShardCollectorCopies asserts the arena copies the items slice — the
// Collector contract allows miners to reuse their emission buffer.
func TestShardCollectorCopies(t *testing.T) {
	var s ShardCollector
	buf := []dataset.Item{1, 2, 3}
	s.Collect(buf, 4)
	buf[0] = 99
	items, _ := s.Set(0)
	if items[0] != 1 {
		t.Fatal("shard aliases the caller's buffer")
	}
}

func TestLessItems(t *testing.T) {
	cases := []struct {
		a, b []dataset.Item
		want bool
	}{
		{[]dataset.Item{5}, []dataset.Item{1, 2}, true},
		{[]dataset.Item{1, 2}, []dataset.Item{5}, false},
		{[]dataset.Item{1, 2}, []dataset.Item{1, 3}, true},
		{[]dataset.Item{1, 3}, []dataset.Item{1, 3}, false},
	}
	for _, c := range cases {
		if got := LessItems(c.a, c.b); got != c.want {
			t.Fatalf("LessItems(%v, %v) = %v", c.a, c.b, got)
		}
	}
}
