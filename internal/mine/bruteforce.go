package mine

import (
	"fpm/internal/dataset"
	"fpm/internal/metrics"
)

// BruteForce enumerates the itemset lattice (paper Figure 1) depth-first
// with only the Apriori pruning property (an infrequent itemset has no
// frequent superset). It is deliberately simple — O(2^m) in the worst case —
// and serves as the correctness oracle for every optimized kernel on small
// inputs.
type BruteForce struct {
	// Metrics, when non-nil, receives run-time counters (one support
	// counting per occurrence-list intersection).
	Metrics *metrics.Recorder
}

// Name implements Miner.
func (BruteForce) Name() string { return "bruteforce" }

// Mine implements Miner.
func (bf BruteForce) Mine(db *dataset.DB, minSupport int, c Collector) error {
	if minSupport < 1 {
		return ErrBadSupport(minSupport)
	}
	// Work on transaction index lists: the support of set ∪ {e} is the
	// number of transactions in set's occurrence list containing e.
	occ := make([][]int32, db.NumItems)
	for ti, t := range db.Tx {
		for _, it := range t {
			occ[it] = append(occ[it], int32(ti))
		}
	}
	met := bf.Metrics.NewLocal()
	var (
		prefix []dataset.Item
		rec    func(start dataset.Item, rows []int32)
	)
	rec = func(start dataset.Item, rows []int32) {
		met.Node()
		for e := start; int(e) < db.NumItems; e++ {
			var sub []int32
			if rows == nil {
				sub = occ[e]
			} else {
				sub = intersectSorted(rows, occ[e])
			}
			met.Support(1)
			if len(sub) < minSupport {
				if len(sub) > 0 {
					met.Prune()
				}
				continue
			}
			prefix = append(prefix, e)
			met.Emit()
			c.Collect(prefix, len(sub))
			rec(e+1, sub)
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(0, nil)
	bf.Metrics.Flush(met)
	return nil
}

// intersectSorted returns the intersection of two increasing int32 slices.
func intersectSorted(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
