package hdr

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile is the reference: sorted[ceil(q*n)-1].
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// streams returns named value distributions that between them cover the
// exact linear region (< 64), the log-bucketed region, heavy tails and
// mixtures spanning six orders of magnitude.
func streams(rng *rand.Rand, n int) map[string][]int64 {
	out := map[string][]int64{}

	uni := make([]int64, n)
	for i := range uni {
		uni[i] = rng.Int63n(50 * int64(time.Millisecond))
	}
	out["uniform-0-50ms"] = uni

	tiny := make([]int64, n)
	for i := range tiny {
		tiny[i] = rng.Int63n(64) // all in the exact region
	}
	out["tiny-exact"] = tiny

	logn := make([]int64, n)
	for i := range logn {
		v := math.Exp(rng.NormFloat64()*1.5 + 13) // median ~0.44ms, long tail
		logn[i] = int64(v)
	}
	out["lognormal"] = logn

	bimodal := make([]int64, n)
	for i := range bimodal {
		if rng.Float64() < 0.95 {
			bimodal[i] = int64(time.Millisecond) + rng.Int63n(int64(time.Millisecond))
		} else {
			bimodal[i] = int64(time.Second) + rng.Int63n(int64(time.Second))
		}
	}
	out["bimodal-fast-slow"] = bimodal

	return out
}

// TestHistQuantileAccuracy compares the histogram's quantiles against the
// exact sorted-sample quantiles on randomized streams. The histogram
// reports a bucket upper bound, so the estimate must never understate the
// exact value and must overstate it by at most the bucket width (1/32
// relative, +1 of rounding).
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, vals := range streams(rng, 20000) {
		var h Hist
		for _, v := range vals {
			h.Record(v)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		if h.Count() != uint64(len(vals)) {
			t.Fatalf("%s: Count = %d, want %d", name, h.Count(), len(vals))
		}
		if got, want := h.Max(), sorted[len(sorted)-1]; got != want {
			t.Fatalf("%s: Max = %d, want exact %d", name, got, want)
		}
		if got, want := h.Min(), sorted[0]; got != want {
			t.Fatalf("%s: Min = %d, want exact %d", name, got, want)
		}
		var sum int64
		for _, v := range vals {
			sum += v
		}
		if got := h.Mean(); got != sum/int64(len(vals)) {
			t.Fatalf("%s: Mean = %d, want exact %d", name, got, sum/int64(len(vals)))
		}

		for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0} {
			got := h.Quantile(q)
			want := exactQuantile(sorted, q)
			if got < want {
				t.Errorf("%s: Quantile(%g) = %d understates exact %d", name, q, got, want)
			}
			// Bucket width bound: ≤ 1/32 relative error plus 1.
			if limit := want + want/32 + 1; got > limit {
				t.Errorf("%s: Quantile(%g) = %d overstates exact %d beyond bucket bound %d", name, q, got, want, limit)
			}
		}
	}
}

// TestHistMergeEqualsPooled pins the property the harness relies on:
// recording per-worker shards and merging them is bit-identical to
// recording the pooled stream into one histogram.
func TestHistMergeEqualsPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		workers := 1 + rng.Intn(8)
		shards := make([]Hist, workers)
		var pooled Hist
		n := 1000 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			var v int64
			switch rng.Intn(3) {
			case 0:
				v = rng.Int63n(64)
			case 1:
				v = rng.Int63n(int64(time.Second))
			default:
				v = int64(math.Exp(rng.NormFloat64()*2 + 10))
			}
			shards[rng.Intn(workers)].Record(v)
			pooled.Record(v)
		}
		var merged Hist
		for i := range shards {
			merged.Merge(&shards[i])
		}
		if merged != pooled {
			t.Fatalf("round %d (%d workers, %d samples): merged shards != pooled histogram", round, workers, n)
		}
		// The digest must agree too (exercises Summarize on both).
		if merged.Summarize() != pooled.Summarize() {
			t.Fatalf("round %d: merged summary %+v != pooled %+v", round, merged.Summarize(), pooled.Summarize())
		}
	}
}

// TestHistEdgeCases: empty histograms, single values, zero and negative
// values.
func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-int64(time.Second)) // clamps to 0
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: %+v", h.Summarize())
	}
	var one Hist
	one.Record(1234567)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := one.Quantile(q)
		if got < 1234567 || got > 1234567+1234567/32+1 {
			t.Fatalf("single-value Quantile(%g) = %d", q, got)
		}
	}
	var big Hist
	big.Record(math.MaxInt64) // must not overflow the bucket map
	if big.Max() != math.MaxInt64 {
		t.Fatalf("max-int64 record: Max = %d", big.Max())
	}
	if got := big.Quantile(0.5); got != math.MaxInt64 {
		t.Fatalf("max-int64 quantile clamps to observed max, got %d", got)
	}
}

// TestCumulativeLE pins the contract the Prometheus histogram renderer
// builds on: against the exact sorted stream, CumulativeLE(bound) must
// count every observation ≤ bound (never undercount — the conservative
// direction for `le` buckets) and may overcount only by observations
// within one bucket width (1/32 relative, +1) above the bound. It must be
// monotonically nondecreasing in the bound, and reach Count() at the
// observed max.
func TestCumulativeLE(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, vals := range streams(rng, 20000) {
		var h Hist
		for _, v := range vals {
			h.Record(v)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		// Bounds: a fixed export-style ladder plus random draws, so both
		// round bucket edges and interior points are exercised.
		bounds := []int64{-1, 0, 1, 63, 64, 1000, int64(time.Millisecond), int64(10 * time.Millisecond), int64(time.Second), sorted[len(sorted)-1], math.MaxInt64}
		for i := 0; i < 50; i++ {
			bounds = append(bounds, sorted[rng.Intn(len(sorted))], rng.Int63n(2*int64(time.Second)))
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

		var prev uint64
		for _, b := range bounds {
			got := h.CumulativeLE(b)
			if got < prev {
				t.Fatalf("%s: CumulativeLE not monotone: le(%d) = %d < previous %d", name, b, got, prev)
			}
			prev = got
			// Exact counts ≤ b and ≤ b + b/32 + 1 bracket the answer.
			exact := uint64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > b }))
			slackBound := b
			if b >= 0 && b < math.MaxInt64-b/32-1 {
				slackBound = b + b/32 + 1
			} else if b >= 0 {
				slackBound = math.MaxInt64
			}
			slack := uint64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > slackBound }))
			if got < exact {
				t.Fatalf("%s: CumulativeLE(%d) = %d undercounts exact %d", name, b, got, exact)
			}
			if got > slack {
				t.Fatalf("%s: CumulativeLE(%d) = %d exceeds slack bound %d (exact %d)", name, b, got, slack, exact)
			}
		}
		if got := h.CumulativeLE(h.Max()); got != h.Count() {
			t.Fatalf("%s: CumulativeLE(max) = %d, want Count %d", name, got, h.Count())
		}
		if got := h.CumulativeLE(math.MaxInt64); got != h.Count() {
			t.Fatalf("%s: CumulativeLE(MaxInt64) = %d, want Count %d", name, got, h.Count())
		}
	}
}
