// Package hdr is the repo's dependency-free HDR-style log-linear
// histogram: O(1) allocation-free Record, mergeable by bucket addition
// (merged per-worker shards are bit-identical to recording the pooled
// stream), and quantiles that never understate a recorded value and
// overstate it by at most 1/32 relative error. It started life inside the
// load harness (internal/loadgen) recording client-observed latencies;
// the serving layer now records into the same geometry server-side
// (per-job queue-wait / mine / e2e seconds and footprint bytes, exported
// as native Prometheus histograms), which is what lets the load harness
// cross-check the server's view of a run against its own within one
// shared error bound.
//
// Values are unit-agnostic int64s — nanoseconds for latencies, bytes for
// footprints; the caller owns the unit.
package hdr

import "math/bits"

// Bucket geometry: non-negative values are binned into power-of-two
// ranges ("exponents") split into 2^subBits linear sub-buckets, the
// classic HDR layout. With subBits = 6 every bucket's width is at most
// 1/32 of its lower bound, so any recorded value is reproduced with
// ≤ ~3.1% relative error — plenty for p99 gating — while Record stays
// O(1), allocation-free and mergeable by addition.
const (
	subBits  = 6
	subCount = 1 << subBits // sub-buckets per exponent
	expCount = 64 - subBits // exponents needed to cover uint64 range
)

// Hist is a fixed-size log-linear histogram. The zero value is ready to
// use. Not safe for concurrent use: record into one Hist per worker and
// merge after the run (Merge) — the property the tests pin (merged shards
// ≡ pooled stream) is what makes that discipline safe.
type Hist struct {
	counts [expCount * subCount]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket. Values below
// subCount land in the exact linear region (exponent 0); above it, the
// top subBits+1 significant bits select (exponent, sub-bucket).
func bucketIndex(u uint64) int {
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - subBits // ≥ 1
	sub := u >> uint(exp)          // in [subCount/2, subCount)
	return exp*subCount + int(sub)
}

// bucketUpper is the largest value mapping to bucket i; quantiles report
// this bound so they never understate a recorded value.
func bucketUpper(i int) int64 {
	exp := i / subCount
	sub := uint64(i % subCount)
	if exp == 0 {
		return int64(sub)
	}
	return int64((sub+1)<<uint(exp) - 1)
}

// Record adds one observation. Negative values clamp to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n }

// Sum returns the exact sum of recorded observations.
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the exact smallest recorded value (0 when empty).
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / int64(h.n)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) of the
// recorded stream, within the bucket relative error of the true sorted-
// sample quantile sorted[ceil(q*n)-1]. The bound is clamped to the exact
// observed extrema, so Quantile(0) == Min and Quantile(1) == Max.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	f := q * float64(h.n)
	rank := uint64(f)
	if float64(rank) < f {
		rank++ // ceil(q*n)
	}
	if rank == 0 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max // unreachable: counts sum to n
}

// CumulativeLE returns the number of recorded observations at or below
// bound, within the bucket error: every observation in a bucket whose
// range includes bound is counted, so the answer may include values up to
// 1/32 above it — the conservative direction for Prometheus `le` buckets
// (a latency is never reported as faster than it was). Monotonically
// nondecreasing in bound, and CumulativeLE(MaxInt64) == Count(), which is
// what makes a renderer's cumulative buckets well-formed.
func (h *Hist) CumulativeLE(bound int64) uint64 {
	if bound < 0 || h.n == 0 {
		return 0
	}
	top := bucketIndex(uint64(bound))
	var seen uint64
	for i := 0; i <= top; i++ {
		seen += h.counts[i]
	}
	return seen
}

// Merge adds other's observations into h. Merging per-worker histograms
// yields bit-identical counts to recording the pooled stream into one
// histogram — the property that makes per-worker recording safe.
func (h *Hist) Merge(other *Hist) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Summary is the JSON-facing digest of one histogram. Field names assume
// nanosecond values (the unit the repo's machine-readable latency
// artifacts use); for histograms in other units the *_ns fields are raw
// values and the *_ms conveniences are not meaningful.
type Summary struct {
	Count  uint64  `json:"count"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
	MeanNS int64   `json:"mean_ns"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summarize digests the histogram.
func (h *Hist) Summarize() Summary {
	s := Summary{
		Count:  h.n,
		P50NS:  h.Quantile(0.50),
		P95NS:  h.Quantile(0.95),
		P99NS:  h.Quantile(0.99),
		MaxNS:  h.Max(),
		MeanNS: h.Mean(),
	}
	s.P50MS = float64(s.P50NS) / 1e6
	s.P99MS = float64(s.P99NS) / 1e6
	return s
}
