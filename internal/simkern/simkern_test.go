package simkern

import (
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/memsim"
	"fpm/internal/mine"
)

// questDB returns a small but non-trivial Quest workload shared by the
// directional tests.
func questDB(t testing.TB) *dataset.DB {
	t.Helper()
	return gen.Quest(gen.QuestConfig{
		Transactions: 1500, AvgLen: 20, AvgPatternLen: 6,
		Items: 300, Patterns: 60, Seed: 5,
	})
}

// shuffledCorpus is a sparse, randomly ordered corpus (a mini DS4).
func shuffledCorpus(t testing.TB) *dataset.DB {
	t.Helper()
	return gen.Corpus(gen.CorpusConfig{
		Docs: 2000, Vocab: 3000, AvgLen: 8, ZipfS: 1.15, Shuffle: true, Seed: 8,
	})
}

func lcmCycles(db *dataset.DB, minsup int, ps mine.PatternSet, cfg memsim.Config) float64 {
	return LCM(db, minsup, ps, cfg, LCMOptions{MaxColumns: 40}).TotalCycles()
}

func TestLCMPhasesPresent(t *testing.T) {
	db := questDB(t)
	r := LCM(db, 30, 0, memsim.M1(), LCMOptions{MaxColumns: 10})
	if r.Phase("CalcFreq").Instructions == 0 {
		t.Fatal("CalcFreq phase empty")
	}
	if r.Phase("RmDupTrans").Instructions == 0 {
		t.Fatal("RmDupTrans phase empty")
	}
	if r.Phase("lexorder").Instructions != 0 {
		t.Fatal("baseline run charged a lexorder phase")
	}
	lex := LCM(db, 30, mine.PatternSet(mine.Lex), memsim.M1(), LCMOptions{MaxColumns: 10})
	if lex.Phase("lexorder").Instructions == 0 {
		t.Fatal("lex run did not charge preprocessing")
	}
}

func TestLCMDeterministic(t *testing.T) {
	db := questDB(t)
	a := lcmCycles(db, 30, 0, memsim.M1())
	b := lcmCycles(db, 30, 0, memsim.M1())
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// Directional checks: each LCM pattern must reduce simulated cycles on a
// suitable workload on M1, matching the sign of the paper's Figure 8(a).
func TestLCMPatternDirections(t *testing.T) {
	db := questDB(t)
	minsup := 30
	cfg := memsim.M1()
	base := lcmCycles(db, minsup, 0, cfg)
	for _, c := range []struct {
		name string
		ps   mine.PatternSet
	}{
		{"Tile", mine.PatternSet(mine.Tile)},
		{"Compact", mine.PatternSet(mine.Compact)},
		{"Prefetch", mine.PatternSet(mine.Prefetch)},
		{"Aggregate", mine.PatternSet(mine.Aggregate)},
	} {
		got := lcmCycles(db, minsup, c.ps, cfg)
		if got >= base {
			t.Errorf("%s: %.0f cycles >= baseline %.0f (speedup %.3f)", c.name, got, base, base/got)
		} else {
			t.Logf("%s speedup on M1: %.2f", c.name, base/got)
		}
	}
}

// The CalcFreq phase alone must benefit from lexicographic ordering (the
// preprocessing cost is accounted separately and amortises over the whole
// mining run in reality; the paper's Lex bars include it, which E5
// reproduces via TotalCycles on larger inputs).
func TestLCMLexImprovesCalcFreqPhase(t *testing.T) {
	db := shuffledCorpus(t)
	cfg := memsim.M1()
	base := LCM(db, 20, 0, cfg, LCMOptions{MaxColumns: 40}).Phase("CalcFreq")
	lex := LCM(db, 20, mine.PatternSet(mine.Lex), cfg, LCMOptions{MaxColumns: 40}).Phase("CalcFreq")
	if lex.Cycles >= base.Cycles {
		t.Fatalf("lex CalcFreq %.0f >= baseline %.0f", lex.Cycles, base.Cycles)
	}
	if lex.L1Miss >= base.L1Miss {
		t.Fatalf("lex did not reduce L1 misses: %d vs %d", lex.L1Miss, base.L1Miss)
	}
	t.Logf("CalcFreq lex speedup %.2f, L1 misses %d→%d", base.Cycles/lex.Cycles, base.L1Miss, lex.L1Miss)
}

func TestEclatSIMDDirectionAndPlatformContrast(t *testing.T) {
	db := questDB(t)
	minsup := 30
	run := func(ps mine.PatternSet, cfg memsim.Config) float64 {
		return Eclat(db, minsup, ps, cfg, EclatOptions{MaxVectors: 48}).TotalCycles()
	}
	baseM1 := run(0, memsim.M1())
	simdM1 := run(mine.PatternSet(mine.SIMD), memsim.M1())
	baseM2 := run(0, memsim.M2())
	simdM2 := run(mine.PatternSet(mine.SIMD), memsim.M2())
	spM1 := baseM1 / simdM1
	spM2 := baseM2 / simdM2
	if spM1 <= 1 {
		t.Fatalf("SIMD slows M1 down: %.3f", spM1)
	}
	if spM2 >= spM1 {
		t.Fatalf("SIMD speedup on M2 (%.2f) should be below M1's (%.2f) — K8 splits 128-bit ops", spM2, spM1)
	}
	t.Logf("SIMD speedup: M1 %.2f, M2 %.2f", spM1, spM2)
}

func TestEclatLexZeroEscapeDirection(t *testing.T) {
	db := questDB(t)
	cfg := memsim.M1()
	run := func(ps mine.PatternSet) Report {
		return Eclat(db, 30, ps, cfg, EclatOptions{MaxVectors: 48})
	}
	base := run(0)
	lex := run(mine.PatternSet(mine.Lex))
	// The AndCount phase must shrink (fewer words touched); the total
	// includes the reorder cost and may or may not win at this tiny scale.
	if lex.Phase("AndCount").Cycles >= base.Phase("AndCount").Cycles {
		t.Fatalf("0-escaping did not shrink AndCount: %.0f vs %.0f",
			lex.Phase("AndCount").Cycles, base.Phase("AndCount").Cycles)
	}
	t.Logf("AndCount: base %.0f, lex+0escape %.0f", base.Phase("AndCount").Cycles, lex.Phase("AndCount").Cycles)
}

func TestFPGrowthPatternDirections(t *testing.T) {
	db := questDB(t)
	minsup := 30
	cfg := memsim.M1()
	run := func(ps mine.PatternSet) Report {
		return FPGrowth(db, minsup, ps, cfg, FPGrowthOptions{})
	}
	base := run(0)
	baseC := base.TotalCycles()

	adapt := run(mine.PatternSet(mine.Adapt))
	if adapt.TotalCycles() >= baseC {
		t.Errorf("Adapt: %.0f >= %.0f", adapt.TotalCycles(), baseC)
	}
	reorg := run(mine.PatternSet(mine.Adapt | mine.Aggregate))
	if reorg.Phase("Traverse").Cycles >= base.Phase("Traverse").Cycles {
		t.Errorf("Aggregate did not speed up Traverse: %.0f vs %.0f",
			reorg.Phase("Traverse").Cycles, base.Phase("Traverse").Cycles)
	}
	pref := run(mine.PatternSet(mine.PrefetchPtr))
	if pref.Phase("Traverse").Cycles >= base.Phase("Traverse").Cycles {
		t.Errorf("PrefetchPtr did not speed up Traverse: %.0f vs %.0f",
			pref.Phase("Traverse").Cycles, base.Phase("Traverse").Cycles)
	}
	compact := run(mine.PatternSet(mine.Compact))
	if compact.Phase("Traverse").Cycles >= base.Phase("Traverse").Cycles {
		t.Errorf("Compact did not speed up Traverse: %.0f vs %.0f",
			compact.Phase("Traverse").Cycles, base.Phase("Traverse").Cycles)
	}
	t.Logf("FP-Growth M1 speedups: Adapt %.2f, Reorg(traverse) %.2f, Pref(traverse) %.2f, Compact(traverse) %.2f",
		baseC/adapt.TotalCycles(),
		base.Phase("Traverse").Cycles/reorg.Phase("Traverse").Cycles,
		base.Phase("Traverse").Cycles/pref.Phase("Traverse").Cycles,
		base.Phase("Traverse").Cycles/compact.Phase("Traverse").Cycles)
}

// Lex must be a net loss for FP-Growth when the database has very many
// transactions relative to the tree work — the paper's DS4 observation.
func TestFPGrowthLexUnprofitableOnManySmallTransactions(t *testing.T) {
	// A DS4-like shape: very many short, sparse, randomly ordered
	// transactions and a high threshold, so the tree work is small
	// relative to the transaction volume the reorder must sort.
	db := gen.Corpus(gen.CorpusConfig{
		Docs: 6000, Vocab: 8000, AvgLen: 6, ZipfS: 1.1, Shuffle: true, Seed: 8,
	})
	cfg := memsim.M1()
	base := FPGrowth(db, 120, 0, cfg, FPGrowthOptions{})
	lex := FPGrowth(db, 120, mine.PatternSet(mine.Lex), cfg, FPGrowthOptions{})
	if lex.TotalCycles() <= base.TotalCycles() {
		t.Fatalf("expected lex to lose on sparse many-transaction input: %.0f vs %.0f",
			lex.TotalCycles(), base.TotalCycles())
	}
	t.Logf("lex loss factor on DS4-like input: %.2f", lex.TotalCycles()/base.TotalCycles())
}

// Figure 2 shape: LCM and FP-Growth kernels are memory bound (high CPI);
// Eclat is computation bound (low CPI). Optimum CPI on the modelled
// 3-wide machines is 1/3.
func TestFigure2CPIShape(t *testing.T) {
	db := questDB(t)
	cfg := memsim.M1()
	lcm := LCM(db, 30, 0, cfg, LCMOptions{MaxColumns: 40})
	ec := Eclat(db, 30, 0, cfg, EclatOptions{MaxVectors: 48})
	fp := FPGrowth(db, 30, 0, cfg, FPGrowthOptions{})

	calcCPI := lcm.Phase("CalcFreq").CPI()
	travCPI := fp.Phase("Traverse").CPI()
	andCPI := ec.Phase("AndCount").CPI()
	t.Logf("CPI on M1: LCM CalcFreq %.2f, LCM RmDup %.2f, FP Traverse %.2f, Eclat AndCount %.2f",
		calcCPI, lcm.Phase("RmDupTrans").CPI(), travCPI, andCPI)
	if !(calcCPI > andCPI && travCPI > andCPI) {
		t.Fatalf("memory-bound kernels should have higher CPI than Eclat: %.2f/%.2f vs %.2f",
			calcCPI, travCPI, andCPI)
	}
	if andCPI > 1.5 {
		t.Fatalf("Eclat should be near the pipeline bound, got CPI %.2f", andCPI)
	}
}

func TestEmptyDatabase(t *testing.T) {
	empty := dataset.New(nil)
	if c := LCM(empty, 1, 0, memsim.M1(), LCMOptions{}).TotalCycles(); c != 0 {
		t.Fatalf("LCM on empty DB: %v cycles", c)
	}
	if c := Eclat(empty, 1, 0, memsim.M1(), EclatOptions{}).TotalCycles(); c != 0 {
		t.Fatalf("Eclat on empty DB: %v cycles", c)
	}
	if c := FPGrowth(empty, 1, 0, memsim.M1(), FPGrowthOptions{}).TotalCycles(); c != 0 {
		t.Fatalf("FP-Growth on empty DB: %v cycles", c)
	}
}
