package simkern

import (
	"fpm/internal/bitvec"
	"fpm/internal/dataset"
	"fpm/internal/memsim"
	"fpm/internal/mine"
)

// EclatOptions tune the instrumented Eclat run.
type EclatOptions struct {
	// MaxVectors bounds how many item vectors (most frequent first) form
	// the root equivalence class; 0 means 96.
	MaxVectors int
	// MaxNodes bounds the traced workload in enumeration nodes
	// (intersections performed); the depth-first recursion stops once the
	// budget is spent, so every pattern variant traces the same
	// enumeration prefix — and variants that do less work per node (P1
	// 0-escaping) show it. 0 means 40,000.
	MaxNodes int
}

// ecand is one itemset node in the traced Eclat DFS: its real occurrence
// vector, its simulated base address and its conservative 1-range.
type ecand struct {
	vec  *bitvec.Vector
	base uint64
	rng  bitvec.OneRange
}

// Eclat replays the instrumented Eclat kernel: the depth-first itemset
// search whose every step is a fused bit-vector AND + frequency count —
// where the original implementation spends 98% of its time (§4.2). The
// recursion operates on the real occurrence vectors computed from the
// input, so support pruning, 0-escaping ranges and table-lookup addresses
// are all authentic.
//
// Pattern flags:
//
//	Lex  — the initial database is lexicographically reordered (clustering
//	       the 1s) and 0-escaping restricts each AND to the intersection
//	       of the operands' 1-ranges; the reorder preprocessing cost is
//	       charged;
//	SIMD — the per-byte popcount table lookups are replaced by 128-bit
//	       vector ops issued at the machine's SIMD throughput.
func Eclat(db *dataset.DB, minSupport int, ps mine.PatternSet, cfg memsim.Config, opts EclatOptions) Report {
	r := Report{Kernel: "Eclat", Machine: cfg.Name, Patterns: ps}
	m := memsim.New(cfg)
	tr := newTracker(m, &r)

	work := prepare(m, tr, db, ps, 1)
	arena := memsim.NewArena()

	// Build the real vertical bit matrix for the head (most frequent)
	// items.
	freq := work.Frequencies()
	var items []dataset.Item
	for it := dataset.Item(0); int(it) < work.NumItems; it++ {
		if freq[it] >= minSupport {
			items = append(items, it)
		}
	}
	sortByFreqDesc(items, freq)
	maxV := opts.MaxVectors
	if maxV == 0 {
		maxV = 96
	}
	if len(items) > maxV {
		items = items[:maxV]
	}

	n := work.Len()
	roots := make([]ecand, len(items))
	pos := make(map[dataset.Item]int, len(items))
	for i, it := range items {
		roots[i].vec = bitvec.New(n)
		pos[it] = i
	}
	for ti, t := range work.Tx {
		for _, it := range t {
			if i, ok := pos[it]; ok {
				roots[i].vec.Set(ti)
			}
		}
	}
	words := 0
	if len(roots) > 0 {
		words = roots[0].vec.Words()
	}
	lex := ps.Has(mine.Lex)
	for i := range roots {
		roots[i].base = arena.Alloc(8*words, 64)
		if lex {
			roots[i].rng = roots[i].vec.Range()
		} else {
			roots[i].rng = bitvec.OneRange{Lo: 0, Hi: words}
		}
	}
	// The 8-bit popcount lookup table (256 one-byte entries, 4 cache
	// lines). It stays resident, which is why the baseline is computation-
	// rather than memory-bound — its indirect loads, not misses, are what
	// SIMDization removes.
	tableBase := arena.Alloc(256, 64)

	simd := ps.Has(mine.SIMD)
	lanes := cfg.SIMDLanes
	if lanes < 1 {
		lanes = 2
	}
	budget := opts.MaxNodes
	if budget == 0 {
		budget = 40_000
	}
	nodes := 0

	// Per-depth destination regions: real Eclat reuses per-level buffers,
	// so children at the same depth share addresses across siblings.
	depthBase := map[int][]uint64{}
	childBase := func(depth, k int) uint64 {
		for len(depthBase[depth]) <= k {
			depthBase[depth] = append(depthBase[depth], arena.Alloc(8*words, 64))
		}
		return depthBase[depth][k]
	}

	// traceAnd replays one fused AND+count over rng, reading real words
	// from a and b and writing dst; returns the true support.
	traceAnd := func(a, b *ecand, dst *bitvec.Vector, dstAddr uint64, rng bitvec.OneRange) int {
		if simd {
			for w := rng.Lo; w < rng.Hi; w += lanes {
				m.Load(a.base + uint64(8*w))
				m.Load(b.base + uint64(8*w))
				m.SIMDCompute(1) // packed AND
				m.Store(dstAddr + uint64(8*w))
				m.SIMDCompute(8) // packed SWAR popcount (pre-POPCNT era)
			}
			m.Compute(2)
		} else {
			for w := rng.Lo; w < rng.Hi; w++ {
				m.Load(a.base + uint64(8*w))
				m.Load(b.base + uint64(8*w))
				m.Compute(1) // AND
				m.Store(dstAddr + uint64(8*w))
				and := a.vec.Word(w) & b.vec.Word(w)
				for shift := 0; shift < 64; shift += 8 {
					m.Load(tableBase + ((and >> uint(shift)) & 0xff))
					m.Compute(1)
				}
			}
			m.Compute(2)
		}
		nodes++
		return bitvec.AndCountRange(dst, a.vec, b.vec, rng)
	}

	var rec func(class []ecand, depth int)
	rec = func(class []ecand, depth int) {
		for i := range class {
			if nodes >= budget {
				return
			}
			var next []ecand
			k := 0
			for j := i + 1; j < len(class); j++ {
				rng := class[i].rng.Intersect(class[j].rng)
				if rng.Empty() {
					continue
				}
				dst := bitvec.New(n)
				addr := childBase(depth, k)
				sup := traceAnd(&class[i], &class[j], dst, addr, rng)
				if sup >= minSupport {
					next = append(next, ecand{vec: dst, base: addr, rng: rng})
					k++
				}
			}
			if len(next) > 0 && nodes < budget {
				rec(next, depth+1)
			}
		}
	}

	tr.begin()
	rec(roots, 0)
	tr.end("AndCount")
	return r
}
