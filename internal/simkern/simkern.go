// Package simkern contains instrumented versions of the three mining
// kernels. Each function lays its data structures out in a simulated
// address space (memsim.Arena) exactly as the corresponding native kernel
// would — so the layout patterns P1/P3/P4 change real simulated addresses —
// and replays the kernel's memory access stream through a memsim.Machine.
//
// This is the substitution for the paper's hardware measurement (DESIGN.md
// §2): the phenomenon under study is the interaction of each kernel's
// access stream with the memory hierarchy of machines M1 and M2, and that
// stream is reproduced faithfully from the real data structures computed
// from the input database; only the measurement instrument (PMU → cache
// simulator) changes. The architecture-only patterns that pure Go cannot
// express natively — software/wave-front prefetch (P5, P7, P7.1) and
// SIMDization (P8) — become precise here: Prefetch events enter a
// non-blocking queue with latency overlap, and SIMD kernels issue vector
// ops at each machine's documented throughput.
package simkern

import (
	"fpm/internal/dataset"
	"fpm/internal/lexorder"
	"fpm/internal/memsim"
	"fpm/internal/metrics"
	"fpm/internal/mine"
)

// Phase is the cycle/instruction accounting for one kernel function — the
// granularity of the paper's Figure 2 (per-function CPI).
type Phase struct {
	Name         string
	Cycles       float64
	Instructions uint64
	L1Miss       uint64
	L2Miss       uint64
	TLBMiss      uint64
}

// CPI returns the phase's cycles per instruction.
func (p Phase) CPI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return p.Cycles / float64(p.Instructions)
}

// Report is the outcome of one instrumented kernel run.
type Report struct {
	Kernel   string
	Machine  string
	Patterns mine.PatternSet
	Phases   []Phase
}

// TotalCycles sums all phases.
func (r Report) TotalCycles() float64 {
	var c float64
	for _, p := range r.Phases {
		c += p.Cycles
	}
	return c
}

// Phase returns the named phase, or a zero Phase.
func (r Report) Phase(name string) Phase {
	for _, p := range r.Phases {
		if p.Name == name {
			return p
		}
	}
	return Phase{}
}

// Snapshot adapts the report onto the unified metrics schema, so simulated
// runs report through the same type (and JSON encoding) as native runs. The
// simulated cache/CPI counters populate the Sim section; wall time is
// meaningless for a simulation and stays zero.
func (r Report) Snapshot() metrics.Snapshot {
	sim := &metrics.SimStats{Machine: r.Machine}
	for _, p := range r.Phases {
		sim.Cycles += p.Cycles
		sim.Instructions += p.Instructions
		sim.L1Miss += p.L1Miss
		sim.L2Miss += p.L2Miss
		sim.TLBMiss += p.TLBMiss
		sim.Phases = append(sim.Phases, metrics.SimPhase{
			Name:         p.Name,
			Cycles:       p.Cycles,
			Instructions: p.Instructions,
			CPI:          p.CPI(),
			L1Miss:       p.L1Miss,
			L2Miss:       p.L2Miss,
			TLBMiss:      p.TLBMiss,
		})
	}
	if sim.Instructions > 0 {
		sim.CPI = sim.Cycles / float64(sim.Instructions)
	}
	return metrics.Snapshot{
		SchemaVersion: metrics.SnapshotSchemaVersion,
		Kernel:        r.Kernel + "(" + r.Patterns.String() + ")",
		Sim:           sim,
	}
}

// tracker snapshots machine counters around a phase.
type tracker struct {
	m      *memsim.Machine
	report *Report
	c0     float64
	s0     memsim.Stats
}

func newTracker(m *memsim.Machine, r *Report) *tracker {
	return &tracker{m: m, report: r}
}

func (t *tracker) begin() {
	t.c0 = t.m.Cycles()
	t.s0 = t.m.Stats()
}

func (t *tracker) end(name string) {
	s := t.m.Stats()
	t.report.Phases = append(t.report.Phases, Phase{
		Name:         name,
		Cycles:       t.m.Cycles() - t.c0,
		Instructions: s.Instructions() - t.s0.Instructions(),
		L1Miss:       s.L1Miss - t.s0.L1Miss,
		L2Miss:       s.L2Miss - t.s0.L2Miss,
		TLBMiss:      s.TLBMiss - t.s0.TLBMiss,
	})
}

// layout is the simulated placement of a horizontal database: one items
// array per transaction, headers implicit (the row address doubles as the
// header the occ columns point to).
type layout struct {
	rowAddr []uint64 // base address of each transaction's item array
	rowLen  []int    // item count per row
}

// placeDB lays the database out in the arena in transaction order: 4 bytes
// per item, rows back to back. This mirrors the array-based horizontal
// representation of LCM; the transaction order (and hence P1) determines
// which rows share lines and pages.
func placeDB(a *memsim.Arena, db *dataset.DB) *layout {
	l := &layout{
		rowAddr: make([]uint64, len(db.Tx)),
		rowLen:  make([]int, len(db.Tx)),
	}
	for i, t := range db.Tx {
		size := 4 * len(t)
		if size == 0 {
			size = 4
		}
		l.rowAddr[i] = a.Alloc(size, 4)
		l.rowLen[i] = len(t)
	}
	return l
}

// simulateLexCost charges the preprocessing cost of P1 on machine m: one
// counting scan, a merge sort of the transactions (log2(n) streaming
// passes over the whole database — merge sort reads and writes
// sequentially, so each pass is bandwidth- not latency-bound), and a final
// rewrite. The cost is Θ(n·log n) in transaction volume, which is why it
// overwhelms the locality benefit when the transaction count is huge — the
// paper's observation that "lexicographic ordering is not performing well
// in FP-Growth for DS4, because the data set contains too many
// transactions".
// fraction is the share of the full mining workload the kernel trace
// covers (1 when untruncated); the one-time preprocessing is charged
// pro-rata so truncated traces keep an honest preprocessing:kernel ratio.
func simulateLexCost(m *memsim.Machine, l *layout, fraction float64) {
	n := len(l.rowAddr)
	if n == 0 {
		return
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	totalBytes := 0
	for i := range l.rowAddr {
		totalBytes += 4 * l.rowLen[i]
	}
	base := l.rowAddr[0]
	span := int(float64(totalBytes) * fraction)
	rows := int(float64(n) * fraction)
	if span < 64 {
		span = 64
	}
	if rows < 1 {
		rows = 1
	}
	// Counting scan: stream every row once, one compare per item.
	m.StreamLoadRange(base, span)
	m.Compute(span / 4)
	// Merge passes: each pass streams the database in and out and does one
	// head comparison per row merged.
	log2 := 0
	for v := n; v > 1; v >>= 1 {
		log2++
	}
	scratch := base + uint64(totalBytes)
	for pass := 0; pass < log2; pass++ {
		m.StreamLoadRange(base, span)
		m.StreamStoreRange(scratch, span)
		// Each row merged costs a comparison: a call, a length check and
		// a short item-by-item loop.
		m.Compute(8 * rows)
	}
}

// prepare applies P1 to the database if requested and returns the working
// copy; the lex preprocessing cycles are charged to machine m under the
// "lexorder" phase via the tracker.
func prepare(m *memsim.Machine, t *tracker, db *dataset.DB, ps mine.PatternSet, fraction float64) *dataset.DB {
	if !ps.Has(mine.Lex) {
		return db
	}
	t.begin()
	// Cost is charged against the *input* layout (a scratch arena).
	scratch := memsim.NewArena()
	simulateLexCost(m, placeDB(scratch, db), fraction)
	t.end("lexorder")
	work, _ := lexorder.Apply(db)
	return work
}
