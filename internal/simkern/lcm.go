package simkern

import (
	"fpm/internal/dataset"
	"fpm/internal/memsim"
	"fpm/internal/mine"
)

// LCMOptions tune the instrumented LCM run.
type LCMOptions struct {
	// MaxColumns bounds how many occ columns (most frequent first) the
	// CalcFreq phase replays; 0 means all frequent items. The paper's
	// CalcFreq is invoked for every column; bounding keeps trace sizes
	// proportional for large scale factors without changing the relative
	// pattern effects.
	MaxColumns int
	// TileRows overrides the tile height (transaction rows per tile) when
	// the Tile pattern is set; 0 derives it from the machine's L1 size.
	TileRows int
	// PrefetchDist is the wave-front prefetch look-ahead; 0 means 8.
	PrefetchDist int
	// Rounds repeats the kernel phases, standing in for the depth-first
	// recursion's repeated traversals of (projected) databases that
	// inherit the initial layout; one-time costs such as the P1 reorder
	// amortise over them. 0 means 3.
	Rounds int
}

// LCM replays the instrumented LCM kernel — the CalcFreq occ-column
// traversal and the RmDupTrans duplicate merge over the initial database —
// on the given machine configuration, honouring the P1/P3/P4/P6.1/P7.1
// pattern flags.
func LCM(db *dataset.DB, minSupport int, ps mine.PatternSet, cfg memsim.Config, opts LCMOptions) Report {
	r := Report{Kernel: "LCM", Machine: cfg.Name, Patterns: ps}
	m := memsim.New(cfg)
	tr := newTracker(m, &r)

	// The traced-workload fraction (for pro-rata preprocessing cost)
	// depends on how many frequent columns the trace keeps.
	fraction := 1.0
	{
		freq := db.Frequencies()
		nf := 0
		for _, f := range freq {
			if f >= minSupport {
				nf++
			}
		}
		if opts.MaxColumns > 0 && nf > opts.MaxColumns {
			fraction = float64(opts.MaxColumns) / float64(nf)
		}
	}
	work := prepare(m, tr, db, ps, fraction)
	arena := memsim.NewArena()
	lay := placeDB(arena, work)

	// Frequent items and their occ columns (row indices).
	freq := work.Frequencies()
	var items []dataset.Item
	for it := dataset.Item(0); int(it) < work.NumItems; it++ {
		if freq[it] >= minSupport {
			items = append(items, it)
		}
	}
	// Process the most frequent columns first (they dominate cost), so a
	// MaxColumns bound keeps the most representative work.
	sortByFreqDesc(items, freq)
	if opts.MaxColumns > 0 && len(items) > opts.MaxColumns {
		items = items[:opts.MaxColumns]
	}

	occ := make(map[dataset.Item][]int32, len(items))
	inSet := make([]bool, work.NumItems)
	for _, it := range items {
		inSet[it] = true
	}
	for ti, t := range work.Tx {
		for _, it := range t {
			if inSet[it] {
				occ[it] = append(occ[it], int32(ti))
			}
		}
	}

	// Place the OccArray: per column a header (the paper's per-column
	// struct, which in the baseline also hosts that column's frequency
	// counter) followed by the pointer array.
	colBase := make(map[dataset.Item]uint64, len(items))
	cntAddr := make([]uint64, work.NumItems)
	if ps.Has(mine.Compact) {
		// P4: all frequency counters compacted into one contiguous block
		// (a handful of cache lines for the whole alphabet).
		base := arena.Alloc(4*work.NumItems, 64)
		for it := range cntAddr {
			cntAddr[it] = base + uint64(4*it)
		}
		for _, it := range items {
			arena.Alloc(16, 8) // column header
			colBase[it] = arena.Alloc(8*len(occ[it]), 8)
		}
	} else {
		// Baseline: every item's counter lives inside its 16-byte column
		// descriptor ("structured with the OccArray"), so CalcFreq's
		// counter updates touch 4x as many cache lines as the compacted
		// layout and share them with cold descriptor fields.
		descBase := arena.Alloc(16*work.NumItems, 64)
		for it := dataset.Item(0); int(it) < work.NumItems; it++ {
			cntAddr[it] = descBase + uint64(16*int(it))
		}
		for _, it := range items {
			colBase[it] = arena.Alloc(8*len(occ[it]), 8)
		}
	}

	// visitRow replays the inner CalcFreq work for one occ entry: follow
	// the row pointer, scan the row's items, bump each item's counter.
	visitRow := func(ti int32) {
		base := lay.rowAddr[ti]
		n := lay.rowLen[ti]
		for k := 0; k < n; k++ {
			m.Load(base + uint64(4*k))
			// The counter bump is a single read-modify-write access.
			m.Load(cntAddr[work.Tx[ti][k]])
			m.Compute(1)
		}
	}

	rounds := opts.Rounds
	if rounds == 0 {
		rounds = 3
	}
	tr.begin()
	for round := 0; round < rounds; round++ {
		runCalcFreq(m, ps, work, lay, items, occ, colBase, cntAddr, cfg, opts, visitRow)
	}
	tr.end("CalcFreq")

	rd := newRmDupSim(work, lay, arena, ps)
	tr.begin()
	for round := 0; round < rounds; round++ {
		rd.run(m)
	}
	tr.end("RmDupTrans")
	return r
}

// runCalcFreq replays one full CalcFreq sweep over every tracked column.
func runCalcFreq(m *memsim.Machine, ps mine.PatternSet, work *dataset.DB, lay *layout,
	items []dataset.Item, occ map[dataset.Item][]int32, colBase map[dataset.Item]uint64,
	cntAddr []uint64, cfg memsim.Config, opts LCMOptions, visitRow func(int32)) {
	dist := opts.PrefetchDist
	if dist == 0 {
		dist = 8
	}
	prefetch := ps.Has(mine.Prefetch)
	if ps.Has(mine.Tile) {
		// P6.1: outer loop over transaction-offset tiles, inner loop over
		// columns restricted to the tile — rows are reused across all
		// columns while they are cache resident.
		rows := opts.TileRows
		if rows == 0 {
			avg := 1
			if len(work.Tx) > 0 {
				total := 0
				for _, t := range work.Tx {
					total += len(t)
				}
				avg = total/len(work.Tx) + 1
			}
			// Half the L1 for the tile's rows; the rest stays for
			// counters, occ entries and the tile's write traffic.
			rows = cfg.L1.SizeBytes / 2 / (4 * avg)
			if rows < 16 {
				rows = 16
			}
		}
		cursor := make(map[dataset.Item]int, len(items))
		for lo := 0; lo < len(work.Tx); lo += rows {
			hi := lo + rows
			for _, e := range items {
				col := occ[e]
				cur := cursor[e]
				for cur < len(col) && int(col[cur]) < hi {
					m.Load(colBase[e] + uint64(8*cur))
					if prefetch && cur+dist < len(col) && int(col[cur+dist]) < hi {
						m.Prefetch(colBase[e] + uint64(8*(cur+dist)))
						m.Prefetch(lay.rowAddr[col[cur+dist]])
					}
					visitRow(col[cur])
					cur++
				}
				cursor[e] = cur
			}
		}
	} else {
		// Baseline: one full occ-column traversal per item; in the worst
		// case the whole database is rescanned per column with little
		// cache reuse.
		for _, e := range items {
			col := occ[e]
			for i, ti := range col {
				m.Load(colBase[e] + uint64(8*i))
				if prefetch && i+dist < len(col) {
					// P7.1 wave-front: prefetch both the occ entries and
					// the transaction headers a few lists ahead.
					m.Prefetch(colBase[e] + uint64(8*(i+dist)))
					m.Prefetch(lay.rowAddr[col[i+dist]])
				}
				visitRow(ti)
			}
		}
	}
}

// rmDupSim precomputes the RmDupTrans bucket layout and replays the merge
// pass over it. The bucket (radix-style) sort uses far fewer buckets than
// transactions, as the original code does, so buckets hold multi-entry
// lists — the linked structure P3 aggregation targets.
type rmDupSim struct {
	lay      *layout
	headBase uint64
	// For each transaction, the precomputed probe sequence (addresses of
	// the chain entries inspected plus the row heads compared) and the
	// final write addresses.
	steps []rmDupStep
}

type rmDupStep struct {
	ti       int32
	hash     uint32
	probes   []rmDupProbe
	writeTo  uint64 // node/slot stored on insert, or the merged entry
	isInsert bool
}

type rmDupProbe struct {
	nodeAddr uint64
	rowAddr  uint64
}

func newRmDupSim(work *dataset.DB, lay *layout, arena *memsim.Arena, ps mine.PatternSet) *rmDupSim {
	n := len(work.Tx)
	sim := &rmDupSim{lay: lay}
	if n == 0 {
		return sim
	}
	nb := 1
	for nb < n/8 {
		nb <<= 1
	}
	if nb < 64 {
		nb = 64
	}
	if nb > 4096 {
		nb = 4096
	}
	mask := uint32(nb - 1)
	sim.headBase = arena.Alloc(8*nb, 8)

	type entry struct {
		ti   int32
		addr uint64
	}
	buckets := make([][]entry, nb)

	agg := ps.Has(mine.Aggregate)
	var nodeBase uint64
	if !agg {
		// Baseline: nodes allocated in insertion (row) order, so a
		// bucket's chain is scattered across the node region.
		nodeBase = arena.Alloc(16*n, 16)
	}
	hashes := make([]uint32, n)
	for ti, t := range work.Tx {
		hashes[ti] = hashItems(t) & mask
	}
	var chunkBase []uint64
	if agg {
		// Aggregated: per-bucket contiguous chunks (the layout a
		// chunked-append implementation converges to).
		sizes := make([]int, nb)
		for _, h := range hashes {
			sizes[h]++
		}
		chunkBase = make([]uint64, nb)
		for b, sz := range sizes {
			if sz > 0 {
				chunkBase[b] = arena.Alloc(16*sz, 16)
			}
		}
	}

	for ti := 0; ti < n; ti++ {
		h := hashes[ti]
		st := rmDupStep{ti: int32(ti), hash: h}
		dup := false
		for _, e := range buckets[h] {
			st.probes = append(st.probes, rmDupProbe{nodeAddr: e.addr, rowAddr: lay.rowAddr[e.ti]})
			if eqRows(work.Tx[e.ti], work.Tx[ti]) {
				st.writeTo = e.addr
				dup = true
				break
			}
		}
		if !dup {
			var addr uint64
			if agg {
				addr = chunkBase[h] + uint64(16*len(buckets[h]))
			} else {
				addr = nodeBase + uint64(16*ti)
			}
			st.writeTo = addr
			st.isInsert = true
			buckets[h] = append(buckets[h], entry{ti: int32(ti), addr: addr})
		}
		sim.steps = append(sim.steps, st)
	}
	return sim
}

// run replays one RmDupTrans pass.
func (sim *rmDupSim) run(m *memsim.Machine) {
	for _, st := range sim.steps {
		// Hash the row (streams its items).
		m.LoadRange(sim.lay.rowAddr[st.ti], 4*sim.lay.rowLen[st.ti])
		m.Compute(sim.lay.rowLen[st.ti])
		m.Load(sim.headBase + uint64(8*st.hash))
		for _, p := range st.probes {
			m.Load(p.nodeAddr)
			m.Load(p.rowAddr)
			m.Load(sim.lay.rowAddr[st.ti])
			m.Compute(2)
		}
		m.Store(st.writeTo)
		if st.isInsert {
			m.Store(sim.headBase + uint64(8*st.hash))
		}
	}
}

func hashItems(t []dataset.Item) uint32 {
	h := uint32(2166136261)
	for _, it := range t {
		h ^= uint32(it)
		h *= 16777619
	}
	return h
}

func eqRows(a, b []dataset.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortByFreqDesc sorts items by decreasing frequency (stable on item id).
func sortByFreqDesc(items []dataset.Item, freq []int) {
	for i := 1; i < len(items); i++ {
		v := items[i]
		j := i - 1
		for j >= 0 && (freq[items[j]] < freq[v] || (freq[items[j]] == freq[v] && items[j] > v)) {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = v
	}
}
