package simkern

import (
	"fpm/internal/dataset"
	"fpm/internal/lexorder"
	"fpm/internal/memsim"
	"fpm/internal/mine"
)

// FPGrowthOptions tune the instrumented FP-Growth run.
type FPGrowthOptions struct {
	// AggSpan is the supernode span for P3; 0 means 4.
	AggSpan int
	// Rounds repeats the traversal phase, standing in for the repeated
	// conditional-tree mining passes of the full recursion; one-time
	// costs (P1 reorder, tree build, P3 segment construction) amortise
	// over them. 0 means 3.
	Rounds int
}

// fpNode mirrors the structural FP-tree: real links plus the node's
// simulated address. Node addresses come from the arena in allocation
// order, so the insertion sequence (and therefore P1) determines layout.
type fpNode struct {
	item     dataset.Item
	parent   int32
	next     int32 // node-link
	children map[dataset.Item]int32
	addr     uint64
	skip     int32  // P3: index of the ancestor past the inline segment
	segLen   int    // P3: number of inline ancestor items
	segAddr  uint64 // P3: address of the inline segment
}

// FPGrowth replays the instrumented FP-Growth kernel: the FP-tree build
// (one insertion walk per transaction) and the mining traversal (for each
// item, follow the node-links and walk every node's path to the root —
// the dominant, memory-bound access pattern of §4.3).
//
// Pattern flags:
//
//	Lex         — transactions inserted in lexicographic order (shared
//	              prefixes stay cached; parent/child allocated adjacently);
//	              preprocessing cost charged;
//	Adapt       — 24-byte arena nodes instead of 48-byte pointer nodes;
//	Aggregate   — supernodes: AggSpan-1 ancestor items inlined next to
//	              each node plus a skip pointer (requires Adapt's arena);
//	Compact     — conditional-pattern-base paths written to one contiguous
//	              buffer instead of scattered per-path allocations;
//	PrefetchPtr/
//	Prefetch    — the next node-link (a precomputed prefetch pointer) is
//	              prefetched while the current path is walked.
func FPGrowth(db *dataset.DB, minSupport int, ps mine.PatternSet, cfg memsim.Config, opts FPGrowthOptions) Report {
	r := Report{Kernel: "FP-Growth", Machine: cfg.Name, Patterns: ps}
	m := memsim.New(cfg)
	tr := newTracker(m, &r)

	// FP-trees need the frequency relabeling regardless; Lex adds the
	// transaction reordering and pays its preprocessing cost.
	var work *dataset.DB
	if ps.Has(mine.Lex) {
		tr.begin()
		scratch := memsim.NewArena()
		simulateLexCost(m, placeDB(scratch, db), 1)
		tr.end("lexorder")
		work, _ = lexorder.Apply(db)
	} else {
		work, _ = lexorder.ApplyRelabelOnly(db)
	}

	freq := work.Frequencies()
	arena := memsim.NewArena()

	nodeSize := 48 // pointer-linked heap node
	if ps.Has(mine.Adapt) {
		nodeSize = 24 // index-linked arena node
	}
	span := opts.AggSpan
	if span == 0 {
		span = 4
	}
	aggregate := ps.Has(mine.Aggregate)
	segBytes := 0
	if aggregate {
		segBytes = 4 * (span - 1)
	}

	nodes := []fpNode{{item: -1, parent: -1, next: -1,
		children: map[dataset.Item]int32{}, skip: -1, addr: arena.Alloc(nodeSize, 8)}}
	head := make(map[dataset.Item]int32)
	sup := make(map[dataset.Item]int32)

	// ---- Build phase -------------------------------------------------
	tr.begin()
	for ti, t := range work.Tx {
		// Stream the source transaction.
		m.LoadRange(uint64(0x4000_0000+ti*256), 4*len(t))
		cur := int32(0)
		for _, it := range t {
			if freq[it] < minSupport {
				continue
			}
			m.Load(nodes[cur].addr) // read current node (root addr 0 is fine)
			ch, ok := nodes[cur].children[it]
			// Child search: the real structure is a child list; charge
			// one load per sibling inspected (bounded by the map size).
			m.Compute(1)
			if !ok {
				idx := int32(len(nodes))
				nd := fpNode{
					item:     it,
					parent:   cur,
					children: map[dataset.Item]int32{},
					addr:     arena.Alloc(nodeSize+segBytes, 8),
					skip:     -1,
				}
				if prev, seen := head[it]; seen {
					nd.next = prev
				} else {
					nd.next = -1
				}
				head[it] = idx
				nodes = append(nodes, nd)
				nodes[cur].children[it] = idx
				m.Store(nd.addr)         // initialise the node
				m.Store(nodes[cur].addr) // link into the child list
				ch = idx
			} else {
				// Charge the sibling-chain probe for an existing child.
				m.Load(nodes[ch].addr)
			}
			m.Load(nodes[ch].addr)
			m.Store(nodes[ch].addr) // count++
			m.Compute(1)
			sup[it] += 1
			cur = ch
		}
	}
	tr.end("Build")

	// ---- P3 segment construction (charged as its own phase) ----------
	if aggregate {
		tr.begin()
		for i := 1; i < len(nodes); i++ {
			p := nodes[i].parent
			ln := 0
			for ln < span-1 && p > 0 {
				m.Load(nodes[p].addr)
				p = nodes[p].parent
				ln++
			}
			nodes[i].segLen = ln
			nodes[i].segAddr = nodes[i].addr + uint64(nodeSize)
			if p > 0 {
				nodes[i].skip = p
			} else {
				nodes[i].skip = -1
			}
			m.Store(nodes[i].segAddr)
		}
		tr.end("Aggregate")
	}

	// ---- Traverse phase ----------------------------------------------
	// The dominant pattern: per item, follow the head-of-node-links chain;
	// per node, walk the path to the root gathering the conditional
	// pattern base.
	prefetch := ps.Has(mine.Prefetch) || ps.Has(mine.PrefetchPtr)
	compact := ps.Has(mine.Compact)
	flatBase := arena.Alloc(1<<22, 64)
	flatOff := uint64(0)

	var order []dataset.Item
	for it := range head {
		order = append(order, it)
	}
	sortByFreqDesc(order, freq)
	// Expand least frequent first, as the header-table walk does.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	rounds := opts.Rounds
	if rounds == 0 {
		rounds = 3
	}
	tr.begin()
	for round := 0; round < rounds; round++ {
		for _, it := range order {
			if int(sup[it]) < minSupport {
				continue
			}
			for n := head[it]; n >= 0; n = nodes[n].next {
				m.Compute(4) // per-node bookkeeping (item, count, compares)
				m.Load(nodes[n].addr)
				if prefetch && nodes[n].next >= 0 {
					// P5 prefetch pointer: the node-link IS the precomputed
					// prefetch target; issue it before walking the path so
					// the fetch overlaps the upward chase.
					m.Prefetch(nodes[nodes[n].next].addr)
				}
				// Walk to the root.
				steps := 0
				if aggregate {
					cur := n
					for cur > 0 {
						m.LoadRange(nodes[cur].segAddr, 4*nodes[cur].segLen)
						steps += nodes[cur].segLen
						cur = nodes[cur].skip
						if cur > 0 {
							m.Load(nodes[cur].addr)
							steps++
						} else {
							break
						}
					}
				} else {
					for p := nodes[n].parent; p > 0; p = nodes[p].parent {
						m.Load(nodes[p].addr)
						steps++
					}
				}
				// Write the gathered path into the conditional pattern base.
				if compact {
					// P4: contiguous append into the shared flat buffer.
					for k := 0; k < steps; k++ {
						m.Store(flatBase + flatOff + uint64(4*k))
						m.Compute(1)
					}
					flatOff += uint64(4 * steps)
					if flatOff >= 1<<22 {
						flatOff = 0 // wrap the reusable buffer
					}
				} else {
					// Baseline: each path lands in its own scattered
					// allocation.
					buf := arena.AllocScattered(4 * (steps + 1))
					for k := 0; k < steps; k++ {
						m.Store(buf + uint64(4*k))
						m.Compute(1)
					}
				}
			}
		}
	}
	tr.end("Traverse")
	return r
}
