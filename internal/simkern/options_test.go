package simkern

import (
	"testing"

	"fpm/internal/memsim"
	"fpm/internal/mine"
)

func TestEclatNodeBudgetBoundsWork(t *testing.T) {
	db := questDB(t)
	small := Eclat(db, 30, 0, memsim.M1(), EclatOptions{MaxVectors: 32, MaxNodes: 500})
	large := Eclat(db, 30, 0, memsim.M1(), EclatOptions{MaxVectors: 32, MaxNodes: 5000})
	if small.TotalCycles() >= large.TotalCycles() {
		t.Fatalf("budget 500 (%.0f) should trace less than 5000 (%.0f)",
			small.TotalCycles(), large.TotalCycles())
	}
}

func TestEclatMaxVectorsBoundsWork(t *testing.T) {
	db := questDB(t)
	narrow := Eclat(db, 30, 0, memsim.M1(), EclatOptions{MaxVectors: 8, MaxNodes: 1 << 30})
	wide := Eclat(db, 30, 0, memsim.M1(), EclatOptions{MaxVectors: 24, MaxNodes: 1 << 30})
	if narrow.Phase("AndCount").Instructions >= wide.Phase("AndCount").Instructions {
		t.Fatal("narrower root class should trace fewer instructions")
	}
}

func TestLCMTileRowsOverride(t *testing.T) {
	db := questDB(t)
	auto := LCM(db, 30, mine.PatternSet(mine.Tile), memsim.M1(), LCMOptions{MaxColumns: 24})
	tiny := LCM(db, 30, mine.PatternSet(mine.Tile), memsim.M1(), LCMOptions{MaxColumns: 24, TileRows: 4})
	// Both complete and trace the same instruction stream volume (same
	// work, different order).
	if auto.Phase("CalcFreq").Instructions == 0 || tiny.Phase("CalcFreq").Instructions == 0 {
		t.Fatal("empty CalcFreq phase")
	}
	// A 4-row tile thrashes the occ cursor sweep: it must not change the
	// (deterministic) load count, only the cycle count.
	if auto.Phase("CalcFreq").Instructions != tiny.Phase("CalcFreq").Instructions {
		t.Fatalf("tile size changed traced work: %d vs %d",
			auto.Phase("CalcFreq").Instructions, tiny.Phase("CalcFreq").Instructions)
	}
}

func TestFPGrowthAggSpanSweepDirection(t *testing.T) {
	db := questDB(t)
	cfg := memsim.M1()
	base := FPGrowth(db, 30, mine.PatternSet(mine.Adapt), cfg, FPGrowthOptions{}).Phase("Traverse")
	// Cache-line-sized supernodes (span 4 on 24-byte nodes) must win; a
	// degenerate span of 2 (one inline item per node) may lose — that is
	// the paper's "each supernode the size of a cache line seems to be
	// optimal" observation, checked by the E9.2 ablation.
	for _, span := range []int{4, 8} {
		agg := FPGrowth(db, 30, mine.PatternSet(mine.Adapt|mine.Aggregate), cfg,
			FPGrowthOptions{AggSpan: span}).Phase("Traverse")
		if agg.Cycles >= base.Cycles {
			t.Errorf("span %d: aggregated traverse %.0f >= plain %.0f", span, agg.Cycles, base.Cycles)
		}
	}
	span2 := FPGrowth(db, 30, mine.PatternSet(mine.Adapt|mine.Aggregate), cfg,
		FPGrowthOptions{AggSpan: 2}).Phase("Traverse")
	if span2.Cycles > 1.5*base.Cycles {
		t.Errorf("span 2 overhead out of bounds: %.0f vs %.0f", span2.Cycles, base.Cycles)
	}
}

func TestRoundsScaleKernelPhases(t *testing.T) {
	db := questDB(t)
	one := LCM(db, 30, 0, memsim.M1(), LCMOptions{MaxColumns: 16, Rounds: 1})
	three := LCM(db, 30, 0, memsim.M1(), LCMOptions{MaxColumns: 16, Rounds: 3})
	r1 := one.Phase("CalcFreq").Instructions
	r3 := three.Phase("CalcFreq").Instructions
	if r3 != 3*r1 {
		t.Fatalf("rounds should triple the traced instructions: %d vs %d", r3, r1)
	}
	// Cycles grow sublinearly (later rounds run warm).
	if three.Phase("CalcFreq").Cycles >= 3*one.Phase("CalcFreq").Cycles {
		t.Fatal("later rounds should be cheaper than cold rounds")
	}
}
