// Package hmine implements H-mine (Pei et al., ICDM'01 — the paper's
// [25]), the hyper-structure miner the paper lists among the algorithms
// that "adapt the algorithm's data structures ... according to input
// features". Its defining property is that conditional databases are never
// materialised: transactions live once in shared arrays, and each
// recursion level only threads hyper-links (transaction, position) into
// per-item queues. That makes it memory-frugal on sparse data where
// FP-trees don't compress and LCM-style projection copies churn.
//
// This implementation keeps the shared-array + queue essence and rebuilds
// the child queues by scanning transaction prefixes (the original paper's
// in-place queue re-threading is an optimization of the same walk).
package hmine

import (
	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/trace"
)

// Miner is an H-mine frequent itemset miner.
type Miner struct {
	rec *metrics.Recorder
	tr  *trace.Recorder
	tk  *trace.Track
	cf  *cancel.Flag
}

// New returns an H-mine miner.
func New() *Miner { return &Miner{} }

// NewRecording returns an H-mine miner that records run-time counters into
// rec: nodes expanded (header tables processed), support countings (queue
// lengths read), itemsets emitted and candidate prunes. A nil rec is the
// same as New.
func NewRecording(rec *metrics.Recorder) *Miner { return &Miner{rec: rec} }

// NewInstrumented is NewRecording plus coarse kernel tracing: one span per
// first-level subtree is recorded into tr. Only construct tracing miners
// for sequential runs — under the scheduler the worker task spans own the
// timeline. The track is cached on the Miner and reused across Mine calls,
// so a tracing Miner must not run concurrent Mines. cf, when non-nil, is
// polled at every header-table item: once it trips, the recursion unwinds
// and Mine returns cf.Err(). Any argument may be nil.
func NewInstrumented(rec *metrics.Recorder, tr *trace.Recorder, cf *cancel.Flag) *Miner {
	return &Miner{rec: rec, tr: tr, cf: cf}
}

// track lazily creates the miner's kernel-span track.
func (m *Miner) track() *trace.Track {
	if m.tr == nil {
		return nil
	}
	if m.tk == nil {
		m.tk = m.tr.NewTrack(m.Name())
	}
	return m.tk
}

// Name implements mine.Miner.
func (*Miner) Name() string { return "hmine" }

// link is one hyper-link: a transaction and the position of the queue's
// item within it.
type link struct {
	tx  int32
	pos int32
}

// Mine implements mine.Miner.
func (m *Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}

	// The H-struct: the transactions themselves (shared, never copied)
	// plus the root hyper-link queues.
	queues := make([][]link, db.NumItems)
	for ti, t := range db.Tx {
		for pos, it := range t {
			queues[it] = append(queues[it], link{tx: int32(ti), pos: int32(pos)})
		}
	}

	st := &state{db: db, minsup: minSupport, collect: c, met: m.rec.NewLocal(), tk: m.track(), cf: m.cf}
	st.mineNode(queues, db.NumItems)
	m.rec.Flush(st.met)
	return m.cf.Err()
}

type state struct {
	db      *dataset.DB
	minsup  int
	collect mine.Collector
	prefix  []dataset.Item
	emitBuf []dataset.Item
	met     *metrics.Local
	tk      *trace.Track
	cf      *cancel.Flag
}

// mineNode processes one header table: queues[e] holds the hyper-links of
// item e within the transactions that contain the current prefix; only
// items below bound are present.
func (st *state) mineNode(queues [][]link, bound int) {
	st.met.Node()
	root := len(st.prefix) == 0
	// Descending order: the conditional structure of e only involves
	// items before e's position in each (sorted) transaction, so every
	// itemset is enumerated exactly once.
	for e := bound - 1; e >= 0; e-- {
		if st.cf.Cancelled() {
			return
		}
		q := queues[e]
		// Reading the queue length is H-mine's support counting.
		if len(q) > 0 {
			st.met.Support(1)
		}
		if len(q) < st.minsup {
			if len(q) > 0 {
				st.met.Prune()
			}
			continue
		}
		var ts int64
		if root && st.tk != nil {
			ts = st.tk.Begin()
		}
		st.prefix = append(st.prefix, dataset.Item(e))
		st.emit(len(q))

		// Thread the child queues: for each hyper-link, every item at a
		// smaller position in the same transaction co-occurs with
		// prefix+e.
		var child [][]link
		for _, l := range q {
			t := st.db.Tx[l.tx]
			for k := int32(0); k < l.pos; k++ {
				it := t[k]
				if child == nil {
					child = make([][]link, e)
				}
				child[it] = append(child[it], link{tx: l.tx, pos: k})
			}
		}
		if child != nil {
			st.mineNode(child, e)
		}
		st.prefix = st.prefix[:len(st.prefix)-1]
		if root && st.tk != nil {
			st.tk.End(ts, "subtree", trace.CatKernel, int64(e))
		}
	}
}

func (st *state) emit(support int) {
	st.met.Emit()
	// The prefix is built in decreasing item order; report canonically
	// increasing.
	st.emitBuf = st.emitBuf[:0]
	for i := len(st.prefix) - 1; i >= 0; i-- {
		st.emitBuf = append(st.emitBuf, st.prefix[i])
	}
	st.collect.Collect(st.emitBuf, support)
}
