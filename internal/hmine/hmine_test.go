package hmine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/mine"
)

func TestHandWorked(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1, 2}, {0, 2}})
	rs := mine.ResultSet{}
	if err := New().Mine(db, 2, rs); err != nil {
		t.Fatal(err)
	}
	want := mine.ResultSet{"0": 3, "1": 2, "2": 2, "0,1": 2, "0,2": 2}
	if !rs.Equal(want) {
		t.Fatalf("hmine = %v, want %v", rs, want)
	}
}

func TestEdgeCases(t *testing.T) {
	if err := New().Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
		t.Fatalf("empty: %v", err)
	}
	if err := New().Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
		t.Fatal("minSupport 0 accepted")
	}
	// A single long transaction: deepest recursion, all subsets.
	rs := mine.ResultSet{}
	if err := New().Mine(dataset.New([]dataset.Transaction{{0, 1, 2, 3, 4, 5, 6, 7}}), 1, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 255 {
		t.Fatalf("chain mined %d itemsets, want 255", len(rs))
	}
}

func TestItemsEmittedAscending(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1, 2}, {0, 1, 2}})
	var sc mine.SliceCollector
	if err := New().Mine(db, 2, &sc); err != nil {
		t.Fatal(err)
	}
	for _, s := range sc.Sets {
		for i := 1; i < len(s.Items); i++ {
			if s.Items[i] <= s.Items[i-1] {
				t.Fatalf("itemset %v not in increasing order", s.Items)
			}
		}
	}
}

func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		rs := mine.ResultSet{}
		if err := New().Mine(db, minsup, rs); err != nil {
			return false
		}
		if !rs.Equal(want) {
			t.Logf("seed %d minsup %d:\n%s", seed, minsup, rs.Diff(want, 5))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreesOnGenerated(t *testing.T) {
	db := gen.Corpus(gen.CorpusConfig{Docs: 800, Vocab: 500, AvgLen: 10, ZipfS: 1.2, Seed: 31})
	minsup := 40
	want := mine.ResultSet{}
	if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
		t.Fatal(err)
	}
	rs := mine.ResultSet{}
	if err := New().Mine(db, minsup, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || !rs.Equal(want) {
		t.Fatalf("hmine disagrees (%d vs %d itemsets)", len(rs), len(want))
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
