package serve

import (
	"container/list"
	"os"
	"sync"

	"fpm/internal/servecache"
	"fpm/internal/telemetry"
)

// Learner tuning. The EWMA tracks a job's measured peak footprint per
// (dataset identity, kernel): alpha keeps roughly the last three runs in
// play — fast enough to follow a dataset that was edited in place (new
// identity anyway) or a kernel whose footprint shifts with minsup, slow
// enough that one noisy GC-timing outlier cannot halve the estimate. The
// safety margin re-inflates the admitted charge over the smoothed mean so
// a typical-sized repeat still fits when it runs slightly heavy; 1.2 is
// well inside the 25%-of-measured-peak convergence bound the repeated-
// identity test enforces. The entry cap bounds a long-lived server
// against identity churn (every edit of a watched file mints a new
// identity); 4096 entries are a few hundred KiB.
const (
	learnerAlpha      = 0.3
	learnerMargin     = 1.2
	learnerMaxEntries = 4096
)

// learnKey identifies one learned footprint stream: the dataset (by
// content identity, the same notion the serving caches key on) and the
// kernel. MinSupport is deliberately not in the key — footprint is
// dominated by the parsed DB and the kernel's projections, which scale
// with the dataset, and folding thresholds in would shatter the stream
// into cold singletons.
type learnKey struct {
	ID   servecache.Identity
	Algo string
}

type learnEntry struct {
	key  learnKey
	ewma float64
	obs  int
	elem *list.Element
}

// identStamp memoizes a path's identity so the admission loop — which may
// re-evaluate a blocked head job on every scheduler wake — does not
// re-hash the file's 64 KiB prefix each time. A stat still runs per
// lookup: size or mtime moving invalidates the memo, which is exactly the
// staleness rule Identity itself encodes.
type identStamp struct {
	size    int64
	modTime int64
	id      servecache.Identity
}

// FootprintLearner closes the admission loop: it folds each mined job's
// measured peak footprint (telemetry's heap sampler) into a per-(identity,
// kernel) EWMA and serves that measurement — with a safety margin — as
// the admission estimate for repeat jobs, displacing the static
// 3×-file-size heuristic the moment one real observation exists. Safe for
// concurrent use.
type FootprintLearner struct {
	mu      sync.Mutex
	entries map[learnKey]*learnEntry
	lru     *list.List // all entries; back = coldest
	idents  map[string]identStamp
}

// NewFootprintLearner returns an empty learner.
func NewFootprintLearner() *FootprintLearner {
	return &FootprintLearner{
		entries: make(map[learnKey]*learnEntry),
		lru:     list.New(),
		idents:  make(map[string]identStamp),
	}
}

// identity resolves path to its content identity through the memo.
func (l *FootprintLearner) identity(path string) (servecache.Identity, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return servecache.Identity{}, false
	}
	l.mu.Lock()
	st, ok := l.idents[path]
	l.mu.Unlock()
	if ok && st.size == fi.Size() && st.modTime == fi.ModTime().UnixNano() {
		return st.id, true
	}
	id, err := servecache.FileIdentity(path)
	if err != nil {
		return servecache.Identity{}, false
	}
	l.mu.Lock()
	if len(l.idents) >= learnerMaxEntries {
		// Crude but bounded: the memo only saves a 64 KiB read, so a rare
		// full reset beats tracking a second LRU.
		l.idents = make(map[string]identStamp)
	}
	l.idents[path] = identStamp{size: id.Size, modTime: id.ModTime, id: id}
	l.mu.Unlock()
	return id, true
}

// Estimate returns the learned admission estimate for (path, algo):
// margin × the EWMA of measured peaks, floored like the heuristic. ok is
// false when nothing has been observed for the identity yet (or the file
// is unreadable) — the caller then falls back to the heuristic.
func (l *FootprintLearner) Estimate(path, algo string) (int64, bool) {
	id, ok := l.identity(path)
	if !ok {
		return 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[learnKey{ID: id, Algo: algo}]
	if !ok || e.obs == 0 {
		return 0, false
	}
	l.lru.MoveToFront(e.elem)
	est := int64(e.ewma * learnerMargin)
	if est < footprintFloor {
		est = footprintFloor
	}
	return est, true
}

// Observations returns how many peaks have been folded in for
// (path, algo); zero when the stream is cold.
func (l *FootprintLearner) Observations(path, algo string) int {
	id, ok := l.identity(path)
	if !ok {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[learnKey{ID: id, Algo: algo}]; ok {
		return e.obs
	}
	return 0
}

// Observe folds one measured peak footprint into the (path, algo) stream,
// creating it (seeded at the observation) on first sight.
func (l *FootprintLearner) Observe(path, algo string, peakBytes int64) {
	if peakBytes <= 0 {
		return
	}
	id, ok := l.identity(path)
	if !ok {
		return
	}
	key := learnKey{ID: id, Algo: algo}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[key]
	if !ok {
		for len(l.entries) >= learnerMaxEntries {
			back := l.lru.Back()
			old := back.Value.(*learnEntry)
			l.lru.Remove(back)
			delete(l.entries, old.key)
		}
		e = &learnEntry{key: key, ewma: float64(peakBytes), obs: 1}
		e.elem = l.lru.PushFront(e)
		l.entries[key] = e
		return
	}
	l.lru.MoveToFront(e.elem)
	e.ewma += learnerAlpha * (float64(peakBytes) - e.ewma)
	e.obs++
}

// footprint is the serve instance's telemetry.FootprintFunc: learned
// estimates when the identity has been mined before, the static
// EstimateFootprint heuristic otherwise. Partitioned jobs never learn —
// their footprint is bounded by their own budget, not by history.
func (l *FootprintLearner) footprint(req telemetry.JobRequest) (int64, bool) {
	if req.MemBudget <= 0 {
		if est, ok := l.Estimate(req.Path, req.Algo); ok {
			return est, true
		}
	}
	return EstimateFootprint(req), false
}

// observe is the matching telemetry.StoreConfig.ObserveFootprint hook.
func (l *FootprintLearner) observe(req telemetry.JobRequest, peakBytes int64) {
	if req.MemBudget > 0 {
		return
	}
	l.Observe(req.Path, req.Algo, peakBytes)
}
