package serve

// In-process durability tests: restart pre-warm from the result-cache
// snapshot, journal recovery of lost jobs, the graceful requeue-on-restart
// drain, and corrupt-state degradation to a cold start. The kill -9
// subprocess battery lives in chaos_test.go.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"fpm"
	"fpm/internal/telemetry"
)

// closeInstance shuts an instance down the way runServe does.
func closeInstance(t *testing.T, inst *Instance) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := inst.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// durableConfig returns a config pinned to stateDir with a fast persist
// cadence.
func durableConfig(stateDir string) Config {
	return Config{QueueCap: 16, MaxConcurrent: 1, StateDir: stateDir,
		PersistInterval: 10 * time.Millisecond}
}

// TestServeDurableRestartPrewarmsCache is the tentpole's first leg end to
// end: mine once, shut down gracefully, restart against the same state
// dir — the restarted server answers the same request from its restored
// result cache without mining.
func TestServeDurableRestartPrewarmsCache(t *testing.T) {
	path := testDataset(t, 3000, 21)
	stateDir := t.TempDir()
	before := runtime.NumGoroutine()

	inst := NewInstance(durableConfig(stateDir))
	if inst.DurabilityErr != nil {
		t.Fatal(inst.DurabilityErr)
	}
	req := telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1}
	job, err := inst.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, inst.Store, job.ID)
	if first.State != "done" || first.ServedFromCache {
		t.Fatalf("cold mine: %+v", first)
	}
	closeInstance(t, inst)
	if _, err := os.Stat(filepath.Join(stateDir, snapshotFileName)); err != nil {
		t.Fatalf("graceful close left no snapshot: %v", err)
	}

	inst2 := NewInstance(durableConfig(stateDir))
	if inst2.DurabilityErr != nil {
		t.Fatal(inst2.DurabilityErr)
	}
	if ps := inst2.Persister.Stats(); ps.Restored != 1 || ps.Corrupt != 0 {
		t.Fatalf("restore stats = %+v, want 1 restored", ps)
	}
	job2, err := inst2.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	warm := waitTerminal(t, inst2.Store, job2.ID)
	if warm.State != "done" || !warm.ServedFromCache {
		t.Fatalf("post-restart job not served from the restored cache: %+v", warm)
	}
	if warm.Itemsets != first.Itemsets {
		t.Fatalf("restored listing has %d itemsets, original mine had %d", warm.Itemsets, first.Itemsets)
	}
	// Subsumption must survive the restart too.
	req.MinSupport = 9
	job3, err := inst2.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if sub := waitTerminal(t, inst2.Store, job3.ID); !sub.ServedFromCache {
		t.Fatalf("higher-minsup query not subsumed by the restored listing: %+v", sub)
	}
	closeInstance(t, inst2)
	waitNoGoroutineGrowth(t, before)
}

// A journal left behind by a crash (submitted and running records, no
// terminal) is replayed at startup: the lost jobs are resubmitted with
// recovered:true, run to completion, and the old journal generations are
// cleaned up after the new one takes over.
func TestServeJournalRecoveryAfterCrash(t *testing.T) {
	path := testDataset(t, 2000, 22)
	stateDir := t.TempDir()
	before := runtime.NumGoroutine()

	// Forge the crash artifact: generation 5, one job mid-flight, one
	// queued, one finished (must NOT be replayed).
	req := telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1}
	queued := telemetry.JobRequest{Path: path, Algo: "eclat", MinSupport: 4, Workers: 1}
	finished := telemetry.JobRequest{Path: path, Algo: "fpgrowth", MinSupport: 6, Workers: 1}
	jnl, err := telemetry.OpenJournal(filepath.Join(stateDir, journalFilePrefix+"5"))
	if err != nil {
		t.Fatal(err)
	}
	jnl.Append(telemetry.JournalRecord{Op: telemetry.JournalOpSubmitted, Job: 0, Req: &finished})
	jnl.Append(telemetry.JournalRecord{Op: telemetry.JournalOpSubmitted, Job: 1, Req: &req})
	jnl.Append(telemetry.JournalRecord{Op: telemetry.JournalOpSubmitted, Job: 2, Req: &queued})
	jnl.Append(telemetry.JournalRecord{Op: telemetry.JournalOpRunning, Job: 1})
	jnl.Append(telemetry.JournalRecord{Op: telemetry.JournalOpTerminal, Job: 0, State: "done"})
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	inst := NewInstance(durableConfig(stateDir))
	if inst.DurabilityErr != nil {
		t.Fatal(inst.DurabilityErr)
	}
	if len(inst.Recovered) != 2 {
		t.Fatalf("recovered %d jobs, want the 2 non-terminal ones: %+v", len(inst.Recovered), inst.Recovered)
	}
	for _, rj := range inst.Recovered {
		if !rj.Recovered {
			t.Fatalf("recovered job not marked: %+v", rj)
		}
		if got := waitTerminal(t, inst.Store, rj.ID); got.State != "done" || !got.Recovered {
			t.Fatalf("recovered job did not complete: %+v", got)
		}
	}
	if got := inst.Store.Stats().Recovered; got != 2 {
		t.Fatalf("stats.Recovered = %d, want 2", got)
	}
	// The crash generation was superseded: gen 5 deleted, gen 6 open.
	if _, err := os.Stat(filepath.Join(stateDir, journalFilePrefix+"5")); !os.IsNotExist(err) {
		t.Fatalf("old journal generation not cleaned up: %v", err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, journalFilePrefix+"6")); err != nil {
		t.Fatalf("new journal generation missing: %v", err)
	}
	closeInstance(t, inst)
	waitNoGoroutineGrowth(t, before)
}

// The graceful drain: queued jobs at Close are journaled as
// requeue-on-restart and the next boot runs them — a rolling restart
// keeps its backlog.
func TestServeGracefulRequeueAcrossRestart(t *testing.T) {
	slow := testDataset(t, 9000, 23)
	stateDir := t.TempDir()

	inst := NewInstance(durableConfig(stateDir))
	if inst.DurabilityErr != nil {
		t.Fatal(inst.DurabilityErr)
	}
	// One slow job occupies the single runner; the rest stay queued.
	running, err := inst.Store.Submit(telemetry.JobRequest{Path: slow, Algo: "lcm", MinSupport: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if j, _ := inst.Store.Get(running.ID); j.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var queued []telemetry.Job
	for i := 0; i < 3; i++ {
		j, err := inst.Store.Submit(telemetry.JobRequest{Path: slow, Algo: "eclat", MinSupport: 4 + i, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	closeInstance(t, inst)

	requeued := 0
	for _, q := range queued {
		j, ok := inst.Store.Get(q.ID)
		if !ok {
			t.Fatalf("queued job %d vanished", q.ID)
		}
		if j.State == "requeued" {
			requeued++
		}
	}
	if requeued == 0 {
		t.Fatal("no queued job was drained as requeue-on-restart")
	}
	if j, _ := inst.Store.Get(running.ID); j.State == "requeued" {
		t.Fatalf("the running job must be cancelled, not requeued: %+v", j)
	}

	inst2 := NewInstance(durableConfig(stateDir))
	if inst2.DurabilityErr != nil {
		t.Fatal(inst2.DurabilityErr)
	}
	if len(inst2.Recovered) != requeued {
		t.Fatalf("restart recovered %d jobs, want the %d requeued", len(inst2.Recovered), requeued)
	}
	for _, rj := range inst2.Recovered {
		if got := waitTerminal(t, inst2.Store, rj.ID); got.State != "done" {
			t.Fatalf("requeued job did not complete after restart: %+v", got)
		}
	}
	closeInstance(t, inst2)
}

// Corrupt durable state — a garbage snapshot and a garbage journal — must
// degrade to a cold start: no panic, no DurabilityErr, no stale listing,
// and the corruption is visible in the persist stats.
func TestServeCorruptStateColdStart(t *testing.T) {
	path := testDataset(t, 1500, 24)
	stateDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(stateDir, snapshotFileName),
		[]byte("FPRS\x01garbage-not-a-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stateDir, journalFilePrefix+"2"),
		[]byte("{not json\nat all"), 0o644); err != nil {
		t.Fatal(err)
	}

	inst := NewInstance(durableConfig(stateDir))
	if inst.DurabilityErr != nil {
		t.Fatalf("corrupt state must not fail the boot: %v", inst.DurabilityErr)
	}
	if len(inst.Recovered) != 0 {
		t.Fatalf("corrupt journal recovered jobs: %+v", inst.Recovered)
	}
	ps := inst.Persister.Stats()
	if ps.Corrupt != 1 || ps.Restored != 0 {
		t.Fatalf("persist stats = %+v, want the corrupt cold start counted", ps)
	}
	// The server still serves.
	job, err := inst.Store.Submit(telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, inst.Store, job.ID); got.State != "done" || got.ServedFromCache {
		t.Fatalf("post-corruption mine: %+v", got)
	}
	closeInstance(t, inst)

	// The graceful close rewrote a valid snapshot over the garbage: the
	// next boot is warm again.
	inst2 := NewInstance(durableConfig(stateDir))
	if ps := inst2.Persister.Stats(); ps.Restored != 1 || ps.Corrupt != 0 {
		t.Fatalf("second boot stats = %+v, want the rewritten snapshot restored", ps)
	}
	closeInstance(t, inst2)
}

// The persist metric family is wired through /metrics only on durable
// instances, and DurabilityErr stays nil on the happy path.
func TestServeDurableMetricsExposed(t *testing.T) {
	stateDir := t.TempDir()
	inst := NewInstance(durableConfig(stateDir))
	if inst.DurabilityErr != nil {
		t.Fatal(inst.DurabilityErr)
	}
	defer closeInstance(t, inst)
	rr := httptest.NewRecorder()
	inst.Server.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "fpm_cache_persist_writes_total") {
		t.Fatalf("/metrics on a durable instance misses the persist family:\n%s", rr.Body.String())
	}

	// A non-durable instance must not render the family at all.
	plain := NewInstance(Config{})
	defer plain.Store.Shutdown()
	rr2 := httptest.NewRecorder()
	plain.Server.Handler().ServeHTTP(rr2, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rr2.Body.String(), "fpm_cache_persist") {
		t.Fatal("non-durable /metrics renders the persist family")
	}
}

// TestServeDurabilityWithoutResultCache: -result-cache 0 plus a state dir
// still journals jobs (recovery works) but has no persister.
func TestServeDurabilityWithoutResultCache(t *testing.T) {
	path := testDataset(t, 1200, 25)
	stateDir := t.TempDir()
	cfg := durableConfig(stateDir)
	cfg.DisableResultCache = true
	inst := NewInstance(cfg)
	if inst.DurabilityErr != nil {
		t.Fatal(inst.DurabilityErr)
	}
	if inst.Persister != nil {
		t.Fatal("persister exists with the result cache disabled")
	}
	if inst.Journal == nil {
		t.Fatal("journal missing on a durable instance")
	}
	job, err := inst.Store.Submit(telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, inst.Store, job.ID)
	closeInstance(t, inst)
}

// Itemset listings served after a restart must be identical to an
// uninterrupted direct mine — the cache restore path must not change
// answers, only latency.
func TestServeRestoredListingMatchesDirectMine(t *testing.T) {
	path := testDataset(t, 2500, 26)
	stateDir := t.TempDir()

	inst := NewInstance(durableConfig(stateDir))
	req := telemetry.JobRequest{Path: path, Algo: "eclat", MinSupport: 6, Workers: 1}
	job, err := inst.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, inst.Store, job.ID)
	closeInstance(t, inst)

	inst2 := NewInstance(durableConfig(stateDir))
	job2, err := inst2.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	warm := waitTerminal(t, inst2.Store, job2.ID)
	if !warm.ServedFromCache {
		t.Fatal("restored cache did not answer the repeat")
	}
	db, err := fpm.ReadFIMIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fpm.Mine(db, "eclat", fpm.Applicable("eclat"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Itemsets != len(direct) {
		t.Fatalf("restored listing has %d itemsets, direct mine has %d", warm.Itemsets, len(direct))
	}
	closeInstance(t, inst2)
}

// marshalJob keeps the json import earning its place (and pins that a
// recovered job record round-trips its provenance through the API shape).
func TestRecoveredFlagSurvivesJSON(t *testing.T) {
	j := telemetry.Job{ID: 3, State: "done", Recovered: true, Retries: 2}
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.Job
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Recovered || back.Retries != 2 {
		t.Fatalf("provenance lost over JSON: %+v", back)
	}
}
