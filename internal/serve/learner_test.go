package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fpm/internal/metrics"
	"fpm/internal/telemetry"
)

// The acceptance bound for learned admission: after enough observations
// the admitted estimate must sit within 25% of the job's measured peak.
const convergenceTolerance = 0.25

// TestFootprintLearnerConvergence is the repeated-identity convergence
// test: a miner with a deterministic footprint (a held 12 MiB buffer, so
// GC noise cannot dominate) runs the same (path, algo) job repeatedly
// through a store wired exactly like NewInstance wires the learner. The
// first run must be admitted on the static heuristic; after three
// observations the admitted estimate must land within 25% of the measured
// peak_bytes — while the 3×-file-size heuristic for this tiny file is the
// 1 MiB floor, an order of magnitude off.
func TestFootprintLearnerConvergence(t *testing.T) {
	path := testDataset(t, 50, 11)
	const alloc = 12 << 20
	mine := func(context.Context, telemetry.JobRequest, *metrics.Recorder) (telemetry.MineResult, error) {
		buf := make([]byte, alloc)
		for i := 0; i < len(buf); i += 4096 {
			buf[i] = 1
		}
		// Hold the buffer across several 25ms sampler ticks: an instant
		// return can race the boundary heap read against the runtime's
		// per-P stat flush and measure ~0.
		time.Sleep(80 * time.Millisecond)
		runtime.KeepAlive(buf)
		return telemetry.MineResult{Itemsets: 1}, nil
	}
	learner := NewFootprintLearner()
	st := telemetry.NewStoreWithConfig(mine, nil, telemetry.StoreConfig{
		QueueCap: 8, MaxConcurrent: 1, MemBudget: 1 << 30,
		Footprint:        learner.footprint,
		ObserveFootprint: learner.observe,
	})
	defer st.Close()

	req := telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5}
	runOne := func() telemetry.Job {
		t.Helper()
		// Clean base: without this, garbage from the previous run's buffer
		// can be collected mid-run, dragging live-heap below the job's
		// starting point and collapsing the measured delta to zero.
		runtime.GC()
		job, err := st.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		j := waitTerminal(t, st, job.ID)
		if j.State != "done" {
			t.Fatalf("job ended %s: %s", j.State, j.Error)
		}
		return j
	}

	first := runOne()
	if want := EstimateFootprint(req); first.MemEstimate != want {
		t.Fatalf("cold job admitted with estimate %d, want heuristic %d", first.MemEstimate, want)
	}
	if s := st.Stats(); s.FootprintHeuristic != 1 || s.FootprintLearned != 0 {
		t.Fatalf("cold split = learned %d / heuristic %d", s.FootprintLearned, s.FootprintHeuristic)
	}
	if first.PeakBytes < alloc/2 {
		t.Fatalf("measured peak %d implausible for a held %d-byte buffer", first.PeakBytes, alloc)
	}

	for learner.Observations(path, "lcm") < 3 {
		runOne()
	}
	converged := runOne()
	for attempt := 0; converged.PeakBytes < alloc/2 && attempt < 5; attempt++ {
		// A GC completing between mine-end and the boundary heap read can
		// still zero out one sample; the workload is deterministic, so just
		// take another.
		converged = runOne()
	}
	if converged.PeakBytes < alloc/2 {
		t.Fatalf("measured peak stuck at %d for a held %d-byte buffer", converged.PeakBytes, alloc)
	}
	if s := st.Stats(); s.FootprintLearned == 0 {
		t.Fatalf("no admission used a learned estimate: %+v", s)
	}
	if converged.MemEstimate == EstimateFootprint(req) {
		t.Fatalf("converged job still admitted on the heuristic (%d)", converged.MemEstimate)
	}
	rel := math.Abs(float64(converged.MemEstimate)-float64(converged.PeakBytes)) / float64(converged.PeakBytes)
	t.Logf("heuristic %d B; after %d obs: admitted %d B vs measured peak %d B (off %.1f%%)",
		EstimateFootprint(req), learner.Observations(path, "lcm"), converged.MemEstimate, converged.PeakBytes, rel*100)
	if rel > convergenceTolerance {
		t.Fatalf("after %d observations: admitted estimate %d vs measured peak %d (off by %.0f%%, want <= %.0f%%)",
			learner.Observations(path, "lcm"), converged.MemEstimate, converged.PeakBytes,
			rel*100, convergenceTolerance*100)
	}
}

// Partitioned jobs must never be admitted on (or feed) the learner: their
// footprint is bounded by their own budget.
func TestFootprintLearnerSkipsPartitioned(t *testing.T) {
	path := testDataset(t, 50, 12)
	l := NewFootprintLearner()
	l.Observe(path, "eclat", 64<<20)
	req := telemetry.JobRequest{Path: path, Algo: "eclat", MinSupport: 5, MemBudget: 4 << 20}
	if est, learned := l.footprint(req); learned || est != 2*req.MemBudget {
		t.Fatalf("partitioned job: estimate %d learned=%v, want heuristic %d", est, learned, 2*req.MemBudget)
	}
	l.observe(req, 96<<20)
	if n := l.Observations(path, "eclat"); n != 1 {
		t.Fatalf("partitioned observe leaked into the stream: obs = %d, want 1", n)
	}
	// The same file mined in-memory does use the learned stream.
	inMem := telemetry.JobRequest{Path: path, Algo: "eclat", MinSupport: 5}
	seen := int64(64 << 20)
	wantEst := int64(float64(seen) * learnerMargin)
	if est, learned := l.footprint(inMem); !learned || est != wantEst {
		t.Fatalf("in-memory repeat: estimate %d learned=%v", est, learned)
	}
}

// A changed file (same path, new content) must invalidate the learned
// stream: identity is content-based, exactly like the serving caches.
func TestFootprintLearnerTracksIdentity(t *testing.T) {
	path := testDataset(t, 50, 13)
	l := NewFootprintLearner()
	l.Observe(path, "lcm", 32<<20)
	if _, ok := l.Estimate(path, "lcm"); !ok {
		t.Fatal("no learned estimate after an observation")
	}
	// Rewrite the file in place with different content.
	if err := writeDifferentDataset(path); err != nil {
		t.Fatal(err)
	}
	if est, ok := l.Estimate(path, "lcm"); ok {
		t.Fatalf("stale learned estimate %d served for rewritten file", est)
	}
}

// The full serve wiring end to end: NewInstance admits repeat identities
// on measured cost and the flight recorder captures the serve-path cache
// events. The result cache stays on, so the repeat run also exercises the
// cache-served timeline.
func TestServeLearnedAdmissionAndEvents(t *testing.T) {
	path := testDataset(t, 200, 14)
	inst := NewInstance(Config{MaxConcurrent: 1, MemBudget: 1 << 30})
	defer inst.Store.Close()
	req := telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1}

	job1, err := inst.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j1 := waitTerminal(t, inst.Store, job1.ID)
	if j1.State != "done" {
		t.Fatalf("first job ended %s: %s", j1.State, j1.Error)
	}
	log1, _ := inst.Store.Events(job1.ID)
	if !hasEvent(log1, "dataset_cache", "miss") || !hasEvent(log1, "mine_start", "") ||
		!hasEvent(log1, "mine_end", "") || !hasEvent(log1, "result_cache", "store") {
		t.Fatalf("first-run timeline missing serve events: %+v", log1.Events)
	}

	job2, err := inst.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j2 := waitTerminal(t, inst.Store, job2.ID)
	if !j2.ServedFromCache {
		t.Fatalf("repeat job not served from the result cache: %+v", j2)
	}
	log2, _ := inst.Store.Events(job2.ID)
	if !hasEvent(log2, "result_cache", "hit") {
		t.Fatalf("cache-served timeline missing result_cache hit: %+v", log2.Events)
	}
	// The first run's measured peak must now drive admission for repeats
	// (cache-served runs don't feed the learner, but they are admitted on
	// the learned estimate).
	if inst.Learner.Observations(path, "lcm") != 1 {
		t.Fatalf("observations = %d, want 1", inst.Learner.Observations(path, "lcm"))
	}
	if j2.MemEstimate == EstimateFootprint(req) && j1.PeakBytes > 0 {
		est, learned := inst.Learner.footprint(req)
		if learned && est != j2.MemEstimate {
			t.Fatalf("repeat admitted on %d, learner offers %d", j2.MemEstimate, est)
		}
	}
	if s := inst.Store.Stats(); s.FootprintLearned == 0 {
		t.Fatalf("no learned admission recorded: %+v", s)
	}
}

// TestServeEventLogNDJSON: Config.EventLog receives one JSON object per
// line, in emission order, carrying the same events the per-job ring
// retains — the `fpm serve -log-json` wire format.
func TestServeEventLogNDJSON(t *testing.T) {
	path := testDataset(t, 100, 15)
	var buf syncBuffer
	inst := NewInstance(Config{MaxConcurrent: 1, EventLog: &buf})
	req := telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1}
	job, err := inst.Store.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, inst.Store, job.ID)
	inst.Store.Close()

	var types []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line is not one JSON event: %v\n%s", err, line)
		}
		if ev.Job != job.ID {
			t.Fatalf("event for job %d in a single-job run: %s", ev.Job, line)
		}
		types = append(types, ev.Type)
	}
	if types[0] != "submitted" || types[len(types)-1] != "terminal" {
		t.Fatalf("stream must run submitted..terminal: %v", types)
	}
	ring, _ := inst.Store.Events(job.ID)
	if len(types) != len(ring.Events) {
		t.Fatalf("stream carried %d events, ring retained %d", len(types), len(ring.Events))
	}
}

// syncBuffer guards a bytes.Buffer; the event sink writes from runner
// goroutines while the test reads after Close.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// writeDifferentDataset replaces path with content of a different size,
// so the learner's stat-based identity memo invalidates regardless of
// filesystem mtime granularity.
func writeDifferentDataset(path string) error {
	var b []byte
	for i := 0; i < 100; i++ {
		b = append(b, []byte("1 2 3 4 5 6 7\n")...)
	}
	return os.WriteFile(path, b, 0o644)
}

func hasEvent(log telemetry.EventLog, typ, outcome string) bool {
	for _, ev := range log.Events {
		if ev.Type == typ && (outcome == "" || ev.Outcome == outcome) {
			return true
		}
	}
	return false
}
