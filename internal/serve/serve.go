// Package serve wires the real mining library into the telemetry job
// server: it owns the MineFunc that executes submitted jobs through the
// observed in-memory and partitioned paths, the serving caches that make
// repeated jobs cheap, and the admission-control hooks that keep N
// concurrent jobs under one memory budget. Split out of cmd/fpm so that
// both the `fpm serve` subcommand and the load-test driver (cmd/fpmload,
// internal/loadgen) can host an identical server — the harness exercises
// exactly the production wiring, not a test double.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"fpm"
	"fpm/internal/servecache"
	"fpm/internal/telemetry"
)

// Default byte caps for the serving caches when the caller does not size
// them. Both shrink under a configured memory budget (see NewInstance).
const (
	DefaultDatasetCacheBytes = 256 << 20
	DefaultResultCacheBytes  = 64 << 20
)

// footprintFloor is the minimum per-job footprint estimate: even a tiny
// file costs parse buffers, per-worker collectors and scheduler state.
const footprintFloor = 1 << 20

// DefaultMaxRetries is how many times a transiently failed mine attempt
// is retried when the caller does not choose (Config.MaxRetries == 0).
const DefaultMaxRetries = 2

// State-dir file names: the result-cache snapshot sidecar and the
// generation-numbered job journals (one per process lifetime, so job IDs
// — which restart at 0 — stay unambiguous across restarts).
const (
	snapshotFileName  = "results.snap"
	journalFilePrefix = "jobs.journal."
)

// Config shapes one serve instance.
type Config struct {
	// QueueCap bounds the pending-job queue; submissions beyond it are
	// rejected with HTTP 429. Zero means telemetry.DefaultQueueCap.
	QueueCap int
	// MaxConcurrent is the job-runner pool size; zero means 1 (the
	// pre-multi-tenant behaviour). Mining parallelism inside a job
	// (JobRequest.Workers) is independent.
	MaxConcurrent int
	// MemBudget, when positive, is the global memory budget in bytes:
	// a job whose estimated footprint does not fit alongside the running
	// jobs and the cached state waits in queue instead of OOMing the
	// process. Zero disables admission control.
	MemBudget int64
	// DatasetCacheBytes / ResultCacheBytes cap the serving caches; zero
	// picks the defaults (bounded further by MemBudget when set).
	DatasetCacheBytes int64
	ResultCacheBytes  int64
	// DisableDatasetCache / DisableResultCache turn a cache off entirely —
	// the levers the load harness uses for before/after comparisons.
	DisableDatasetCache bool
	DisableResultCache  bool
	// EventLog, when non-nil, streams every flight-recorder event to it
	// as NDJSON (one JSON object per line) as jobs move through the
	// store — the writer behind `fpm serve -log-json`. The write happens
	// under the store's lock, so a blocking writer backpressures the
	// scheduler; leave nil for latency-sensitive hosting and read
	// timelines from GET /jobs/{id}/events instead.
	EventLog io.Writer
	// StateDir, when non-empty, makes the instance durable: the result
	// cache is periodically snapshotted there (and restored at startup,
	// so a hot key is hot again after a kill -9), and every job state
	// transition is journaled so a restart can requeue the jobs a crash
	// — or a graceful requeue-on-restart drain — left behind. Corrupt or
	// stale state degrades to a cold start, never a failed boot; an
	// unusable directory (cannot create or open files) disables
	// durability and is reported in Instance.DurabilityErr.
	StateDir string
	// PersistInterval paces the background snapshot writer; zero means
	// servecache.DefaultPersistInterval.
	PersistInterval time.Duration
	// MaxRetries bounds transparent retries of transiently failed mine
	// attempts: 0 means DefaultMaxRetries, negative disables retries.
	MaxRetries int
}

// Instance is one hosted serving stack: HTTP surface, job scheduler, the
// caches they share, the footprint learner feeding admission, and — when
// Config.StateDir is set — the durability pair (snapshot persister and
// job journal).
type Instance struct {
	Server  *telemetry.Server
	Store   *telemetry.Store
	Caches  *servecache.Caches
	Learner *FootprintLearner
	// Persister snapshots the result cache to the state dir; nil when the
	// instance is not durable (no StateDir, or the result cache is
	// disabled).
	Persister *servecache.Persister
	// Journal receives job state transitions; nil when not durable.
	Journal *telemetry.Journal
	// Recovered are the jobs resubmitted from previous generations'
	// journals at startup, in resubmission order.
	Recovered []telemetry.Job
	// DurabilityErr reports an environmental failure that disabled (part
	// of) durability at startup — an uncreatable state dir, an unopenable
	// journal. Data corruption is NOT reported here: a corrupt snapshot
	// or journal degrades to a cold start by design (visible in the
	// fpm_cache_persist_* metrics instead).
	DurabilityErr error
}

// Close shuts the instance down in durability order: drain the store
// (with a journal, queued jobs are journaled as requeue-on-restart), take
// the final result-cache snapshot, close the journal, then drain the
// HTTP server.
func (inst *Instance) Close(ctx context.Context) error {
	inst.Store.Shutdown()
	if inst.Persister != nil {
		inst.Persister.Close()
	}
	var firstErr error
	if inst.Journal != nil {
		if err := inst.Journal.Close(); err != nil {
			firstErr = err
		}
	}
	if err := inst.Server.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// New builds a telemetry server with an attached job store running the
// real miner. The caller owns shutdown ordering: Store.Shutdown (or
// Close) first, then Server.Shutdown. Kept for callers that do not need
// the cache handle; NewInstance returns the full stack.
func New(cfg Config) (*telemetry.Server, *telemetry.Store) {
	inst := NewInstance(cfg)
	return inst.Server, inst.Store
}

// NewInstance builds the full serving stack described by cfg.
func NewInstance(cfg Config) *Instance {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = telemetry.DefaultQueueCap
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	caches := &servecache.Caches{}
	if !cfg.DisableDatasetCache {
		b := cfg.DatasetCacheBytes
		if b <= 0 {
			b = DefaultDatasetCacheBytes
		}
		// Cached state is charged against the memory budget, so never let a
		// cache cap alone exceed half the budget — otherwise cold cached
		// bytes could crowd out admission before shedding kicks in.
		if cfg.MemBudget > 0 && b > cfg.MemBudget/2 {
			b = cfg.MemBudget / 2
		}
		caches.Datasets = servecache.NewDatasetCache(b)
	}
	if !cfg.DisableResultCache {
		b := cfg.ResultCacheBytes
		if b <= 0 {
			b = DefaultResultCacheBytes
		}
		if cfg.MemBudget > 0 && b > cfg.MemBudget/4 {
			b = cfg.MemBudget / 4
		}
		caches.Results = servecache.NewResultCache(b)
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	srv := telemetry.NewServer()
	learner := NewFootprintLearner()
	inst := &Instance{Server: srv, Caches: caches, Learner: learner}

	// Durability setup. Everything here degrades: a corrupt snapshot or
	// journal means a cold start, an unusable directory means a
	// non-durable instance with DurabilityErr set — never a failed boot
	// and never a crash.
	var pending []telemetry.PendingJob
	var oldJournals []string
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			inst.DurabilityErr = fmt.Errorf("serve: state dir: %w", err)
		} else {
			var restored servecache.RestoreStats
			corrupt := false
			snapPath := filepath.Join(cfg.StateDir, snapshotFileName)
			if caches.Results != nil {
				if data, err := os.ReadFile(snapPath); err == nil {
					if restored, err = caches.Results.RestoreSnapshot(data); err != nil {
						corrupt = true // cold start; counted, not fatal
					}
				} else if !errors.Is(err, fs.ErrNotExist) {
					inst.DurabilityErr = fmt.Errorf("serve: snapshot: %w", err)
				}
				inst.Persister = servecache.NewPersister(caches.Results, snapPath, cfg.PersistInterval)
				inst.Persister.NoteRestore(restored, corrupt)
			}
			var gen int
			pending, oldJournals, gen = recoverJournals(cfg.StateDir)
			jnl, err := telemetry.OpenJournal(filepath.Join(cfg.StateDir,
				fmt.Sprintf("%s%d", journalFilePrefix, gen+1)))
			if err != nil {
				inst.DurabilityErr = fmt.Errorf("serve: journal: %w", err)
				pending, oldJournals = nil, nil
			} else {
				inst.Journal = jnl
			}
		}
	}

	var sink func(telemetry.Event)
	if cfg.EventLog != nil {
		// The sink runs under the store's lock (see StoreConfig.EventSink),
		// which is also what serializes the encoder.
		enc := json.NewEncoder(cfg.EventLog)
		sink = func(ev telemetry.Event) { _ = enc.Encode(ev) }
	}
	store := telemetry.NewStoreWithConfig(inst.mineJob, srv.SetRecorder, telemetry.StoreConfig{
		QueueCap:         cfg.QueueCap,
		MaxConcurrent:    cfg.MaxConcurrent,
		MemBudget:        cfg.MemBudget,
		Footprint:        learner.footprint,
		CacheResident:    caches.Resident,
		Shed:             caches.Shed,
		EventSink:        sink,
		ObserveFootprint: learner.observe,
		Journal:          inst.Journal,
		MaxRetries:       maxRetries,
	})
	inst.Store = store
	srv.AttachJobs(store)
	srv.AttachCacheStats(func() telemetry.CacheStats {
		cs := adaptCacheStats(caches.Stats())
		if inst.Persister != nil {
			ps := inst.Persister.Stats()
			cs.PersistEnabled = true
			cs.PersistWrites = ps.Writes
			cs.PersistErrors = ps.Errors
			cs.PersistLastBytes = ps.LastBytes
			cs.PersistRestored = ps.Restored
			cs.PersistDroppedStale = ps.DroppedStale
			cs.PersistDroppedUnreadable = ps.DroppedUnreadable
			cs.PersistCorrupt = ps.Corrupt
		}
		return cs
	})

	// Replay what previous generations lost. Resubmission is
	// at-least-once (a crash between resubmit and journal deletion
	// replays again next boot), which recoverJournals' identity dedupe
	// and the result cache together make idempotent: a duplicate replay
	// is answered from the cache, not re-mined.
	for _, p := range pending {
		if job, err := store.SubmitRecovered(p.Req); err == nil {
			inst.Recovered = append(inst.Recovered, job)
		}
	}
	if inst.Journal != nil {
		_ = inst.Journal.Sync()
		for _, path := range oldJournals {
			os.Remove(path)
		}
	}
	return inst
}

// recoverJournals reads every journal generation in dir, folds each
// file's records into the jobs that never reached a terminal state in
// its process (plus the explicitly requeued ones), and dedupes across
// generations by input identity — the same request against the same file
// content recovers once, however many crashed generations journaled it.
// It returns the jobs to resubmit (oldest generation first, FIFO within
// one), the journal files read, and the highest generation number seen.
func recoverJournals(dir string) (pending []telemetry.PendingJob, files []string, maxGen int) {
	names, err := filepath.Glob(filepath.Join(dir, journalFilePrefix+"*"))
	if err != nil {
		return nil, nil, 0
	}
	type genFile struct {
		gen  int
		path string
	}
	var gens []genFile
	for _, path := range names {
		suffix := strings.TrimPrefix(filepath.Base(path), journalFilePrefix)
		gen, err := strconv.Atoi(suffix)
		if err != nil || gen < 0 {
			continue // not ours
		}
		gens = append(gens, genFile{gen: gen, path: path})
		if gen > maxGen {
			maxGen = gen
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].gen < gens[j].gen })
	type recKey struct {
		req telemetry.JobRequest
		id  string
	}
	seen := make(map[recKey]bool)
	for _, g := range gens {
		files = append(files, g.path)
		recs, err := telemetry.ReadJournal(g.path)
		if err != nil {
			continue
		}
		for _, p := range telemetry.PendingRequests(recs) {
			key := recKey{req: p.Req}
			if id, err := servecache.FileIdentity(p.Req.Path); err == nil {
				key.id = id.String()
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			pending = append(pending, p)
		}
	}
	return pending, files, maxGen
}

// EstimateFootprint is the admission controller's cold-start per-job
// memory estimate, used until the FootprintLearner has a measured peak
// for the job's (dataset identity, kernel) — see FootprintLearner for the
// learned path. Partitioned jobs are bounded by their own budget (doubled:
// the candidate union and pass-2 counters live outside the chunk
// budget); in-memory jobs scale with the on-disk input size — the parsed
// DB, the kernel's projections and the collectors together run a few
// multiples of it. Deliberately conservative: over-estimating delays a
// job, under-estimating OOMs the process.
func EstimateFootprint(req telemetry.JobRequest) int64 {
	if req.MemBudget > 0 {
		return 2 * req.MemBudget
	}
	est := int64(0)
	if fi, err := os.Stat(req.Path); err == nil {
		est = fi.Size() * 3
	}
	if est < footprintFloor {
		est = footprintFloor
	}
	return est
}

// mineJob is the store's MineFunc: MineJob plus the serving caches (and,
// on durable instances, origin hashes on the listings it inserts).
func (inst *Instance) mineJob(ctx context.Context, req telemetry.JobRequest, rec *fpm.MetricsRecorder) (telemetry.MineResult, error) {
	return mineWithCaches(ctx, req, rec, inst.Caches, inst.Persister != nil)
}

// MineJob executes one submitted job through the library's observed
// mining paths, so the job's counters stream into rec while it runs. ctx
// threads the job's cancellation and deadline into the run: both the
// in-memory and partitioned paths unwind cooperatively when it trips.
// This entry point is cache-free; the store built by New/NewInstance
// runs jobs through the serving caches.
func MineJob(ctx context.Context, req telemetry.JobRequest, rec *fpm.MetricsRecorder) (telemetry.MineResult, error) {
	return mineWithCaches(ctx, req, rec, nil, false)
}

func mineWithCaches(ctx context.Context, req telemetry.JobRequest, rec *fpm.MetricsRecorder, caches *servecache.Caches, durable bool) (telemetry.MineResult, error) {
	if req.MinSupport < 1 {
		return telemetry.MineResult{}, fmt.Errorf("job: min_support must be >= 1 (got %d)", req.MinSupport)
	}
	a := fpm.Algorithm(req.Algo)
	var ps fpm.PatternSet
	if req.Patterns == "" || req.Patterns == "all" {
		ps = fpm.Applicable(a)
	} else if req.Patterns != "none" {
		var err error
		if ps, err = ParsePatterns(req.Patterns, a); err != nil {
			return telemetry.MineResult{}, err
		}
	}

	// Result cache first: a listing cached at a support threshold <= the
	// query's answers it outright (exactly on a match, by filtering on
	// subsumption) and the mine is skipped entirely. The key carries the
	// resolved pattern bitset, so "lex,simd" and "simd,lex" share entries.
	var key servecache.ResultKey
	haveKey := false
	if caches != nil && caches.Results != nil {
		if id, err := servecache.FileIdentity(req.Path); err == nil {
			key = servecache.ResultKey{ID: id, Algo: req.Algo, Patterns: strconv.FormatUint(uint64(ps), 10)}
			haveKey = true
			if sets, outcome, ok := caches.Results.ServeTraced(key, req.MinSupport); ok {
				telemetry.Emit(ctx, telemetry.Event{Type: "result_cache", Outcome: outcome})
				return telemetry.MineResult{Itemsets: len(sets), FromCache: true}, nil
			}
		}
	}

	opts := []fpm.ParallelOption{fpm.ParallelMetrics(rec), fpm.WithContext(ctx)}
	var sets []fpm.Itemset
	var err error
	if req.MemBudget > 0 {
		// Out-of-core jobs stream from disk by design — caching the parsed
		// DB would defeat the memory bound — but their listings still land
		// in the result cache below.
		telemetry.Emit(ctx, telemetry.Event{Type: "mine_start"})
		sets, _, err = fpm.MinePartitioned(req.Path, a, ps, req.MinSupport, req.MemBudget, req.Workers, opts...)
		telemetry.Emit(ctx, telemetry.Event{Type: "mine_end", Itemsets: len(sets)})
	} else if caches != nil && caches.Datasets != nil {
		var entry *servecache.Dataset
		var outcome string
		entry, outcome, err = caches.Datasets.AcquireTraced(req.Path)
		if err != nil {
			return telemetry.MineResult{}, err
		}
		telemetry.Emit(ctx, telemetry.Event{Type: "dataset_cache", Outcome: outcome})
		// The cached DB is shared read-only across concurrent jobs; the
		// reference pins it against eviction until the mine returns.
		telemetry.Emit(ctx, telemetry.Event{Type: "mine_start"})
		sets, _, err = fpm.WithMetrics(entry.DB, a, ps, req.MinSupport, req.Workers, opts...)
		telemetry.Emit(ctx, telemetry.Event{Type: "mine_end", Itemsets: len(sets)})
		caches.Datasets.Release(entry)
	} else {
		var db *fpm.DB
		db, err = fpm.ReadFIMIFile(req.Path)
		if err != nil {
			return telemetry.MineResult{}, err
		}
		telemetry.Emit(ctx, telemetry.Event{Type: "mine_start"})
		sets, _, err = fpm.WithMetrics(db, a, ps, req.MinSupport, req.Workers, opts...)
		telemetry.Emit(ctx, telemetry.Event{Type: "mine_end", Itemsets: len(sets)})
	}
	if err != nil {
		return telemetry.MineResult{Itemsets: len(sets)}, err
	}
	if haveKey {
		stored := false
		if durable {
			// Durable insert: stamp the listing with its origin file and
			// that file's full-content FNV-64a, computed here — once, after
			// the mine, never on the cache-hit path. Restore validates the
			// hash against the live file, which closes the Identity
			// collision window (same size, same 64 KiB prefix, same mtime)
			// on the persistence path. If the file changed while we mined,
			// the identity no longer matches the key and the listing stays
			// memory-only under its (now unreachable) pre-mine key.
			if fh, err := servecache.FullFileHash(req.Path); err == nil {
				if id, err := servecache.FileIdentity(req.Path); err == nil && id == key.ID {
					caches.Results.InsertDurable(key, req.MinSupport, sets, req.Path, fh)
					stored = true
				}
			}
		}
		if !stored {
			caches.Results.Insert(key, req.MinSupport, sets)
		}
		telemetry.Emit(ctx, telemetry.Event{Type: "result_cache", Outcome: "store"})
	}
	return telemetry.MineResult{Itemsets: len(sets)}, nil
}

// adaptCacheStats maps the cache package's census onto the telemetry
// layer's flat struct (telemetry deliberately does not import servecache).
func adaptCacheStats(s servecache.Stats) telemetry.CacheStats {
	return telemetry.CacheStats{
		DatasetEntries:   s.Dataset.Entries,
		DatasetBytes:     s.Dataset.Bytes,
		DatasetHits:      s.Dataset.Hits,
		DatasetMisses:    s.Dataset.Misses,
		DatasetEvictions: s.Dataset.Evictions,
		DatasetSkipped:   s.Dataset.Skipped,

		ResultEntries:      s.Result.Entries,
		ResultBytes:        s.Result.Bytes,
		ResultHitsExact:    s.Result.HitsExact,
		ResultHitsSubsumed: s.Result.HitsSubsumed,
		ResultMisses:       s.Result.Misses,
		ResultEvictions:    s.Result.Evictions,
	}
}

// ParsePatterns resolves a comma-separated tuning-pattern list ("lex,simd")
// to a PatternSet; "" means none, "all" means every pattern applicable to
// algo. Shared by the CLI flag and the job-request field.
func ParsePatterns(s string, algo fpm.Algorithm) (fpm.PatternSet, error) {
	if s == "" {
		return 0, nil
	}
	if s == "all" {
		return fpm.Applicable(algo), nil
	}
	names := map[string]fpm.Pattern{
		"lex": fpm.Lex, "adapt": fpm.Adapt, "aggregate": fpm.Aggregate,
		"compact": fpm.Compact, "prefetchptr": fpm.PrefetchPtr,
		"tile": fpm.Tile, "prefetch": fpm.Prefetch, "simd": fpm.SIMD,
	}
	var ps fpm.PatternSet
	for _, name := range strings.Split(s, ",") {
		p, ok := names[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return 0, fmt.Errorf("unknown pattern %q", name)
		}
		ps = ps.With(p)
	}
	return ps, nil
}
