// Package serve wires the real mining library into the telemetry job
// server: it owns the MineFunc that executes submitted jobs through the
// observed in-memory and partitioned paths. Split out of cmd/fpm so that
// both the `fpm serve` subcommand and the load-test driver (cmd/fpmload,
// internal/loadgen) can host an identical server — the harness exercises
// exactly the production wiring, not a test double.
package serve

import (
	"context"
	"fmt"
	"strings"

	"fpm"
	"fpm/internal/telemetry"
)

// Config shapes one serve instance.
type Config struct {
	// QueueCap bounds the pending-job queue; submissions beyond it are
	// rejected with HTTP 429. Zero means telemetry.DefaultQueueCap.
	QueueCap int
}

// New builds a telemetry server with an attached job store running the
// real miner. The caller owns shutdown ordering: Store.Shutdown (or
// Close) first, then Server.Shutdown.
func New(cfg Config) (*telemetry.Server, *telemetry.Store) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = telemetry.DefaultQueueCap
	}
	srv := telemetry.NewServer()
	store := telemetry.NewStoreWithCap(MineJob, srv.SetRecorder, cfg.QueueCap)
	srv.AttachJobs(store)
	return srv, store
}

// MineJob executes one submitted job through the library's observed
// mining paths, so the job's counters stream into rec while it runs. ctx
// threads the job's cancellation and deadline into the run: both the
// in-memory and partitioned paths unwind cooperatively when it trips.
func MineJob(ctx context.Context, req telemetry.JobRequest, rec *fpm.MetricsRecorder) (int, error) {
	if req.MinSupport < 1 {
		return 0, fmt.Errorf("job: min_support must be >= 1 (got %d)", req.MinSupport)
	}
	a := fpm.Algorithm(req.Algo)
	var ps fpm.PatternSet
	if req.Patterns == "" || req.Patterns == "all" {
		ps = fpm.Applicable(a)
	} else if req.Patterns != "none" {
		var err error
		if ps, err = ParsePatterns(req.Patterns, a); err != nil {
			return 0, err
		}
	}
	opts := []fpm.ParallelOption{fpm.ParallelMetrics(rec), fpm.WithContext(ctx)}
	if req.MemBudget > 0 {
		sets, _, err := fpm.MinePartitioned(req.Path, a, ps, req.MinSupport, req.MemBudget, req.Workers, opts...)
		return len(sets), err
	}
	db, err := fpm.ReadFIMIFile(req.Path)
	if err != nil {
		return 0, err
	}
	sets, _, err := fpm.WithMetrics(db, a, ps, req.MinSupport, req.Workers, opts...)
	return len(sets), err
}

// ParsePatterns resolves a comma-separated tuning-pattern list ("lex,simd")
// to a PatternSet; "" means none, "all" means every pattern applicable to
// algo. Shared by the CLI flag and the job-request field.
func ParsePatterns(s string, algo fpm.Algorithm) (fpm.PatternSet, error) {
	if s == "" {
		return 0, nil
	}
	if s == "all" {
		return fpm.Applicable(algo), nil
	}
	names := map[string]fpm.Pattern{
		"lex": fpm.Lex, "adapt": fpm.Adapt, "aggregate": fpm.Aggregate,
		"compact": fpm.Compact, "prefetchptr": fpm.PrefetchPtr,
		"tile": fpm.Tile, "prefetch": fpm.Prefetch, "simd": fpm.SIMD,
	}
	var ps fpm.PatternSet
	for _, name := range strings.Split(s, ",") {
		p, ok := names[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return 0, fmt.Errorf("unknown pattern %q", name)
		}
		ps = ps.With(p)
	}
	return ps, nil
}
