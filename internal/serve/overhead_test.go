package serve

import (
	"path/filepath"
	"runtime"
	"testing"

	"fpm"
	"fpm/internal/telemetry"
)

// BenchmarkServeOverhead is the serving layer's overhead gate: one small
// real mining job end to end through the production instance (submit →
// mine → terminal), result cache disabled so every iteration actually
// mines. Observability added to the serve path — the flight-recorder
// events, the peak-heap sampler — must keep this number within 3% of the
// pre-change baseline with event streaming off (no Config.EventLog, i.e.
// `fpm serve -log-json` off), per the repo's overhead-budget discipline.
func BenchmarkServeOverhead(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "small.dat")
	db := fpm.GenerateQuest(fpm.QuestConfig{
		Transactions: 600, AvgLen: 6, AvgPatternLen: 3, Items: 200, Patterns: 400, Seed: 7,
	})
	if err := fpm.WriteFIMIFile(path, db); err != nil {
		b.Fatal(err)
	}
	inst := NewInstance(Config{MaxConcurrent: 1, DisableResultCache: true})
	defer inst.Store.Close()
	req := telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := inst.Store.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		for {
			j, ok := inst.Store.Get(job.ID)
			if !ok {
				b.Fatal("job vanished")
			}
			if j.State == "done" {
				break
			}
			if j.State == "failed" || j.State == "cancelled" {
				b.Fatalf("job ended %s: %s", j.State, j.Error)
			}
			runtime.Gosched() // single-core boxes: let the runner goroutine in
		}
	}
}
