package serve

// The serve-layer chaos battery: a real `fpm serve`-shaped process (this
// test binary re-executed) is SIGKILLed mid-storm and restarted against
// the same state directory. The restarted server must pre-warm its result
// cache from the snapshot, requeue the jobs the kill lost, and produce
// listings identical to an uninterrupted run. The graceful half (SIGTERM)
// must flush a final snapshot and exit cleanly.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fpm"
	"fpm/internal/servecache"
	"fpm/internal/telemetry"
)

// TestServeChaosChild is not a test: it is the server process the chaos
// battery kills. It only runs when re-executed by the parent with the
// marker env set; a plain `go test` run skips it.
func TestServeChaosChild(t *testing.T) {
	if os.Getenv("FPM_SERVE_CHAOS_CHILD") == "" {
		t.Skip("not a chaos child")
	}
	inst := NewInstance(Config{
		QueueCap:        64,
		MaxConcurrent:   1,
		StateDir:        os.Getenv("FPM_CHAOS_STATE"),
		PersistInterval: 25 * time.Millisecond,
	})
	if inst.DurabilityErr != nil {
		t.Fatalf("chaos child durability: %v", inst.DurabilityErr)
	}
	lnAddr, err := inst.Server.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("chaos child listen: %v", err)
	}
	// Publish the address atomically so the parent never reads a torn file.
	addrFile := os.Getenv("FPM_CHAOS_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+lnAddr.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	// Serve until SIGTERM (the graceful path) — or until the parent's
	// SIGKILL, which this code never sees.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := inst.Close(ctx); err != nil {
		t.Fatalf("chaos child close: %v", err)
	}
}

// chaosChild manages one server subprocess.
type chaosChild struct {
	cmd *exec.Cmd
	url string
	out *bytes.Buffer
}

// startChaosChild re-executes this test binary as a serve process bound to
// stateDir and waits for it to publish its address.
func startChaosChild(t *testing.T, stateDir string) *chaosChild {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=^TestServeChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"FPM_SERVE_CHAOS_CHILD=1",
		"FPM_CHAOS_STATE="+stateDir,
		"FPM_CHAOS_ADDRFILE="+addrFile,
	)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			return &chaosChild{cmd: cmd, url: string(data), out: out}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			t.Fatalf("chaos child never published its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// jobs fetches the child's full job listing.
func (c *chaosChild) jobs(t *testing.T) []telemetry.Job {
	t.Helper()
	resp, err := http.Get(c.url + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	defer resp.Body.Close()
	var jobs []telemetry.Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatalf("decode /jobs: %v", err)
	}
	return jobs
}

// waitJob polls the child until job id is terminal.
func (c *chaosChild) waitJob(t *testing.T, id int) telemetry.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", c.url, id))
		if err != nil {
			t.Fatalf("GET /jobs/%d: %v", id, err)
		}
		var j telemetry.Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %d: %v", id, err)
		}
		switch j.State {
		case "done", "failed", "cancelled":
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %q", id, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeKillRestartRecovery is the chaos battery's main sequence:
// warm a key, SIGKILL the server mid-storm, restart it on the same state
// dir, and assert the three durability promises — the hot key is hot
// again, the lost jobs requeue and complete, and every listing matches an
// uninterrupted mine. Finally the graceful SIGTERM path must exit 0 with
// a flushed snapshot.
func TestServeKillRestartRecovery(t *testing.T) {
	if testing.Short() && os.Getenv("CI") == "" {
		// The battery forks, kills and restarts subprocesses: a second or
		// two of wall clock. CI always runs it (the chaos-serve job passes
		// -short for the rest of the suite); locally -short skips it.
		t.Skip("chaos battery skipped in -short outside CI")
	}
	dataDir := t.TempDir()
	stateDir := t.TempDir()
	hot := chaosDataset(t, dataDir, "hot.dat", 3000, 31)
	slow := chaosDataset(t, dataDir, "slow.dat", 9000, 32)

	child := startChaosChild(t, stateDir)
	defer func() {
		if child.cmd.ProcessState == nil {
			child.cmd.Process.Kill() //nolint:errcheck
			child.cmd.Wait()         //nolint:errcheck
		}
	}()

	// Warm the hot key and let the persister write it out.
	hotReq := telemetry.JobRequest{Path: hot, Algo: "lcm", MinSupport: 5, Workers: 1}
	hotJob, code := postJob(t, child.url, hotReq)
	if code != http.StatusAccepted {
		t.Fatalf("hot submit = %d", code)
	}
	first := child.waitJob(t, hotJob.ID)
	if first.State != "done" || first.ServedFromCache {
		t.Fatalf("hot warmup: %+v", first)
	}
	snapPath := filepath.Join(stateDir, snapshotFileName)
	waitSnapshotEntries(t, snapPath, 1)

	// Storm: six distinct slow jobs through the single runner, then
	// SIGKILL while at least one is running and at least one is queued.
	var storm []telemetry.Job
	for i := 0; i < 6; i++ {
		j, code := postJob(t, child.url, telemetry.JobRequest{
			Path: slow, Algo: "lcm", MinSupport: 3 + i, Workers: 1})
		if code != http.StatusAccepted {
			t.Fatalf("storm submit %d = %d", i, code)
		}
		storm = append(storm, j)
	}
	stormID := map[int]bool{}
	for _, j := range storm {
		stormID[j.ID] = true
	}
	killDeadline := time.Now().Add(30 * time.Second)
	for {
		var running, queued int
		for _, j := range child.jobs(t) {
			if !stormID[j.ID] {
				continue
			}
			switch j.State {
			case "running":
				running++
			case "queued":
				queued++
			}
		}
		if running >= 1 && queued >= 1 {
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatal("storm never reached the running+queued kill window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := child.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	child.cmd.Wait() //nolint:errcheck

	// Restart against the same state dir.
	child2 := startChaosChild(t, stateDir)
	defer func() {
		if child2.cmd.ProcessState == nil {
			child2.cmd.Process.Kill() //nolint:errcheck
			child2.cmd.Wait()         //nolint:errcheck
		}
	}()

	// Promise 1: the hot key is hot again — served from the restored
	// snapshot without re-mining, with the original answer.
	rewarm, code := postJob(t, child2.url, hotReq)
	if code != http.StatusAccepted {
		t.Fatalf("post-restart hot submit = %d", code)
	}
	warm := child2.waitJob(t, rewarm.ID)
	if warm.State != "done" || !warm.ServedFromCache {
		t.Fatalf("post-restart hot job not served from the restored cache: %+v", warm)
	}
	if warm.Itemsets != first.Itemsets {
		t.Fatalf("restored hot listing has %d itemsets, pre-kill mine had %d", warm.Itemsets, first.Itemsets)
	}

	// Promise 2: the jobs the kill lost were requeued (recovered:true)
	// and complete.
	var recovered []telemetry.Job
	for _, j := range child2.jobs(t) {
		if j.Recovered {
			recovered = append(recovered, j)
		}
	}
	if len(recovered) == 0 {
		t.Fatal("restart recovered no jobs from the journal")
	}
	// Promise 3: recovered answers are identical to uninterrupted mines.
	db, err := fpm.ReadFIMIFile(slow)
	if err != nil {
		t.Fatal(err)
	}
	directCount := map[int]int{}
	for _, rj := range recovered {
		final := child2.waitJob(t, rj.ID)
		if final.State != "done" {
			t.Fatalf("recovered job %d ended %q: %+v", rj.ID, final.State, final)
		}
		ms := final.Request.MinSupport
		if _, ok := directCount[ms]; !ok {
			direct, err := fpm.Mine(db, "lcm", fpm.Applicable("lcm"), ms)
			if err != nil {
				t.Fatal(err)
			}
			directCount[ms] = len(direct)
		}
		if final.Itemsets != directCount[ms] {
			t.Fatalf("recovered job at minsup %d reported %d itemsets, direct mine has %d",
				ms, final.Itemsets, directCount[ms])
		}
	}

	// Graceful half: SIGTERM flushes a final snapshot and exits 0.
	if err := child2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v; output:\n%s", err, child2.out.String())
	}
	if !strings.Contains(child2.out.String(), "PASS") {
		t.Fatalf("chaos child did not pass cleanly:\n%s", child2.out.String())
	}

	// The flushed snapshot holds the hot listing byte-identically to a
	// direct canonical mine — the strongest form of "listings identical
	// to an uninterrupted run".
	snap, err := servecache.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	hotDB, err := fpm.ReadFIMIFile(hot)
	if err != nil {
		t.Fatal(err)
	}
	hotDirect, err := fpm.Mine(hotDB, "lcm", fpm.Applicable("lcm"), 5)
	if err != nil {
		t.Fatal(err)
	}
	wantSets := servecache.Canonicalize(hotDirect)
	var found bool
	for _, e := range snap.Entries {
		if e.Path != hot || e.MinSupport != 5 {
			continue
		}
		found = true
		if len(e.Sets) != len(wantSets) {
			t.Fatalf("snapshot hot listing has %d sets, direct mine %d", len(e.Sets), len(wantSets))
		}
		for i := range wantSets {
			if e.Sets[i].Support != wantSets[i].Support ||
				!equalItems(e.Sets[i].Items, wantSets[i].Items) {
				t.Fatalf("snapshot listing diverges from the direct mine at set %d: %+v vs %+v",
					i, e.Sets[i], wantSets[i])
			}
		}
	}
	if !found {
		t.Fatalf("final snapshot lost the hot listing; entries: %d", len(snap.Entries))
	}
}

func equalItems(a, b []fpm.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chaosDataset writes a Quest corpus at a stable path (the same bytes on
// every call with the same seed — both child generations must see one
// identity).
func chaosDataset(t *testing.T, dir, name string, tx int, seed int64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	db := fpm.GenerateQuest(fpm.QuestConfig{
		Transactions: tx, AvgLen: 8, AvgPatternLen: 4, Items: 200, Patterns: 400, Seed: seed,
	})
	if err := fpm.WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

// waitSnapshotEntries polls until the snapshot file decodes with at least
// n entries.
func waitSnapshotEntries(t *testing.T, path string, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if snap, err := servecache.ReadSnapshotFile(path); err == nil && len(snap.Entries) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot at %s never reached %d entries", path, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
