package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fpm"
	"fpm/internal/telemetry"
)

// testDataset writes a small Quest corpus and returns its path.
func testDataset(t *testing.T, tx int, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "storm.dat")
	db := fpm.GenerateQuest(fpm.QuestConfig{
		Transactions: tx, AvgLen: 8, AvgPatternLen: 4, Items: 200, Patterns: 400, Seed: seed,
	})
	if err := fpm.WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

func postJob(t *testing.T, url string, req telemetry.JobRequest) (telemetry.Job, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job telemetry.Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return job, resp.StatusCode
}

// waitNoGoroutineGrowth polls until the goroutine count returns to its
// pre-storm level (+2 slack for runtime/httptest helpers).
func waitNoGoroutineGrowth(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // flush idle HTTP keep-alive conns promptly
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after storm", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeSubmitCancelScrapeStorm is the serve-layer race test: N clients
// concurrently submit, poll, and cancel real mining jobs over HTTP against
// a 4-runner pool with deliberately tiny serving caches (constant eviction
// churn, mixed hot/cold keys), while scrapers hammer /metrics and
// /progress. Run in CI's race matrix. Every admitted job must reach a
// terminal state (zero dropped results), the job-state counters must
// balance, and tearing the server down afterwards must leave no goroutines
// behind.
func TestServeSubmitCancelScrapeStorm(t *testing.T) {
	// Two hot datasets (cache-friendly) plus cold ones that thrash the
	// small dataset cache.
	paths := []string{testDataset(t, 3000, 1), testDataset(t, 2500, 2),
		testDataset(t, 2000, 3), testDataset(t, 1500, 4)}
	before := runtime.NumGoroutine()

	inst := NewInstance(Config{
		QueueCap:          32,
		MaxConcurrent:     4,
		MemBudget:         256 << 20,
		DatasetCacheBytes: 512 << 10, // ~a couple of parsed DBs: forces eviction
		ResultCacheBytes:  8 << 20,   // roomy enough that hot listings stick
	})
	srv, store := inst.Server, inst.Store
	ts := httptest.NewServer(srv.Handler())

	const (
		clients    = 8
		opsPerSide = 12
	)
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ { // concurrent scrapers
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
				resp, err = http.Get(ts.URL + "/progress")
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}

	var mu sync.Mutex
	var admitted []int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for op := 0; op < opsPerSide; op++ {
				p := paths[0] // hot key two thirds of the time
				if rng.Intn(3) == 0 {
					p = paths[1+rng.Intn(len(paths)-1)]
				}
				req := telemetry.JobRequest{Path: p, Algo: "lcm", MinSupport: 4, Workers: 1}
				if rng.Intn(4) == 0 {
					req.TimeoutMS = int64(rng.Intn(10) + 1)
				}
				job, code := postJob(t, ts.URL, req)
				if code == http.StatusTooManyRequests {
					continue // backpressure is a legal storm outcome
				}
				if code != http.StatusAccepted {
					t.Errorf("client %d: POST /jobs = %d", id, code)
					return
				}
				mu.Lock()
				admitted = append(admitted, job.ID)
				mu.Unlock()
				if rng.Intn(2) == 0 { // cancel half mid-flight
					time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
					hreq, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, job.ID), nil)
					resp, err := http.DefaultClient.Do(hreq)
					if err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()

	// Drain: every admitted job must reach a terminal state.
	store.Close()
	terminal := map[string]bool{"done": true, "failed": true, "cancelled": true}
	stateOf := func(id int) string {
		j, ok := store.Get(id)
		if !ok {
			t.Fatalf("admitted job %d vanished", id)
		}
		return j.State
	}
	for _, id := range admitted {
		if s := stateOf(id); !terminal[s] {
			t.Errorf("job %d stuck in state %q after drain", id, s)
		}
	}

	// The incremental counters must agree with the terminal census.
	js := store.Stats()
	if js.Queued != 0 || js.Running != 0 {
		t.Errorf("post-drain gauges: %+v", js)
	}
	if got := js.Done + js.Failed + js.Cancelled; got != uint64(len(admitted)) {
		t.Errorf("terminal counters sum to %d, want %d admitted", got, len(admitted))
	}

	// The hot key must actually have exercised the caches mid-storm.
	cs := inst.Caches.Stats()
	if cs.Dataset.Hits == 0 {
		t.Errorf("storm never hit the dataset cache: %+v", cs.Dataset)
	}
	if cs.Result.HitsExact == 0 && js.CacheServed == 0 {
		t.Errorf("storm never served from the result cache: %+v (store %+v)", cs.Result, js)
	}

	ts.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	waitNoGoroutineGrowth(t, before)
}

// TestServeDrainMidStorm pins the T4 acceptance shape: a cancellation
// storm is in full flight when the server is told to shut down (the
// SIGTERM path minus the signal); the drain must cancel the job in
// flight, mark queued jobs cancelled, unwind cleanly, and leak nothing.
func TestServeDrainMidStorm(t *testing.T) {
	path := testDataset(t, 8000, 2)
	before := runtime.NumGoroutine()

	srv, store := New(Config{QueueCap: 16})
	ts := httptest.NewServer(srv.Handler())

	// Flood with slow jobs, cancelling some, until the drain signal.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				job, code := postJob(t, ts.URL, telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 3, Workers: 1})
				if code == http.StatusAccepted && rng.Intn(2) == 0 {
					hreq, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, job.ID), nil)
					if resp, err := http.DefaultClient.Do(hreq); err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(c)
	}
	time.Sleep(100 * time.Millisecond) // let the storm build a queue

	// Drain exactly as runServe does on SIGTERM: store first, then server.
	done := make(chan struct{})
	go func() {
		defer close(done)
		store.Shutdown()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("store.Shutdown hung mid-storm")
	}
	close(stop)
	wg.Wait()

	js := store.Stats()
	if js.Queued != 0 || js.Running != 0 {
		t.Errorf("post-shutdown gauges: %+v", js)
	}
	for _, j := range store.List() {
		switch j.State {
		case "done", "failed", "cancelled":
		default:
			t.Errorf("job %d left in state %q after shutdown", j.ID, j.State)
		}
	}

	ts.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	waitNoGoroutineGrowth(t, before)
}

// TestParsePatterns covers the shared pattern-list parser the CLI flag
// and the job-request field both route through.
func TestParsePatterns(t *testing.T) {
	ps, err := ParsePatterns("lex,simd", "eclat")
	if err != nil || !ps.Has(fpm.Lex) || !ps.Has(fpm.SIMD) {
		t.Fatalf("ParsePatterns(lex,simd) = %v, %v", ps, err)
	}
	if ps, err := ParsePatterns("", "lcm"); err != nil || ps != 0 {
		t.Fatalf("empty list = %v, %v", ps, err)
	}
	if got, err := ParsePatterns("all", "lcm"); err != nil || got != fpm.Applicable("lcm") {
		t.Fatalf("all = %v, %v", got, err)
	}
	if _, err := ParsePatterns("bogus", "lcm"); err == nil {
		t.Fatal("unknown pattern must error")
	}
}

// TestMineJobValidation: a bad min_support fails fast without touching
// the filesystem.
func TestMineJobValidation(t *testing.T) {
	if _, err := MineJob(context.Background(), telemetry.JobRequest{Path: "nope", Algo: "lcm"}, fpm.NewMetricsRecorder()); err == nil {
		t.Fatal("min_support 0 must be rejected")
	}
}

// waitTerminal polls until job id leaves the queue/runner.
func waitTerminal(t *testing.T, store *telemetry.Store, id int) telemetry.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := store.Get(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		switch j.State {
		case "done", "failed", "cancelled":
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %q", id, j.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeResultCacheEndToEnd drives the full serving stack: the first
// job mines, the repeat is served from the result cache (itemset count
// identical, served_from_cache set, mine time collapsed), a
// higher-minsup query is answered by subsumption with the exact direct
// answer, and every served job keeps coherent timestamps — queue-wait
// and mine-time attribution is what the load harness splits on.
func TestServeResultCacheEndToEnd(t *testing.T) {
	path := testDataset(t, 4000, 9)
	inst := NewInstance(Config{QueueCap: 8, MaxConcurrent: 2})
	defer inst.Store.Shutdown()

	submit := func(minsup int) telemetry.Job {
		t.Helper()
		job, err := inst.Store.Submit(telemetry.JobRequest{Path: path, Algo: "eclat", MinSupport: minsup, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		j := waitTerminal(t, inst.Store, job.ID)
		if j.State != "done" {
			t.Fatalf("job %d: %+v", job.ID, j)
		}
		if j.Started.Before(j.Submitted) || j.Finished.Before(j.Started) {
			t.Fatalf("job %d timestamps incoherent: %+v", job.ID, j)
		}
		return j
	}

	first := submit(5)
	if first.ServedFromCache {
		t.Fatal("cold mine claimed to be cache-served")
	}
	repeat := submit(5)
	if !repeat.ServedFromCache {
		t.Fatal("repeat job was not served from the result cache")
	}
	if repeat.Itemsets != first.Itemsets {
		t.Fatalf("cached answer has %d itemsets, fresh mine had %d", repeat.Itemsets, first.Itemsets)
	}
	// A cache-served job's mine time is a lookup, not a mining run: it must
	// be far below the real mine's (and its stats snapshot stays empty —
	// nothing was counted because nothing ran).
	mineTime := func(j telemetry.Job) time.Duration { return j.Finished.Sub(j.Started) }
	if mt, orig := mineTime(repeat), mineTime(first); orig > 10*time.Millisecond && mt > orig/2 {
		t.Errorf("cache-served mine time %v not collapsed vs fresh %v", mt, orig)
	}
	if repeat.Stats != nil && repeat.Stats.Nodes != 0 {
		t.Errorf("cache-served job expanded %d nodes; the mine was supposed to be skipped", repeat.Stats.Nodes)
	}

	// Higher minsup: answered by subsumption, and identical to mining it.
	subsumed := submit(9)
	if !subsumed.ServedFromCache {
		t.Fatal("higher-minsup query was not subsumed by the cached listing")
	}
	db, err := fpm.ReadFIMIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fpm.Mine(db, "eclat", fpm.Applicable("eclat"), 9)
	if err != nil {
		t.Fatal(err)
	}
	if subsumed.Itemsets != len(direct) {
		t.Fatalf("subsumed answer has %d itemsets, direct mine has %d", subsumed.Itemsets, len(direct))
	}

	cs := inst.Caches.Stats()
	if cs.Result.HitsExact != 1 || cs.Result.HitsSubsumed != 1 {
		t.Fatalf("cache stats = %+v, want 1 exact + 1 subsumed hit", cs.Result)
	}
	if got := inst.Store.Stats().CacheServed; got != 2 {
		t.Fatalf("store counted %d cache-served jobs, want 2", got)
	}
}

// With the result cache disabled, a repeat job mines again and is never
// marked served_from_cache — the before/after lever the load harness's
// cache comparison relies on.
func TestServeCacheDisabled(t *testing.T) {
	path := testDataset(t, 1500, 10)
	inst := NewInstance(Config{QueueCap: 8, DisableResultCache: true, DisableDatasetCache: true})
	defer inst.Store.Shutdown()
	for i := 0; i < 2; i++ {
		job, err := inst.Store.Submit(telemetry.JobRequest{Path: path, Algo: "lcm", MinSupport: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if j := waitTerminal(t, inst.Store, job.ID); j.State != "done" || j.ServedFromCache {
			t.Fatalf("cache-disabled job %d: %+v", i, j)
		}
	}
	if got := inst.Store.Stats().CacheServed; got != 0 {
		t.Fatalf("cache-disabled store counted %d cache-served jobs", got)
	}
	cs := inst.Caches.Stats()
	if cs.Dataset.Hits != 0 || cs.Result.HitsExact != 0 {
		t.Fatalf("disabled caches recorded hits: %+v", cs)
	}
}
