package tune

import (
	"strings"
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/exp"
	"fpm/internal/memsim"
	"fpm/internal/mine"
	"fpm/internal/simkern"
)

func TestAlgorithmChoiceDenseVsSparse(t *testing.T) {
	dense := dataset.Stats{Transactions: 10000, Items: 200, AvgLen: 40, Density: 0.2, Clustering: 0.3}
	if r := Recommend(dense, 1500, memsim.M1()); r.Algorithm != mine.Eclat {
		t.Errorf("dense high-support input should pick Eclat, got %s (%v)", r.Algorithm, r.Rationale)
	}
	sparse := dataset.Stats{Transactions: 100000, Items: 20000, AvgLen: 10, Density: 0.0005, Clustering: 0.05}
	if r := Recommend(sparse, 100, memsim.M1()); r.Algorithm != mine.LCM {
		t.Errorf("sparse input should pick LCM, got %s", r.Algorithm)
	}
}

func TestLexRules(t *testing.T) {
	random := dataset.Stats{Transactions: 50000, Items: 1000, AvgLen: 30, Density: 0.03, Clustering: 0.02}
	r := Recommend(random, 100, memsim.M1())
	if !r.Patterns.Has(mine.Lex) {
		t.Errorf("random order should enable Lex: %v", r.Rationale)
	}
	clustered := random
	clustered.Clustering = 0.5
	if r := Recommend(clustered, 100, memsim.M1()); r.Patterns.Has(mine.Lex) {
		t.Errorf("pre-clustered input should not pay for Lex: %v", r.Rationale)
	}
	huge := random
	huge.Transactions = 2_000_000
	if r := Recommend(huge, 100, memsim.M1()); r.Patterns.Has(mine.Lex) {
		t.Error("huge transaction count should disable Lex (the paper's DS4 lesson)")
	}
}

func TestSIMDRuleFollowsMachine(t *testing.T) {
	dense := dataset.Stats{Transactions: 10000, Items: 200, AvgLen: 40, Density: 0.2, Clustering: 0.3}
	m1 := Recommend(dense, 1500, memsim.M1())
	if !m1.Patterns.Has(mine.SIMD) {
		t.Error("M1 (full-width SSE2) should enable SIMD")
	}
	weak := memsim.M2()
	weak.SIMDOpsPerCycle = 0.2
	if r := Recommend(dense, 1500, weak); r.Patterns.Has(mine.SIMD) {
		t.Error("a machine with poor vector throughput should not enable SIMD")
	}
}

func TestRecommendationsAreApplicable(t *testing.T) {
	// Whatever is recommended must be within the kernel's Table 4 row.
	for _, s := range []dataset.Stats{
		{Transactions: 1000, Items: 100, AvgLen: 5, Density: 0.05, Clustering: 0.1},
		{Transactions: 500000, Items: 5000, AvgLen: 60, Density: 0.012, Clustering: 0.4},
		{Transactions: 2_000_000, Items: 20000, AvgLen: 12, Density: 0.0006, Clustering: 0.08},
	} {
		for _, cfg := range []memsim.Config{memsim.M1(), memsim.M2()} {
			r := Recommend(s, s.Transactions/100+1, cfg)
			if r.Patterns&^mine.Applicable(r.Algorithm) != 0 {
				t.Errorf("recommended inapplicable patterns %v for %s", r.Patterns, r.Algorithm)
			}
			if len(r.Rationale) == 0 {
				t.Error("empty rationale")
			}
			if !strings.Contains(r.String(), string(r.Algorithm)) {
				t.Errorf("String() = %q", r.String())
			}
		}
	}
}

// TestRecommendationNearMeasuredBest validates the §6 rule set against the
// simulator: on the DS1-like workload the recommended LCM pattern set must
// achieve at least 80% of the best measured speedup over the power set of
// Figure 8 levers.
func TestRecommendationNearMeasuredBest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := exp.Options{Scale: 0.0015, Seed: 7, MaxColumns: 24, MaxVectors: 24}
	ds := o.Datasets()[0]
	cfg := memsim.M1()
	stats := dataset.ComputeStats(ds.DB)
	rec := Recommend(stats, ds.Support, cfg)

	run := func(ps mine.PatternSet) float64 {
		return simkern.LCM(ds.DB, ds.Support, ps, cfg, simkern.LCMOptions{MaxColumns: 24}).TotalCycles()
	}
	base := run(0)
	recSpeedup := base / run(rec.Patterns&mine.Applicable(mine.LCM))

	best := 1.0
	levers := exp.Levers(mine.LCM)
	for massk := 1; massk < 1<<len(levers); massk++ {
		var ps mine.PatternSet
		for i, l := range levers {
			if massk&(1<<i) != 0 {
				ps |= l.Patterns
			}
		}
		if sp := base / run(ps); sp > best {
			best = sp
		}
	}
	if recSpeedup < 0.8*best {
		t.Fatalf("recommendation %v achieves %.2f, best is %.2f", rec.Patterns, recSpeedup, best)
	}
	t.Logf("recommended %v: %.2f of best %.2f", rec.Patterns, recSpeedup, best)
}
