// Package tune implements the paper's stated future work (§6): "the
// problem of selecting an optimal set of transformations, given the input
// and machine parameters". It turns the qualitative guidance of §4.4 into
// an executable rule set over dataset statistics and machine
// configuration:
//
//   - software prefetch and aggregation work better for long linked data
//     structures (longer average transactions → deeper FP-trees);
//   - lexicographic ordering works better when the input transaction
//     order is random (low clustering) and is very expensive when the
//     transaction count is huge;
//   - tiling works better when the transactions are clustered (more
//     cache reuse) and when the L1 is small relative to the database;
//   - SIMDization pays off in proportion to the machine's vector
//     throughput;
//   - no single algorithm dominates: the vertical bit-matrix (Eclat)
//     wins on dense high-support inputs, the array/tree miners on sparse
//     ones.
package tune

import (
	"fmt"

	"fpm/internal/dataset"
	"fpm/internal/memsim"
	"fpm/internal/mine"
)

// Recommendation is a tuned configuration for one input/machine pair.
type Recommendation struct {
	Algorithm mine.Algorithm
	Patterns  mine.PatternSet
	// Rationale holds one human-readable line per decision.
	Rationale []string
}

// Thresholds collects the decision boundaries; exposed so they can be
// recalibrated against measured sweeps (see the package tests, which
// validate recommendations against the simulator's measured best).
type Thresholds struct {
	// DenseDensity is the matrix density above which the vertical
	// bit-matrix representation (Eclat) is preferred.
	DenseDensity float64
	// RelSupportDense is the relative support (minsup/transactions) above
	// which Eclat's pruning keeps the bit-matrix small enough to win.
	RelSupportDense float64
	// LongTxLen is the average transaction length from which linked
	// structures become deep enough for prefetch/aggregation to pay.
	LongTxLen float64
	// RandomClustering is the adjacent-transaction similarity below which
	// the input order counts as random (lex ordering has headroom).
	RandomClustering float64
	// ManyTransactions is the transaction count beyond which the
	// lexicographic reorder's n·log n cost outweighs its benefit.
	ManyTransactions int
	// SIMDWorthwhile is the minimum vector throughput (ops/cycle) for
	// SIMDization to be recommended.
	SIMDWorthwhile float64
}

// DefaultThresholds returns boundaries calibrated on the Table 6 datasets
// and the M1/M2 machine models.
func DefaultThresholds() Thresholds {
	return Thresholds{
		DenseDensity:     0.02,
		RelSupportDense:  0.05,
		LongTxLen:        25,
		RandomClustering: 0.15,
		ManyTransactions: 1_000_000,
		SIMDWorthwhile:   0.5,
	}
}

// Recommend selects an algorithm and pattern set for the given input
// statistics, support threshold and machine, using DefaultThresholds.
func Recommend(s dataset.Stats, minSupport int, cfg memsim.Config) Recommendation {
	return RecommendWith(s, minSupport, cfg, DefaultThresholds())
}

// RecommendWith is Recommend with explicit thresholds.
func RecommendWith(s dataset.Stats, minSupport int, cfg memsim.Config, th Thresholds) Recommendation {
	var r Recommendation
	relSup := 0.0
	if s.Transactions > 0 {
		relSup = float64(minSupport) / float64(s.Transactions)
	}

	// --- Algorithm choice -------------------------------------------
	if s.Density >= th.DenseDensity && relSup >= th.RelSupportDense {
		r.Algorithm = mine.Eclat
		r.say("dense matrix (%.3f) at high relative support (%.3f): vertical bit-matrix miner", s.Density, relSup)
	} else {
		r.Algorithm = mine.LCM
		r.say("sparse or low-support input: horizontal array miner")
	}

	// --- Pattern selection -------------------------------------------
	applicable := mine.Applicable(r.Algorithm)

	lexOK := s.Clustering < th.RandomClustering
	if s.Transactions >= th.ManyTransactions {
		lexOK = false
		r.say("%d transactions: lexicographic reorder cost outweighs locality benefit", s.Transactions)
	}
	if lexOK && applicable.Has(mine.Lex) {
		r.Patterns = r.Patterns.With(mine.Lex)
		r.say("random input order (clustering %.3f): lexicographic ordering", s.Clustering)
	}

	if r.Algorithm == mine.Eclat {
		if cfg.SIMDOpsPerCycle >= th.SIMDWorthwhile && applicable.Has(mine.SIMD) {
			r.Patterns = r.Patterns.With(mine.SIMD)
			r.say("vector throughput %.1f ops/cycle: SIMDized AND+popcount", cfg.SIMDOpsPerCycle)
		}
		return r
	}

	// Data structure reorganisation is cheap and broadly beneficial for
	// the memory-bound kernels.
	if applicable.Has(mine.Compact) {
		r.Patterns = r.Patterns.With(mine.Compact)
		r.say("memory-bound kernel: compacted frequency counters")
	}
	if applicable.Has(mine.Aggregate) && s.AvgLen >= th.LongTxLen/2 {
		r.Patterns = r.Patterns.With(mine.Aggregate)
		r.say("linked-list buckets long enough to aggregate (avg len %.1f)", s.AvgLen)
	}

	dbBytes := float64(s.Transactions) * s.AvgLen * 4
	if applicable.Has(mine.Tile) && dbBytes > float64(cfg.L1.SizeBytes) && s.Density >= th.DenseDensity/4 {
		r.Patterns = r.Patterns.With(mine.Tile)
		r.say("database (%.0f KB) exceeds L1 (%d KB) with reuse available: tiling", dbBytes/1024, cfg.L1.SizeBytes>>10)
	}

	if applicable.Has(mine.Prefetch) && s.AvgLen >= th.LongTxLen/4 {
		r.Patterns = r.Patterns.With(mine.Prefetch)
		r.say("latency-bound traversal: wave-front software prefetch")
	}
	return r
}

// RecommendAlgorithmOnly picks between the three studied kernels for an
// input without choosing patterns (used by the CLI's "auto" mode).
func RecommendAlgorithmOnly(s dataset.Stats, minSupport int) mine.Algorithm {
	return Recommend(s, minSupport, memsim.M1()).Algorithm
}

func (r *Recommendation) say(format string, args ...any) {
	r.Rationale = append(r.Rationale, fmt.Sprintf(format, args...))
}

// String summarises the recommendation.
func (r Recommendation) String() string {
	return fmt.Sprintf("%s with %s", r.Algorithm, r.Patterns)
}
