package telemetry

import (
	"context"
	"errors"
	"math/rand"
	runtimemetrics "runtime/metrics"
	"sync"
	"time"

	"fpm/internal/failpoint"
	"fpm/internal/hdr"
	"fpm/internal/metrics"
)

// JobRequest describes one mining job submitted to `fpm serve`.
type JobRequest struct {
	// Path is the FIMI file to mine; the file must be readable by the
	// serving process.
	Path string `json:"path"`
	// Algo is the kernel name ("lcm", "eclat", "fpgrowth", "apriori",
	// "hmine", "tidset", "diffset").
	Algo string `json:"algo"`
	// Patterns is the tuning-pattern list ("lex,simd", "all", "none");
	// empty means all applicable patterns.
	Patterns   string `json:"patterns,omitempty"`
	MinSupport int    `json:"min_support"`
	// Workers selects mining parallelism as in the CLI: 1 sequential,
	// 0 GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// MemBudget, when positive, mines out-of-core through the partitioned
	// two-pass path with this resident-memory budget in bytes.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// TimeoutMS, when positive, bounds the job's mining wall time in
	// milliseconds; an overrunning job is cancelled cooperatively and
	// finishes "failed" with a deadline error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Job is one submission's lifecycle record.
type Job struct {
	ID      int        `json:"id"`
	Request JobRequest `json:"request"`
	// State is "queued", "running", "done", "failed", "cancelled" or
	// "requeued" ("requeued" only appears when a journal is configured:
	// a graceful shutdown drained the job with the intent that the next
	// boot resubmits it).
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Itemsets  int       `json:"itemsets"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Recovered marks a job resubmitted from the journal after a restart:
	// its original submission lived in a previous process.
	Recovered bool `json:"recovered,omitempty"`
	// Retries counts mine attempts beyond the first (transient failures
	// retried with backoff under StoreConfig.MaxRetries).
	Retries int `json:"retries,omitempty"`
	// ServedFromCache marks a job answered from the result cache: the
	// mine time (Finished - Started) is then the cache lookup, not a
	// mining run — load harnesses split their latency attribution on it.
	ServedFromCache bool `json:"served_from_cache,omitempty"`
	// MemEstimate is the footprint estimate the admission controller
	// charged against the memory budget while the job ran.
	MemEstimate int64 `json:"mem_estimate,omitempty"`
	// PeakBytes is the job's measured peak live-heap growth while it ran:
	// the maximum of the process heap observed at the mine boundaries and
	// by the in-flight sampler, minus the heap at mine start. With
	// concurrent runners the whole process delta is attributed to each
	// running job, so it is an upper bound — the conservative direction
	// for feeding admission. Zero until the job ends (and for cache-served
	// answers, which allocate nothing worth learning from).
	PeakBytes int64 `json:"peak_bytes,omitempty"`
	// EstimateRatio is PeakBytes / MemEstimate — below 1 the admission
	// estimate over-charged the budget (jobs queued that could have run),
	// above 1 it under-charged (the budget did not protect the process).
	EstimateRatio float64 `json:"estimate_ratio,omitempty"`
	// Stats is the run's final counter snapshot (nil until the job ends).
	Stats *metrics.Snapshot `json:"stats,omitempty"`

	// cancel aborts the run in flight; set only while State == "running".
	cancel context.CancelFunc
	// events is the job's flight recorder (see Event); guarded by the
	// store's mutex and excluded from the JSON record — GET
	// /jobs/{id}/events serves it.
	events *eventRing
	// heapBase/heapPeak carry the sampler's live-heap observations while
	// the job runs: base is the heap at mine start, peak the largest heap
	// seen since. Guarded by the store's mutex.
	heapBase int64
	heapPeak int64
}

// MineResult is what a MineFunc reports for a finished job.
type MineResult struct {
	// Itemsets is the frequent-itemset count of the answer.
	Itemsets int
	// FromCache marks an answer served from the result cache without
	// mining; the store surfaces it as Job.ServedFromCache.
	FromCache bool
}

// MineFunc executes one job, recording into rec, and returns the job's
// result. ctx carries the job's cancellation and deadline; implementations
// thread it into the mining run so DELETE /jobs/{id}, per-job timeouts and
// server shutdown all unwind the kernels cooperatively. Injected so the
// store stays free of the driver's import graph (the root fpm package
// wires the real miner in internal/serve).
type MineFunc func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error)

// FootprintFunc estimates a job's peak resident footprint in bytes, for
// admission control against StoreConfig.MemBudget. Estimates are
// deliberately conservative: over-estimating delays a job, while
// under-estimating OOMs the process. learned reports whether the estimate
// came from observed footprints of earlier runs rather than a static
// heuristic — the store counts the split (StoreStats.FootprintLearned /
// FootprintHeuristic) so the learning loop's coverage is visible on
// /metrics.
type FootprintFunc func(req JobRequest) (est int64, learned bool)

// ErrQueueFull is returned by Submit when the job queue has no room.
var ErrQueueFull = errors.New("telemetry: job queue full")

// ErrClosed is returned by Submit after Close or Shutdown.
var ErrClosed = errors.New("telemetry: job store closed")

// Store queues submitted jobs and runs them on a fixed pool of runner
// goroutines under memory-budget admission control. Jobs are admitted in
// strict FIFO order: the head of the queue runs as soon as a runner is
// free AND its estimated footprint fits under the memory budget
// (alongside everything already running and the bytes the serving caches
// hold). A head job that does not fit first asks the caches to shed cold
// bytes, then waits for running jobs to finish — it blocks the jobs
// behind it (head-of-line) rather than being bypassed, which keeps
// admission starvation-free: no stream of small jobs can park a big one
// forever. A job bigger than the whole budget still runs, alone, when
// nothing else is in flight — admission degrades to serialization, never
// to deadlock.
type Store struct {
	mine MineFunc
	// onStart receives each job's fresh recorder just before mining, so
	// the server's scrape endpoints follow a run in flight (with
	// concurrent runners, the most recently started one).
	onStart func(*metrics.Recorder)

	footprint     FootprintFunc
	cacheResident func() int64
	shed          func(need int64) int64
	memBudget     int64

	journal    *Journal
	maxRetries int
	retryBase  time.Duration
	retryMax   time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []*Job
	pending []int // queued job ids, FIFO
	memUsed int64 // admission reservations of running jobs
	// admitted counts jobs popped by next() whose run() has not yet
	// finished. It is what admission waits on: unlike stats.Running
	// (incremented only once run() re-locks), it is bumped in the same
	// critical section that pops the queue, so two runners can never both
	// observe "nothing in flight" and force-admit oversized jobs
	// concurrently.
	admitted int
	closed   bool // queue closed; no further submissions
	aborting bool // Shutdown in progress; queued jobs drain as cancelled
	stats    StoreStats

	// hists are the server-side latency and footprint histograms, one
	// Record per job at its terminal transition (including jobs cancelled
	// while queued, with zero mine time, so every family's count equals
	// jobs finished). Guarded by mu; Histograms() snapshots them.
	hists JobHists

	eventCap         int
	eventSink        func(Event)
	observeFootprint func(req JobRequest, peakBytes int64)

	// sampler lifecycle: started lazily by the first run() (stores that
	// never run a job never pay for the goroutine), joined by
	// Close/Shutdown after the runners drain.
	samplerOnce sync.Once
	samplerStop chan struct{}
	stopOnce    sync.Once
	samplerWG   sync.WaitGroup

	wg sync.WaitGroup // runner goroutines
}

// JobHists bundles the store's per-job histograms: queue wait
// (Started-Submitted), mine time (Finished-Started), end-to-end
// (Finished-Submitted) — all in nanoseconds — and measured peak footprint
// in bytes. Each is recorded exactly once per job at its terminal
// transition, so the families' counts stay equal.
type JobHists struct {
	QueueWait hdr.Hist
	Mine      hdr.Hist
	E2E       hdr.Hist
	Footprint hdr.Hist
}

// StoreStats is a consistent point-in-time view of the job store, for the
// /metrics gauges and for load harnesses watching backpressure. Queued,
// Running and MemUsed are instantaneous; the rest are cumulative since
// start.
type StoreStats struct {
	QueueCap      int    `json:"queue_cap"`
	MaxConcurrent int    `json:"max_concurrent"`
	MemBudget     int64  `json:"mem_budget,omitempty"`
	MemUsed       int64  `json:"mem_used"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	Submitted     uint64 `json:"submitted"`
	Rejected      uint64 `json:"rejected"`
	Done          uint64 `json:"done"`
	Failed        uint64 `json:"failed"`
	Cancelled     uint64 `json:"cancelled"`
	// CacheServed counts done jobs answered from the result cache.
	CacheServed uint64 `json:"cache_served"`
	// Shed counts the times admission asked the caches to shed cold bytes
	// on behalf of a memory-blocked head job.
	Shed uint64 `json:"shed"`
	// FootprintLearned / FootprintHeuristic split admitted jobs by where
	// their footprint estimate came from: observed earlier runs vs the
	// static heuristic (see FootprintFunc).
	FootprintLearned   uint64 `json:"footprint_learned"`
	FootprintHeuristic uint64 `json:"footprint_heuristic"`
	// Retried counts mine attempts retried after a transient failure;
	// Recovered counts jobs resubmitted from the journal at startup;
	// Requeued counts jobs a graceful shutdown drained as
	// requeue-on-restart instead of cancelling.
	Retried   uint64 `json:"retried"`
	Recovered uint64 `json:"recovered"`
	Requeued  uint64 `json:"requeued"`
}

// DefaultQueueCap bounds the pending-job queue when NewStore is used.
const DefaultQueueCap = 64

// StoreConfig shapes a job store.
type StoreConfig struct {
	// QueueCap bounds the pending-job queue (minimum 1); submissions
	// beyond it are rejected with ErrQueueFull. 0 means DefaultQueueCap.
	QueueCap int
	// MaxConcurrent is the runner-goroutine count (minimum 1). Mining
	// parallelism inside a job (JobRequest.Workers) is independent.
	MaxConcurrent int
	// MemBudget, when positive, is the global memory budget in bytes that
	// admission control enforces: a job is admitted only when its
	// Footprint estimate fits alongside the running jobs' estimates plus
	// CacheResident(). 0 disables admission control.
	MemBudget int64
	// Footprint estimates a job's peak resident bytes; nil means 0 (every
	// job fits).
	Footprint FootprintFunc
	// CacheResident reports the bytes the serving caches currently hold,
	// so cached state and running jobs share one budget; nil means 0.
	CacheResident func() int64
	// Shed asks the caches to free up to need cold bytes and returns the
	// bytes freed; admission calls it before making the head job wait.
	// nil means nothing can be shed.
	Shed func(need int64) int64
	// EventCap bounds each job's flight-recorder ring (minimum 1); the
	// oldest events are dropped first and counted. 0 means
	// DefaultEventCap.
	EventCap int
	// EventSink, when non-nil, receives every recorded event as it is
	// appended — the hook `fpm serve -log-json` streams NDJSON through.
	// It runs under the store's lock: keep it fast, never call back into
	// the Store.
	EventSink func(Event)
	// ObserveFootprint, when non-nil, receives each mined job's request
	// and measured peak footprint after the job finishes "done" without
	// being served from the result cache — the feedback edge that lets a
	// learner turn Footprint estimates into measured costs. Called outside
	// the store's lock.
	ObserveFootprint func(req JobRequest, peakBytes int64)
	// Journal, when non-nil, receives one WAL record per job state
	// transition (submitted/running/terminal), making the store's queue
	// recoverable across restarts: see OpenJournal / PendingRequests. A
	// journal also changes Shutdown's drain semantics — queued jobs are
	// journaled as requeue-on-restart instead of cancelled, so a rolling
	// restart does not shed its backlog. The store appends but never
	// closes it; the owner does, after Shutdown returns.
	Journal *Journal
	// MaxRetries bounds transparent retries of a transiently failed mine
	// attempt (any error other than cancellation or deadline); 0 disables
	// retries. Retries stay inside the job's "running" state and are
	// visible as "retry" flight-recorder events and Job.Retries.
	MaxRetries int
	// RetryBaseDelay / RetryMaxDelay shape the capped exponential backoff
	// between attempts (full jitter in the upper half of the window).
	// Zero means DefaultRetryBaseDelay / DefaultRetryMaxDelay.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
}

// Default retry backoff shape: base 25ms doubling to a 1s cap keeps a
// two-retry policy well under any interactive timeout while spacing
// attempts enough for a transient I/O fault to clear.
const (
	DefaultRetryBaseDelay = 25 * time.Millisecond
	DefaultRetryMaxDelay  = time.Second
)

// NewStore starts a single-runner store with the default queue cap.
// onStart may be nil.
func NewStore(mine MineFunc, onStart func(*metrics.Recorder)) *Store {
	return NewStoreWithConfig(mine, onStart, StoreConfig{})
}

// NewStoreWithCap starts a single-runner store with room for queueCap
// pending jobs (minimum 1); submissions beyond the cap are rejected with
// ErrQueueFull so callers see backpressure instead of unbounded growth.
func NewStoreWithCap(mine MineFunc, onStart func(*metrics.Recorder), queueCap int) *Store {
	return NewStoreWithConfig(mine, onStart, StoreConfig{QueueCap: queueCap})
}

// NewStoreWithConfig starts the runner pool described by cfg.
func NewStoreWithConfig(mine MineFunc, onStart func(*metrics.Recorder), cfg StoreConfig) *Store {
	if cfg.QueueCap < 1 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.EventCap == 0 {
		cfg.EventCap = DefaultEventCap
	}
	if cfg.EventCap < 1 {
		cfg.EventCap = 1
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if cfg.RetryMaxDelay < cfg.RetryBaseDelay {
		cfg.RetryMaxDelay = cfg.RetryBaseDelay
	}
	st := &Store{
		mine:             mine,
		onStart:          onStart,
		footprint:        cfg.Footprint,
		cacheResident:    cfg.CacheResident,
		shed:             cfg.Shed,
		memBudget:        cfg.MemBudget,
		journal:          cfg.Journal,
		maxRetries:       cfg.MaxRetries,
		retryBase:        cfg.RetryBaseDelay,
		retryMax:         cfg.RetryMaxDelay,
		eventCap:         cfg.EventCap,
		eventSink:        cfg.EventSink,
		observeFootprint: cfg.ObserveFootprint,
		samplerStop:      make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	st.stats.QueueCap = cfg.QueueCap
	st.stats.MaxConcurrent = cfg.MaxConcurrent
	st.stats.MemBudget = cfg.MemBudget
	st.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go st.runner()
	}
	return st
}

// Stats returns the store's current depth gauges and cumulative counters.
// The snapshot is consistent: every submitted job is counted in exactly
// one of Queued, Running, Done, Failed or Cancelled.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.MemUsed = st.memUsed
	return s
}

// Close stops accepting jobs and waits for the queue to drain; jobs
// already queued still run to completion. Use Shutdown to abandon them
// instead.
func (st *Store) Close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.cond.Broadcast()
	st.wg.Wait()
	st.stopSampler()
}

// Shutdown stops accepting jobs, cancels the jobs in flight (if any),
// drains still-queued jobs without running them, and waits for the
// runner goroutines to exit. Without a journal, drained jobs are marked
// cancelled; with one they are journaled as requeue-on-restart (state
// "requeued") so the next boot resubmits them — a rolling restart keeps
// its backlog. Idempotent, and safe after Close.
func (st *Store) Shutdown() {
	st.mu.Lock()
	st.aborting = true
	st.closed = true
	var cancels []context.CancelFunc
	for _, j := range st.jobs {
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	for _, c := range cancels {
		c()
	}
	st.wg.Wait()
	st.stopSampler()
}

// stopSampler joins the peak-heap sampler if one was started. Runner
// goroutines are already drained when this runs, so the samplerOnce that
// could start one has fired (or never will).
func (st *Store) stopSampler() {
	st.stopOnce.Do(func() { close(st.samplerStop) })
	st.samplerWG.Wait()
}

// Submit enqueues a job and returns its record in the "queued" state.
// When the queue is at capacity the submission is rejected with
// ErrQueueFull and leaves no job record behind — a rejection storm must
// not grow the store's memory.
func (st *Store) Submit(req JobRequest) (Job, error) {
	return st.submit(req, false)
}

// SubmitRecovered enqueues a job replayed from the journal at startup.
// It is Submit with the recovery provenance attached: the job record
// (and its journal trail) carries recovered:true, and StoreStats.
// Recovered counts it — so a restarted server can report exactly what a
// crash (or a requeue-on-restart drain) handed back to it.
func (st *Store) SubmitRecovered(req JobRequest) (Job, error) {
	return st.submit(req, true)
}

func (st *Store) submit(req JobRequest, recovered bool) (Job, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return Job{}, ErrClosed
	}
	if len(st.pending) >= st.stats.QueueCap {
		st.stats.Rejected++
		st.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	job := &Job{ID: len(st.jobs), Request: req, State: "queued", Submitted: time.Now(),
		Recovered: recovered, events: newEventRing(st.eventCap)}
	st.jobs = append(st.jobs, job)
	st.pending = append(st.pending, job.ID)
	st.stats.Submitted++
	st.stats.Queued++
	if recovered {
		st.stats.Recovered++
		st.emitLocked(job, Event{Type: "submitted", Outcome: "recovered"})
	} else {
		st.emitLocked(job, Event{Type: "submitted"})
	}
	st.journal.Append(JournalRecord{Op: JournalOpSubmitted, Job: job.ID,
		TS: job.Submitted, Recovered: recovered, Req: &job.Request})
	snap := *job
	st.mu.Unlock()
	st.cond.Broadcast()
	return snap, nil
}

// Histograms returns a consistent snapshot of the per-job latency and
// footprint histograms, for the /metrics exporter and load harnesses.
func (st *Store) Histograms() JobHists {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hists
}

// recordTerminalLocked folds a job reaching its final state into the
// histograms and emits the terminal flight-recorder event. Every job path
// out of the store — run to completion, cancelled while queued, drained
// by Shutdown — funnels through here exactly once. Jobs that never ran
// have no Started; their whole life was queue wait and their mine time is
// zero.
func (st *Store) recordTerminalLocked(job *Job) {
	started := job.Started
	if started.IsZero() {
		started = job.Finished
	}
	st.hists.QueueWait.Record(started.Sub(job.Submitted).Nanoseconds())
	st.hists.Mine.Record(job.Finished.Sub(started).Nanoseconds())
	st.hists.E2E.Record(job.Finished.Sub(job.Submitted).Nanoseconds())
	st.hists.Footprint.Record(job.PeakBytes)
	st.emitLocked(job, Event{Type: "terminal", State: job.State, Error: job.Error,
		Itemsets: job.Itemsets, PeakBytes: job.PeakBytes})
	op := JournalOpTerminal
	if job.State == "requeued" {
		op = JournalOpRequeue
	}
	st.journal.Append(JournalRecord{Op: op, Job: job.ID, TS: job.Finished, State: job.State})
}

// Get returns a copy of the job's current record.
func (st *Store) Get(id int) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id < 0 || id >= len(st.jobs) {
		return Job{}, false
	}
	return *st.jobs[id], true
}

// List returns copies of every job record, oldest first.
func (st *Store) List() []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Job, len(st.jobs))
	for i, j := range st.jobs {
		out[i] = *j
	}
	return out
}

// Cancel aborts a job. A queued job flips to "cancelled" immediately and
// never runs; a running job has its context cancelled and reaches
// "cancelled" once the kernels unwind (the returned record may still say
// "running" — poll Get for the final state). Finished jobs are left
// untouched. The bool reports whether the id exists.
func (st *Store) Cancel(id int) (Job, bool) {
	st.mu.Lock()
	if id < 0 || id >= len(st.jobs) {
		st.mu.Unlock()
		return Job{}, false
	}
	job := st.jobs[id]
	var cancelRunning context.CancelFunc
	switch job.State {
	case "queued":
		job.State = "cancelled"
		job.Error = context.Canceled.Error()
		job.Finished = time.Now()
		st.stats.Queued--
		st.stats.Cancelled++
		st.recordTerminalLocked(job)
	case "running":
		cancelRunning = job.cancel
	}
	snap := *job
	st.mu.Unlock()
	// A cancelled queued job may have been the memory-blocked head; wake
	// the runners so the next job gets its admission check.
	st.cond.Broadcast()
	if cancelRunning != nil {
		cancelRunning()
	}
	return snap, true
}

// runner is one worker of the pool: it claims admitted jobs until the
// store drains.
func (st *Store) runner() {
	defer st.wg.Done()
	for {
		id, est, ok := st.next()
		if !ok {
			return
		}
		st.run(id, est)
	}
}

// next blocks until the head of the queue is admitted to this runner (or
// the store drains; ok is then false). Admission claims est bytes of the
// memory budget; run releases them.
func (st *Store) next() (id int, est int64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		// Skip jobs cancelled while queued; under Shutdown, drain the
		// whole queue as cancelled without running anything.
		for len(st.pending) > 0 {
			job := st.jobs[st.pending[0]]
			if job.State != "queued" {
				st.pending = st.pending[1:]
				continue
			}
			if st.aborting {
				// With a journal, drained jobs are requeue-on-restart: the
				// next boot replays them, so a rolling restart keeps its
				// backlog. Without one there is no restart story, so the
				// pre-journal semantics hold: queued jobs are cancelled.
				if st.journal != nil {
					job.State = "requeued"
					job.Error = "shutdown: requeued for restart"
					st.stats.Requeued++
				} else {
					job.State = "cancelled"
					job.Error = context.Canceled.Error()
					st.stats.Cancelled++
				}
				job.Finished = time.Now()
				st.stats.Queued--
				st.recordTerminalLocked(job)
				st.pending = st.pending[1:]
				continue
			}
			break
		}
		if len(st.pending) == 0 {
			if st.closed {
				return 0, 0, false
			}
			st.cond.Wait()
			continue
		}

		id = st.pending[0]
		learned := false
		if st.footprint != nil {
			est, learned = st.footprint(st.jobs[id].Request)
		}
		if deficit := st.overBudgetLocked(est); deficit > 0 {
			// Head does not fit. First ask the caches for cold bytes
			// (outside the lock: shed takes the cache locks), then — if
			// nothing is admitted that could free budget by finishing —
			// force-admit rather than deadlock on an oversized job.
			if job := st.jobs[id]; job.events.lastType() != "admission_held" {
				// Collapse the wake/re-park churn of a blocked head into
				// one event per hold episode.
				st.emitLocked(job, Event{Type: "admission_held", Estimate: est,
					MemUsed: st.memUsed, Budget: st.memBudget})
			}
			if st.shed != nil {
				st.stats.Shed++
				st.mu.Unlock()
				freed := st.shed(deficit)
				st.mu.Lock()
				// The lock was dropped for shed: the head may have been
				// cancelled, claimed by another runner whose deficit
				// cleared, or caught by a Shutdown. Never act on the
				// stale id — start over unless this exact job is still
				// the queued head.
				if st.aborting || len(st.pending) == 0 || st.pending[0] != id ||
					st.jobs[id].State != "queued" {
					continue
				}
				st.emitLocked(st.jobs[id], Event{Type: "cache_shed", Estimate: deficit, Freed: freed})
				if freed > 0 {
					continue // budget changed: re-check the fit
				}
			}
			if st.admitted > 0 {
				st.cond.Wait()
				continue
			}
		}
		st.pending = st.pending[1:]
		st.memUsed += est
		st.admitted++
		if st.footprint != nil {
			if learned {
				st.stats.FootprintLearned++
			} else {
				st.stats.FootprintHeuristic++
			}
		}
		return id, est, true
	}
}

// overBudgetLocked returns how many bytes over budget admitting est would
// land (0 when it fits or no budget is set). Callers hold st.mu.
func (st *Store) overBudgetLocked(est int64) int64 {
	if st.memBudget <= 0 {
		return 0
	}
	used := st.memUsed + est
	if st.cacheResident != nil {
		used += st.cacheResident()
	}
	if used <= st.memBudget {
		return 0
	}
	return used - st.memBudget
}

func (st *Store) run(id int, est int64) {
	st.samplerOnce.Do(func() {
		st.samplerWG.Add(1)
		go st.sampler()
	})
	heapBase := readLiveHeap()
	st.mu.Lock()
	job := st.jobs[id]
	req := job.Request
	var ctx context.Context
	var cancelFn context.CancelFunc
	if req.TimeoutMS > 0 {
		ctx, cancelFn = context.WithTimeout(context.Background(), time.Duration(req.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancelFn = context.WithCancel(context.Background())
	}
	ctx = WithEmitter(ctx, func(ev Event) { st.emitJob(id, ev) })
	job.State = "running"
	job.Started = time.Now()
	job.cancel = cancelFn
	job.MemEstimate = est
	job.heapBase = heapBase
	job.heapPeak = heapBase
	st.stats.Queued--
	st.stats.Running++
	st.emitLocked(job, Event{Type: "running", Estimate: est})
	st.journal.Append(JournalRecord{Op: JournalOpRunning, Job: id, TS: job.Started})
	st.mu.Unlock()
	defer cancelFn()

	rec := metrics.NewRecorder()
	if st.onStart != nil {
		st.onStart(rec)
	}
	var res MineResult
	var err error
	for attempt := 0; ; attempt++ {
		// The failpoint models a transient infrastructure fault ahead of
		// the mine itself; evaluated per attempt, so FailAfter can fail
		// the first N attempts and let a retry succeed.
		if err = failpoint.Hit(failpoint.TelemetryJobMine); err == nil {
			res, err = st.mine(ctx, req, rec)
		}
		if err == nil || attempt >= st.maxRetries || !retryable(ctx, err) {
			break
		}
		st.mu.Lock()
		job.Retries = attempt + 1
		st.stats.Retried++
		st.emitLocked(job, Event{Type: "retry", Attempt: attempt + 1, Error: err.Error()})
		st.mu.Unlock()
		if !sleepCtx(ctx, st.retryDelay(attempt)) {
			err = ctx.Err() // cancelled or deadlined during backoff
			break
		}
	}
	snap := rec.Snapshot()
	heapEnd := readLiveHeap()

	st.mu.Lock()
	job.Finished = time.Now()
	job.Itemsets = res.Itemsets
	job.ServedFromCache = res.FromCache
	job.Stats = &snap
	job.cancel = nil
	if heapEnd > job.heapPeak {
		job.heapPeak = heapEnd
	}
	if peak := job.heapPeak - job.heapBase; peak > 0 && !res.FromCache {
		job.PeakBytes = peak
		if est > 0 {
			job.EstimateRatio = float64(peak) / float64(est)
		}
	}
	st.stats.Running--
	st.admitted--
	st.memUsed -= est
	switch {
	case err == nil:
		job.State = "done"
		st.stats.Done++
		if res.FromCache {
			st.stats.CacheServed++
		}
	case errors.Is(err, context.Canceled):
		job.State = "cancelled"
		job.Error = err.Error()
		st.stats.Cancelled++
	default:
		job.State = "failed"
		job.Error = err.Error()
		st.stats.Failed++
	}
	st.recordTerminalLocked(job)
	observe := st.observeFootprint
	peak := job.PeakBytes
	done := job.State == "done" && !res.FromCache
	st.mu.Unlock()
	// Budget and a runner freed up: wake admission waiters.
	st.cond.Broadcast()
	if observe != nil && done && peak > 0 {
		observe(req, peak)
	}
}

// retryable classifies a mine error: anything is presumed transient and
// worth a retry except a trip of the job's own context — a cancelled or
// deadlined job must reach its terminal state, not burn its deadline
// retrying.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// retryDelay is the backoff before retry attempt+1: exponential from
// retryBase, capped at retryMax, with full jitter over the upper half of
// the window so a burst of same-fault jobs does not retry in lockstep.
func (st *Store) retryDelay(attempt int) time.Duration {
	d := st.retryBase
	for i := 0; i < attempt && d < st.retryMax; i++ {
		d *= 2
	}
	if d > st.retryMax {
		d = st.retryMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half+1))
}

// sleepCtx sleeps d unless ctx trips first; reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// heapSampleInterval paces the in-flight peak-heap sampler. Coarse on
// purpose: one runtime/metrics read per tick for the whole store, so the
// recorder's steady-state cost is noise while still catching the peak of
// any mine phase longer than a few ticks (the boundary reads in run()
// already cover shorter jobs).
const heapSampleInterval = 25 * time.Millisecond

// readLiveHeap returns the process's live-heap bytes via runtime/metrics
// — the cheap estimate the runtime maintains anyway (no stop-the-world,
// unlike runtime.ReadMemStats).
func readLiveHeap() int64 {
	sample := [1]runtimemetrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	runtimemetrics.Read(sample[:])
	if sample[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	v := sample[0].Value.Uint64()
	if v > 1<<62 {
		return 1 << 62
	}
	return int64(v)
}

// sampler is the store's single in-flight peak-heap observer: every tick
// it reads the live heap once and raises the running jobs' heapPeak
// watermarks. Started lazily by the first run(), joined by
// Close/Shutdown.
func (st *Store) sampler() {
	defer st.samplerWG.Done()
	tick := time.NewTicker(heapSampleInterval)
	defer tick.Stop()
	for {
		select {
		case <-st.samplerStop:
			return
		case <-tick.C:
		}
		cur := readLiveHeap()
		st.mu.Lock()
		if st.stats.Running > 0 {
			for _, j := range st.jobs {
				if j.State == "running" && cur > j.heapPeak {
					j.heapPeak = cur
				}
			}
		}
		st.mu.Unlock()
	}
}
