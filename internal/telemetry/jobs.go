package telemetry

import (
	"context"
	"errors"
	"sync"
	"time"

	"fpm/internal/metrics"
)

// JobRequest describes one mining job submitted to `fpm serve`.
type JobRequest struct {
	// Path is the FIMI file to mine; the file must be readable by the
	// serving process.
	Path string `json:"path"`
	// Algo is the kernel name ("lcm", "eclat", "fpgrowth", "apriori",
	// "hmine", "tidset", "diffset").
	Algo string `json:"algo"`
	// Patterns is the tuning-pattern list ("lex,simd", "all", "none");
	// empty means all applicable patterns.
	Patterns   string `json:"patterns,omitempty"`
	MinSupport int    `json:"min_support"`
	// Workers selects mining parallelism as in the CLI: 1 sequential,
	// 0 GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// MemBudget, when positive, mines out-of-core through the partitioned
	// two-pass path with this resident-memory budget in bytes.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// TimeoutMS, when positive, bounds the job's mining wall time in
	// milliseconds; an overrunning job is cancelled cooperatively and
	// finishes "failed" with a deadline error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Job is one submission's lifecycle record.
type Job struct {
	ID      int        `json:"id"`
	Request JobRequest `json:"request"`
	// State is "queued", "running", "done", "failed" or "cancelled".
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Itemsets  int       `json:"itemsets"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Stats is the run's final counter snapshot (nil until the job ends).
	Stats *metrics.Snapshot `json:"stats,omitempty"`

	// cancel aborts the run in flight; set only while State == "running".
	cancel context.CancelFunc
}

// MineFunc executes one job, recording into rec, and returns the itemset
// count. ctx carries the job's cancellation and deadline; implementations
// thread it into the mining run so DELETE /jobs/{id}, per-job timeouts and
// server shutdown all unwind the kernels cooperatively. Injected so the
// store stays free of the driver's import graph (the root fpm package
// wires the real miner in cmd/fpm).
type MineFunc func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (itemsets int, err error)

// ErrQueueFull is returned by Submit when the job queue has no room.
var ErrQueueFull = errors.New("telemetry: job queue full")

// ErrClosed is returned by Submit after Close or Shutdown.
var ErrClosed = errors.New("telemetry: job store closed")

// Store queues submitted jobs and runs them one at a time on a single
// runner goroutine — mining parallelism lives inside a run, not across
// runs, so a job's telemetry is always about the run in flight.
type Store struct {
	mine MineFunc
	// onStart receives each job's fresh recorder just before mining, so
	// the server's scrape endpoints follow the run in flight.
	onStart func(*metrics.Recorder)

	mu       sync.Mutex
	jobs     []*Job
	closed   bool // queue closed; no further submissions
	aborting bool // Shutdown in progress; queued jobs drain as cancelled
	stats    StoreStats

	queue chan int
	done  chan struct{}
}

// StoreStats is a consistent point-in-time view of the job store, for the
// /metrics gauges and for load harnesses watching backpressure. Queued and
// Running are instantaneous depths; the rest are cumulative since start.
type StoreStats struct {
	QueueCap  int    `json:"queue_cap"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
}

// DefaultQueueCap bounds the pending-job queue when NewStore is used.
const DefaultQueueCap = 64

// NewStore starts the runner goroutine with the default queue cap.
// onStart may be nil.
func NewStore(mine MineFunc, onStart func(*metrics.Recorder)) *Store {
	return NewStoreWithCap(mine, onStart, DefaultQueueCap)
}

// NewStoreWithCap starts the runner goroutine with room for queueCap
// pending jobs (minimum 1); submissions beyond the cap are rejected with
// ErrQueueFull so callers see backpressure instead of unbounded growth.
func NewStoreWithCap(mine MineFunc, onStart func(*metrics.Recorder), queueCap int) *Store {
	if queueCap < 1 {
		queueCap = 1
	}
	st := &Store{mine: mine, onStart: onStart, queue: make(chan int, queueCap), done: make(chan struct{})}
	st.stats.QueueCap = queueCap
	go st.runner()
	return st
}

// Stats returns the store's current depth gauges and cumulative counters.
// The snapshot is consistent: every submitted job is counted in exactly
// one of Queued, Running, Done, Failed or Cancelled.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Close stops accepting jobs and waits for the queue to drain; jobs
// already queued still run to completion. Use Shutdown to abandon them
// instead.
func (st *Store) Close() {
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		close(st.queue)
	}
	st.mu.Unlock()
	<-st.done
}

// Shutdown stops accepting jobs, cancels the job in flight (if any),
// marks still-queued jobs cancelled without running them, and waits for
// the runner goroutine to exit. Idempotent, and safe after Close.
func (st *Store) Shutdown() {
	st.mu.Lock()
	st.aborting = true
	if !st.closed {
		st.closed = true
		close(st.queue)
	}
	var cancelRunning context.CancelFunc
	for _, j := range st.jobs {
		if j.cancel != nil {
			cancelRunning = j.cancel
		}
	}
	st.mu.Unlock()
	if cancelRunning != nil {
		cancelRunning()
	}
	<-st.done
}

// Submit enqueues a job and returns its record in the "queued" state.
// When the queue is at capacity the submission is rejected with
// ErrQueueFull and leaves no job record behind — a rejection storm must
// not grow the store's memory.
func (st *Store) Submit(req JobRequest) (Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return Job{}, ErrClosed
	}
	if len(st.queue) == cap(st.queue) {
		st.stats.Rejected++
		return Job{}, ErrQueueFull
	}
	job := &Job{ID: len(st.jobs), Request: req, State: "queued", Submitted: time.Now()}
	st.jobs = append(st.jobs, job)
	st.queue <- job.ID
	st.stats.Submitted++
	st.stats.Queued++
	return *job, nil
}

// Get returns a copy of the job's current record.
func (st *Store) Get(id int) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id < 0 || id >= len(st.jobs) {
		return Job{}, false
	}
	return *st.jobs[id], true
}

// List returns copies of every job record, oldest first.
func (st *Store) List() []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Job, len(st.jobs))
	for i, j := range st.jobs {
		out[i] = *j
	}
	return out
}

// Cancel aborts a job. A queued job flips to "cancelled" immediately and
// never runs; a running job has its context cancelled and reaches
// "cancelled" once the kernels unwind (the returned record may still say
// "running" — poll Get for the final state). Finished jobs are left
// untouched. The bool reports whether the id exists.
func (st *Store) Cancel(id int) (Job, bool) {
	st.mu.Lock()
	if id < 0 || id >= len(st.jobs) {
		st.mu.Unlock()
		return Job{}, false
	}
	job := st.jobs[id]
	var cancelRunning context.CancelFunc
	switch job.State {
	case "queued":
		job.State = "cancelled"
		job.Error = context.Canceled.Error()
		job.Finished = time.Now()
		st.stats.Queued--
		st.stats.Cancelled++
	case "running":
		cancelRunning = job.cancel
	}
	snap := *job
	st.mu.Unlock()
	if cancelRunning != nil {
		cancelRunning()
	}
	return snap, true
}

func (st *Store) runner() {
	defer close(st.done)
	for id := range st.queue {
		st.run(id)
	}
}

func (st *Store) run(id int) {
	st.mu.Lock()
	job := st.jobs[id]
	if job.State != "queued" { // cancelled while waiting in the queue
		st.mu.Unlock()
		return
	}
	if st.aborting { // shutdown: drain the queue without mining
		job.State = "cancelled"
		job.Error = context.Canceled.Error()
		job.Finished = time.Now()
		st.stats.Queued--
		st.stats.Cancelled++
		st.mu.Unlock()
		return
	}
	req := job.Request
	ctx, cancelFn := context.WithCancel(context.Background())
	if req.TimeoutMS > 0 {
		ctx, cancelFn = context.WithTimeout(context.Background(), time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	job.State = "running"
	job.Started = time.Now()
	job.cancel = cancelFn
	st.stats.Queued--
	st.stats.Running++
	st.mu.Unlock()
	defer cancelFn()

	rec := metrics.NewRecorder()
	if st.onStart != nil {
		st.onStart(rec)
	}
	n, err := st.mine(ctx, req, rec)
	snap := rec.Snapshot()

	st.mu.Lock()
	job.Finished = time.Now()
	job.Itemsets = n
	job.Stats = &snap
	job.cancel = nil
	st.stats.Running--
	switch {
	case err == nil:
		job.State = "done"
		st.stats.Done++
	case errors.Is(err, context.Canceled):
		job.State = "cancelled"
		job.Error = err.Error()
		st.stats.Cancelled++
	default:
		job.State = "failed"
		job.Error = err.Error()
		st.stats.Failed++
	}
	st.mu.Unlock()
}
