package telemetry

import (
	"errors"
	"sync"
	"time"

	"fpm/internal/metrics"
)

// JobRequest describes one mining job submitted to `fpm serve`.
type JobRequest struct {
	// Path is the FIMI file to mine; the file must be readable by the
	// serving process.
	Path string `json:"path"`
	// Algo is the kernel name ("lcm", "eclat", "fpgrowth", "apriori",
	// "hmine", "tidset", "diffset").
	Algo string `json:"algo"`
	// Patterns is the tuning-pattern list ("lex,simd", "all", "none");
	// empty means all applicable patterns.
	Patterns   string `json:"patterns,omitempty"`
	MinSupport int    `json:"min_support"`
	// Workers selects mining parallelism as in the CLI: 1 sequential,
	// 0 GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// MemBudget, when positive, mines out-of-core through the partitioned
	// two-pass path with this resident-memory budget in bytes.
	MemBudget int64 `json:"mem_budget,omitempty"`
}

// Job is one submission's lifecycle record.
type Job struct {
	ID      int        `json:"id"`
	Request JobRequest `json:"request"`
	// State is "queued", "running", "done" or "failed".
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Itemsets  int       `json:"itemsets"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Stats is the run's final counter snapshot (nil until the job ends).
	Stats *metrics.Snapshot `json:"stats,omitempty"`
}

// MineFunc executes one job, recording into rec, and returns the itemset
// count. Injected so the store stays free of the driver's import graph
// (the root fpm package wires the real miner in cmd/fpm).
type MineFunc func(req JobRequest, rec *metrics.Recorder) (itemsets int, err error)

// ErrQueueFull is returned by Submit when the job queue has no room.
var ErrQueueFull = errors.New("telemetry: job queue full")

// Store queues submitted jobs and runs them one at a time on a single
// runner goroutine — mining parallelism lives inside a run, not across
// runs, so a job's telemetry is always about the run in flight.
type Store struct {
	mine MineFunc
	// onStart receives each job's fresh recorder just before mining, so
	// the server's scrape endpoints follow the run in flight.
	onStart func(*metrics.Recorder)

	mu   sync.Mutex
	jobs []*Job

	queue chan int
	done  chan struct{}
}

// NewStore starts the runner goroutine. onStart may be nil.
func NewStore(mine MineFunc, onStart func(*metrics.Recorder)) *Store {
	st := &Store{mine: mine, onStart: onStart, queue: make(chan int, 64), done: make(chan struct{})}
	go st.runner()
	return st
}

// Close stops accepting jobs and waits for the queue to drain.
func (st *Store) Close() {
	close(st.queue)
	<-st.done
}

// Submit enqueues a job and returns its record in the "queued" state.
func (st *Store) Submit(req JobRequest) (Job, error) {
	st.mu.Lock()
	job := &Job{ID: len(st.jobs), Request: req, State: "queued", Submitted: time.Now()}
	st.jobs = append(st.jobs, job)
	snap := *job
	st.mu.Unlock()
	select {
	case st.queue <- job.ID:
		return snap, nil
	default:
		st.mu.Lock()
		job.State = "failed"
		job.Error = ErrQueueFull.Error()
		st.mu.Unlock()
		return *job, ErrQueueFull
	}
}

// Get returns a copy of the job's current record.
func (st *Store) Get(id int) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id < 0 || id >= len(st.jobs) {
		return Job{}, false
	}
	return *st.jobs[id], true
}

// List returns copies of every job record, oldest first.
func (st *Store) List() []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Job, len(st.jobs))
	for i, j := range st.jobs {
		out[i] = *j
	}
	return out
}

func (st *Store) runner() {
	defer close(st.done)
	for id := range st.queue {
		st.run(id)
	}
}

func (st *Store) run(id int) {
	st.mu.Lock()
	job := st.jobs[id]
	req := job.Request
	job.State = "running"
	job.Started = time.Now()
	st.mu.Unlock()

	rec := metrics.NewRecorder()
	if st.onStart != nil {
		st.onStart(rec)
	}
	n, err := st.mine(req, rec)
	snap := rec.Snapshot()

	st.mu.Lock()
	job.Finished = time.Now()
	job.Itemsets = n
	job.Stats = &snap
	if err != nil {
		job.State = "failed"
		job.Error = err.Error()
	} else {
		job.State = "done"
	}
	st.mu.Unlock()
}
