package telemetry

import (
	"context"
	"errors"
	"sync"
	"time"

	"fpm/internal/metrics"
)

// JobRequest describes one mining job submitted to `fpm serve`.
type JobRequest struct {
	// Path is the FIMI file to mine; the file must be readable by the
	// serving process.
	Path string `json:"path"`
	// Algo is the kernel name ("lcm", "eclat", "fpgrowth", "apriori",
	// "hmine", "tidset", "diffset").
	Algo string `json:"algo"`
	// Patterns is the tuning-pattern list ("lex,simd", "all", "none");
	// empty means all applicable patterns.
	Patterns   string `json:"patterns,omitempty"`
	MinSupport int    `json:"min_support"`
	// Workers selects mining parallelism as in the CLI: 1 sequential,
	// 0 GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// MemBudget, when positive, mines out-of-core through the partitioned
	// two-pass path with this resident-memory budget in bytes.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// TimeoutMS, when positive, bounds the job's mining wall time in
	// milliseconds; an overrunning job is cancelled cooperatively and
	// finishes "failed" with a deadline error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Job is one submission's lifecycle record.
type Job struct {
	ID      int        `json:"id"`
	Request JobRequest `json:"request"`
	// State is "queued", "running", "done", "failed" or "cancelled".
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Itemsets  int       `json:"itemsets"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// ServedFromCache marks a job answered from the result cache: the
	// mine time (Finished - Started) is then the cache lookup, not a
	// mining run — load harnesses split their latency attribution on it.
	ServedFromCache bool `json:"served_from_cache,omitempty"`
	// MemEstimate is the footprint estimate the admission controller
	// charged against the memory budget while the job ran.
	MemEstimate int64 `json:"mem_estimate,omitempty"`
	// Stats is the run's final counter snapshot (nil until the job ends).
	Stats *metrics.Snapshot `json:"stats,omitempty"`

	// cancel aborts the run in flight; set only while State == "running".
	cancel context.CancelFunc
}

// MineResult is what a MineFunc reports for a finished job.
type MineResult struct {
	// Itemsets is the frequent-itemset count of the answer.
	Itemsets int
	// FromCache marks an answer served from the result cache without
	// mining; the store surfaces it as Job.ServedFromCache.
	FromCache bool
}

// MineFunc executes one job, recording into rec, and returns the job's
// result. ctx carries the job's cancellation and deadline; implementations
// thread it into the mining run so DELETE /jobs/{id}, per-job timeouts and
// server shutdown all unwind the kernels cooperatively. Injected so the
// store stays free of the driver's import graph (the root fpm package
// wires the real miner in internal/serve).
type MineFunc func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error)

// FootprintFunc estimates a job's peak resident footprint in bytes, for
// admission control against StoreConfig.MemBudget. Estimates are
// deliberately conservative: over-estimating delays a job, while
// under-estimating OOMs the process.
type FootprintFunc func(req JobRequest) int64

// ErrQueueFull is returned by Submit when the job queue has no room.
var ErrQueueFull = errors.New("telemetry: job queue full")

// ErrClosed is returned by Submit after Close or Shutdown.
var ErrClosed = errors.New("telemetry: job store closed")

// Store queues submitted jobs and runs them on a fixed pool of runner
// goroutines under memory-budget admission control. Jobs are admitted in
// strict FIFO order: the head of the queue runs as soon as a runner is
// free AND its estimated footprint fits under the memory budget
// (alongside everything already running and the bytes the serving caches
// hold). A head job that does not fit first asks the caches to shed cold
// bytes, then waits for running jobs to finish — it blocks the jobs
// behind it (head-of-line) rather than being bypassed, which keeps
// admission starvation-free: no stream of small jobs can park a big one
// forever. A job bigger than the whole budget still runs, alone, when
// nothing else is in flight — admission degrades to serialization, never
// to deadlock.
type Store struct {
	mine MineFunc
	// onStart receives each job's fresh recorder just before mining, so
	// the server's scrape endpoints follow a run in flight (with
	// concurrent runners, the most recently started one).
	onStart func(*metrics.Recorder)

	footprint     FootprintFunc
	cacheResident func() int64
	shed          func(need int64) int64
	memBudget     int64

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []*Job
	pending []int // queued job ids, FIFO
	memUsed int64 // admission reservations of running jobs
	// admitted counts jobs popped by next() whose run() has not yet
	// finished. It is what admission waits on: unlike stats.Running
	// (incremented only once run() re-locks), it is bumped in the same
	// critical section that pops the queue, so two runners can never both
	// observe "nothing in flight" and force-admit oversized jobs
	// concurrently.
	admitted int
	closed   bool // queue closed; no further submissions
	aborting bool // Shutdown in progress; queued jobs drain as cancelled
	stats    StoreStats

	wg sync.WaitGroup // runner goroutines
}

// StoreStats is a consistent point-in-time view of the job store, for the
// /metrics gauges and for load harnesses watching backpressure. Queued,
// Running and MemUsed are instantaneous; the rest are cumulative since
// start.
type StoreStats struct {
	QueueCap      int    `json:"queue_cap"`
	MaxConcurrent int    `json:"max_concurrent"`
	MemBudget     int64  `json:"mem_budget,omitempty"`
	MemUsed       int64  `json:"mem_used"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	Submitted     uint64 `json:"submitted"`
	Rejected      uint64 `json:"rejected"`
	Done          uint64 `json:"done"`
	Failed        uint64 `json:"failed"`
	Cancelled     uint64 `json:"cancelled"`
	// CacheServed counts done jobs answered from the result cache.
	CacheServed uint64 `json:"cache_served"`
}

// DefaultQueueCap bounds the pending-job queue when NewStore is used.
const DefaultQueueCap = 64

// StoreConfig shapes a job store.
type StoreConfig struct {
	// QueueCap bounds the pending-job queue (minimum 1); submissions
	// beyond it are rejected with ErrQueueFull. 0 means DefaultQueueCap.
	QueueCap int
	// MaxConcurrent is the runner-goroutine count (minimum 1). Mining
	// parallelism inside a job (JobRequest.Workers) is independent.
	MaxConcurrent int
	// MemBudget, when positive, is the global memory budget in bytes that
	// admission control enforces: a job is admitted only when its
	// Footprint estimate fits alongside the running jobs' estimates plus
	// CacheResident(). 0 disables admission control.
	MemBudget int64
	// Footprint estimates a job's peak resident bytes; nil means 0 (every
	// job fits).
	Footprint FootprintFunc
	// CacheResident reports the bytes the serving caches currently hold,
	// so cached state and running jobs share one budget; nil means 0.
	CacheResident func() int64
	// Shed asks the caches to free up to need cold bytes and returns the
	// bytes freed; admission calls it before making the head job wait.
	// nil means nothing can be shed.
	Shed func(need int64) int64
}

// NewStore starts a single-runner store with the default queue cap.
// onStart may be nil.
func NewStore(mine MineFunc, onStart func(*metrics.Recorder)) *Store {
	return NewStoreWithConfig(mine, onStart, StoreConfig{})
}

// NewStoreWithCap starts a single-runner store with room for queueCap
// pending jobs (minimum 1); submissions beyond the cap are rejected with
// ErrQueueFull so callers see backpressure instead of unbounded growth.
func NewStoreWithCap(mine MineFunc, onStart func(*metrics.Recorder), queueCap int) *Store {
	return NewStoreWithConfig(mine, onStart, StoreConfig{QueueCap: queueCap})
}

// NewStoreWithConfig starts the runner pool described by cfg.
func NewStoreWithConfig(mine MineFunc, onStart func(*metrics.Recorder), cfg StoreConfig) *Store {
	if cfg.QueueCap < 1 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	st := &Store{
		mine:          mine,
		onStart:       onStart,
		footprint:     cfg.Footprint,
		cacheResident: cfg.CacheResident,
		shed:          cfg.Shed,
		memBudget:     cfg.MemBudget,
	}
	st.cond = sync.NewCond(&st.mu)
	st.stats.QueueCap = cfg.QueueCap
	st.stats.MaxConcurrent = cfg.MaxConcurrent
	st.stats.MemBudget = cfg.MemBudget
	st.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go st.runner()
	}
	return st
}

// Stats returns the store's current depth gauges and cumulative counters.
// The snapshot is consistent: every submitted job is counted in exactly
// one of Queued, Running, Done, Failed or Cancelled.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.MemUsed = st.memUsed
	return s
}

// Close stops accepting jobs and waits for the queue to drain; jobs
// already queued still run to completion. Use Shutdown to abandon them
// instead.
func (st *Store) Close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.cond.Broadcast()
	st.wg.Wait()
}

// Shutdown stops accepting jobs, cancels the jobs in flight (if any),
// marks still-queued jobs cancelled without running them, and waits for
// the runner goroutines to exit. Idempotent, and safe after Close.
func (st *Store) Shutdown() {
	st.mu.Lock()
	st.aborting = true
	st.closed = true
	var cancels []context.CancelFunc
	for _, j := range st.jobs {
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	for _, c := range cancels {
		c()
	}
	st.wg.Wait()
}

// Submit enqueues a job and returns its record in the "queued" state.
// When the queue is at capacity the submission is rejected with
// ErrQueueFull and leaves no job record behind — a rejection storm must
// not grow the store's memory.
func (st *Store) Submit(req JobRequest) (Job, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return Job{}, ErrClosed
	}
	if len(st.pending) >= st.stats.QueueCap {
		st.stats.Rejected++
		st.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	job := &Job{ID: len(st.jobs), Request: req, State: "queued", Submitted: time.Now()}
	st.jobs = append(st.jobs, job)
	st.pending = append(st.pending, job.ID)
	st.stats.Submitted++
	st.stats.Queued++
	snap := *job
	st.mu.Unlock()
	st.cond.Broadcast()
	return snap, nil
}

// Get returns a copy of the job's current record.
func (st *Store) Get(id int) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id < 0 || id >= len(st.jobs) {
		return Job{}, false
	}
	return *st.jobs[id], true
}

// List returns copies of every job record, oldest first.
func (st *Store) List() []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Job, len(st.jobs))
	for i, j := range st.jobs {
		out[i] = *j
	}
	return out
}

// Cancel aborts a job. A queued job flips to "cancelled" immediately and
// never runs; a running job has its context cancelled and reaches
// "cancelled" once the kernels unwind (the returned record may still say
// "running" — poll Get for the final state). Finished jobs are left
// untouched. The bool reports whether the id exists.
func (st *Store) Cancel(id int) (Job, bool) {
	st.mu.Lock()
	if id < 0 || id >= len(st.jobs) {
		st.mu.Unlock()
		return Job{}, false
	}
	job := st.jobs[id]
	var cancelRunning context.CancelFunc
	switch job.State {
	case "queued":
		job.State = "cancelled"
		job.Error = context.Canceled.Error()
		job.Finished = time.Now()
		st.stats.Queued--
		st.stats.Cancelled++
	case "running":
		cancelRunning = job.cancel
	}
	snap := *job
	st.mu.Unlock()
	// A cancelled queued job may have been the memory-blocked head; wake
	// the runners so the next job gets its admission check.
	st.cond.Broadcast()
	if cancelRunning != nil {
		cancelRunning()
	}
	return snap, true
}

// runner is one worker of the pool: it claims admitted jobs until the
// store drains.
func (st *Store) runner() {
	defer st.wg.Done()
	for {
		id, est, ok := st.next()
		if !ok {
			return
		}
		st.run(id, est)
	}
}

// next blocks until the head of the queue is admitted to this runner (or
// the store drains; ok is then false). Admission claims est bytes of the
// memory budget; run releases them.
func (st *Store) next() (id int, est int64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		// Skip jobs cancelled while queued; under Shutdown, drain the
		// whole queue as cancelled without running anything.
		for len(st.pending) > 0 {
			job := st.jobs[st.pending[0]]
			if job.State != "queued" {
				st.pending = st.pending[1:]
				continue
			}
			if st.aborting {
				job.State = "cancelled"
				job.Error = context.Canceled.Error()
				job.Finished = time.Now()
				st.stats.Queued--
				st.stats.Cancelled++
				st.pending = st.pending[1:]
				continue
			}
			break
		}
		if len(st.pending) == 0 {
			if st.closed {
				return 0, 0, false
			}
			st.cond.Wait()
			continue
		}

		id = st.pending[0]
		if st.footprint != nil {
			est = st.footprint(st.jobs[id].Request)
		}
		if deficit := st.overBudgetLocked(est); deficit > 0 {
			// Head does not fit. First ask the caches for cold bytes
			// (outside the lock: shed takes the cache locks), then — if
			// nothing is admitted that could free budget by finishing —
			// force-admit rather than deadlock on an oversized job.
			if st.shed != nil {
				st.mu.Unlock()
				freed := st.shed(deficit)
				st.mu.Lock()
				// The lock was dropped for shed: the head may have been
				// cancelled, claimed by another runner whose deficit
				// cleared, or caught by a Shutdown. Never act on the
				// stale id — start over unless this exact job is still
				// the queued head.
				if st.aborting || len(st.pending) == 0 || st.pending[0] != id ||
					st.jobs[id].State != "queued" {
					continue
				}
				if freed > 0 {
					continue // budget changed: re-check the fit
				}
			}
			if st.admitted > 0 {
				st.cond.Wait()
				continue
			}
		}
		st.pending = st.pending[1:]
		st.memUsed += est
		st.admitted++
		return id, est, true
	}
}

// overBudgetLocked returns how many bytes over budget admitting est would
// land (0 when it fits or no budget is set). Callers hold st.mu.
func (st *Store) overBudgetLocked(est int64) int64 {
	if st.memBudget <= 0 {
		return 0
	}
	used := st.memUsed + est
	if st.cacheResident != nil {
		used += st.cacheResident()
	}
	if used <= st.memBudget {
		return 0
	}
	return used - st.memBudget
}

func (st *Store) run(id int, est int64) {
	st.mu.Lock()
	job := st.jobs[id]
	req := job.Request
	var ctx context.Context
	var cancelFn context.CancelFunc
	if req.TimeoutMS > 0 {
		ctx, cancelFn = context.WithTimeout(context.Background(), time.Duration(req.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancelFn = context.WithCancel(context.Background())
	}
	job.State = "running"
	job.Started = time.Now()
	job.cancel = cancelFn
	job.MemEstimate = est
	st.stats.Queued--
	st.stats.Running++
	st.mu.Unlock()
	defer cancelFn()

	rec := metrics.NewRecorder()
	if st.onStart != nil {
		st.onStart(rec)
	}
	res, err := st.mine(ctx, req, rec)
	snap := rec.Snapshot()

	st.mu.Lock()
	job.Finished = time.Now()
	job.Itemsets = res.Itemsets
	job.ServedFromCache = res.FromCache
	job.Stats = &snap
	job.cancel = nil
	st.stats.Running--
	st.admitted--
	st.memUsed -= est
	switch {
	case err == nil:
		job.State = "done"
		st.stats.Done++
		if res.FromCache {
			st.stats.CacheServed++
		}
	case errors.Is(err, context.Canceled):
		job.State = "cancelled"
		job.Error = err.Error()
		st.stats.Cancelled++
	default:
		job.State = "failed"
		job.Error = err.Error()
		st.stats.Failed++
	}
	st.mu.Unlock()
	// Budget and a runner freed up: wake admission waiters.
	st.cond.Broadcast()
}
