package telemetry

import (
	"context"
	"time"
)

// Event is one entry in a job's flight recorder: a timestamped, typed
// record of something that happened to the job on its way through the
// store and the serve path. Events are flat and fully typed — no maps, no
// interface{} — so recording one is a struct copy into a preallocated
// ring, cheap enough to leave on for every job. Which optional fields are
// meaningful depends on Type:
//
//	submitted       — job entered the queue
//	admission_held  — head of queue, blocked on the memory budget
//	                  {Estimate, MemUsed, Budget}
//	cache_shed      — admission asked the caches for cold bytes
//	                  {Estimate: bytes still needed, Freed: bytes shed}
//	running         — claimed by a runner {Estimate: admitted charge}
//	dataset_cache   — dataset acquire {Outcome: hit|miss|coalesced}
//	result_cache    — result cache {Outcome: hit|store|subsume}
//	mine_start      — kernel execution began (after cache consultation)
//	mine_end        — kernel execution returned
//	retry           — a transient mine failure will be retried after
//	                  backoff {Attempt, Error}
//	terminal        — job reached a final state
//	                  {State, Error, Itemsets, PeakBytes}
type Event struct {
	Job int `json:"job"`
	// Seq orders events within one job; gaps after a drop are visible as
	// EventLog.Dropped, not as missing sequence numbers.
	Seq  uint64    `json:"seq"`
	TS   time.Time `json:"ts"`
	Type string    `json:"type"`

	Estimate  int64  `json:"estimate,omitempty"`
	MemUsed   int64  `json:"mem_used,omitempty"`
	Budget    int64  `json:"budget,omitempty"`
	Freed     int64  `json:"freed,omitempty"`
	Outcome   string `json:"outcome,omitempty"`
	State     string `json:"state,omitempty"`
	Error     string `json:"error,omitempty"`
	Itemsets  int    `json:"itemsets,omitempty"`
	PeakBytes int64  `json:"peak_bytes,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
}

// EventLog is the retrievable view of one job's flight recorder.
type EventLog struct {
	Job int `json:"job"`
	// Dropped counts events lost to the ring bound (oldest first); the
	// surviving Events are always the most recent ones.
	Dropped uint64  `json:"dropped,omitempty"`
	Events  []Event `json:"events"`
}

// DefaultEventCap bounds each job's event ring when StoreConfig.EventCap
// is zero. Sixteen store-level events cover any admission saga; the rest
// is headroom for serve-path cache events on churny jobs.
const DefaultEventCap = 64

// eventRing is a bounded drop-oldest buffer of one job's events. All
// access is under Store.mu.
type eventRing struct {
	buf     []Event
	cap     int
	start   int
	dropped uint64
	seq     uint64
}

func newEventRing(cap int) *eventRing {
	return &eventRing{cap: cap}
}

func (r *eventRing) append(ev Event) Event {
	ev.Seq = r.seq
	r.seq++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return ev
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % r.cap
	r.dropped++
	return ev
}

// lastType reports the most recent event's type ("" when empty); used to
// collapse runs of identical admission_held events while a blocked head
// is repeatedly woken and re-parked.
func (r *eventRing) lastType() string {
	if len(r.buf) == 0 {
		return ""
	}
	if len(r.buf) < r.cap {
		return r.buf[len(r.buf)-1].Type
	}
	return r.buf[(r.start+r.cap-1)%r.cap].Type
}

// snapshot returns the ring's events oldest-first.
func (r *eventRing) snapshot() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// emitterKey carries a per-job emit function through the mining context,
// so the serve layer can record cache and kernel events into the job's
// ring without importing the store's internals (and without the store
// importing serve — the same inversion as MineFunc).
type emitterKey struct{}

// WithEmitter returns a context carrying emit; the store installs it on
// each job's mining context.
func WithEmitter(ctx context.Context, emit func(Event)) context.Context {
	return context.WithValue(ctx, emitterKey{}, emit)
}

// Emit records an event into the flight recorder of the job whose mining
// context is ctx. Only Type and the optional payload fields are read;
// Job, Seq and TS are stamped by the recorder. No-op when ctx carries no
// emitter (direct library use, tests).
func Emit(ctx context.Context, ev Event) {
	if emit, ok := ctx.Value(emitterKey{}).(func(Event)); ok {
		emit(ev)
	}
}

// Events returns a copy of the job's flight-recorder log, oldest first.
// The bool reports whether the id exists.
func (st *Store) Events(id int) (EventLog, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id < 0 || id >= len(st.jobs) {
		return EventLog{}, false
	}
	r := st.jobs[id].events
	return EventLog{Job: id, Dropped: r.dropped, Events: r.snapshot()}, true
}

// emitLocked stamps ev with the job's identity, sequence number and the
// current time, appends it to the job's ring and forwards it to the
// configured sink. Callers hold st.mu; the sink therefore runs under the
// store lock and must be fast and must not call back into the Store.
func (st *Store) emitLocked(job *Job, ev Event) {
	ev.Job = job.ID
	ev.TS = time.Now()
	ev = job.events.append(ev)
	if st.eventSink != nil {
		st.eventSink(ev)
	}
}

// emitJob is emitLocked behind the lock, for emissions originating
// outside the store's critical sections (the context emitter used by the
// serve path while mining).
func (st *Store) emitJob(id int, ev Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.emitLocked(st.jobs[id], ev)
}
