package telemetry

// Job journal: a tiny append-only WAL of job state transitions, so a
// restarted `fpm serve` can report what a crash lost and requeue the
// jobs that were queued or running when the process died. One NDJSON
// record per transition — the same shape discipline as the flight
// recorder, one JSON object per line — appended under the store lock so
// record order matches observable state order. Appends rely on the
// kernel page cache for kill -9 durability (a SIGKILL does not lose
// written() bytes; only a machine crash can, and recovery is
// best-effort by design: a lost record costs a re-mine, never wrong
// results, because mining is idempotent and the result cache dedupes by
// input identity).
//
// Reading tolerates a torn tail: the record being appended when the
// process died (or any later corruption) ends the parse at the last
// well-formed line instead of failing recovery.

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
	"time"
)

// Journal ops. "submitted" carries the request (the record recovery
// replays); "running" and "terminal" carry lifecycle evidence; "requeue"
// is a terminal written by a graceful drain that wants the job
// resubmitted on the next boot (rolling restarts keep their backlog).
const (
	JournalOpSubmitted = "submitted"
	JournalOpRunning   = "running"
	JournalOpTerminal  = "terminal"
	JournalOpRequeue   = "requeue"
)

// JournalRecord is one WAL line.
type JournalRecord struct {
	Op  string    `json:"op"`
	Job int       `json:"job"`
	TS  time.Time `json:"ts"`
	// State is the job's final state, on terminal records.
	State string `json:"state,omitempty"`
	// Recovered marks a submission that was itself a journal replay, so
	// operators can trace a job across restarts.
	Recovered bool `json:"recovered,omitempty"`
	// Req is the full request, on submitted records.
	Req *JobRequest `json:"req,omitempty"`
}

// Journal appends job state transitions to an NDJSON file. Appends never
// fail the caller: the first write error latches (Err reports it) and
// the journal degrades to a no-op — durability is an add-on, never the
// reason a mine fails.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
	err error
}

// OpenJournal opens (creating if needed) the journal at path for
// appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, enc: json.NewEncoder(f)}, nil
}

// Append writes one record. Safe for concurrent use; errors latch
// silently (see Err).
func (j *Journal) Append(rec JournalRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(rec); err != nil {
		j.err = err
	}
}

// Err reports the first append error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Sync flushes the journal file to stable storage.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// journalMaxLine bounds one record line when reading; anything longer is
// corruption (a real record is a few hundred bytes).
const journalMaxLine = 1 << 20

// ReadJournal parses the journal at path, tolerating a torn or corrupt
// tail: parsing stops at the first malformed line and the well-formed
// prefix is returned. A missing file returns (nil, os.ErrNotExist-style
// error) — callers treat it as an empty journal.
func ReadJournal(path string) ([]JournalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []JournalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), journalMaxLine)
	for sc.Scan() {
		var rec JournalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail or corruption: keep the prefix
		}
		recs = append(recs, rec)
	}
	// A scanner error (line too long, read failure) also just ends the
	// prefix; recovery is best-effort.
	return recs, nil
}

// PendingJob is one job a journal says was lost: submitted (or
// explicitly requeued by a graceful drain) without reaching a terminal
// state in that process.
type PendingJob struct {
	Req JobRequest
	// Requeued marks a job a graceful shutdown drained with the explicit
	// intent to resubmit (vs. one simply in flight at a crash).
	Requeued bool
}

// PendingRequests folds one journal's records into the jobs a restarted
// server should resubmit: every submitted job without a terminal record,
// plus every job whose terminal record is an explicit requeue. Records
// with no replayable request (torn writes, hostile edits) are skipped.
func PendingRequests(recs []JournalRecord) []PendingJob {
	type lifeline struct {
		req      *JobRequest
		terminal bool
		requeue  bool
		order    int
	}
	jobs := make(map[int]*lifeline)
	for _, rec := range recs {
		l := jobs[rec.Job]
		if l == nil {
			l = &lifeline{order: len(jobs)}
			jobs[rec.Job] = l
		}
		switch rec.Op {
		case JournalOpSubmitted:
			if rec.Req != nil {
				req := *rec.Req
				l.req = &req
			}
		case JournalOpTerminal:
			l.terminal = true
		case JournalOpRequeue:
			l.terminal = true
			l.requeue = true
		}
	}
	pend := make([]PendingJob, 0)
	ordered := make([]*lifeline, 0, len(jobs))
	for _, l := range jobs {
		ordered = append(ordered, l)
	}
	// Submission order, so recovery resubmits FIFO like the original
	// queue.
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].order < ordered[i].order {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	for _, l := range ordered {
		if l.req == nil || l.req.Path == "" {
			continue
		}
		if l.terminal && !l.requeue {
			continue
		}
		pend = append(pend, PendingJob{Req: *l.req, Requeued: l.requeue})
	}
	return pend
}
