package telemetry

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"fpm/internal/metrics"
)

// renderAllMetricFamilies produces a /metrics exposition with every family
// this package can emit, by rendering each writer with inputs that enable
// its conditional sections (parallel + partitioned run snapshot, a memory
// budget, caches attached).
func renderAllMetricFamilies() string {
	var b bytes.Buffer
	snap := metrics.Snapshot{
		SchemaVersion: metrics.SnapshotSchemaVersion, Kernel: "lcm",
		Workers: 2, WallNanos: 1e9, Nodes: 1, Supports: 1, Emitted: 1, Prunes: 1,
		Parallel: &metrics.ParallelStats{
			TasksSpawned: 1, TasksOffered: 1, TasksStolen: 1, StealFailures: 1, MergeNanos: 1,
			Workers: []metrics.WorkerStat{{ID: 0, Tasks: 1, BusyNanos: 1}},
		},
		Partition: &metrics.PartitionStats{
			Chunks: 1, CandidatesGenerated: 1, CandidatesSurviving: 1,
			BytesPass1: 1, BytesPass2: 1, Pass1Nanos: 1, Pass2Nanos: 1,
			MemBudget: 1, InputBytes: 1,
		},
	}
	_ = WritePrometheus(&b, snap, true)
	_ = WriteJobMetrics(&b, StoreStats{MemBudget: 1})
	_ = WriteJobHistograms(&b, JobHists{})
	_ = WriteCacheMetrics(&b, CacheStats{PersistEnabled: true})
	return b.String()
}

// TestEveryMetricFamilyDocumented is the doc-lint gate: every family the
// server can expose on /metrics must carry a HELP line in the exposition
// and a row in README.md's metrics table. The per-family p50/p99 quantile
// gauges are documented on their parent histogram's row, so the lint maps
// them back to the parent name.
func TestEveryMetricFamilyDocumented(t *testing.T) {
	text := renderAllMetricFamilies()
	families := map[string]bool{}
	helps := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, _ := strings.Cut(rest, " ")
			families[name] = true
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			helps[name] = true
		}
	}
	if len(families) < 30 {
		t.Fatalf("only %d families rendered; the fixture lost coverage", len(families))
	}
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	for name := range families {
		if !helps[name] {
			t.Errorf("family %s has a TYPE line but no HELP line", name)
		}
		doc := name
		if base, ok := strings.CutSuffix(doc, "_p50_seconds"); ok {
			doc = base
		} else if base, ok := strings.CutSuffix(doc, "_p99_seconds"); ok {
			doc = base
		}
		if !bytes.Contains(readme, []byte(doc)) {
			t.Errorf("family %s is not documented in README.md (expected the name %q in the metrics table)", name, doc)
		}
	}

	// Every sample line must belong to a declared family (catches a writer
	// emitting a series whose TYPE/HELP block was forgotten).
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if s, ok := strings.CutSuffix(name, suf); ok && families[s] {
				base = s
				break
			}
		}
		if !families[base] {
			t.Errorf("sample %q belongs to no TYPE-declared family", name)
		}
	}
}

// TestDesignDocumentsFlightRecorder pins the DESIGN.md section the PR's
// observability machinery is specified in.
func TestDesignDocumentsFlightRecorder(t *testing.T) {
	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := strings.ToLower(string(design))
	for _, want := range []string{"## 15", "flight recorder", "fpm_job_e2e_seconds", "ewma"} {
		if !strings.Contains(text, want) {
			t.Errorf("DESIGN.md missing %q (the flight-recorder / histogram / learned-admission section)", want)
		}
	}
}

// TestDesignDocumentsDurability pins the DESIGN.md section specifying the
// durable-serving machinery: the snapshot format, the job journal, the
// requeue-on-restart semantics and the retry/backoff policy.
func TestDesignDocumentsDurability(t *testing.T) {
	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := strings.ToLower(string(design))
	for _, want := range []string{"## 16", "durability", "fprs", "journal", "requeue", "backoff"} {
		if !strings.Contains(text, want) {
			t.Errorf("DESIGN.md missing %q (the durability & recovery section)", want)
		}
	}
}
