package telemetry

import (
	"context"
	"runtime"
	"testing"

	"fpm/internal/metrics"
)

// BenchmarkStoreOverhead measures the store's per-job machinery cost with
// an instant MineFunc: submit one job, spin until it reaches a terminal
// state. Everything the scheduler adds per job — queue handoff, admission,
// the flight-recorder events, the heap sampler's boundary reads, the
// latency-histogram records — lands in this number. The 3% e2e budget is
// gated on a real job (BenchmarkServeOverhead in internal/serve); this
// microbenchmark tracks the absolute scheduler cost so a regression here
// pins to the store, not the miner.
func BenchmarkStoreOverhead(b *testing.B) {
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		return MineResult{Itemsets: 1}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{QueueCap: 4, MaxConcurrent: 1})
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := st.Submit(JobRequest{MinSupport: 1})
		if err != nil {
			b.Fatal(err)
		}
		for {
			j, ok := st.Get(job.ID)
			if !ok {
				b.Fatal("job vanished")
			}
			if j.State == "done" {
				break
			}
			runtime.Gosched() // single-core boxes: let the runner goroutine in
		}
	}
}
