package telemetry

// Job-journal and retry-policy tests: WAL round trips with torn tails,
// pending-job recovery folding, the Shutdown drain's requeue-vs-cancel
// split, and transparent retry with backoff under injected transient
// faults.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fpm/internal/failpoint"
	"fpm/internal/metrics"
)

func TestJournalAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal.1")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Path: "a.dat", Algo: "lcm", MinSupport: 3}
	j.Append(JournalRecord{Op: JournalOpSubmitted, Job: 0, TS: time.Now(), Req: &req})
	j.Append(JournalRecord{Op: JournalOpRunning, Job: 0, TS: time.Now()})
	j.Append(JournalRecord{Op: JournalOpTerminal, Job: 0, TS: time.Now(), State: "done"})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	if recs[0].Op != JournalOpSubmitted || recs[0].Req == nil || recs[0].Req.Path != "a.dat" {
		t.Fatalf("submitted record lost its request: %+v", recs[0])
	}
	if recs[2].State != "done" {
		t.Fatalf("terminal record state = %q", recs[2].State)
	}
}

// A torn tail — the record being appended at the instant of a kill -9 —
// must end the parse at the last whole line, not fail recovery.
func TestJournalTornTailKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal.1")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Path: "a.dat", Algo: "lcm", MinSupport: 3}
	j.Append(JournalRecord{Op: JournalOpSubmitted, Job: 0, Req: &req})
	j.Append(JournalRecord{Op: JournalOpRunning, Job: 0})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"terminal","job":0,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn tail: read %d records, want the 2-record prefix", len(recs))
	}
	// The torn terminal never landed, so recovery still sees job 0 pending.
	pend := PendingRequests(recs)
	if len(pend) != 1 || pend[0].Req.Path != "a.dat" {
		t.Fatalf("pending after torn tail = %+v", pend)
	}
}

// A nil journal is the non-durable store's no-op; every method must be
// safe on it (the store calls them unconditionally).
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(JournalRecord{Op: JournalOpSubmitted})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPendingRequests(t *testing.T) {
	req := func(p string) *JobRequest { return &JobRequest{Path: p, Algo: "lcm", MinSupport: 2} }
	recs := []JournalRecord{
		{Op: JournalOpSubmitted, Job: 0, Req: req("done.dat")},
		{Op: JournalOpSubmitted, Job: 1, Req: req("crashed.dat")},
		{Op: JournalOpSubmitted, Job: 2, Req: req("requeued.dat")},
		{Op: JournalOpSubmitted, Job: 3}, // torn: no replayable request
		{Op: JournalOpRunning, Job: 1},
		{Op: JournalOpTerminal, Job: 0, State: "done"},
		{Op: JournalOpRequeue, Job: 2, State: "requeued"},
	}
	pend := PendingRequests(recs)
	if len(pend) != 2 {
		t.Fatalf("pending = %+v, want crashed.dat and requeued.dat", pend)
	}
	// FIFO by original submission order.
	if pend[0].Req.Path != "crashed.dat" || pend[0].Requeued {
		t.Fatalf("pend[0] = %+v", pend[0])
	}
	if pend[1].Req.Path != "requeued.dat" || !pend[1].Requeued {
		t.Fatalf("pend[1] = %+v", pend[1])
	}
	if got := PendingRequests(nil); len(got) != 0 {
		t.Fatalf("empty journal pends %+v", got)
	}
}

// The Shutdown drain's split: with a journal, queued jobs become
// "requeued" (journaled as such, so the next boot replays them); without
// one, the pre-journal semantics hold and they are cancelled.
func TestShutdownDrainRequeueVsCancel(t *testing.T) {
	for _, withJournal := range []bool{true, false} {
		name := "without-journal"
		if withJournal {
			name = "with-journal"
		}
		t.Run(name, func(t *testing.T) {
			var jnl *Journal
			var jnlPath string
			if withJournal {
				jnlPath = filepath.Join(t.TempDir(), "jobs.journal.1")
				var err error
				if jnl, err = OpenJournal(jnlPath); err != nil {
					t.Fatal(err)
				}
			}
			started := make(chan int, 1)
			st := NewStoreWithConfig(ctxMiner(started), nil, StoreConfig{Journal: jnl})
			running, err := st.Submit(JobRequest{Path: "x.dat", Algo: "lcm", MinSupport: 2})
			if err != nil {
				t.Fatal(err)
			}
			<-started
			queued, err := st.Submit(JobRequest{Path: "y.dat", Algo: "lcm", MinSupport: 3})
			if err != nil {
				t.Fatal(err)
			}
			st.Shutdown()

			// The in-flight job is cancelled either way — only a crash (no
			// terminal record) makes a running job recoverable.
			if j, _ := st.Get(running.ID); j.State != "cancelled" {
				t.Fatalf("in-flight job after shutdown: %+v", j)
			}
			j, _ := st.Get(queued.ID)
			stats := st.Stats()
			if withJournal {
				if j.State != "requeued" {
					t.Fatalf("queued job drained as %q, want requeued", j.State)
				}
				if stats.Requeued != 1 || stats.Cancelled != 1 {
					t.Fatalf("stats = %+v, want 1 requeued + 1 cancelled", stats)
				}
				if err := jnl.Close(); err != nil {
					t.Fatal(err)
				}
				recs, err := ReadJournal(jnlPath)
				if err != nil {
					t.Fatal(err)
				}
				// The cancelled runner got a terminal record (a graceful
				// cancel is final); only the drained queued job is pending,
				// and it carries the explicit requeue intent.
				pend := PendingRequests(recs)
				if len(pend) != 1 || pend[0].Req.Path != "y.dat" || !pend[0].Requeued {
					t.Fatalf("journal pends %+v, want exactly the requeued job", pend)
				}
			} else {
				if j.State != "cancelled" {
					t.Fatalf("queued job drained as %q, want cancelled", j.State)
				}
				if stats.Requeued != 0 || stats.Cancelled != 2 {
					t.Fatalf("stats = %+v, want 2 cancelled", stats)
				}
			}
		})
	}
}

// SubmitRecovered stamps the provenance: recovered:true on the record,
// the counter, the flight-recorder outcome, and the journal trail.
func TestSubmitRecoveredProvenance(t *testing.T) {
	st := NewStore(func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error) {
		return MineResult{Itemsets: 1}, nil
	}, nil)
	defer st.Close()
	job, err := st.SubmitRecovered(JobRequest{Path: "x.dat", Algo: "lcm", MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !job.Recovered {
		t.Fatal("recovered submission not marked")
	}
	got := waitState(t, st.Get, job.ID, "done")
	if !got.Recovered {
		t.Fatal("recovered flag lost by the terminal transition")
	}
	if st.Stats().Recovered != 1 {
		t.Fatalf("stats = %+v, want Recovered 1", st.Stats())
	}
	ev, _ := st.Events(job.ID)
	if len(ev.Events) == 0 || ev.Events[0].Outcome != "recovered" {
		t.Fatalf("submitted event = %+v, want outcome recovered", ev.Events)
	}
}

// retryStore builds a single-runner store with a tight backoff so retry
// tests run in milliseconds.
func retryStore(mine MineFunc, maxRetries int) *Store {
	return NewStoreWithConfig(mine, nil, StoreConfig{
		MaxRetries:     maxRetries,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
}

// A transient fault on the first attempt is absorbed: the retry succeeds,
// the job finishes done, and the retry is visible on the record, the
// counter and the flight recorder.
func TestRetryTransientFaultSucceeds(t *testing.T) {
	reg := failpoint.New()
	reg.FailAfter(failpoint.TelemetryJobMine, 0, errors.New("transient io fault"))
	failpoint.Enable(reg)
	defer failpoint.Disable()

	st := retryStore(func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error) {
		return MineResult{Itemsets: 7}, nil
	}, 2)
	defer st.Close()
	job, err := st.Submit(JobRequest{Path: "x.dat", Algo: "lcm", MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, st.Get, job.ID, "done")
	if got.Retries != 1 || got.Itemsets != 7 {
		t.Fatalf("job = %+v, want 1 retry and the mined answer", got)
	}
	if st.Stats().Retried != 1 {
		t.Fatalf("stats = %+v, want Retried 1", st.Stats())
	}
	ev, _ := st.Events(job.ID)
	var retry *Event
	for i := range ev.Events {
		if ev.Events[i].Type == "retry" {
			retry = &ev.Events[i]
		}
	}
	if retry == nil || retry.Attempt != 1 || !strings.Contains(retry.Error, "transient") {
		t.Fatalf("retry event = %+v", retry)
	}
}

// A persistent fault exhausts the cap and the job fails with the last
// error after exactly MaxRetries extra attempts.
func TestRetryExhaustsCap(t *testing.T) {
	reg := failpoint.New()
	reg.Fail(failpoint.TelemetryJobMine, errors.New("disk on fire"))
	failpoint.Enable(reg)
	defer failpoint.Disable()

	st := retryStore(func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error) {
		t.Error("mine ran behind an always-armed failpoint")
		return MineResult{}, nil
	}, 2)
	defer st.Close()
	job, err := st.Submit(JobRequest{Path: "x.dat", Algo: "lcm", MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, st.Get, job.ID, "failed")
	if got.Retries != 2 || !strings.Contains(got.Error, "disk on fire") {
		t.Fatalf("job = %+v, want 2 retries then the fault", got)
	}
	if hits := reg.Hits(failpoint.TelemetryJobMine); hits != 3 {
		t.Fatalf("mine attempted %d times, want 1 + 2 retries", hits)
	}
}

// Cancellation and deadline are never retried: the job must reach its
// terminal state, not burn its deadline re-attempting.
func TestRetryNotOnCancelOrDeadline(t *testing.T) {
	t.Run("cancel", func(t *testing.T) {
		started := make(chan int, 1)
		st := retryStore(ctxMiner(started), 5)
		defer st.Close()
		job, err := st.Submit(JobRequest{Path: "x.dat", Algo: "lcm", MinSupport: 2})
		if err != nil {
			t.Fatal(err)
		}
		<-started
		st.Cancel(job.ID)
		got := waitState(t, st.Get, job.ID, "cancelled")
		if got.Retries != 0 {
			t.Fatalf("cancelled job retried %d times", got.Retries)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		st := retryStore(ctxMiner(nil), 5)
		defer st.Close()
		job, err := st.Submit(JobRequest{Path: "x.dat", Algo: "lcm", MinSupport: 2, TimeoutMS: 20})
		if err != nil {
			t.Fatal(err)
		}
		got := waitState(t, st.Get, job.ID, "failed")
		if got.Retries != 0 || !strings.Contains(got.Error, context.DeadlineExceeded.Error()) {
			t.Fatalf("deadlined job = %+v, want no retries", got)
		}
	})
}

// retryDelay must grow exponentially from the base, stay within the cap,
// and jitter inside the upper half of the window.
func TestRetryDelayShape(t *testing.T) {
	st := NewStoreWithConfig(func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error) {
		return MineResult{}, nil
	}, nil, StoreConfig{RetryBaseDelay: 100 * time.Millisecond, RetryMaxDelay: time.Second})
	defer st.Close()
	for attempt, window := range []time.Duration{100, 200, 400, 800, 1000, 1000} {
		window *= time.Millisecond
		for i := 0; i < 50; i++ {
			d := st.retryDelay(attempt)
			if d < window/2 || d > window {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, window/2, window)
			}
		}
	}
}
