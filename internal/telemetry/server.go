// Package telemetry serves live mining observability over HTTP: a
// hand-rolled Prometheus text endpoint and a JSON progress endpoint, both
// rendered from metrics.Snapshot — the same schema `fpm -stats json`
// emits — plus net/http/pprof for on-demand profiles. It has no external
// dependencies: the Prometheus exposition format is plain text, so no
// client library is needed.
//
// The server is recorder-centric, not run-centric: SetRecorder swaps in
// whichever run should be observed next, and every scrape snapshots the
// current recorder (metrics.Recorder.Snapshot is safe against concurrent
// mining). Two drivers use it: `fpm -telemetry-addr` observes the single
// CLI run, and `fpm serve` observes a queue of submitted jobs (see Store).
package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"

	"fpm/internal/metrics"
)

// Server exposes one mining process's observability endpoints:
//
//	GET /metrics   — Prometheus text exposition of the current Snapshot
//	GET /progress  — JSON progress report (see Progress)
//	GET /healthz   — liveness probe
//	    /debug/pprof/... — the standard Go profiling handlers
//
// and, when a job Store is attached:
//
//	POST   /jobs     — submit a mining job
//	GET    /jobs     — list jobs
//	GET    /jobs/{id} — one job's state and result summary
//	GET    /jobs/{id}/events — the job's flight-recorder timeline
//	DELETE /jobs/{id} — cancel a queued or running job
type Server struct {
	mu         sync.Mutex
	rec        *metrics.Recorder
	jobs       *Store
	cacheStats func() CacheStats
	srv        *http.Server
}

// NewServer returns a server with no recorder attached; scrapes report an
// empty snapshot until SetRecorder.
func NewServer() *Server { return &Server{} }

// SetRecorder swaps the recorder scrapes observe. Safe to call while the
// server is live and the previous run is still mining.
func (s *Server) SetRecorder(rec *metrics.Recorder) {
	s.mu.Lock()
	s.rec = rec
	s.mu.Unlock()
}

// Recorder returns the recorder scrapes currently observe (may be nil).
func (s *Server) Recorder() *metrics.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// AttachJobs wires a job store into the /jobs endpoints. Call before
// Handler/Start; submitted jobs route their recorders through SetRecorder.
func (s *Server) AttachJobs(st *Store) { s.jobs = st }

// AttachCacheStats wires a serving-cache census into /metrics as the
// fpm_cache_* family. Call before Handler/Start; fn must be safe for
// concurrent use (scrapes race with mining).
func (s *Server) AttachCacheStats(fn func() CacheStats) { s.cacheStats = fn }

// Handler returns the server's routing table, for tests and embedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if s.jobs != nil {
		mux.HandleFunc("/jobs", s.handleJobs)
		mux.HandleFunc("/jobs/", s.handleJob)
	}
	return mux
}

// Start listens on addr and serves in a background goroutine, returning
// the bound address (useful with ":0" in tests). Shut down with Shutdown.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown gracefully stops a Start-ed server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rec := s.Recorder()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, rec.Snapshot(), rec.Running())
	if s.jobs != nil {
		_ = WriteJobMetrics(w, s.jobs.Stats())
		_ = WriteJobHistograms(w, s.jobs.Histograms())
	}
	if s.cacheStats != nil {
		_ = WriteCacheMetrics(w, s.cacheStats())
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rec := s.Recorder()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ProgressFrom(rec.Snapshot(), rec.Running()))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		job, err := s.jobs.Submit(req)
		if err != nil {
			// Backpressure is a first-class response: a full queue is 429
			// with a JSON body carrying the current depth so load clients
			// can distinguish "slow down" from "going away" (503 on close).
			code := http.StatusServiceUnavailable
			if errors.Is(err, ErrQueueFull) {
				code = http.StatusTooManyRequests
			}
			js := s.jobs.Stats()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error":     err.Error(),
				"queued":    js.Queued,
				"queue_cap": js.QueueCap,
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(job)
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.jobs.List())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if idStr, ok := strings.CutSuffix(rest, "/events"); ok {
		// GET /jobs/{id}/events — the job's flight-recorder timeline.
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			http.Error(w, "bad job id", http.StatusBadRequest)
			return
		}
		log, ok := s.jobs.Events(id)
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(log)
		return
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	var (
		job Job
		ok  bool
	)
	switch r.Method {
	case http.MethodGet:
		job, ok = s.jobs.Get(id)
	case http.MethodDelete:
		// Cancellation is cooperative: a running job's record may still say
		// "running" here — it flips to "cancelled" once the kernels unwind.
		job, ok = s.jobs.Cancel(id)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(job)
}
