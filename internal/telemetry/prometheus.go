package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpm/internal/hdr"
	"fpm/internal/metrics"
)

// WritePrometheus renders a metrics.Snapshot in the Prometheus text
// exposition format (version 0.0.4). The format is a stable line protocol
// — `# HELP`/`# TYPE` comments plus `name{labels} value` samples — so it
// is written by hand rather than through a client library (the repo has
// no external dependencies). Counters carry the conventional `_total`
// suffix; durations are exported in seconds per Prometheus base-unit
// convention.
func WritePrometheus(w io.Writer, s metrics.Snapshot, running bool) error {
	var b bytes.Buffer

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(&b, "# HELP fpm_info Run identity; the labels carry the kernel name and snapshot schema version.\n"+
		"# TYPE fpm_info gauge\nfpm_info{kernel=\"%s\",schema_version=\"%d\"} 1\n",
		escapeLabel(s.Kernel), s.SchemaVersion)
	running01 := 0.0
	if running {
		running01 = 1
	}
	gauge("fpm_running", "Whether a mining run is currently live (Start called, Stop not yet).", running01)
	gauge("fpm_run_seconds", "Run wall time so far (frozen at Stop).", float64(s.WallNanos)/1e9)
	if s.Workers > 0 {
		gauge("fpm_workers", "Parallel pool size (absent for sequential runs).", float64(s.Workers))
	}

	counter("fpm_nodes_expanded_total", "Search-tree nodes expanded.", float64(s.Nodes))
	counter("fpm_support_countings_total", "Support countings performed.", float64(s.Supports))
	counter("fpm_itemsets_emitted_total", "Frequent itemsets emitted.", float64(s.Emitted))
	counter("fpm_candidate_prunes_total", "Candidate extensions pruned (support < minsup).", float64(s.Prunes))

	if ps := s.Parallel; ps != nil {
		counter("fpm_tasks_spawned_total", "Tasks accepted by the work-stealing scheduler.", float64(ps.TasksSpawned))
		counter("fpm_tasks_offered_total", "Subtrees offered to the scheduler (accepted or not).", float64(ps.TasksOffered))
		counter("fpm_tasks_stolen_total", "Tasks taken from another worker's deque.", float64(ps.TasksStolen))
		counter("fpm_steal_failures_total", "Full victim scans that found no task.", float64(ps.StealFailures))
		counter("fpm_shard_merge_seconds_total", "Wall time spent merging worker shards.", float64(ps.MergeNanos)/1e9)
		if len(ps.Workers) > 0 {
			fmt.Fprintf(&b, "# HELP fpm_worker_tasks_total Tasks run per worker.\n# TYPE fpm_worker_tasks_total counter\n")
			for _, ws := range ps.Workers {
				fmt.Fprintf(&b, "fpm_worker_tasks_total{worker=\"%d\"} %d\n", ws.ID, ws.Tasks)
			}
			fmt.Fprintf(&b, "# HELP fpm_worker_busy_seconds_total Busy wall time per worker.\n# TYPE fpm_worker_busy_seconds_total counter\n")
			for _, ws := range ps.Workers {
				fmt.Fprintf(&b, "fpm_worker_busy_seconds_total{worker=\"%d\"} %g\n", ws.ID, float64(ws.BusyNanos)/1e9)
			}
		}
	}

	if pt := s.Partition; pt != nil {
		counter("fpm_chunks_mined_total", "Out-of-core pass-1 chunks mined.", float64(pt.Chunks))
		counter("fpm_candidates_generated_total", "Locally-frequent itemsets entering the candidate union.", float64(pt.CandidatesGenerated))
		counter("fpm_candidates_surviving_total", "Candidates whose exact global support cleared minsup.", float64(pt.CandidatesSurviving))
		fmt.Fprintf(&b, "# HELP fpm_bytes_streamed_total Bytes streamed from secondary storage per pass.\n"+
			"# TYPE fpm_bytes_streamed_total counter\n"+
			"fpm_bytes_streamed_total{pass=\"1\"} %d\nfpm_bytes_streamed_total{pass=\"2\"} %d\n",
			pt.BytesPass1, pt.BytesPass2)
		fmt.Fprintf(&b, "# HELP fpm_pass_seconds_total Wall time per out-of-core pass.\n"+
			"# TYPE fpm_pass_seconds_total counter\n"+
			"fpm_pass_seconds_total{pass=\"1\"} %g\nfpm_pass_seconds_total{pass=\"2\"} %g\n",
			float64(pt.Pass1Nanos)/1e9, float64(pt.Pass2Nanos)/1e9)
		if pt.MemBudget > 0 {
			gauge("fpm_mem_budget_bytes", "Configured out-of-core memory budget.", float64(pt.MemBudget))
		}
		if pt.InputBytes > 0 {
			gauge("fpm_input_bytes", "On-disk size of the mined file.", float64(pt.InputBytes))
		}
	}

	_, err := w.Write(b.Bytes())
	return err
}

// WriteJobMetrics renders the job store's depth gauges and lifecycle
// counters in the Prometheus text exposition format. Served after the run
// snapshot on /metrics when a Store is attached, so operators and load
// harnesses can watch queue backpressure (fpm_jobs_queued vs
// fpm_jobs_queue_cap) and the admission-rejection rate.
func WriteJobMetrics(w io.Writer, js StoreStats) error {
	var b bytes.Buffer
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("fpm_jobs_queued", "Jobs admitted and waiting for a runner.", float64(js.Queued))
	gauge("fpm_jobs_running", "Jobs currently mining (up to fpm_jobs_max_concurrent).", float64(js.Running))
	gauge("fpm_jobs_queue_cap", "Configured pending-job queue capacity.", float64(js.QueueCap))
	gauge("fpm_jobs_max_concurrent", "Configured runner-pool size.", float64(js.MaxConcurrent))
	if js.MemBudget > 0 {
		gauge("fpm_jobs_mem_budget_bytes", "Global memory budget admission control enforces.", float64(js.MemBudget))
	}
	gauge("fpm_jobs_mem_used_bytes", "Footprint estimates reserved by the jobs currently running.", float64(js.MemUsed))
	counter("fpm_jobs_submitted_total", "Jobs admitted to the queue.", float64(js.Submitted))
	counter("fpm_jobs_rejected_total", "Submissions rejected because the queue was full (HTTP 429).", float64(js.Rejected))
	counter("fpm_jobs_done_total", "Jobs finished successfully.", float64(js.Done))
	counter("fpm_jobs_failed_total", "Jobs finished with an error (including per-job deadline overruns).", float64(js.Failed))
	counter("fpm_jobs_cancelled_total", "Jobs cancelled before or during mining.", float64(js.Cancelled))
	counter("fpm_jobs_cache_served_total", "Jobs answered from the result cache without mining.", float64(js.CacheServed))
	counter("fpm_jobs_shed_total", "Times admission asked the caches to shed cold bytes for a memory-blocked head job.", float64(js.Shed))
	counter("fpm_jobs_footprint_learned_total", "Admitted jobs whose footprint estimate came from observed earlier runs.", float64(js.FootprintLearned))
	counter("fpm_jobs_footprint_heuristic_total", "Admitted jobs whose footprint estimate fell back to the static heuristic.", float64(js.FootprintHeuristic))
	counter("fpm_jobs_retried_total", "Mine attempts retried with backoff after a transient failure.", float64(js.Retried))
	counter("fpm_jobs_recovered_total", "Jobs resubmitted from the journal after a restart.", float64(js.Recovered))
	counter("fpm_jobs_requeued_total", "Queued jobs a graceful shutdown journaled as requeue-on-restart instead of cancelling.", float64(js.Requeued))
	_, err := w.Write(b.Bytes())
	return err
}

// Export bucket ladders for the job histograms. Histogram buckets are a
// rendering choice, not a recording one — the hdr recorder keeps full
// 1/32-relative-error resolution and CumulativeLE collapses it onto any
// ladder at scrape time — so these only fix what a Prometheus query can
// distinguish. Latencies: 1ms to 120s, the span between a result-cache
// hit and the serve SLO ceiling. Footprints: powers of four from 256KiB
// to 4GiB, bracketing the serve footprint floor (1MiB) and any budget a
// test rig uses.
var (
	jobTimeBucketsNS = []int64{
		1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
		100_000_000, 250_000_000, 500_000_000, 1_000_000_000, 2_500_000_000,
		5_000_000_000, 10_000_000_000, 30_000_000_000, 60_000_000_000, 120_000_000_000,
	}
	jobByteBuckets = []int64{
		1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32,
	}
)

// WriteJobHistograms renders the store's per-job latency and footprint
// histograms as native Prometheus histogram families (text 0.0.4):
// cumulative `_bucket{le="..."}` samples from hdr.CumulativeLE — monotone
// by construction, and conservatively rounded in the slow direction (a
// bucket may include observations up to 1/32 above its bound, never
// below) — with the `+Inf` bucket equal to `_count` and an exact `_sum`.
// Alongside each latency family's p50/p99 as gauges computed from the
// full-resolution recorder, because the ladder above is far coarser than
// the recorder: a quantile interpolated from `_bucket` by a Prometheus
// server is bounded by the ladder, while the gauges keep the 1/32 bound —
// they are what `fpmload -scrape-final` cross-checks against its own
// client-side recorder.
func WriteJobHistograms(w io.Writer, jh JobHists) error {
	var b bytes.Buffer
	seconds := func(name, help string, h *hdr.Hist) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for _, ub := range jobTimeBucketsNS {
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name,
				strconv.FormatFloat(float64(ub)/1e9, 'g', -1, 64), h.CumulativeLE(ub))
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", name, float64(h.Sum())/1e9, name, h.Count())
		fmt.Fprintf(&b, "# HELP %s_p50_seconds Median of %s from the full-resolution recorder (1/32 relative error).\n"+
			"# TYPE %s_p50_seconds gauge\n%s_p50_seconds %g\n",
			name, name, name, name, float64(h.Quantile(0.50))/1e9)
		fmt.Fprintf(&b, "# HELP %s_p99_seconds 99th percentile of %s from the full-resolution recorder (1/32 relative error).\n"+
			"# TYPE %s_p99_seconds gauge\n%s_p99_seconds %g\n",
			name, name, name, name, float64(h.Quantile(0.99))/1e9)
	}
	seconds("fpm_job_queue_wait_seconds", "Per-job wait from submission to a runner claiming it.", &jh.QueueWait)
	seconds("fpm_job_mine_seconds", "Per-job time on a runner (mining or cache lookup); zero for jobs cancelled while queued.", &jh.Mine)
	seconds("fpm_job_e2e_seconds", "Per-job end-to-end time from submission to terminal state.", &jh.E2E)

	name := "fpm_job_footprint_bytes"
	fmt.Fprintf(&b, "# HELP %s Measured peak live-heap growth per mined job; zero for cache-served and never-run jobs.\n# TYPE %s histogram\n", name, name)
	for _, ub := range jobByteBuckets {
		fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name,
			strconv.FormatFloat(float64(ub), 'g', -1, 64), jh.Footprint.CumulativeLE(ub))
	}
	fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, jh.Footprint.Count())
	fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, jh.Footprint.Sum(), name, jh.Footprint.Count())

	_, err := w.Write(b.Bytes())
	return err
}

// CacheStats is the serving-cache census the telemetry layer renders as
// the fpm_cache_* metric family. It mirrors servecache's stats structs
// field-for-field but is declared here so telemetry does not import the
// cache package (the dependency points the other way: serve adapts one
// into the other).
type CacheStats struct {
	DatasetEntries   int    `json:"dataset_entries"`
	DatasetBytes     int64  `json:"dataset_bytes"`
	DatasetHits      uint64 `json:"dataset_hits"`
	DatasetMisses    uint64 `json:"dataset_misses"`
	DatasetEvictions uint64 `json:"dataset_evictions"`
	DatasetSkipped   uint64 `json:"dataset_skipped"`

	ResultEntries      int    `json:"result_entries"`
	ResultBytes        int64  `json:"result_bytes"`
	ResultHitsExact    uint64 `json:"result_hits_exact"`
	ResultHitsSubsumed uint64 `json:"result_hits_subsumed"`
	ResultMisses       uint64 `json:"result_misses"`
	ResultEvictions    uint64 `json:"result_evictions"`

	// Result-cache persistence census; PersistEnabled gates rendering so
	// non-durable servers keep their metric surface unchanged.
	PersistEnabled           bool   `json:"persist_enabled,omitempty"`
	PersistWrites            uint64 `json:"persist_writes,omitempty"`
	PersistErrors            uint64 `json:"persist_errors,omitempty"`
	PersistLastBytes         int64  `json:"persist_last_bytes,omitempty"`
	PersistRestored          int    `json:"persist_restored,omitempty"`
	PersistDroppedStale      int    `json:"persist_dropped_stale,omitempty"`
	PersistDroppedUnreadable int    `json:"persist_dropped_unreadable,omitempty"`
	PersistCorrupt           int    `json:"persist_corrupt,omitempty"`
}

// WriteCacheMetrics renders the serving-cache gauges and counters in the
// Prometheus text exposition format, served on /metrics after the job
// metrics when the serve wiring attaches a cache census.
func WriteCacheMetrics(w io.Writer, cs CacheStats) error {
	var b bytes.Buffer
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("fpm_cache_dataset_entries", "Parsed datasets resident in the shared dataset cache.", float64(cs.DatasetEntries))
	gauge("fpm_cache_dataset_bytes", "Resident bytes of cached parsed datasets.", float64(cs.DatasetBytes))
	counter("fpm_cache_dataset_hits_total", "Jobs that reused a cached parsed dataset.", float64(cs.DatasetHits))
	counter("fpm_cache_dataset_misses_total", "Jobs that had to parse their dataset.", float64(cs.DatasetMisses))
	counter("fpm_cache_dataset_evictions_total", "Cold datasets evicted for space.", float64(cs.DatasetEvictions))
	counter("fpm_cache_dataset_skipped_total", "Datasets mined uncached because no room could be made.", float64(cs.DatasetSkipped))
	gauge("fpm_cache_result_entries", "Listings resident in the result cache.", float64(cs.ResultEntries))
	gauge("fpm_cache_result_bytes", "Resident bytes of cached listings.", float64(cs.ResultBytes))
	fmt.Fprintf(&b, "# HELP fpm_cache_result_hits_total Queries answered from the result cache, by kind.\n"+
		"# TYPE fpm_cache_result_hits_total counter\n"+
		"fpm_cache_result_hits_total{kind=\"exact\"} %d\nfpm_cache_result_hits_total{kind=\"subsumed\"} %d\n",
		cs.ResultHitsExact, cs.ResultHitsSubsumed)
	counter("fpm_cache_result_misses_total", "Queries the result cache could not answer.", float64(cs.ResultMisses))
	counter("fpm_cache_result_evictions_total", "Listings evicted for space.", float64(cs.ResultEvictions))
	if cs.PersistEnabled {
		counter("fpm_cache_persist_writes_total", "Result-cache snapshots renamed into place by the persister.", float64(cs.PersistWrites))
		counter("fpm_cache_persist_errors_total", "Failed snapshot write attempts (the previous snapshot stays intact).", float64(cs.PersistErrors))
		gauge("fpm_cache_persist_last_bytes", "Size of the last result-cache snapshot written.", float64(cs.PersistLastBytes))
		gauge("fpm_cache_persist_restored", "Listings restored from the snapshot at startup.", float64(cs.PersistRestored))
		fmt.Fprintf(&b, "# HELP fpm_cache_persist_dropped Snapshot entries dropped at restore, by reason (stale: full-content hash mismatch; unreadable: origin file gone).\n"+
			"# TYPE fpm_cache_persist_dropped gauge\n"+
			"fpm_cache_persist_dropped{reason=\"stale\"} %d\nfpm_cache_persist_dropped{reason=\"unreadable\"} %d\n",
			cs.PersistDroppedStale, cs.PersistDroppedUnreadable)
		gauge("fpm_cache_persist_corrupt", "Whether the snapshot file existed but failed validation and the cache started cold (0/1).", float64(cs.PersistCorrupt))
	}
	_, err := w.Write(b.Bytes())
	return err
}

// escapeLabel escapes a Prometheus label value: backslash, double quote
// and newline are the only characters the exposition format requires
// escaping inside quoted label values.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}
