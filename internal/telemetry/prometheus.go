package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"fpm/internal/metrics"
)

// WritePrometheus renders a metrics.Snapshot in the Prometheus text
// exposition format (version 0.0.4). The format is a stable line protocol
// — `# HELP`/`# TYPE` comments plus `name{labels} value` samples — so it
// is written by hand rather than through a client library (the repo has
// no external dependencies). Counters carry the conventional `_total`
// suffix; durations are exported in seconds per Prometheus base-unit
// convention.
func WritePrometheus(w io.Writer, s metrics.Snapshot, running bool) error {
	var b bytes.Buffer

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(&b, "# HELP fpm_info Run identity; the labels carry the kernel name and snapshot schema version.\n"+
		"# TYPE fpm_info gauge\nfpm_info{kernel=\"%s\",schema_version=\"%d\"} 1\n",
		escapeLabel(s.Kernel), s.SchemaVersion)
	running01 := 0.0
	if running {
		running01 = 1
	}
	gauge("fpm_running", "Whether a mining run is currently live (Start called, Stop not yet).", running01)
	gauge("fpm_run_seconds", "Run wall time so far (frozen at Stop).", float64(s.WallNanos)/1e9)
	if s.Workers > 0 {
		gauge("fpm_workers", "Parallel pool size (absent for sequential runs).", float64(s.Workers))
	}

	counter("fpm_nodes_expanded_total", "Search-tree nodes expanded.", float64(s.Nodes))
	counter("fpm_support_countings_total", "Support countings performed.", float64(s.Supports))
	counter("fpm_itemsets_emitted_total", "Frequent itemsets emitted.", float64(s.Emitted))
	counter("fpm_candidate_prunes_total", "Candidate extensions pruned (support < minsup).", float64(s.Prunes))

	if ps := s.Parallel; ps != nil {
		counter("fpm_tasks_spawned_total", "Tasks accepted by the work-stealing scheduler.", float64(ps.TasksSpawned))
		counter("fpm_tasks_offered_total", "Subtrees offered to the scheduler (accepted or not).", float64(ps.TasksOffered))
		counter("fpm_tasks_stolen_total", "Tasks taken from another worker's deque.", float64(ps.TasksStolen))
		counter("fpm_steal_failures_total", "Full victim scans that found no task.", float64(ps.StealFailures))
		counter("fpm_shard_merge_seconds_total", "Wall time spent merging worker shards.", float64(ps.MergeNanos)/1e9)
		if len(ps.Workers) > 0 {
			fmt.Fprintf(&b, "# HELP fpm_worker_tasks_total Tasks run per worker.\n# TYPE fpm_worker_tasks_total counter\n")
			for _, ws := range ps.Workers {
				fmt.Fprintf(&b, "fpm_worker_tasks_total{worker=\"%d\"} %d\n", ws.ID, ws.Tasks)
			}
			fmt.Fprintf(&b, "# HELP fpm_worker_busy_seconds_total Busy wall time per worker.\n# TYPE fpm_worker_busy_seconds_total counter\n")
			for _, ws := range ps.Workers {
				fmt.Fprintf(&b, "fpm_worker_busy_seconds_total{worker=\"%d\"} %g\n", ws.ID, float64(ws.BusyNanos)/1e9)
			}
		}
	}

	if pt := s.Partition; pt != nil {
		counter("fpm_chunks_mined_total", "Out-of-core pass-1 chunks mined.", float64(pt.Chunks))
		counter("fpm_candidates_generated_total", "Locally-frequent itemsets entering the candidate union.", float64(pt.CandidatesGenerated))
		counter("fpm_candidates_surviving_total", "Candidates whose exact global support cleared minsup.", float64(pt.CandidatesSurviving))
		fmt.Fprintf(&b, "# HELP fpm_bytes_streamed_total Bytes streamed from secondary storage per pass.\n"+
			"# TYPE fpm_bytes_streamed_total counter\n"+
			"fpm_bytes_streamed_total{pass=\"1\"} %d\nfpm_bytes_streamed_total{pass=\"2\"} %d\n",
			pt.BytesPass1, pt.BytesPass2)
		fmt.Fprintf(&b, "# HELP fpm_pass_seconds_total Wall time per out-of-core pass.\n"+
			"# TYPE fpm_pass_seconds_total counter\n"+
			"fpm_pass_seconds_total{pass=\"1\"} %g\nfpm_pass_seconds_total{pass=\"2\"} %g\n",
			float64(pt.Pass1Nanos)/1e9, float64(pt.Pass2Nanos)/1e9)
		if pt.MemBudget > 0 {
			gauge("fpm_mem_budget_bytes", "Configured out-of-core memory budget.", float64(pt.MemBudget))
		}
		if pt.InputBytes > 0 {
			gauge("fpm_input_bytes", "On-disk size of the mined file.", float64(pt.InputBytes))
		}
	}

	_, err := w.Write(b.Bytes())
	return err
}

// WriteJobMetrics renders the job store's depth gauges and lifecycle
// counters in the Prometheus text exposition format. Served after the run
// snapshot on /metrics when a Store is attached, so operators and load
// harnesses can watch queue backpressure (fpm_jobs_queued vs
// fpm_jobs_queue_cap) and the admission-rejection rate.
func WriteJobMetrics(w io.Writer, js StoreStats) error {
	var b bytes.Buffer
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("fpm_jobs_queued", "Jobs admitted and waiting for a runner.", float64(js.Queued))
	gauge("fpm_jobs_running", "Jobs currently mining (up to fpm_jobs_max_concurrent).", float64(js.Running))
	gauge("fpm_jobs_queue_cap", "Configured pending-job queue capacity.", float64(js.QueueCap))
	gauge("fpm_jobs_max_concurrent", "Configured runner-pool size.", float64(js.MaxConcurrent))
	if js.MemBudget > 0 {
		gauge("fpm_jobs_mem_budget_bytes", "Global memory budget admission control enforces.", float64(js.MemBudget))
	}
	gauge("fpm_jobs_mem_used_bytes", "Footprint estimates reserved by the jobs currently running.", float64(js.MemUsed))
	counter("fpm_jobs_submitted_total", "Jobs admitted to the queue.", float64(js.Submitted))
	counter("fpm_jobs_rejected_total", "Submissions rejected because the queue was full (HTTP 429).", float64(js.Rejected))
	counter("fpm_jobs_done_total", "Jobs finished successfully.", float64(js.Done))
	counter("fpm_jobs_failed_total", "Jobs finished with an error (including per-job deadline overruns).", float64(js.Failed))
	counter("fpm_jobs_cancelled_total", "Jobs cancelled before or during mining.", float64(js.Cancelled))
	counter("fpm_jobs_cache_served_total", "Jobs answered from the result cache without mining.", float64(js.CacheServed))
	_, err := w.Write(b.Bytes())
	return err
}

// CacheStats is the serving-cache census the telemetry layer renders as
// the fpm_cache_* metric family. It mirrors servecache's stats structs
// field-for-field but is declared here so telemetry does not import the
// cache package (the dependency points the other way: serve adapts one
// into the other).
type CacheStats struct {
	DatasetEntries   int    `json:"dataset_entries"`
	DatasetBytes     int64  `json:"dataset_bytes"`
	DatasetHits      uint64 `json:"dataset_hits"`
	DatasetMisses    uint64 `json:"dataset_misses"`
	DatasetEvictions uint64 `json:"dataset_evictions"`
	DatasetSkipped   uint64 `json:"dataset_skipped"`

	ResultEntries      int    `json:"result_entries"`
	ResultBytes        int64  `json:"result_bytes"`
	ResultHitsExact    uint64 `json:"result_hits_exact"`
	ResultHitsSubsumed uint64 `json:"result_hits_subsumed"`
	ResultMisses       uint64 `json:"result_misses"`
	ResultEvictions    uint64 `json:"result_evictions"`
}

// WriteCacheMetrics renders the serving-cache gauges and counters in the
// Prometheus text exposition format, served on /metrics after the job
// metrics when the serve wiring attaches a cache census.
func WriteCacheMetrics(w io.Writer, cs CacheStats) error {
	var b bytes.Buffer
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("fpm_cache_dataset_entries", "Parsed datasets resident in the shared dataset cache.", float64(cs.DatasetEntries))
	gauge("fpm_cache_dataset_bytes", "Resident bytes of cached parsed datasets.", float64(cs.DatasetBytes))
	counter("fpm_cache_dataset_hits_total", "Jobs that reused a cached parsed dataset.", float64(cs.DatasetHits))
	counter("fpm_cache_dataset_misses_total", "Jobs that had to parse their dataset.", float64(cs.DatasetMisses))
	counter("fpm_cache_dataset_evictions_total", "Cold datasets evicted for space.", float64(cs.DatasetEvictions))
	counter("fpm_cache_dataset_skipped_total", "Datasets mined uncached because no room could be made.", float64(cs.DatasetSkipped))
	gauge("fpm_cache_result_entries", "Listings resident in the result cache.", float64(cs.ResultEntries))
	gauge("fpm_cache_result_bytes", "Resident bytes of cached listings.", float64(cs.ResultBytes))
	fmt.Fprintf(&b, "# HELP fpm_cache_result_hits_total Queries answered from the result cache, by kind.\n"+
		"# TYPE fpm_cache_result_hits_total counter\n"+
		"fpm_cache_result_hits_total{kind=\"exact\"} %d\nfpm_cache_result_hits_total{kind=\"subsumed\"} %d\n",
		cs.ResultHitsExact, cs.ResultHitsSubsumed)
	counter("fpm_cache_result_misses_total", "Queries the result cache could not answer.", float64(cs.ResultMisses))
	counter("fpm_cache_result_evictions_total", "Listings evicted for space.", float64(cs.ResultEvictions))
	_, err := w.Write(b.Bytes())
	return err
}

// escapeLabel escapes a Prometheus label value: backslash, double quote
// and newline are the only characters the exposition format requires
// escaping inside quoted label values.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}
