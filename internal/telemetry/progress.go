package telemetry

import "fpm/internal/metrics"

// Progress is the /progress endpoint's JSON payload: a compact live view
// of a run answering "how far along is it and when will it finish" —
// questions the raw counter snapshot leaves to the reader.
type Progress struct {
	SchemaVersion int    `json:"schema_version"`
	Kernel        string `json:"kernel"`
	Running       bool   `json:"running"`
	// ElapsedNanos is wall time so far (frozen once the run stops).
	ElapsedNanos    int64  `json:"elapsed_ns"`
	ItemsetsEmitted uint64 `json:"itemsets_emitted"`
	NodesExpanded   uint64 `json:"nodes_expanded"`

	// Out-of-core runs only: chunk and byte progress through the passes.
	ChunksDone    uint64 `json:"chunks_done,omitempty"`
	BytesStreamed int64  `json:"bytes_streamed,omitempty"`
	InputBytes    int64  `json:"input_bytes,omitempty"`
	// Fraction estimates run completion in [0, 1] from bytes streamed: a
	// partitioned run streams the file three times (sizing scan, pass 1,
	// pass 2), so completion is bytes/(3*size). Zero when the input size
	// is unknown (in-memory runs).
	Fraction float64 `json:"progress,omitempty"`
	// EtaNanos extrapolates remaining wall time from the byte rate so
	// far; present only while the run is live and the fraction is in
	// (0, 1). The estimate is coarse — pass 1 (mining) is slower per byte
	// than the sizing scan and pass 2 (recount) — but monotone inputs
	// keep it honest within a small factor.
	EtaNanos int64 `json:"eta_ns,omitempty"`
}

// ProgressFrom derives the progress view from a frozen snapshot.
func ProgressFrom(s metrics.Snapshot, running bool) Progress {
	p := Progress{
		SchemaVersion:   s.SchemaVersion,
		Kernel:          s.Kernel,
		Running:         running,
		ElapsedNanos:    s.WallNanos,
		ItemsetsEmitted: s.Emitted,
		NodesExpanded:   s.Nodes,
	}
	pt := s.Partition
	if pt == nil {
		return p
	}
	p.ChunksDone = pt.Chunks
	p.BytesStreamed = pt.BytesPass1 + pt.BytesPass2
	p.InputBytes = pt.InputBytes
	if pt.InputBytes > 0 {
		f := float64(p.BytesStreamed) / float64(3*pt.InputBytes)
		if f > 1 {
			f = 1
		}
		p.Fraction = f
		if running && f > 0 && f < 1 && s.WallNanos > 0 {
			p.EtaNanos = int64(float64(s.WallNanos) * (1 - f) / f)
		}
	}
	return p
}
