package telemetry

// Job cancellation, per-job timeout, and graceful-shutdown semantics of
// the Store and the DELETE /jobs/{id} surface, with a fake miner that
// honours its context the way the real kernels do.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpm/internal/metrics"
)

// ctxMiner blocks until its context trips (or started/release coordination
// says otherwise) and returns ctx.Err(), like a cancelled kernel.
func ctxMiner(started chan<- int) MineFunc {
	return func(ctx context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error) {
		if started != nil {
			started <- req.MinSupport
		}
		<-ctx.Done()
		return MineResult{}, ctx.Err()
	}
}

// waitState polls until job id reaches state or the deadline passes.
func waitState(t *testing.T, get func(int) (Job, bool), id int, state string) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, ok := get(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		if j.State == state {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %q, want %q", id, j.State, state)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStoreCancelRunningJob(t *testing.T) {
	started := make(chan int, 1)
	st := NewStore(ctxMiner(started), nil)
	defer st.Close()
	job, err := st.Submit(JobRequest{Path: "x", Algo: "lcm", MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is mining and parked on its context
	if _, ok := st.Cancel(job.ID); !ok {
		t.Fatal("Cancel: no such job")
	}
	got := waitState(t, st.Get, job.ID, "cancelled")
	if !strings.Contains(got.Error, context.Canceled.Error()) {
		t.Fatalf("cancelled job error = %q", got.Error)
	}
}

func TestStoreCancelQueuedJob(t *testing.T) {
	started := make(chan int, 1)
	st := NewStore(ctxMiner(started), nil)
	first, err := st.Submit(JobRequest{Path: "x", Algo: "lcm", MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-started // runner is busy; the next submission stays queued
	queued, err := st.Submit(JobRequest{Path: "y", Algo: "lcm", MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st.Cancel(queued.ID)
	if !ok || got.State != "cancelled" {
		t.Fatalf("queued cancel = %+v, ok %v; want immediate cancelled", got, ok)
	}
	// Unblock the runner; the cancelled job must never transition to
	// running even after the queue drains to it.
	st.Cancel(first.ID)
	st.Close()
	if j, _ := st.Get(queued.ID); j.State != "cancelled" {
		t.Fatalf("cancelled queued job ran anyway: %+v", j)
	}
	if _, ok := st.Cancel(99); ok {
		t.Fatal("Cancel accepted an id that does not exist")
	}
}

func TestStoreJobTimeout(t *testing.T) {
	st := NewStore(ctxMiner(nil), nil)
	defer st.Close()
	job, err := st.Submit(JobRequest{Path: "x", Algo: "lcm", MinSupport: 2, TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, st.Get, job.ID, "failed")
	if !strings.Contains(got.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("timed-out job error = %q, want deadline exceeded", got.Error)
	}
}

// TestStoreShutdown: the in-flight job is cancelled, queued jobs drain as
// cancelled without running, the runner goroutine joins, and further
// submissions are refused.
func TestStoreShutdown(t *testing.T) {
	started := make(chan int, 1)
	st := NewStore(ctxMiner(started), nil)
	running, err := st.Submit(JobRequest{Path: "x", Algo: "lcm", MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := st.Submit(JobRequest{Path: "y", Algo: "lcm", MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { st.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not join the runner")
	}
	if j, _ := st.Get(running.ID); j.State != "cancelled" {
		t.Fatalf("in-flight job after shutdown: %+v", j)
	}
	if j, _ := st.Get(queued.ID); j.State != "cancelled" {
		t.Fatalf("queued job after shutdown: %+v", j)
	}
	if _, err := st.Submit(JobRequest{Path: "z", Algo: "lcm", MinSupport: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after shutdown = %v, want ErrClosed", err)
	}
	st.Shutdown() // idempotent
}

// TestServerDeleteJob: the HTTP surface for cancellation — DELETE a
// running job flips it to cancelled, DELETE on an unknown id is 404, and
// other methods stay rejected.
func TestServerDeleteJob(t *testing.T) {
	started := make(chan int, 1)
	srv := NewServer()
	st := NewStore(ctxMiner(started), srv.SetRecorder)
	srv.AttachJobs(st)
	defer st.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"path":"x.dat","algo":"lcm","min_support":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-started

	del := func(id int) (*http.Response, Job) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var j Job
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
				t.Fatal(err)
			}
		}
		return resp, j
	}
	if resp, _ := del(99); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE /jobs/99 = %d, want 404", resp.StatusCode)
	}
	if resp, _ := del(job.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%d = %d, want 200", job.ID, resp.StatusCode)
	}
	waitState(t, st.Get, job.ID, "cancelled")

	req, _ := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/jobs/%d", ts.URL, job.ID), nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /jobs/{id} = %d, want 405", resp2.StatusCode)
	}
}
