package telemetry

// Concurrency battery for the multi-runner scheduler: pool-width
// saturation, memory-budget admission (including the shed hook and the
// oversized-job force-admit), a mixed submit/cancel/shutdown storm, and
// goroutine hygiene. CI runs this package under -race; these tests are
// what that flag is for.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpm/internal/metrics"
)

// gate tracks the live-concurrency high-water mark of a fake miner.
type gate struct {
	mu      sync.Mutex
	cur, hi int
}

func (g *gate) enter() {
	g.mu.Lock()
	g.cur++
	if g.cur > g.hi {
		g.hi = g.cur
	}
	g.mu.Unlock()
}

func (g *gate) exit() {
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
}

func (g *gate) high() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hi
}

// waitGoroutines polls until the goroutine count drops back to within
// slack of base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// With no memory budget, the pool must actually run MaxConcurrent jobs at
// once — and never more.
func TestSchedulerSaturatesPool(t *testing.T) {
	var g gate
	release := make(chan struct{})
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		g.enter()
		defer g.exit()
		<-release
		return MineResult{}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{QueueCap: 64, MaxConcurrent: 4})
	for i := 0; i < 12; i++ {
		if _, err := st.Submit(JobRequest{MinSupport: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Running < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %+v", st.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	st.Close()
	if hi := g.high(); hi != 4 {
		t.Fatalf("concurrency high-water = %d, want exactly 4", hi)
	}
	if s := st.Stats(); s.Done != 12 || s.Running != 0 || s.Queued != 0 {
		t.Fatalf("census after drain = %+v", s)
	}
}

// With a budget that fits one job at a time, admission must serialize the
// pool down to width 1 even though four runners are idle, and the shed
// hook must be consulted for the deficit.
func TestSchedulerAdmissionSerializesUnderBudget(t *testing.T) {
	var g gate
	var sheds atomic.Int64
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		g.enter()
		defer g.exit()
		time.Sleep(2 * time.Millisecond)
		return MineResult{}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{
		QueueCap:      64,
		MaxConcurrent: 4,
		MemBudget:     100,
		Footprint:     func(JobRequest) (int64, bool) { return 60, false }, // two never fit
		Shed:          func(need int64) int64 { sheds.Add(1); return 0 },
	})
	for i := 0; i < 8; i++ {
		if _, err := st.Submit(JobRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if hi := g.high(); hi != 1 {
		t.Fatalf("concurrency high-water = %d, want 1 (budget fits one 60-byte job)", hi)
	}
	if s := st.Stats(); s.Done != 8 {
		t.Fatalf("census = %+v", s)
	}
	if sheds.Load() == 0 {
		t.Fatal("admission never consulted the shed hook while over budget")
	}
	// The shed consultations must be visible on /metrics, not just to the
	// hook: the counter and the hook must agree exactly.
	if s := st.Stats(); int64(s.Shed) != sheds.Load() {
		t.Fatalf("stats.Shed = %d, want %d (one per shed-hook call)", s.Shed, sheds.Load())
	}
	// Every admitted job carried a heuristic estimate (the Footprint func
	// reports learned=false), and the split must account for all of them.
	if s := st.Stats(); s.FootprintHeuristic != 8 || s.FootprintLearned != 0 {
		t.Fatalf("footprint split = learned %d / heuristic %d, want 0/8", s.FootprintLearned, s.FootprintHeuristic)
	}
}

// A job bigger than the whole budget must still run once nothing else is
// in flight (admission degrades to serialization, never deadlock), and a
// successful shed must be retried before waiting.
func TestSchedulerOversizedJobForceAdmitted(t *testing.T) {
	cached := int64(500) // pretend half a KiB of cached state
	st := NewStoreWithConfig(
		func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
			return MineResult{Itemsets: 1}, nil
		},
		nil,
		StoreConfig{
			QueueCap:      8,
			MaxConcurrent: 2,
			MemBudget:     100,
			Footprint:     func(JobRequest) (int64, bool) { return 1000, false },
			CacheResident: func() int64 { return atomic.LoadInt64(&cached) },
			Shed: func(need int64) int64 {
				// First call frees the cached bytes; later calls find nothing.
				return atomic.SwapInt64(&cached, 0)
			},
		})
	job, err := st.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, _ := st.Get(job.ID)
		if j.State == "done" {
			if j.MemEstimate != 1000 {
				t.Fatalf("job ran with estimate %d, want 1000", j.MemEstimate)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oversized job deadlocked in admission: %+v", j)
		}
		time.Sleep(time.Millisecond)
	}
	if got := atomic.LoadInt64(&cached); got != 0 {
		t.Fatal("admission never shed the cached bytes")
	}
	st.Close()
}

// Oversized jobs must truly serialize: force-admission is gated on the
// store's admitted count (bumped in the same critical section that pops
// the queue), not on stats.Running, which lags until run() re-locks. With
// the lagging gate, two runners could both see "nothing in flight" and
// run two over-budget jobs at once — exactly the OOM the budget exists to
// prevent.
func TestSchedulerOversizedJobsNeverOverlap(t *testing.T) {
	var g gate
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		g.enter()
		defer g.exit()
		time.Sleep(2 * time.Millisecond)
		return MineResult{}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{
		QueueCap:      64,
		MaxConcurrent: 4,
		MemBudget:     100,
		Footprint:     func(JobRequest) (int64, bool) { return 1000, false }, // every job oversized
	})
	for i := 0; i < 10; i++ {
		if _, err := st.Submit(JobRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if hi := g.high(); hi != 1 {
		t.Fatalf("oversized-job concurrency high-water = %d, want 1", hi)
	}
	if s := st.Stats(); s.Done != 10 {
		t.Fatalf("census = %+v", s)
	}
}

// While a runner is inside the shed hook the store lock is dropped, so the
// queue head it captured can be cancelled or claimed by a peer. The runner
// must re-validate the head after re-locking instead of popping blind —
// popping blind runs cancelled jobs, double-decrements the queued gauge,
// or strands a different job in "queued" forever. A slow shed hook widens
// that window while cancels and submits hammer the queue.
func TestSchedulerShedWindowCancelStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	mine := func(ctx context.Context, _ JobRequest, _ *metrics.Recorder) (MineResult, error) {
		time.Sleep(200 * time.Microsecond)
		return MineResult{Itemsets: 1}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{
		QueueCap:      256,
		MaxConcurrent: 4,
		MemBudget:     100,
		Footprint:     func(JobRequest) (int64, bool) { return 60, false }, // only one fits: shed runs constantly
		Shed: func(int64) int64 {
			time.Sleep(100 * time.Microsecond) // widen the unlocked window
			return 0
		},
	})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				job, err := st.Submit(JobRequest{})
				if err != nil {
					continue // queue full is fine; keep the pressure up
				}
				if rng.Intn(2) == 0 {
					st.Cancel(job.ID)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	st.Close()

	s := st.Stats()
	if got := s.Done + s.Failed + s.Cancelled; got != s.Submitted {
		t.Fatalf("census leak: done %d + failed %d + cancelled %d != submitted %d",
			s.Done, s.Failed, s.Cancelled, s.Submitted)
	}
	if s.Running != 0 || s.Queued != 0 || s.MemUsed != 0 {
		t.Fatalf("store not quiescent after drain: %+v", s)
	}
	for _, j := range st.List() {
		switch j.State {
		case "done", "failed", "cancelled":
		default:
			t.Fatalf("job %d stranded in state %q", j.ID, j.State)
		}
	}
	waitGoroutines(t, base)
}

// The storm: four runners, a mix of instant / slow / failing / blocking
// jobs submitted from eight goroutines, random cancellations mid-flight,
// then a mid-storm Shutdown. Afterwards: full census (every submission
// accounted once), all runner goroutines joined, nothing leaked.
func TestSchedulerShutdownStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	mine := func(ctx context.Context, req JobRequest, _ *metrics.Recorder) (MineResult, error) {
		switch req.Algo {
		case "instant":
			return MineResult{Itemsets: 1}, nil
		case "fail":
			return MineResult{}, errors.New("boom")
		case "cached":
			return MineResult{Itemsets: 3, FromCache: true}, nil
		default: // "block": honour cancellation like a real kernel
			select {
			case <-ctx.Done():
				return MineResult{}, ctx.Err()
			case <-time.After(50 * time.Millisecond):
				return MineResult{Itemsets: 2}, nil
			}
		}
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{
		QueueCap:      256,
		MaxConcurrent: 4,
		MemBudget:     1 << 20,
		Footprint:     func(JobRequest) (int64, bool) { return 1 << 10, false },
	})

	var submitted, rejected atomic.Int64
	var wg sync.WaitGroup
	algos := []string{"instant", "fail", "cached", "block"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				job, err := st.Submit(JobRequest{Algo: algos[rng.Intn(len(algos))], MinSupport: 2})
				switch {
				case err == nil:
					submitted.Add(1)
					if rng.Intn(4) == 0 {
						st.Cancel(job.ID)
					}
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
					rejected.Add(1)
				default:
					t.Errorf("submit: %v", err)
				}
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				}
			}
		}(int64(w) + 1)
	}
	time.Sleep(5 * time.Millisecond)
	st.Shutdown() // mid-storm: submitters keep hammering a closing store
	wg.Wait()
	st.Shutdown() // idempotent

	s := st.Stats()
	if got := s.Done + s.Failed + s.Cancelled; got != s.Submitted {
		t.Fatalf("census leak: done %d + failed %d + cancelled %d != submitted %d",
			s.Done, s.Failed, s.Cancelled, s.Submitted)
	}
	if s.Submitted != uint64(submitted.Load()) {
		t.Fatalf("store counted %d submissions, clients saw %d accepted", s.Submitted, submitted.Load())
	}
	if s.Running != 0 || s.Queued != 0 || s.MemUsed != 0 {
		t.Fatalf("store not quiescent after shutdown: %+v", s)
	}
	for _, j := range st.List() {
		switch j.State {
		case "done", "failed", "cancelled":
		default:
			t.Fatalf("job %d left in state %q after shutdown", j.ID, j.State)
		}
		if j.State == "done" && j.Request.Algo == "cached" && !j.ServedFromCache {
			t.Fatalf("job %d lost its served_from_cache mark", j.ID)
		}
	}
	waitGoroutines(t, base)
}

// Close (graceful drain) still runs everything already queued across the
// whole pool before returning.
func TestSchedulerCloseDrainsPool(t *testing.T) {
	var done atomic.Int64
	st := NewStoreWithConfig(
		func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
			time.Sleep(time.Millisecond)
			done.Add(1)
			return MineResult{}, nil
		},
		nil, StoreConfig{QueueCap: 64, MaxConcurrent: 3})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := st.Submit(JobRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if done.Load() != n {
		t.Fatalf("Close returned with %d/%d jobs run", done.Load(), n)
	}
	if _, err := st.Submit(JobRequest{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}
