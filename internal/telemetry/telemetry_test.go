package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"fpm/internal/metrics"
)

func sampleSnapshot() metrics.Snapshot {
	return metrics.Snapshot{
		SchemaVersion: metrics.SnapshotSchemaVersion,
		Kernel:        `lcm("Lex\SIMD")`, // exercises label escaping
		Workers:       4,
		WallNanos:     int64(2 * time.Second),
		Nodes:         100, Supports: 250, Emitted: 40, Prunes: 9,
		Parallel: &metrics.ParallelStats{
			TasksSpawned: 12, TasksOffered: 20, TasksStolen: 5, StealFailures: 3,
			MergeNanos: int64(30 * time.Millisecond),
			Workers: []metrics.WorkerStat{
				{ID: 0, Tasks: 7, BusyNanos: int64(time.Second)},
				{ID: 1, Tasks: 5, BusyNanos: int64(time.Second / 2)},
			},
		},
		Partition: &metrics.PartitionStats{
			Chunks: 3, CandidatesGenerated: 60, CandidatesSurviving: 40,
			BytesPass1: 3000, BytesPass2: 1500, Pass1Nanos: 7e8, Pass2Nanos: 2e8,
			MemBudget: 1 << 20, InputBytes: 3000,
		},
	}
}

// promLine matches one exposition sample: name, optional {labels}, value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|NaN)$`)

// Every non-comment line must parse as a sample, every sample must be
// preceded by HELP/TYPE for its metric family, and the counters the
// scheduler/partition layers report must all be present.
func TestWritePrometheusIsParseable(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, sampleSnapshot(), true); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "gauge" && f[3] != "counter") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if _, ok := typed[name]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
	}

	for name, kind := range map[string]string{
		"fpm_running": "gauge", "fpm_run_seconds": "gauge", "fpm_workers": "gauge",
		"fpm_nodes_expanded_total": "counter", "fpm_itemsets_emitted_total": "counter",
		"fpm_tasks_spawned_total": "counter", "fpm_tasks_stolen_total": "counter",
		"fpm_worker_tasks_total": "counter", "fpm_worker_busy_seconds_total": "counter",
		"fpm_chunks_mined_total": "counter", "fpm_bytes_streamed_total": "counter",
		"fpm_pass_seconds_total": "counter", "fpm_mem_budget_bytes": "gauge",
		"fpm_input_bytes": "gauge",
	} {
		if typed[name] != kind {
			t.Fatalf("metric %s: TYPE %q, want %q\n%s", name, typed[name], kind, out)
		}
	}
	if !strings.Contains(out, `fpm_worker_tasks_total{worker="1"} 5`) {
		t.Fatalf("per-worker sample missing:\n%s", out)
	}
	if !strings.Contains(out, `fpm_bytes_streamed_total{pass="2"} 1500`) {
		t.Fatalf("per-pass sample missing:\n%s", out)
	}
	// The kernel label must be escaped, not raw (it contains \ and ").
	if !strings.Contains(out, `kernel="lcm(\"Lex\\SIMD\")"`) {
		t.Fatalf("kernel label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `schema_version="2"`) {
		t.Fatalf("schema_version label missing:\n%s", out)
	}
	if !strings.Contains(out, "fpm_running 1\n") {
		t.Fatalf("fpm_running should be 1 while live:\n%s", out)
	}
}

func TestProgressFromPartitionedRun(t *testing.T) {
	s := sampleSnapshot() // 4500 of 9000 total bytes → fraction 0.5
	p := ProgressFrom(s, true)
	if p.Fraction != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", p.Fraction)
	}
	if p.EtaNanos != s.WallNanos { // (1-0.5)/0.5 == 1× elapsed
		t.Fatalf("eta = %d, want %d", p.EtaNanos, s.WallNanos)
	}
	if p.ChunksDone != 3 || p.BytesStreamed != 4500 || p.InputBytes != 3000 {
		t.Fatalf("byte progress wrong: %+v", p)
	}

	// A finished run reports no ETA; fraction is capped at 1.
	s.Partition.BytesPass1 = 9000
	p = ProgressFrom(s, false)
	if p.Fraction != 1 || p.EtaNanos != 0 {
		t.Fatalf("finished run progress = %+v, want fraction 1 / no eta", p)
	}

	// In-memory runs carry no fraction at all.
	s.Partition = nil
	p = ProgressFrom(s, true)
	if p.Fraction != 0 || p.EtaNanos != 0 || p.ChunksDone != 0 {
		t.Fatalf("in-memory run progress = %+v, want counters only", p)
	}
	if p.Kernel == "" || !p.Running {
		t.Fatalf("identity fields lost: %+v", p)
	}
}

// The HTTP surface end to end with a fake miner: submit a job, watch it
// run to completion, scrape /metrics and /progress along the way.
func TestServerJobLifecycle(t *testing.T) {
	release := make(chan struct{})
	mine := func(_ context.Context, req JobRequest, rec *metrics.Recorder) (MineResult, error) {
		rec.Start("fake("+req.Algo+")", 1)
		defer rec.Stop()
		l := rec.NewLocal()
		l.Emit()
		rec.Flush(l)
		<-release
		if req.Algo == "boom" {
			return MineResult{}, errors.New("kernel exploded")
		}
		return MineResult{Itemsets: 9}, nil
	}
	srv := NewServer()
	store := NewStore(mine, srv.SetRecorder)
	srv.AttachJobs(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) Job {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, b)
		}
		var j Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j
	}
	getJob := func(id int) Job {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var j Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j
	}

	j0 := post(`{"path":"x.dat","algo":"lcm","min_support":2}`)
	j1 := post(`{"path":"y.dat","algo":"boom","min_support":2}`)
	if j0.ID == j1.ID {
		t.Fatalf("duplicate job ids: %d", j0.ID)
	}

	// Wait until the first job is live, then scrape mid-run.
	deadline := time.After(5 * time.Second)
	for getJob(j0.ID).State != "running" {
		select {
		case <-deadline:
			t.Fatal("job never started running")
		case <-time.After(time.Millisecond):
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "fpm_running 1") {
		t.Fatalf("mid-run scrape should show fpm_running 1:\n%s", body)
	}
	if !strings.Contains(string(body), `kernel="fake(lcm)"`) {
		t.Fatalf("mid-run scrape should carry the live job's kernel:\n%s", body)
	}

	resp, err = http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !prog.Running || prog.Kernel != "fake(lcm)" || prog.ItemsetsEmitted != 1 {
		t.Fatalf("mid-run progress = %+v", prog)
	}

	close(release)
	store.Close() // drains the queue

	if j := getJob(j0.ID); j.State != "done" || j.Itemsets != 9 || j.Stats == nil {
		t.Fatalf("job 0 final state = %+v", j)
	}
	if j := getJob(j1.ID); j.State != "failed" || j.Error != "kernel exploded" {
		t.Fatalf("job 1 final state = %+v", j)
	}

	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []Job
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 2 {
		t.Fatalf("GET /jobs listed %d jobs, want 2", len(all))
	}

	// Error surfaces.
	if resp, _ := http.Get(ts.URL + "/jobs/99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/99 = %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/jobs/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /jobs/abc = %d, want 400", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
}

// TestJobsBackpressureHTTP pins the admission-control surface: with a
// 1-slot queue and the runner occupied, the overflow POST must get HTTP
// 429 with a JSON body carrying the queue depth, the /metrics scrape must
// show the fpm_jobs_* gauges mid-storm, and the rejection must leave no
// job record behind.
func TestJobsBackpressureHTTP(t *testing.T) {
	started := make(chan struct{}, 8)
	block := make(chan struct{})
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		started <- struct{}{}
		<-block
		return MineResult{Itemsets: 1}, nil
	}
	srv := NewServer()
	store := NewStoreWithCap(mine, srv.SetRecorder, 1)
	srv.AttachJobs(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"path":"x","algo":"lcm","min_support":2}`))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", resp.StatusCode)
	}
	<-started // runner is busy; the queue slot is free again
	resp = post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST = %d, want 202 (fills the queue)", resp.StatusCode)
	}

	resp = post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("429 Content-Type = %q", ct)
	}
	var body struct {
		Error    string `json:"error"`
		Queued   int    `json:"queued"`
		QueueCap int    `json:"queue_cap"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Error == "" || body.Queued != 1 || body.QueueCap != 1 {
		t.Fatalf("429 body = %+v", body)
	}

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	mid := scrape()
	for _, want := range []string{
		"fpm_jobs_queued 1", "fpm_jobs_running 1", "fpm_jobs_queue_cap 1",
		"fpm_jobs_submitted_total 2", "fpm_jobs_rejected_total 1",
	} {
		if !strings.Contains(mid, want) {
			t.Fatalf("mid-storm /metrics missing %q:\n%s", want, mid)
		}
	}

	close(block)
	store.Close()
	final := scrape()
	for _, want := range []string{"fpm_jobs_queued 0", "fpm_jobs_running 0", "fpm_jobs_done_total 2"} {
		if !strings.Contains(final, want) {
			t.Fatalf("drained /metrics missing %q:\n%s", want, final)
		}
	}
	if n := len(store.List()); n != 2 {
		t.Fatalf("store lists %d jobs, want 2 (rejection must not be recorded)", n)
	}
}

// Scrapes with no recorder attached must serve empty-but-valid payloads
// rather than panic on the nil recorder.
func TestServerScrapesWithoutRecorder(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "fpm_running 0") {
		t.Fatalf("bare /metrics = %d:\n%s", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prog.Running || prog.SchemaVersion != metrics.SnapshotSchemaVersion {
		t.Fatalf("bare /progress = %+v", prog)
	}
}

func TestStoreQueueFull(t *testing.T) {
	block := make(chan struct{})
	st := NewStoreWithCap(func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		<-block
		return MineResult{}, nil
	}, nil, 4)
	// One job occupies the runner (it drains from the queue as soon as the
	// runner picks it up), so keep submitting until the 4-slot queue
	// itself is full; rejections must not grow the job list.
	var err error
	admitted := 0
	for i := 0; i < 50; i++ {
		_, err = st.Submit(JobRequest{})
		if err != nil {
			break
		}
		admitted++
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit after queue full = %v, want ErrQueueFull", err)
	}
	if admitted > 5 {
		t.Fatalf("admitted %d jobs through a 4-slot queue", admitted)
	}
	// A rejection leaves no record behind: a rejection storm must not grow
	// the store's memory. It is visible only in the Rejected counter.
	if got := len(st.List()); got != admitted {
		t.Fatalf("rejected submissions left records: %d jobs listed, %d admitted", got, admitted)
	}
	js := st.Stats()
	if js.Rejected != 1 || js.Submitted != uint64(admitted) || js.QueueCap != 4 {
		t.Fatalf("Stats after rejection = %+v", js)
	}
	close(block)
	st.Close()
	if js := st.Stats(); js.Done != uint64(admitted) || js.Queued != 0 || js.Running != 0 {
		t.Fatalf("Stats after drain = %+v", js)
	}
}
