package telemetry

// Tests for the per-job flight recorder (event timelines, the
// /jobs/{id}/events endpoint, the bounded ring) and for the server-side
// Prometheus histogram families rendered from the hdr recorders.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"fpm/internal/metrics"
)

// The timeline of an ordinary job: submitted → running → the events the
// miner emits through its context → terminal, with strictly increasing
// sequence numbers, and every event forwarded to the sink in the same
// order.
func TestFlightRecorderTimeline(t *testing.T) {
	var sunk []string
	mine := func(ctx context.Context, _ JobRequest, _ *metrics.Recorder) (MineResult, error) {
		Emit(ctx, Event{Type: "mine_start"})
		Emit(ctx, Event{Type: "mine_end", Itemsets: 3})
		return MineResult{Itemsets: 3}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{
		QueueCap: 4, MaxConcurrent: 1,
		EventSink: func(ev Event) { sunk = append(sunk, ev.Type) },
	})
	defer st.Close()
	job, err := st.Submit(JobRequest{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st.Get, job.ID, "done")
	log, ok := st.Events(job.ID)
	if !ok {
		t.Fatal("no event log for the job")
	}
	var types []string
	for i, ev := range log.Events {
		if ev.Job != job.ID {
			t.Fatalf("event %d attributed to job %d, want %d", i, ev.Job, job.ID)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.TS.IsZero() {
			t.Fatalf("event %d not timestamped: %+v", i, ev)
		}
		if i > 0 && ev.TS.Before(log.Events[i-1].TS) {
			t.Fatalf("timestamps regress at event %d", i)
		}
		types = append(types, ev.Type)
	}
	want := []string{"submitted", "running", "mine_start", "mine_end", "terminal"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("timeline = %v, want %v", types, want)
	}
	if log.Dropped != 0 {
		t.Fatalf("dropped = %d on a 5-event job", log.Dropped)
	}
	last := log.Events[len(log.Events)-1]
	if last.State != "done" || last.Itemsets != 3 {
		t.Fatalf("terminal event = %+v", last)
	}
	// The sink saw the same stream in the same order. No lock needed:
	// MaxConcurrent=1 and the job is terminal, so nothing emits anymore.
	if strings.Join(sunk, ",") != strings.Join(types, ",") {
		t.Fatalf("sink stream %v != ring %v", sunk, types)
	}
}

// A job cancelled while queued still gets a complete timeline: submitted
// then terminal, no running.
func TestFlightRecorderQueueCancelled(t *testing.T) {
	release := make(chan struct{})
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		<-release
		return MineResult{}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{QueueCap: 8, MaxConcurrent: 1})
	blocker, _ := st.Submit(JobRequest{})
	waitState(t, st.Get, blocker.ID, "running")
	victim, _ := st.Submit(JobRequest{})
	if _, ok := st.Cancel(victim.ID); !ok {
		t.Fatal("cancel refused")
	}
	close(release)
	st.Close()
	log, _ := st.Events(victim.ID)
	var types []string
	for _, ev := range log.Events {
		types = append(types, ev.Type)
	}
	if strings.Join(types, ",") != "submitted,terminal" {
		t.Fatalf("queue-cancelled timeline = %v", types)
	}
	if last := log.Events[len(log.Events)-1]; last.State != "cancelled" {
		t.Fatalf("terminal event = %+v", last)
	}
}

// The ring drops oldest-first once past EventCap, counts what it dropped,
// and keeps the tail contiguous.
func TestFlightRecorderRingBound(t *testing.T) {
	const emits = 20
	mine := func(ctx context.Context, _ JobRequest, _ *metrics.Recorder) (MineResult, error) {
		for i := 0; i < emits; i++ {
			Emit(ctx, Event{Type: "mine_start", Itemsets: i})
		}
		return MineResult{}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{QueueCap: 4, MaxConcurrent: 1, EventCap: 8})
	defer st.Close()
	job, _ := st.Submit(JobRequest{})
	waitState(t, st.Get, job.ID, "done")
	log, _ := st.Events(job.ID)
	// submitted + running + 20 emits + terminal = 23 events through an
	// 8-slot ring.
	if len(log.Events) != 8 {
		t.Fatalf("ring kept %d events, cap is 8", len(log.Events))
	}
	if log.Dropped != 23-8 {
		t.Fatalf("dropped = %d, want %d", log.Dropped, 23-8)
	}
	for i, ev := range log.Events {
		if want := uint64(23 - 8 + i); ev.Seq != want {
			t.Fatalf("survivor %d has seq %d, want %d (most recent events kept)", i, ev.Seq, want)
		}
	}
	if log.Events[len(log.Events)-1].Type != "terminal" {
		t.Fatal("terminal event must survive the ring")
	}
}

// GET /jobs/{id}/events over HTTP: real timeline as JSON, 404 for unknown
// ids, 405 for non-GET.
func TestEventsEndpoint(t *testing.T) {
	mine := func(ctx context.Context, _ JobRequest, _ *metrics.Recorder) (MineResult, error) {
		Emit(ctx, Event{Type: "mine_start"})
		return MineResult{Itemsets: 1}, nil
	}
	st := NewStore(mine, nil)
	defer st.Close()
	srv := NewServer()
	srv.AttachJobs(st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job, err := st.Submit(JobRequest{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st.Get, job.ID, "done")

	resp, err := http.Get(ts.URL + "/jobs/" + strconv.Itoa(job.ID) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var log EventLog
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		t.Fatal(err)
	}
	if log.Job != job.ID || len(log.Events) == 0 {
		t.Fatalf("event log = %+v", log)
	}
	if log.Events[0].Type != "submitted" || log.Events[len(log.Events)-1].Type != "terminal" {
		t.Fatalf("timeline endpoints wrong: %+v", log.Events)
	}

	if resp, err := http.Get(ts.URL + "/jobs/999/events"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status = %d, want 404", resp.StatusCode)
	}
	if req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/0/events", nil); err != nil {
		t.Fatal(err)
	} else if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE on events: status = %d, want 405", resp.StatusCode)
	}
}

// A job that holds a real allocation through its mine must report a
// measured peak on that allocation's order, and the matching estimate
// ratio. The bound is half the allocation, not all of it: the
// runtime/metrics live-heap estimate deliberately tolerates per-P cache
// slack (that is what makes reading it cheap enough for a sampler), so
// the delta routinely lands ~10% under the true figure.
func TestStoreMeasuresPeakFootprint(t *testing.T) {
	const alloc = 8 << 20
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		buf := make([]byte, alloc)
		for i := range buf {
			buf[i] = byte(i)
		}
		time.Sleep(2 * time.Millisecond)
		runtime.KeepAlive(buf)
		return MineResult{Itemsets: int(buf[123])}, nil
	}
	st := NewStoreWithConfig(mine, nil, StoreConfig{
		QueueCap: 4, MaxConcurrent: 1, MemBudget: 1 << 30,
		Footprint: func(JobRequest) (int64, bool) { return 16 << 20, false },
	})
	defer st.Close()
	job, _ := st.Submit(JobRequest{})
	j := waitState(t, st.Get, job.ID, "done")
	if j.PeakBytes < alloc/2 {
		t.Fatalf("peak_bytes = %d, want >= %d (half the held allocation)", j.PeakBytes, alloc/2)
	}
	if j.EstimateRatio <= 0 || j.EstimateRatio != float64(j.PeakBytes)/float64(j.MemEstimate) {
		t.Fatalf("estimate_ratio = %g with peak %d / estimate %d", j.EstimateRatio, j.PeakBytes, j.MemEstimate)
	}
	if last := mustEvents(t, st, job.ID); last.PeakBytes != j.PeakBytes {
		t.Fatalf("terminal event peak %d != job record %d", last.PeakBytes, j.PeakBytes)
	}
}

func mustEvents(t *testing.T, st *Store, id int) Event {
	t.Helper()
	log, ok := st.Events(id)
	if !ok || len(log.Events) == 0 {
		t.Fatalf("no events for job %d", id)
	}
	return log.Events[len(log.Events)-1]
}

// Every terminal job lands exactly once in every histogram family, and
// the rendered Prometheus text is well-formed: parseable lines, monotone
// cumulative buckets, +Inf == _count.
func TestJobHistogramsRendered(t *testing.T) {
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		time.Sleep(time.Millisecond)
		return MineResult{Itemsets: 1}, nil
	}
	st := NewStore(mine, nil)
	const jobs = 5
	for i := 0; i < jobs; i++ {
		job, err := st.Submit(JobRequest{MinSupport: 1})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, st.Get, job.ID, "done")
	}
	st.Close()

	jh := st.Histograms()
	for name, h := range map[string]uint64{
		"queue_wait": jh.QueueWait.Count(), "mine": jh.Mine.Count(),
		"e2e": jh.E2E.Count(), "footprint": jh.Footprint.Count(),
	} {
		if h != jobs {
			t.Fatalf("%s histogram count = %d, want %d", name, h, jobs)
		}
	}
	if jh.E2E.Quantile(0.5) < jh.Mine.Quantile(0.5) {
		t.Fatal("e2e median below mine median")
	}

	var b strings.Builder
	if err := WriteJobHistograms(&b, jh); err != nil {
		t.Fatal(err)
	}
	checkHistogramText(t, b.String(), map[string]uint64{
		"fpm_job_queue_wait_seconds": jobs,
		"fpm_job_mine_seconds":       jobs,
		"fpm_job_e2e_seconds":        jobs,
		"fpm_job_footprint_bytes":    jobs,
	})
	for _, gauge := range []string{
		"fpm_job_e2e_seconds_p50_seconds", "fpm_job_e2e_seconds_p99_seconds",
		"fpm_job_mine_seconds_p99_seconds", "fpm_job_queue_wait_seconds_p99_seconds",
	} {
		if !strings.Contains(b.String(), "\n"+gauge+" ") {
			t.Fatalf("gauge %s missing:\n%s", gauge, b.String())
		}
	}
}

// checkHistogramText validates text-0.0.4 well-formedness of histogram
// families: every line parses, every sample has a TYPE, each family's
// cumulative buckets are monotone and its +Inf bucket equals _count,
// which equals wantCounts.
func checkHistogramText(t *testing.T, out string, wantCounts map[string]uint64) {
	t.Helper()
	typed := map[string]string{}
	lastBucket := map[string]uint64{}
	infBucket := map[string]uint64{}
	counts := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "gauge" && f[3] != "counter" && f[3] != "histogram") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		if !promLine.MatchString(line) && !strings.Contains(line, `le="+Inf"`) {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && typed[f] == "histogram" {
				fam = f
				break
			}
		}
		if _, ok := typed[fam]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		val := line[strings.LastIndex(line, " ")+1:]
		switch {
		case strings.HasPrefix(line, fam+"_bucket{"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			if n < lastBucket[fam] {
				t.Fatalf("cumulative buckets regress in %s: %q after %d", fam, line, lastBucket[fam])
			}
			lastBucket[fam] = n
			if strings.Contains(line, `le="+Inf"`) {
				infBucket[fam] = n
			}
		case strings.HasPrefix(line, fam+"_count "):
			n, _ := strconv.ParseUint(val, 10, 64)
			counts[fam] = n
		}
	}
	for fam, want := range wantCounts {
		if typed[fam] != "histogram" {
			t.Fatalf("family %s: TYPE %q, want histogram", fam, typed[fam])
		}
		if counts[fam] != want {
			t.Fatalf("%s_count = %d, want %d", fam, counts[fam], want)
		}
		if infBucket[fam] != counts[fam] {
			t.Fatalf("%s +Inf bucket %d != _count %d", fam, infBucket[fam], counts[fam])
		}
	}
}

// The /metrics endpoint carries the histogram families and the new
// counters end to end through the HTTP handler.
func TestMetricsEndpointHasJobHistograms(t *testing.T) {
	mine := func(context.Context, JobRequest, *metrics.Recorder) (MineResult, error) {
		return MineResult{Itemsets: 1}, nil
	}
	st := NewStore(mine, nil)
	defer st.Close()
	srv := NewServer()
	srv.AttachJobs(st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job, _ := st.Submit(JobRequest{MinSupport: 1})
	waitState(t, st.Get, job.ID, "done")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE fpm_job_e2e_seconds histogram",
		"fpm_job_e2e_seconds_count 1",
		"# TYPE fpm_jobs_shed_total counter",
		"# TYPE fpm_jobs_footprint_learned_total counter",
		"# TYPE fpm_jobs_footprint_heuristic_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}
