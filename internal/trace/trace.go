// Package trace is the timeline counterpart of internal/metrics: where the
// counter layer reports *how much* work a run did, the span recorder
// reports *when* each piece of it happened — scheduler tasks, worker idle
// gaps, steal events, partition passes and chunk boundaries — so questions
// the end-of-run totals cannot answer ("why was this run slow?", "which
// chunk stalled pass 1?", "did the workers starve?") become visible as a
// timeline. The output is Chrome trace-event JSON, loadable directly in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing, with one track
// per scheduler worker and one per partition phase, plus counter series
// sampled from the metrics recorder so spans and counters land in one
// file.
//
// The recording discipline mirrors metrics.Local's two tiers:
//
//   - Track is a per-goroutine span arena. Every hot-path site is a single
//     nil check (a nil *Track is the disabled sink), and an enabled append
//     writes into a preallocated ring buffer — no locks, no allocation, no
//     atomics. When a track overflows its ring the oldest spans are
//     overwritten and counted, so tracing a long run costs bounded memory
//     and keeps the most recent (usually most interesting) window.
//   - Recorder is the shared per-run sink: it owns the clock origin, hands
//     out tracks, samples counter series from a metrics.Recorder on a
//     background ticker while the run is live, and serialises everything
//     into one trace file when the run ends. All Recorder methods are
//     nil-safe, so a nil *Recorder threads through drivers as the disabled
//     recorder.
//
// Tracks are single-goroutine: each scheduler worker, sequential kernel
// state and partition driver owns its own. The Recorder hands them out
// under a lock, and WriteJSON must only run after the goroutines writing
// spans have finished (the mining drivers flush after their pools join).
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"fpm/internal/failpoint"
	"fpm/internal/metrics"
)

// SchemaVersion is the version stamped into the trace file's metadata
// (otherData.schema_version), bumped when the span categories, arg keys or
// counter series change incompatibly. Version 1 is the initial format.
const SchemaVersion = 1

// DefaultCapacity is the per-track span ring size. At 48 bytes per span a
// full track costs ~384 KiB; an 8-worker pool tops out around 3 MiB.
const DefaultCapacity = 8192

// DefaultSampleInterval is the counter-series sampling period. 25ms keeps
// a multi-minute partitioned run under a few thousand points while still
// resolving per-chunk counter slopes.
const DefaultSampleInterval = 25 * time.Millisecond

// maxCounterPoints bounds the sampled counter series; beyond it samples
// are dropped (the final Stop sample is always recorded).
const maxCounterPoints = 1 << 13

// Cat classifies a span; it selects the trace-event category string and
// the JSON key the span's numeric payload is rendered under.
type Cat uint8

const (
	// CatTask is one scheduler task execution; payload = subtree weight.
	CatTask Cat = iota
	// CatIdle is a worker's starved interval (inside hunt); payload =
	// failed full victim scans during the interval.
	CatIdle
	// CatSteal is a successful steal (instant event); payload = victim id.
	CatSteal
	// CatKernel is one coarse kernel recursion boundary — a first-level
	// subtree mined sequentially; payload = the subtree's branch item.
	CatKernel
	// CatPhase is one out-of-core pass boundary (sizing scan, pass-2
	// recount); payload = bytes streamed during the phase.
	CatPhase
	// CatChunk is one pass-1 chunk being mined; payload = candidates the
	// chunk added to the union.
	CatChunk
)

// String returns the trace-event category name.
func (c Cat) String() string {
	switch c {
	case CatTask:
		return "task"
	case CatIdle:
		return "idle"
	case CatSteal:
		return "steal"
	case CatKernel:
		return "kernel"
	case CatPhase:
		return "phase"
	case CatChunk:
		return "chunk"
	}
	return "span"
}

// argKey is the JSON args key the span payload is rendered under.
func (c Cat) argKey() string {
	switch c {
	case CatTask:
		return "weight"
	case CatIdle:
		return "steal_failures"
	case CatSteal:
		return "victim"
	case CatKernel:
		return "item"
	case CatPhase:
		return "bytes"
	case CatChunk:
		return "candidates"
	}
	return "value"
}

// span is one recorded event: a complete slice of a track's timeline, or
// an instant (dur < 0).
type span struct {
	name  string
	cat   Cat
	start int64 // ns since the recorder's clock origin
	dur   int64 // ns; negative marks an instant event
	arg   int64 // payload, rendered under cat.argKey()
}

// Track is one timeline row: a single-goroutine span arena. All methods
// are nil-safe; a nil *Track is the disabled sink the hot paths nil-check.
type Track struct {
	rec     *Recorder
	tid     int
	name    string
	spans   []span
	head    int // ring start once len(spans) == cap(spans)
	dropped uint64
}

// Begin returns the current timestamp (ns since the run's clock origin)
// for a span that End will close, or 0 when the track is disabled.
func (t *Track) Begin() int64 {
	if t == nil {
		return 0
	}
	return t.rec.now()
}

// End records a complete span from start (a Begin result) to now. name
// should be a reachable constant or long-lived string — tracks retain it
// until the trace is written. arg is rendered under the category's payload
// key (see Cat).
func (t *Track) End(start int64, name string, cat Cat, arg int64) {
	if t == nil {
		return
	}
	t.add(span{name: name, cat: cat, start: start, dur: t.rec.now() - start, arg: arg})
}

// Instant records a zero-duration marker event.
func (t *Track) Instant(name string, cat Cat, arg int64) {
	if t == nil {
		return
	}
	t.add(span{name: name, cat: cat, start: t.rec.now(), dur: -1, arg: arg})
}

// add appends into the ring, overwriting the oldest span once full.
func (t *Track) add(s span) {
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
		return
	}
	t.spans[t.head] = s
	t.head++
	if t.head == len(t.spans) {
		t.head = 0
	}
	t.dropped++
}

// ordered returns the track's spans oldest-first.
func (t *Track) ordered() []span {
	if t.head == 0 {
		return t.spans
	}
	out := make([]span, 0, len(t.spans))
	out = append(out, t.spans[t.head:]...)
	out = append(out, t.spans[:t.head]...)
	return out
}

// counterPoint is one sampled view of the metrics recorder's live totals.
type counterPoint struct {
	ts         int64 // ns since clock origin
	nodes      uint64
	emitted    uint64
	spawned    uint64
	stolen     uint64
	stealFails uint64
	chunks     uint64
	candidates uint64
	bytes      int64
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithOutput attaches the writer Flush serialises the trace into. Without
// an output, Flush is a no-op and the caller drives WriteJSON directly.
func WithOutput(w io.Writer) Option { return func(r *Recorder) { r.out = w } }

// WithCapacity overrides the per-track span ring size.
func WithCapacity(n int) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.cap = n
		}
	}
}

// WithSampleInterval overrides the counter-series sampling period; <= 0
// disables periodic sampling (the final Stop sample is still taken).
func WithSampleInterval(d time.Duration) Option {
	return func(r *Recorder) { r.sample = d }
}

// Recorder owns one run's trace: the clock origin, the tracks, the
// sampled counter series and the output writer. All methods are nil-safe.
type Recorder struct {
	cap    int
	sample time.Duration
	out    io.Writer

	start  time.Time
	kernel string

	mu       sync.Mutex
	tracks   []*Track
	counters []counterPoint
	src      *metrics.Recorder

	stopC chan struct{}
	doneC chan struct{}

	flushOnce sync.Once
	flushErr  error
}

// NewRecorder returns an enabled span recorder. The clock origin is
// stamped now and re-stamped by Start.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{cap: DefaultCapacity, sample: DefaultSampleInterval, start: time.Now()}
	for _, fn := range opts {
		fn(r)
	}
	return r
}

// Enabled reports whether r records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// now is the recorder clock: ns since the run's origin.
func (r *Recorder) now() int64 { return int64(time.Since(r.start)) }

// NewTrack allocates one timeline row. The returned track is nil when the
// recorder is disabled, so call sites keep the one-nil-check discipline.
// Safe to call from any goroutine; the track itself is single-goroutine.
func (r *Recorder) NewTrack(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Track{rec: r, tid: len(r.tracks), name: name, spans: make([]span, 0, r.cap)}
	r.tracks = append(r.tracks, t)
	return t
}

// Start stamps the run identity and clock origin and, when src is
// non-nil, begins sampling its counters into the trace's counter series
// on the configured interval until Stop.
func (r *Recorder) Start(kernel string, src *metrics.Recorder) {
	if r == nil {
		return
	}
	r.kernel = kernel
	r.start = time.Now()
	if src == nil || r.sample <= 0 {
		r.mu.Lock()
		r.src = src
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	r.src = src
	r.mu.Unlock()
	r.stopC = make(chan struct{})
	r.doneC = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(r.sample)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				r.samplePoint()
			case <-stop:
				return
			}
		}
	}(r.stopC, r.doneC)
}

// Stop halts counter sampling and records one final sample, so even runs
// shorter than the sampling interval carry a counter series.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	if r.stopC != nil {
		close(r.stopC)
		<-r.doneC
		r.stopC, r.doneC = nil, nil
	}
	r.samplePoint()
}

// samplePoint freezes the metrics recorder's current totals into one
// counter point.
func (r *Recorder) samplePoint() {
	r.mu.Lock()
	src := r.src
	r.mu.Unlock()
	if src == nil {
		return
	}
	snap := src.Snapshot() // outside r.mu: Snapshot takes the recorder's own lock
	p := counterPoint{ts: r.now(), nodes: snap.Nodes, emitted: snap.Emitted}
	if ps := snap.Parallel; ps != nil {
		p.spawned, p.stolen, p.stealFails = ps.TasksSpawned, ps.TasksStolen, ps.StealFailures
	}
	if pt := snap.Partition; pt != nil {
		p.chunks, p.candidates = pt.Chunks, pt.CandidatesGenerated
		p.bytes = pt.BytesPass1 + pt.BytesPass2
	}
	r.mu.Lock()
	if len(r.counters) < maxCounterPoints {
		r.counters = append(r.counters, p)
	}
	r.mu.Unlock()
}

// Flush serialises the trace into the writer attached with WithOutput,
// exactly once; later calls return the first outcome. Without an attached
// output it is a no-op. Mining is never interrupted by a failing trace
// sink: drivers flush after the run completes and surface the error once.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.flushOnce.Do(func() {
		if err := failpoint.Hit(failpoint.TraceFlush); err != nil {
			r.flushErr = fmt.Errorf("trace: %w", err)
			return
		}
		if r.out != nil {
			r.flushErr = r.WriteJSON(r.out)
		}
	})
	return r.flushErr
}
