package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// The Chrome trace-event JSON object format, the subset Perfetto and
// chrome://tracing load: a traceEvents array of metadata ("M"), complete
// ("X"), instant ("i") and counter ("C") events with microsecond
// timestamps, plus free-form otherData metadata.
// Reference: Trace Event Format, Google, docs/trace-event-format.md.

// event is one trace-event JSON object. Field order in the output is
// encoding/json struct order.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// tracePid is the single process id every event carries; the trace models
// one mining run, not an OS process tree.
const tracePid = 1

// usec converts recorder nanoseconds to trace-event microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteJSON serialises the trace as a Chrome trace-event JSON object. It
// must only be called after every goroutine writing spans has finished
// (for the mining drivers: after Mine returns). The writer's first error
// aborts the serialisation and is returned.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	ew := &errWriter{w: w}
	io.WriteString(ew, "{\"traceEvents\":[\n")
	first := true
	emit := func(e event) {
		if ew.err != nil {
			return
		}
		b, err := json.Marshal(e)
		if err != nil {
			ew.err = err
			return
		}
		if !first {
			io.WriteString(ew, ",\n")
		}
		first = false
		ew.Write(b)
	}

	emit(event{Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "fpm"}})
	for _, t := range r.tracks {
		emit(event{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: t.tid,
			Args: map[string]any{"name": t.name}})
		emit(event{Name: "thread_sort_index", Ph: "M", Pid: tracePid, Tid: t.tid,
			Args: map[string]any{"sort_index": t.tid}})
	}
	for _, t := range r.tracks {
		for _, s := range t.ordered() {
			e := event{Name: s.name, Pid: tracePid, Tid: t.tid,
				Ts: usec(s.start), Cat: s.cat.String(),
				Args: map[string]any{s.cat.argKey(): s.arg}}
			if s.dur < 0 {
				e.Ph, e.S = "i", "t"
			} else {
				d := usec(s.dur)
				e.Ph, e.Dur = "X", &d
			}
			emit(e)
		}
		if t.dropped > 0 {
			emit(event{Name: "spans_dropped", Ph: "i", Pid: tracePid, Tid: t.tid,
				Ts: r.lastTs(t), S: "t", Args: map[string]any{"count": t.dropped}})
		}
	}
	for _, p := range r.counters {
		ts := usec(p.ts)
		emit(event{Name: "itemsets", Ph: "C", Pid: tracePid, Ts: ts,
			Args: map[string]any{"emitted": p.emitted}})
		emit(event{Name: "nodes", Ph: "C", Pid: tracePid, Ts: ts,
			Args: map[string]any{"expanded": p.nodes}})
		if p.spawned > 0 || p.stolen > 0 || p.stealFails > 0 {
			emit(event{Name: "tasks", Ph: "C", Pid: tracePid, Ts: ts,
				Args: map[string]any{"spawned": p.spawned, "stolen": p.stolen, "steal_failures": p.stealFails}})
		}
		if p.chunks > 0 || p.candidates > 0 || p.bytes > 0 {
			emit(event{Name: "partition", Ph: "C", Pid: tracePid, Ts: ts,
				Args: map[string]any{"chunks": p.chunks, "candidates": p.candidates}})
			emit(event{Name: "bytes_streamed", Ph: "C", Pid: tracePid, Ts: ts,
				Args: map[string]any{"bytes": p.bytes}})
		}
	}

	if ew.err != nil {
		return fmt.Errorf("trace: %w", ew.err)
	}
	meta := map[string]any{"schema_version": SchemaVersion, "kernel": r.kernel, "tool": "fpm"}
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	io.WriteString(ew, "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":")
	ew.Write(mb)
	io.WriteString(ew, "}\n")
	if ew.err != nil {
		return fmt.Errorf("trace: %w", ew.err)
	}
	return nil
}

// lastTs is the timestamp of the track's newest span (for placing the
// spans_dropped marker).
func (r *Recorder) lastTs(t *Track) float64 {
	if len(t.spans) == 0 {
		return 0
	}
	last := t.head - 1
	if last < 0 {
		last = len(t.spans) - 1
	}
	return usec(t.spans[last].start)
}

// errWriter latches the first write error and swallows the rest, so the
// serialisation loop stays linear and the error is surfaced once.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	if err != nil {
		e.err = err
	}
	return n, err
}
