package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"fpm/internal/metrics"
)

// traceFile mirrors the trace-event JSON object format for decoding.
type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	DisplayUnit string         `json:"displayTimeUnit"`
	OtherData   map[string]any `json:"otherData"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  *int           `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	Cat  string         `json:"cat"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func decodeTrace(t *testing.T, b []byte) traceFile {
	t.Helper()
	var tf traceFile
	if err := json.Unmarshal(b, &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, b)
	}
	return tf
}

func TestNilRecorderAndTrackAreNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	tk := r.NewTrack("x")
	if tk != nil {
		t.Fatal("nil recorder returned a non-nil track")
	}
	// None of these may panic.
	ts := tk.Begin()
	tk.End(ts, "a", CatTask, 1)
	tk.Instant("b", CatSteal, 2)
	r.Start("lcm", nil)
	r.Stop()
	if err := r.Flush(); err != nil {
		t.Fatalf("nil recorder Flush returned %v", err)
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil recorder WriteJSON returned %v", err)
	}
}

// Every event must carry the fields Perfetto requires; "X" events must
// have a non-negative duration; each track must be named by an "M" event.
func TestWriteJSONEventFormat(t *testing.T) {
	r := NewRecorder(WithSampleInterval(0))
	r.Start("eclat(Lex)", nil)
	w0 := r.NewTrack("worker 0")
	w1 := r.NewTrack("worker 1")
	ts := w0.Begin()
	time.Sleep(time.Millisecond)
	w0.End(ts, "task", CatTask, 17)
	w1.Instant("steal", CatSteal, 0)
	r.Stop()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tf := decodeTrace(t, buf.Bytes())
	if tf.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tf.DisplayUnit)
	}
	if got := tf.OtherData["schema_version"]; got != float64(SchemaVersion) {
		t.Fatalf("otherData.schema_version = %v, want %d", got, SchemaVersion)
	}
	if got := tf.OtherData["kernel"]; got != "eclat(Lex)" {
		t.Fatalf("otherData.kernel = %v", got)
	}

	named := map[int]string{}
	var sawX, sawI bool
	for _, e := range tf.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil {
			t.Fatalf("event missing name/ph/pid: %+v", e)
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				named[e.Tid] = e.Args["name"].(string)
			}
		case "X":
			sawX = true
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("X event without non-negative dur: %+v", e)
			}
			if e.Cat != "task" || e.Args["weight"] != float64(17) {
				t.Fatalf("task span lost category or payload: %+v", e)
			}
		case "i":
			sawI = true
			if e.S != "t" {
				t.Fatalf("instant event scope = %q, want t", e.S)
			}
		}
	}
	if !sawX || !sawI {
		t.Fatalf("missing span kinds: X=%v i=%v", sawX, sawI)
	}
	if named[w0.tid] != "worker 0" || named[w1.tid] != "worker 1" {
		t.Fatalf("thread_name metadata wrong: %v", named)
	}
}

// Overflowing a track's ring must keep the newest spans, count the
// overwritten ones and surface a spans_dropped marker in the output.
func TestRingOverflowKeepsNewestAndReportsDropped(t *testing.T) {
	r := NewRecorder(WithCapacity(4), WithSampleInterval(0))
	tk := r.NewTrack("w")
	for i := 0; i < 10; i++ {
		tk.End(tk.Begin(), "s", CatTask, int64(i))
	}
	if tk.dropped != 6 {
		t.Fatalf("dropped = %d, want 6", tk.dropped)
	}
	got := tk.ordered()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := int64(6 + i); s.arg != want {
			t.Fatalf("ordered()[%d].arg = %d, want %d (oldest-first newest window)", i, s.arg, want)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tf := decodeTrace(t, buf.Bytes())
	found := false
	for _, e := range tf.TraceEvents {
		if e.Name == "spans_dropped" {
			found = true
			if e.Args["count"] != float64(6) {
				t.Fatalf("spans_dropped count = %v, want 6", e.Args["count"])
			}
		}
	}
	if !found {
		t.Fatal("no spans_dropped marker in output")
	}
}

// Counter sampling must pull live totals from the metrics recorder and
// always record a final point at Stop, even for sub-interval runs.
func TestCounterSeriesSampledFromMetrics(t *testing.T) {
	src := metrics.NewRecorder()
	src.Start("lcm", 0)
	l := src.NewLocal()
	l.Node()
	l.Emit()
	src.Flush(l)

	r := NewRecorder(WithSampleInterval(0)) // periodic sampling off; Stop still samples
	r.Start("lcm", src)
	r.Stop()
	src.Stop()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tf := decodeTrace(t, buf.Bytes())
	var sawItemsets, sawNodes bool
	for _, e := range tf.TraceEvents {
		if e.Ph != "C" {
			continue
		}
		switch e.Name {
		case "itemsets":
			sawItemsets = true
			if e.Args["emitted"] != float64(1) {
				t.Fatalf("itemsets counter = %v, want 1", e.Args["emitted"])
			}
		case "nodes":
			sawNodes = true
		}
	}
	if !sawItemsets || !sawNodes {
		t.Fatalf("counter series missing: itemsets=%v nodes=%v", sawItemsets, sawNodes)
	}
}

// failAfter fails every write once n bytes have gone through, simulating
// a full disk mid-serialisation.
type failAfter struct {
	n       int
	written int
	errs    int
}

var errSinkFull = errors.New("sink full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		f.errs++
		return 0, errSinkFull
	}
	f.written += len(p)
	return len(p), nil
}

// A failing trace sink must surface its first error from Flush exactly
// once; repeated Flush calls return the same latched outcome without
// re-writing.
func TestFlushSurfacesWriterErrorOnce(t *testing.T) {
	w := &failAfter{n: 64}
	r := NewRecorder(WithOutput(w), WithSampleInterval(0))
	tk := r.NewTrack("w")
	for i := 0; i < 20; i++ {
		tk.End(tk.Begin(), "s", CatTask, int64(i))
	}
	err := r.Flush()
	if err == nil || !errors.Is(err, errSinkFull) {
		t.Fatalf("Flush error = %v, want wrapped sink error", err)
	}
	if !strings.Contains(err.Error(), "trace:") {
		t.Fatalf("Flush error not namespaced: %v", err)
	}
	errsAfterFirst := w.errs
	if err2 := r.Flush(); err2 != err {
		t.Fatalf("second Flush = %v, want latched %v", err2, err)
	}
	if w.errs != errsAfterFirst {
		t.Fatal("second Flush wrote to the sink again")
	}
}

// A short write (n < len(p), nil error) must also fail the flush.
type shortWriter struct{ wrote bool }

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.wrote && len(p) > 1 {
		return len(p) - 1, nil
	}
	s.wrote = true
	return len(p), nil
}

func TestFlushDetectsShortWrite(t *testing.T) {
	r := NewRecorder(WithOutput(&shortWriter{}), WithSampleInterval(0))
	tk := r.NewTrack("w")
	tk.End(tk.Begin(), "s", CatTask, 1)
	if err := r.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Flush = %v, want io.ErrShortWrite", err)
	}
}

// Flush without an attached output is a no-op, not an error.
func TestFlushWithoutOutputIsNoOp(t *testing.T) {
	r := NewRecorder(WithSampleInterval(0))
	r.NewTrack("w").Instant("x", CatSteal, 0)
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush without output = %v", err)
	}
}

func TestCatNames(t *testing.T) {
	cases := []struct {
		c        Cat
		name, ak string
	}{
		{CatTask, "task", "weight"},
		{CatIdle, "idle", "steal_failures"},
		{CatSteal, "steal", "victim"},
		{CatKernel, "kernel", "item"},
		{CatPhase, "phase", "bytes"},
		{CatChunk, "chunk", "candidates"},
		{Cat(99), "span", "value"},
	}
	for _, c := range cases {
		if c.c.String() != c.name || c.c.argKey() != c.ak {
			t.Fatalf("Cat(%d) = %q/%q, want %q/%q", c.c, c.c.String(), c.c.argKey(), c.name, c.ak)
		}
	}
}
