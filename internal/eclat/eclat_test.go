package eclat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/mine"
)

// allVariants lists every pattern combination valid for Eclat (Table 4)
// plus the exact-range ablation.
func allVariants() []*Miner {
	return []*Miner{
		New(Options{}),
		New(Options{Patterns: mine.PatternSet(mine.Lex)}),
		New(Options{Patterns: mine.PatternSet(mine.SIMD)}),
		New(Options{Patterns: mine.PatternSet(mine.Lex | mine.SIMD)}),
		New(Options{Patterns: mine.PatternSet(mine.Lex | mine.SIMD), ExactRanges: true}),
	}
}

func TestHandWorked(t *testing.T) {
	// Same fixture as the brute-force test: supports computed by hand.
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1, 2}, {0, 2}})
	want := mine.ResultSet{"0": 3, "1": 2, "2": 2, "0,1": 2, "0,2": 2}
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, 2, rs); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s = %v, want %v\n%s", m.Name(), rs, want, rs.Diff(want, 10))
		}
	}
}

func TestPaperTable1Database(t *testing.T) {
	// The paper's Table 1 DB (a..f = 0..5), minsup 3: frequent itemsets
	// are c(4), f(4), a(3), cf(4), ca(3), fa(3), cfa(3).
	db := dataset.New([]dataset.Transaction{
		{0, 2, 5}, {1, 2, 5}, {0, 2, 5}, {3, 4}, {0, 1, 2, 3, 4, 5},
	})
	db.Normalize()
	want := mine.ResultSet{"2": 4, "5": 4, "0": 3, "2,5": 4, "0,2": 3, "0,5": 3, "0,2,5": 3}
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, 3, rs); err != nil {
			t.Fatal(err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s:\n%s", m.Name(), rs.Diff(want, 10))
		}
	}
}

func TestEdgeCases(t *testing.T) {
	m := New(Options{})
	if err := m.Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
		t.Fatalf("empty DB: %v", err)
	}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
		t.Fatal("minSupport 0 accepted")
	}
	// Support above every frequency → nothing mined.
	rs := mine.ResultSet{}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}, {1}}), 3, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("mined %v at impossible support", rs)
	}
}

// Property: every variant agrees with the brute-force oracle on random
// small databases.
func TestMatchesBruteForceProperty(t *testing.T) {
	variants := allVariants()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		for _, m := range variants {
			rs := mine.ResultSet{}
			if err := m.Mine(db, minsup, rs); err != nil {
				return false
			}
			if !rs.Equal(want) {
				t.Logf("%s (seed %d, minsup %d):\n%s", m.Name(), seed, minsup, rs.Diff(want, 5))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestVariantsAgreeOnGenerated cross-checks all variants on a
// medium Quest workload where brute force is infeasible.
func TestVariantsAgreeOnGenerated(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 600, AvgLen: 12, AvgPatternLen: 4, Items: 60, Patterns: 25, Seed: 99})
	minsup := 30
	var want mine.ResultSet
	for _, m := range allVariants() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, minsup, rs); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rs
			if len(want) == 0 {
				t.Fatal("degenerate workload: no frequent itemsets")
			}
			continue
		}
		if !rs.Equal(want) {
			t.Fatalf("%s disagrees:\n%s", m.Name(), rs.Diff(want, 10))
		}
	}
}

func TestMineDoesNotMutateInput(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{2, 0}, {1, 0}})
	db.Normalize()
	before := db.Clone()
	m := New(Options{Patterns: mine.PatternSet(mine.Lex | mine.SIMD)})
	if err := m.Mine(db, 1, mine.ResultSet{}); err != nil {
		t.Fatal(err)
	}
	for i := range db.Tx {
		for j := range db.Tx[i] {
			if db.Tx[i][j] != before.Tx[i][j] {
				t.Fatal("Mine mutated input database")
			}
		}
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}

// eagerSpawner accepts every offered class and runs it synchronously,
// recursively re-entering itself.
type eagerSpawner struct {
	c      mine.Collector
	offers int
}

func (s *eagerSpawner) WouldSteal(weight int) bool { return true }
func (s *eagerSpawner) Cancelled() bool            { return false }
func (s *eagerSpawner) Offer(weight int, task mine.TaskFunc) bool {
	s.offers++
	if err := task(s.c, s); err != nil {
		panic(err)
	}
	return true
}

// TestMineSplitMatchesMine asserts that handing every equivalence class to
// a spawner yields exactly the sequential result set for every variant.
func TestMineSplitMatchesMine(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 500, AvgLen: 12, AvgPatternLen: 4, Items: 50, Patterns: 20, Seed: 7})
	for _, m := range allVariants() {
		want := mine.ResultSet{}
		if err := m.Mine(db, 20, want); err != nil {
			t.Fatal(err)
		}
		got := mine.ResultSet{}
		sp := &eagerSpawner{c: got}
		if err := m.MineSplit(db, 20, got, sp); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if sp.offers == 0 {
			t.Fatalf("%s: no class was ever offered", m.Name())
		}
		if !got.Equal(want) {
			t.Fatalf("%s: split disagrees:\n%s", m.Name(), got.Diff(want, 8))
		}
	}
}
