// Package eclat implements the Eclat kernel studied in paper §4.2: a
// depth-first miner over a vertical, dense bit-matrix database. Columns
// initially represent items' occurrences over transactions; the AND of two
// columns is the occurrence vector of the union of their itemsets, and
// counting ones computes support. 98% of the original code's time is spent
// in this AND + count loop, so the applicable patterns (Table 4) are
//
//	P1 Lex  — lexicographic ordering clusters the 1s of frequent items at
//	          the start of the vectors and enables 0-escaping (skipping
//	          all-zero head/tail words via conservative 1-ranges);
//	P8 SIMD — replaces the baseline per-byte table-lookup popcount (an
//	          indirect load that defeats vectorization) with word-parallel
//	          computational popcount, fused with the AND.
package eclat

import (
	"fpm/internal/bitvec"
	"fpm/internal/dataset"
	"fpm/internal/lexorder"
	"fpm/internal/mine"
)

// Options selects the tuning patterns applied by the miner. Patterns
// outside mine.Applicable(mine.Eclat) are ignored.
type Options struct {
	Patterns mine.PatternSet
	// ExactRanges switches 0-escaping from the paper's conservative
	// intersected ranges to exact range recomputation after every AND
	// (ablation E9.1). Only meaningful when Patterns has Lex.
	ExactRanges bool
}

// Miner is an Eclat frequent itemset miner.
type Miner struct {
	opts Options
}

// New returns an Eclat miner with the given options.
func New(opts Options) *Miner { return &Miner{opts: opts} }

// Name implements mine.Miner.
func (m *Miner) Name() string { return "eclat(" + m.opts.Patterns.String() + ")" }

// node is one element of the DFS stack's current equivalence class.
type node struct {
	item    dataset.Item
	vec     *bitvec.Vector
	rng     bitvec.OneRange
	support int
}

// Mine implements mine.Miner.
func (m *Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}

	lex := m.opts.Patterns.Has(mine.Lex)
	simd := m.opts.Patterns.Has(mine.SIMD)

	work := db
	var ord *lexorder.Ordering
	if lex {
		work, ord = lexorder.Apply(db)
	}

	n := work.Len()
	// Build the vertical bit matrix for frequent items only.
	freq := work.Frequencies()
	var roots []node
	vecs := make(map[dataset.Item]*bitvec.Vector)
	for it := dataset.Item(0); int(it) < work.NumItems; it++ {
		if freq[it] >= minSupport {
			vecs[it] = bitvec.New(n)
		}
	}
	for ti, t := range work.Tx {
		for _, it := range t {
			if v, ok := vecs[it]; ok {
				v.Set(ti)
			}
		}
	}
	for it := dataset.Item(0); int(it) < work.NumItems; it++ {
		v, ok := vecs[it]
		if !ok {
			continue
		}
		r := bitvec.OneRange{Lo: 0, Hi: v.Words()}
		if lex {
			// "The ranges are initialized by computing the first and last
			// 1 in each item bit-vector" (§4.2).
			r = v.Range()
		}
		roots = append(roots, node{item: it, vec: v, rng: r, support: freq[it]})
	}

	andCount := func(dst, a, b *bitvec.Vector, r bitvec.OneRange) (int, bitvec.OneRange) {
		if lex {
			if m.opts.ExactRanges {
				return bitvec.AndCountRangeExact(dst, a, b, r)
			}
			return bitvec.AndCountRange(dst, a, b, r), r
		}
		if simd {
			return bitvec.AndCount(dst, a, b), r
		}
		return bitvec.AndCountTable(dst, a, b), r
	}
	// With lex 0-escaping but without SIMD, counting inside the range
	// still uses the baseline table lookups, so the two patterns compose
	// independently.
	if lex && !simd && !m.opts.ExactRanges {
		andCount = func(dst, a, b *bitvec.Vector, r bitvec.OneRange) (int, bitvec.OneRange) {
			return bitvec.AndCountRangeTable(dst, a, b, r), r
		}
	}

	prefix := make([]dataset.Item, 0, 32)
	emit := func(items []dataset.Item, support int) {
		if ord != nil {
			c.Collect(ord.Restore(items), support)
		} else {
			c.Collect(items, support)
		}
	}

	var rec func(class []node)
	rec = func(class []node) {
		for i, nd := range class {
			prefix = append(prefix, nd.item)
			emit(prefix, nd.support)
			var next []node
			for _, other := range class[i+1:] {
				r := nd.rng.Intersect(other.rng)
				nv := bitvec.New(n)
				var sup int
				if r.Empty() {
					sup = 0
				} else {
					sup, r = andCount(nv, nd.vec, other.vec, r)
				}
				if sup >= minSupport {
					next = append(next, node{item: other.item, vec: nv, rng: r, support: sup})
				}
			}
			if len(next) > 0 {
				rec(next)
			}
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(roots)
	return nil
}
