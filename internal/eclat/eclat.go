// Package eclat implements the Eclat kernel studied in paper §4.2: a
// depth-first miner over a vertical, dense bit-matrix database. Columns
// initially represent items' occurrences over transactions; the AND of two
// columns is the occurrence vector of the union of their itemsets, and
// counting ones computes support. 98% of the original code's time is spent
// in this AND + count loop, so the applicable patterns (Table 4) are
//
//	P1 Lex  — lexicographic ordering clusters the 1s of frequent items at
//	          the start of the vectors and enables 0-escaping (skipping
//	          all-zero head/tail words via conservative 1-ranges);
//	P8 SIMD — replaces the baseline per-byte table-lookup popcount (an
//	          indirect load that defeats vectorization) with word-parallel
//	          computational popcount, fused with the AND.
package eclat

import (
	"fpm/internal/bitvec"
	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/lexorder"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/trace"
)

// Options selects the tuning patterns applied by the miner. Patterns
// outside mine.Applicable(mine.Eclat) are ignored.
type Options struct {
	Patterns mine.PatternSet
	// ExactRanges switches 0-escaping from the paper's conservative
	// intersected ranges to exact range recomputation after every AND
	// (ablation E9.1). Only meaningful when Patterns has Lex.
	ExactRanges bool
	// Metrics, when non-nil, receives run-time counters: nodes expanded
	// (class members extended), support countings (AND+count operations),
	// itemsets emitted and candidate prunes. Nil disables recording at the
	// cost of one nil-check per counter site.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives coarse kernel spans: one span per
	// first-level subtree, on sequential runs only (under the scheduler the
	// worker task spans own the timeline). The track is cached on the Miner
	// and reused across Mine calls, so a tracing Miner must not run
	// concurrent Mines.
	Trace *trace.Recorder
	// Cancel, when non-nil, is polled at every class-recursion node: once
	// it trips, the recursion unwinds and Mine returns Cancel.Err(). Nil
	// disables the check at the cost of one nil test per node.
	Cancel *cancel.Flag
}

// Miner is an Eclat frequent itemset miner.
type Miner struct {
	opts Options
	tk   *trace.Track
}

// track lazily creates the miner's kernel-span track.
func (m *Miner) track() *trace.Track {
	if m.opts.Trace == nil {
		return nil
	}
	if m.tk == nil {
		m.tk = m.opts.Trace.NewTrack(m.Name())
	}
	return m.tk
}

// New returns an Eclat miner with the given options.
func New(opts Options) *Miner { return &Miner{opts: opts} }

// Name implements mine.Miner.
func (m *Miner) Name() string { return "eclat(" + m.opts.Patterns.String() + ")" }

// node is one element of the DFS stack's current equivalence class.
type node struct {
	item    dataset.Item
	vec     *bitvec.Vector
	rng     bitvec.OneRange
	support int
}

// Mine implements mine.Miner.
func (m *Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}
	return m.mineClasses(db, minSupport, c, nil)
}

// MineSplit implements mine.Splitter. The result set equals Mine's, but
// the search is decomposed for stealing at two granularities: the first
// level projects the database per frequent item — so each subtree's bit
// matrix spans only the transactions containing its item, keeping the
// vectors short and dense — and below that, each equivalence class
// produced by extension may be offered to the scheduler, weighted by the
// summed supports of its members. That sum is not a different unit from
// the horizontal kernels': support(prefix ∪ {e}) is the number of
// occurrences of e in the transactions containing the prefix, so the class
// weight is the item-occurrence count of the class's (frequent) items in
// the subtree's conceptual projected database — the same frequent-items
// occurrence measure mine.SubtreeWeight reports for LCM's conditional
// databases and dataset.ProjectedWeight approximates for the first-level
// driver, so one shared spawn cutoff gates comparable work across kernels
// (modulo LCM's RmDupTrans, which shrinks its count by merging duplicate
// transactions). A stolen class carries only freshly ANDed vectors and a
// prefix copy, so it shares no mutable state with the spawning recursion.
func (m *Miner) MineSplit(db *dataset.DB, minSupport int, c mine.Collector, sp mine.Spawner) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}
	if sp == nil {
		return m.mineClasses(db, minSupport, c, nil)
	}

	freq := db.Frequencies()
	met := m.opts.Metrics.NewLocal()
	defer m.opts.Metrics.Flush(met)
	single := make([]dataset.Item, 1)
	for e := dataset.Item(0); int(e) < db.NumItems; e++ {
		met.Support(1)
		if freq[e] < minSupport {
			if freq[e] > 0 {
				met.Prune()
			}
			continue
		}
		if m.opts.Cancel.Cancelled() || sp.Cancelled() {
			return m.opts.Cancel.Err()
		}
		single[0] = e
		met.Emit()
		c.Collect(single, freq[e])
		proj := db.Project(e)
		if proj.Len() == 0 {
			continue
		}
		branch := e
		run := func(tc mine.Collector, tsp mine.Spawner) error {
			return m.mineProjected(proj, minSupport, tc, tsp, branch)
		}
		w := proj.Weight()
		if sp.WouldSteal(w) && sp.Offer(w, run) {
			continue
		}
		if err := run(c, sp); err != nil {
			return err
		}
	}
	return m.opts.Cancel.Err()
}

// extendCollector appends the first-level branch item to every itemset
// mined from its projected database. Projection keeps only items below
// the branch item, so ascending emission order is preserved.
type extendCollector struct {
	inner  mine.Collector
	branch dataset.Item
	buf    []dataset.Item
}

func (x *extendCollector) Collect(items []dataset.Item, support int) {
	x.buf = append(append(x.buf[:0], items...), x.branch)
	x.inner.Collect(x.buf, support)
}

// mineProjected mines one first-level projected database, extending every
// result with the branch item. The extension is part of the recursion
// context — classes stolen from within this subtree re-apply it on their
// executing worker (see run.wrap).
func (m *Miner) mineProjected(db *dataset.DB, minSupport int, c mine.Collector, sp mine.Spawner, branch dataset.Item) error {
	return m.mineWith(db, minSupport, c, sp, branch, true)
}

// mineClasses builds the vertical bit matrix for db and runs the
// depth-first class recursion, offering subtrees to sp when non-nil.
func (m *Miner) mineClasses(db *dataset.DB, minSupport int, c mine.Collector, sp mine.Spawner) error {
	return m.mineWith(db, minSupport, c, sp, 0, false)
}

func (m *Miner) mineWith(db *dataset.DB, minSupport int, c mine.Collector, sp mine.Spawner, branch dataset.Item, hasBranch bool) error {

	lex := m.opts.Patterns.Has(mine.Lex)
	simd := m.opts.Patterns.Has(mine.SIMD)

	work := db
	var ord *lexorder.Ordering
	if lex {
		work, ord = lexorder.Apply(db)
	}

	n := work.Len()
	// Build the vertical bit matrix for frequent items only.
	freq := work.Frequencies()
	var roots []node
	vecs := make(map[dataset.Item]*bitvec.Vector)
	for it := dataset.Item(0); int(it) < work.NumItems; it++ {
		if freq[it] >= minSupport {
			vecs[it] = bitvec.New(n)
		}
	}
	for ti, t := range work.Tx {
		for _, it := range t {
			if v, ok := vecs[it]; ok {
				v.Set(ti)
			}
		}
	}
	for it := dataset.Item(0); int(it) < work.NumItems; it++ {
		v, ok := vecs[it]
		if !ok {
			continue
		}
		r := bitvec.OneRange{Lo: 0, Hi: v.Words()}
		if lex {
			// "The ranges are initialized by computing the first and last
			// 1 in each item bit-vector" (§4.2).
			r = v.Range()
		}
		roots = append(roots, node{item: it, vec: v, rng: r, support: freq[it]})
	}

	andCount := func(dst, a, b *bitvec.Vector, r bitvec.OneRange) (int, bitvec.OneRange) {
		if lex {
			if m.opts.ExactRanges {
				return bitvec.AndCountRangeExact(dst, a, b, r)
			}
			return bitvec.AndCountRange(dst, a, b, r), r
		}
		if simd {
			return bitvec.AndCount(dst, a, b), r
		}
		return bitvec.AndCountTable(dst, a, b), r
	}
	// With lex 0-escaping but without SIMD, counting inside the range
	// still uses the baseline table lookups, so the two patterns compose
	// independently.
	if lex && !simd && !m.opts.ExactRanges {
		andCount = func(dst, a, b *bitvec.Vector, r bitvec.OneRange) (int, bitvec.OneRange) {
			return bitvec.AndCountRangeTable(dst, a, b, r), r
		}
	}

	r := &run{n: n, minSupport: minSupport, andCount: andCount, ord: ord, sp: sp, branch: branch, hasBranch: hasBranch,
		cf: m.opts.Cancel, rec: m.opts.Metrics, met: m.opts.Metrics.NewLocal()}
	if sp == nil {
		r.tk = m.track()
	}
	// The root supports were just counted from the horizontal scan, one per
	// alphabet item.
	r.met.Support(work.NumItems)
	r.mine(roots, make([]dataset.Item, 0, 32), r.wrap(c))
	m.opts.Metrics.Flush(r.met)
	return m.opts.Cancel.Err()
}

// run carries the read-only mining context; it is shared by value across
// stolen tasks (only sp differs per worker), so recursion state lives in
// the arguments of mine.
type run struct {
	n          int
	minSupport int
	andCount   func(dst, a, b *bitvec.Vector, r bitvec.OneRange) (int, bitvec.OneRange)
	ord        *lexorder.Ordering
	sp         mine.Spawner
	branch     dataset.Item // first-level branch item, appended to results
	hasBranch  bool
	cf         *cancel.Flag
	rec        *metrics.Recorder
	met        *metrics.Local // owned by this run's goroutine; stolen tasks get their own
	tk         *trace.Track   // set on sequential runs only; stolen tasks never trace
}

// wrap applies the branch extension to a raw collector. Each call builds a
// fresh extendCollector (own buffer), so tasks on different workers never
// share emission state.
func (r *run) wrap(c mine.Collector) mine.Collector {
	if !r.hasBranch {
		return c
	}
	return &extendCollector{inner: c, branch: r.branch}
}

func (r *run) emit(c mine.Collector, items []dataset.Item, support int) {
	if r.ord != nil {
		c.Collect(r.ord.Restore(items), support)
	} else {
		c.Collect(items, support)
	}
}

// aborted reports whether the class recursion should unwind (run cancel
// flag tripped or the scheduler aborted).
func (r *run) aborted() bool {
	return r.cf.Cancelled() || (r.sp != nil && r.sp.Cancelled())
}

// mine enumerates the subtree of one equivalence class. prefix is owned by
// the caller up to its current length; appends may reallocate freely.
func (r *run) mine(class []node, prefix []dataset.Item, c mine.Collector) {
	if r.aborted() {
		return
	}
	root := len(prefix) == 0
	for i, nd := range class {
		var ts int64
		if root && r.tk != nil {
			ts = r.tk.Begin()
		}
		r.met.Node()
		prefix = append(prefix, nd.item)
		r.met.Emit()
		r.emit(c, prefix, nd.support)
		var next []node
		weight := 0
		for _, other := range class[i+1:] {
			rng := nd.rng.Intersect(other.rng)
			nv := bitvec.New(r.n)
			var sup int
			if rng.Empty() {
				// 0-escaping skipped the AND entirely: a prune without a
				// support counting.
				sup = 0
			} else {
				r.met.Support(1)
				sup, rng = r.andCount(nv, nd.vec, other.vec, rng)
			}
			if sup < r.minSupport {
				r.met.Prune()
			}
			if sup >= r.minSupport {
				next = append(next, node{item: other.item, vec: nv, rng: rng, support: sup})
				// Summed supports = occurrences of the surviving items in
				// the child's projected database: the occurrence unit every
				// spawn cutoff in this codebase is expressed in (see the
				// MineSplit doc comment).
				weight += sup
			}
		}
		if len(next) > 0 {
			r.descend(next, weight, prefix, c)
		}
		prefix = prefix[:len(prefix)-1]
		if root && r.tk != nil {
			r.tk.End(ts, "subtree", trace.CatKernel, int64(nd.item))
		}
	}
}

// descend recurses into the class sequentially unless the scheduler
// accepts it as a stealable task. The class slice and its vectors are
// fresh allocations from this extension step, so handing them to another
// worker is safe; only the prefix needs copying.
func (r *run) descend(next []node, weight int, prefix []dataset.Item, c mine.Collector) {
	if r.sp != nil && r.sp.WouldSteal(weight) {
		pcopy := append([]dataset.Item(nil), prefix...)
		if r.sp.Offer(weight, func(tc mine.Collector, sp mine.Spawner) error {
			nr := *r
			nr.sp = sp
			// A stolen class runs on another worker: it must not share the
			// spawning recursion's counter block.
			nr.met = nr.rec.NewLocal()
			nr.mine(next, pcopy, nr.wrap(tc))
			nr.rec.Flush(nr.met)
			return nil
		}) {
			return
		}
	}
	r.mine(next, prefix, c)
}
