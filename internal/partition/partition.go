// Package partition mines frequent itemsets from FIMI files that do not
// fit in memory, using the two-pass divide-and-conquer of Savasere,
// Omiecinski & Navathe (SON) as cast onto secondary storage by Grahne &
// Zhu ("Mining Frequent Itemsets from Secondary Memory"): pass 1 streams
// the file in transaction chunks sized to a caller-supplied byte budget
// and mines each chunk — with any in-memory kernel, through the
// work-stealing pool of internal/parallel — for its locally-frequent
// itemsets at a support threshold scaled to the chunk's share of the
// database; the union of those local answers is a candidate superset of
// the global answer (an itemset below the scaled threshold in every chunk
// is below minSupport globally). Pass 2 re-streams the file and counts
// every candidate's exact global support with a subset walk over a
// candidate trie, then filters to the true frequent set. The result is
// exactly the in-memory answer — the differential tests assert identity
// against every kernel — while the resident transaction data never
// exceeds one chunk.
//
// In the source paper's vocabulary this is pattern P6 (tiling) applied at
// the coarsest grain: the disk-resident database is tiled into
// memory-budget-sized blocks, each block is mined while it is hot, and a
// second sweep reconciles the per-tile answers globally, exactly as the
// cache-level tiling of LCM's occurrence deliver reconciles per-tile
// counters.
package partition

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/failpoint"
	"fpm/internal/fimi"
	"fpm/internal/lexorder"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/parallel"
	"fpm/internal/trace"
)

// chunkDivisor is the fraction of the memory budget given to the resident
// chunk itself; the remainder is headroom for the mining kernel's working
// set (lexicographic clone, projected databases, occurrence lists —
// BenchmarkPartitionedVsInMemory measures LCM's full working set at ~6×
// the resident transaction bytes) and the candidate trie, so the whole
// run stays within the budget the caller configured (the out-of-core
// benchmark asserts peak heap growth < 2× budget).
const chunkDivisor = 8

// Config parameterises one out-of-core run.
type Config struct {
	// MemBudget is the target resident-set bound in bytes for transaction
	// data plus mining working set. Must be positive. The chunk itself is
	// capped at MemBudget/8 (see chunkDivisor).
	MemBudget int64
	// Workers is the mining/counting parallelism: 1 mines each chunk
	// sequentially, other values run the work-stealing pool per chunk
	// (<= 0 means GOMAXPROCS). Chunks are processed one at a time either
	// way — concurrency never holds more than one chunk resident.
	Workers int
	// Cutoff is the work-stealing task-spawn cutoff passed through to the
	// pool; <= 0 selects the pool's default.
	Cutoff int
	// Metrics, when non-nil, receives the two-pass counters (chunks
	// mined, candidates generated/surviving, bytes streamed, pass times)
	// plus the scheduler counters of every per-chunk pool run. Nil
	// disables recording.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives the run's span timeline: a "partition"
	// phase track (sizing scan, one span per pass-1 chunk carrying its new
	// candidate count, the pass-2 recount) plus the per-worker scheduler
	// tracks when Workers != 1. Nil disables tracing.
	Trace *trace.Recorder
	// Cancel, when non-nil, aborts the run cooperatively: it is polled
	// before every pass-1 and pass-2 chunk, and drivers that inject the
	// same flag into the kernel factory (and the pool, via Workers) get
	// node-granular latency inside a chunk as well. A cancelled Mine
	// returns Cancel.Err(); any checkpoint sidecar is left in place, so the
	// run can be resumed.
	Cancel *cancel.Flag
	// Checkpoint, when non-empty, is the sidecar path where progress is
	// persisted after every chunk (atomic temp-file + rename; see
	// checkpoint.go). Writes are best-effort: a failed write is counted in
	// metrics and the mine continues with the previous sidecar intact. The
	// sidecar is removed when Mine completes successfully.
	Checkpoint string
	// Resume, when true (and Checkpoint is set), loads the sidecar and
	// skips the work it records, provided its input and configuration
	// identity match this run; a missing, corrupt or mismatched sidecar
	// silently falls back to a fresh run (the mine is then merely slower,
	// never wrong).
	Resume bool
	// ChunkLex, when true, applies pattern P1 (lexicographic reordering)
	// to each pass-1 chunk before mining it: items are relabeled by
	// chunk-local frequency, transactions re-sorted, and the chunk
	// permuted lexicographically, in place in the chunk arena. Mined
	// candidates are mapped back to the global alphabet before entering
	// the trie, so the result is unchanged. Whether it pays depends on
	// the kernel and skew — see EXPERIMENTS.md ("Layout patterns on the
	// production paths") for measurements.
	ChunkLex bool
}

// ErrBadBudget is returned when Config.MemBudget is not positive.
var ErrBadBudget = errors.New("partition: memory budget must be positive")

// ErrBudgetTooSmall is returned (wrapped, with the numbers) when the
// budget yields chunks so small that SON's scaled support threshold
// collapses to 1 and mining a chunk would enumerate every subset of its
// transactions — the exponential failure mode described in DESIGN.md §9.
// Erroring out beats silently grinding through 2^len candidates per
// transaction; the fix is a larger MemBudget (chunks need more than
// totalTx/minSupport transactions).
var ErrBudgetTooSmall = errors.New("partition: memory budget too small for this support level")

// maxChunkEnum caps the estimated support-1 enumeration size (sum of
// 2^len over the chunk's transactions) a threshold-1 chunk may incur
// before Mine refuses with ErrBudgetTooSmall. Short-transaction chunks
// stay exact and cheap below the cap.
const maxChunkEnum = 1 << 21

// enumBound estimates how many itemsets support-1 mining of chunk can
// emit: every subset of every transaction.
func enumBound(chunk *dataset.DB) float64 {
	var est float64
	for _, tx := range chunk.Tx {
		est += float64(uint64(1) << uint(min(len(tx), 63)))
	}
	return est
}

// Mine runs the two-pass out-of-core algorithm over the FIMI file at
// path, mining chunks with sequential miners from factory, and reports
// every itemset with exact global support >= minSupport to c in canonical
// order (by size, then items — mine.LessItems), each exactly once. The
// file must be seekable (it is streamed three times: a parse-free sizing
// scan, the chunk-mining pass and the recount pass).
func Mine(path string, factory func() mine.Miner, minSupport int, cfg Config, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if cfg.MemBudget <= 0 {
		return ErrBadBudget
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := cfg.Metrics
	rec.SetMemBudget(cfg.MemBudget)
	chunkBudget := cfg.MemBudget / chunkDivisor
	if chunkBudget < 1 {
		chunkBudget = 1
	}

	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		// The telemetry progress endpoint derives completion fractions
		// from bytes streamed vs. file size.
		rec.SetInputBytes(fi.Size())
	}

	// Checkpoint identity and resume candidate. The kernel signature comes
	// from the sequential factory (never the pool wrapper), so a run may
	// resume with a different worker count — parallelism changes neither
	// the result nor the chunk boundaries.
	sig := factory().Name()
	var inSize int64
	var inHash uint64
	if cfg.Checkpoint != "" {
		if inSize, inHash, err = inputIdentity(f); err != nil {
			return err
		}
		if err := rewind(f); err != nil {
			return err
		}
	}
	var resumed *Checkpoint
	if cfg.Resume && cfg.Checkpoint != "" {
		if ck, lerr := LoadCheckpoint(cfg.Checkpoint); lerr == nil &&
			ck.InputSize == inSize && ck.InputHash == inHash &&
			ck.Kernel == sig && ck.MinSupport == minSupport && ck.MemBudget == cfg.MemBudget {
			resumed = ck
		}
	}
	saveCkpt := func(ck Checkpoint) {
		if cfg.Checkpoint == "" {
			return
		}
		ck.InputSize, ck.InputHash = inSize, inHash
		ck.Kernel, ck.MinSupport, ck.MemBudget = sig, minSupport, cfg.MemBudget
		if err := SaveCheckpoint(cfg.Checkpoint, &ck); err != nil {
			rec.CheckpointFailed()
		} else {
			rec.CheckpointWritten()
		}
	}

	// All partition-phase spans land on one track; a nil cfg.Trace yields a
	// nil track and every span call below degrades to a nil-check.
	ptk := cfg.Trace.NewTrack("partition")

	// Pass 1a — parse-free sizing scan: SON's per-chunk support scaling
	// needs the total transaction count before the first chunk is mined.
	// It also cross-checks a resumed checkpoint: a transaction count drift
	// means the input changed despite the size/hash match, so the
	// checkpoint is discarded.
	t0 := time.Now()
	ts := ptk.Begin()
	cr := &countingReader{r: f}
	totalTx, err := fimi.CountTransactions(cr)
	ptk.End(ts, "sizing scan", trace.CatPhase, cr.n)
	rec.AddStreamedBytes(1, cr.n)
	if err != nil {
		return err
	}
	if totalTx == 0 {
		rec.AddPassTime(1, time.Since(t0))
		removeCheckpoint(cfg.Checkpoint)
		return nil
	}
	if resumed != nil && resumed.TotalTx != totalTx {
		resumed = nil
	}

	// Pass 1b — chunk mining into the candidate union. One chunk is
	// resident at a time; the pool (or the sequential miner) is reused
	// across chunks. A resumed checkpoint restores the trie and skips the
	// transactions of every completed chunk; ReadChunksFrom reproduces the
	// remaining chunk boundaries exactly.
	var miner mine.Miner
	if workers == 1 {
		miner = factory()
	} else {
		popts := []parallel.Option{parallel.WithMetrics(rec)}
		if cfg.Cutoff > 0 {
			popts = append(popts, parallel.WithCutoff(cfg.Cutoff))
		}
		if cfg.Trace != nil {
			popts = append(popts, parallel.WithTrace(cfg.Trace))
		}
		if cfg.Cancel != nil {
			popts = append(popts, parallel.WithCancel(cfg.Cancel))
		}
		miner = parallel.New(workers, factory, popts...)
	}
	tr := newTrie()
	var sl *sealed
	skipTx, chunkIdx, txDone := 0, 0, 0
	pass1Done := false
	if resumed != nil {
		chunkIdx = resumed.ChunksDone
		if resumed.Phase >= 2 {
			// Pass 1 finished before the checkpoint: the sealed trie is
			// used directly, read-only, for the rest of the run.
			pass1Done = true
			sl = resumed.trie
		} else {
			// Pass 1 must keep inserting: rebuild the mutable form.
			tr = resumed.trie.unseal()
			skipTx, txDone = resumed.TxConsumed, resumed.TxConsumed
		}
		for i := 0; i < resumed.ChunksDone; i++ {
			rec.ChunkSkipped()
		}
	}
	tc := &trieCollector{tr: tr}
	if !pass1Done {
		if err := rewind(f); err != nil {
			return err
		}
		cr = &countingReader{r: f}
		err = fimi.ReadChunksFrom(cr, chunkBudget, skipTx, func(chunk *dataset.DB) error {
			if err := cfg.Cancel.Err(); err != nil {
				return err
			}
			localSup := scaledSupport(minSupport, chunk.Len(), totalTx)
			// Threshold collapse: at localSup 1 (and a real global support —
			// minSupport 1 means the caller asked for full enumeration) the
			// chunk's locally-frequent set is all subsets of its transactions.
			// Refuse when that would explode rather than grind exponentially.
			if localSup == 1 && minSupport > 1 {
				if est := enumBound(chunk); est > maxChunkEnum {
					return fmt.Errorf("%w: a %d-transaction chunk scales the local support floor to 1, "+
						"and support-1 mining would enumerate ~%.3g itemsets there; "+
						"chunks need more than totalTx/minSupport = %d transactions — raise MemBudget",
						ErrBudgetTooSmall, chunk.Len(), est, totalTx/minSupport)
				}
			}
			tc.added, tc.ord = 0, nil
			if cfg.ChunkLex {
				// P1 on the chunk grain: reorder the resident chunk by its
				// own frequency profile before the kernel sees it. The
				// collector maps every mined itemset back to the global
				// alphabet, so the candidate union is unaffected.
				tc.ord = lexorder.ApplyInPlace(chunk)
			}
			cts := ptk.Begin()
			if err := mineChunk(miner, chunk, localSup, tc); err != nil {
				return err
			}
			ptk.End(cts, "chunk "+strconv.Itoa(chunkIdx), trace.CatChunk, int64(tc.added))
			chunkIdx++
			txDone += chunk.Len()
			rec.ChunkMined()
			rec.AddCandidates(uint64(tc.added))
			if cfg.Checkpoint != "" {
				saveCkpt(Checkpoint{TotalTx: totalTx, Phase: 1,
					ChunksDone: chunkIdx, TxConsumed: txDone, trie: tr.Seal()})
			}
			return nil
		})
		rec.AddStreamedBytes(1, cr.n)
		rec.AddPassTime(1, time.Since(t0))
		if err != nil {
			return err
		}
		// Pass 1 is over: no more inserts. Flatten the candidate union into
		// the sealed arena form (P3+P4) that pass 2's subset counting and
		// the remaining checkpoints run against, and drop the mutable trie.
		sts := ptk.Begin()
		sl = tr.Seal()
		tr, tc.tr = nil, nil
		ptk.End(sts, "seal trie", trace.CatPhase, int64(sl.Candidates()))
	}
	if sl.Candidates() == 0 {
		removeCheckpoint(cfg.Checkpoint)
		return nil
	}

	// Pass 2 — exact global recount: re-stream the file and walk every
	// transaction through the (now read-only) trie. Transactions of a
	// chunk are striped across workers, each counting into its own flat
	// array; arrays are merged once after the stream ends. Checkpoints
	// persist the merged partial counts per chunk; a phase-2 resume
	// restores them into worker 0's array and skips the counted
	// transactions.
	t1 := time.Now()
	p2ts := ptk.Begin()
	counts := make([][]uint32, workers)
	for w := range counts {
		counts[w] = make([]uint32, sl.Candidates())
	}
	p2skip, p2done := 0, 0
	if resumed != nil && resumed.Phase >= 2 {
		copy(counts[0], resumed.counts)
		p2skip, p2done = resumed.TxConsumed, resumed.TxConsumed
	}
	if err := rewind(f); err != nil {
		return err
	}
	cr = &countingReader{r: f}
	err = fimi.ReadChunksFrom(cr, chunkBudget, p2skip, func(chunk *dataset.DB) error {
		if err := cfg.Cancel.Err(); err != nil {
			return err
		}
		if err := failpoint.Hit(failpoint.PartitionRecountChunk); err != nil {
			return err
		}
		if workers == 1 || chunk.Len() < 2*workers {
			for _, tx := range chunk.Tx {
				sl.Count(tx, counts[0])
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < chunk.Len(); i += workers {
						sl.Count(chunk.Tx[i], counts[w])
					}
				}(w)
			}
			wg.Wait()
		}
		p2done += chunk.Len()
		if cfg.Checkpoint != "" {
			saveCkpt(Checkpoint{TotalTx: totalTx, Phase: 2, ChunksDone: chunkIdx,
				TxConsumed: p2done, trie: sl, counts: mergeCounts(counts)})
		}
		return nil
	})
	rec.AddStreamedBytes(2, cr.n)
	if err != nil {
		rec.AddPassTime(2, time.Since(t1))
		return err
	}
	total := counts[0]
	for _, part := range counts[1:] {
		for i, v := range part {
			total[i] += v
		}
	}

	sets := sl.Emit(total, minSupport, nil)
	sort.Slice(sets, func(a, b int) bool { return mine.LessItems(sets[a].Items, sets[b].Items) })
	rec.AddSurvivors(uint64(len(sets)))
	rec.AddPassTime(2, time.Since(t1))
	ptk.End(p2ts, "pass 2 recount", trace.CatPhase, cr.n)
	removeCheckpoint(cfg.Checkpoint)
	for _, s := range sets {
		c.Collect(s.Items, s.Support)
	}
	return nil
}

// mineChunk runs one pass-1 chunk mine with panic containment: a kernel
// panic (or the partition.chunk.mine failpoint standing in for one)
// surfaces as this chunk's error and aborts the run cleanly — the
// checkpoint written after the previous chunk stays valid, so the run is
// resumable past the failure.
func mineChunk(m mine.Miner, chunk *dataset.DB, minSupport int, c mine.Collector) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("partition: chunk mine panicked: %v", r)
		}
	}()
	if err := failpoint.Hit(failpoint.PartitionChunkMine); err != nil {
		return err
	}
	return m.Mine(chunk, minSupport, c)
}

// mergeCounts sums the per-worker partial count arrays into a fresh slice
// for a pass-2 checkpoint, leaving the worker arrays untouched.
func mergeCounts(counts [][]uint32) []uint32 {
	total := make([]uint32, len(counts[0]))
	copy(total, counts[0])
	for _, part := range counts[1:] {
		for i, v := range part {
			total[i] += v
		}
	}
	return total
}

// scaledSupport is the SON local threshold for a chunk of chunkTx
// transactions out of totalTx: ceil(minSupport * chunkTx / totalTx),
// floored at 1. Soundness: if an itemset's local support is below this in
// every chunk i, it is strictly below minSupport*n_i/n there, and summing
// over chunks bounds its global support strictly below minSupport — so no
// globally-frequent itemset can be missed.
func scaledSupport(minSupport, chunkTx, totalTx int) int {
	s := (int64(minSupport)*int64(chunkTx) + int64(totalTx) - 1) / int64(totalTx)
	if s < 1 {
		return 1
	}
	return int(s)
}

// trieCollector feeds locally-frequent itemsets into the candidate union,
// canonicalising (sorting a scratch copy) the rare kernels that emit in
// non-ascending order. When the chunk was P1-reordered, every itemset is
// first translated from the chunk-local rank alphabet back to the global
// one. Local supports are discarded — only membership matters; pass 2
// recounts exactly.
type trieCollector struct {
	tr    *trie
	ord   *lexorder.Ordering // chunk-local rank order, nil when ChunkLex is off
	added int                // new candidates inserted by the current chunk
	buf   []dataset.Item
}

// Collect implements mine.Collector. It is only ever invoked from one
// goroutine at a time: sequential miners run on the caller's goroutine,
// and the parallel miner merges worker shards on the caller's goroutine
// after mining.
func (tc *trieCollector) Collect(items []dataset.Item, support int) {
	if tc.ord != nil {
		tc.buf = tc.buf[:0]
		for _, r := range items {
			tc.buf = append(tc.buf, tc.ord.Orig[r])
		}
		slices.Sort(tc.buf)
		items = tc.buf
	} else if !slices.IsSorted(items) {
		tc.buf = append(tc.buf[:0], items...)
		slices.Sort(tc.buf)
		items = tc.buf
	}
	if tc.tr.Add(items) {
		tc.added++
	}
}

// rewind seeks the file back to the start for the next pass.
func rewind(f *os.File) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	return nil
}

// countingReader counts the bytes drawn from the underlying stream, for
// the bytes-streamed-per-pass counters.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
