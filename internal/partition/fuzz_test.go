package partition

// FuzzCheckpointDecode hardens the resume path against arbitrary sidecar
// bytes: whatever a crashed disk, a partial download or an adversary left
// behind, DecodeCheckpoint must either return a checkpoint whose re-encode
// round-trips, or a clean error wrapping ErrCheckpointCorrupt — never
// panic, never hang, never hand the mining code a trie that violates its
// structural invariants. Seeds cover both phases' valid encodings plus
// truncations and bit flips; more live in testdata/fuzz.

import (
	"bytes"
	"errors"
	"testing"

	"fpm/internal/dataset"
)

func FuzzCheckpointDecode(f *testing.F) {
	for _, phase := range []int{1, 2} {
		valid := testCheckpoint(phase).encode()
		f.Add(valid)
		f.Add(valid[:len(valid)-4])     // truncated payload
		f.Add(valid[:len(ckptMagic)+1]) // header only
		flip := append([]byte(nil), valid...)
		flip[len(flip)/2] ^= 0x10
		f.Add(flip) // bit flip mid-payload
	}
	// A valid sidecar whose nodes are NOT in DFS prefix order: sidecars
	// written before the sealed-arena encoder used the mutable insertion
	// order, and the decoder accepts any valid numbering — the re-encode
	// fixed point must hold for those too.
	nonPreorder := &Checkpoint{
		InputSize: 1, InputHash: 2, Kernel: "k", MinSupport: 2,
		MemBudget: 64, TotalTx: 3, Phase: 1, ChunksDone: 1, TxConsumed: 1,
		trie: &sealed{
			start: []int32{0, 2, 2, 3, 3},
			keys:  []dataset.Item{1, 3, 2},
			child: []int32{2, 1, 3},
			cand:  []int32{-1, 1, 0, 2},
			cands: 3,
		},
	}
	f.Add(nonPreorder.encode())
	f.Add([]byte(ckptMagic))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCheckpointCorrupt", err)
			}
			return
		}
		// Accepted input: the checkpoint must survive a re-encode/decode
		// round trip byte-identically — the structural validation admitted
		// a canonical encoding, not merely a parseable one.
		re := ck.encode()
		ck2, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("accepted checkpoint fails to re-decode: %v", err)
		}
		if !bytes.Equal(re, ck2.encode()) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
