package partition

import (
	"math/rand"
	"sort"
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

func TestTrieAddDedupAndEmit(t *testing.T) {
	tr := newTrie()
	sets := [][]dataset.Item{{1}, {2}, {1, 2}, {1, 2, 5}, {2, 5}}
	for _, s := range sets {
		if !tr.Add(s) {
			t.Fatalf("Add(%v) reported duplicate on first insert", s)
		}
	}
	for _, s := range sets {
		if tr.Add(s) {
			t.Fatalf("Add(%v) reported new on re-insert", s)
		}
	}
	// Prefixes of inserted sets are not themselves candidates unless
	// inserted: {1,2} was inserted, but inserting {1,2,5} alone must not
	// have materialised {1} or {1,2} as candidates — checked via count.
	if tr.Candidates() != len(sets) {
		t.Fatalf("Candidates = %d, want %d", tr.Candidates(), len(sets))
	}

	counts := make([]uint32, tr.Candidates())
	tr.Count(dataset.Transaction{1, 2, 5}, counts) // contains all but... {2,5} yes, all 5
	tr.Count(dataset.Transaction{2, 5}, counts)    // contains {2}, {2,5}
	tr.Count(dataset.Transaction{1}, counts)       // contains {1}
	tr.Count(dataset.Transaction{}, counts)        // contains nothing

	got := map[string]int{}
	for _, s := range tr.Emit(counts, 1, nil) {
		got[mine.Key(s.Items)] = s.Support
	}
	want := map[string]int{"1": 2, "2": 2, "1,2": 1, "1,2,5": 1, "2,5": 2}
	if len(got) != len(want) {
		t.Fatalf("Emit = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("support[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}

	// Thresholding drops the singletons' subsets below support 2.
	if kept := tr.Emit(counts, 2, nil); len(kept) != 3 {
		t.Fatalf("Emit(minsup=2) kept %d sets, want 3: %v", len(kept), kept)
	}
}

// TestTrieCountMatchesBruteForce cross-checks the lockstep subset walk
// against dataset.ContainsAll on randomized candidate sets and
// transactions.
func TestTrieCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tr := newTrie()
		var cands [][]dataset.Item
		seen := map[string]bool{}
		for i := 0; i < 30; i++ {
			l := 1 + rng.Intn(4)
			set := map[dataset.Item]bool{}
			for len(set) < l {
				set[dataset.Item(rng.Intn(12))] = true
			}
			items := make([]dataset.Item, 0, l)
			for it := range set {
				items = append(items, it)
			}
			sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
			if seen[mine.Key(items)] {
				continue
			}
			seen[mine.Key(items)] = true
			if !tr.Add(items) {
				t.Fatalf("trial %d: Add(%v) duplicate but key unseen", trial, items)
			}
			cands = append(cands, items)
		}

		var txs []dataset.Transaction
		for i := 0; i < 40; i++ {
			var tx dataset.Transaction
			for it := dataset.Item(0); it < 12; it++ {
				if rng.Intn(3) == 0 {
					tx = append(tx, it)
				}
			}
			txs = append(txs, tx)
		}

		counts := make([]uint32, tr.Candidates())
		for _, tx := range txs {
			tr.Count(tx, counts)
		}
		emitted := map[string]int{}
		for _, s := range tr.Emit(counts, 0, nil) {
			emitted[mine.Key(s.Items)] = s.Support
		}
		for _, cand := range cands {
			want := 0
			for _, tx := range txs {
				if dataset.ContainsAll(tx, cand) {
					want++
				}
			}
			if emitted[mine.Key(cand)] != want {
				t.Fatalf("trial %d: candidate %v counted %d, brute force %d",
					trial, cand, emitted[mine.Key(cand)], want)
			}
		}
	}
}
