package partition

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

func TestTrieAddDedupAndEmit(t *testing.T) {
	tr := newTrie()
	sets := [][]dataset.Item{{1}, {2}, {1, 2}, {1, 2, 5}, {2, 5}}
	for _, s := range sets {
		if !tr.Add(s) {
			t.Fatalf("Add(%v) reported duplicate on first insert", s)
		}
	}
	for _, s := range sets {
		if tr.Add(s) {
			t.Fatalf("Add(%v) reported new on re-insert", s)
		}
	}
	// Prefixes of inserted sets are not themselves candidates unless
	// inserted: {1,2} was inserted, but inserting {1,2,5} alone must not
	// have materialised {1} or {1,2} as candidates — checked via count.
	if tr.Candidates() != len(sets) {
		t.Fatalf("Candidates = %d, want %d", tr.Candidates(), len(sets))
	}

	counts := make([]uint32, tr.Candidates())
	tr.Count(dataset.Transaction{1, 2, 5}, counts) // contains all but... {2,5} yes, all 5
	tr.Count(dataset.Transaction{2, 5}, counts)    // contains {2}, {2,5}
	tr.Count(dataset.Transaction{1}, counts)       // contains {1}
	tr.Count(dataset.Transaction{}, counts)        // contains nothing

	got := map[string]int{}
	for _, s := range tr.Emit(counts, 1, nil) {
		got[mine.Key(s.Items)] = s.Support
	}
	want := map[string]int{"1": 2, "2": 2, "1,2": 1, "1,2,5": 1, "2,5": 2}
	if len(got) != len(want) {
		t.Fatalf("Emit = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("support[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}

	// Thresholding drops the singletons' subsets below support 2.
	if kept := tr.Emit(counts, 2, nil); len(kept) != 3 {
		t.Fatalf("Emit(minsup=2) kept %d sets, want 3: %v", len(kept), kept)
	}
}

// TestTrieCountMatchesBruteForce cross-checks the lockstep subset walk
// against dataset.ContainsAll on randomized candidate sets and
// transactions.
func TestTrieCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tr := newTrie()
		var cands [][]dataset.Item
		seen := map[string]bool{}
		for i := 0; i < 30; i++ {
			l := 1 + rng.Intn(4)
			set := map[dataset.Item]bool{}
			for len(set) < l {
				set[dataset.Item(rng.Intn(12))] = true
			}
			items := make([]dataset.Item, 0, l)
			for it := range set {
				items = append(items, it)
			}
			sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
			if seen[mine.Key(items)] {
				continue
			}
			seen[mine.Key(items)] = true
			if !tr.Add(items) {
				t.Fatalf("trial %d: Add(%v) duplicate but key unseen", trial, items)
			}
			cands = append(cands, items)
		}

		var txs []dataset.Transaction
		for i := 0; i < 40; i++ {
			var tx dataset.Transaction
			for it := dataset.Item(0); it < 12; it++ {
				if rng.Intn(3) == 0 {
					tx = append(tx, it)
				}
			}
			txs = append(txs, tx)
		}

		counts := make([]uint32, tr.Candidates())
		for _, tx := range txs {
			tr.Count(tx, counts)
		}
		emitted := map[string]int{}
		for _, s := range tr.Emit(counts, 0, nil) {
			emitted[mine.Key(s.Items)] = s.Support
		}
		for _, cand := range cands {
			want := 0
			for _, tx := range txs {
				if dataset.ContainsAll(tx, cand) {
					want++
				}
			}
			if emitted[mine.Key(cand)] != want {
				t.Fatalf("trial %d: candidate %v counted %d, brute force %d",
					trial, cand, emitted[mine.Key(cand)], want)
			}
		}
	}
}

// randomSets generates n random sorted duplicate-free itemsets over a
// vocab-item alphabet. Duplicate sets across draws are allowed — the trie
// must collapse them.
func randomSets(rng *rand.Rand, n, vocab, maxLen int) [][]dataset.Item {
	sets := make([][]dataset.Item, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		seen := make(map[dataset.Item]bool, l)
		s := make([]dataset.Item, 0, l)
		for len(s) < l {
			it := dataset.Item(rng.Intn(vocab))
			if !seen[it] {
				seen[it] = true
				s = append(s, it)
			}
		}
		slices.Sort(s)
		sets = append(sets, s)
	}
	return sets
}

// randomTx generates a random normalized transaction.
func randomTx(rng *rand.Rand, vocab int) dataset.Transaction {
	var tx dataset.Transaction
	for it := dataset.Item(0); int(it) < vocab; it++ {
		if rng.Intn(3) == 0 {
			tx = append(tx, it)
		}
	}
	return tx
}

// TestSealEquivalence is the seal property test: on randomized candidate
// sets, the sealed trie must preserve candidate ids (count arrays line up
// element for element), subset-count semantics, and Emit's canonical
// enumeration order; unseal must round-trip back to a mutable trie with
// the same behaviour and working inserts.
func TestSealEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vocab := 8 + rng.Intn(40)
		tr := newTrie()
		for _, s := range randomSets(rng, 60, vocab, 6) {
			tr.Add(s)
		}
		sl := tr.Seal()
		if sl.Candidates() != tr.Candidates() {
			t.Fatalf("seed %d: sealed candidates %d, mutable %d", seed, sl.Candidates(), tr.Candidates())
		}

		// Count equivalence, element for element: equality of the flat
		// arrays proves candidate ids survived the node renumbering.
		cm := make([]uint32, tr.Candidates())
		cs := make([]uint32, sl.Candidates())
		probes := make([]dataset.Transaction, 50)
		for i := range probes {
			probes[i] = randomTx(rng, vocab)
			tr.Count(probes[i], cm)
			sl.Count(probes[i], cs)
		}
		if !slices.Equal(cm, cs) {
			t.Fatalf("seed %d: counts diverge between mutable and sealed form", seed)
		}

		// Emit equivalence: same itemsets, same supports, same (prefix)
		// order — DFS preorder sealing must not disturb enumeration.
		em := tr.Emit(cm, 1, nil)
		es := sl.Emit(cs, 1, nil)
		if len(em) != len(es) {
			t.Fatalf("seed %d: emit lengths %d vs %d", seed, len(em), len(es))
		}
		for i := range em {
			if em[i].Support != es[i].Support || !slices.Equal(em[i].Items, es[i].Items) {
				t.Fatalf("seed %d: emit diverges at %d: %v/%d vs %v/%d",
					seed, i, em[i].Items, em[i].Support, es[i].Items, es[i].Support)
			}
		}

		// Unseal round-trip: same counting behaviour, and the rebuilt
		// trie accepts further inserts exactly like the original.
		ut := sl.unseal()
		cu := make([]uint32, ut.Candidates())
		for _, tx := range probes {
			ut.Count(tx, cu)
		}
		if !slices.Equal(cm, cu) {
			t.Fatalf("seed %d: unsealed counts diverge", seed)
		}
		for _, s := range randomSets(rng, 10, vocab, 6) {
			want := tr.Add(slices.Clone(s))
			if got := ut.Add(s); got != want {
				t.Fatalf("seed %d: post-unseal Add(%v) = %v, original trie says %v", seed, s, got, want)
			}
		}
	}
}

// TestSealedEmitAgainstMine cross-checks Emit-through-seal on a real mined
// candidate set: sealing the trie of an exact frequent set and emitting at
// the same support must reproduce the kernel's answer.
func TestSealedEmitAgainstMine(t *testing.T) {
	db := randomDB(29, 200, 14)
	const minsup = 8
	var sc mine.SliceCollector
	if err := lcmFactory().Mine(db, minsup, &sc); err != nil {
		t.Fatal(err)
	}
	tr := newTrie()
	for _, s := range sc.Sets {
		tr.Add(s.Items)
	}
	sl := tr.Seal()
	counts := make([]uint32, sl.Candidates())
	for _, tx := range db.Tx {
		sl.Count(tx, counts)
	}
	got := sl.Emit(counts, minsup, nil)
	if len(got) != len(sc.Sets) {
		t.Fatalf("sealed recount kept %d sets, kernel found %d", len(got), len(sc.Sets))
	}
	for _, s := range got {
		want := -1
		for _, ks := range sc.Sets {
			if slices.Equal(ks.Items, s.Items) {
				want = ks.Support
				break
			}
		}
		if want != s.Support {
			t.Fatalf("set %v: sealed support %d, kernel %d", s.Items, s.Support, want)
		}
	}
}

// TestFindChild pins the inlined child search against the obvious spec on
// both sides of the linear/binary cutover.
func TestFindChild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, childSearchLinearMax, childSearchLinearMax + 1, 40} {
		ch := make([]childRef, n)
		prev := dataset.Item(0)
		for i := range ch {
			prev += dataset.Item(1 + rng.Intn(3))
			ch[i] = childRef{item: prev, node: int32(i + 1)}
		}
		for probe := dataset.Item(0); probe <= prev+1; probe++ {
			want := 0
			for want < n && ch[want].item < probe {
				want++
			}
			if got := findChild(ch, probe); got != want {
				t.Fatalf("findChild(%d children, probe %d) = %d, want %d", n, probe, got, want)
			}
		}
	}
}

// TestSealedCountAllocs is the allocation-regression guard for the pass-2
// hot path: the sealed subset walk must not allocate.
func TestSealedCountAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(3))
	tr := newTrie()
	for _, s := range randomSets(rng, 80, 30, 6) {
		tr.Add(s)
	}
	sl := tr.Seal()
	counts := make([]uint32, sl.Candidates())
	txs := make([]dataset.Transaction, 20)
	for i := range txs {
		txs[i] = randomTx(rng, 30)
	}
	if n := testing.AllocsPerRun(50, func() {
		for _, tx := range txs {
			sl.Count(tx, counts)
		}
	}); n != 0 {
		t.Fatalf("sealed Count allocates %.1f times per run, want 0", n)
	}
}
