package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/eclat"
	"fpm/internal/fimi"
	"fpm/internal/lcm"
	"fpm/internal/metrics"
	"fpm/internal/mine"
)

// writeFileRaw writes literal file content (for malformed-input cases).
func writeFileRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// writeTemp stores db as a FIMI file and returns its path.
func writeTemp(t *testing.T, db *dataset.DB) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.dat")
	if err := fimi.WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

// randomDB builds a small random normalized database.
func randomDB(seed int64, n, vocab int) *dataset.DB {
	rng := rand.New(rand.NewSource(seed))
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		var tr dataset.Transaction
		for it := dataset.Item(0); int(it) < vocab; it++ {
			if rng.Intn(4) == 0 {
				tr = append(tr, it)
			}
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	db.Normalize()
	return db
}

func lcmFactory() mine.Miner { return lcm.New(lcm.Options{}) }

func TestMineMatchesInMemory(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := randomDB(seed, 120, 18)
		path := writeTemp(t, db)
		minsup := 6

		want := mine.ResultSet{}
		if err := lcmFactory().Mine(db, minsup, want); err != nil {
			t.Fatal(err)
		}

		for _, budget := range []int64{1 << 20, 4096, 600} {
			for _, workers := range []int{1, 3} {
				got := mine.ResultSet{}
				cfg := Config{MemBudget: budget, Workers: workers}
				if err := Mine(path, lcmFactory, minsup, cfg, got); err != nil {
					t.Fatalf("seed %d budget %d workers %d: %v", seed, budget, workers, err)
				}
				if !got.Equal(want) {
					t.Fatalf("seed %d budget %d workers %d: diverges (%d vs %d):\n%s",
						seed, budget, workers, len(got), len(want), want.Diff(got, 10))
				}
			}
		}
	}
}

// TestMineCanonicalOrder asserts the collector sees results in canonical
// (size, then lexicographic) order — the contract the CLI and the
// byte-identity acceptance check rely on.
func TestMineCanonicalOrder(t *testing.T) {
	db := randomDB(7, 150, 15)
	path := writeTemp(t, db)
	var sc mine.SliceCollector
	if err := Mine(path, lcmFactory, 5, Config{MemBudget: 2048, Workers: 2}, &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Sets) < 10 {
		t.Fatalf("degenerate corpus: only %d sets", len(sc.Sets))
	}
	for i := 1; i < len(sc.Sets); i++ {
		if !mine.LessItems(sc.Sets[i-1].Items, sc.Sets[i].Items) {
			t.Fatalf("emission not canonical at %d: %v !< %v",
				i, sc.Sets[i-1].Items, sc.Sets[i].Items)
		}
	}
}

func TestMineErrors(t *testing.T) {
	db := randomDB(1, 10, 5)
	path := writeTemp(t, db)
	var sc mine.SliceCollector
	if err := Mine(path, lcmFactory, 0, Config{MemBudget: 1 << 20}, &sc); err == nil {
		t.Error("minSupport 0 accepted")
	}
	if err := Mine(path, lcmFactory, 1, Config{MemBudget: 0}, &sc); err != ErrBadBudget {
		t.Errorf("zero budget: err = %v, want ErrBadBudget", err)
	}
	if err := Mine(filepath.Join(t.TempDir(), "missing.dat"), lcmFactory, 1,
		Config{MemBudget: 1 << 20}, &sc); err == nil {
		t.Error("missing file accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.dat")
	if err := writeFileRaw(badPath, "1 2\nnot numbers\n"); err != nil {
		t.Fatal(err)
	}
	if err := Mine(badPath, lcmFactory, 1, Config{MemBudget: 1 << 20}, &sc); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("parse error not surfaced with line: %v", err)
	}
}

// TestMineBudgetTooSmall pins the threshold-collapse guard: a budget
// yielding one-transaction chunks of long transactions must refuse with
// ErrBudgetTooSmall instead of enumerating 2^len subsets per transaction.
func TestMineBudgetTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tx := make([]dataset.Transaction, 80)
	for i := range tx {
		var tr dataset.Transaction
		for it := dataset.Item(0); it < 40; it++ {
			if rng.Intn(5) < 3 {
				tr = append(tr, it) // ~24 items per transaction
			}
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	db.Normalize()
	path := writeTemp(t, db)

	var sc mine.SliceCollector
	err := Mine(path, lcmFactory, 8, Config{MemBudget: 400}, &sc)
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("tiny budget on long transactions: err = %v, want ErrBudgetTooSmall", err)
	}
	if !strings.Contains(err.Error(), "raise MemBudget") {
		t.Errorf("error does not tell the user the fix: %v", err)
	}

	// The same mining is fine once chunks are large enough for the scaled
	// threshold to stay above 1.
	sc.Sets = nil
	if err := Mine(path, lcmFactory, 8, Config{MemBudget: 1 << 20}, &sc); err != nil {
		t.Fatalf("ample budget: %v", err)
	}

	// minSupport 1 is a deliberate full enumeration, not a collapse: the
	// guard must not fire on short transactions.
	tiny := writeTemp(t, dataset.New([]dataset.Transaction{{0, 1, 2}, {1, 2}}))
	sc.Sets = nil
	if err := Mine(tiny, lcmFactory, 1, Config{MemBudget: 1}, &sc); err != nil {
		t.Fatalf("minsup=1 short transactions: %v", err)
	}
}

func TestMineEdgeCases(t *testing.T) {
	// Empty file: no transactions, no results, no error.
	empty := writeTemp(t, dataset.New(nil))
	var sc mine.SliceCollector
	if err := Mine(empty, lcmFactory, 1, Config{MemBudget: 1024}, &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Sets) != 0 {
		t.Fatalf("empty file produced %d sets", len(sc.Sets))
	}

	// Support above every item's frequency: candidates exist in no chunk.
	db := randomDB(3, 20, 6)
	path := writeTemp(t, db)
	sc.Sets = nil
	if err := Mine(path, lcmFactory, db.Len()+1, Config{MemBudget: 512}, &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Sets) != 0 {
		t.Fatalf("impossible support produced %d sets", len(sc.Sets))
	}

	// minSupport 1 on a tiny file: every subset of every transaction.
	tiny := writeTemp(t, dataset.New([]dataset.Transaction{{0, 1}, {1}}))
	sc.Sets = nil
	if err := Mine(tiny, lcmFactory, 1, Config{MemBudget: 1}, &sc); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, s := range sc.Sets {
		got[mine.Key(s.Items)] = s.Support
	}
	want := map[string]int{"0": 1, "1": 2, "0,1": 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("minsup=1 result %v, want %v", got, want)
	}
}

// TestMineRecordsMetrics checks the two-pass counters: chunk counts match
// the budget-implied partitioning, candidate counts bracket the result,
// and both passes stream the whole file.
func TestMineRecordsMetrics(t *testing.T) {
	db := randomDB(5, 100, 12)
	path := writeTemp(t, db)

	rec := metrics.NewRecorder()
	var sc mine.SliceCollector
	budget := int64(2000)
	if err := Mine(path, lcmFactory, 4, Config{MemBudget: budget, Workers: 2, Metrics: rec}, &sc); err != nil {
		t.Fatal(err)
	}
	pt := rec.Snapshot().Partition
	if pt == nil {
		t.Fatal("no partition section recorded")
	}
	if pt.Chunks < 2 {
		t.Fatalf("budget %d produced %d chunks, want several", budget, pt.Chunks)
	}
	if pt.CandidatesSurviving != uint64(len(sc.Sets)) {
		t.Fatalf("survivors %d, results %d", pt.CandidatesSurviving, len(sc.Sets))
	}
	if pt.CandidatesGenerated < pt.CandidatesSurviving {
		t.Fatalf("generated %d < surviving %d", pt.CandidatesGenerated, pt.CandidatesSurviving)
	}
	if pt.BytesPass2 == 0 || pt.BytesPass1 < 2*pt.BytesPass2 {
		// Pass 1 = sizing scan + mining stream = 2 full reads.
		t.Fatalf("streamed bytes inconsistent: pass1 %d, pass2 %d", pt.BytesPass1, pt.BytesPass2)
	}
	if pt.MemBudget != budget {
		t.Fatalf("mem budget %d, want %d", pt.MemBudget, budget)
	}
	if rec.Snapshot().Parallel == nil {
		t.Fatal("pooled chunk mining recorded no scheduler counters")
	}
}

// TestMineChunkLexMatches asserts P1 chunk reordering is a pure layout
// change: with ChunkLex on, every budget/worker combination must still
// produce the exact in-memory answer (candidates are mined in chunk-local
// rank space and mapped back to the global alphabet by the collector).
func TestMineChunkLexMatches(t *testing.T) {
	for seed := int64(40); seed < 44; seed++ {
		db := randomDB(seed, 140, 16)
		path := writeTemp(t, db)
		const minsup = 5
		want := mine.ResultSet{}
		if err := lcmFactory().Mine(db, minsup, want); err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{1 << 20, 2048} {
			for _, workers := range []int{1, 3} {
				got := mine.ResultSet{}
				cfg := Config{MemBudget: budget, Workers: workers, ChunkLex: true}
				if err := Mine(path, lcmFactory, minsup, cfg, got); err != nil {
					t.Fatalf("seed %d budget %d workers %d: %v", seed, budget, workers, err)
				}
				if !got.Equal(want) {
					t.Fatalf("seed %d budget %d workers %d: ChunkLex diverges:\n%s",
						seed, budget, workers, want.Diff(got, 10))
				}
			}
		}
	}
}

// TestMineEclatPool runs a second kernel through the pooled path to guard
// against kernel-specific emission-order assumptions in the collector.
func TestMineEclatPool(t *testing.T) {
	db := randomDB(9, 140, 14)
	path := writeTemp(t, db)
	want := mine.ResultSet{}
	if err := eclat.New(eclat.Options{}).Mine(db, 5, want); err != nil {
		t.Fatal(err)
	}
	got := mine.ResultSet{}
	cfg := Config{MemBudget: 1500, Workers: 4}
	if err := Mine(path, func() mine.Miner { return eclat.New(eclat.Options{}) }, 5, cfg, got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("eclat partitioned diverges:\n%s", want.Diff(got, 10))
	}
}
