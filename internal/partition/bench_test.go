package partition

// Benchmarks for the out-of-core hot structures: candidate-trie build
// (pass 1 insert path) and the pass-2 subset recount. The workload mirrors
// the repo's skewed Table-6-style corpus (BenchmarkPartitionedVsInMemory)
// at a size that keeps -benchtime=1x CI smoke runs cheap. EXPERIMENTS.md
// ("Layout patterns on the production paths") records the before/after
// deltas for the P3+P4 sealed trie and the inlined child search.

import (
	"path/filepath"
	"testing"

	"fpm/internal/dataset"
	"fpm/internal/fimi"
	"fpm/internal/gen"
	"fpm/internal/lcm"
	"fpm/internal/mine"
)

var (
	recountDB    *dataset.DB
	recountCands [][]dataset.Item
)

// recountSetup builds a realistic pass-2 input: the corpus transactions
// plus the candidate union a SON pass 1 would produce for them (here: the
// exact frequent set at the benchmark support, mined once with LCM).
func recountSetup(b *testing.B) {
	b.Helper()
	if recountDB != nil {
		return
	}
	recountDB = gen.Corpus(gen.CorpusConfig{
		Docs: 8000, Vocab: 2000, AvgLen: 24, ZipfS: 1.3,
		Topics: 8, TopicShare: 0.7, TopicPool: 50, Shuffle: true, Seed: 21,
	})
	var sc mine.SliceCollector
	if err := lcm.New(lcm.Options{}).Mine(recountDB, 600, &sc); err != nil {
		b.Fatal(err)
	}
	if len(sc.Sets) < 100 {
		b.Fatalf("degenerate candidate set: %d", len(sc.Sets))
	}
	for _, s := range sc.Sets {
		recountCands = append(recountCands, s.Items)
	}
}

func buildTrie(b *testing.B) *trie {
	b.Helper()
	tr := newTrie()
	for _, c := range recountCands {
		tr.Add(c)
	}
	return tr
}

// BenchmarkTrieAdd measures the pass-1 candidate insert path: every
// locally-frequent itemset of every chunk goes through Add, and most
// inserts after the first chunk are duplicate hits on existing paths.
func BenchmarkTrieAdd(b *testing.B) {
	recountSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := newTrie()
		// First chunk: all new; second chunk: all duplicates — the two
		// halves of the real insert mix.
		for _, c := range recountCands {
			tr.Add(c)
		}
		for _, c := range recountCands {
			tr.Add(c)
		}
		if tr.Candidates() != len(recountCands) {
			b.Fatal("bad trie")
		}
	}
}

// BenchmarkPass2Recount measures one full pass-2 recount: every
// transaction of the corpus walked through the candidate trie. This is
// the dominant cost of pass 2 (the stream parse is measured separately in
// internal/fimi). The mutable sub-benchmark is the pre-seal baseline; the
// sealed sub-benchmark is what production pass 2 runs.
func BenchmarkPass2Recount(b *testing.B) {
	recountSetup(b)
	tr := buildTrie(b)
	counts := make([]uint32, tr.Candidates())
	b.Run("mutable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tx := range recountDB.Tx {
				tr.Count(tx, counts)
			}
		}
		if counts[0] == 0 {
			b.Fatal("no counting happened")
		}
	})
	b.Run("sealed", func(b *testing.B) {
		sl := tr.Seal()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tx := range recountDB.Tx {
				sl.Count(tx, counts)
			}
		}
		if counts[0] == 0 {
			b.Fatal("no counting happened")
		}
	})
}

// BenchmarkMineChunkLex measures the whole out-of-core mine with and
// without P1 chunk-local reordering — the end-to-end number that decides
// whether the knob defaults on (see EXPERIMENTS.md).
func BenchmarkMineChunkLex(b *testing.B) {
	recountSetup(b)
	path := filepath.Join(b.TempDir(), "corpus.dat")
	if err := fimi.WriteFile(path, recountDB); err != nil {
		b.Fatal(err)
	}
	for _, lex := range []bool{false, true} {
		name := "off"
		if lex {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var sc mine.SliceCollector
				cfg := Config{MemBudget: 1 << 20, Workers: 1, ChunkLex: lex}
				if err := Mine(path, lcmFactory, 600, cfg, &sc); err != nil {
					b.Fatal(err)
				}
				if len(sc.Sets) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// BenchmarkSeal measures the one-time flattening cost paid between the
// passes — the price of the sealed form's pass-2 wins.
func BenchmarkSeal(b *testing.B) {
	recountSetup(b)
	tr := buildTrie(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sl := tr.Seal(); sl.Candidates() != tr.Candidates() {
			b.Fatal("bad seal")
		}
	}
}
