package partition

// Checkpoint/resume for the out-of-core two-pass mine. After every chunk,
// Mine can persist its progress — which pass it is in, how many
// transactions of the input are fully consumed, the candidate trie and (in
// pass 2) the partial recount — to a small sidecar file next to the input.
// A later run with -resume validates that the sidecar was produced by the
// same input and the same mining configuration and then skips everything
// the crashed run completed: a kill -9 loses at most the chunk that was in
// flight.
//
// Durability discipline: the sidecar is written to a temp file in the same
// directory and renamed into place, so a crash mid-write can never tear the
// previous checkpoint; the payload carries a CRC32 so a torn or bit-flipped
// file is detected and reported as ErrCheckpointCorrupt instead of
// poisoning a resume. Identity is (input size, FNV-64a of the input's first
// 64 KiB, kernel signature, minSupport, memory budget, total transaction
// count): chunk boundaries are a pure function of the byte budget and the
// starting transaction, so matching identity guarantees the resumed run
// reproduces exactly the chunks the original would have mined.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"

	"fpm/internal/dataset"
	"fpm/internal/failpoint"
)

const (
	ckptMagic   = "FPCK"
	ckptVersion = 1
	// identityPrefixBytes is how much of the input participates in the
	// identity hash. A full-file hash would cost a fourth streaming pass;
	// the prefix plus the exact byte size catches every realistic mismatch
	// (different file, appended rows, re-sorted rows).
	identityPrefixBytes = 64 << 10
)

// ErrCheckpointCorrupt reports a sidecar that is not a well-formed
// checkpoint: wrong magic, unknown version, CRC mismatch, or a payload that
// fails structural validation. It is a clean error — corrupt input never
// panics (FuzzCheckpointDecode asserts this).
var ErrCheckpointCorrupt = errors.New("partition: checkpoint corrupt")

// Checkpoint is one persisted progress record. The identity fields bind it
// to an (input, config) pair; the progress fields say where to pick up.
type Checkpoint struct {
	// Identity of the input file.
	InputSize int64
	InputHash uint64
	// Identity of the mining configuration. Kernel is the sequential
	// kernel's Name() (it encodes the algorithm and its pattern set);
	// worker count is deliberately absent — parallelism does not change
	// the result or the chunk boundaries, so a run may resume with a
	// different pool size.
	Kernel     string
	MinSupport int
	MemBudget  int64
	TotalTx    int

	// Progress. Phase is 1 (candidate generation) or 2 (exact recount);
	// ChunksDone counts pass-1 chunks mined; TxConsumed counts the
	// transactions of the *current phase* fully processed.
	Phase      int
	ChunksDone int
	TxConsumed int

	trie   *sealed
	counts []uint32 // pass-2 partial supports; len == trie.Candidates() in phase 2
}

// encode serialises the checkpoint: magic, version byte, CRC32(payload),
// payload (varint fields, the flat trie node array, the counts array).
// The trie travels in its sealed arena form, so encoding is a linear
// sweep over the CSR arrays — no per-node pointer chasing. The wire
// layout (per node: cand, child count, then item/ref pairs) is unchanged
// from the mutable-form encoder, only the node numbering differs (DFS
// prefix order), which the decoder never relied on.
func (ck *Checkpoint) encode() []byte {
	var pay bytes.Buffer
	var vb [binary.MaxVarintLen64]byte
	wu := func(v uint64) { pay.Write(vb[:binary.PutUvarint(vb[:], v)]) }
	wi := func(v int64) { pay.Write(vb[:binary.PutVarint(vb[:], v)]) }

	wi(ck.InputSize)
	wu(ck.InputHash)
	wu(uint64(len(ck.Kernel)))
	pay.WriteString(ck.Kernel)
	wi(int64(ck.MinSupport))
	wi(ck.MemBudget)
	wi(int64(ck.TotalTx))
	wu(uint64(ck.Phase))
	wi(int64(ck.ChunksDone))
	wi(int64(ck.TxConsumed))

	t := ck.trie
	nNodes := len(t.cand)
	wu(uint64(nNodes))
	wu(uint64(t.cands))
	for n := 0; n < nNodes; n++ {
		wi(int64(t.cand[n]))
		lo, hi := t.start[n], t.start[n+1]
		wu(uint64(hi - lo))
		for ci := lo; ci < hi; ci++ {
			wu(uint64(t.keys[ci]))
			wu(uint64(t.child[ci]))
		}
	}
	wu(uint64(len(ck.counts)))
	for _, v := range ck.counts {
		wu(uint64(v))
	}

	out := make([]byte, 0, len(ckptMagic)+1+4+pay.Len())
	out = append(out, ckptMagic...)
	out = append(out, ckptVersion)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(pay.Bytes()))
	out = append(out, crcb[:]...)
	out = append(out, pay.Bytes()...)
	return out
}

// DecodeCheckpoint parses and validates a serialised checkpoint. Any
// malformation — truncation, bit flips, hostile structure — yields an error
// wrapping ErrCheckpointCorrupt; it never panics and never allocates more
// than the input size warrants (counts claimed by the header are bounded by
// the remaining payload bytes before allocation).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	corrupt := func(what string) (*Checkpoint, error) {
		return nil, fmt.Errorf("%w: %s", ErrCheckpointCorrupt, what)
	}
	if len(data) < len(ckptMagic)+1+4 {
		return corrupt("file shorter than header")
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return corrupt("bad magic")
	}
	if v := data[len(ckptMagic)]; v != ckptVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpointCorrupt, v)
	}
	crc := binary.LittleEndian.Uint32(data[len(ckptMagic)+1:])
	pay := data[len(ckptMagic)+1+4:]
	if crc32.ChecksumIEEE(pay) != crc {
		return corrupt("payload CRC mismatch")
	}

	r := bytes.NewReader(pay)
	var rerr error
	ru := func() uint64 {
		if rerr != nil {
			return 0
		}
		v, err := binary.ReadUvarint(r)
		if err != nil {
			rerr = err
		}
		return v
	}
	ri := func() int64 {
		if rerr != nil {
			return 0
		}
		v, err := binary.ReadVarint(r)
		if err != nil {
			rerr = err
		}
		return v
	}

	ck := &Checkpoint{}
	ck.InputSize = ri()
	ck.InputHash = ru()
	klen := ru()
	if rerr != nil || klen > uint64(r.Len()) {
		return corrupt("truncated kernel signature")
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return corrupt("truncated kernel signature")
	}
	ck.Kernel = string(kb)
	ck.MinSupport = int(ri())
	ck.MemBudget = ri()
	ck.TotalTx = int(ri())
	ck.Phase = int(ru())
	ck.ChunksDone = int(ri())
	ck.TxConsumed = int(ri())
	if rerr != nil {
		return corrupt("truncated header fields")
	}
	if ck.Phase != 1 && ck.Phase != 2 {
		return corrupt("phase out of range")
	}
	if ck.MinSupport < 1 || ck.TotalTx < 0 || ck.ChunksDone < 0 || ck.TxConsumed < 0 {
		return corrupt("negative progress field")
	}

	// Trie: the sealed arena form, decoded straight into CSR arrays. Every
	// structural invariant the counting walk relies on is re-validated
	// here, because the bytes may be hostile. The decoder accepts any
	// valid node numbering (old mutable-order sidecars decode fine), not
	// only the DFS prefix order the current encoder emits.
	nNodes := ru()
	nCands := ru()
	if rerr != nil {
		return corrupt("truncated trie header")
	}
	// Each node costs at least 2 payload bytes (cand varint + child count),
	// so a node count beyond the remaining bytes is a lie — reject before
	// allocating.
	if nNodes < 1 || nNodes > uint64(r.Len()) || nCands > nNodes {
		return corrupt("implausible trie size")
	}
	t := &sealed{
		start: make([]int32, nNodes+1),
		cand:  make([]int32, nNodes),
		cands: int(nCands),
	}
	seenCand := make([]bool, nCands)
	for i := uint64(0); i < nNodes; i++ {
		cand := ri()
		nch := ru()
		if rerr != nil {
			return corrupt("truncated trie node")
		}
		if cand < -1 || cand >= int64(nCands) {
			return corrupt("candidate id out of range")
		}
		if cand >= 0 {
			if seenCand[cand] {
				return corrupt("duplicate candidate id")
			}
			seenCand[cand] = true
		}
		if nch > uint64(r.Len()) {
			return corrupt("implausible child count")
		}
		t.start[i] = int32(len(t.keys))
		t.cand[i] = int32(cand)
		prevItem := int64(-1)
		for k := uint64(0); k < nch; k++ {
			item := ru()
			ref := ru()
			if rerr != nil {
				return corrupt("truncated trie child")
			}
			// Child rows must be strictly increasing by item (the lockstep
			// merge-join requires sorted keys) and refs must point past the
			// root and inside the array; the root at index 0 must never be
			// a child (cycles would hang Count's recursion — together with
			// ref > parent not being required, acyclicity comes from
			// ref != 0 plus each node having exactly one parent, checked
			// below).
			if int64(item) <= prevItem || item > uint64(^uint32(0)>>1) {
				return corrupt("child items not strictly increasing")
			}
			if ref == 0 || ref >= nNodes {
				return corrupt("child reference out of range")
			}
			prevItem = int64(item)
			t.keys = append(t.keys, dataset.Item(item))
			t.child = append(t.child, int32(ref))
		}
	}
	t.start[nNodes] = int32(len(t.keys))
	// Single-parent check: every non-root node is referenced exactly once,
	// which together with ref != 0 rules out cycles and sharing.
	refCount := make([]uint8, nNodes)
	for _, c := range t.child {
		if refCount[c] != 0 {
			return corrupt("node referenced twice")
		}
		refCount[c] = 1
	}
	for i := uint64(1); i < nNodes; i++ {
		if refCount[i] == 0 {
			return corrupt("orphaned trie node")
		}
	}
	ck.trie = t

	nCounts := ru()
	if rerr != nil || nCounts > uint64(r.Len()) {
		return corrupt("implausible counts size")
	}
	if ck.Phase == 2 {
		if nCounts != nCands {
			return corrupt("counts length does not match candidates")
		}
	} else if nCounts != 0 {
		return corrupt("counts present outside phase 2")
	}
	if nCounts > 0 {
		ck.counts = make([]uint32, nCounts)
		for i := range ck.counts {
			v := ru()
			if rerr != nil || v > uint64(^uint32(0)) {
				return corrupt("truncated counts")
			}
			ck.counts[i] = uint32(v)
		}
	}
	if r.Len() != 0 {
		return corrupt("trailing bytes")
	}
	return ck, nil
}

// SaveCheckpoint atomically persists ck to path: full write to a temp file
// in the same directory, fsync, then rename over path. A crash at any point
// leaves either the previous checkpoint or the new one, never a torn file.
// The partition.checkpoint.write failpoint fires before any byte is
// written, so injected write failures also leave the previous sidecar
// intact.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	if err := failpoint.Hit(failpoint.PartitionCheckpointWrite); err != nil {
		return err
	}
	data := ck.encode()
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("partition: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("partition: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("partition: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("partition: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and decodes the sidecar at path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("partition: checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// removeCheckpoint deletes the sidecar after a successful run; a missing
// file (no checkpoint was ever written) is not an error.
func removeCheckpoint(path string) {
	if path != "" {
		os.Remove(path)
	}
}

// inputIdentity fingerprints the open input file: its exact byte size plus
// an FNV-64a hash of its first identityPrefixBytes. The caller rewinds
// afterwards (the read advances the file position).
func inputIdentity(f *os.File) (size int64, hash uint64, err error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("partition: checkpoint: %w", err)
	}
	h := fnv.New64a()
	if _, err := io.Copy(h, io.LimitReader(f, identityPrefixBytes)); err != nil {
		return 0, 0, fmt.Errorf("partition: checkpoint: %w", err)
	}
	return fi.Size(), h.Sum64(), nil
}
