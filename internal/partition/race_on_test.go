//go:build race

package partition

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation changes allocation behaviour, so exact-zero checks only
// run in non-race builds (the code paths still execute under race).
const raceEnabled = true
