package partition

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/failpoint"
	"fpm/internal/metrics"
	"fpm/internal/mine"
)

// testTrie builds a small trie with a few candidates for round-trip tests.
func testTrie() *trie {
	tr := newTrie()
	tr.Add([]dataset.Item{1})
	tr.Add([]dataset.Item{2})
	tr.Add([]dataset.Item{1, 2})
	tr.Add([]dataset.Item{1, 2, 5})
	tr.Add([]dataset.Item{3})
	return tr
}

func testCheckpoint(phase int) *Checkpoint {
	tr := testTrie()
	ck := &Checkpoint{
		InputSize: 12345, InputHash: 0xdeadbeefcafe,
		Kernel: `lcm("Lex|SIMD")`, MinSupport: 7, MemBudget: 1 << 20, TotalTx: 999,
		Phase: phase, ChunksDone: 3, TxConsumed: 321,
		trie: tr.Seal(),
	}
	if phase == 2 {
		ck.counts = make([]uint32, tr.Candidates())
		for i := range ck.counts {
			ck.counts[i] = uint32(10 * (i + 1))
		}
	}
	return ck
}

// trieEquivalent checks two sealed tries count identically over a probe
// set of transactions — structural equality through observable behaviour.
func trieEquivalent(t *testing.T, a, b *sealed) {
	t.Helper()
	if a.Candidates() != b.Candidates() {
		t.Fatalf("candidate counts differ: %d vs %d", a.Candidates(), b.Candidates())
	}
	probes := []dataset.Transaction{
		{1}, {2}, {3}, {1, 2}, {1, 2, 5}, {1, 2, 3, 5}, {0, 4, 9}, {},
	}
	ca := make([]uint32, a.Candidates())
	cb := make([]uint32, b.Candidates())
	for _, tx := range probes {
		a.Count(tx, ca)
		b.Count(tx, cb)
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("count diverges at candidate %d: %d vs %d", i, ca[i], cb[i])
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, phase := range []int{1, 2} {
		ck := testCheckpoint(phase)
		got, err := DecodeCheckpoint(ck.encode())
		if err != nil {
			t.Fatalf("phase %d: decode: %v", phase, err)
		}
		if got.InputSize != ck.InputSize || got.InputHash != ck.InputHash ||
			got.Kernel != ck.Kernel || got.MinSupport != ck.MinSupport ||
			got.MemBudget != ck.MemBudget || got.TotalTx != ck.TotalTx ||
			got.Phase != ck.Phase || got.ChunksDone != ck.ChunksDone ||
			got.TxConsumed != ck.TxConsumed {
			t.Fatalf("phase %d: fields diverge:\n got %+v\nwant %+v", phase, got, ck)
		}
		trieEquivalent(t, ck.trie, got.trie)
		if phase == 2 && !bytes.Equal(u32bytes(got.counts), u32bytes(ck.counts)) {
			t.Fatalf("counts diverge: %v vs %v", got.counts, ck.counts)
		}
	}
}

func u32bytes(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

// reframe recomputes the CRC over a (mutated) payload so structural
// validation — not the checksum — is what rejects the input.
func reframe(payload []byte) []byte {
	out := append([]byte(ckptMagic), ckptVersion)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(payload))
	out = append(out, crcb[:]...)
	return append(out, payload...)
}

func TestDecodeCheckpointRejectsCorruption(t *testing.T) {
	valid := testCheckpoint(2).encode()
	payload := append([]byte(nil), valid[len(ckptMagic)+1+4:]...)

	cases := map[string][]byte{
		"empty":          nil,
		"short header":   valid[:6],
		"bad magic":      append([]byte("JUNK"), valid[4:]...),
		"bad version":    append(append([]byte(ckptMagic), 99), valid[5:]...),
		"truncated body": valid[:len(valid)-3],
		"trailing bytes": reframe(append(append([]byte(nil), payload...), 0)),
		"empty payload":  reframe(nil),
	}
	// A bit flip anywhere in the payload must be caught by the CRC.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40
	cases["bit flip"] = flipped

	for name, data := range cases {
		ck, err := DecodeCheckpoint(data)
		if err == nil {
			t.Fatalf("%s: decoded to %+v, want error", name, ck)
		}
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrCheckpointCorrupt", name, err)
		}
	}
}

// TestDecodeCheckpointHostileTrie hand-crafts payloads whose trie section
// violates the structural invariants the counting walk relies on; each must
// be rejected (the decoder guarantees the mining code never sees them).
func TestDecodeCheckpointHostileTrie(t *testing.T) {
	// header writes the fixed fields up to the trie section.
	header := func() *bytes.Buffer {
		var b bytes.Buffer
		var vb [binary.MaxVarintLen64]byte
		wi := func(v int64) { b.Write(vb[:binary.PutVarint(vb[:], v)]) }
		wu := func(v uint64) { b.Write(vb[:binary.PutUvarint(vb[:], v)]) }
		wi(100)  // InputSize
		wu(7)    // InputHash
		wu(0)    // kernel len
		wi(2)    // MinSupport
		wi(1024) // MemBudget
		wi(50)   // TotalTx
		wu(1)    // Phase
		wi(1)    // ChunksDone
		wi(10)   // TxConsumed
		return &b
	}
	wu := func(b *bytes.Buffer, v uint64) {
		var vb [binary.MaxVarintLen64]byte
		b.Write(vb[:binary.PutUvarint(vb[:], v)])
	}
	wi := func(b *bytes.Buffer, v int64) {
		var vb [binary.MaxVarintLen64]byte
		b.Write(vb[:binary.PutVarint(vb[:], v)])
	}

	cases := map[string]func() []byte{
		"allocation bomb node count": func() []byte {
			b := header()
			wu(b, 1<<40) // nNodes far beyond the remaining bytes
			wu(b, 0)
			return b.Bytes()
		},
		"self cycle": func() []byte {
			b := header()
			wu(b, 2) // 2 nodes
			wu(b, 1) // 1 cand
			wi(b, -1)
			wu(b, 1)
			wu(b, 3) // child item 3 ...
			wu(b, 1) // ... -> node 1
			wi(b, 0) // node 1: cand 0
			wu(b, 1)
			wu(b, 5)
			wu(b, 1) // node 1 references itself -> double reference
			wu(b, 0) // counts
			return b.Bytes()
		},
		"child ref to root": func() []byte {
			b := header()
			wu(b, 2)
			wu(b, 1)
			wi(b, -1)
			wu(b, 1)
			wu(b, 3)
			wu(b, 0) // child points back at the root
			wi(b, 0)
			wu(b, 0)
			wu(b, 0)
			return b.Bytes()
		},
		"unsorted children": func() []byte {
			b := header()
			wu(b, 3)
			wu(b, 2)
			wi(b, -1)
			wu(b, 2)
			wu(b, 5)
			wu(b, 1)
			wu(b, 4) // 4 after 5: not strictly increasing
			wu(b, 2)
			wi(b, 0)
			wu(b, 0)
			wi(b, 1)
			wu(b, 0)
			wu(b, 0)
			return b.Bytes()
		},
		"orphan node": func() []byte {
			b := header()
			wu(b, 2) // node 1 never referenced
			wu(b, 1)
			wi(b, -1)
			wu(b, 0)
			wi(b, 0)
			wu(b, 0)
			wu(b, 0)
			return b.Bytes()
		},
		"duplicate candidate id": func() []byte {
			b := header()
			wu(b, 3)
			wu(b, 1)
			wi(b, -1)
			wu(b, 2)
			wu(b, 1)
			wu(b, 1)
			wu(b, 2)
			wu(b, 2)
			wi(b, 0)
			wu(b, 0)
			wi(b, 0) // cand 0 again
			wu(b, 0)
			wu(b, 0)
			return b.Bytes()
		},
		"counts outside phase 2": func() []byte {
			b := header() // phase 1
			wu(b, 1)
			wu(b, 0)
			wi(b, -1)
			wu(b, 0)
			wu(b, 3) // counts present in phase 1
			wu(b, 1)
			wu(b, 2)
			wu(b, 3)
			return b.Bytes()
		},
	}
	for name, build := range cases {
		data := reframe(build())
		ck, err := DecodeCheckpoint(data)
		if err == nil {
			t.Fatalf("%s: accepted hostile trie: %+v", name, ck)
		}
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrCheckpointCorrupt", name, err)
		}
	}
}

func TestSaveCheckpointAtomicAndBestEffort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mine.fpmck")
	ck := testCheckpoint(1)
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChunksDone != ck.ChunksDone {
		t.Fatalf("loaded ChunksDone = %d, want %d", got.ChunksDone, ck.ChunksDone)
	}

	// An injected write failure must fail the save and leave the previous
	// sidecar byte-identical — no torn file, no leftover temp.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := failpoint.New()
	reg.Fail(failpoint.PartitionCheckpointWrite, errors.New("disk full"))
	failpoint.Enable(reg)
	t.Cleanup(failpoint.Disable)
	next := testCheckpoint(2)
	if err := SaveCheckpoint(path, next); err == nil {
		t.Fatal("injected write failure did not surface")
	}
	failpoint.Disable()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save modified the previous sidecar")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// mineAll runs a partitioned mine and returns its canonical result set.
func mineAll(t *testing.T, path string, minSupport int, cfg Config) (mine.ResultSet, error) {
	t.Helper()
	got := mine.ResultSet{}
	err := Mine(path, lcmFactory, minSupport, cfg, got)
	return got, err
}

func TestResumeAfterCrashMatchesClean(t *testing.T) {
	db := randomDB(11, 160, 16)
	path := writeTemp(t, db)
	const minsup, budget = 6, 2048

	want, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.fpmck")
	// Crash the run after two chunks have been mined and checkpointed.
	reg := failpoint.New()
	boom := errors.New("simulated crash")
	reg.FailAfter(failpoint.PartitionChunkMine, 2, boom)
	failpoint.Enable(reg)
	t.Cleanup(failpoint.Disable)
	rec := metrics.NewRecorder()
	_, err = mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1,
		Checkpoint: ckpt, Metrics: rec})
	failpoint.Disable()
	if !errors.Is(err, boom) {
		t.Fatalf("crashed run error = %v, want injected crash", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("crashed run left no sidecar: %v", err)
	}

	// Resume: must skip the completed chunks and produce the clean answer.
	rec2 := metrics.NewRecorder()
	got, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1,
		Checkpoint: ckpt, Resume: true, Metrics: rec2})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("resumed run diverges from clean run:\n%s", want.Diff(got, 10))
	}
	snap := rec2.Snapshot()
	if snap.Partition == nil || snap.Partition.ChunksSkipped != 2 {
		t.Fatalf("resume skipped %+v chunks, want 2", snap.Partition)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("sidecar not removed after successful resume: %v", err)
	}
}

func TestResumeAcrossWorkerCountChange(t *testing.T) {
	db := randomDB(13, 150, 14)
	path := writeTemp(t, db)
	const minsup, budget = 5, 2048

	want, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "run.fpmck")
	reg := failpoint.New()
	boom := errors.New("simulated crash")
	reg.FailAfter(failpoint.PartitionChunkMine, 1, boom)
	failpoint.Enable(reg)
	t.Cleanup(failpoint.Disable)
	if _, err = mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 4,
		Checkpoint: ckpt}); !errors.Is(err, boom) {
		t.Fatalf("crashed run error = %v", err)
	}
	failpoint.Disable()
	// Resume with a different pool size: identity deliberately excludes the
	// worker count, so the checkpoint must still be honoured.
	got, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1,
		Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("cross-worker resume diverges:\n%s", want.Diff(got, 10))
	}
}

// TestResumeIdentityMismatch: a sidecar from a different input or config
// must be ignored — the run silently starts fresh and stays correct.
func TestResumeIdentityMismatch(t *testing.T) {
	db := randomDB(17, 140, 15)
	path := writeTemp(t, db)
	const minsup, budget = 5, 2048
	want, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.fpmck")
	crash := func() {
		t.Helper()
		reg := failpoint.New()
		reg.FailAfter(failpoint.PartitionChunkMine, 1, errors.New("crash"))
		failpoint.Enable(reg)
		_, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1, Checkpoint: ckpt})
		failpoint.Disable()
		if err == nil {
			t.Fatal("crash did not crash")
		}
	}
	t.Cleanup(failpoint.Disable)

	// Different support: the sidecar's config identity must not match.
	crash()
	got, err := mineAll(t, path, minsup+1, Config{MemBudget: budget, Workers: 1,
		Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	wantHigher, err := mineAll(t, path, minsup+1, Config{MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantHigher) {
		t.Fatal("resume with different support reused a mismatched checkpoint")
	}

	// Changed input (appended rows): size differs, sidecar must be ignored.
	crash()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0 1 2\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1,
		Checkpoint: ckpt, Resume: true}); err != nil {
		t.Fatalf("resume against changed input failed instead of starting fresh: %v", err)
	}

	// Corrupt sidecar: ditto.
	if err := os.WriteFile(ckpt, []byte("FPCKgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got2, err := mineAll(t, path, minsup, Config{MemBudget: budget, Workers: 1,
		Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := mineAll(t, path, minsup, Config{MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want2) {
		t.Fatal("resume with corrupt sidecar diverges from fresh run")
	}
	_ = want
}

// TestCheckpointWriteFailureIsBestEffort: every checkpoint write failing
// must not fail the mine — the run completes with the exact answer and the
// failures are counted.
func TestCheckpointWriteFailureIsBestEffort(t *testing.T) {
	db := randomDB(19, 130, 15)
	path := writeTemp(t, db)
	want, err := mineAll(t, path, 5, Config{MemBudget: 2048})
	if err != nil {
		t.Fatal(err)
	}
	reg := failpoint.New()
	reg.Fail(failpoint.PartitionCheckpointWrite, errors.New("disk full"))
	failpoint.Enable(reg)
	t.Cleanup(failpoint.Disable)
	rec := metrics.NewRecorder()
	got, err := mineAll(t, path, 5, Config{MemBudget: 2048,
		Checkpoint: filepath.Join(t.TempDir(), "x.fpmck"), Metrics: rec})
	failpoint.Disable()
	if err != nil {
		t.Fatalf("best-effort checkpointing failed the mine: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("result diverges under checkpoint write failures")
	}
	snap := rec.Snapshot()
	if snap.Partition == nil || snap.Partition.CheckpointsFailed == 0 {
		t.Fatalf("checkpoint failures not counted: %+v", snap.Partition)
	}
}

// TestCancelLeavesSidecarForResume: a cancelled checkpointed run returns
// the cancellation cause and leaves the sidecar so it can be resumed.
func TestCancelLeavesSidecarForResume(t *testing.T) {
	db := randomDB(23, 160, 16)
	path := writeTemp(t, db)
	const minsup, budget = 6, 2048
	want, err := mineAll(t, path, minsup, Config{MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.fpmck")
	cf := cancel.New()
	cf.Set(context.Canceled)
	_, err = mineAll(t, path, minsup, Config{MemBudget: budget, Cancel: cf, Checkpoint: ckpt})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}

	got, err := mineAll(t, path, minsup, Config{MemBudget: budget, Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("resume after cancellation diverges")
	}
}
