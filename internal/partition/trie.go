package partition

import (
	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// trie is the candidate union: a prefix tree over canonical (ascending)
// itemsets. Pass 1 inserts every locally-frequent itemset any chunk
// produces — duplicates across chunks collapse onto the same node — and
// pass 2 walks each transaction through it to count every candidate that
// is a subset. Each candidate node carries a dense id so support counting
// runs over flat per-worker count arrays instead of per-node atomics.
//
// The trie exists in two forms, the paper's build/seal life cycle (P3
// aggregation + P4 compaction applied to the out-of-core hot structure):
// this mutable form, cheap to insert into, is used only while pass 1 is
// still adding candidates; Seal then flattens it into the sealed arena
// form that pass 2's read-only subset counting and the checkpoint
// encoder run against.
type trie struct {
	nodes []trieNode
	cands int // number of candidate (terminal) nodes
}

type trieNode struct {
	// children is kept sorted by item, so lookup is a binary search and
	// an in-order walk enumerates itemsets in lexicographic prefix order.
	children []childRef
	// cand is the candidate id when this node terminates an inserted
	// itemset, else -1.
	cand int32
}

type childRef struct {
	item dataset.Item
	node int32
}

// newTrie returns an empty trie (a lone root, which never terminates a
// candidate: kernels do not emit the empty itemset).
func newTrie() *trie {
	return &trie{nodes: []trieNode{{cand: -1}}}
}

// Candidates returns the number of distinct itemsets inserted.
func (t *trie) Candidates() int { return t.cands }

// childSearchLinearMax is the child-list length below which findChild
// scans linearly instead of binary-searching. Short sorted arrays are
// faster to scan than to bisect (no branch mispredict recovery on the
// halving compares), and most trie nodes below the root have a handful
// of children.
const childSearchLinearMax = 8

// findChild returns the insertion position of item in the sorted child
// list: the first index whose item is >= the probe. It is the inlinable
// replacement for sort.Search in the pass-1 insert loop — sort.Search's
// closure call per probe defeats inlining exactly where Add spends its
// time (see BenchmarkTrieAdd).
func findChild(ch []childRef, item dataset.Item) int {
	if len(ch) <= childSearchLinearMax {
		for i := range ch {
			if ch[i].item >= item {
				return i
			}
		}
		return len(ch)
	}
	lo, hi := 0, len(ch)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ch[mid].item < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// child returns the index of n's child for item, or -1.
func (t *trie) child(n int32, item dataset.Item) int32 {
	ch := t.nodes[n].children
	if i := findChild(ch, item); i < len(ch) && ch[i].item == item {
		return ch[i].node
	}
	return -1
}

// Add inserts the itemset (which must be sorted ascending and
// duplicate-free — the caller canonicalises) and reports whether it was
// new. Re-inserting an existing candidate is a no-op.
func (t *trie) Add(items []dataset.Item) bool {
	n := int32(0)
	for _, it := range items {
		ch := t.nodes[n].children
		i := findChild(ch, it)
		if i < len(ch) && ch[i].item == it {
			n = ch[i].node
			continue
		}
		t.nodes = append(t.nodes, trieNode{cand: -1})
		nn := int32(len(t.nodes) - 1)
		ch = append(ch, childRef{})
		copy(ch[i+1:], ch[i:])
		ch[i] = childRef{item: it, node: nn}
		t.nodes[n].children = ch
		n = nn
	}
	if t.nodes[n].cand >= 0 {
		return false
	}
	t.nodes[n].cand = int32(t.cands)
	t.cands++
	return true
}

// Count walks one normalized (sorted, duplicate-free) transaction and
// increments counts[id] for every candidate that is a subset of it. Each
// candidate is counted at most once per transaction: items are strictly
// increasing, so a subset corresponds to exactly one root-to-node path
// reached through exactly one index subsequence. The trie must not be
// mutated concurrently; counts is the caller's (per-worker) array.
//
// Production pass 2 counts through the sealed form (sealed.Count); this
// mutable-form walk is kept as the baseline contestant of
// BenchmarkPass2Recount and as the oracle of the seal property tests.
func (t *trie) Count(tx dataset.Transaction, counts []uint32) {
	t.count(0, tx, counts)
}

func (t *trie) count(n int32, tx dataset.Transaction, counts []uint32) {
	node := &t.nodes[n]
	if len(node.children) == 0 {
		return
	}
	// Both the transaction and the child list are sorted ascending:
	// advance through them in lockstep instead of binary-searching every
	// transaction item from scratch.
	ch := node.children
	ci := 0
	for i := 0; i < len(tx) && ci < len(ch); i++ {
		it := tx[i]
		for ci < len(ch) && ch[ci].item < it {
			ci++
		}
		if ci == len(ch) {
			return
		}
		if ch[ci].item == it {
			c := ch[ci].node
			if id := t.nodes[c].cand; id >= 0 {
				counts[id]++
			}
			t.count(c, tx[i+1:], counts)
			ci++
		}
	}
}

// Emit appends every candidate whose global count cleared minSupport to
// out, walking the trie in lexicographic prefix order. The returned sets
// carry their exact pass-2 supports; callers wanting the canonical
// size-then-lex order (mine.LessItems) sort afterwards.
func (t *trie) Emit(counts []uint32, minSupport int, out []mine.Itemset) []mine.Itemset {
	var prefix []dataset.Item
	var walk func(n int32)
	walk = func(n int32) {
		node := &t.nodes[n]
		if id := node.cand; id >= 0 && int(counts[id]) >= minSupport {
			out = append(out, mine.Itemset{
				Items:   append([]dataset.Item(nil), prefix...),
				Support: int(counts[id]),
			})
		}
		for _, c := range node.children {
			prefix = append(prefix, c.item)
			walk(c.node)
			prefix = prefix[:len(prefix)-1]
		}
	}
	walk(0)
	return out
}

// sealed is the P3+P4 compacted candidate trie: the whole tree flattened
// into one arena of three parallel arrays in CSR form. Node n's children
// are keys[start[n]:start[n+1]] (the child item keys, sorted ascending)
// and child[start[n]:start[n+1]] (the child node ids); cand[n] is n's
// candidate id or -1. Nodes are renumbered in DFS prefix order, so a
// parent's child row is contiguous and the recursive lockstep merge-join
// of Count descends into node ids (and therefore memory) that mostly
// increase — the aggregation (P3: one allocation for every child list)
// and compaction (P4: 4-byte keys and refs, no per-node slice headers)
// the paper applies to trie-shaped mining structures.
//
// A sealed trie is immutable and therefore safely shared across the
// pass-2 counting workers without synchronisation.
type sealed struct {
	start []int32        // CSR offsets; len == len(cand)+1
	keys  []dataset.Item // child item keys, all nodes concatenated
	child []int32        // child node ids, parallel to keys
	cand  []int32        // candidate id per node, -1 when none
	cands int            // number of candidate ids
}

// Seal flattens the mutable trie into its sealed arena form. Candidate
// ids are preserved exactly — pass-2 count arrays and checkpointed
// partial counts index by candidate id, so sealing (or resuming from a
// sealed sidecar) never invalidates them. Only node ids are renumbered
// (DFS prefix order); node ids are internal to the trie and never leave
// it. The mutable trie is left untouched.
func (t *trie) Seal() *sealed {
	n := len(t.nodes)
	edges := n - 1 // every node except the root is exactly one child
	s := &sealed{
		start: make([]int32, n+1),
		keys:  make([]dataset.Item, 0, edges),
		child: make([]int32, 0, edges),
		cand:  make([]int32, n),
		cands: t.cands,
	}
	// Pass A: assign DFS-preorder ids. The explicit stack visits children
	// in ascending item order (they are stored sorted), so preorder here
	// is exactly the lexicographic prefix order Emit walks.
	newID := make([]int32, n)
	order := make([]int32, 0, n) // new id -> old id
	stack := make([]int32, 1, 64)
	stack[0] = 0
	for len(stack) > 0 {
		old := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		newID[old] = int32(len(order))
		order = append(order, old)
		ch := t.nodes[old].children
		for k := len(ch) - 1; k >= 0; k-- {
			stack = append(stack, ch[k].node)
		}
	}
	// Pass B: emit each node's child row into the arena in new-id order.
	for ni, old := range order {
		node := &t.nodes[old]
		s.start[ni] = int32(len(s.keys))
		s.cand[ni] = node.cand
		for _, c := range node.children {
			s.keys = append(s.keys, c.item)
			s.child = append(s.child, newID[c.node])
		}
	}
	s.start[n] = int32(len(s.keys))
	return s
}

// unseal reconstructs a mutable trie from the sealed form, for resuming
// pass 1 from a checkpointed sidecar (the only phase that still inserts).
// Candidate ids are preserved; child lists come back sorted because the
// arena rows are stored sorted.
func (s *sealed) unseal() *trie {
	t := &trie{nodes: make([]trieNode, len(s.cand)), cands: s.cands}
	for n := range t.nodes {
		t.nodes[n].cand = s.cand[n]
		lo, hi := s.start[n], s.start[n+1]
		if lo == hi {
			continue
		}
		ch := make([]childRef, hi-lo)
		for k := range ch {
			ch[k] = childRef{item: s.keys[lo+int32(k)], node: s.child[lo+int32(k)]}
		}
		t.nodes[n].children = ch
	}
	return t
}

// Candidates returns the number of distinct candidate itemsets.
func (s *sealed) Candidates() int { return s.cands }

// Count is the sealed-form subset walk: semantically identical to
// trie.Count, but the lockstep merge-join advances through the flat
// keys/child arena instead of chasing per-node slices. Zero allocations
// (asserted by TestSealedCountAllocs). The sealed trie is immutable, so
// concurrent Counts into distinct count arrays are safe.
func (s *sealed) Count(tx dataset.Transaction, counts []uint32) {
	s.countFrom(0, tx, counts)
}

func (s *sealed) countFrom(n int32, tx dataset.Transaction, counts []uint32) {
	ci, hi := s.start[n], s.start[n+1]
	if ci == hi {
		return
	}
	keys := s.keys
	for i := 0; i < len(tx); i++ {
		it := tx[i]
		for keys[ci] < it {
			if ci++; ci == hi {
				return
			}
		}
		if keys[ci] == it {
			c := s.child[ci]
			if id := s.cand[c]; id >= 0 {
				counts[id]++
			}
			// Most matched nodes are leaf candidates: eliding the call for
			// them is worth ~5% of the whole recount (BenchmarkPass2Recount).
			if s.start[c] != s.start[c+1] {
				s.countFrom(c, tx[i+1:], counts)
			}
			if ci++; ci == hi {
				return
			}
		}
	}
}

// Emit is trie.Emit against the sealed arena: every candidate clearing
// minSupport, in lexicographic prefix order, with its exact support.
func (s *sealed) Emit(counts []uint32, minSupport int, out []mine.Itemset) []mine.Itemset {
	var prefix []dataset.Item
	var walk func(n int32)
	walk = func(n int32) {
		if id := s.cand[n]; id >= 0 && int(counts[id]) >= minSupport {
			out = append(out, mine.Itemset{
				Items:   append([]dataset.Item(nil), prefix...),
				Support: int(counts[id]),
			})
		}
		for ci := s.start[n]; ci < s.start[n+1]; ci++ {
			prefix = append(prefix, s.keys[ci])
			walk(s.child[ci])
			prefix = prefix[:len(prefix)-1]
		}
	}
	walk(0)
	return out
}
