package partition

import (
	"sort"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// trie is the candidate union: a prefix tree over canonical (ascending)
// itemsets. Pass 1 inserts every locally-frequent itemset any chunk
// produces — duplicates across chunks collapse onto the same node — and
// pass 2 walks each transaction through it to count every candidate that
// is a subset. Each candidate node carries a dense id so support counting
// runs over flat per-worker count arrays instead of per-node atomics,
// keeping the trie itself read-only (and therefore safely shared) during
// the counting pass.
type trie struct {
	nodes []trieNode
	cands int // number of candidate (terminal) nodes
}

type trieNode struct {
	// children is kept sorted by item, so lookup is a binary search and
	// an in-order walk enumerates itemsets in lexicographic prefix order.
	children []childRef
	// cand is the candidate id when this node terminates an inserted
	// itemset, else -1.
	cand int32
}

type childRef struct {
	item dataset.Item
	node int32
}

// newTrie returns an empty trie (a lone root, which never terminates a
// candidate: kernels do not emit the empty itemset).
func newTrie() *trie {
	return &trie{nodes: []trieNode{{cand: -1}}}
}

// Candidates returns the number of distinct itemsets inserted.
func (t *trie) Candidates() int { return t.cands }

// child returns the index of n's child for item, or -1.
func (t *trie) child(n int32, item dataset.Item) int32 {
	ch := t.nodes[n].children
	i := sort.Search(len(ch), func(k int) bool { return ch[k].item >= item })
	if i < len(ch) && ch[i].item == item {
		return ch[i].node
	}
	return -1
}

// Add inserts the itemset (which must be sorted ascending and
// duplicate-free — the caller canonicalises) and reports whether it was
// new. Re-inserting an existing candidate is a no-op.
func (t *trie) Add(items []dataset.Item) bool {
	n := int32(0)
	for _, it := range items {
		ch := t.nodes[n].children
		i := sort.Search(len(ch), func(k int) bool { return ch[k].item >= it })
		if i < len(ch) && ch[i].item == it {
			n = ch[i].node
			continue
		}
		t.nodes = append(t.nodes, trieNode{cand: -1})
		nn := int32(len(t.nodes) - 1)
		ch = append(ch, childRef{})
		copy(ch[i+1:], ch[i:])
		ch[i] = childRef{item: it, node: nn}
		t.nodes[n].children = ch
		n = nn
	}
	if t.nodes[n].cand >= 0 {
		return false
	}
	t.nodes[n].cand = int32(t.cands)
	t.cands++
	return true
}

// Count walks one normalized (sorted, duplicate-free) transaction and
// increments counts[id] for every candidate that is a subset of it. Each
// candidate is counted at most once per transaction: items are strictly
// increasing, so a subset corresponds to exactly one root-to-node path
// reached through exactly one index subsequence. The trie must not be
// mutated concurrently; counts is the caller's (per-worker) array.
func (t *trie) Count(tx dataset.Transaction, counts []uint32) {
	t.count(0, tx, counts)
}

func (t *trie) count(n int32, tx dataset.Transaction, counts []uint32) {
	node := &t.nodes[n]
	if len(node.children) == 0 {
		return
	}
	// Both the transaction and the child list are sorted ascending:
	// advance through them in lockstep instead of binary-searching every
	// transaction item from scratch.
	ch := node.children
	ci := 0
	for i := 0; i < len(tx) && ci < len(ch); i++ {
		it := tx[i]
		for ci < len(ch) && ch[ci].item < it {
			ci++
		}
		if ci == len(ch) {
			return
		}
		if ch[ci].item == it {
			c := ch[ci].node
			if id := t.nodes[c].cand; id >= 0 {
				counts[id]++
			}
			t.count(c, tx[i+1:], counts)
			ci++
		}
	}
}

// Emit appends every candidate whose global count cleared minSupport to
// out, walking the trie in lexicographic prefix order. The returned sets
// carry their exact pass-2 supports; callers wanting the canonical
// size-then-lex order (mine.LessItems) sort afterwards.
func (t *trie) Emit(counts []uint32, minSupport int, out []mine.Itemset) []mine.Itemset {
	var prefix []dataset.Item
	var walk func(n int32)
	walk = func(n int32) {
		node := &t.nodes[n]
		if id := node.cand; id >= 0 && int(counts[id]) >= minSupport {
			out = append(out, mine.Itemset{
				Items:   append([]dataset.Item(nil), prefix...),
				Support: int(counts[id]),
			})
		}
		for _, c := range node.children {
			prefix = append(prefix, c.item)
			walk(c.node)
			prefix = prefix[:len(prefix)-1]
		}
	}
	walk(0)
	return out
}
