package gen

import (
	"fmt"
	"math"

	"fpm/internal/dataset"
)

// NamedDataset bundles a generated database with the support threshold the
// paper uses for it (Table 6).
type NamedDataset struct {
	Name    string      // DS1..DS4
	Source  string      // the paper's dataset name
	Support int         // absolute support threshold, scaled
	DB      *dataset.DB //
}

// Table6 generates the four evaluation datasets of the paper's Table 6 at
// the given scale factor (1.0 = the paper's sizes; tests and default
// benchmarks use much smaller scales). Support thresholds are scaled
// proportionally so relative support — and therefore the mining search
// space shape — is preserved.
//
//	DS1  T60I10D300K   Quest synthetic, 300K tx, support 3000 (1%)
//	DS2  T70I10D300K   Quest synthetic, 300K tx, support 3000 (1%)
//	DS3  WebDocs-like  500K dense clustered documents, support 50000 (10%)
//	DS4  AP-like       1.8M short sparse random documents, support 2000
func Table6(scale float64, seed int64) []NamedDataset {
	n := func(full int) int {
		v := int(math.Round(float64(full) * scale))
		if v < 200 {
			v = 200
		}
		return v
	}
	sup := func(full int, txFull, txScaled int) int {
		v := int(math.Round(float64(full) * float64(txScaled) / float64(txFull)))
		if v < 2 {
			v = 2
		}
		return v
	}

	ds1Tx := n(300_000)
	ds2Tx := n(300_000)
	ds3Tx := n(500_000)
	ds4Tx := n(1_800_000)

	return []NamedDataset{
		{
			Name:    "DS1",
			Source:  "T60I10D300K",
			Support: sup(3000, 300_000, ds1Tx),
			DB: Quest(QuestConfig{
				Transactions: ds1Tx, AvgLen: 60, AvgPatternLen: 10,
				Items: 1000, Patterns: 300, Seed: seed + 1,
			}),
		},
		{
			Name:    "DS2",
			Source:  "T70I10D300K",
			Support: sup(3000, 300_000, ds2Tx),
			DB: Quest(QuestConfig{
				Transactions: ds2Tx, AvgLen: 70, AvgPatternLen: 10,
				Items: 1000, Patterns: 300, Seed: seed + 2,
			}),
		},
		{
			Name:    "DS3",
			Source:  "WebDocs(500K)",
			Support: sup(50_000, 500_000, ds3Tx),
			DB: Corpus(CorpusConfig{
				Docs: ds3Tx, Vocab: 5000, AvgLen: 40, ZipfS: 1.25,
				Topics: 20, TopicShare: 0.6, TopicPool: 80,
				Shuffle: false, Seed: seed + 3,
			}),
		},
		{
			Name:    "DS4",
			Source:  "AP(1.8M)",
			Support: sup(2000, 1_800_000, ds4Tx),
			DB: Corpus(CorpusConfig{
				Docs: ds4Tx, Vocab: 20000, AvgLen: 12, ZipfS: 1.08,
				Topics: 0, Shuffle: true, Seed: seed + 4,
			}),
		},
	}
}

// Describe returns a one-line summary used by the experiment harness when
// printing the Table 6 reproduction.
func (d NamedDataset) Describe() string {
	s := dataset.ComputeStats(d.DB)
	return fmt.Sprintf("%s (%s): %d tx, %d items, avg len %.1f, density %.4f, clustering %.3f, support %d",
		d.Name, d.Source, s.Transactions, s.Items, s.AvgLen, s.Density, s.Clustering, d.Support)
}
