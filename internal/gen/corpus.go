package gen

import (
	"math/rand"

	"fpm/internal/dataset"
)

// CorpusConfig parameterises the document-corpus generators that stand in
// for the WebDocs and AP datasets. Documents draw terms from a Zipf
// vocabulary; a topic model controls how strongly documents cluster (which
// is the property that determines tiling profitability per paper §4.4),
// and Shuffle controls whether the emitted transaction order is clustered
// by topic or random (which determines how much headroom lexicographic
// ordering has).
type CorpusConfig struct {
	Docs   int     // number of documents (transactions)
	Vocab  int     // vocabulary size
	AvgLen float64 // mean document length (Poisson mean)
	ZipfS  float64 // Zipf exponent (> 1); larger = more skewed head
	Topics int     // number of topics; 0 disables the topic model
	// TopicShare is the fraction of a document's terms drawn from its
	// topic's term pool rather than the global Zipf distribution.
	TopicShare float64
	// TopicPool is the number of terms in each topic's pool.
	TopicPool int
	// Shuffle randomises document order; when false documents are emitted
	// grouped by topic (a clustered layout).
	Shuffle bool
	Seed    int64
}

// Corpus generates a document-style transactional database.
func Corpus(cfg CorpusConfig) *dataset.DB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Vocab < 2 {
		cfg.Vocab = 2
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.TopicPool == 0 {
		cfg.TopicPool = 50
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Vocab-1))

	// Topic pools: each topic owns a set of preferentially co-occurring
	// terms, themselves Zipf-biased so topics share the global head.
	pools := make([][]dataset.Item, cfg.Topics)
	for i := range pools {
		pool := make([]dataset.Item, cfg.TopicPool)
		for j := range pool {
			pool[j] = dataset.Item(zipf.Uint64())
		}
		pools[i] = pool
	}

	tx := make([]dataset.Transaction, 0, cfg.Docs)
	seen := make(map[dataset.Item]bool, int(cfg.AvgLen)*2)
	emit := func(topic int) {
		size := poisson(rng, cfg.AvgLen)
		if size < 1 {
			size = 1
		}
		t := make(dataset.Transaction, 0, size)
		clear(seen)
		attempts := 0
		for len(t) < size && attempts < size*20 {
			attempts++
			var it dataset.Item
			if topic >= 0 && rng.Float64() < cfg.TopicShare {
				pool := pools[topic]
				it = pool[rng.Intn(len(pool))]
			} else {
				it = dataset.Item(zipf.Uint64())
			}
			if !seen[it] {
				seen[it] = true
				t = append(t, it)
			}
		}
		tx = append(tx, t)
	}

	if cfg.Topics > 0 {
		// Emit documents grouped by topic (clustered order).
		perTopic := cfg.Docs / cfg.Topics
		for topic := 0; topic < cfg.Topics; topic++ {
			n := perTopic
			if topic == cfg.Topics-1 {
				n = cfg.Docs - perTopic*(cfg.Topics-1)
			}
			for i := 0; i < n; i++ {
				emit(topic)
			}
		}
	} else {
		for i := 0; i < cfg.Docs; i++ {
			emit(-1)
		}
	}

	if cfg.Shuffle {
		rng.Shuffle(len(tx), func(i, j int) { tx[i], tx[j] = tx[j], tx[i] })
	}

	db := dataset.New(tx)
	if db.NumItems < cfg.Vocab {
		db.NumItems = cfg.Vocab
	}
	db.Normalize()
	return db
}
