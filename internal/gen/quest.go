// Package gen produces the synthetic workloads of the paper's evaluation
// (Table 6). It reimplements the IBM Quest synthetic data generator of
// Agrawal & Srikant (VLDB'94) for the T..I..D.. datasets, and provides
// Zipf-topic document generators that stand in for the WebDocs and AP (TREC
// Tipster) corpora, which are not redistributable. See DESIGN.md §2 for the
// substitution rationale. All generators are deterministic functions of
// their seed.
package gen

import (
	"math"
	"math/rand"

	"fpm/internal/dataset"
)

// QuestConfig parameterises the IBM Quest generator. The canonical naming
// TxxIyyDzzzK maps to AvgLen=xx, AvgPatternLen=yy, Transactions=zzz·1000.
type QuestConfig struct {
	Transactions  int     // D: number of transactions
	AvgLen        int     // T: average transaction length (Poisson mean)
	AvgPatternLen int     // I: average maximal potentially-frequent itemset length
	Items         int     // N: alphabet size (Quest default 10000; we default 1000)
	Patterns      int     // L: number of maximal potentially-frequent itemsets (default 2000)
	Corruption    float64 // mean corruption level (Quest default 0.5)
	Seed          int64
}

func (c QuestConfig) withDefaults() QuestConfig {
	if c.Items == 0 {
		c.Items = 1000
	}
	if c.Patterns == 0 {
		c.Patterns = 2000
	}
	if c.Corruption == 0 {
		c.Corruption = 0.5
	}
	return c
}

// Quest generates a transactional database following the Quest procedure:
// a pool of maximal potentially-frequent itemsets with exponentially
// distributed weights and pairwise overlap, from which transactions are
// assembled with per-pattern corruption.
func Quest(cfg QuestConfig) *dataset.DB {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	type pattern struct {
		items      []dataset.Item
		weight     float64
		corruption float64
	}

	pats := make([]pattern, cfg.Patterns)
	var totalW float64
	var prev []dataset.Item
	for i := range pats {
		size := poisson(rng, float64(cfg.AvgPatternLen))
		if size < 1 {
			size = 1
		}
		items := make([]dataset.Item, 0, size)
		used := make(map[dataset.Item]bool, size)
		// A fraction of items (exponentially distributed, mean 0.5) is
		// drawn from the previous pattern so that frequent itemsets
		// overlap, as in the original generator.
		if prev != nil {
			frac := rng.ExpFloat64() * 0.5
			if frac > 1 {
				frac = 1
			}
			take := int(frac * float64(size))
			for _, k := range rng.Perm(len(prev)) {
				if len(items) >= take {
					break
				}
				if !used[prev[k]] {
					items = append(items, prev[k])
					used[prev[k]] = true
				}
			}
		}
		for len(items) < size {
			it := dataset.Item(rng.Intn(cfg.Items))
			if !used[it] {
				items = append(items, it)
				used[it] = true
			}
		}
		w := rng.ExpFloat64()
		totalW += w
		corr := rng.NormFloat64()*0.1 + cfg.Corruption
		if corr < 0 {
			corr = 0
		}
		if corr > 1 {
			corr = 1
		}
		pats[i] = pattern{items: items, weight: w, corruption: corr}
		prev = items
	}

	// Cumulative weights for pattern selection by roulette wheel.
	cum := make([]float64, len(pats))
	acc := 0.0
	for i, p := range pats {
		acc += p.weight / totalW
		cum[i] = acc
	}
	pick := func() *pattern {
		x := rng.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return &pats[lo]
	}

	tx := make([]dataset.Transaction, cfg.Transactions)
	seen := make(map[dataset.Item]bool, cfg.AvgLen*2)
	for ti := range tx {
		size := poisson(rng, float64(cfg.AvgLen))
		if size < 1 {
			size = 1
		}
		t := make(dataset.Transaction, 0, size)
		clear(seen)
		for len(t) < size {
			p := pick()
			// Corrupt: drop items while a uniform draw stays below the
			// pattern's corruption level.
			kept := p.items
			for len(kept) > 0 && rng.Float64() < p.corruption {
				kept = kept[:len(kept)-1]
			}
			// If the pattern does not fit, Quest puts it in the
			// transaction anyway half the time and discards otherwise.
			if len(t)+len(kept) > size && rng.Intn(2) == 0 && len(t) > 0 {
				break
			}
			for _, it := range kept {
				if !seen[it] {
					seen[it] = true
					t = append(t, it)
				}
			}
			if len(kept) == 0 {
				// Fully corrupted pattern: add a random item to guarantee
				// progress.
				it := dataset.Item(rng.Intn(cfg.Items))
				if !seen[it] {
					seen[it] = true
					t = append(t, it)
				}
			}
		}
		tx[ti] = t
	}
	db := dataset.New(tx)
	if db.NumItems < cfg.Items {
		db.NumItems = cfg.Items
	}
	db.Normalize()
	return db
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's product method (adequate for the means ≤ ~100 used here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
