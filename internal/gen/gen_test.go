package gen

import (
	"math"
	"math/rand"
	"testing"

	"fpm/internal/dataset"
)

func TestQuestDeterministic(t *testing.T) {
	cfg := QuestConfig{Transactions: 200, AvgLen: 10, AvgPatternLen: 4, Items: 100, Patterns: 30, Seed: 7}
	a := Quest(cfg)
	b := Quest(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic length: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Tx {
		if len(a.Tx[i]) != len(b.Tx[i]) {
			t.Fatalf("transaction %d differs", i)
		}
		for j := range a.Tx[i] {
			if a.Tx[i][j] != b.Tx[i][j] {
				t.Fatalf("transaction %d item %d differs", i, j)
			}
		}
	}
}

func TestQuestShape(t *testing.T) {
	cfg := QuestConfig{Transactions: 1000, AvgLen: 20, AvgPatternLen: 5, Items: 200, Patterns: 50, Seed: 3}
	db := Quest(cfg)
	if db.Len() != cfg.Transactions {
		t.Fatalf("transactions = %d, want %d", db.Len(), cfg.Transactions)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	s := dataset.ComputeStats(db)
	// Mean length should land near T. Corruption and dedup shrink it a
	// bit; the fit rule inflates slightly. Accept ±40%.
	if s.AvgLen < 0.6*float64(cfg.AvgLen) || s.AvgLen > 1.4*float64(cfg.AvgLen) {
		t.Fatalf("avg length %.1f far from T=%d", s.AvgLen, cfg.AvgLen)
	}
	// The pattern pool must induce correlation: some frequent pairs must
	// co-occur far above independence. Compare top-2 items' joint support
	// with the product of marginals.
	freq := db.Frequencies()
	i1, i2 := top2(freq)
	joint := 0
	for _, tr := range db.Tx {
		if dataset.Contains(tr, i1) && dataset.Contains(tr, i2) {
			joint++
		}
	}
	indep := float64(freq[i1]) * float64(freq[i2]) / float64(db.Len())
	if float64(joint) < indep*0.5 {
		t.Fatalf("no co-occurrence structure: joint=%d vs indep=%.1f", joint, indep)
	}
}

func top2(freq []int) (dataset.Item, dataset.Item) {
	a, b := 0, 1
	if freq[b] > freq[a] {
		a, b = b, a
	}
	for i := 2; i < len(freq); i++ {
		switch {
		case freq[i] > freq[a]:
			a, b = i, a
		case freq[i] > freq[b]:
			b = i
		}
	}
	return dataset.Item(a), dataset.Item(b)
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mean := range []float64{1, 5, 20, 60} {
		n := 4000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(poisson(rng, mean))
			sum += x
			sumsq += x * x
		}
		m := sum / float64(n)
		v := sumsq/float64(n) - m*m
		if math.Abs(m-mean) > 0.15*mean+0.5 {
			t.Errorf("poisson(%v): mean %.2f", mean, m)
		}
		if math.Abs(v-mean) > 0.35*mean+1 {
			t.Errorf("poisson(%v): variance %.2f", mean, v)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if poisson(rng, 0) != 0 || poisson(rng, -3) != 0 {
		t.Fatal("poisson with nonpositive mean should be 0")
	}
}

func TestCorpusDeterministicAndValid(t *testing.T) {
	cfg := CorpusConfig{Docs: 300, Vocab: 500, AvgLen: 15, ZipfS: 1.2, Topics: 5, TopicShare: 0.5, Seed: 9}
	a := Corpus(cfg)
	b := Corpus(cfg)
	if a.Len() != b.Len() || a.Len() != cfg.Docs {
		t.Fatalf("lengths: %d %d want %d", a.Len(), b.Len(), cfg.Docs)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range a.Tx {
		for j := range a.Tx[i] {
			if a.Tx[i][j] != b.Tx[i][j] {
				t.Fatal("nondeterministic corpus")
			}
		}
	}
}

func TestCorpusZipfHead(t *testing.T) {
	db := Corpus(CorpusConfig{Docs: 1000, Vocab: 2000, AvgLen: 20, ZipfS: 1.3, Seed: 5})
	freq := db.Frequencies()
	// The most frequent item should appear in a large share of documents;
	// the median item should be rare (skewed head).
	max := 0
	nonzero := 0
	for _, f := range freq {
		if f > max {
			max = f
		}
		if f > 0 {
			nonzero++
		}
	}
	if max < db.Len()/4 {
		t.Fatalf("head item support %d too small for Zipf", max)
	}
	if nonzero < 50 {
		t.Fatalf("vocabulary collapse: only %d items used", nonzero)
	}
}

func TestCorpusClusteredVsShuffled(t *testing.T) {
	base := CorpusConfig{Docs: 600, Vocab: 800, AvgLen: 20, ZipfS: 1.2,
		Topics: 6, TopicShare: 0.7, TopicPool: 40, Seed: 21}
	clustered := Corpus(base)
	shufCfg := base
	shufCfg.Shuffle = true
	shuffled := Corpus(shufCfg)
	cs := dataset.ComputeStats(clustered).Clustering
	ss := dataset.ComputeStats(shuffled).Clustering
	if cs <= ss {
		t.Fatalf("clustered corpus (%.3f) not more clustered than shuffled (%.3f)", cs, ss)
	}
}

func TestTable6Presets(t *testing.T) {
	sets := Table6(0.003, 42)
	if len(sets) != 4 {
		t.Fatalf("Table6 returned %d datasets", len(sets))
	}
	names := []string{"DS1", "DS2", "DS3", "DS4"}
	for i, d := range sets {
		if d.Name != names[i] {
			t.Errorf("dataset %d name %s", i, d.Name)
		}
		if d.DB.Len() < 200 {
			t.Errorf("%s too small: %d", d.Name, d.DB.Len())
		}
		if d.Support < 2 {
			t.Errorf("%s support %d", d.Name, d.Support)
		}
		if err := d.DB.Validate(); err != nil {
			t.Errorf("%s invalid: %v", d.Name, err)
		}
		if d.Describe() == "" {
			t.Errorf("%s empty description", d.Name)
		}
	}
	// DS4 must be the sparsest and largest; DS3 the most clustered.
	s := make([]dataset.Stats, 4)
	for i, d := range sets {
		s[i] = dataset.ComputeStats(d.DB)
	}
	if !(s[3].Density < s[0].Density && s[3].Density < s[2].Density) {
		t.Errorf("DS4 should be sparsest: densities %v %v %v %v", s[0].Density, s[1].Density, s[2].Density, s[3].Density)
	}
	if !(s[2].Clustering > s[3].Clustering) {
		t.Errorf("DS3 clustering %.3f should exceed DS4 %.3f", s[2].Clustering, s[3].Clustering)
	}
	if !(s[3].Transactions > s[0].Transactions) {
		t.Errorf("DS4 should have the most transactions")
	}
}
