package gen

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// questNameRE matches the canonical Quest dataset naming convention used
// throughout the FIMI literature: TxxIyyDzzz with an optional K/M
// multiplier on D (e.g. T60I10D300K, T10I4D100K, T40I10D1M) and optional
// Nww alphabet-size and Lvv pattern-pool suffixes.
var questNameRE = regexp.MustCompile(`^T(\d+)I(\d+)D(\d+)([KM]?)(?:N(\d+))?(?:L(\d+))?$`)

// ParseQuestName converts a canonical TxxIyyDzzz[K|M][Nww][Lvv] dataset
// name into a QuestConfig. The seed is left zero for the caller to set.
func ParseQuestName(name string) (QuestConfig, error) {
	m := questNameRE.FindStringSubmatch(strings.ToUpper(strings.TrimSpace(name)))
	if m == nil {
		return QuestConfig{}, fmt.Errorf("gen: %q is not a TxxIyyDzzz[K|M] dataset name", name)
	}
	atoi := func(s string) int {
		v, _ := strconv.Atoi(s)
		return v
	}
	cfg := QuestConfig{
		AvgLen:        atoi(m[1]),
		AvgPatternLen: atoi(m[2]),
		Transactions:  atoi(m[3]),
	}
	switch m[4] {
	case "K":
		cfg.Transactions *= 1000
	case "M":
		cfg.Transactions *= 1_000_000
	}
	if m[5] != "" {
		cfg.Items = atoi(m[5])
	}
	if m[6] != "" {
		cfg.Patterns = atoi(m[6])
	}
	if cfg.AvgLen < 1 || cfg.Transactions < 1 {
		return QuestConfig{}, fmt.Errorf("gen: degenerate parameters in %q", name)
	}
	return cfg, nil
}

// Name renders the config's canonical TxxIyyDzzz name (with a K or M
// multiplier when exact).
func (c QuestConfig) Name() string {
	d := fmt.Sprintf("%d", c.Transactions)
	switch {
	case c.Transactions >= 1_000_000 && c.Transactions%1_000_000 == 0:
		d = fmt.Sprintf("%dM", c.Transactions/1_000_000)
	case c.Transactions >= 1000 && c.Transactions%1000 == 0:
		d = fmt.Sprintf("%dK", c.Transactions/1000)
	}
	return fmt.Sprintf("T%dI%dD%s", c.AvgLen, c.AvgPatternLen, d)
}
