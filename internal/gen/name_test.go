package gen

import "testing"

func TestParseQuestName(t *testing.T) {
	cases := []struct {
		in   string
		want QuestConfig
	}{
		{"T60I10D300K", QuestConfig{AvgLen: 60, AvgPatternLen: 10, Transactions: 300_000}},
		{"T10I4D100K", QuestConfig{AvgLen: 10, AvgPatternLen: 4, Transactions: 100_000}},
		{"T40I10D1M", QuestConfig{AvgLen: 40, AvgPatternLen: 10, Transactions: 1_000_000}},
		{"t20i6d500", QuestConfig{AvgLen: 20, AvgPatternLen: 6, Transactions: 500}},
		{" T5I2D10K ", QuestConfig{AvgLen: 5, AvgPatternLen: 2, Transactions: 10_000}},
		{"T10I4D100KN500L50", QuestConfig{AvgLen: 10, AvgPatternLen: 4, Transactions: 100_000, Items: 500, Patterns: 50}},
	}
	for _, c := range cases {
		got, err := ParseQuestName(c.in)
		if err != nil {
			t.Errorf("ParseQuestName(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseQuestName(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseQuestNameErrors(t *testing.T) {
	for _, in := range []string{"", "webdocs", "T10D100K", "TxIyDz", "T10I4", "T0I4D100"} {
		if _, err := ParseQuestName(in); err == nil {
			t.Errorf("ParseQuestName(%q) succeeded", in)
		}
	}
}

func TestQuestConfigNameRoundTrip(t *testing.T) {
	for _, name := range []string{"T60I10D300K", "T40I10D1M", "T20I6D500"} {
		cfg, err := ParseQuestName(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Name() != name {
			t.Errorf("round trip %q -> %q", name, cfg.Name())
		}
	}
}

// TestNamedGenerationMatchesExplicit guards that parsing a name and
// generating produces the same database as explicit parameters.
func TestNamedGenerationMatchesExplicit(t *testing.T) {
	cfg, err := ParseQuestName("T8I3D300")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Items = 80
	cfg.Seed = 7
	a := Quest(cfg)
	b := Quest(QuestConfig{AvgLen: 8, AvgPatternLen: 3, Transactions: 300, Items: 80, Seed: 7})
	if a.Len() != b.Len() {
		t.Fatal("named generation diverged")
	}
	for i := range a.Tx {
		for j := range a.Tx[i] {
			if a.Tx[i][j] != b.Tx[i][j] {
				t.Fatal("named generation content diverged")
			}
		}
	}
}
