package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"fpm/internal/apriori"
	"fpm/internal/dataset"
	"fpm/internal/eclat"
	"fpm/internal/fpgrowth"
	"fpm/internal/gen"
	"fpm/internal/lcm"
	"fpm/internal/mine"
)

func lcmFactory() mine.Miner { return lcm.New(lcm.Options{}) }

// kernelFactories covers all four kernels: two Splitters (lcm, eclat — the
// work-stealing path) and two plain miners (fpgrowth, apriori — the
// first-level fallback path).
func kernelFactories() map[string]func() mine.Miner {
	return map[string]func() mine.Miner{
		"lcm":      lcmFactory,
		"eclat":    func() mine.Miner { return eclat.New(eclat.Options{}) },
		"fpgrowth": func() mine.Miner { return fpgrowth.New(fpgrowth.Options{}) },
		"apriori":  func() mine.Miner { return apriori.New() },
	}
}

func testDB() *dataset.DB {
	return gen.Quest(gen.QuestConfig{Transactions: 600, AvgLen: 12, AvgPatternLen: 4, Items: 60, Patterns: 25, Seed: 99})
}

// TestMatchesSequentialAllKernels asserts that every kernel wrapped in the
// scheduler produces exactly the sequential result set, for 1, 2, 4 and
// GOMAXPROCS workers. Run under -race this also exercises the stealing
// paths of both Splitter kernels and the first-level fallback.
func TestMatchesSequentialAllKernels(t *testing.T) {
	db := testDB()
	minsup := 30
	for name, factory := range kernelFactories() {
		t.Run(name, func(t *testing.T) {
			want := mine.ResultSet{}
			if err := factory().Mine(db, minsup, want); err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("degenerate workload")
			}
			for _, workers := range []int{1, 2, 4, 0} {
				// Cutoff 1 forces spawning whenever the pool is starved,
				// maximising scheduler traffic.
				m := New(workers, factory, WithCutoff(1))
				rs := mine.ResultSet{}
				if err := m.Mine(db, minsup, rs); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !rs.Equal(want) {
					t.Fatalf("workers=%d disagrees:\n%s", workers, rs.Diff(want, 8))
				}
			}
		})
	}
}

// TestCanonicalItemOrder asserts the satellite contract: every itemset the
// parallel miner emits has its items in ascending order, matching the
// sequential kernels' canonical output.
func TestCanonicalItemOrder(t *testing.T) {
	db := testDB()
	for name, factory := range kernelFactories() {
		t.Run(name, func(t *testing.T) {
			m := New(4, factory, WithCutoff(1))
			var sc mine.SliceCollector
			if err := m.Mine(db, 30, &sc); err != nil {
				t.Fatal(err)
			}
			multi := 0
			for _, s := range sc.Sets {
				for i := 1; i < len(s.Items); i++ {
					if s.Items[i-1] >= s.Items[i] {
						t.Fatalf("non-canonical itemset %v", s.Items)
					}
				}
				if len(s.Items) > 1 {
					multi++
				}
			}
			if multi == 0 {
				t.Fatal("no multi-item sets mined; ordering untested")
			}
		})
	}
}

// TestDeterministicMerge asserts that WithDeterministicMerge yields the
// identical emission sequence run to run.
func TestDeterministicMerge(t *testing.T) {
	db := testDB()
	get := func() []mine.Itemset {
		m := New(4, lcmFactory, WithCutoff(1), WithDeterministicMerge(true))
		var sc mine.SliceCollector
		if err := m.Mine(db, 30, &sc); err != nil {
			t.Fatal(err)
		}
		return sc.Sets
	}
	a, b := get(), get()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Support != b[i].Support || !eqItems(a[i].Items, b[i].Items) {
			t.Fatalf("position %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if mine.LessItems(a[i].Items, a[i-1].Items) {
			t.Fatalf("merge not canonically sorted at %d: %v after %v", i, a[i].Items, a[i-1].Items)
		}
	}
}

func eqItems(a, b []dataset.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFirstLevelOnlyMatches covers the forced first-level path with a
// Splitter kernel (the scaling benchmark's ablation baseline).
func TestFirstLevelOnlyMatches(t *testing.T) {
	db := testDB()
	want := mine.ResultSet{}
	if err := lcmFactory().Mine(db, 30, want); err != nil {
		t.Fatal(err)
	}
	m := New(4, lcmFactory, WithFirstLevelOnly(true))
	rs := mine.ResultSet{}
	if err := m.Mine(db, 30, rs); err != nil {
		t.Fatal(err)
	}
	if !rs.Equal(want) {
		t.Fatalf("first-level disagrees:\n%s", rs.Diff(want, 8))
	}
}

// mineOrTimeout runs m.Mine and fails the test if it does not return —
// the zero-seeded-task deadlock manifests as a hang, not an error.
func mineOrTimeout(t *testing.T, m *Miner, db *dataset.DB, minSupport int, c mine.Collector) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- m.Mine(db, minSupport, c) }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("Mine did not return (scheduler deadlock)")
		return nil
	}
}

func TestEdgeCases(t *testing.T) {
	m := New(2, lcmFactory)
	if err := m.Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
		t.Fatalf("empty DB: %v", err)
	}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
		t.Fatal("minSupport 0 accepted")
	}
	// minSupport above every item frequency: no results, no error, no
	// hang — for every kernel and both decomposition paths. The
	// first-level path (non-Splitter kernels, and any kernel under
	// FirstLevelOnly) seeds zero tasks here and used to deadlock the pool.
	db := dataset.New([]dataset.Transaction{{0, 1}, {1, 2}, {0, 2}})
	for name, factory := range kernelFactories() {
		for _, firstLevel := range []bool{false, true} {
			m := New(2, factory, WithFirstLevelOnly(firstLevel))
			rs := mine.ResultSet{}
			if err := mineOrTimeout(t, m, db, 100, rs); err != nil {
				t.Fatalf("%s firstLevel=%v high support: %v", name, firstLevel, err)
			}
			if len(rs) != 0 {
				t.Fatalf("%s firstLevel=%v high support mined %d sets", name, firstLevel, len(rs))
			}
		}
	}
}

// TestNameCached asserts the satellite fix: Name must not construct a
// throwaway miner per call — the factory runs exactly once, at New time.
func TestNameCached(t *testing.T) {
	var calls atomic.Int32
	factory := func() mine.Miner {
		calls.Add(1)
		return lcm.New(lcm.Options{})
	}
	m := New(2, factory)
	after := calls.Load()
	if m.Name() != "parallel(lcm(baseline))" {
		t.Fatalf("name = %q", m.Name())
	}
	_ = m.Name()
	_ = m.Name()
	if calls.Load() != after {
		t.Fatalf("Name() invoked the factory (%d calls after New's %d)", calls.Load(), after)
	}
}

// failingMiner errors on every non-trivial mine call.
type failingMiner struct{}

func (failingMiner) Name() string { return "failing" }
func (failingMiner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	return errors.New("boom")
}

func TestErrorPropagationWithoutDeadlock(t *testing.T) {
	// Many frequent items force many first-level tasks; the failing
	// workers must not deadlock the pool, and exactly one (the first)
	// error must surface.
	db := gen.Quest(gen.QuestConfig{Transactions: 200, AvgLen: 10, AvgPatternLen: 3, Items: 40, Patterns: 15, Seed: 5})
	m := New(3, func() mine.Miner { return failingMiner{} })
	err := m.Mine(db, 5, mine.ResultSet{})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

// splitFailMiner is a Splitter whose spawned tasks fail with distinct
// errors mid-stream; it checks first-error capture and prompt
// cancellation on the work-stealing path.
type splitFailMiner struct {
	ran *atomic.Int32
}

func (splitFailMiner) Name() string { return "splitfail" }
func (s splitFailMiner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	return s.MineSplit(db, minSupport, c, nil)
}
func (s splitFailMiner) MineSplit(db *dataset.DB, minSupport int, c mine.Collector, sp mine.Spawner) error {
	for i := 0; i < 64; i++ {
		i := i
		task := func(c mine.Collector, sp mine.Spawner) error {
			s.ran.Add(1)
			return fmt.Errorf("task %d failed", i)
		}
		if sp == nil || !sp.Offer(1, task) {
			if err := task(c, sp); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestSplitterErrorFirstWinsAndStops(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0}})
	var ran atomic.Int32
	m := New(4, func() mine.Miner { return splitFailMiner{ran: &ran} }, WithCutoff(1))
	err := m.Mine(db, 1, mine.ResultSet{})
	if err == nil {
		t.Fatal("no error propagated")
	}
	// Cancellation must stop the remaining queued tasks: far fewer than
	// the 64 offered tasks may actually run.
	if n := ran.Load(); n >= 64 {
		t.Fatalf("all %d tasks ran despite first failing", n)
	}
}

// Property: parallel equals brute force on random small inputs.
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		rs := mine.ResultSet{}
		if err := New(3, lcmFactory, WithCutoff(1)).Mine(db, minsup, rs); err != nil {
			return false
		}
		if !rs.Equal(want) {
			t.Logf("seed %d minsup %d:\n%s", seed, minsup, rs.Diff(want, 5))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
