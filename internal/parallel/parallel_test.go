package parallel

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/lcm"
	"fpm/internal/mine"
)

func lcmFactory() mine.Miner { return lcm.New(lcm.Options{}) }

func TestMatchesSequential(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 600, AvgLen: 12, AvgPatternLen: 4, Items: 60, Patterns: 25, Seed: 99})
	minsup := 30
	want := mine.ResultSet{}
	if err := lcmFactory().Mine(db, minsup, want); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate workload")
	}
	for _, workers := range []int{1, 2, 4, 0} {
		m := New(workers, lcmFactory)
		rs := mine.ResultSet{}
		if err := m.Mine(db, minsup, rs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rs.Equal(want) {
			t.Fatalf("workers=%d disagrees:\n%s", workers, rs.Diff(want, 8))
		}
	}
}

func TestEdgeCases(t *testing.T) {
	m := New(2, lcmFactory)
	if err := m.Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
		t.Fatalf("empty DB: %v", err)
	}
	if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
		t.Fatal("minSupport 0 accepted")
	}
	if name := m.Name(); name == "" {
		t.Fatal("empty name")
	}
}

// failingMiner errors on every non-trivial mine call.
type failingMiner struct{}

func (failingMiner) Name() string { return "failing" }
func (failingMiner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	return errors.New("boom")
}

func TestErrorPropagationWithoutDeadlock(t *testing.T) {
	// Many frequent items force many jobs; the failing workers must not
	// deadlock the feeder.
	db := gen.Quest(gen.QuestConfig{Transactions: 200, AvgLen: 10, AvgPatternLen: 3, Items: 40, Patterns: 15, Seed: 5})
	m := New(3, func() mine.Miner { return failingMiner{} })
	err := m.Mine(db, 5, mine.ResultSet{})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

// Property: parallel equals brute force on random small inputs.
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		rs := mine.ResultSet{}
		if err := New(3, lcmFactory).Mine(db, minsup, rs); err != nil {
			return false
		}
		if !rs.Equal(want) {
			t.Logf("seed %d minsup %d:\n%s", seed, minsup, rs.Diff(want, 5))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
