package parallel

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/failpoint"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/trace"
)

// task is one schedulable unit: a weighted closure run with the executing
// worker's context (its shard collector and spawner).
type task struct {
	weight int
	run    func(w *worker) error
}

// pool is the work-stealing scheduler. Tasks live in per-worker deques:
// the owner pushes and pops at the tail (LIFO, so it keeps working on the
// most recently split — deepest, cache-hottest — subtree), thieves steal
// from the head (FIFO, so they take the oldest and therefore typically
// largest subtree, which minimises steal frequency).
type pool struct {
	workers []*worker
	cutoff  int
	name    string            // inner kernel name, for pprof labels
	rec     *metrics.Recorder // nil when metrics are disabled
	inner   string            // inner kernel's Name(), labels task spans

	idle    atomic.Int32 // workers currently hunting for work
	active  atomic.Int64 // tasks created but not yet finished
	stopped atomic.Bool  // set on first error; aborts remaining work
	cancel  *cancel.Flag // external cancellation; nil when detached

	errOnce sync.Once
	err     error

	done chan struct{} // closed when active reaches zero
	wake chan struct{} // buffered wake signals for idle workers
}

// worker is one mining goroutine. It implements mine.Spawner: kernels
// running on this worker offer subtrees through it.
type worker struct {
	id    int
	pool  *pool
	inner mine.Miner
	out   canonCollector // canonicalising view over shard
	shard mine.ShardCollector
	rng   uint64       // xorshift state for victim selection
	tk    *trace.Track // span timeline; nil when tracing is disabled

	// tasks/busyNanos accumulate per-worker utilization when metrics are
	// enabled; owned by the worker goroutine, flushed after the pool joins.
	tasks     uint64
	busyNanos int64

	mu    sync.Mutex
	deque []task
}

func newPool(workers, cutoff int, factory func() mine.Miner, rec *metrics.Recorder, name string, tracks []*trace.Track) *pool {
	p := &pool{
		cutoff: cutoff,
		rec:    rec,
		name:   name,
		done:   make(chan struct{}),
		wake:   make(chan struct{}, workers),
	}
	p.workers = make([]*worker, workers)
	for i := range p.workers {
		w := &worker{id: i, pool: p, inner: factory(), rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
		if tracks != nil {
			w.tk = tracks[i]
		}
		w.out.shard = &w.shard
		p.workers[i] = w
	}
	return p
}

// push enqueues t on worker w's deque and wakes a hunter. The caller must
// have already accounted for t in p.active.
func (p *pool) push(w *worker, t task) {
	w.mu.Lock()
	w.deque = append(w.deque, t)
	w.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// fail records the first error and aborts all outstanding work: workers
// drop queued tasks without running them, and kernels mid-recursion unwind
// via Spawner.Cancelled / accept-and-drop Offers.
func (p *pool) fail(err error) {
	p.errOnce.Do(func() {
		p.err = err
		p.stopped.Store(true)
	})
}

// run starts the workers and blocks until every task has finished (or been
// dropped after cancellation), then returns the first error.
func (p *pool) run() error {
	if p.active.Load() == 0 {
		// done is otherwise closed only by the last task retirement; with
		// an empty pool the workers would block in hunt() forever.
		close(p.done)
	}
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// Label the worker goroutine so CPU profiles attribute samples
			// to kernel and worker (`go tool pprof -tagfocus`).
			labels := pprof.Labels("fpm_kernel", p.name, "fpm_worker", strconv.Itoa(w.id))
			pprof.Do(context.Background(), labels, func(context.Context) { w.loop() })
		}(w)
	}
	wg.Wait()
	if p.rec != nil {
		for _, w := range p.workers {
			p.rec.AddWorker(metrics.WorkerStat{ID: w.id, Tasks: w.tasks, BusyNanos: w.busyNanos})
		}
	}
	if p.err != nil {
		return p.err
	}
	// A cancelled pool drains without recording an error of its own; the
	// cancellation cause is the run's result.
	return p.cancel.Err()
}

func (w *worker) loop() {
	for {
		t, ok := w.pop()
		if !ok {
			t, ok = w.hunt()
			if !ok {
				return
			}
		}
		w.runTask(t)
	}
}

// runTask executes t (unless mining was aborted or cancelled) and retires
// it; the last retirement releases every hunting worker. Cancelled pools
// keep draining: tasks are skipped, not run, so active reaches zero and the
// pool joins promptly instead of hanging.
func (w *worker) runTask(t task) {
	p := w.pool
	if !p.stopped.Load() && !p.cancel.Cancelled() {
		var t0 time.Time
		if p.rec != nil {
			t0 = time.Now()
		}
		var ts int64
		if w.tk != nil {
			ts = w.tk.Begin()
		}
		err := w.safeRun(t)
		if w.tk != nil {
			w.tk.End(ts, p.inner, trace.CatTask, int64(t.weight))
		}
		if p.rec != nil {
			w.busyNanos += int64(time.Since(t0))
			w.tasks++
		}
		if err != nil {
			p.fail(err)
		}
	}
	if p.active.Add(-1) == 0 {
		close(p.done)
	}
}

// safeRun executes the task body with panic containment: a panicking kernel
// (or an armed failpoint standing in for one) is recovered into an error
// instead of tearing down the process, so the pool records it as the first
// error, remaining tasks drain via the stopped flag, and Mine returns it.
func (w *worker) safeRun(t task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.rec.WorkerPanic()
			err = fmt.Errorf("parallel: worker %d: task panicked: %v", w.id, r)
		}
	}()
	if err := failpoint.Hit(failpoint.ParallelWorkerTask); err != nil {
		return err
	}
	return t.run(w)
}

// pop takes the newest task from the worker's own deque.
func (w *worker) pop() (task, bool) {
	w.mu.Lock()
	n := len(w.deque)
	if n == 0 {
		w.mu.Unlock()
		return task{}, false
	}
	t := w.deque[n-1]
	w.deque[n-1] = task{}
	w.deque = w.deque[:n-1]
	w.mu.Unlock()
	return t, true
}

// stealFrom takes the oldest task from victim v's deque.
func (w *worker) stealFrom(v *worker) (task, bool) {
	v.mu.Lock()
	if len(v.deque) == 0 {
		v.mu.Unlock()
		return task{}, false
	}
	t := v.deque[0]
	copy(v.deque, v.deque[1:])
	v.deque[len(v.deque)-1] = task{}
	v.deque = v.deque[:len(v.deque)-1]
	v.mu.Unlock()
	return t, true
}

// hunt is the starved path: scan victims in randomised order, then block
// until new work is pushed or the pool drains. While at least one worker
// is in hunt, p.idle is positive and Offers start being accepted.
func (w *worker) hunt() (task, bool) {
	p := w.pool
	p.idle.Add(1)
	defer p.idle.Add(-1)
	// The whole starved interval is one idle span (arg = failed full
	// victim scans); a successful steal additionally drops an instant
	// marker carrying the victim id.
	var ts, fails int64
	if w.tk != nil {
		ts = w.tk.Begin()
	}
	for {
		n := len(p.workers)
		start := int(w.nextRand() % uint64(n))
		for i := 0; i < n; i++ {
			v := p.workers[(start+i)%n]
			if v == w {
				continue
			}
			if t, ok := w.stealFrom(v); ok {
				p.rec.TaskStolen()
				if w.tk != nil {
					w.tk.End(ts, "idle", trace.CatIdle, fails)
					w.tk.Instant("steal", trace.CatSteal, int64(v.id))
				}
				return t, true
			}
		}
		p.rec.StealFailure()
		fails++
		select {
		case <-p.wake:
		case <-p.done:
			if w.tk != nil {
				w.tk.End(ts, "idle", trace.CatIdle, fails)
			}
			return task{}, false
		}
	}
}

// nextRand is a xorshift64* step — cheap thread-local randomness for
// victim selection.
func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545f4914f6cdd1d
}

// WouldSteal implements mine.Spawner: the zero-allocation spawn pre-check
// — one comparison and one atomic load — kernels run at every recursion
// node before paying for task construction.
func (w *worker) WouldSteal(weight int) bool {
	p := w.pool
	return weight >= p.cutoff && p.idle.Load() > 0 && !p.stopped.Load() && !p.cancel.Cancelled()
}

// Offer implements mine.Spawner. The common (declined) path is a plain
// comparison plus one atomic load — no locks, no allocation observable by
// other workers — so kernels can call it at every recursion node.
func (w *worker) Offer(weight int, tf mine.TaskFunc) bool {
	p := w.pool
	if p.stopped.Load() || p.cancel.Cancelled() {
		// Accept and drop: the offering kernel skips the subtree, so its
		// recursion unwinds without mining anything more.
		return true
	}
	// Kernels gate Offer on WouldSteal, so this sits off the hot path.
	p.rec.TaskOffered()
	if weight < p.cutoff || p.idle.Load() == 0 {
		return false
	}
	p.rec.TaskSpawned()
	p.active.Add(1)
	p.push(w, task{weight: weight, run: func(rw *worker) error {
		return tf(&rw.out, rw)
	}})
	return true
}

// Cancelled implements mine.Spawner.
func (w *worker) Cancelled() bool { return w.pool.stopped.Load() || w.pool.cancel.Cancelled() }

// canonCollector guarantees canonical (ascending-item) order on every
// itemset entering a shard, so parallel output is directly comparable with
// the sequential kernels'. Kernels already emit sorted itemsets on their
// common paths; the check is a linear scan and the sort runs only on the
// rare non-sorted emission.
type canonCollector struct {
	shard   *mine.ShardCollector
	scratch []dataset.Item
}

func (c *canonCollector) Collect(items []dataset.Item, support int) {
	if !sortedItems(items) {
		c.scratch = append(c.scratch[:0], items...)
		insertionSortItems(c.scratch)
		items = c.scratch
	}
	c.shard.Collect(items, support)
}

func sortedItems(items []dataset.Item) bool {
	for i := 1; i < len(items); i++ {
		if items[i-1] > items[i] {
			return false
		}
	}
	return true
}

// insertionSortItems sorts in place; itemsets are short (bounded by the
// longest transaction), so insertion sort beats sort.Slice's overhead.
func insertionSortItems(s []dataset.Item) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
