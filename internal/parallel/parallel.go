// Package parallel provides goroutine-parallel frequent itemset mining by
// first-level search-space decomposition: the subtree below each frequent
// item is an independent depth-first problem over that item's projected
// database, so subtrees can be mined concurrently by any sequential kernel
// and the results merged. This is the thread-based decomposition direction
// the paper attributes to Ghoting et al. [11] (there used for SMT cache
// sharing), realised here for multicore parallelism — the natural next
// step on the paper's own dual-core evaluation machines.
package parallel

import (
	"runtime"
	"sync"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// Miner wraps a sequential miner factory and fans the first level of the
// itemset search out over a worker pool.
type Miner struct {
	workers int
	factory func() mine.Miner
}

// New returns a parallel miner running `workers` goroutines (0 means
// GOMAXPROCS), each using its own sequential miner from factory (miners
// are not required to be concurrency-safe).
func New(workers int, factory func() mine.Miner) *Miner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Miner{workers: workers, factory: factory}
}

// Name implements mine.Miner.
func (m *Miner) Name() string { return "parallel(" + m.factory().Name() + ")" }

// Mine implements mine.Miner. Itemset emission order is nondeterministic
// across subtrees; the set of (itemset, support) results is exactly the
// sequential miner's. The collector is invoked from a single goroutine.
func (m *Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}

	freq := db.Frequencies()
	type job struct {
		item dataset.Item
	}
	jobs := make(chan job)
	results := make(chan mine.Itemset, 256)
	errs := make(chan error, m.workers)

	var wg sync.WaitGroup
	for w := 0; w < m.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inner := m.factory()
			for j := range jobs {
				e := j.item
				// The subtree below e: all frequent itemsets of the
				// projected database, each extended with e, plus {e}
				// itself.
				results <- mine.Itemset{Items: []dataset.Item{e}, Support: freq[e]}
				proj := db.Project(e)
				if proj.Len() == 0 {
					continue
				}
				var sc mine.SliceCollector
				if err := inner.Mine(proj, minSupport, &sc); err != nil {
					errs <- err
					// Keep draining so the feeder never blocks.
					for range jobs {
					}
					return
				}
				for _, s := range sc.Sets {
					items := make([]dataset.Item, 0, len(s.Items)+1)
					items = append(items, s.Items...)
					items = append(items, e)
					results <- mine.Itemset{Items: items, Support: s.Support}
				}
			}
		}()
	}

	// Feed jobs, close results when all workers are done.
	go func() {
		for e := dataset.Item(0); int(e) < db.NumItems; e++ {
			if freq[e] >= minSupport {
				jobs <- job{item: e}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	for s := range results {
		c.Collect(s.Items, s.Support)
	}
	// Drain any worker error (first one wins; the feeder goroutine closes
	// results regardless once workers exit).
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
