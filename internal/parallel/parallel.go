// Package parallel provides task-parallel frequent itemset mining with a
// work-stealing scheduler. Each worker owns a LIFO deque of subtree tasks;
// starved workers steal the oldest task from a randomised victim. A kernel
// that implements mine.Splitter offers a recursion subtree as a stealable
// task only while the pool is starved AND the subtree's estimated work
// (its projected-database weight, in item occurrences) clears a cutoff —
// below the cutoff, or with every worker busy, the owning worker recurses
// sequentially, so the common path costs one atomic load per node. This is
// the dynamic task parallelism Kambadur et al. show fits FPM's irregular
// search trees, layered over the per-worker cache-resident projections of
// Ghoting et al. [11] — the thread-level direction the paper's §6 names as
// future work on its own dual-core evaluation machines.
//
// Kernels without MineSplit still parallelise by first-level decomposition
// (one task per frequent item's subtree), scheduled through the same pool.
//
// Results are collected through per-worker mine.ShardCollector arenas —
// one slice append per itemset instead of the former per-itemset channel
// send plus allocation — and merged on the caller's goroutine once mining
// finishes, preserving the Collector single-goroutine contract.
package parallel

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"time"

	"fpm/internal/cancel"
	"fpm/internal/dataset"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/trace"
)

// DefaultCutoff is the minimum estimated subtree weight (item occurrences
// in the projected database) for a subtree to become a stealable task.
// Every spawn site reports this unit: the first-level driver uses
// dataset.ProjectedWeight, LCM uses mine.SubtreeWeight over its conditional
// databases, and Eclat's summed class supports count the same occurrences
// through the vertical representation (each support is one item's set-bit
// count over the transactions containing the prefix). Below the cutoff the
// synchronisation and task bookkeeping outweigh the subtree's work;
// 2048 occurrences ≈ a few microseconds of kernel time.
const DefaultCutoff = 2048

// Options configure a parallel Miner beyond the worker count.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cutoff is the minimum estimated subtree weight for task spawning;
	// <= 0 means DefaultCutoff.
	Cutoff int
	// Deterministic sorts the merged results canonically (by size, then
	// items) before collection, making emission order — not just the
	// result set — run-to-run stable. Costs an O(n log n) sort over all
	// results at merge time.
	Deterministic bool
	// FirstLevelOnly disables recursive task spawning even for kernels
	// that implement mine.Splitter, forcing the static first-level
	// decomposition. Used by scaling benchmarks as the ablation baseline.
	FirstLevelOnly bool
	// Metrics, when non-nil, receives the scheduler's counters: tasks
	// spawned/offered/stolen, steal failures, shard-merge time and
	// per-worker utilization. Kernel-level counters (nodes, supports) are
	// recorded by the inner miners when they are constructed with the same
	// recorder. Nil disables recording.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives span timelines: one track per worker
	// with task-run spans (labeled by the inner kernel and the subtree
	// weight), idle spans for starved intervals and steal markers. Worker
	// tracks are created once per Miner and reused across Mine calls, so a
	// tracing Miner must not run concurrent Mines. Nil disables tracing at
	// the cost of one nil check per task/hunt.
	Trace *trace.Recorder
	// Cancel, when non-nil, aborts the pool cooperatively: workers drop
	// queued tasks once it trips, Spawner.Cancelled reports true so split
	// kernels unwind mid-recursion, and Mine returns Cancel.Err(). Drivers
	// that inject the same flag into the inner-kernel factory get per-node
	// cancel latency; with only the pool flag the latency is one task.
	Cancel *cancel.Flag
	// Ctx is a convenience alternative to Cancel: when set (and Cancel is
	// nil), every Mine call arms a fresh flag from it for the duration of
	// the run. Context cancellation or deadline expiry then aborts the pool
	// and Mine returns ctx.Err().
	Ctx context.Context
}

// Miner schedules any sequential kernel over the work-stealing pool.
type Miner struct {
	opts    Options
	factory func() mine.Miner
	name    string
	inner   string         // the inner kernel's Name(), labels task spans
	tracks  []*trace.Track // per-worker trace tracks, reused across Mine calls
}

// Option mutates Options; see With*.
type Option func(*Options)

// WithCutoff sets the task-spawn weight cutoff.
func WithCutoff(n int) Option { return func(o *Options) { o.Cutoff = n } }

// WithDeterministicMerge toggles the canonically sorted merge.
func WithDeterministicMerge(on bool) Option { return func(o *Options) { o.Deterministic = on } }

// WithFirstLevelOnly forces static first-level decomposition.
func WithFirstLevelOnly(on bool) Option { return func(o *Options) { o.FirstLevelOnly = on } }

// WithMetrics routes scheduler counters into rec.
func WithMetrics(rec *metrics.Recorder) Option { return func(o *Options) { o.Metrics = rec } }

// WithTrace routes worker span timelines into tr (see Options.Trace).
func WithTrace(tr *trace.Recorder) Option { return func(o *Options) { o.Trace = tr } }

// WithCancel attaches a cooperative cancellation flag (see Options.Cancel).
func WithCancel(cf *cancel.Flag) Option { return func(o *Options) { o.Cancel = cf } }

// WithContext arms a per-run cancellation flag from ctx (see Options.Ctx).
func WithContext(ctx context.Context) Option { return func(o *Options) { o.Ctx = ctx } }

// New returns a parallel miner running opts-many workers (0 means
// GOMAXPROCS), each using its own sequential miner from factory (miners
// are not required to be concurrency-safe).
func New(workers int, factory func() mine.Miner, opts ...Option) *Miner {
	o := Options{Workers: workers}
	for _, fn := range opts {
		fn(&o)
	}
	return NewWithOptions(o, factory)
}

// NewWithOptions is New with explicit Options.
func NewWithOptions(opts Options, factory func() mine.Miner) *Miner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Cutoff <= 0 {
		opts.Cutoff = DefaultCutoff
	}
	// Cache the inner kernel's name: Name must not construct (and throw
	// away) a miner per call.
	inner := factory().Name()
	m := &Miner{opts: opts, factory: factory, name: "parallel(" + inner + ")", inner: inner}
	if opts.Trace != nil {
		// One trace track per worker slot, created once and reused across
		// Mine calls (the out-of-core miner runs one pool per chunk), so a
		// multi-chunk run stays one timeline row per worker.
		m.tracks = make([]*trace.Track, opts.Workers)
		for i := range m.tracks {
			m.tracks[i] = opts.Trace.NewTrack("worker " + strconv.Itoa(i))
		}
	}
	return m
}

// Name implements mine.Miner.
func (m *Miner) Name() string { return m.name }

// Mine implements mine.Miner. The result set equals the sequential
// kernel's, every itemset is emitted in canonical (ascending item) order,
// and the collector is invoked from this goroutine only. Emission order
// across subtrees is scheduling-dependent unless Options.Deterministic is
// set.
func (m *Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}

	cf := m.opts.Cancel
	if cf == nil && m.opts.Ctx != nil {
		var stop func()
		cf, stop = cancel.FromContext(m.opts.Ctx)
		defer stop()
	}

	p := newPool(m.opts.Workers, m.opts.Cutoff, m.factory, m.opts.Metrics, m.name, m.tracks)
	p.inner = m.inner
	p.cancel = cf

	if _, ok := p.workers[0].inner.(mine.Splitter); ok && !m.opts.FirstLevelOnly {
		m.seedSplit(p, db, minSupport)
	} else if m.seedFirstLevel(p, db, minSupport) == 0 {
		// Nothing frequent, nothing to schedule. Starting the pool with
		// zero tasks would leave every worker blocked in hunt(): done is
		// closed by the last task retirement, which never happens.
		return cf.Err()
	}

	if err := p.run(); err != nil {
		return err
	}
	if m.opts.Metrics != nil {
		t0 := time.Now()
		m.merge(p, c)
		m.opts.Metrics.AddMergeTime(time.Since(t0))
		return nil
	}
	m.merge(p, c)
	return nil
}

// seedSplit enqueues the whole database as the single root task; the
// kernel's own Offer calls fan the recursion out as soon as workers
// starve.
func (m *Miner) seedSplit(p *pool, db *dataset.DB, minSupport int) {
	p.rec.TaskSpawned()
	p.active.Add(1)
	p.push(p.workers[0], task{weight: db.Weight(), run: func(w *worker) error {
		return w.inner.(mine.Splitter).MineSplit(db, minSupport, &w.out, w)
	}})
}

// seedFirstLevel enqueues one task per frequent item and reports how many
// it seeded (zero when no item meets minSupport — the caller must not run
// the pool then). The subtree below item e is mined by the worker's
// sequential kernel over e's projected database, and every result is
// extended with e. Tasks are distributed round-robin in decreasing
// estimated-weight order so the heaviest subtrees start first (LPT-style)
// and land on distinct deques.
func (m *Miner) seedFirstLevel(p *pool, db *dataset.DB, minSupport int) int {
	freq := db.Frequencies()
	type root struct {
		item   dataset.Item
		weight int
	}
	var roots []root
	for e := dataset.Item(0); int(e) < db.NumItems; e++ {
		if freq[e] >= minSupport {
			roots = append(roots, root{item: e, weight: db.ProjectedWeight(e)})
		}
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a].weight > roots[b].weight })

	p.active.Add(int64(len(roots)))
	for i, r := range roots {
		e := r.item
		sup := freq[e]
		p.rec.TaskSpawned()
		p.push(p.workers[i%len(p.workers)], task{weight: r.weight, run: func(w *worker) error {
			// This emission happens here, not in a kernel, so no kernel
			// Local counts it.
			p.rec.AddEmitted(1)
			w.out.Collect([]dataset.Item{e}, sup)
			proj := db.Project(e)
			if proj.Len() == 0 {
				return nil
			}
			ext := extendCollector{out: &w.out, branch: e}
			return w.inner.Mine(proj, minSupport, &ext)
		}})
	}
	return len(roots)
}

// extendCollector appends the branch item to every itemset mined from a
// projected database. Projection keeps only items below the branch item,
// so appending preserves ascending order whenever the inner kernel emits
// in ascending order; canonCollector re-sorts the exceptions.
type extendCollector struct {
	out    *canonCollector
	branch dataset.Item
	buf    []dataset.Item
}

func (x *extendCollector) Collect(items []dataset.Item, support int) {
	x.buf = append(append(x.buf[:0], items...), x.branch)
	x.out.Collect(x.buf, support)
}

// merge drains every worker shard into the caller's collector on the
// calling goroutine. Fast paths: a BatchCollector takes whole shards; the
// deterministic merge sorts views over the arenas without copying sets.
func (m *Miner) merge(p *pool, c mine.Collector) {
	if m.opts.Deterministic {
		total := 0
		for _, w := range p.workers {
			total += w.shard.Len()
		}
		all := make([]mine.Itemset, 0, total)
		for _, w := range p.workers {
			for i := 0; i < w.shard.Len(); i++ {
				set, sup := w.shard.Set(i)
				all = append(all, mine.Itemset{Items: set, Support: sup})
			}
		}
		sort.Slice(all, func(a, b int) bool { return mine.LessItems(all[a].Items, all[b].Items) })
		for _, s := range all {
			c.Collect(s.Items, s.Support)
		}
		return
	}
	if bc, ok := c.(mine.BatchCollector); ok {
		for _, w := range p.workers {
			bc.CollectBatch(&w.shard)
		}
		return
	}
	for _, w := range p.workers {
		w.shard.Emit(c)
	}
}
