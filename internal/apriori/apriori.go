// Package apriori implements the classic breadth-first Apriori algorithm
// (Agrawal & Srikant, VLDB'94). The paper excludes breadth-first search
// from its tuning study "because the depth-first search algorithms are
// generally considered to be more efficient", but cites it as the baseline
// algorithm family; it is provided here so that claim is checkable (see the
// BenchmarkAprioriVsDepthFirst ablation) and as a reference miner with a
// completely different enumeration strategy for cross-validation.
package apriori

import (
	"sort"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// Miner is a level-wise Apriori frequent itemset miner.
type Miner struct{}

// New returns an Apriori miner.
func New() *Miner { return &Miner{} }

// Name implements mine.Miner.
func (*Miner) Name() string { return "apriori" }

// Mine implements mine.Miner: generate candidates level by level, prune by
// the downward-closure property, and count supports with one database scan
// per level.
func (*Miner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}

	// Level 1: frequent items.
	freq := db.Frequencies()
	var level [][]dataset.Item
	for it := dataset.Item(0); int(it) < db.NumItems; it++ {
		if freq[it] >= minSupport {
			c.Collect([]dataset.Item{it}, freq[it])
			level = append(level, []dataset.Item{it})
		}
	}

	for k := 2; len(level) > 0; k++ {
		cands := generateCandidates(level)
		if len(cands) == 0 {
			return nil
		}
		counts := make([]int, len(cands))
		for _, t := range db.Tx {
			if len(t) < k {
				continue
			}
			for ci, cand := range cands {
				if dataset.ContainsAll(t, cand) {
					counts[ci]++
				}
			}
		}
		var next [][]dataset.Item
		for ci, cand := range cands {
			if counts[ci] >= minSupport {
				c.Collect(cand, counts[ci])
				next = append(next, cand)
			}
		}
		level = next
	}
	return nil
}

// generateCandidates joins frequent (k-1)-itemsets sharing a (k-2)-prefix
// and prunes candidates with an infrequent (k-1)-subset — the classic
// apriori-gen.
func generateCandidates(level [][]dataset.Item) [][]dataset.Item {
	// Index the previous level for the prune step.
	prev := make(map[string]bool, len(level))
	for _, s := range level {
		prev[mine.Key(s)] = true
	}
	// The level is produced in lexicographic order (maintained
	// inductively); the join pairs sets with equal (k-2)-prefixes.
	sort.Slice(level, func(a, b int) bool { return lessItems(level[a], level[b]) })

	var out [][]dataset.Item
	k1 := len(level[0])
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			if !samePrefix(level[i], level[j], k1-1) {
				break
			}
			cand := make([]dataset.Item, k1+1)
			copy(cand, level[i])
			cand[k1] = level[j][k1-1]
			if !pruned(cand, prev) {
				out = append(out, cand)
			}
		}
	}
	return out
}

// pruned reports whether any (k-1)-subset of cand is missing from the
// previous level.
func pruned(cand []dataset.Item, prev map[string]bool) bool {
	sub := make([]dataset.Item, 0, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		sub = append(sub, cand[:drop]...)
		sub = append(sub, cand[drop+1:]...)
		if !prev[mine.Key(sub)] {
			return true
		}
	}
	return false
}

func samePrefix(a, b []dataset.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessItems(a, b []dataset.Item) bool {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
