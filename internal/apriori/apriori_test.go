package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

func TestHandWorked(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1, 2}, {0, 2}})
	rs := mine.ResultSet{}
	if err := New().Mine(db, 2, rs); err != nil {
		t.Fatal(err)
	}
	want := mine.ResultSet{"0": 3, "1": 2, "2": 2, "0,1": 2, "0,2": 2}
	if !rs.Equal(want) {
		t.Fatalf("apriori = %v, want %v", rs, want)
	}
}

func TestDeepLevels(t *testing.T) {
	// All transactions identical: the lattice closes at k=4.
	db := dataset.New([]dataset.Transaction{{0, 1, 2, 3}, {0, 1, 2, 3}})
	rs := mine.ResultSet{}
	if err := New().Mine(db, 2, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 15 { // 2^4 - 1
		t.Fatalf("mined %d itemsets, want 15", len(rs))
	}
	if rs["0,1,2,3"] != 2 {
		t.Fatalf("4-itemset support %d", rs["0,1,2,3"])
	}
}

func TestEdgeCases(t *testing.T) {
	if err := New().Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
		t.Fatal(err)
	}
	if err := New().Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
		t.Fatal("minSupport 0 accepted")
	}
	rs := mine.ResultSet{}
	if err := New().Mine(dataset.New([]dataset.Transaction{{0}, {1}}), 2, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("mined %v", rs)
	}
}

func TestGenerateCandidatesPrunes(t *testing.T) {
	// Frequent 2-sets: {0,1},{0,2} — join gives {0,1,2} but {1,2} is
	// absent, so the prune step must reject it.
	level := [][]dataset.Item{{0, 1}, {0, 2}}
	if got := generateCandidates(level); len(got) != 0 {
		t.Fatalf("candidates = %v, want none (pruned)", got)
	}
	// With {1,2} present the join survives.
	level = [][]dataset.Item{{0, 1}, {0, 2}, {1, 2}}
	got := generateCandidates(level)
	if len(got) != 1 || mine.Key(got[0]) != "0,1,2" {
		t.Fatalf("candidates = %v, want [0,1,2]", got)
	}
}

// Property: Apriori agrees with the brute-force oracle.
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 18, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		rs := mine.ResultSet{}
		if err := New().Mine(db, minsup, rs); err != nil {
			return false
		}
		if !rs.Equal(want) {
			t.Logf("seed %d minsup %d:\n%s", seed, minsup, rs.Diff(want, 5))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
