// Package dataset defines the in-memory transactional database model used
// by every mining kernel in this repository, together with the statistics
// that drive pattern selection.
//
// A database is a multiset of transactions; each transaction is a set of
// items drawn from a dense integer alphabet [0, NumItems). The paper (§2.1)
// views the database as an m×n boolean table A with A[i][j] = 1 iff
// transaction i contains item j; the representations in this package and in
// internal/bitvec realise the horizontal-sparse, vertical-dense and
// prefix-tree encodings of that table (paper Figure 3).
package dataset

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Item identifies a single item. Items are dense small integers so kernels
// can index frequency arrays directly. int32 halves the footprint of the
// horizontal representation relative to int, which matters for the
// cache-locality experiments.
type Item = int32

// Transaction is one row of the database: a duplicate-free, usually sorted
// set of items. The significance of item order inside a transaction is
// representation-specific; see Normalize and lexorder.Apply.
type Transaction []Item

// DB is a transactional database. The zero value is an empty database over
// an empty alphabet and is ready to use.
type DB struct {
	// Tx holds the transactions. Transaction order is not semantically
	// significant (mining results are order-independent) which is exactly
	// the freedom pattern P1 (lexicographic ordering) exploits.
	Tx []Transaction
	// NumItems is the size of the item alphabet; all items are in
	// [0, NumItems).
	NumItems int
}

// New constructs a database from raw transactions, computing the alphabet
// size from the largest item present.
func New(tx []Transaction) *DB {
	db := &DB{Tx: tx}
	for _, t := range tx {
		for _, it := range t {
			if int(it) >= db.NumItems {
				db.NumItems = int(it) + 1
			}
		}
	}
	return db
}

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.Tx) }

// Clone returns a deep copy of the database. Kernels that mutate layout
// (lexicographic ordering, projection) clone first so callers keep their
// input intact.
func (db *DB) Clone() *DB {
	out := &DB{Tx: make([]Transaction, len(db.Tx)), NumItems: db.NumItems}
	for i, t := range db.Tx {
		out.Tx[i] = append(Transaction(nil), t...)
	}
	return out
}

// Validate checks structural invariants: all items in range, and no
// duplicate items within a transaction. It does not require sortedness.
func (db *DB) Validate() error {
	seen := make(map[Item]struct{}, 64)
	for i, t := range db.Tx {
		clear(seen)
		for _, it := range t {
			if it < 0 || int(it) >= db.NumItems {
				return fmt.Errorf("dataset: transaction %d: item %d out of range [0,%d)", i, it, db.NumItems)
			}
			if _, dup := seen[it]; dup {
				return fmt.Errorf("dataset: transaction %d: duplicate item %d", i, it)
			}
			seen[it] = struct{}{}
		}
	}
	return nil
}

// Normalize sorts the items of every transaction in increasing item order
// and removes duplicates in place. Most kernels require normalized input;
// generators and readers call this before returning a database. It never
// allocates (slices.Sort, unlike a sort.Slice closure, needs no escape of
// the transaction) — the streaming reader's zero-allocation chunk path
// depends on that.
func (db *DB) Normalize() {
	for i, t := range db.Tx {
		slices.Sort(t)
		db.Tx[i] = dedupSorted(t)
	}
}

func dedupSorted(t Transaction) Transaction {
	if len(t) < 2 {
		return t
	}
	w := 1
	for r := 1; r < len(t); r++ {
		if t[r] != t[w-1] {
			t[w] = t[r]
			w++
		}
	}
	return t[:w]
}

// Frequencies returns, for each item, the number of transactions containing
// it (the item's support).
func (db *DB) Frequencies() []int {
	f := make([]int, db.NumItems)
	for _, t := range db.Tx {
		for _, it := range t {
			f[it]++
		}
	}
	return f
}

// ErrEmptyAlphabet is returned by operations that need at least one item.
var ErrEmptyAlphabet = errors.New("dataset: empty item alphabet")

// Project returns the projected (conditional) database for item: the
// transactions containing item, with item and all items >= item removed.
// This is the fundamental operation of depth-first pattern growth (§2.1):
// "recursively creates projected databases that consist of the transactions
// containing a particular item". Transactions are assumed normalized.
func (db *DB) Project(item Item) *DB {
	out := &DB{NumItems: int(item)}
	for _, t := range db.Tx {
		idx := sort.Search(len(t), func(i int) bool { return t[i] >= item })
		if idx < len(t) && t[idx] == item {
			if idx > 0 {
				out.Tx = append(out.Tx, append(Transaction(nil), t[:idx]...))
			} else {
				out.Tx = append(out.Tx, Transaction{})
			}
		}
	}
	return out
}

// Weight returns the total number of item occurrences — the count of ones
// in the paper's m×n boolean matrix. Task-parallel schedulers use it as
// the work estimate for a whole database.
func (db *DB) Weight() int {
	w := 0
	for _, t := range db.Tx {
		w += len(t)
	}
	return w
}

// ProjectedWeight returns the Weight that Project(item) would produce,
// without materialising the projection: the number of item occurrences
// strictly below item across the transactions containing item. Schedulers
// use it to size first-level subtree tasks. Transactions are assumed
// normalized.
func (db *DB) ProjectedWeight(item Item) int {
	w := 0
	for _, t := range db.Tx {
		idx := sort.Search(len(t), func(i int) bool { return t[i] >= item })
		if idx < len(t) && t[idx] == item {
			w += idx
		}
	}
	return w
}

// Stats summarises input characteristics. These are the observable features
// the paper's §4.4 ties pattern profitability to (transaction length ↔
// prefetch/aggregation; clustering ↔ tiling; input order randomness ↔ lex
// ordering) and the features internal/tune uses to select patterns.
type Stats struct {
	Transactions int     // number of transactions
	Items        int     // alphabet size
	AvgLen       float64 // mean transaction length
	MaxLen       int     // longest transaction
	Density      float64 // fraction of ones in the boolean matrix
	// Clustering measures how well consecutive transactions share items:
	// the mean Jaccard similarity of adjacent transaction pairs. High
	// values mean a tile of transactions enjoys cache reuse (tiling
	// profitable); low values mean lexicographic reordering has the most
	// room to improve locality.
	Clustering float64
}

// ComputeStats scans the database once and returns its Stats.
func ComputeStats(db *DB) Stats {
	s := Stats{Transactions: len(db.Tx), Items: db.NumItems}
	totalItems := 0
	for _, t := range db.Tx {
		totalItems += len(t)
		if len(t) > s.MaxLen {
			s.MaxLen = len(t)
		}
	}
	if len(db.Tx) > 0 {
		s.AvgLen = float64(totalItems) / float64(len(db.Tx))
	}
	if db.NumItems > 0 && len(db.Tx) > 0 {
		s.Density = float64(totalItems) / (float64(db.NumItems) * float64(len(db.Tx)))
	}
	if len(db.Tx) > 1 {
		var sum float64
		for i := 1; i < len(db.Tx); i++ {
			sum += jaccardSorted(db.Tx[i-1], db.Tx[i])
		}
		s.Clustering = sum / float64(len(db.Tx)-1)
	}
	return s
}

// jaccardSorted computes |a∩b| / |a∪b| for two sorted transactions.
func jaccardSorted(a, b Transaction) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Contains reports whether normalized (sorted) transaction t contains item.
func Contains(t Transaction, item Item) bool {
	idx := sort.Search(len(t), func(i int) bool { return t[i] >= item })
	return idx < len(t) && t[idx] == item
}

// ContainsAll reports whether sorted transaction t subsumes the sorted
// itemset set (support test used by the brute-force reference miner).
func ContainsAll(t Transaction, set []Item) bool {
	i := 0
	for _, want := range set {
		for i < len(t) && t[i] < want {
			i++
		}
		if i >= len(t) || t[i] != want {
			return false
		}
		i++
	}
	return true
}
