package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func tx(items ...Item) Transaction { return Transaction(items) }

// txsEqual compares transaction lists treating nil and empty as equal.
func txsEqual(a, b []Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestNewComputesAlphabet(t *testing.T) {
	db := New([]Transaction{tx(0, 2, 5), tx(1)})
	if db.NumItems != 6 {
		t.Fatalf("NumItems = %d, want 6", db.NumItems)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
}

func TestNewEmpty(t *testing.T) {
	db := New(nil)
	if db.NumItems != 0 || db.Len() != 0 {
		t.Fatalf("empty DB: got %+v", db)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("empty DB should validate: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := New([]Transaction{tx(0, 1), tx(2)})
	cp := db.Clone()
	cp.Tx[0][0] = 7
	if db.Tx[0][0] != 0 {
		t.Fatal("Clone shares underlying storage")
	}
	if cp.NumItems != db.NumItems {
		t.Fatal("Clone lost NumItems")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		db   *DB
		ok   bool
	}{
		{"valid", &DB{Tx: []Transaction{tx(0, 1)}, NumItems: 2}, true},
		{"out of range", &DB{Tx: []Transaction{tx(0, 5)}, NumItems: 2}, false},
		{"negative", &DB{Tx: []Transaction{tx(-1)}, NumItems: 2}, false},
		{"duplicate", &DB{Tx: []Transaction{tx(1, 1)}, NumItems: 2}, false},
		{"unsorted is fine", &DB{Tx: []Transaction{tx(1, 0)}, NumItems: 2}, true},
	}
	for _, c := range cases {
		err := c.db.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNormalizeSortsAndDedups(t *testing.T) {
	db := New([]Transaction{tx(3, 1, 3, 0, 1)})
	db.Normalize()
	want := tx(0, 1, 3)
	if !reflect.DeepEqual(db.Tx[0], want) {
		t.Fatalf("Normalize = %v, want %v", db.Tx[0], want)
	}
}

func TestNormalizeEmptyAndSingle(t *testing.T) {
	db := New([]Transaction{{}, tx(4)})
	db.Normalize()
	if len(db.Tx[0]) != 0 || !reflect.DeepEqual(db.Tx[1], tx(4)) {
		t.Fatalf("Normalize mangled trivial transactions: %v", db.Tx)
	}
}

func TestFrequencies(t *testing.T) {
	db := New([]Transaction{tx(0, 1), tx(1, 2), tx(1)})
	f := db.Frequencies()
	want := []int{1, 3, 1}
	if !reflect.DeepEqual(f, want) {
		t.Fatalf("Frequencies = %v, want %v", f, want)
	}
}

func TestProject(t *testing.T) {
	db := New([]Transaction{tx(0, 1, 2), tx(1, 2), tx(0, 2), tx(0, 1)})
	db.Normalize()
	p := db.Project(2)
	// Transactions containing item 2, keeping only items < 2.
	want := []Transaction{tx(0, 1), tx(1), tx(0)}
	if !txsEqual(p.Tx, want) {
		t.Fatalf("Project(2) = %v, want %v", p.Tx, want)
	}
	if p.NumItems != 2 {
		t.Fatalf("projected NumItems = %d, want 2", p.NumItems)
	}
}

func TestProjectAbsentItem(t *testing.T) {
	db := New([]Transaction{tx(0, 1)})
	p := db.Project(5)
	// No transaction contains 5 (alphabet is smaller), so projection empty.
	if p.Len() != 0 {
		t.Fatalf("Project(absent) = %v, want empty", p.Tx)
	}
}

func TestComputeStats(t *testing.T) {
	db := New([]Transaction{tx(0, 1), tx(0, 1), tx(2)})
	s := ComputeStats(db)
	if s.Transactions != 3 || s.Items != 3 || s.MaxLen != 2 {
		t.Fatalf("basic stats wrong: %+v", s)
	}
	if got, want := s.AvgLen, 5.0/3.0; got != want {
		t.Fatalf("AvgLen = %v, want %v", got, want)
	}
	if got, want := s.Density, 5.0/9.0; got != want {
		t.Fatalf("Density = %v, want %v", got, want)
	}
	// Adjacent Jaccards: (t0,t1)=1, (t1,t2)=0 → clustering 0.5.
	if got := s.Clustering; got != 0.5 {
		t.Fatalf("Clustering = %v, want 0.5", got)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(New(nil))
	if s != (Stats{}) {
		t.Fatalf("stats of empty DB should be zero: %+v", s)
	}
}

func TestJaccardSorted(t *testing.T) {
	cases := []struct {
		a, b Transaction
		want float64
	}{
		{tx(), tx(), 1},
		{tx(1), tx(), 0},
		{tx(1, 2), tx(1, 2), 1},
		{tx(1, 2), tx(2, 3), 1.0 / 3.0},
		{tx(1), tx(2), 0},
	}
	for _, c := range cases {
		if got := jaccardSorted(c.a, c.b); got != c.want {
			t.Errorf("jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	tr := tx(1, 3, 5)
	for _, it := range []Item{1, 3, 5} {
		if !Contains(tr, it) {
			t.Errorf("Contains(%v, %d) = false", tr, it)
		}
	}
	for _, it := range []Item{0, 2, 6} {
		if Contains(tr, it) {
			t.Errorf("Contains(%v, %d) = true", tr, it)
		}
	}
}

func TestContainsAll(t *testing.T) {
	tr := tx(1, 3, 5, 8)
	cases := []struct {
		set  []Item
		want bool
	}{
		{nil, true},
		{[]Item{1}, true},
		{[]Item{1, 8}, true},
		{[]Item{3, 5, 8}, true},
		{[]Item{2}, false},
		{[]Item{1, 2}, false},
		{[]Item{8, 9}, false},
	}
	for _, c := range cases {
		if got := ContainsAll(tr, c.set); got != c.want {
			t.Errorf("ContainsAll(%v, %v) = %v, want %v", tr, c.set, got, c.want)
		}
	}
}

// Property: Project(e) has exactly Frequencies()[e] transactions, each a
// strict prefix-restriction of a transaction containing e.
func TestProjectCountMatchesFrequencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 30, 12, 6)
		freq := db.Frequencies()
		for e := Item(0); int(e) < db.NumItems; e++ {
			if db.Project(e).Len() != freq[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize is idempotent and preserves the item set of each
// transaction.
func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 10, 8)
		db.Normalize()
		before := db.Clone()
		db.Normalize()
		return txsEqual(before.Tx, db.Tx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomDB builds a small random normalized database for property tests.
func randomDB(rng *rand.Rand, n, m, maxLen int) *DB {
	tx := make([]Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		t := make(Transaction, 0, l)
		for j := 0; j < l; j++ {
			t = append(t, Item(rng.Intn(m)))
		}
		tx[i] = t
	}
	db := New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}

func TestWeightAndProjectedWeight(t *testing.T) {
	db := New([]Transaction{{0, 1, 3}, {1, 3}, {0, 2, 3}, {2}})
	if got := db.Weight(); got != 9 {
		t.Fatalf("Weight = %d, want 9", got)
	}
	// ProjectedWeight(item) must equal Project(item).Weight().
	for it := Item(0); int(it) < db.NumItems; it++ {
		want := db.Project(it).Weight()
		if got := db.ProjectedWeight(it); got != want {
			t.Fatalf("ProjectedWeight(%d) = %d, want %d", it, got, want)
		}
	}
	empty := New(nil)
	if empty.Weight() != 0 || empty.ProjectedWeight(0) != 0 {
		t.Fatal("empty DB has nonzero weight")
	}
}
