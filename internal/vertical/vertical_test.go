package vertical

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/gen"
	"fpm/internal/mine"
)

func miners() []mine.Miner {
	return []mine.Miner{NewTidset(), NewDiffset()}
}

func TestHandWorked(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1, 2}, {0, 2}})
	want := mine.ResultSet{"0": 3, "1": 2, "2": 2, "0,1": 2, "0,2": 2}
	for _, m := range miners() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, 2, rs); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !rs.Equal(want) {
			t.Fatalf("%s = %v, want %v", m.Name(), rs, want)
		}
	}
}

func TestDiffsetDeepRecursion(t *testing.T) {
	// Identical transactions force the deepest possible recursion and
	// exercise the d(PXY) = d(PY) \ d(PX) step with empty diffs.
	db := dataset.New([]dataset.Transaction{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}})
	rs := mine.ResultSet{}
	if err := NewDiffset().Mine(db, 3, rs); err != nil {
		t.Fatal(err)
	}
	if len(rs) != 15 {
		t.Fatalf("mined %d itemsets, want 15", len(rs))
	}
	for k, v := range rs {
		if v != 3 {
			t.Fatalf("%s support %d, want 3", k, v)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	for _, m := range miners() {
		if err := m.Mine(dataset.New(nil), 1, mine.ResultSet{}); err != nil {
			t.Fatalf("%s empty: %v", m.Name(), err)
		}
		if err := m.Mine(dataset.New([]dataset.Transaction{{0}}), 0, mine.ResultSet{}); err == nil {
			t.Fatalf("%s accepted support 0", m.Name())
		}
	}
}

func TestIntersectDifference(t *testing.T) {
	a := []int32{1, 3, 5, 7, 9}
	b := []int32{3, 4, 7, 10}
	if got := intersect(a, b); !reflect.DeepEqual(got, []int32{3, 7}) {
		t.Fatalf("intersect = %v", got)
	}
	if got := difference(a, b); !reflect.DeepEqual(got, []int32{1, 5, 9}) {
		t.Fatalf("difference = %v", got)
	}
	if got := difference(nil, b); len(got) != 0 {
		t.Fatalf("difference(nil, b) = %v", got)
	}
	if got := difference(a, nil); !reflect.DeepEqual(got, a) {
		t.Fatalf("difference(a, nil) = %v", got)
	}
}

// Property: tidset and diffset miners agree with the brute-force oracle.
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 20, 8, 6)
		minsup := 1 + rng.Intn(4)
		want := mine.ResultSet{}
		if err := (mine.BruteForce{}).Mine(db, minsup, want); err != nil {
			return false
		}
		for _, m := range miners() {
			rs := mine.ResultSet{}
			if err := m.Mine(db, minsup, rs); err != nil {
				return false
			}
			if !rs.Equal(want) {
				t.Logf("%s (seed %d, minsup %d):\n%s", m.Name(), seed, minsup, rs.Diff(want, 5))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreesWithBitMatrixOnGenerated(t *testing.T) {
	db := gen.Quest(gen.QuestConfig{Transactions: 500, AvgLen: 10, AvgPatternLen: 4, Items: 60, Patterns: 25, Seed: 17})
	minsup := 25
	var want mine.ResultSet
	for _, m := range miners() {
		rs := mine.ResultSet{}
		if err := m.Mine(db, minsup, rs); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rs
			if len(want) == 0 {
				t.Fatal("degenerate workload")
			}
			continue
		}
		if !rs.Equal(want) {
			t.Fatalf("%s disagrees:\n%s", m.Name(), rs.Diff(want, 10))
		}
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
