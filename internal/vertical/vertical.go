// Package vertical implements the sparse vertical representations of the
// database (paper §3.3, Feature 1/2): per-item transaction-id lists
// (tidsets, Zaki's classic Eclat) and difference sets (diffsets, Zaki &
// Gouda KDD'03 [33], which the paper cites as an adaptive representation).
// Together with internal/eclat's dense bit matrix they realise all three
// vertical encodings, making the P2 "data structure adaptation" pattern a
// concrete, measurable choice: tidsets win on sparse data (size ∝
// occurrences), bit vectors on dense data (size ∝ transactions), diffsets
// on dense data with long prefixes (size shrinks as the recursion
// descends).
package vertical

import (
	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// TidsetMiner is a depth-first vertical miner over sparse transaction-id
// lists.
type TidsetMiner struct{}

// NewTidset returns a tidset-based Eclat miner.
func NewTidset() *TidsetMiner { return &TidsetMiner{} }

// Name implements mine.Miner.
func (*TidsetMiner) Name() string { return "eclat-tidset" }

// Mine implements mine.Miner.
func (*TidsetMiner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}
	type node struct {
		item dataset.Item
		tids []int32
	}
	occ := make([][]int32, db.NumItems)
	for ti, t := range db.Tx {
		for _, it := range t {
			occ[it] = append(occ[it], int32(ti))
		}
	}
	var roots []node
	for it := dataset.Item(0); int(it) < db.NumItems; it++ {
		if len(occ[it]) >= minSupport {
			roots = append(roots, node{item: it, tids: occ[it]})
		}
	}
	prefix := make([]dataset.Item, 0, 32)
	var rec func(class []node)
	rec = func(class []node) {
		for i, nd := range class {
			prefix = append(prefix, nd.item)
			c.Collect(prefix, len(nd.tids))
			var next []node
			for _, other := range class[i+1:] {
				tids := intersect(nd.tids, other.tids)
				if len(tids) >= minSupport {
					next = append(next, node{item: other.item, tids: tids})
				}
			}
			if len(next) > 0 {
				rec(next)
			}
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(roots)
	return nil
}

// intersect returns the sorted intersection of two increasing tid lists.
func intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// DiffsetMiner is the dEclat variant: below the first level, each node
// stores the *difference* of its parent's tidset and its own —
// d(PX) = t(P) \ t(X) — so support(PXY) = support(PX) - |d(PXY)| with
// d(PXY) = d(PY) \ d(PX). On dense databases diffsets shrink geometrically
// with depth where tidsets stay large.
type DiffsetMiner struct{}

// NewDiffset returns a diffset-based dEclat miner.
func NewDiffset() *DiffsetMiner { return &DiffsetMiner{} }

// Name implements mine.Miner.
func (*DiffsetMiner) Name() string { return "declat-diffset" }

// Mine implements mine.Miner.
func (*DiffsetMiner) Mine(db *dataset.DB, minSupport int, c mine.Collector) error {
	if minSupport < 1 {
		return mine.ErrBadSupport(minSupport)
	}
	if db.Len() == 0 {
		return nil
	}
	occ := make([][]int32, db.NumItems)
	for ti, t := range db.Tx {
		for _, it := range t {
			occ[it] = append(occ[it], int32(ti))
		}
	}
	type node struct {
		item    dataset.Item
		diff    []int32 // d(prefix∪item); at the root level the tidset
		support int
	}
	// Root level uses tidsets; the first extension converts to diffsets:
	// d(XY) = t(X) \ t(Y).
	var roots []node
	for it := dataset.Item(0); int(it) < db.NumItems; it++ {
		if len(occ[it]) >= minSupport {
			roots = append(roots, node{item: it, diff: occ[it], support: len(occ[it])})
		}
	}
	prefix := make([]dataset.Item, 0, 32)
	var rec func(class []node, rootLevel bool)
	rec = func(class []node, rootLevel bool) {
		for i, nd := range class {
			prefix = append(prefix, nd.item)
			c.Collect(prefix, nd.support)
			var next []node
			for _, other := range class[i+1:] {
				var d []int32
				if rootLevel {
					// d(XY) = t(X) \ t(Y).
					d = difference(nd.diff, other.diff)
				} else {
					// d(PXY) = d(PY) \ d(PX).
					d = difference(other.diff, nd.diff)
				}
				sup := nd.support - len(d)
				if sup >= minSupport {
					next = append(next, node{item: other.item, diff: d, support: sup})
				}
			}
			if len(next) > 0 {
				rec(next, false)
			}
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(roots, true)
	return nil
}

// difference returns a \ b for sorted increasing lists.
func difference(a, b []int32) []int32 {
	out := make([]int32, 0, len(a))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
