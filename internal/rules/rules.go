// Package rules derives association rules from frequent itemsets — the
// application frequent pattern mining was introduced for (Agrawal,
// Imielinski & Swami, SIGMOD'93, the paper's [2]). It implements the
// classic ap-genrules procedure: consequents are grown level-wise and
// pruned with the anti-monotonicity of confidence (if A∪B\{c} → {c} fails
// the confidence threshold, every rule with a consequent containing {c}
// derived from the same itemset fails too).
package rules

import (
	"sort"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// Rule is an association rule Antecedent → Consequent.
type Rule struct {
	Antecedent []dataset.Item
	Consequent []dataset.Item
	// Support is the absolute support of Antecedent ∪ Consequent.
	Support int
	// Confidence is support(A∪C) / support(A).
	Confidence float64
	// Lift is confidence / (support(C)/N): >1 means positive correlation.
	Lift float64
	// Leverage is support(A∪C)/N − support(A)/N · support(C)/N.
	Leverage float64
}

// Params bound the generated rule set.
type Params struct {
	// MinConfidence is the confidence threshold in (0, 1].
	MinConfidence float64
	// MinLift drops rules at or below this lift; 0 keeps everything.
	MinLift float64
	// MaxConsequent caps consequent size; 0 means no cap.
	MaxConsequent int
}

// Generate derives all rules meeting the thresholds from a complete
// frequent itemset collection (as produced by any of the miners with a
// SliceCollector). numTransactions is the database size, needed for lift
// and leverage. The collection must be downward closed — every subset of a
// listed itemset must be listed — which holds for all-frequent mining
// output.
func Generate(sets []mine.Itemset, numTransactions int, p Params) []Rule {
	if numTransactions <= 0 || len(sets) == 0 {
		return nil
	}
	// Canonicalize item order: the split arithmetic below requires
	// increasing item order, which not every miner guarantees.
	canon := make([]mine.Itemset, len(sets))
	support := make(map[string]int, len(sets))
	for i, s := range sets {
		items := append([]dataset.Item(nil), s.Items...)
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		canon[i] = mine.Itemset{Items: items, Support: s.Support}
		support[mine.Key(items)] = s.Support
	}
	n := float64(numTransactions)

	var out []Rule
	for _, s := range canon {
		if len(s.Items) < 2 {
			continue
		}
		// Level 1 consequents: single items.
		var level [][]dataset.Item
		for _, it := range s.Items {
			level = append(level, []dataset.Item{it})
		}
		for len(level) > 0 {
			var survivors [][]dataset.Item
			for _, cons := range level {
				if len(cons) >= len(s.Items) {
					continue
				}
				ante := subtract(s.Items, cons)
				anteSup, ok := support[mine.Key(ante)]
				if !ok || anteSup == 0 {
					continue
				}
				conf := float64(s.Support) / float64(anteSup)
				if conf < p.MinConfidence {
					continue // pruned: no superset consequent can pass
				}
				survivors = append(survivors, cons)
				consSup := support[mine.Key(cons)]
				if consSup == 0 {
					continue
				}
				lift := conf / (float64(consSup) / n)
				if p.MinLift > 0 && lift <= p.MinLift {
					continue
				}
				out = append(out, Rule{
					Antecedent: ante,
					Consequent: append([]dataset.Item(nil), cons...),
					Support:    s.Support,
					Confidence: conf,
					Lift:       lift,
					Leverage:   float64(s.Support)/n - (float64(anteSup)/n)*(float64(consSup)/n),
				})
			}
			if p.MaxConsequent > 0 && len(level[0]) >= p.MaxConsequent {
				break
			}
			level = growConsequents(survivors)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Confidence != out[b].Confidence {
			return out[a].Confidence > out[b].Confidence
		}
		return out[a].Lift > out[b].Lift
	})
	return out
}

// growConsequents joins k-item consequents sharing a (k-1)-prefix into
// (k+1)-item candidates — apriori-gen over the surviving consequents.
func growConsequents(level [][]dataset.Item) [][]dataset.Item {
	if len(level) < 2 {
		return nil
	}
	sort.Slice(level, func(a, b int) bool { return lessItems(level[a], level[b]) })
	k := len(level[0])
	var next [][]dataset.Item
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			if !samePrefix(level[i], level[j], k-1) {
				break
			}
			cand := make([]dataset.Item, k+1)
			copy(cand, level[i])
			cand[k] = level[j][k-1]
			next = append(next, cand)
		}
	}
	return next
}

// subtract returns sorted items minus sorted cons (set difference).
func subtract(items, cons []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, 0, len(items)-len(cons))
	j := 0
	for _, v := range items {
		if j < len(cons) && cons[j] == v {
			j++
			continue
		}
		out = append(out, v)
	}
	return out
}

func samePrefix(a, b []dataset.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessItems(a, b []dataset.Item) bool {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
