package rules

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
	"fpm/internal/mine"
)

// minedSets runs the brute-force miner and returns the complete frequent
// collection.
func minedSets(t testing.TB, db *dataset.DB, minsup int) []mine.Itemset {
	t.Helper()
	var sc mine.SliceCollector
	if err := (mine.BruteForce{}).Mine(db, minsup, &sc); err != nil {
		t.Fatal(err)
	}
	return sc.Sets
}

// TestHandWorked: db = {0,1},{0,1},{0,2},{0}; n=4.
// support: {0}=4 {1}=2 {2}=1 {0,1}=2.
// Rule {1}→{0}: conf 2/2=1, lift 1/(4/4)=1. Rule {0}→{1}: conf 0.5.
func TestHandWorked(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1}, {0, 2}, {0}})
	sets := minedSets(t, db, 2)
	rules := Generate(sets, db.Len(), Params{MinConfidence: 0.9})
	if len(rules) != 1 {
		t.Fatalf("rules = %+v, want exactly {1}->{0}", rules)
	}
	r := rules[0]
	if r.Antecedent[0] != 1 || r.Consequent[0] != 0 {
		t.Fatalf("rule = %+v", r)
	}
	if r.Confidence != 1.0 || r.Support != 2 {
		t.Fatalf("confidence %.2f support %d", r.Confidence, r.Support)
	}
	if math.Abs(r.Lift-1.0) > 1e-9 {
		t.Fatalf("lift %.3f, want 1.0", r.Lift)
	}
	// Leverage: 2/4 - (2/4)(4/4) = 0.
	if math.Abs(r.Leverage) > 1e-9 {
		t.Fatalf("leverage %.3f, want 0", r.Leverage)
	}
}

func TestMultiItemConsequents(t *testing.T) {
	// Three identical transactions {0,1,2}: every split has confidence 1.
	db := dataset.New([]dataset.Transaction{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}})
	rules := Generate(minedSets(t, db, 3), db.Len(), Params{MinConfidence: 0.99})
	// From {0,1,2}: 6 splits (3 one-item + 3 two-item consequents); from
	// each 2-set: 2 splits each ×3 sets = 6. Total 12.
	if len(rules) != 12 {
		t.Fatalf("got %d rules, want 12", len(rules))
	}
	two := 0
	for _, r := range rules {
		if r.Confidence != 1.0 {
			t.Fatalf("confidence %.2f", r.Confidence)
		}
		if len(r.Consequent) == 2 {
			two++
		}
	}
	if two != 3 {
		t.Fatalf("two-item consequents = %d, want 3", two)
	}
}

func TestMaxConsequentCap(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}})
	rules := Generate(minedSets(t, db, 3), db.Len(), Params{MinConfidence: 0.5, MaxConsequent: 1})
	for _, r := range rules {
		if len(r.Consequent) > 1 {
			t.Fatalf("consequent %v exceeds cap", r.Consequent)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := Generate(nil, 10, Params{MinConfidence: 0.5}); got != nil {
		t.Fatalf("rules from nothing: %v", got)
	}
	if got := Generate([]mine.Itemset{{Items: []dataset.Item{0}, Support: 1}}, 0, Params{}); got != nil {
		t.Fatalf("rules with zero transactions: %v", got)
	}
}

// Property: every generated rule is internally consistent — confidence and
// lift recomputable from the definitional supports, antecedent and
// consequent disjoint and their union frequent — and the generator finds
// exactly the rules a brute-force split enumeration finds.
func TestAgainstBruteForceSplitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 15, 6, 5)
		minsup := 1 + rng.Intn(3)
		minconf := 0.3 + rng.Float64()*0.6
		sets := minedSets(t, db, minsup)
		support := map[string]int{}
		for _, s := range sets {
			support[mine.Key(s.Items)] = s.Support
		}

		got := map[string]bool{}
		for _, r := range Generate(sets, db.Len(), Params{MinConfidence: minconf}) {
			// Disjointness and consistency.
			u := append(append([]dataset.Item(nil), r.Antecedent...), r.Consequent...)
			if support[mine.Key(u)] != r.Support {
				return false
			}
			conf := float64(r.Support) / float64(support[mine.Key(r.Antecedent)])
			if math.Abs(conf-r.Confidence) > 1e-9 || conf < minconf {
				return false
			}
			got[mine.Key(r.Antecedent)+"=>"+mine.Key(r.Consequent)] = true
		}

		// Brute force: all splits of all itemsets with |s|>=2.
		want := 0
		for _, s := range sets {
			k := len(s.Items)
			if k < 2 {
				continue
			}
			for m := 1; m < (1 << k); m++ {
				var ante, cons []dataset.Item
				for i := 0; i < k; i++ {
					if m&(1<<i) != 0 {
						cons = append(cons, s.Items[i])
					} else {
						ante = append(ante, s.Items[i])
					}
				}
				if len(ante) == 0 || len(cons) == 0 {
					continue
				}
				conf := float64(s.Support) / float64(support[mine.Key(ante)])
				if conf >= minconf {
					want++
					if !got[mine.Key(ante)+"=>"+mine.Key(cons)] {
						t.Logf("missing rule %v => %v (seed %d)", ante, cons, seed)
						return false
					}
				}
			}
		}
		return want == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedByConfidence(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 1}, {0, 1}, {0, 2}, {1}, {0}})
	rules := Generate(minedSets(t, db, 1), db.Len(), Params{MinConfidence: 0.1})
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence+1e-12 {
			t.Fatalf("rules not sorted at %d", i)
		}
	}
}

func randomDB(rng *rand.Rand, n, m, maxLen int) *dataset.DB {
	tx := make([]dataset.Transaction, n)
	for i := range tx {
		l := rng.Intn(maxLen + 1)
		tr := make(dataset.Transaction, 0, l)
		for j := 0; j < l; j++ {
			tr = append(tr, dataset.Item(rng.Intn(m)))
		}
		tx[i] = tr
	}
	db := dataset.New(tx)
	if db.NumItems < m {
		db.NumItems = m
	}
	db.Normalize()
	return db
}
