// Package fimi reads and writes the flat text format used by the FIMI'03/'04
// Frequent Itemset Mining Implementations workshops, the venue whose winning
// codes (LCM, FP-Growth, Eclat) the paper tunes. Each line is one
// transaction: whitespace-separated decimal item identifiers. Blank lines
// denote empty transactions and are preserved.
package fimi

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"fpm/internal/dataset"
	"fpm/internal/failpoint"
)

// MaxLineBytes is the largest transaction line the readers accept. Lines
// beyond it (16 MiB of text is far past any real FIMI dataset) indicate a
// file that is not line-structured FIMI at all, and are reported as a
// parse error rather than an opaque scanner failure.
const MaxLineBytes = 1 << 24

// newScanner returns a line scanner with the package's buffer policy. The
// byte stream is routed through the fimi.read failpoint, so robustness
// tests can inject read errors and short reads under every reader in this
// package; with no failpoint armed the stream is passed through untouched.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(failpoint.WrapReader(failpoint.FimiRead, r))
	sc.Buffer(make([]byte, 0, 1<<20), MaxLineBytes)
	return sc
}

// scanErr converts a scanner failure into the package's error form. A
// bufio.ErrTooLong means the line after the last delivered one overflowed
// the buffer, so it is attributed to line lastLine+1 with an actionable
// message instead of the scanner's bare "token too long".
func scanErr(err error, lastLine int) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("fimi: line %d: transaction line exceeds 16MiB (%w); input is not line-structured FIMI", lastLine+1, err)
	}
	return fmt.Errorf("fimi: %w", err)
}

// Read parses a FIMI-format stream into a database. Items may appear in any
// order and may repeat inside a line; the returned database is normalized
// (sorted, deduplicated transactions).
func Read(r io.Reader) (*dataset.DB, error) {
	sc := newScanner(r)
	var tx []dataset.Transaction
	line := 0
	for sc.Scan() {
		line++
		t, err := parseLine(sc.Bytes(), nil)
		if err != nil {
			return nil, fmt.Errorf("fimi: line %d: %w", line, err)
		}
		tx = append(tx, t)
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr(err, line)
	}
	db := dataset.New(tx)
	db.Normalize()
	return db, nil
}

// TransactionBytes estimates the resident size of one parsed transaction:
// its items (4 bytes each) plus the slice header and Tx entry overhead.
// ReadChunks sums it to honour a chunk byte budget; the same estimator
// applied to a whole database (see DBBytes) sizes the in-memory path.
func TransactionBytes(items int) int64 { return int64(items)*4 + 48 }

// DBBytes estimates the resident size of a parsed database under the same
// accounting ReadChunks uses for its budget.
func DBBytes(db *dataset.DB) int64 {
	var n int64
	for _, t := range db.Tx {
		n += TransactionBytes(len(t))
	}
	return n
}

// ReadChunks streams a FIMI file as a sequence of bounded databases: each
// chunk holds consecutive transactions whose estimated resident size (see
// TransactionBytes) stays within budget, and is normalized exactly like
// Read's output before fn sees it. A chunk always holds at least one
// transaction, so a non-positive or undersized budget degrades to
// one-transaction chunks rather than failing. Chunk NumItems is local to
// the chunk's own alphabet; concatenating the chunks' transactions yields
// exactly the database Read returns on the same input (FuzzReadChunks
// asserts this). fn must not retain the chunk or any of its transactions —
// the chunk database and the arena backing its items are reused for the
// next chunk, which keeps steady-state streaming at zero allocations per
// chunk (the arena grows to the largest chunk once, then every later chunk
// is parsed into it in place; TestReadChunksAllocs asserts this). A
// non-nil error from fn aborts the stream and is returned verbatim; chunks
// already delivered stay delivered.
func ReadChunks(r io.Reader, budget int64, fn func(chunk *dataset.DB) error) error {
	return ReadChunksFrom(r, budget, 0, fn)
}

// ReadChunksFrom is ReadChunks starting after the first skipTx
// transactions: the skipped lines are scanned (so malformed framing still
// surfaces) but never parsed, and chunking begins at transaction skipTx
// with an empty accumulator. Because chunk boundaries depend only on the
// starting transaction and the budget — the size estimator sees the raw
// token count of each line, before normalization, and the arena reuse
// below changes where transactions live, never how they are framed —
// resuming at a boundary recorded by a checkpoint reproduces exactly the
// chunks a clean run would have produced from that point — the property
// the out-of-core resume path relies on. Skipping past the end of the
// stream yields no chunks and no error.
func ReadChunksFrom(r io.Reader, budget int64, skipTx int, fn func(chunk *dataset.DB) error) error {
	sc := newScanner(r)
	var (
		db    dataset.DB     // the reused chunk handed to fn
		arena []dataset.Item // backing store for every transaction of the current chunk
		size  int64
		line  int
	)
	// flush normalizes and delivers the accumulated chunk, then resets the
	// transaction table for reuse. The arena is deliberately NOT reset here:
	// the caller may still need the tail of it (a parsed transaction being
	// carried over a chunk boundary).
	flush := func() error {
		if len(db.Tx) == 0 {
			return nil
		}
		db.NumItems = 0
		for _, t := range db.Tx {
			for _, it := range t {
				if int(it) >= db.NumItems {
					db.NumItems = int(it) + 1
				}
			}
		}
		db.Normalize()
		err := fn(&db)
		db.Tx, size = db.Tx[:0], 0
		return err
	}
	for sc.Scan() {
		line++
		if line <= skipTx {
			continue
		}
		start := len(arena)
		var err error
		if arena, err = parseLine(sc.Bytes(), arena); err != nil {
			return fmt.Errorf("fimi: line %d: %w", line, err)
		}
		// Three-index slice: the transaction must stay fixed to its arena
		// region even if a later line regrows the arena (regrowth leaves
		// already-taken sub-slices valid on the old backing array).
		t := arena[start:len(arena):len(arena)]
		if est := TransactionBytes(len(t)); size+est > budget && len(db.Tx) > 0 {
			if err := flush(); err != nil {
				return err
			}
			// Carry t into the fresh chunk: its items still sit past the
			// flushed region; move them to the arena front (copy is
			// overlap-safe) so the arena never grows beyond one chunk.
			n := copy(arena[:cap(arena)][:len(t)], t)
			arena = arena[:n]
			t = arena[:n:n]
		}
		db.Tx = append(db.Tx, t)
		size += TransactionBytes(len(t))
	}
	if err := sc.Err(); err != nil {
		return scanErr(err, line)
	}
	return flush()
}

// CountTransactions counts the transactions (lines) of a FIMI stream
// without parsing them — the parse-free sizing scan the out-of-core miner
// runs before its first mining pass (SON partition scaling needs the total
// transaction count up front). It counts exactly the lines Read would
// parse, including blank lines and an unterminated final line.
func CountTransactions(r io.Reader) (int, error) {
	sc := newScanner(r)
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		return 0, scanErr(err, n)
	}
	return n, nil
}

// parseLine converts one whitespace-separated line into a transaction,
// appending the parsed items to t (which may be nil, or a caller-owned
// scratch buffer — the streaming reader passes its chunk arena). The
// success path performs zero allocations: tokens are parsed digit-by-digit
// in place instead of through strconv.ParseInt, whose string(...) argument
// escapes every token to the heap.
func parseLine(b []byte, t dataset.Transaction) (dataset.Transaction, error) {
	i := 0
	for i < len(b) {
		for i < len(b) && isSpace(b[i]) {
			i++
		}
		if i >= len(b) {
			break
		}
		start := i
		for i < len(b) && !isSpace(b[i]) {
			i++
		}
		v, err := parseItem(b[start:i])
		if err != nil {
			return nil, err
		}
		t = append(t, v)
	}
	return t, nil
}

// parseItem parses one decimal token with exactly the accept/reject
// behaviour of strconv.ParseInt(tok, 10, 32) followed by a v >= 0 check
// (the reference parse FuzzParseFIMI compares against): an optional sign,
// then one or more ASCII digits, value within int32. "-0" is item 0; any
// other negative, and anything past MaxInt32, is rejected.
func parseItem(b []byte) (dataset.Item, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if len(s) == 0 {
		return 0, fmt.Errorf("bad item %q: not a decimal integer", b)
	}
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad item %q: not a decimal integer", b)
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<31 { // beyond |MinInt32|: invalid whatever the sign
			return 0, fmt.Errorf("bad item %q: out of int32 range", b)
		}
	}
	if neg {
		if v != 0 {
			return 0, fmt.Errorf("negative item -%d", v)
		}
		return 0, nil
	}
	if v > 1<<31-1 {
		return 0, fmt.Errorf("bad item %q: out of int32 range", b)
	}
	return dataset.Item(v), nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// Write emits the database in FIMI format, one transaction per line.
func Write(w io.Writer, db *dataset.DB) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, t := range db.Tx {
		buf = buf[:0]
		for i, it := range t {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(it), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("fimi: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("fimi: %w", err)
	}
	return nil
}

// ReadFile loads a FIMI file from disk.
func ReadFile(path string) (*dataset.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fimi: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// WriteFile stores the database to disk in FIMI format.
func WriteFile(path string, db *dataset.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fimi: %w", err)
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fimi: %w", err)
	}
	return nil
}
