// Package fimi reads and writes the flat text format used by the FIMI'03/'04
// Frequent Itemset Mining Implementations workshops, the venue whose winning
// codes (LCM, FP-Growth, Eclat) the paper tunes. Each line is one
// transaction: whitespace-separated decimal item identifiers. Blank lines
// denote empty transactions and are preserved.
package fimi

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"

	"fpm/internal/dataset"
)

// Read parses a FIMI-format stream into a database. Items may appear in any
// order and may repeat inside a line; the returned database is normalized
// (sorted, deduplicated transactions).
func Read(r io.Reader) (*dataset.DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var tx []dataset.Transaction
	line := 0
	for sc.Scan() {
		line++
		t, err := parseLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("fimi: line %d: %w", line, err)
		}
		tx = append(tx, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fimi: %w", err)
	}
	db := dataset.New(tx)
	db.Normalize()
	return db, nil
}

// parseLine converts one whitespace-separated line into a transaction
// without allocating intermediate strings.
func parseLine(b []byte) (dataset.Transaction, error) {
	var t dataset.Transaction
	i := 0
	for i < len(b) {
		for i < len(b) && isSpace(b[i]) {
			i++
		}
		if i >= len(b) {
			break
		}
		start := i
		for i < len(b) && !isSpace(b[i]) {
			i++
		}
		v, err := strconv.ParseInt(string(b[start:i]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad item %q: %w", b[start:i], err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative item %d", v)
		}
		t = append(t, dataset.Item(v))
	}
	return t, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// Write emits the database in FIMI format, one transaction per line.
func Write(w io.Writer, db *dataset.DB) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, t := range db.Tx {
		buf = buf[:0]
		for i, it := range t {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(it), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("fimi: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("fimi: %w", err)
	}
	return nil
}

// ReadFile loads a FIMI file from disk.
func ReadFile(path string) (*dataset.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fimi: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// WriteFile stores the database to disk in FIMI format.
func WriteFile(path string, db *dataset.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fimi: %w", err)
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fimi: %w", err)
	}
	return nil
}
