package fimi

// Benchmarks for the streaming parse hot path: the per-line tokenizer and
// the chunked out-of-core reader. Both are measured with allocation
// reporting — the zero-allocation streaming work (EXPERIMENTS.md, "Layout
// patterns on the production paths") is asserted by the companion
// allocation-regression tests and tracked here as allocs/op.

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"fpm/internal/dataset"
)

// benchCorpus builds an in-memory FIMI stream of n transactions with
// Zipf-flavoured item draws (low ids hot), the shape real basket data has.
func benchCorpus(n, avgLen, vocab int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(2*avgLen)
		for j := 0; j < l; j++ {
			if j > 0 {
				buf.WriteByte(' ')
			}
			// Square the draw to skew toward small ids.
			f := rng.Float64()
			buf.WriteString(strconv.Itoa(int(f * f * float64(vocab))))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func BenchmarkReadChunks(b *testing.B) {
	data := benchCorpus(20000, 12, 2000, 7)
	for _, budget := range []int64{16 << 10, 256 << 10} {
		budget := budget
		name := "budget-" + strconv.FormatInt(budget>>10, 10) + "K"
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tx := 0
				err := ReadChunks(bytes.NewReader(data), budget, func(chunk *dataset.DB) error {
					tx += chunk.Len()
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if tx != 20000 {
					b.Fatalf("lost transactions: %d", tx)
				}
			}
		})
	}
}

func BenchmarkRead(b *testing.B) {
	data := benchCorpus(20000, 12, 2000, 7)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, err := Read(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if db.Len() != 20000 {
			b.Fatal("lost transactions")
		}
	}
}
