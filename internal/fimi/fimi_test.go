package fimi

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
)

// txsEqual compares transaction lists treating nil and empty as equal.
func txsEqual(a, b []dataset.Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestReadBasic(t *testing.T) {
	in := "1 2 3\n4 5\n\n7\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []dataset.Transaction{{1, 2, 3}, {4, 5}, {}, {7}}
	if !txsEqual(db.Tx, want) {
		t.Fatalf("Read = %v, want %v", db.Tx, want)
	}
	if db.NumItems != 8 {
		t.Fatalf("NumItems = %d, want 8", db.NumItems)
	}
}

func TestReadNormalizes(t *testing.T) {
	db, err := Read(strings.NewReader("3 1 3 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Transaction{1, 2, 3}
	if !reflect.DeepEqual(db.Tx[0], want) {
		t.Fatalf("Read = %v, want %v", db.Tx[0], want)
	}
}

func TestReadWhitespaceVariants(t *testing.T) {
	db, err := Read(strings.NewReader("  1\t2  \r\n3 \n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []dataset.Transaction{{1, 2}, {3}}
	if !txsEqual(db.Tx, want) {
		t.Fatalf("Read = %v, want %v", db.Tx, want)
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"1 x 2\n", "-3\n", "999999999999999999999\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestWriteFormat(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{1, 2}, {}, {3}})
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "1 2\n\n3\n"; got != want {
		t.Fatalf("Write = %q, want %q", got, want)
	}
}

func TestRoundTripFile(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 3, 9}, {1}, {}, {2, 4}})
	path := filepath.Join(t.TempDir(), "db.dat")
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !txsEqual(back.Tx, db.Tx) {
		t.Fatalf("round trip = %v, want %v", back.Tx, db.Tx)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.dat")); err == nil {
		t.Fatal("ReadFile(missing) succeeded")
	}
}

// Property: Write∘Read is the identity on normalized databases.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		tx := make([]dataset.Transaction, n)
		for i := range tx {
			l := rng.Intn(8)
			tr := make(dataset.Transaction, 0, l)
			for j := 0; j < l; j++ {
				tr = append(tr, dataset.Item(rng.Intn(50)))
			}
			tx[i] = tr
		}
		db := dataset.New(tx)
		db.Normalize()
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return txsEqual(back.Tx, db.Tx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
