package fimi

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"fpm/internal/dataset"
)

// txsEqual compares transaction lists treating nil and empty as equal.
func txsEqual(a, b []dataset.Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestReadBasic(t *testing.T) {
	in := "1 2 3\n4 5\n\n7\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []dataset.Transaction{{1, 2, 3}, {4, 5}, {}, {7}}
	if !txsEqual(db.Tx, want) {
		t.Fatalf("Read = %v, want %v", db.Tx, want)
	}
	if db.NumItems != 8 {
		t.Fatalf("NumItems = %d, want 8", db.NumItems)
	}
}

func TestReadNormalizes(t *testing.T) {
	db, err := Read(strings.NewReader("3 1 3 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Transaction{1, 2, 3}
	if !reflect.DeepEqual(db.Tx[0], want) {
		t.Fatalf("Read = %v, want %v", db.Tx[0], want)
	}
}

func TestReadWhitespaceVariants(t *testing.T) {
	db, err := Read(strings.NewReader("  1\t2  \r\n3 \n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []dataset.Transaction{{1, 2}, {3}}
	if !txsEqual(db.Tx, want) {
		t.Fatalf("Read = %v, want %v", db.Tx, want)
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"1 x 2\n", "-3\n", "999999999999999999999\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestWriteFormat(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{1, 2}, {}, {3}})
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "1 2\n\n3\n"; got != want {
		t.Fatalf("Write = %q, want %q", got, want)
	}
}

func TestRoundTripFile(t *testing.T) {
	db := dataset.New([]dataset.Transaction{{0, 3, 9}, {1}, {}, {2, 4}})
	path := filepath.Join(t.TempDir(), "db.dat")
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !txsEqual(back.Tx, db.Tx) {
		t.Fatalf("round trip = %v, want %v", back.Tx, db.Tx)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.dat")); err == nil {
		t.Fatal("ReadFile(missing) succeeded")
	}
}

// TestReadTooLongLine is the regression test for the scanner-overflow
// diagnostic: a transaction line over MaxLineBytes used to surface as a
// bare "bufio.Scanner: token too long" with no location; it must now name
// the line and the 16MiB limit, from every reader entry point.
func TestReadTooLongLine(t *testing.T) {
	long := strings.Repeat("7 ", MaxLineBytes/2+16)
	in := "1 2\n3\n" + long + "\n"

	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("Read accepted a >16MiB line")
	}
	for _, want := range []string{"line 3", "exceeds 16MiB"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Read error %q does not mention %q", err, want)
		}
	}

	err = ReadChunks(strings.NewReader(in), 1<<20, func(*dataset.DB) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("ReadChunks error = %v, want line-3 overflow diagnostic", err)
	}

	if _, err = CountTransactions(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("CountTransactions error = %v, want line-3 overflow diagnostic", err)
	}
}

// TestReadChunksBasic pins the chunking contract: transaction-granular
// splits honouring the budget, per-chunk normalization, at least one
// transaction per chunk however small the budget, and concatenation equal
// to Read.
func TestReadChunksBasic(t *testing.T) {
	in := "3 1 3 2\n4 5\n\n7\n6 0\n"
	want, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{-1, 0, 1, 60, 120, 1 << 20} {
		var got []dataset.Transaction
		chunks := 0
		err := ReadChunks(strings.NewReader(in), budget, func(db *dataset.DB) error {
			chunks++
			if db.Len() == 0 {
				t.Fatalf("budget %d: empty chunk", budget)
			}
			if budget >= TransactionBytes(4) && DBBytes(db) > budget && db.Len() > 1 {
				t.Fatalf("budget %d: chunk of %d transactions overruns budget", budget, db.Len())
			}
			// Deep-copy: the chunk and its transactions are reused arenas
			// that must not be retained past the callback.
			for _, tr := range db.Tx {
				got = append(got, append(dataset.Transaction(nil), tr...))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !txsEqual(got, want.Tx) {
			t.Fatalf("budget %d: concatenation = %v, want %v", budget, got, want.Tx)
		}
		if budget <= 0 && chunks != len(want.Tx) {
			t.Fatalf("budget %d: %d chunks, want one per transaction (%d)", budget, chunks, len(want.Tx))
		}
		if budget == 1<<20 && chunks != 1 {
			t.Fatalf("large budget split into %d chunks", chunks)
		}
	}
}

// TestReadChunksStops verifies a callback error aborts the stream.
func TestReadChunksStops(t *testing.T) {
	sentinel := bytes.ErrTooLarge
	calls := 0
	err := ReadChunks(strings.NewReader("1\n2\n3\n"), 0, func(*dataset.DB) error {
		calls++
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring", calls)
	}
}

func TestCountTransactions(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0},
		{"\n", 1},
		{"1 2\n3\n", 2},
		{"1 2\n\n3", 3}, // blank line and unterminated final line both count
	} {
		n, err := CountTransactions(strings.NewReader(tc.in))
		if err != nil {
			t.Fatal(err)
		}
		if n != tc.want {
			t.Errorf("CountTransactions(%q) = %d, want %d", tc.in, n, tc.want)
		}
	}
}

// Property: Write∘Read is the identity on normalized databases.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		tx := make([]dataset.Transaction, n)
		for i := range tx {
			l := rng.Intn(8)
			tr := make(dataset.Transaction, 0, l)
			for j := 0; j < l; j++ {
				tr = append(tr, dataset.Item(rng.Intn(50)))
			}
			tx[i] = tr
		}
		db := dataset.New(tx)
		db.Normalize()
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return txsEqual(back.Tx, db.Tx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
