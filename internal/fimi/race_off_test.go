//go:build !race

package fimi

const raceEnabled = false
