package fimi

// Allocation-regression tests for the zero-allocation streaming work (see
// EXPERIMENTS.md, "Layout patterns on the production paths"): the per-line
// tokenizer must not allocate when given a scratch buffer, and the chunked
// reader's per-chunk marginal allocation cost must be zero once its arena
// has warmed up — allocations must not scale with the number of
// transactions or chunks.

import (
	"bytes"
	"testing"

	"fpm/internal/dataset"
)

func TestParseLineAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	line := []byte("12 345 6789 0 42 2147483647 7 7 19")
	scratch := make(dataset.Transaction, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		tx, err := parseLine(line, scratch[:0])
		if err != nil || len(tx) != 9 {
			t.Fatalf("parseLine = %v, %v", tx, err)
		}
	}); n != 0 {
		t.Fatalf("parseLine allocates %.1f times per line, want 0", n)
	}
}

// TestReadChunksAllocs pins the O(1)-per-chunk allocation property: a
// stream with 8× the transactions (and thus ~8× the chunks at the same
// budget) must not cost measurably more allocations per call — the arena
// and chunk table are reused, so the marginal cost of a chunk is zero.
func TestReadChunksAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const budget = 8 << 10
	run := func(data []byte, want int) float64 {
		return testing.AllocsPerRun(5, func() {
			got := 0
			err := ReadChunks(bytes.NewReader(data), budget, func(chunk *dataset.DB) error {
				got += chunk.Len()
				return nil
			})
			if err != nil || got != want {
				t.Fatalf("ReadChunks: %d transactions, err %v", got, err)
			}
		})
	}
	small := run(benchCorpus(1000, 12, 500, 3), 1000)
	large := run(benchCorpus(8000, 12, 500, 3), 8000)
	// Identical line-length distribution and budget give both runs the
	// same steady-state arena; the slack absorbs growth-path noise.
	if large > small+8 {
		t.Fatalf("allocations scale with input: %.0f for 1000 tx vs %.0f for 8000 tx", small, large)
	}
}
