package fimi

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzRead exercises the FIMI parser with arbitrary byte input: it must
// never panic, and on success the parsed database must validate and
// round-trip through Write/Read to the identical normalized form.
// (Runs its seed corpus under plain `go test`; explore further with
// `go test -fuzz=FuzzRead ./internal/fimi`.)
// FuzzParseFIMI targets the single-line tokenizer directly — the layer
// below FuzzRead, so crashes localize to parseLine rather than the scanner
// or normalization. parseLine must never panic, and its output is checked
// against an independent reference parse (strings.Fields + ParseInt): the
// two must agree on success/failure and, on success, on every item value.
// A checked-in seed corpus lives in testdata/fuzz/FuzzParseFIMI; explore
// further with `go test -fuzz=FuzzParseFIMI ./internal/fimi`.
func FuzzParseFIMI(f *testing.F) {
	seeds := []string{
		"",
		"1 2 3",
		"0",
		"  42\t7  \r",
		"2147483647",
		"2147483648", // overflows int32: must error, not wrap
		"-5",
		"1.5",
		"12x",
		"\x00",
		strings.Repeat("9 ", 500),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.ContainsRune(line, '\n') {
			// parseLine's contract is a single scanner line.
			return
		}
		got, err := parseLine(line)

		// Reference parse. strings.Fields splits on unicode whitespace;
		// restrict it to parseLine's space set so tokenization matches.
		fields := strings.FieldsFunc(string(line), func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\r'
		})
		var want []int64
		wantErr := false
		for _, fd := range fields {
			v, perr := strconv.ParseInt(fd, 10, 32)
			if perr != nil || v < 0 {
				wantErr = true
				break
			}
			want = append(want, v)
		}

		if wantErr {
			if err == nil {
				t.Fatalf("parseLine(%q) accepted a line the reference parse rejects: %v", line, got)
			}
			return
		}
		if err != nil {
			t.Fatalf("parseLine(%q) rejected a valid line: %v", line, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parseLine(%q): %d items, reference %d", line, len(got), len(want))
		}
		for i := range got {
			if int64(got[i]) != want[i] {
				t.Fatalf("parseLine(%q): item %d = %d, reference %d", line, i, got[i], want[i])
			}
		}
	})
}

func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"1 2 3\n4 5\n",
		"0\n0 0 0\n",
		"  7\t8  \r\n",
		"999999999999999999999\n",
		"-1\n",
		"a b c\n",
		"1 2\n\n\n3\n",
		strings.Repeat("1 ", 1000) + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if verr := db.Validate(); verr != nil {
			t.Fatalf("parsed database invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, db); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("re-parse failed: %v", rerr)
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), db.Len())
		}
		for i := range db.Tx {
			if len(back.Tx[i]) != len(db.Tx[i]) {
				t.Fatalf("transaction %d changed", i)
			}
			for j := range db.Tx[i] {
				if back.Tx[i][j] != db.Tx[i][j] {
					t.Fatalf("transaction %d item %d changed", i, j)
				}
			}
		}
	})
}
