package fimi

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the FIMI parser with arbitrary byte input: it must
// never panic, and on success the parsed database must validate and
// round-trip through Write/Read to the identical normalized form.
// (Runs its seed corpus under plain `go test`; explore further with
// `go test -fuzz=FuzzRead ./internal/fimi`.)
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"1 2 3\n4 5\n",
		"0\n0 0 0\n",
		"  7\t8  \r\n",
		"999999999999999999999\n",
		"-1\n",
		"a b c\n",
		"1 2\n\n\n3\n",
		strings.Repeat("1 ", 1000) + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if verr := db.Validate(); verr != nil {
			t.Fatalf("parsed database invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, db); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("re-parse failed: %v", rerr)
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), db.Len())
		}
		for i := range db.Tx {
			if len(back.Tx[i]) != len(db.Tx[i]) {
				t.Fatalf("transaction %d changed", i)
			}
			for j := range db.Tx[i] {
				if back.Tx[i][j] != db.Tx[i][j] {
					t.Fatalf("transaction %d item %d changed", i, j)
				}
			}
		}
	})
}
