package fimi

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"fpm/internal/dataset"
)

// FuzzRead exercises the FIMI parser with arbitrary byte input: it must
// never panic, and on success the parsed database must validate and
// round-trip through Write/Read to the identical normalized form.
// (Runs its seed corpus under plain `go test`; explore further with
// `go test -fuzz=FuzzRead ./internal/fimi`.)
// FuzzParseFIMI targets the single-line tokenizer directly — the layer
// below FuzzRead, so crashes localize to parseLine rather than the scanner
// or normalization. parseLine must never panic, and its output is checked
// against an independent reference parse (strings.Fields + ParseInt): the
// two must agree on success/failure and, on success, on every item value.
// A checked-in seed corpus lives in testdata/fuzz/FuzzParseFIMI; explore
// further with `go test -fuzz=FuzzParseFIMI ./internal/fimi`.
func FuzzParseFIMI(f *testing.F) {
	seeds := []string{
		"",
		"1 2 3",
		"0",
		"  42\t7  \r",
		"2147483647",
		"2147483648", // overflows int32: must error, not wrap
		"-5",
		"1.5",
		"12x",
		"\x00",
		strings.Repeat("9 ", 500),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.ContainsRune(line, '\n') {
			// parseLine's contract is a single scanner line.
			return
		}
		got, err := parseLine(line, nil)

		// Reference parse. strings.Fields splits on unicode whitespace;
		// restrict it to parseLine's space set so tokenization matches.
		fields := strings.FieldsFunc(string(line), func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\r'
		})
		var want []int64
		wantErr := false
		for _, fd := range fields {
			v, perr := strconv.ParseInt(fd, 10, 32)
			if perr != nil || v < 0 {
				wantErr = true
				break
			}
			want = append(want, v)
		}

		if wantErr {
			if err == nil {
				t.Fatalf("parseLine(%q) accepted a line the reference parse rejects: %v", line, got)
			}
			return
		}
		if err != nil {
			t.Fatalf("parseLine(%q) rejected a valid line: %v", line, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parseLine(%q): %d items, reference %d", line, len(got), len(want))
		}
		for i := range got {
			if int64(got[i]) != want[i] {
				t.Fatalf("parseLine(%q): item %d = %d, reference %d", line, i, got[i], want[i])
			}
		}
	})
}

// FuzzReadChunks is the out-of-core reader's equivalence oracle: for
// arbitrary byte input and arbitrary (including non-positive) chunk
// budgets, ReadChunks must fail exactly when Read fails, and on success
// the concatenation of its chunks — transactions in order, alphabet the
// maximum over chunks — must reproduce Read's database bit for bit. This
// is the property the partitioned miner's correctness rests on: chunking
// may split the file anywhere at transaction granularity but must never
// drop, duplicate, reorder or renormalize a transaction. A checked-in
// seed corpus lives in testdata/fuzz/FuzzReadChunks; explore further with
// `go test -fuzz=FuzzReadChunks ./internal/fimi`.
func FuzzReadChunks(f *testing.F) {
	seeds := []struct {
		data   string
		budget int64
	}{
		{"", 64},
		{"1 2 3\n4 5\n", 1},
		{"1 2 3\n4 5\n", 0},
		{"1 2 3\n4 5\n", -7},
		{"3 1 3 2\n\n7\n6 0\n", 52},
		{"0\n0 0 0\n", 1 << 30},
		{"9 8\n-1\n", 64},
		{"1 2\n\n\n3", 50},
		{strings.Repeat("5 6 7\n", 40), 100},
	}
	for _, s := range seeds {
		f.Add([]byte(s.data), s.budget)
	}
	f.Fuzz(func(t *testing.T, data []byte, budget int64) {
		want, wantErr := Read(bytes.NewReader(data))

		var gotTx [][]int32
		gotItems := 0
		err := ReadChunks(bytes.NewReader(data), budget, func(chunk *dataset.DB) error {
			if chunk.Len() == 0 {
				t.Fatal("empty chunk delivered")
			}
			if chunk.NumItems > gotItems {
				gotItems = chunk.NumItems
			}
			for _, tr := range chunk.Tx {
				gotTx = append(gotTx, append([]int32(nil), tr...))
			}
			return nil
		})

		if wantErr != nil {
			if err == nil {
				t.Fatalf("Read rejects %q (%v) but ReadChunks accepted it", data, wantErr)
			}
			return
		}
		if err != nil {
			t.Fatalf("Read accepts %q but ReadChunks failed: %v", data, err)
		}
		if len(gotTx) != want.Len() {
			t.Fatalf("chunks concatenate to %d transactions, Read has %d", len(gotTx), want.Len())
		}
		for i, tr := range want.Tx {
			if len(gotTx[i]) != len(tr) {
				t.Fatalf("transaction %d: %v vs %v", i, gotTx[i], tr)
			}
			for j := range tr {
				if gotTx[i][j] != tr[j] {
					t.Fatalf("transaction %d item %d: %d vs %d", i, j, gotTx[i][j], tr[j])
				}
			}
		}
		if gotItems != want.NumItems {
			t.Fatalf("max chunk alphabet %d, Read alphabet %d", gotItems, want.NumItems)
		}
	})
}

func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"1 2 3\n4 5\n",
		"0\n0 0 0\n",
		"  7\t8  \r\n",
		"999999999999999999999\n",
		"-1\n",
		"a b c\n",
		"1 2\n\n\n3\n",
		strings.Repeat("1 ", 1000) + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if verr := db.Validate(); verr != nil {
			t.Fatalf("parsed database invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, db); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("re-parse failed: %v", rerr)
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), db.Len())
		}
		for i := range db.Tx {
			if len(back.Tx[i]) != len(db.Tx[i]) {
				t.Fatalf("transaction %d changed", i)
			}
			for j := range db.Tx[i] {
				if back.Tx[i][j] != db.Tx[i][j] {
					t.Fatalf("transaction %d item %d changed", i, j)
				}
			}
		}
	})
}
