module fpm

go 1.22
