package fpm

// Tests for the public tracing surface: fpm.WithTrace / fpm.ParallelTrace
// must produce a loadable Chrome trace-event file with one track per
// scheduler worker and the partition-phase track, without changing the
// mined results; a failing trace sink must never lose the mining results;
// and a concurrent scrape of the run's MetricsRecorder must observe
// monotonically non-decreasing counters (run under -race in CI).

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fpm/internal/fimi"
)

// traceDoc decodes the trace-event JSON object enough to inspect tracks.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int            `json:"tid"`
		Dur  *float64       `json:"dur"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]any `json:"otherData"`
}

func decodeTraceDoc(t *testing.T, b []byte) traceDoc {
	t.Helper()
	var d traceDoc
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	return d
}

// trackNames maps tid → thread_name for every announced track.
func (d traceDoc) trackNames() map[int]string {
	names := map[int]string{}
	for _, e := range d.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			names[e.Tid] = e.Args["name"].(string)
		}
	}
	return names
}

// spansOn counts complete spans per track name.
func (d traceDoc) spansOn() map[string]int {
	names := d.trackNames()
	n := map[string]int{}
	for _, e := range d.TraceEvents {
		if e.Ph == "X" {
			n[names[e.Tid]]++
		}
	}
	return n
}

// The acceptance criterion: a partitioned parallel run traced through the
// public API yields at least one span-bearing track per scheduler worker
// plus the partition-phase track, and the results match an untraced run.
func TestTracePartitionedParallelHasWorkerAndPartitionTracks(t *testing.T) {
	db := testDB()
	path := filepath.Join(t.TempDir(), "db.dat")
	if err := WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	const minsup, workers = 20, 4
	// The resident chunk is capped at budget/8 (see internal/partition), so
	// a third of the file's estimated resident size forces a few chunks
	// while keeping each chunk large enough for SON's scaled threshold.
	budget := 8 * fimi.DBBytes(db) / 3

	want, _, err := MinePartitioned(path, LCM, 0, minsup, budget, workers, ParallelCutoff(64))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	got, snap, err := MinePartitioned(path, LCM, 0, minsup, budget, workers,
		ParallelCutoff(64), WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !resultMap(got).Equal(resultMap(want)) {
		t.Fatal("tracing changed the mined results")
	}
	if snap.Chunks < 2 {
		t.Fatalf("budget did not force chunking (%d chunks); test is vacuous", snap.Chunks)
	}

	d := decodeTraceDoc(t, buf.Bytes())
	if got := d.OtherData["tool"]; got != "fpm" {
		t.Fatalf("otherData.tool = %v", got)
	}
	spans := d.spansOn()
	for i := 0; i < workers; i++ {
		name := "worker " + string(rune('0'+i))
		if spans[name] == 0 {
			t.Errorf("no spans on track %q (tracks: %v)", name, d.trackNames())
		}
	}
	if spans["partition"] == 0 {
		t.Fatalf("no spans on the partition track (tracks: %v)", d.trackNames())
	}
	// The partition track must carry the named phases.
	names := d.trackNames()
	phases := map[string]bool{}
	for _, e := range d.TraceEvents {
		if e.Ph == "X" && names[e.Tid] == "partition" {
			phases[e.Cat] = true
			if e.Name == "sizing scan" || e.Name == "pass 2 recount" {
				phases[e.Name] = true
			}
		}
	}
	for _, want := range []string{"sizing scan", "pass 2 recount", "chunk"} {
		if !phases[want] {
			t.Errorf("partition track missing %q spans (saw %v)", want, phases)
		}
	}
}

// A sequential in-memory traced run carries the kernel's own track.
func TestTraceSequentialKernelTrack(t *testing.T) {
	db := testDB()
	var buf bytes.Buffer
	sets, _, err := WithMetrics(db, Eclat, Applicable(Eclat), 20, 1, WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("no itemsets mined")
	}
	d := decodeTraceDoc(t, buf.Bytes())
	spans := d.spansOn()
	found := false
	for name, n := range spans {
		if n > 0 && name != "partition" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no kernel spans recorded (tracks: %v)", d.trackNames())
	}
	// Counter series must be present (sampled at least once at Stop).
	sawCounter := false
	for _, e := range d.TraceEvents {
		if e.Ph == "C" {
			sawCounter = true
		}
	}
	if !sawCounter {
		t.Fatal("no counter series in trace")
	}
}

// brokenWriter fails after the first write, like a disk filling mid-flush.
type brokenWriter struct{ writes int }

func (b *brokenWriter) Write(p []byte) (int, error) {
	b.writes++
	if b.writes > 1 {
		return 0, errSink
	}
	return len(p), nil
}

var errSink = jsonErr("trace sink full")

type jsonErr string

func (e jsonErr) Error() string { return string(e) }

// A failing trace sink must not lose the mining results: WithMetrics
// returns the full itemsets and snapshot alongside the flush error.
func TestTraceWriterFailureKeepsResults(t *testing.T) {
	db := testDB()
	want, _, err := WithMetrics(db, LCM, 0, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := &brokenWriter{}
	got, snap, err := WithMetrics(db, LCM, 0, 20, 4, WithTrace(w))
	if err == nil {
		t.Fatal("flush error not surfaced")
	}
	if !resultMap(got).Equal(resultMap(want)) {
		t.Fatal("trace sink failure lost or changed the mining results")
	}
	if snap.Emitted != uint64(len(got)) {
		t.Fatalf("snapshot not populated despite completed mine: %+v", snap)
	}
}

// Concurrent scrapes during a live parallel partitioned mine: every
// counter a scrape can observe must be monotonically non-decreasing run
// over run, and the final scrape must agree with the returned snapshot.
// CI runs this under -race to check Snapshot's synchronisation.
func TestConcurrentSnapshotDuringPartitionedMine(t *testing.T) {
	db := testDB()
	path := filepath.Join(t.TempDir(), "db.dat")
	if err := WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	rec := NewMetricsRecorder()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes int
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev Snapshot
		for {
			s := rec.Snapshot()
			scrapes++
			if s.Nodes < prev.Nodes || s.Emitted < prev.Emitted || s.Supports < prev.Supports {
				t.Errorf("counters regressed between scrapes:\nprev %+v\nnow  %+v", prev, s)
				return
			}
			if pt, pp := s.Partition, prev.Partition; pt != nil && pp != nil {
				if pt.Chunks < pp.Chunks || pt.BytesPass1 < pp.BytesPass1 {
					t.Errorf("partition progress regressed:\nprev %+v\nnow  %+v", pp, pt)
					return
				}
			}
			prev = s
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}()

	sets, _, err := MinePartitioned(path, LCM, 0, 20, 8*fimi.DBBytes(db)/3, 4,
		ParallelCutoff(64), ParallelMetrics(rec))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	final := rec.Snapshot()
	if final.Emitted == 0 || len(sets) == 0 {
		t.Fatal("run produced nothing to observe")
	}
	if scrapes == 0 {
		t.Fatal("scraper never ran")
	}
}
