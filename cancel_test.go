package fpm

// Cancellation latency tests: every mining mode — the four sequential
// kernels, the work-stealing pool at 1 and 4 workers, and the out-of-core
// partitioned path — must return a wrapped context.Canceled within a
// bounded time of the context being cancelled, leak no goroutines, and
// (when checkpointing) leave no torn sidecar. The corpus is the skewed
// benchmark workload, large enough that an uncancelled mine vastly
// outlives the cancellation point; if a machine ever finishes it before
// the timer fires, the test skips rather than asserting on a race.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fpm/internal/fimi"
	"fpm/internal/partition"
)

const (
	// cancelDelay is how long each run mines before the context is
	// cancelled; cancelBound is the latency budget from that moment to
	// Mine returning. The bound is generous for -race CI boxes — real
	// latency is microseconds (one atomic load per recursion node).
	cancelDelay = 30 * time.Millisecond
	cancelBound = 2 * time.Second
)

// assertNoGoroutineGrowth polls until the goroutine count returns to its
// pre-run level (+1 slack for runtime helpers); cancellation must join the
// context watcher and every pool worker.
func assertNoGoroutineGrowth(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertCancelsPromptly runs mineFn with a context cancelled after
// cancelDelay and asserts the wrapped error, the latency bound and no
// goroutine growth.
func assertCancelsPromptly(t *testing.T, mineFn func(ctx context.Context) error) {
	t.Helper()
	before := runtime.NumGoroutine()
	ctx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	var cancelledAt atomic.Int64
	timer := time.AfterFunc(cancelDelay, func() {
		cancelledAt.Store(time.Now().UnixNano())
		cancelRun()
	})
	err := mineFn(ctx)
	if err == nil {
		timer.Stop()
		t.Skipf("mine completed in under %v; corpus too small for this machine", cancelDelay)
	}
	latency := time.Since(time.Unix(0, cancelledAt.Load()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrapped context.Canceled", err)
	}
	if latency > cancelBound {
		t.Fatalf("returned %v after cancellation, budget %v", latency, cancelBound)
	}
	assertNoGoroutineGrowth(t, before)
}

// TestCancelSequentialKernels: lcm, eclat and fpgrowth poll the flag at
// recursion nodes through MineContext; hmine through the observed path.
// All must surface *CancelledError.
func TestCancelSequentialKernels(t *testing.T) {
	benchSkewSetup()
	for _, algo := range []Algorithm{LCM, Eclat, FPGrowth} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			assertCancelsPromptly(t, func(ctx context.Context) error {
				sets, err := MineContext(ctx, benchSkew, algo, Applicable(algo), benchSkewSupport)
				if err == nil && len(sets) == 0 {
					t.Fatal("completed run found nothing: degenerate corpus")
				}
				var ce *CancelledError
				if err != nil && !errors.As(err, &ce) {
					t.Fatalf("error %T does not wrap *CancelledError", err)
				}
				return err
			})
		})
	}
	t.Run("hmine", func(t *testing.T) {
		assertCancelsPromptly(t, func(ctx context.Context) error {
			_, _, err := WithMetrics(benchSkew, "hmine", 0, benchSkewSupport, 1, WithContext(ctx))
			return err
		})
	})
}

// TestCancelParallel: the pool must drain queued tasks and join all
// workers within the bound, at both ends of the worker-count range. The
// observed path threads the flag into the kernels, so latency is
// node-granular, and the CancelledError carries the partial-progress
// snapshot.
func TestCancelParallel(t *testing.T) {
	benchSkewSetup()
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			assertCancelsPromptly(t, func(ctx context.Context) error {
				_, _, err := WithMetrics(benchSkew, LCM, 0, benchSkewSupport, workers, WithContext(ctx))
				var ce *CancelledError
				if err != nil {
					if !errors.As(err, &ce) {
						t.Fatalf("error %T does not wrap *CancelledError", err)
					}
					if ce.Progress.Kernel == "" {
						t.Fatal("CancelledError.Progress carries no run identity")
					}
				}
				return err
			})
		})
	}
	// The plain NewParallel path (no recorder): split kernels poll the
	// pool flag at every subtree offer point.
	t.Run("newparallel-4", func(t *testing.T) {
		assertCancelsPromptly(t, func(ctx context.Context) error {
			m, err := NewParallel(4, LCM, 0, WithContext(ctx))
			if err != nil {
				t.Fatal(err)
			}
			var cc CountCollector
			return m.Mine(benchSkew, benchSkewSupport, &cc)
		})
	})
}

// TestCancelPartitioned: the out-of-core path must stop at the next chunk
// boundary (or inside a chunk, node-granularly) and leave its checkpoint
// sidecar whole for a later resume — no torn files, no temp leftovers.
func TestCancelPartitioned(t *testing.T) {
	benchSkewSetup()
	dir := t.TempDir()
	path := filepath.Join(dir, "skew.dat")
	if err := WriteFIMIFile(path, benchSkew); err != nil {
		t.Fatal(err)
	}
	est := fimi.DBBytes(benchSkew)
	ckpt := filepath.Join(dir, "skew.fpmck")
	assertCancelsPromptly(t, func(ctx context.Context) error {
		rc := PartitionRunConfig{Ctx: ctx, Checkpoint: ckpt}
		_, _, err := MinePartitionedWithConfig(path, LCM, 0, benchSkewSupport,
			8*est/6, 2, rc)
		var ce *CancelledError
		if err != nil && !errors.As(err, &ce) {
			t.Fatalf("error %T does not wrap *CancelledError", err)
		}
		return err
	})
	if _, err := os.Stat(ckpt); err == nil {
		if _, derr := partition.LoadCheckpoint(ckpt); derr != nil {
			t.Fatalf("cancelled run left a torn sidecar: %v", derr)
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("cancelled run left a temp checkpoint: %v", err)
	}
}

// TestMineContextUncancelled: a background context adds no failure mode —
// results equal plain Mine, and a deadline that never fires behaves the
// same.
func TestMineContextUncancelled(t *testing.T) {
	db := GenerateQuest(QuestConfig{Transactions: 300, AvgLen: 8, AvgPatternLen: 3,
		Items: 40, Patterns: 20, Seed: 7})
	want, err := Mine(db, LCM, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineContext(context.Background(), db, LCM, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if canonListing(got) != canonListing(want) {
		t.Fatal("MineContext(Background) diverges from Mine")
	}
	ctx, cancelRun := context.WithTimeout(context.Background(), time.Hour)
	defer cancelRun()
	got, err = MineContext(ctx, db, Eclat, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantE, err := Mine(db, Eclat, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if canonListing(got) != canonListing(wantE) {
		t.Fatal("MineContext(with unexpired deadline) diverges from Mine")
	}
}

// TestMineContextDeadline: an already-expired deadline surfaces as a
// wrapped context.DeadlineExceeded before any real work happens.
func TestMineContextDeadline(t *testing.T) {
	db := GenerateQuest(QuestConfig{Transactions: 300, AvgLen: 8, AvgPatternLen: 3,
		Items: 40, Patterns: 20, Seed: 7})
	ctx, cancelRun := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancelRun()
	time.Sleep(time.Millisecond)
	_, err := MineContext(ctx, db, LCM, 0, 6)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want wrapped context.DeadlineExceeded", err)
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T does not wrap *CancelledError", err)
	}
}
